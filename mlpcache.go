// Package mlpcache is a Go reproduction of "A Case for MLP-Aware Cache
// Replacement" (Qureshi, Lynch, Mutlu, Patt — ISCA 2006): a cycle-level
// out-of-order memory-system simulator with the paper's MLP-based cost
// computation (Algorithm 1), the LIN cost-aware replacement policy, and
// the CBS and SBAR hybrid replacement mechanisms, together with synthetic
// models of the paper's 14 SPEC CPU2000 benchmarks and a harness that
// regenerates every table and figure of the evaluation.
//
// This package is the public surface; it re-exports the stable pieces of
// the internal packages. Quick start:
//
//	cfg := mlpcache.DefaultConfig()              // the paper's Table 2 machine
//	cfg.MaxInstructions = 2_000_000
//	cfg.Policy = mlpcache.PolicySpec{Kind: mlpcache.PolicySBAR}
//	bench, _ := mlpcache.Benchmark("mcf")
//	res, err := mlpcache.Run(cfg, bench.Build(42))
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Println(res.Summary())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package mlpcache

import (
	"context"
	"io"

	"mlpcache/internal/analytic"
	"mlpcache/internal/audit"
	"mlpcache/internal/bpred"
	"mlpcache/internal/cache"
	"mlpcache/internal/core"
	"mlpcache/internal/faultinject"
	"mlpcache/internal/metrics"
	"mlpcache/internal/oracle"
	"mlpcache/internal/prefetch"
	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
	"mlpcache/internal/trace"
	"mlpcache/internal/workload"
)

// Simulation types.
type (
	// Config is the full machine and run configuration (Table 2).
	Config = sim.Config
	// Result bundles a run's measurements: IPC, miss counts, the
	// Figure 2 cost histogram, Table 1 deltas, and time series.
	Result = sim.Result
	// PolicySpec selects the L2 replacement policy.
	PolicySpec = sim.PolicySpec
	// PolicyKind names a replacement configuration.
	PolicyKind = sim.PolicyKind
)

// Replacement policy kinds.
const (
	PolicyLRU       = sim.PolicyLRU
	PolicyFIFO      = sim.PolicyFIFO
	PolicyRandom    = sim.PolicyRandom
	PolicyNMRU      = sim.PolicyNMRU
	PolicyLIN       = sim.PolicyLIN
	PolicyBCL       = sim.PolicyBCL
	PolicyDCL       = sim.PolicyDCL
	PolicyDIP       = sim.PolicyDIP
	PolicySBAR      = sim.PolicySBAR
	PolicyCBSLocal  = sim.PolicyCBSLocal
	PolicyCBSGlobal = sim.PolicyCBSGlobal
)

// DefaultConfig returns the paper's baseline machine: 8-wide 128-entry
// out-of-order core, 16KB L1, 1MB 16-way L2, 32-entry MSHR, 32-bank DRAM
// with a 444-cycle isolated miss.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Run simulates the instruction source on the configured machine. All
// errors are typed: errors.Is against the exported sentinels
// (ErrBadConfig, ErrCorruptTrace, ErrMSHRLeak, ErrInvariant,
// ErrInternal) classifies them. See docs/ROBUSTNESS.md.
func Run(cfg Config, src Source) (Result, error) { return sim.Run(cfg, src) }

// RunContext is Run with cooperative cancellation: the run loop polls
// ctx every ~65k simulated cycles and stops with a wrapped ErrCancelled
// (also matching the context's cause under errors.Is). The mlpsim and
// mlpexp -timeout flags and the mlpserve job deadlines ride on this.
func RunContext(ctx context.Context, cfg Config, src Source) (Result, error) {
	return sim.RunContext(ctx, cfg, src)
}

// MustRun is Run for known-good configurations: it panics on error.
func MustRun(cfg Config, src Source) Result { return sim.MustRun(cfg, src) }

// Error sentinels, re-exported from the internal error taxonomy. Every
// error the simulator returns wraps exactly one of these.
var (
	// ErrBadConfig marks an invalid configuration or parameter.
	ErrBadConfig = simerr.ErrBadConfig
	// ErrCorruptTrace marks an undecodable or truncated trace stream.
	ErrCorruptTrace = simerr.ErrCorruptTrace
	// ErrMSHRLeak marks an MSHR allocate/free protocol violation.
	ErrMSHRLeak = simerr.ErrMSHRLeak
	// ErrInvariant marks an invariant-auditor violation.
	ErrInvariant = simerr.ErrInvariant
	// ErrUnknownBenchmark marks a benchmark-name lookup failure.
	ErrUnknownBenchmark = simerr.ErrUnknownBenchmark
	// ErrInternal marks a simulator bug caught at the Run boundary.
	ErrInternal = simerr.ErrInternal
	// ErrCancelled marks a run stopped by its context (deadline or
	// cancellation); returned by RunContext and the sweep service.
	ErrCancelled = simerr.ErrCancelled
)

// Observability: the metrics registry a Result exports (Result.Metrics)
// and the event-tracing hook (Config.Trace). docs/OBSERVABILITY.md is
// the catalog and schema contract.
type (
	// MetricsRegistry holds a run's named metric set.
	MetricsRegistry = metrics.Registry
	// MetricSample is one metric's exported state (a JSONL line).
	MetricSample = metrics.Sample
	// RunHeader identifies the run a telemetry document belongs to.
	RunHeader = metrics.RunHeader
	// TraceEvent is one traced simulator event.
	TraceEvent = metrics.Event
	// Tracer receives simulator events (set Config.Trace).
	Tracer = metrics.Tracer
	// RunReport is the single-object run document mlpsim -json prints
	// (schema "mlpcache.run/v1"): a RunHeader plus every metric sample.
	RunReport = metrics.Report
)

// The JSONL/JSON document schema identifiers (each document's "schema"
// field; see docs/OBSERVABILITY.md).
const (
	MetricsSchema  = metrics.MetricsSchema
	EventsSchema   = metrics.EventsSchema
	EventsSchemaV2 = metrics.EventsSchemaV2
	ReportSchema   = metrics.ReportSchema
)

// NewJSONLTracer streams events as JSONL (schema "mlpcache.events/v1").
func NewJSONLTracer(w io.Writer, hdr RunHeader) *metrics.JSONLTracer {
	return metrics.NewJSONLTracer(w, hdr)
}

// NewBinaryTracer streams events in the compact binary encoding (schema
// "mlpcache.events/v2"): delta/varint fields, interned strings, zero
// heap allocations per event at steady state. Decode with EventsReader
// or `mlptrace -events`.
func NewBinaryTracer(w io.Writer, hdr RunHeader) *metrics.BinaryTracer {
	return metrics.NewBinaryTracer(w, hdr)
}

// EventsReader streams an mlpcache.events/v2 file back as TraceEvents.
type EventsReader = metrics.EventsReader

// NewEventsReader opens a v2 binary event stream for decoding.
func NewEventsReader(r io.Reader) (*EventsReader, error) {
	return metrics.NewEventsReader(r)
}

// Offline oracle subsystem (docs/ORACLE.md): set Config.Capture to a
// NewOracleCapture sink, run, then CompareOracles replays the captured
// stream under Belady, cost-weighted Belady, and EHC.
type (
	// OracleCapture records the live L2 demand stream (Config.Capture).
	OracleCapture = oracle.Capture
	// OracleLog is a captured access stream plus the live accounting.
	OracleLog = oracle.Log
	// OracleComparison bundles the live score with all three replays.
	OracleComparison = oracle.Comparison
)

// NewOracleCapture returns an empty capture sink for Config.Capture.
func NewOracleCapture() *oracle.Capture { return oracle.NewCapture() }

// CompareOracles replays a captured log at the given geometry under all
// three offline oracles.
func CompareOracles(log *OracleLog, sets, assoc int) OracleComparison {
	return oracle.Compare(log, sets, assoc)
}

// Robustness tooling: the invariant auditor's report (Result.Audit when
// Config.Audit is set) and the fault-injection plan (Config.Faults).
type (
	// AuditReport is the invariant auditor's accumulated outcome.
	AuditReport = audit.Report
	// AuditViolation records one invariant breach.
	AuditViolation = audit.Violation
	// FaultPlan describes deterministic faults to inject into a run.
	FaultPlan = faultinject.Plan
)

// Instruction-stream types and generators.
type (
	// Source produces instructions; workloads are Sources.
	Source = trace.Source
	// Instr is one dynamic instruction.
	Instr = trace.Instr
	// ChaseConfig parameterizes a pointer chase (isolated misses).
	ChaseConfig = trace.ChaseConfig
	// StreamConfig parameterizes an independent stream (parallel misses).
	StreamConfig = trace.StreamConfig
	// AlternatingConfig parameterizes the unstable-cost generator.
	AlternatingConfig = trace.AlternatingConfig
	// TwoPassConfig parameterizes the visit-twice generator.
	TwoPassConfig = trace.TwoPassConfig
	// MixPart and Phase compose generators.
	MixPart = trace.MixPart
	Phase   = trace.Phase
)

// Generator constructors.
var (
	NewPointerChase = trace.NewPointerChase
	NewStream       = trace.NewStream
	NewAlternating  = trace.NewAlternating
	NewTwoPass      = trace.NewTwoPass
	NewMix          = trace.NewMix
	NewPhases       = trace.NewPhases
	NewLimit        = trace.NewLimit
	NewSliceSource  = trace.NewSliceSource
)

// Workload models of the paper's benchmarks.
type BenchmarkSpec = workload.Spec

// Benchmark looks up one of the 14 benchmark models by SPEC name.
func Benchmark(name string) (BenchmarkSpec, bool) { return workload.ByName(name) }

// Benchmarks returns all 14 models in the paper's Table 3 order.
func Benchmarks() []BenchmarkSpec { return workload.All() }

// BenchmarkNames returns the models' names in Table 3 order.
func BenchmarkNames() []string { return workload.Names() }

// Core mechanism pieces, for building custom caches and policies.
type (
	// Cache is the set-associative tag-store model.
	Cache = cache.Cache
	// CacheConfig describes a cache's geometry.
	CacheConfig = cache.Config
	// Policy selects replacement victims.
	Policy = cache.Policy
	// SBARConfig and CBSConfig parameterize the hybrids.
	SBARConfig = core.SBARConfig
	CBSConfig  = core.CBSConfig
)

// Policy and mechanism constructors.
var (
	NewCache     = cache.New
	NewLRUPolicy = cache.NewLRU
	NewLIN       = core.NewLIN
	NewBCL       = core.NewBCL
	NewDCL       = core.NewDCL
	NewBIP       = core.NewBIP
	NewDIP       = core.NewDIP
	NewCostAware = core.NewCostAware
	NewSBAR      = core.NewSBAR
	NewCBS       = core.NewCBS
)

// BranchPredictorConfig parameterizes the optional live branch predictor
// (set Config.CPU.BranchPredictor; the default front end uses the
// trace's oracle misprediction flags).
type BranchPredictorConfig = bpred.Config

// DefaultBranchPredictorConfig returns the Table 2 style gshare/PAs
// hybrid at a table size suited to the synthetic workloads.
func DefaultBranchPredictorConfig() BranchPredictorConfig { return bpred.DefaultConfig() }

// PrefetchConfig parameterizes the optional L2 stride prefetcher (set
// Config.Prefetch to enable it; the paper's baseline runs without one).
type PrefetchConfig = prefetch.Config

// DefaultPrefetchConfig returns a 16-stream, degree-4, distance-12
// stride prefetcher.
func DefaultPrefetchConfig() PrefetchConfig { return prefetch.DefaultConfig() }

// Quantize converts an MLP-based cost in cycles to the paper's 3-bit
// cost_q (Figure 3b).
func Quantize(mlpCost float64) uint8 { return core.Quantize(mlpCost) }

// PBest evaluates the Section 6.3 sampling model: the probability that k
// random leader sets select the best policy when a fraction p of sets
// favours it (Figure 8).
func PBest(k int, p float64) float64 { return analytic.PBest(k, p) }

// Offline replacement analysis (Belady's OPT and friends).
type (
	// OfflineResult summarizes an offline replacement simulation.
	OfflineResult = cache.OfflineResult
	// AccessResult records one access's outcome in an offline run.
	AccessResult = cache.AccessResult
)

// SimulateOPT runs Belady's optimal replacement offline over a block
// stream (the Figure 1 comparison point); SimulateOffline does the same
// for any online policy.
var (
	SimulateOPT     = cache.SimulateOPT
	SimulateOffline = cache.SimulateOffline
)
