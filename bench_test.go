// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the ablation benches DESIGN.md calls out. Each
// bench regenerates its artifact at a reduced instruction budget (the
// full-scale regeneration is `mlpexp -run all -n 3000000`) and reports
// the headline quantity as a custom metric, so `go test -bench=.`
// produces a compact paper-versus-measured record alongside the usual
// ns/op.
package mlpcache

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlpcache/internal/analytic"
	"mlpcache/internal/core"
	"mlpcache/internal/experiments"
	"mlpcache/internal/metrics"
	"mlpcache/internal/mshr"
	"mlpcache/internal/oracle"
	"mlpcache/internal/prefetch"
	"mlpcache/internal/service"
	"mlpcache/internal/sim"
	"mlpcache/internal/trace"
	"mlpcache/internal/workload"
)

// benchInstructions is the per-run budget for simulation benches: large
// enough for the qualitative shapes, small enough to keep the whole
// harness in minutes.
const benchInstructions = 1_500_000

// benchRunner builds a fresh memoizing runner per bench iteration set.
func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	return experiments.NewRunner(benchInstructions, 42)
}

func BenchmarkFig1_WorkedExample(b *testing.B) {
	var last experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure1()
	}
	// The reproduction is exact; report the stall ratio OPT/MLP-aware.
	b.ReportMetric(last.Rows[0].StallsPerIter/last.Rows[2].StallsPerIter, "opt-vs-mlp-stall-ratio")
}

func BenchmarkFig2_MLPCostDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.Benchmarks = []string{"art", "mcf", "facerec"}
		res := experiments.Figure2(r)
		res.Render(io.Discard)
		// art is the parallel extreme, facerec carries the isolated
		// peak: report both means.
		b.ReportMetric(res.Rows[0].Mean, "art-mean-cost-cycles")
		b.ReportMetric(res.Rows[2].Mean, "facerec-mean-cost-cycles")
	}
}

func BenchmarkTab1_DeltaDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.Benchmarks = []string{"mcf", "parser"}
		res := experiments.Table1(r)
		res.Render(io.Discard)
		b.ReportMetric(res.Rows[0].Lt60, "mcf-delta-lt60-pct")
		b.ReportMetric(res.Rows[1].Ge120, "parser-delta-ge120-pct")
	}
}

func BenchmarkTab3_BenchmarkSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.Benchmarks = []string{"art", "lucas"}
		res := experiments.Table3(r)
		res.Render(io.Discard)
		// The paper's ordering: lucas's compulsory share far exceeds art's.
		b.ReportMetric(res.Rows[1].CompulsoryPct-res.Rows[0].CompulsoryPct, "lucas-minus-art-compulsory-pct")
	}
}

func BenchmarkFig3b_Quantizer(b *testing.B) {
	var q uint8
	for i := 0; i < b.N; i++ {
		for c := 0.0; c < 500; c++ {
			q += core.Quantize(c)
		}
	}
	_ = q
}

func BenchmarkFig4_LINLambdaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.Benchmarks = []string{"mcf"}
		res := experiments.Figure4(r)
		res.Render(io.Discard)
		// The paper: the effect grows with λ.
		b.ReportMetric(res.Rows[0].IPCDelta[3], "mcf-lin4-ipc-delta-pct")
		b.ReportMetric(res.Rows[0].IPCDelta[0], "mcf-lin1-ipc-delta-pct")
	}
}

func BenchmarkFig5_LINvsBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.Benchmarks = []string{"mcf", "parser"}
		res := experiments.Figure5(r)
		res.Render(io.Discard)
		b.ReportMetric(res.Rows[0].IPCDeltaPct, "mcf-lin-ipc-pct")
		b.ReportMetric(res.Rows[1].IPCDeltaPct, "parser-lin-ipc-pct")
	}
}

func BenchmarkFig8_SamplingModel(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		res := experiments.Figure8()
		sum += res.Curves[2][5] // p=0.7, k=32
	}
	b.ReportMetric(analytic.PBest(32, 0.7), "pbest-k32-p0.7")
	_ = sum
}

func BenchmarkFig9_SBARvsLIN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.Benchmarks = []string{"parser"}
		res := experiments.Figure9(r)
		res.Render(io.Discard)
		b.ReportMetric(res.Rows[0].LINDeltaPct, "parser-lin-ipc-pct")
		b.ReportMetric(res.Rows[0].SBARDeltaPct, "parser-sbar-ipc-pct")
	}
}

func BenchmarkFig10_LeaderSetSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		r.Benchmarks = []string{"mcf"}
		res := experiments.Figure10(r)
		res.Render(io.Discard)
		// static/32 is the default configuration.
		b.ReportMetric(res.Rows[0].DeltaPct[4], "mcf-sbar-static32-ipc-pct")
	}
}

func BenchmarkFig11_AmmpTimeSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(1_000_000, 42)
		res := experiments.Figure11(r)
		res.Render(io.Discard)
		lru, sbar := res.Results["lru"], res.Results["sbar"]
		b.ReportMetric(sbar.IPCDeltaPercent(lru), "ammp-sbar-ipc-pct")
	}
}

func BenchmarkOverheadModel(b *testing.B) {
	var bytes int
	for i := 0; i < b.N; i++ {
		o := core.ComputeOverhead(core.DefaultOverheadParams())
		bytes = o.SBARBytes()
	}
	b.ReportMetric(float64(bytes), "sbar-bytes")
}

// BenchmarkAblationAdders compares the exact per-entry cost computation
// against the paper's 4 time-shared adders (Section 3.1 footnote: the
// difference is negligible).
func BenchmarkAblationAdders(b *testing.B) {
	run := func(adders int) sim.Result {
		spec, _ := workload.ByName("mcf")
		cfg := sim.DefaultConfig()
		cfg.MaxInstructions = benchInstructions
		cfg.MSHR = mshr.Config{Entries: 32, Adders: adders}
		return sim.MustRun(cfg, spec.Build(42))
	}
	var exact, shared sim.Result
	for i := 0; i < b.N; i++ {
		exact = run(0)
		shared = run(4)
	}
	b.ReportMetric(exact.AvgMLPCost(), "avg-cost-exact")
	b.ReportMetric(shared.AvgMLPCost(), "avg-cost-4adders")
}

// BenchmarkAblationPSEL sweeps the selector counter width (Section 6.1
// uses 6 bits; CBS-global prefers 7).
func BenchmarkAblationPSEL(b *testing.B) {
	for _, bits := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				spec, _ := workload.ByName("parser")
				cfg := sim.DefaultConfig()
				cfg.MaxInstructions = benchInstructions
				cfg.Policy = sim.PolicySpec{Kind: sim.PolicySBAR, PselBits: bits}
				res = sim.MustRun(cfg, spec.Build(42))
			}
			b.ReportMetric(res.IPC, "ipc")
		})
	}
}

// BenchmarkAblationCBS compares SBAR against the full-overhead CBS
// variants it approximates (Section 6.6).
func BenchmarkAblationCBS(b *testing.B) {
	for _, kind := range []sim.PolicyKind{sim.PolicySBAR, sim.PolicyCBSGlobal, sim.PolicyCBSLocal} {
		b.Run(string(kind), func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				spec, _ := workload.ByName("ammp")
				cfg := sim.DefaultConfig()
				cfg.MaxInstructions = benchInstructions
				cfg.Policy = sim.PolicySpec{Kind: kind}
				res = sim.MustRun(cfg, spec.Build(42))
			}
			b.ReportMetric(res.IPC, "ipc")
		})
	}
}

// BenchmarkAblationQuant sweeps the cost-quantization width (the design
// choice behind Figure 3b's 3 bits).
func BenchmarkAblationQuant(b *testing.B) {
	for _, bits := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var q uint8
			for i := 0; i < b.N; i++ {
				for c := 0.0; c < 500; c += 0.5 {
					q += core.QuantizeWith(c, bits)
				}
			}
			_ = q
		})
	}
}

// BenchmarkAblationCARE compares the cost-aware replacement engines that
// can sit behind the paper's CARE box (Section 2 cites Jeong & Dubois'
// cost-sensitive LRU family as alternatives to LIN): all consume the same
// stored cost_q; only the victim function differs.
func BenchmarkAblationCARE(b *testing.B) {
	for _, kind := range []sim.PolicyKind{sim.PolicyLRU, sim.PolicyLIN, sim.PolicyBCL, sim.PolicyDCL} {
		b.Run(string(kind), func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				spec, _ := workload.ByName("mcf")
				cfg := sim.DefaultConfig()
				cfg.MaxInstructions = benchInstructions
				cfg.Policy = sim.PolicySpec{Kind: kind}
				res = sim.MustRun(cfg, spec.Build(42))
			}
			b.ReportMetric(res.IPC, "ipc")
			b.ReportMetric(float64(res.Mem.DemandMisses), "misses")
		})
	}
}

// BenchmarkAblationPrefetch measures how an L2 stride prefetcher shifts
// the mlp-cost distribution (Section 2: prefetching is an MLP technique;
// it converts isolated misses into parallel ones, which shrinks the very
// non-uniformity LIN exploits).
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, pf := range []bool{false, true} {
		name := "off"
		if pf {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				spec, _ := workload.ByName("mcf")
				cfg := sim.DefaultConfig()
				cfg.MaxInstructions = benchInstructions
				if pf {
					p := prefetch.DefaultConfig()
					cfg.Prefetch = &p
				}
				res = sim.MustRun(cfg, spec.Build(42))
			}
			b.ReportMetric(res.IPC, "ipc")
			b.ReportMetric(res.AvgMLPCost(), "avg-cost-cycles")
		})
	}
}

// BenchmarkExtensionDIP exercises the set-dueling configuration of the
// generic SBAR engine (BIP vs LRU — the mechanism's ISCA 2007 sequel) on
// the thrash-heavy art model.
func BenchmarkExtensionDIP(b *testing.B) {
	var lruIPC, dipIPC float64
	for i := 0; i < b.N; i++ {
		spec, _ := workload.ByName("art")
		cfg := sim.DefaultConfig()
		cfg.MaxInstructions = benchInstructions
		lruIPC = sim.MustRun(cfg, spec.Build(42)).IPC

		dipCfg := sim.DefaultConfig()
		dipCfg.MaxInstructions = benchInstructions
		dipCfg.Policy = sim.PolicySpec{Kind: sim.PolicyDIP}
		dipIPC = sim.MustRun(dipCfg, spec.Build(42)).IPC
	}
	b.ReportMetric(lruIPC, "lru-ipc")
	b.ReportMetric(dipIPC, "dip-ipc")
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions simulated per wall-clock second).
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := workload.ByName("equake")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.MaxInstructions = benchInstructions
		sim.MustRun(cfg, spec.Build(42))
	}
	b.ReportMetric(float64(benchInstructions)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkMulticoreThroughput drives the contended two-core engine —
// mcf and art sharing the L2, each retiring the full per-core budget —
// and reports aggregate instructions simulated per wall-clock second.
// Compare against BenchmarkSimulatorThroughput to price the sharer
// bookkeeping (per-core MSHR files, the sharer bitmask, the shared
// fill heap); bench-compare gates it like every other instr/s figure.
func BenchmarkMulticoreThroughput(b *testing.B) {
	mcf, _ := workload.ByName("mcf")
	art, _ := workload.ByName("art")
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.MaxInstructions = benchInstructions
		cfg.Parallel = sim.ParallelOff // serial baseline; the engines race in BenchmarkParallelMulticore
		res, err := sim.RunMulti(cfg, mcf.Build(42), art.Build(43))
		if err != nil {
			b.Fatal(err)
		}
		total += res.Instructions()
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// parallelBenchInstructions is the per-core budget for the engine race:
// smaller than benchInstructions because the 4-core serial leg retires
// four budgets per iteration.
const parallelBenchInstructions = 750_000

// BenchmarkParallelMulticore races the parallel wavefront engine
// against the serial interleave on the same heterogeneous mix at 2 and
// 4 cores, reporting aggregate instr/s plus the host's CPU count.
// bench-compare's relational gate requires parallel4 >= serial4 when
// the recorded cpus figure is at least 4 — the engines compute
// bit-identical results (see docs/MULTICORE.md), so on a wide host the
// parallel one must pay for its barriers with wall-clock wins.
func BenchmarkParallelMulticore(b *testing.B) {
	benches := []string{"mcf", "art", "parser", "equake"}
	run := func(b *testing.B, cores int, mode sim.ParallelMode) {
		var total uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := sim.DefaultConfig()
			cfg.MaxInstructions = parallelBenchInstructions
			cfg.Parallel = mode
			srcs := make([]trace.Source, cores)
			for c := 0; c < cores; c++ {
				spec, _ := workload.ByName(benches[c%len(benches)])
				srcs[c] = spec.Build(42 + uint64(c))
			}
			res, err := sim.RunMulti(cfg, srcs...)
			if err != nil {
				b.Fatal(err)
			}
			total += res.Instructions()
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
		b.ReportMetric(float64(runtime.NumCPU()), "cpus")
	}
	b.Run("serial2", func(b *testing.B) { run(b, 2, sim.ParallelOff) })
	b.Run("parallel2", func(b *testing.B) { run(b, 2, sim.ParallelOn) })
	b.Run("serial4", func(b *testing.B) { run(b, 4, sim.ParallelOff) })
	b.Run("parallel4", func(b *testing.B) { run(b, 4, sim.ParallelOn) })
}

// BenchmarkArenaReuse prices zero-rebuild simulation arenas on the
// two-core engine: cold builds every cache, MSHR file, blockmap table
// and fill heap per run; reused draws them from a warmed arena and only
// pays for reset-in-place. bench-compare's relational gate requires the
// reused leg's allocs/op to stay at or below half the cold leg's.
func BenchmarkArenaReuse(b *testing.B) {
	mcf, _ := workload.ByName("mcf")
	art, _ := workload.ByName("art")
	run := func(b *testing.B, arena *sim.Arena) {
		cfg := sim.DefaultConfig()
		cfg.MaxInstructions = 200_000
		cfg.Parallel = sim.ParallelOff
		cfg.Arena = arena
		runOnce := func() {
			if _, err := sim.RunMulti(cfg, mcf.Build(42), art.Build(43)); err != nil {
				b.Fatal(err)
			}
		}
		if arena != nil {
			runOnce() // warm the pools before the timer starts
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce()
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, nil) })
	b.Run("reused", func(b *testing.B) { run(b, sim.NewArena()) })
}

// BenchmarkObservability quantifies the cost of the observability
// layer (docs/OBSERVABILITY.md's "disabled observability is free"
// contract): "off" is the plain simulation, "traced" streams every
// event to an in-memory JSONL tracer, and "metrics" additionally
// builds the full registry afterwards. Compare off against
// BenchmarkSimulatorThroughput-era baselines — with Trace nil every
// emit site costs one predictable branch, so off and the pre-layer
// simulator should be indistinguishable.
func BenchmarkObservability(b *testing.B) {
	run := func(b *testing.B, tr metrics.Tracer, export bool) {
		spec, _ := workload.ByName("equake")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := sim.DefaultConfig()
			cfg.MaxInstructions = benchInstructions
			cfg.Trace = tr
			res := sim.MustRun(cfg, spec.Build(42))
			if export {
				if err := res.Metrics().WriteJSONL(io.Discard, res.Header("equake", 42)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(benchInstructions)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	}
	b.Run("off", func(b *testing.B) { run(b, nil, false) })
	b.Run("traced", func(b *testing.B) {
		run(b, metrics.NewJSONLTracer(io.Discard, metrics.RunHeader{Bench: "equake"}), false)
	})
	b.Run("metrics", func(b *testing.B) { run(b, nil, true) })
}

// BenchmarkTracingV2 compares the cost of full event tracing across the
// two encodings against an untraced run: "off" is the plain simulation,
// "jsonl" streams every event through the v1 JSONL tracer, and "v2"
// through the binary mlpcache.events/v2 tracer. The acceptance contract
// (enforced by `make bench-compare`) is that v2's allocs/op stay within
// 2x of off — the binary encoder's steady-state Emit path allocates
// nothing, so traced and untraced runs allocate alike. A fresh tracer is
// built per iteration; its setup (header, string table, scratch buffer)
// is part of the measured cost, as it is in real runs.
func BenchmarkTracingV2(b *testing.B) {
	run := func(b *testing.B, mk func() metrics.Tracer) {
		spec, _ := workload.ByName("equake")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := sim.DefaultConfig()
			cfg.MaxInstructions = benchInstructions
			if mk != nil {
				cfg.Trace = mk()
			}
			sim.MustRun(cfg, spec.Build(42))
		}
		b.ReportMetric(float64(benchInstructions)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("jsonl", func(b *testing.B) {
		run(b, func() metrics.Tracer {
			return metrics.NewJSONLTracer(io.Discard, metrics.RunHeader{Bench: "equake"})
		})
	})
	b.Run("v2", func(b *testing.B) {
		run(b, func() metrics.Tracer {
			return metrics.NewBinaryTracer(io.Discard, metrics.RunHeader{Bench: "equake"})
		})
	})
}

// BenchmarkLearnedEviction prices the learned victim paths against
// LRU's on identical runs: "lru" is the baseline, "bandit" the
// five-arm shadow-directory bandit, and "learned" the hit-count
// predictor running its untrained default (the full fill/victim path
// without a model file). The acceptance contract (enforced by `make
// bench-compare`) is relational: the learned policies' allocs/op stay
// within 1.5x of LRU's — both victim paths rank on the shared scratch,
// so beyond one-time construction the runs allocate alike.
func BenchmarkLearnedEviction(b *testing.B) {
	run := func(b *testing.B, spec sim.PolicySpec) {
		w, _ := workload.ByName("mcf")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := sim.DefaultConfig()
			cfg.MaxInstructions = benchInstructions
			cfg.Policy = spec
			sim.MustRun(cfg, w.Build(42))
		}
		b.ReportMetric(float64(benchInstructions)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	}
	b.Run("lru", func(b *testing.B) { run(b, sim.PolicySpec{Kind: sim.PolicyLRU}) })
	b.Run("bandit", func(b *testing.B) { run(b, sim.PolicySpec{Kind: sim.PolicyBandit, Seed: 42}) })
	b.Run("learned", func(b *testing.B) { run(b, sim.PolicySpec{Kind: sim.PolicyLearned}) })
}

// BenchmarkOracleHeadroom measures the offline oracle pipeline end to
// end — capture a live LRU run's L2 stream, then replay it under
// Belady, cost-weighted Belady and EHC at the live geometry — and
// reports the two headroom percentages (docs/ORACLE.md).
func BenchmarkOracleHeadroom(b *testing.B) {
	spec, _ := workload.ByName("art")
	l2 := sim.DefaultConfig().L2
	sets, err := l2.SetCount()
	if err != nil {
		b.Fatal(err)
	}
	var cmp oracle.Comparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.MaxInstructions = 400_000
		cap := oracle.NewCapture()
		cfg.Capture = cap
		sim.MustRun(cfg, spec.Build(42))
		cmp = oracle.Compare(cap.Log(), sets, l2.Assoc)
	}
	b.ReportMetric(cmp.MissHeadroomPct(), "miss-headroom-%")
	b.ReportMetric(cmp.CostHeadroomPct(), "cost-headroom-%")
}

// BenchmarkGeneratorThroughput measures trace generation speed alone.
func BenchmarkGeneratorThroughput(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	src := spec.Build(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}

// BenchmarkTraceEncode measures the binary trace encoder.
func BenchmarkTraceEncode(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	ins := trace.Collect(spec.Build(1), 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := trace.NewWriter(io.Discard)
		for _, in := range ins {
			if err := w.Write(in); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(ins)))
}

// BenchmarkServiceThroughput measures the sweep service end to end:
// jobs flow through admission, the worker pool, per-job deadlines and
// the result cache before the simulation runs. Distinct seeds defeat
// the cache, so the figure prices the service layer plus fresh
// simulations — compare its instr/s against BenchmarkSimulatorThroughput
// to see the daemon's overhead, which should be noise.
func BenchmarkServiceThroughput(b *testing.B) {
	const jobInstructions = 400_000
	s, err := service.New(service.Config{
		PerClientCap:    -1,
		MaxInstructions: jobInstructions,
		DefaultDeadline: 10 * time.Minute,
		MaxDeadline:     10 * time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Bound concurrent submitters below the queue depth so admission
	// control never rejects: this measures throughput, not shedding.
	sem := make(chan struct{}, 16)
	var wg sync.WaitGroup
	var failed atomic.Uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out := s.Submit(context.Background(), service.Job{
				Bench:        "equake",
				Instructions: jobInstructions,
				Seed:         uint64(i) + 1,
			})
			if out.Err != nil {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if n := failed.Load(); n > 0 {
		b.Fatalf("%d of %d jobs failed", n, b.N)
	}
	b.ReportMetric(float64(jobInstructions)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}
