// Command loadgen drives the sweep service (cmd/mlpserve) with a
// configurable burst of concurrent jobs and checks that every one of
// them comes back with a terminal answer — the accounting contract the
// daemon's chaos tests enforce, runnable against a live process.
//
// Two modes:
//
//   - -url points at a running daemon and fires jobs over HTTP;
//   - without -url, loadgen starts an in-process server (with optional
//     -chaos-* fault injection), runs the same load against its
//     listener, then drains it and cross-checks the client-observed
//     status counts against the server's own counters.
//
// The exit code is the verdict: 0 when every job is accounted for
// (200/429/500/503/504 are all terminal answers; transport errors and
// unexpected statuses are not), 1 otherwise. `make loadtest-smoke` runs
// a short in-process burst as part of tier-1.
//
// Examples:
//
//	loadgen -jobs 200 -concurrency 32
//	loadgen -jobs 500 -chaos-fail 150 -chaos-panic 20
//	loadgen -url http://127.0.0.1:8321 -jobs 1000 -concurrency 64
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"mlpcache/internal/service"
)

func main() {
	var (
		url         = flag.String("url", "", "target daemon base URL (empty: run an in-process server)")
		jobs        = flag.Int("jobs", 200, "total jobs to submit")
		concurrency = flag.Int("concurrency", 32, "concurrent submitters")
		benches     = flag.String("benches", "micro.isolated,micro.parallel,micro.figure1,micro.pollution", "comma-separated benchmark rotation")
		policies    = flag.String("policies", "lru,lin,sbar", "comma-separated policy rotation")
		n           = flag.Uint64("n", 20_000, "instructions per job")
		deadlineMS  = flag.Int("deadline-ms", 0, "per-job deadline in ms (0: server default)")
		clients     = flag.Int("clients", 4, "distinct client identities to rotate through")
		seeds       = flag.Int("seeds", 8, "distinct workload seeds to rotate through")
		workers     = flag.Int("workers", 0, "in-process mode: simulation workers (0: GOMAXPROCS)")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "in-process mode: fault-injection seed")
		chaosFail   = flag.Int("chaos-fail", 0, "in-process mode: transient-failure permille")
		chaosPanic  = flag.Int("chaos-panic", 0, "in-process mode: worker-panic permille")
		chaosJitter = flag.Uint64("chaos-dram-jitter", 0, "in-process mode: max injected DRAM latency cycles")
	)
	flag.Parse()
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		os.Exit(1)
	}

	base := *url
	var srv *service.Server
	if base == "" {
		s, err := service.New(service.Config{
			Workers: *workers,
			Chaos: service.Chaos{
				Seed:          *chaosSeed,
				FailPermille:  *chaosFail,
				PanicPermille: *chaosPanic,
				DRAMJitterMax: *chaosJitter,
			},
		})
		if err != nil {
			fatal("%v", err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("%v", err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(l)
		defer hs.Close()
		srv = s
		base = "http://" + l.Addr().String()
		fmt.Fprintf(os.Stderr, "loadgen: in-process daemon on %s\n", base)
	}
	base = strings.TrimSuffix(base, "/")

	benchList := strings.Split(*benches, ",")
	policyList := strings.Split(*policies, ",")

	httpc := &http.Client{Timeout: 5 * time.Minute}
	type result struct {
		status int
		err    error
	}
	results := make([]result, *jobs)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				body := fmt.Sprintf(
					`{"bench":%q,"policy":%q,"instructions":%d,"seed":%d,"deadline_ms":%d,"client":"load-%d"}`,
					benchList[i%len(benchList)], policyList[i%len(policyList)],
					*n, i%*seeds+1, *deadlineMS, i%*clients)
				resp, err := httpc.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					results[i] = result{err: err}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				results[i] = result{status: resp.StatusCode}
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	counts := map[int]int{}
	lost := 0
	for i, r := range results {
		if r.err != nil {
			lost++
			if lost <= 3 {
				fmt.Fprintf(os.Stderr, "loadgen: job %d transport error: %v\n", i, r.err)
			}
			continue
		}
		counts[r.status]++
	}
	var codes []int
	for code := range counts {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	accounted := 0
	bad := 0
	for _, code := range codes {
		terminal := code == 200 || code == 400 || code == 429 ||
			code == 500 || code == 503 || code == 504
		mark := ""
		if !terminal {
			mark = "  <- unexpected"
			bad += counts[code]
		} else {
			accounted += counts[code]
		}
		fmt.Printf("  %d: %d%s\n", code, counts[code], mark)
	}
	fmt.Printf("loadgen: %d jobs in %.2fs (%.1f jobs/s): %d accounted, %d unexpected, %d lost\n",
		*jobs, elapsed.Seconds(), float64(*jobs)/elapsed.Seconds(), accounted, bad, lost)

	if srv != nil {
		srv.Drain(time.Minute)
		c := srv.Snapshot()
		fmt.Printf("loadgen: server counters: admitted %d = completed %d + failed %d + cancelled %d; rejected %d queue / %d client; retried %d; panics %d\n",
			c.Admitted, c.Completed, c.Failed, c.Cancelled,
			c.RejectedQueue, c.RejectedClient, c.Retried, c.Panics)
		if c.Admitted != c.Completed+c.Failed+c.Cancelled {
			fatal("server lost a job: admitted %d != %d terminal outcomes",
				c.Admitted, c.Completed+c.Failed+c.Cancelled)
		}
	}
	if lost > 0 || bad > 0 || accounted != *jobs {
		fatal("accounting failed: %d of %d jobs unaccounted", *jobs-accounted, *jobs)
	}
}
