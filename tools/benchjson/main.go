// Command benchjson is the repo's performance-trajectory harness: it
// runs the root package's benchmark suite (simulator throughput,
// observability overhead, oracle headroom, trace generation and codec),
// parses the `go test -bench` text into a machine-readable document, and
// gates regressions against a committed snapshot.
//
//   - -record writes the snapshot (BENCH_PR5.json by convention),
//     preserving any pre_pr5_baseline section already in the file so the
//     before/after story survives re-records; -pre imports a raw
//     `go test -bench` capture as that baseline section.
//   - -compare re-runs the suite and fails when a benchmark disappears,
//     when any instr/s figure drops more than -threshold percent (the
//     simulated work is deterministic, so instr/s moves only with real
//     code regressions or machine load), or when allocs/op grows more
//     than -alloc-threshold percent (allocations are deterministic, so
//     this catches reintroduced per-access allocation immediately).
//     Wall-clock-only figures (ns/op, MB/s) are reported but not gated:
//     on a shared machine they are too noisy for a hard 5% gate.
//
// Each sample is the best of -count runs, damping scheduler noise the
// same way benchstat's min-selection does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchPattern selects the perf-trajectory suite; bench-smoke separately
// guards that the observability and oracle benchmarks keep existing.
const benchPattern = "BenchmarkSimulatorThroughput|BenchmarkObservability|BenchmarkOracleHeadroom|BenchmarkGeneratorThroughput|BenchmarkTraceEncode"

// Sample is one benchmark's aggregated figures. Only the units the
// suite emits are modeled; absent figures are zero and omitted.
type Sample struct {
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	InstrPerSec float64 `json:"instr_per_s,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the committed document.
type Snapshot struct {
	Schema     string            `json:"schema"`
	Go         string            `json:"go"`
	Note       string            `json:"note,omitempty"`
	Count      int               `json:"count"`
	Benchtime  string            `json:"benchtime"`
	PreBase    map[string]Sample `json:"pre_pr5_baseline,omitempty"`
	Benchmarks map[string]Sample `json:"benchmarks"`
}

func main() {
	var (
		record    = flag.Bool("record", false, "run the suite and write the snapshot")
		compare   = flag.Bool("compare", false, "run the suite and gate against the snapshot")
		out       = flag.String("out", "BENCH_PR5.json", "snapshot path for -record")
		baseline  = flag.String("baseline", "BENCH_PR5.json", "snapshot path for -compare")
		pre       = flag.String("pre", "", "raw `go test -bench` capture to import as pre_pr5_baseline (with -record)")
		note      = flag.String("note", "", "free-form note stored in the snapshot")
		count     = flag.Int("count", 2, "benchmark repetitions; best-of wins")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		threshold = flag.Float64("threshold", 5, "max tolerated instr/s drop, percent")
		allocThr  = flag.Float64("alloc-threshold", 20, "max tolerated allocs/op growth, percent")
	)
	flag.Parse()
	switch {
	case *record == *compare:
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -record or -compare is required")
		os.Exit(2)
	case *record:
		if err := doRecord(*out, *pre, *note, *count, *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	case *compare:
		if err := doCompare(*baseline, *count, *benchtime, *threshold, *allocThr); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

func runSuite(count int, benchtime string) (map[string]Sample, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", benchPattern,
		"-benchtime", benchtime, "-count", strconv.Itoa(count), "-benchmem", ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	samples := parseBench(string(raw))
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark lines in go test output")
	}
	return samples, nil
}

// resultLine matches one benchmark result: name, iteration count, then
// value/unit pairs handled field-by-field below.
var resultLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix strips the -8 style suffix go test appends to
// benchmark names, so snapshots transfer between machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench folds every result line into best-of samples per benchmark:
// throughput units (instr/s, MB/s) keep the maximum across repetitions,
// cost units (ns/op, B/op, allocs/op) the minimum.
func parseBench(out string) map[string]Sample {
	samples := make(map[string]Sample)
	for _, line := range strings.Split(out, "\n") {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		var s Sample
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
			case "instr/s":
				s.InstrPerSec = v
			case "MB/s":
				s.MBPerSec = v
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			}
		}
		prev, seen := samples[name]
		if !seen {
			samples[name] = s
			continue
		}
		samples[name] = Sample{
			NsPerOp:     minNonzero(prev.NsPerOp, s.NsPerOp),
			InstrPerSec: max(prev.InstrPerSec, s.InstrPerSec),
			MBPerSec:    max(prev.MBPerSec, s.MBPerSec),
			BytesPerOp:  minNonzero(prev.BytesPerOp, s.BytesPerOp),
			AllocsPerOp: minNonzero(prev.AllocsPerOp, s.AllocsPerOp),
		}
	}
	return samples
}

func minNonzero(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	return min(a, b)
}

func doRecord(out, pre, note string, count int, benchtime string) error {
	snap := Snapshot{
		Schema:    "mlpcache-bench/v1",
		Go:        runtime.Version(),
		Note:      note,
		Count:     count,
		Benchtime: benchtime,
	}
	// Carry the pre-optimization baseline forward across re-records.
	if prevRaw, err := os.ReadFile(out); err == nil {
		var prev Snapshot
		if json.Unmarshal(prevRaw, &prev) == nil {
			snap.PreBase = prev.PreBase
			if note == "" {
				snap.Note = prev.Note
			}
		}
	}
	if pre != "" {
		raw, err := os.ReadFile(pre)
		if err != nil {
			return fmt.Errorf("reading -pre capture: %w", err)
		}
		snap.PreBase = parseBench(string(raw))
	}
	samples, err := runSuite(count, benchtime)
	if err != nil {
		return err
	}
	snap.Benchmarks = samples
	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks to %s\n", len(samples), out)
	return nil
}

func doCompare(baseline string, count int, benchtime string, threshold, allocThr float64) error {
	raw, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline (run `make bench-record` first): %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("parsing %s: %w", baseline, err)
	}
	current, err := runSuite(count, benchtime)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(snap.Benchmarks))
	for name := range snap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		want := snap.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: benchmark disappeared from the suite", name))
			continue
		}
		if want.InstrPerSec > 0 {
			drop := 100 * (want.InstrPerSec - got.InstrPerSec) / want.InstrPerSec
			status := "ok"
			if drop > threshold {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"%s: instr/s dropped %.1f%% (%.0f -> %.0f, gate %.1f%%)",
					name, drop, want.InstrPerSec, got.InstrPerSec, threshold))
			}
			fmt.Fprintf(os.Stderr, "%-45s instr/s %12.0f -> %12.0f (%+.1f%%) %s\n",
				name, want.InstrPerSec, got.InstrPerSec, -drop, status)
		} else if want.NsPerOp > 0 && got.NsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "%-45s ns/op   %12.0f -> %12.0f (%+.1f%%) info\n",
				name, want.NsPerOp, got.NsPerOp, 100*(got.NsPerOp-want.NsPerOp)/want.NsPerOp)
		}
		if want.AllocsPerOp > 0 {
			growth := 100 * (got.AllocsPerOp - want.AllocsPerOp) / want.AllocsPerOp
			if growth > allocThr {
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op grew %.1f%% (%.0f -> %.0f, gate %.1f%%)",
					name, growth, want.AllocsPerOp, got.AllocsPerOp, allocThr))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(os.Stderr, "benchjson: no regressions against", baseline)
	return nil
}
