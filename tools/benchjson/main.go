// Command benchjson is the repo's performance-trajectory harness: it
// runs the root package's benchmark suite (simulator throughput,
// observability overhead, oracle headroom, trace generation and codec),
// parses the `go test -bench` text into a machine-readable document, and
// gates regressions against a committed snapshot.
//
//   - -record writes the snapshot (BENCH_PR6.json by convention),
//     preserving any pre_pr5_baseline and prior_baselines sections
//     already in the file so the before/after story survives re-records;
//     -pre imports a raw `go test -bench` capture as the pre-optimization
//     section, and -prior name=path folds an earlier snapshot's
//     benchmarks in under prior_baselines (e.g. -prior
//     pr5=BENCH_PR5.json keeps the PR5 trajectory in the PR6 file).
//   - -compare re-runs the suite and fails when a benchmark disappears,
//     when any instr/s figure drops more than -threshold percent after
//     machine-speed normalization (see below), or when allocs/op grows
//     more than -alloc-threshold percent (allocations are deterministic,
//     so this catches reintroduced per-access allocation immediately).
//     Wall-clock-only figures (ns/op, MB/s) are reported but not gated:
//     on a shared machine they are too noisy for a hard 5% gate.
//     It also enforces one relational gate: BenchmarkTracingV2/v2 must
//     stay within 2x the allocs/op of BenchmarkTracingV2/off — the
//     mlpcache.events/v2 tracer's allocation-parity contract
//     (docs/PERFORMANCE.md) — so a regression in the binary encoder's
//     zero-alloc Emit path fails the gate even if a snapshot is
//     re-recorded around it.
//
// Machine-speed normalization: this repo benchmarks on virtualized,
// often single-vCPU hosts where steal time moves every wall-clock
// figure at once, by far more than any fixed gate. A host slowdown is
// uniform across the suite; a code regression is not (the suite spans
// disjoint subsystems: trace codec, generators, oracle replay, the
// full simulator). -compare therefore computes the suite-wide median
// of per-benchmark instr/s ratios (current/baseline, clamped at 1.0)
// and gates each benchmark's drop relative to that median. Even after
// normalization, single-iteration samples on such hosts scatter by a
// few percent per benchmark, so the default gate is a coarse 10%
// tripwire — tight enough to catch a lost fast path, loose enough not
// to fire on steal. The precise gates are the allocation ones: a
// regression slowing every subsystem by the same factor (the
// normalizer's deliberate blind spot) or a fine per-op cost creep is
// caught by the absolute allocs/op gates, which are deterministic and
// never normalized.
//
// Each sample is the best of -count full passes over the suite (N
// separate `go test` invocations, not `go test -count N`): spreading a
// benchmark's repetitions across the whole run means a transient slow
// window costs at most one pass of each benchmark instead of every
// repetition of whichever benchmark it lands on, so the best-of maxima
// all come from low-steal windows and ratios between them stay stable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchPattern selects the perf-trajectory suite; bench-smoke separately
// guards that the observability and oracle benchmarks keep existing.
const benchPattern = "BenchmarkSimulatorThroughput|BenchmarkMulticoreThroughput|BenchmarkParallelMulticore|BenchmarkArenaReuse|BenchmarkObservability|BenchmarkTracingV2|BenchmarkLearnedEviction|BenchmarkOracleHeadroom|BenchmarkGeneratorThroughput|BenchmarkTraceEncode|BenchmarkServiceThroughput"

// The relational allocation gate: v2-traced runs must stay within this
// factor of the untraced run's allocs/op (the binary tracer's Emit path
// is allocation-free at steady state, so the two should be near parity).
const (
	tracingOffBench = "BenchmarkTracingV2/off"
	tracingV2Bench  = "BenchmarkTracingV2/v2"
	tracingV2Factor = 2.0
)

// The learned-policy allocation gate (docs/LEARNED.md): the bandit and
// predictor victim paths rank on the shared scratch, so their runs'
// allocs/op must stay within this factor of the LRU baseline's.
const (
	learnedLRUBench     = "BenchmarkLearnedEviction/lru"
	learnedBanditBench  = "BenchmarkLearnedEviction/bandit"
	learnedPredBench    = "BenchmarkLearnedEviction/learned"
	learnedAllocsFactor = 1.5
)

// The parallel-engine gate: the wavefront engine computes bit-identical
// results, so on a host wide enough to exploit it (the recorded cpus
// figure at least parallelMinCPUs) the 4-core parallel leg must match
// or beat the serial interleave's throughput. On narrower hosts the
// comparison is reported but not gated — there is no parallelism to
// win. Judged on the current run, like every relational gate.
const (
	parallelSerial4Bench   = "BenchmarkParallelMulticore/serial4"
	parallelParallel4Bench = "BenchmarkParallelMulticore/parallel4"
	parallelMinCPUs        = 4
)

// The arena gate: a run drawing caches, MSHR files, core models and
// blockmap tables from a warmed arena must allocate at most this
// fraction of a cold run's allocs/op. Allocation counts are
// deterministic, so the factor gates without a noise margin.
const (
	arenaColdBench    = "BenchmarkArenaReuse/cold"
	arenaReusedBench  = "BenchmarkArenaReuse/reused"
	arenaAllocsFactor = 0.5
)

// Sample is one benchmark's aggregated figures. Only the units the
// suite emits are modeled; absent figures are zero and omitted.
type Sample struct {
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	InstrPerSec float64 `json:"instr_per_s,omitempty"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// CPUs records the host's CPU count as reported by the benchmark
	// itself (the parallel suite emits it), so relational gates that
	// need hardware parallelism can disarm on narrow hosts.
	CPUs float64 `json:"cpus,omitempty"`
}

// Snapshot is the committed document.
type Snapshot struct {
	Schema    string            `json:"schema"`
	Go        string            `json:"go"`
	Note      string            `json:"note,omitempty"`
	Count     int               `json:"count"`
	Benchtime string            `json:"benchtime"`
	PreBase   map[string]Sample `json:"pre_pr5_baseline,omitempty"`
	// Prior holds earlier snapshots' benchmark sections keyed by a short
	// label (-prior pr5=BENCH_PR5.json), preserving the cross-PR
	// trajectory inside the current file. Informational, never gated.
	Prior      map[string]map[string]Sample `json:"prior_baselines,omitempty"`
	Benchmarks map[string]Sample            `json:"benchmarks"`
}

func main() {
	var (
		record    = flag.Bool("record", false, "run the suite and write the snapshot")
		compare   = flag.Bool("compare", false, "run the suite and gate against the snapshot")
		out       = flag.String("out", "BENCH_PR6.json", "snapshot path for -record")
		baseline  = flag.String("baseline", "BENCH_PR6.json", "snapshot path for -compare")
		pre       = flag.String("pre", "", "raw `go test -bench` capture to import as pre_pr5_baseline (with -record)")
		prior     = flag.String("prior", "", "name=path of an earlier snapshot to fold into prior_baselines (with -record)")
		note      = flag.String("note", "", "free-form note stored in the snapshot")
		count     = flag.Int("count", 2, "benchmark repetitions; best-of wins")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		threshold = flag.Float64("threshold", 10, "max tolerated instr/s drop after machine-speed normalization, percent")
		allocThr  = flag.Float64("alloc-threshold", 20, "max tolerated allocs/op growth, percent")
	)
	flag.Parse()
	switch {
	case *record == *compare:
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -record or -compare is required")
		os.Exit(2)
	case *record:
		if err := doRecord(*out, *pre, *prior, *note, *count, *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	case *compare:
		if err := doCompare(*baseline, *count, *benchtime, *threshold, *allocThr); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// runSuite takes count full passes over the suite and folds them
// best-of. Separate passes — not `go test -count` — so each
// benchmark's repetitions are spread across the run's whole wall time
// (see the package comment on machine noise).
func runSuite(count int, benchtime string) (map[string]Sample, error) {
	var all strings.Builder
	for i := 0; i < count; i++ {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", benchPattern,
			"-benchtime", benchtime, "-benchmem", ".")
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go test -bench (pass %d/%d): %w", i+1, count, err)
		}
		all.Write(raw)
		all.WriteByte('\n')
	}
	samples := parseBench(all.String())
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark lines in go test output")
	}
	return samples, nil
}

// resultLine matches one benchmark result: name, iteration count, then
// value/unit pairs handled field-by-field below.
var resultLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix strips the -8 style suffix go test appends to
// benchmark names, so snapshots transfer between machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench folds every result line into best-of samples per benchmark:
// throughput units (instr/s, MB/s) keep the maximum across repetitions,
// cost units (ns/op, B/op, allocs/op) the minimum.
func parseBench(out string) map[string]Sample {
	samples := make(map[string]Sample)
	for _, line := range strings.Split(out, "\n") {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		var s Sample
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
			case "instr/s":
				s.InstrPerSec = v
			case "MB/s":
				s.MBPerSec = v
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			case "cpus":
				s.CPUs = v
			}
		}
		prev, seen := samples[name]
		if !seen {
			samples[name] = s
			continue
		}
		samples[name] = Sample{
			NsPerOp:     minNonzero(prev.NsPerOp, s.NsPerOp),
			InstrPerSec: max(prev.InstrPerSec, s.InstrPerSec),
			MBPerSec:    max(prev.MBPerSec, s.MBPerSec),
			BytesPerOp:  minNonzero(prev.BytesPerOp, s.BytesPerOp),
			AllocsPerOp: minNonzero(prev.AllocsPerOp, s.AllocsPerOp),
			CPUs:        max(prev.CPUs, s.CPUs),
		}
	}
	return samples
}

func minNonzero(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	return min(a, b)
}

func doRecord(out, pre, prior, note string, count int, benchtime string) error {
	snap := Snapshot{
		Schema:    "mlpcache-bench/v1",
		Go:        runtime.Version(),
		Note:      note,
		Count:     count,
		Benchtime: benchtime,
	}
	// Carry the pre-optimization baseline and prior snapshots forward
	// across re-records.
	if prevRaw, err := os.ReadFile(out); err == nil {
		var prev Snapshot
		if json.Unmarshal(prevRaw, &prev) == nil {
			snap.PreBase = prev.PreBase
			snap.Prior = prev.Prior
			if note == "" {
				snap.Note = prev.Note
			}
		}
	}
	if pre != "" {
		raw, err := os.ReadFile(pre)
		if err != nil {
			return fmt.Errorf("reading -pre capture: %w", err)
		}
		snap.PreBase = parseBench(string(raw))
	}
	if prior != "" {
		name, path, ok := strings.Cut(prior, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("-prior wants name=path, got %q", prior)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("reading -prior snapshot: %w", err)
		}
		var ps Snapshot
		if err := json.Unmarshal(raw, &ps); err != nil {
			return fmt.Errorf("parsing -prior snapshot %s: %w", path, err)
		}
		if snap.Prior == nil {
			snap.Prior = make(map[string]map[string]Sample)
		}
		snap.Prior[name] = ps.Benchmarks
		// An imported snapshot's own pre-optimization section is the
		// oldest record we have; keep it unless -pre supplies a fresh one.
		if snap.PreBase == nil {
			snap.PreBase = ps.PreBase
		}
	}
	samples, err := runSuite(count, benchtime)
	if err != nil {
		return err
	}
	snap.Benchmarks = samples
	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks to %s\n", len(samples), out)
	return nil
}

func doCompare(baseline string, count int, benchtime string, threshold, allocThr float64) error {
	raw, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline (run `make bench-record` first): %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("parsing %s: %w", baseline, err)
	}
	current, err := runSuite(count, benchtime)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(snap.Benchmarks))
	for name := range snap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	// Machine-speed normalizer: the suite-wide median of per-benchmark
	// instr/s ratios, clamped at 1.0 so a faster machine never raises
	// the bar. Host steal moves the whole suite together; a code
	// regression moves specific benchmarks away from the median.
	var ratios []float64
	for _, name := range names {
		want := snap.Benchmarks[name]
		if got, ok := current[name]; ok && want.InstrPerSec > 0 && got.InstrPerSec > 0 {
			ratios = append(ratios, got.InstrPerSec/want.InstrPerSec)
		}
	}
	norm := 1.0
	if n := len(ratios); n > 0 {
		sort.Float64s(ratios)
		med := ratios[n/2]
		if n%2 == 0 {
			med = (med + ratios[n/2-1]) / 2
		}
		if med < 1 {
			norm = med
		}
	}
	if norm < 1 {
		fmt.Fprintf(os.Stderr,
			"benchjson: machine-speed normalizer %.3f (suite-median instr/s ratio; drops gated relative to it)\n", norm)
	}
	var failures []string
	for _, name := range names {
		want := snap.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: benchmark disappeared from the suite", name))
			continue
		}
		if want.InstrPerSec > 0 {
			raw := 100 * (got.InstrPerSec/want.InstrPerSec - 1)
			drop := 100 * (1 - got.InstrPerSec/(want.InstrPerSec*norm))
			status := "ok"
			if drop > threshold {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"%s: instr/s dropped %.1f%% vs suite median (%.0f -> %.0f raw, normalizer %.3f, gate %.1f%%)",
					name, drop, want.InstrPerSec, got.InstrPerSec, norm, threshold))
			}
			fmt.Fprintf(os.Stderr, "%-45s instr/s %12.0f -> %12.0f (%+.1f%% raw, %+.1f%% vs suite) %s\n",
				name, want.InstrPerSec, got.InstrPerSec, raw, -drop, status)
		} else if want.NsPerOp > 0 && got.NsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "%-45s ns/op   %12.0f -> %12.0f (%+.1f%%) info\n",
				name, want.NsPerOp, got.NsPerOp, 100*(got.NsPerOp-want.NsPerOp)/want.NsPerOp)
		}
		if want.AllocsPerOp > 0 {
			growth := 100 * (got.AllocsPerOp - want.AllocsPerOp) / want.AllocsPerOp
			if growth > allocThr {
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op grew %.1f%% (%.0f -> %.0f, gate %.1f%%)",
					name, growth, want.AllocsPerOp, got.AllocsPerOp, allocThr))
			}
		}
	}
	// Relational gate: the v2 binary tracer's allocation-parity contract
	// holds against the *current* run, not the snapshot, so re-recording
	// cannot bury a zero-alloc regression.
	off, haveOff := current[tracingOffBench]
	v2, haveV2 := current[tracingV2Bench]
	switch {
	case !haveOff || !haveV2:
		failures = append(failures, fmt.Sprintf(
			"%s/%s: tracing benchmarks missing from the suite", tracingOffBench, tracingV2Bench))
	case off.AllocsPerOp > 0 && v2.AllocsPerOp > tracingV2Factor*off.AllocsPerOp:
		failures = append(failures, fmt.Sprintf(
			"%s: allocs/op %.0f exceeds %.0fx untraced (%s at %.0f)",
			tracingV2Bench, v2.AllocsPerOp, tracingV2Factor, tracingOffBench, off.AllocsPerOp))
	default:
		fmt.Fprintf(os.Stderr, "%-45s allocs/op %12.0f vs %9.0f untraced (gate %.0fx) ok\n",
			tracingV2Bench, v2.AllocsPerOp, off.AllocsPerOp, tracingV2Factor)
	}
	// Same discipline for the learned victim paths: bandit and predictor
	// runs must allocate like the LRU baseline, judged on the current run.
	lruRun, haveLRU := current[learnedLRUBench]
	for _, name := range []string{learnedBanditBench, learnedPredBench} {
		pol, havePol := current[name]
		switch {
		case !haveLRU || !havePol:
			failures = append(failures, fmt.Sprintf(
				"%s/%s: learned-eviction benchmarks missing from the suite", learnedLRUBench, name))
		case lruRun.AllocsPerOp > 0 && pol.AllocsPerOp > learnedAllocsFactor*lruRun.AllocsPerOp:
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %.0f exceeds %.1fx LRU (%s at %.0f)",
				name, pol.AllocsPerOp, learnedAllocsFactor, learnedLRUBench, lruRun.AllocsPerOp))
		default:
			fmt.Fprintf(os.Stderr, "%-45s allocs/op %12.0f vs %9.0f lru (gate %.1fx) ok\n",
				name, pol.AllocsPerOp, lruRun.AllocsPerOp, learnedAllocsFactor)
		}
	}
	// The parallel engine must win (or tie) the 4-core race when the host
	// has hardware parallelism to offer; on narrow hosts the figure is
	// informational.
	ser4, haveSer4 := current[parallelSerial4Bench]
	par4, havePar4 := current[parallelParallel4Bench]
	switch {
	case !haveSer4 || !havePar4:
		failures = append(failures, fmt.Sprintf(
			"%s/%s: parallel-engine benchmarks missing from the suite", parallelSerial4Bench, parallelParallel4Bench))
	case par4.CPUs >= parallelMinCPUs && par4.InstrPerSec < ser4.InstrPerSec:
		failures = append(failures, fmt.Sprintf(
			"%s: instr/s %.0f behind serial %.0f on a %.0f-CPU host (gate: parallel >= serial at %d+ CPUs)",
			parallelParallel4Bench, par4.InstrPerSec, ser4.InstrPerSec, par4.CPUs, parallelMinCPUs))
	case par4.CPUs >= parallelMinCPUs:
		fmt.Fprintf(os.Stderr, "%-45s instr/s %12.0f vs %9.0f serial (%.0f CPUs) ok\n",
			parallelParallel4Bench, par4.InstrPerSec, ser4.InstrPerSec, par4.CPUs)
	default:
		fmt.Fprintf(os.Stderr, "%-45s instr/s %12.0f vs %9.0f serial (%.0f CPUs; gate needs %d+) info\n",
			parallelParallel4Bench, par4.InstrPerSec, ser4.InstrPerSec, par4.CPUs, parallelMinCPUs)
	}
	// The arena's whole point is allocation recycling: the reused leg
	// must allocate at most half of the cold leg, judged on the current
	// run so re-recording cannot bury a pooling regression.
	cold, haveCold := current[arenaColdBench]
	reused, haveReused := current[arenaReusedBench]
	switch {
	case !haveCold || !haveReused:
		failures = append(failures, fmt.Sprintf(
			"%s/%s: arena benchmarks missing from the suite", arenaColdBench, arenaReusedBench))
	case cold.AllocsPerOp > 0 && reused.AllocsPerOp > arenaAllocsFactor*cold.AllocsPerOp:
		failures = append(failures, fmt.Sprintf(
			"%s: allocs/op %.0f exceeds %.2fx cold (%s at %.0f)",
			arenaReusedBench, reused.AllocsPerOp, arenaAllocsFactor, arenaColdBench, cold.AllocsPerOp))
	default:
		fmt.Fprintf(os.Stderr, "%-45s allocs/op %12.0f vs %9.0f cold (gate %.2fx) ok\n",
			arenaReusedBench, reused.AllocsPerOp, cold.AllocsPerOp, arenaAllocsFactor)
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(os.Stderr, "benchjson: no regressions against", baseline)
	return nil
}
