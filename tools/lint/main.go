// Command lint enforces repo conventions that go vet cannot express,
// using only go/parser and go/ast (no third-party linters):
//
//   - -docs: every package under internal/ and cmd/ (and the root
//     package) carries a package comment, and every internal package
//     comment anchors the code to the paper with at least one
//     "Section N" / "Figure N" / "Table N" / "Algorithm N" reference,
//     so godoc always says which part of the paper a package models.
//     Additionally, every `learn.*` metric registered in internal/sim
//     must be catalogued (backticked) in docs/LEARNED.md and
//     docs/OBSERVABILITY.md, and every `sim.parallel.*` / `arena.*`
//     metric in docs/OBSERVABILITY.md, so those metric families cannot
//     grow undocumented names.
//   - -stdout: no CLI sends telemetry to stdout. Reports belong on
//     stdout; metric and event JSONL documents belong in files (the
//     docs/OBSERVABILITY.md contract), so passing os.Stdout to
//     WriteJSONL or NewJSONLTracer under cmd/ is an error.
//
// With no mode flags, both checks run. Run via `make docs-check`
// (-docs) or `make lint` (both); tier1 includes both.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// anchorRE is the paper-anchor pattern an internal package comment must
// contain.
var anchorRE = regexp.MustCompile(`(Section|Figure|Table|Algorithm) [0-9]`)

func main() {
	var (
		docs   = flag.Bool("docs", false, "check package comments and paper anchors")
		stdout = flag.Bool("stdout", false, "check that no CLI writes telemetry to stdout")
	)
	flag.Parse()
	if !*docs && !*stdout {
		*docs, *stdout = true, true
	}

	var problems []string
	if *docs {
		problems = append(problems, checkDocs()...)
		problems = append(problems, checkLearnMetricsDocumented()...)
	}
	if *stdout {
		problems = append(problems, checkStdout()...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "lint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// packageDirs returns every directory holding a checked package: the
// repo root, and every directory under internal/ and cmd/ containing
// .go files.
func packageDirs() ([]string, error) {
	dirs := map[string]bool{".": true}
	for _, root := range []string{"internal", "cmd", "tools"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	out := make([]string, 0, len(dirs))
	for d := range dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

// sourceFiles lists the non-test .go files directly inside dir.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	return files, nil
}

func checkDocs() []string {
	dirs, err := packageDirs()
	if err != nil {
		return []string{fmt.Sprintf("lint: %v", err)}
	}
	var problems []string
	for _, dir := range dirs {
		files, err := sourceFiles(dir)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		if len(files) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var doc string
		for _, path := range files {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			if f.Doc != nil {
				doc += f.Doc.Text()
			}
		}
		switch {
		case doc == "":
			problems = append(problems, fmt.Sprintf("%s: package has no package comment", dir))
		case strings.HasPrefix(dir, "internal"+string(filepath.Separator)) && !anchorRE.MatchString(doc):
			problems = append(problems, fmt.Sprintf(
				"%s: package comment cites no paper anchor (Section/Figure/Table/Algorithm N)", dir))
		}
	}
	return problems
}

// metricDocRules maps a registered metric-name prefix to the docs that
// must catalogue (backtick) every name carrying it: the learned family
// is documented twice (its own guide plus the catalog); the parallel
// engine and arena recycling families live in the catalog alone.
var metricDocRules = []struct {
	prefix string
	docs   []string
}{
	{"learn.", []string{"LEARNED.md", "OBSERVABILITY.md"}},
	{"sim.parallel.", []string{"OBSERVABILITY.md"}},
	{"arena.", []string{"OBSERVABILITY.md"}},
}

// checkLearnMetricsDocumented collects every string-literal metric name
// matching a metricDocRules prefix passed to a Counter/Gauge
// registration inside internal/sim and requires each to appear
// backticked in that prefix's required docs. (The contract tests check
// the emitted set at runtime; this check catches a new registration at
// lint time, before any simulation runs.)
func checkLearnMetricsDocumented() []string {
	var problems []string
	registrars := map[string]bool{"Counter": true, "Gauge": true}
	names := map[string]token.Position{}
	err := filepath.WalkDir(filepath.Join("internal", "sim"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registrars[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name := strings.Trim(lit.Value, "`\"")
			for _, rule := range metricDocRules {
				if strings.HasPrefix(name, rule.prefix) {
					names[name] = fset.Position(lit.Pos())
					break
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		return []string{fmt.Sprintf("lint: %v", err)}
	}
	bodies := map[string]string{}
	for _, rule := range metricDocRules {
		for _, doc := range rule.docs {
			if _, ok := bodies[doc]; ok {
				continue
			}
			raw, err := os.ReadFile(filepath.Join("docs", doc))
			if err != nil {
				return []string{fmt.Sprintf("lint: %v", err)}
			}
			bodies[doc] = string(raw)
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		for _, rule := range metricDocRules {
			if !strings.HasPrefix(name, rule.prefix) {
				continue
			}
			for _, doc := range rule.docs {
				if !strings.Contains(bodies[doc], "`"+name+"`") {
					problems = append(problems, fmt.Sprintf(
						"%s: metric %q is not catalogued in docs/%s", names[name], name, doc))
				}
			}
			break
		}
	}
	return problems
}

// checkStdout flags telemetry constructors invoked with os.Stdout
// anywhere under cmd/.
func checkStdout() []string {
	var problems []string
	telemetry := map[string]bool{"WriteJSONL": true, "NewJSONLTracer": true}
	err := filepath.WalkDir("cmd", func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fn := call.Fun.(type) {
			case *ast.SelectorExpr:
				name = fn.Sel.Name
			case *ast.Ident:
				name = fn.Name
			}
			if !telemetry[name] {
				return true
			}
			for _, arg := range call.Args {
				if sel, ok := arg.(*ast.SelectorExpr); ok {
					if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "os" && sel.Sel.Name == "Stdout" {
						problems = append(problems, fmt.Sprintf(
							"%s: %s(os.Stdout, ...) sends telemetry to stdout; reports go to stdout, telemetry to files",
							fset.Position(call.Pos()), name))
					}
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("lint: %v", err))
	}
	return problems
}
