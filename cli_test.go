package mlpcache_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mlpcache"
	"mlpcache/internal/faultinject"
)

// End-to-end tests of the three command-line tools: build each binary
// once, then drive the documented flows (simulate, regenerate an
// experiment, generate/inspect/replay a trace).

// buildTools compiles the commands into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	for tool, pkg := range map[string]string{
		"mlpsim":   "./cmd/mlpsim",
		"mlpexp":   "./cmd/mlpexp",
		"mlptrace": "./cmd/mlptrace",
		"mlptrain": "./cmd/mlptrain",
		"mlpserve": "./cmd/mlpserve",
		"loadgen":  "./tools/loadgen",
	} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func runTool(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	dir := buildTools(t)

	t.Run("mlpsim-list", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-list")
		for _, want := range []string{"art", "mcf", "mgrid"} {
			if !strings.Contains(out, want) {
				t.Fatalf("-list missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("mlpsim-run", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-bench", "micro.figure1",
			"-policy", "lin", "-n", "120000")
		if !strings.Contains(out, "IPC") || !strings.Contains(out, "mlp-cost distribution") {
			t.Fatalf("unexpected mlpsim output:\n%s", out)
		}
	})

	t.Run("mlpexp-exact-figures", func(t *testing.T) {
		out := runTool(t, dir, "mlpexp", "-run", "fig1,fig3b,fig8,ovh")
		for _, want := range []string{"Figure 1", "Figure 3(b)", "Figure 8", "1857"} {
			if !strings.Contains(out, want) {
				t.Fatalf("mlpexp output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("mlpexp-csv", func(t *testing.T) {
		out := runTool(t, dir, "mlpexp", "-run", "fig3b", "-format", "csv")
		if !strings.Contains(out, "420+ cycles,7") {
			t.Fatalf("CSV output malformed:\n%s", out)
		}
	})

	t.Run("trace-pipeline", func(t *testing.T) {
		tr := filepath.Join(dir, "t.trace")
		out := runTool(t, dir, "mlptrace", "-gen", "micro.parallel", "-n", "60000", "-o", tr)
		if !strings.Contains(out, "wrote 60000 instructions") {
			t.Fatalf("generate failed:\n%s", out)
		}
		out = runTool(t, dir, "mlptrace", "-stats", tr)
		if !strings.Contains(out, "instructions      60000") {
			t.Fatalf("stats failed:\n%s", out)
		}
		out = runTool(t, dir, "mlptrace", "-dump", tr, "-limit", "5")
		if !strings.Contains(out, "load") {
			t.Fatalf("dump failed:\n%s", out)
		}
		// Replay the trace through the simulator and cross-check the
		// instruction count.
		out = runTool(t, dir, "mlpsim", "-trace", tr, "-hist=false")
		if !strings.Contains(out, "instructions 60000") {
			t.Fatalf("replay failed:\n%s", out)
		}
	})

	t.Run("mlpsim-unknown-bench-fails", func(t *testing.T) {
		cmd := exec.Command(filepath.Join(dir, "mlpsim"), "-bench", "gcc")
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Fatalf("expected failure for unknown benchmark:\n%s", out)
		}
	})

	// Failure paths: every bad input must produce a one-line diagnostic
	// and a non-zero exit — never a Go panic trace.
	mustFailCleanly := func(t *testing.T, tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(dir, tool), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s %v: expected non-zero exit\n%s", tool, args, out)
		}
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s %v: did not run: %v", tool, args, err)
		}
		if strings.Contains(string(out), "panic:") || strings.Contains(string(out), "goroutine ") {
			t.Fatalf("%s %v: panic escaped to the user:\n%s", tool, args, out)
		}
		return string(out)
	}

	t.Run("mlpsim-bad-policy-fails", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpsim", "-bench", "mcf", "-policy", "belady", "-n", "1000")
		if !strings.Contains(out, "belady") {
			t.Fatalf("diagnostic does not name the bad policy:\n%s", out)
		}
	})

	t.Run("mlpsim-missing-trace-fails", func(t *testing.T) {
		mustFailCleanly(t, "mlpsim", "-trace", filepath.Join(dir, "no-such.trace"))
	})

	t.Run("mlpsim-corrupt-trace-fails", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.trace")
		if err := os.WriteFile(bad, []byte("MLPT\x01\x07\x07\x07"), 0o644); err != nil {
			t.Fatal(err)
		}
		out := mustFailCleanly(t, "mlpsim", "-trace", bad, "-hist=false")
		if !strings.Contains(out, "corrupt") && !strings.Contains(out, "invalid kind") {
			t.Fatalf("diagnostic does not describe the corruption:\n%s", out)
		}
	})

	t.Run("mlpexp-unknown-experiment-fails", func(t *testing.T) {
		mustFailCleanly(t, "mlpexp", "-run", "fig99")
	})

	t.Run("mlptrace-missing-file-fails", func(t *testing.T) {
		mustFailCleanly(t, "mlptrace", "-stats", filepath.Join(dir, "absent.trace"))
	})

	t.Run("mlpsim-oracle-multicore-fails", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpsim", "-bench", "mcf,art",
			"-cores", "2", "-oracle", "-n", "1000")
		if !strings.Contains(out, "-oracle") || !strings.Contains(out, "-cores") {
			t.Fatalf("diagnostic does not name the conflicting flags:\n%s", out)
		}
	})

	t.Run("mlpsim-parallel-single-core-fails", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpsim", "-bench", "mcf",
			"-parallel", "on", "-n", "1000")
		if !strings.Contains(out, "-parallel on") || !strings.Contains(out, "-cores") {
			t.Fatalf("diagnostic does not name the conflicting flags:\n%s", out)
		}
		if strings.Count(strings.TrimSpace(out), "\n") > 1 {
			t.Fatalf("diagnostic is not a one-liner:\n%s", out)
		}
	})

	t.Run("mlpsim-parallel-audit-fails", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpsim", "-bench", "mcf,art", "-cores", "2",
			"-parallel", "on", "-audit", "-n", "1000")
		if !strings.Contains(out, "-parallel on") || !strings.Contains(out, "-audit") {
			t.Fatalf("diagnostic does not name the conflicting flags:\n%s", out)
		}
	})

	t.Run("mlpsim-parallel-bad-mode-fails", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpsim", "-bench", "mcf,art", "-cores", "2",
			"-parallel", "sometimes", "-n", "1000")
		if !strings.Contains(out, "sometimes") {
			t.Fatalf("diagnostic does not echo the bad mode:\n%s", out)
		}
	})

	t.Run("mlpsim-parallel-matches-serial", func(t *testing.T) {
		// The determinism contract at the process boundary: the forced
		// parallel engine must print byte-identical reports to the serial
		// interleave.
		args := []string{"-bench", "mcf,art", "-cores", "2", "-policy", "sbar",
			"-n", "60000", "-hist=false"}
		serial := runTool(t, dir, "mlpsim", append([]string{"-parallel", "off"}, args...)...)
		par := runTool(t, dir, "mlpsim", append([]string{"-parallel", "on"}, args...)...)
		if par != serial {
			t.Fatalf("parallel report diverges from serial:\nserial:\n%s\nparallel:\n%s", serial, par)
		}
	})

	t.Run("mlpsim-audited-run", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-bench", "micro.figure1",
			"-policy", "sbar", "-n", "120000", "-audit", "-hist=false")
		if !strings.Contains(out, "audit:") || !strings.Contains(out, "0 violations") {
			t.Fatalf("audited run did not report a clean audit:\n%s", out)
		}
	})
}

// strictJSONLines strict-decodes a JSONL document: the header line into
// hdr, then every following line into a fresh value from mk, rejecting
// unknown fields so the on-disk format cannot drift from the Go types.
func strictJSONLines(t *testing.T, path string, hdr any, mk func() any) int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	strict := func(line []byte, v any) {
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			t.Fatalf("%s: strict decode of %s: %v", path, line, err)
		}
	}
	if !sc.Scan() {
		t.Fatalf("%s: empty document", path)
	}
	strict(sc.Bytes(), hdr)
	n := 0
	for sc.Scan() {
		strict(sc.Bytes(), mk())
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCLIObservability drives the machine-readable output paths of
// mlpsim/mlpexp and round-trips every document through strict decoders
// against the public API types — the docs/OBSERVABILITY.md contract at
// the process boundary.
func TestCLIObservability(t *testing.T) {
	dir := buildTools(t)

	t.Run("mlpsim-json-report", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-bench", "mcf", "-n", "120000", "-json")
		dec := json.NewDecoder(strings.NewReader(out))
		dec.DisallowUnknownFields()
		var rep mlpcache.RunReport
		if err := dec.Decode(&rep); err != nil {
			t.Fatalf("strict decode of -json output: %v\n%s", err, out)
		}
		if rep.Schema != mlpcache.ReportSchema {
			t.Fatalf("report schema %q, want %q", rep.Schema, mlpcache.ReportSchema)
		}
		if rep.Bench != "mcf" || rep.Instructions != 120000 || len(rep.Metrics) == 0 {
			t.Fatalf("report not populated: schema=%q bench=%q n=%d metrics=%d",
				rep.Schema, rep.Bench, rep.Instructions, len(rep.Metrics))
		}
	})

	t.Run("mlpsim-telemetry-files", func(t *testing.T) {
		mPath := filepath.Join(dir, "run.metrics.jsonl")
		ePath := filepath.Join(dir, "run.events.jsonl")
		out := runTool(t, dir, "mlpsim", "-bench", "twolf", "-policy", "sbar",
			"-n", "150000", "-series", "-audit", "-hist=false",
			"-metrics", mPath, "-trace-events", ePath)
		// Telemetry must not leak into the stdout report.
		if strings.Contains(out, "\"schema\"") {
			t.Fatalf("JSONL leaked to stdout:\n%s", out)
		}
		var mh mlpcache.RunHeader
		n := strictJSONLines(t, mPath, &mh, func() any { return new(mlpcache.MetricSample) })
		if mh.Schema != mlpcache.MetricsSchema || mh.Bench != "twolf" || n == 0 {
			t.Fatalf("metrics document: schema=%q bench=%q samples=%d", mh.Schema, mh.Bench, n)
		}
		var eh mlpcache.RunHeader
		n = strictJSONLines(t, ePath, &eh, func() any { return new(mlpcache.TraceEvent) })
		if eh.Schema != mlpcache.EventsSchema || eh.Policy == "" || n == 0 {
			t.Fatalf("events document: schema=%q policy=%q events=%d", eh.Schema, eh.Policy, n)
		}
	})

	t.Run("mlpexp-json-and-metrics", func(t *testing.T) {
		mPath := filepath.Join(dir, "exp.metrics.jsonl")
		out := runTool(t, dir, "mlpexp", "-run", "fig2", "-bench", "mcf",
			"-n", "60000", "-format", "json", "-metrics", mPath)
		dec := json.NewDecoder(strings.NewReader(out))
		var tbl struct {
			Schema string     `json:"schema"`
			Title  string     `json:"title"`
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
			Notes  []string   `json:"notes"`
		}
		if err := dec.Decode(&tbl); err != nil {
			t.Fatalf("decoding -format json output: %v\n%s", err, out)
		}
		if tbl.Schema != "mlpcache.table/v1" || len(tbl.Rows) == 0 {
			t.Fatalf("table document: schema=%q rows=%d", tbl.Schema, len(tbl.Rows))
		}
		var mh mlpcache.RunHeader
		if n := strictJSONLines(t, mPath, &mh, func() any { return new(mlpcache.MetricSample) }); n == 0 {
			t.Fatal("mlpexp -metrics wrote no samples")
		}
	})

	t.Run("pprof-profiles", func(t *testing.T) {
		cpu := filepath.Join(dir, "cpu.pprof")
		mem := filepath.Join(dir, "mem.pprof")
		runTool(t, dir, "mlpsim", "-bench", "mcf", "-n", "200000", "-hist=false",
			"-cpuprofile", cpu, "-memprofile", mem)
		for _, p := range []string{cpu, mem} {
			info, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() == 0 {
				t.Fatalf("%s is empty", p)
			}
		}
	})
}

// runDocCommands parses one named section's fenced sh block out of
// EXPERIMENTS.md and executes every `go run ./cmd/...` line in it
// (instruction counts reduced, benchmark set restricted, output paths
// redirected into the test dir), so documented commands cannot rot.
func runDocCommands(t *testing.T, dir, section string, minCmds int) {
	t.Helper()
	raw, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	_, body, found := strings.Cut(string(raw), "## "+section)
	if !found {
		t.Fatalf("EXPERIMENTS.md lost its %q section", section)
	}
	_, block, found := strings.Cut(body, "```sh")
	if !found {
		t.Fatalf("%q section lost its fenced command block", section)
	}
	block, _, _ = strings.Cut(block, "```")

	var cmds [][]string
	for _, line := range strings.Split(block, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "go run ./cmd/") {
			cmds = append(cmds, strings.Fields(line))
		}
	}
	if len(cmds) < minCmds {
		t.Fatalf("expected at least %d documented commands in %q, found %d",
			minCmds, section, len(cmds))
	}

	for _, argv := range cmds {
		tool := filepath.Base(argv[2])
		args := append([]string(nil), argv[3:]...)
		var outputs []string
		hasBench := false
		for i := 0; i < len(args)-1; i++ {
			switch args[i] {
			case "-n":
				args[i+1] = "60000"
			case "-snapshot-interval":
				args[i+1] = "20000"
			case "-metrics", "-trace-events", "-cpuprofile", "-memprofile", "-o":
				args[i+1] = filepath.Join(dir, args[i+1])
				outputs = append(outputs, args[i+1])
			case "-events", "-model", "-inspect":
				// An input file a previous documented command wrote
				// into dir; redirect the path, don't expect output.
				args[i+1] = filepath.Join(dir, args[i+1])
			case "-bench":
				hasBench = true
			}
		}
		if tool == "mlpexp" && !hasBench {
			args = append(args, "-bench", "mcf")
		}
		t.Run(strings.Join(argv[2:], " "), func(t *testing.T) {
			runTool(t, dir, tool, args...)
			for _, p := range outputs {
				if info, err := os.Stat(p); err != nil || info.Size() == 0 {
					t.Fatalf("documented command produced no output at %s (err=%v)", p, err)
				}
			}
		})
	}
}

// TestExperimentsCommandsRun executes the documented command blocks of
// EXPERIMENTS.md: the full reproduction flow, the oracle-headroom
// section, and the binary event capture/decode pipeline.
func TestExperimentsCommandsRun(t *testing.T) {
	dir := buildTools(t)
	runDocCommands(t, dir, "Reproducing with metrics export", 5)
	runDocCommands(t, dir, "Measuring oracle headroom", 4)
	runDocCommands(t, dir, "Binary event capture and decode", 5)
	runDocCommands(t, dir, "Multi-core contention", 6)
	runDocCommands(t, dir, "Training and evaluating learned eviction", 5)
}

// TestCLIOracle drives mlpsim -oracle end to end: the text report must
// carry the oracle section, and -json/-metrics must carry the oracle.*
// families alongside the run's own metrics.
func TestCLIOracle(t *testing.T) {
	dir := buildTools(t)

	t.Run("text-report", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-bench", "art", "-policy", "lru",
			"-n", "150000", "-oracle", "-hist=false")
		for _, want := range []string{"oracle:", "belady", "cost-belady", "ehc", "headroom:"} {
			if !strings.Contains(out, want) {
				t.Fatalf("-oracle report missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("json-and-metrics", func(t *testing.T) {
		mPath := filepath.Join(dir, "oracle.metrics.jsonl")
		out := runTool(t, dir, "mlpsim", "-bench", "mcf", "-n", "120000",
			"-oracle", "-json", "-metrics", mPath)
		dec := json.NewDecoder(strings.NewReader(out))
		dec.DisallowUnknownFields()
		var rep mlpcache.RunReport
		if err := dec.Decode(&rep); err != nil {
			t.Fatalf("strict decode of -oracle -json output: %v\n%s", err, out)
		}
		names := map[string]bool{}
		for _, s := range rep.Metrics {
			names[s.Name] = true
		}
		for _, want := range []string{
			"oracle.accesses", "oracle.opt.miss", "oracle.costopt.cost", "oracle.headroom.cost_pct",
		} {
			if !names[want] {
				t.Fatalf("-oracle -json report lacks %q (got %d metrics)", want, len(rep.Metrics))
			}
		}
		var mh mlpcache.RunHeader
		n := strictJSONLines(t, mPath, &mh, func() any { return new(mlpcache.MetricSample) })
		if n == 0 {
			t.Fatal("-oracle -metrics wrote no samples")
		}
	})
}

// TestCLILearned drives the learned eviction subsystem's CLI loop end
// to end (docs/LEARNED.md): mlptrain writes a deterministic model,
// -inspect decodes it, mlpsim runs it as -policy learned, the bandit
// reports its arm statistics, and corrupt model files fail with a
// one-line diagnostic in both consumers.
func TestCLILearned(t *testing.T) {
	dir := buildTools(t)
	model := filepath.Join(dir, "mcf.model")

	t.Run("train", func(t *testing.T) {
		out := runTool(t, dir, "mlptrain", "-bench", "mcf", "-n", "120000", "-o", model)
		for _, want := range []string{"captured", "trained", "model"} {
			if !strings.Contains(out, want) {
				t.Fatalf("mlptrain report missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("train-deterministic", func(t *testing.T) {
		again := filepath.Join(dir, "mcf-again.model")
		runTool(t, dir, "mlptrain", "-bench", "mcf", "-n", "120000", "-o", again)
		a, err := os.ReadFile(model)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("same benchmark, budget and seeds produced different model files (%d vs %d bytes)",
				len(a), len(b))
		}
	})

	t.Run("inspect", func(t *testing.T) {
		out := runTool(t, dir, "mlptrain", "-inspect", model)
		for _, want := range []string{"geometry", "table", "training", "trained signatures"} {
			if !strings.Contains(out, want) {
				t.Fatalf("-inspect report missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("simulate-learned", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-bench", "mcf", "-policy", "learned",
			"-model", model, "-n", "120000", "-hist=false")
		for _, want := range []string{"learned:", "model fills:", "trained"} {
			if !strings.Contains(out, want) {
				t.Fatalf("-policy learned report missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("simulate-bandit", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-bench", "mcf", "-policy", "bandit",
			"-n", "120000", "-hist=false")
		for _, want := range []string{"learned:", "bandit arms:", "arm values:"} {
			if !strings.Contains(out, want) {
				t.Fatalf("-policy bandit report missing %q:\n%s", want, out)
			}
		}
	})

	mustFailCleanly := func(t *testing.T, tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(dir, tool), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s %v: expected non-zero exit\n%s", tool, args, out)
		}
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s %v: did not run: %v", tool, args, err)
		}
		if strings.Contains(string(out), "panic:") || strings.Contains(string(out), "goroutine ") {
			t.Fatalf("%s %v: panic escaped to the user:\n%s", tool, args, out)
		}
		return string(out)
	}

	t.Run("corrupt-model-fails", func(t *testing.T) {
		raw, err := os.ReadFile(model)
		if err != nil {
			t.Fatal(err)
		}
		bad := filepath.Join(dir, "bad.model")
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)/2] ^= 0xFF
		if err := os.WriteFile(bad, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, argv := range [][]string{
			{"mlptrain", "-inspect", bad},
			{"mlpsim", "-bench", "mcf", "-policy", "learned", "-model", bad, "-n", "1000"},
		} {
			out := mustFailCleanly(t, argv[0], argv[1:]...)
			if !strings.Contains(out, "model") {
				t.Fatalf("%v: diagnostic does not mention the model file:\n%s", argv, out)
			}
			if strings.Count(strings.TrimSpace(out), "\n") > 0 {
				t.Fatalf("%v: diagnostic is not one line:\n%s", argv, out)
			}
		}
	})

	t.Run("truncated-model-fails", func(t *testing.T) {
		raw, err := os.ReadFile(model)
		if err != nil {
			t.Fatal(err)
		}
		short := filepath.Join(dir, "short.model")
		if err := os.WriteFile(short, raw[:16], 0o644); err != nil {
			t.Fatal(err)
		}
		mustFailCleanly(t, "mlptrain", "-inspect", short)
		mustFailCleanly(t, "mlpsim", "-bench", "mcf", "-policy", "learned",
			"-model", short, "-n", "1000")
	})

	t.Run("missing-model-fails", func(t *testing.T) {
		mustFailCleanly(t, "mlpsim", "-bench", "mcf", "-policy", "learned",
			"-model", filepath.Join(dir, "absent.model"), "-n", "1000")
	})
}

// TestCLITraceEventFilter checks the sampling/filter flags at the
// process boundary: the filtered stream contains only the requested
// types (plus run boundaries), sampling shrinks it, and an unknown
// filter token fails with a diagnostic instead of a panic.
func TestCLITraceEventFilter(t *testing.T) {
	dir := buildTools(t)

	countTypes := func(path string) (map[string]int, int) {
		t.Helper()
		var hdr mlpcache.RunHeader
		types := map[string]int{}
		n := 0
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(bytes.NewReader(raw))
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		if !sc.Scan() {
			t.Fatalf("%s: empty document", path)
		}
		if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
			t.Fatal(err)
		}
		for sc.Scan() {
			var ev mlpcache.TraceEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatal(err)
			}
			types[string(ev.Type)]++
			n++
		}
		return types, n
	}

	full := filepath.Join(dir, "full.events.jsonl")
	runTool(t, dir, "mlpsim", "-bench", "mcf", "-n", "150000", "-hist=false",
		"-trace-events", full)
	_, nFull := countTypes(full)

	filtered := filepath.Join(dir, "filtered.events.jsonl")
	runTool(t, dir, "mlpsim", "-bench", "mcf", "-n", "150000", "-hist=false",
		"-trace-events", filtered, "-trace-events-sample", "10", "-trace-events-filter", "miss.fill")
	types, nFiltered := countTypes(filtered)
	if nFiltered == 0 {
		t.Fatal("filtered stream is empty")
	}
	if nFiltered*5 > nFull {
		t.Fatalf("sampling did not shrink the stream: %d of %d events kept", nFiltered, nFull)
	}
	for ty := range types {
		if ty != "miss.fill" && ty != "run.start" {
			t.Fatalf("filtered stream leaked type %q", ty)
		}
	}

	cmd := exec.Command(filepath.Join(dir, "mlpsim"), "-bench", "mcf", "-n", "1000",
		"-trace-events", filepath.Join(dir, "x.jsonl"), "-trace-events-filter", "bogus")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown filter token accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "bogus") || strings.Contains(string(out), "panic:") {
		t.Fatalf("bad diagnostic for unknown filter token:\n%s", out)
	}
}

// TestCLIEventsV2 drives the mlpcache.events/v2 pipeline at the process
// boundary: capture the same run in both encodings, decode the binary
// one with mlptrace, and require the decoded JSONL to byte-equal the
// directly-written v1 file; then check -stats/-filter/-limit, snapshot
// emission, run.start framing under mlpexp -workers, and that truncated
// or bit-flipped v2 files fail with a one-line diagnostic.
func TestCLIEventsV2(t *testing.T) {
	dir := buildTools(t)

	v1 := filepath.Join(dir, "cap.v1.jsonl")
	v2 := filepath.Join(dir, "cap.v2.bin")
	runTool(t, dir, "mlpsim", "-bench", "mcf", "-n", "150000", "-hist=false",
		"-trace-events", v1)
	runTool(t, dir, "mlpsim", "-bench", "mcf", "-n", "150000", "-hist=false",
		"-trace-events", v2, "-trace-events-format", "v2")

	t.Run("decode-byte-identical", func(t *testing.T) {
		decoded := runTool(t, dir, "mlptrace", "-events", v2, "-decode")
		want, err := os.ReadFile(v1)
		if err != nil {
			t.Fatal(err)
		}
		if decoded != string(want) {
			t.Fatalf("decoded v2 differs from the directly-written v1 document (%d vs %d bytes)",
				len(decoded), len(want))
		}
	})

	t.Run("v2-is-smaller", func(t *testing.T) {
		i1, err := os.Stat(v1)
		if err != nil {
			t.Fatal(err)
		}
		i2, err := os.Stat(v2)
		if err != nil {
			t.Fatal(err)
		}
		if i2.Size() >= i1.Size() {
			t.Fatalf("v2 capture (%d bytes) not smaller than v1 (%d bytes)", i2.Size(), i1.Size())
		}
	})

	t.Run("stats", func(t *testing.T) {
		out := runTool(t, dir, "mlptrace", "-events", v2, "-stats")
		for _, want := range []string{"mlpcache.events/v2", "miss.issue", "miss.fill", "bench"} {
			if !strings.Contains(out, want) {
				t.Fatalf("-stats output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("filter-and-limit", func(t *testing.T) {
		out := runTool(t, dir, "mlptrace", "-events", v2, "-decode", "-filter", "miss.fill", "-limit", "7")
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		// Header plus at most 7 events, all of the filtered type.
		if len(lines) > 8 {
			t.Fatalf("-limit 7 decoded %d lines", len(lines)-1)
		}
		for _, line := range lines[1:] {
			var ev mlpcache.TraceEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Type != "miss.fill" {
				t.Fatalf("filtered decode leaked type %q", ev.Type)
			}
		}
	})

	t.Run("snapshots", func(t *testing.T) {
		snap := filepath.Join(dir, "snap.v2.bin")
		runTool(t, dir, "mlpsim", "-bench", "mcf", "-n", "150000", "-hist=false",
			"-trace-events", snap, "-trace-events-format", "v2", "-snapshot-interval", "50000")
		out := runTool(t, dir, "mlptrace", "-events", snap, "-decode", "-filter", "snapshot")
		for _, want := range []string{"snapshot.ipc", "snapshot.mpki", "snapshot.avg_cost_q",
			"snapshot.mshr_occupancy", "snapshot.cost_hist"} {
			if !strings.Contains(out, want) {
				t.Fatalf("snapshot decode missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("mlpexp-workers-framing", func(t *testing.T) {
		exp := filepath.Join(dir, "exp.v2.bin")
		runTool(t, dir, "mlpexp", "-run", "fig9", "-bench", "mcf,parser", "-n", "60000",
			"-workers", "4", "-trace-events", exp, "-trace-events-format", "v2")
		out := runTool(t, dir, "mlptrace", "-events", exp, "-decode")
		runs := 0
		sc := bufio.NewScanner(strings.NewReader(out))
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		sc.Scan() // header
		var sawEvent bool
		for sc.Scan() {
			var ev mlpcache.TraceEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Type == "run.start" {
				runs++
			} else if runs == 0 && !sawEvent {
				t.Fatal("events before the first run.start boundary")
			}
			sawEvent = true
		}
		if runs < 2 {
			t.Fatalf("expected at least 2 run.start boundaries, decoded %d", runs)
		}
	})

	// Failure paths: a corrupted v2 file must produce a one-line typed
	// diagnostic and exit 1 — never a panic.
	mustFailCleanly := func(t *testing.T, tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(dir, tool), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s %v: expected non-zero exit\n%s", tool, args, out)
		}
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s %v: did not run: %v", tool, args, err)
		}
		if strings.Contains(string(out), "panic:") || strings.Contains(string(out), "goroutine ") {
			t.Fatalf("%s %v: panic escaped to the user:\n%s", tool, args, out)
		}
		return string(out)
	}

	good, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated-fails", func(t *testing.T) {
		bad := filepath.Join(dir, "trunc.v2.bin")
		if err := os.WriteFile(bad, faultinject.Truncate(good, 10), 0o644); err != nil {
			t.Fatal(err)
		}
		out := mustFailCleanly(t, "mlptrace", "-events", bad, "-decode")
		if !strings.Contains(out, "mlptrace:") {
			t.Fatalf("diagnostic not one-line prefixed:\n%s", out)
		}
	})

	t.Run("bitflipped-fails", func(t *testing.T) {
		// Flip bits in the record region (past magic+header) — with the
		// varint framing gone, decoding must fail, and cleanly. The
		// corruption is deterministic (fixed seed over fixed bytes), so
		// this cannot flake.
		bad := filepath.Join(dir, "flip.v2.bin")
		if err := os.WriteFile(bad, faultinject.FlipBits(good, 7, 64, 80), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(filepath.Join(dir, "mlptrace"), "-events", bad, "-decode")
		out, err := cmd.CombinedOutput()
		// Decoding may legitimately succeed if every flipped bit lands in
		// field payloads rather than framing; what must never happen is a
		// panic or a silent half-write on failure.
		if strings.Contains(string(out), "panic:") || strings.Contains(string(out), "goroutine ") {
			t.Fatalf("panic on bit-flipped input:\n%s", out)
		}
		if err != nil && !strings.Contains(string(out), "mlptrace:") {
			t.Fatalf("failure without a one-line diagnostic:\n%s", out)
		}
	})

	t.Run("not-a-v2-file-fails", func(t *testing.T) {
		out := mustFailCleanly(t, "mlptrace", "-events", v1, "-decode")
		if !strings.Contains(out, "magic") {
			t.Fatalf("diagnostic does not mention the bad magic:\n%s", out)
		}
	})

	t.Run("bad-format-flag-fails", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpsim", "-bench", "mcf", "-n", "1000",
			"-trace-events", filepath.Join(dir, "x.bin"), "-trace-events-format", "v3")
		if !strings.Contains(out, "v3") {
			t.Fatalf("diagnostic does not name the bad format:\n%s", out)
		}
	})

	t.Run("snapshot-without-trace-fails", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpsim", "-bench", "mcf", "-n", "1000",
			"-snapshot-interval", "500")
		if !strings.Contains(out, "trace-events") {
			t.Fatalf("diagnostic does not point at -trace-events:\n%s", out)
		}
	})
}

// TestCLIWorkers checks mlpexp -workers produces the same table at any
// setting.
func TestCLIWorkers(t *testing.T) {
	dir := buildTools(t)
	serial := runTool(t, dir, "mlpexp", "-run", "fig9", "-bench", "mcf,parser",
		"-n", "60000", "-workers", "1")
	parallel := runTool(t, dir, "mlpexp", "-run", "fig9", "-bench", "mcf,parser",
		"-n", "60000", "-workers", "4")
	if serial != parallel {
		t.Fatalf("-workers changed the output:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// serveSection parses the "Running sweeps as a service" block of
// EXPERIMENTS.md into its daemon commands (go run lines) and curl
// lines, so TestCLIServe can execute the documented flow.
func serveSection(t *testing.T) (goRuns [][]string, curls []string) {
	t.Helper()
	raw, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	_, body, found := strings.Cut(string(raw), "## Running sweeps as a service")
	if !found {
		t.Fatal("EXPERIMENTS.md lost its \"Running sweeps as a service\" section")
	}
	_, block, found := strings.Cut(body, "```sh")
	if !found {
		t.Fatal("service section lost its fenced command block")
	}
	block, _, _ = strings.Cut(block, "```")
	for _, line := range strings.Split(block, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "go run ./"):
			goRuns = append(goRuns, strings.Fields(line))
		case strings.HasPrefix(line, "curl "):
			curls = append(curls, line)
		}
	}
	if len(goRuns) < 4 || len(curls) < 5 {
		t.Fatalf("service section documents %d go-run and %d curl commands; format changed?",
			len(goRuns), len(curls))
	}
	return goRuns, curls
}

// startDaemon launches a built daemon binary on an ephemeral port and
// returns its base URL, the running command, and a channel that yields
// the exit error once the process stops.
func startDaemon(t *testing.T, dir, tool string, args ...string) (string, *exec.Cmd, <-chan error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	var base string
	for sc.Scan() {
		if _, addr, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("%s never announced its listen address", tool)
	}
	// Drain the rest of stderr so the daemon never blocks on the pipe.
	drained := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteString("\n")
		}
		drained <- rest.String()
	}()
	exited := make(chan error, 1)
	go func() {
		err := cmd.Wait()
		t.Logf("%s stderr after startup:\n%s", tool, <-drained)
		exited <- err
	}()
	return base, cmd, exited
}

// curlEquivalent executes one documented curl line against base using
// net/http (the test environment need not ship curl) and returns the
// response body. Only the two shapes the doc uses are supported.
func curlEquivalent(t *testing.T, base, line string) string {
	t.Helper()
	var (
		resp *http.Response
		err  error
	)
	if _, rest, isPost := strings.Cut(line, "-d '"); isPost {
		payload, after, ok := strings.Cut(rest, "'")
		if !ok {
			t.Fatalf("unparseable curl line: %s", line)
		}
		path := urlPath(t, strings.TrimSpace(after))
		resp, err = http.Post(base+path, "application/json", strings.NewReader(payload))
	} else {
		fields := strings.Fields(line)
		path := urlPath(t, fields[len(fields)-1])
		resp, err = http.Get(base + path)
	}
	if err != nil {
		t.Fatalf("curl line %q: %v", line, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("curl line %q: status %d: %s", line, resp.StatusCode, buf.String())
	}
	return buf.String()
}

// urlPath strips the documented fixed address down to its path.
func urlPath(t *testing.T, u string) string {
	t.Helper()
	i := strings.Index(u, "/v1/")
	if i < 0 {
		if j := strings.LastIndex(u, "/"); j > len("http://") {
			return u[j:]
		}
		t.Fatalf("unparseable documented URL %q", u)
	}
	return u[i:]
}

// TestCLIServe drives the documented sweep-service flow end to end:
// daemon up on an ephemeral port, every documented curl exchange over
// the wire, the load generator against the live address, then a SIGTERM
// drain that must exit 0. The in-process chaos drill and the mlpexp
// -serve alias run afterwards.
func TestCLIServe(t *testing.T) {
	dir := buildTools(t)
	goRuns, curls := serveSection(t)

	// The documented daemon line must be the mlpserve invocation.
	if filepath.Base(goRuns[0][2]) != "mlpserve" {
		t.Fatalf("first documented command is %v, want mlpserve", goRuns[0])
	}
	base, cmd, exited := startDaemon(t, dir, "mlpserve", "-addr", "127.0.0.1:0")

	for _, line := range curls {
		line := line
		t.Run(line, func(t *testing.T) {
			body := curlEquivalent(t, base, line)
			switch {
			case strings.Contains(line, "/v1/jobs") && strings.Contains(line, "experiment"):
				if !strings.Contains(body, "mlpcache.table/v1") {
					t.Fatalf("experiment job did not return a table document: %.200s", body)
				}
			case strings.Contains(line, "/v1/jobs"):
				if !strings.Contains(body, "mlpcache.metrics/v1") {
					t.Fatalf("job did not return a metrics document: %.200s", body)
				}
			case strings.Contains(line, "/metrics"):
				if !strings.Contains(body, "service.jobs.admitted") {
					t.Fatalf("/metrics missing service counters: %.200s", body)
				}
			}
		})
	}

	// The documented loadgen-against-a-live-daemon command, retargeted.
	var loadgenArgs []string
	for _, argv := range goRuns {
		if strings.Contains(argv[2], "loadgen") && hasFlag(argv, "-url") {
			loadgenArgs = argv[3:]
			break
		}
	}
	if loadgenArgs == nil {
		t.Fatal("service section lost its loadgen -url command")
	}
	for i := range loadgenArgs {
		if loadgenArgs[i] == "-url" {
			loadgenArgs[i+1] = base
		}
	}
	out, err := exec.Command(filepath.Join(dir, "loadgen"), loadgenArgs...).CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen against live daemon: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 lost") {
		t.Fatalf("loadgen lost jobs:\n%s", out)
	}

	// Graceful drain: SIGTERM, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("mlpserve exit after SIGTERM: %v (want 0)", err)
		}
	case <-time.After(time.Minute):
		cmd.Process.Kill()
		t.Fatal("mlpserve failed to drain on SIGTERM")
	}

	// The self-contained chaos drill.
	var chaosArgs []string
	for _, argv := range goRuns {
		if strings.Contains(argv[2], "loadgen") && !hasFlag(argv, "-url") {
			chaosArgs = argv[3:]
			break
		}
	}
	if chaosArgs == nil {
		t.Fatal("service section lost its in-process chaos loadgen command")
	}
	out, err = exec.Command(filepath.Join(dir, "loadgen"), chaosArgs...).CombinedOutput()
	if err != nil {
		t.Fatalf("in-process chaos loadgen: %v\n%s", err, out)
	}

	// The mlpexp -serve alias answers jobs and drains too.
	base, cmd, exited = startDaemon(t, dir, "mlpexp", "-serve", "-addr", "127.0.0.1:0")
	body := curlEquivalent(t, base, "curl -s http://127.0.0.1:8321/healthz")
	if !strings.Contains(body, "ok") {
		t.Fatalf("mlpexp -serve healthz: %q", body)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("mlpexp -serve exit after SIGTERM: %v (want 0)", err)
		}
	case <-time.After(time.Minute):
		cmd.Process.Kill()
		t.Fatal("mlpexp -serve failed to drain on SIGTERM")
	}
}

func hasFlag(argv []string, flag string) bool {
	for _, a := range argv {
		if a == flag {
			return true
		}
	}
	return false
}

// TestCLITimeout checks the -timeout flags: an expired budget is a
// one-line typed diagnostic and exit 1, never a panic or a hang.
func TestCLITimeout(t *testing.T) {
	dir := buildTools(t)
	mustFailCleanly := func(t *testing.T, tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(dir, tool), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s %v: expected non-zero exit\n%s", tool, args, out)
		}
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s %v: did not run: %v", tool, args, err)
		}
		if strings.Contains(string(out), "panic:") || strings.Contains(string(out), "goroutine ") {
			t.Fatalf("%s %v: panic escaped to the user:\n%s", tool, args, out)
		}
		return string(out)
	}

	t.Run("mlpsim", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpsim", "-bench", "mcf", "-n", "80000000",
			"-timeout", "100ms", "-hist=false")
		if !strings.Contains(out, "cancelled") {
			t.Fatalf("diagnostic does not say cancelled:\n%s", out)
		}
	})

	t.Run("mlpexp", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpexp", "-run", "tab3", "-n", "80000000",
			"-bench", "mcf", "-timeout", "100ms")
		if !strings.Contains(out, "cancelled") {
			t.Fatalf("diagnostic does not say cancelled:\n%s", out)
		}
	})

	t.Run("mlpsim-generous-timeout-succeeds", func(t *testing.T) {
		runTool(t, dir, "mlpsim", "-bench", "micro.isolated", "-n", "50000",
			"-timeout", "5m", "-hist=false")
	})
}
