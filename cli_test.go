package mlpcache_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end tests of the three command-line tools: build each binary
// once, then drive the documented flows (simulate, regenerate an
// experiment, generate/inspect/replay a trace).

// buildTools compiles the commands into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range []string{"mlpsim", "mlpexp", "mlptrace"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func runTool(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	dir := buildTools(t)

	t.Run("mlpsim-list", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-list")
		for _, want := range []string{"art", "mcf", "mgrid"} {
			if !strings.Contains(out, want) {
				t.Fatalf("-list missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("mlpsim-run", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-bench", "micro.figure1",
			"-policy", "lin", "-n", "120000")
		if !strings.Contains(out, "IPC") || !strings.Contains(out, "mlp-cost distribution") {
			t.Fatalf("unexpected mlpsim output:\n%s", out)
		}
	})

	t.Run("mlpexp-exact-figures", func(t *testing.T) {
		out := runTool(t, dir, "mlpexp", "-run", "fig1,fig3b,fig8,ovh")
		for _, want := range []string{"Figure 1", "Figure 3(b)", "Figure 8", "1857"} {
			if !strings.Contains(out, want) {
				t.Fatalf("mlpexp output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("mlpexp-csv", func(t *testing.T) {
		out := runTool(t, dir, "mlpexp", "-run", "fig3b", "-format", "csv")
		if !strings.Contains(out, "420+ cycles,7") {
			t.Fatalf("CSV output malformed:\n%s", out)
		}
	})

	t.Run("trace-pipeline", func(t *testing.T) {
		tr := filepath.Join(dir, "t.trace")
		out := runTool(t, dir, "mlptrace", "-gen", "micro.parallel", "-n", "60000", "-o", tr)
		if !strings.Contains(out, "wrote 60000 instructions") {
			t.Fatalf("generate failed:\n%s", out)
		}
		out = runTool(t, dir, "mlptrace", "-stats", tr)
		if !strings.Contains(out, "instructions      60000") {
			t.Fatalf("stats failed:\n%s", out)
		}
		out = runTool(t, dir, "mlptrace", "-dump", tr, "-limit", "5")
		if !strings.Contains(out, "load") {
			t.Fatalf("dump failed:\n%s", out)
		}
		// Replay the trace through the simulator and cross-check the
		// instruction count.
		out = runTool(t, dir, "mlpsim", "-trace", tr, "-hist=false")
		if !strings.Contains(out, "instructions 60000") {
			t.Fatalf("replay failed:\n%s", out)
		}
	})

	t.Run("mlpsim-unknown-bench-fails", func(t *testing.T) {
		cmd := exec.Command(filepath.Join(dir, "mlpsim"), "-bench", "gcc")
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Fatalf("expected failure for unknown benchmark:\n%s", out)
		}
	})

	// Failure paths: every bad input must produce a one-line diagnostic
	// and a non-zero exit — never a Go panic trace.
	mustFailCleanly := func(t *testing.T, tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(dir, tool), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s %v: expected non-zero exit\n%s", tool, args, out)
		}
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s %v: did not run: %v", tool, args, err)
		}
		if strings.Contains(string(out), "panic:") || strings.Contains(string(out), "goroutine ") {
			t.Fatalf("%s %v: panic escaped to the user:\n%s", tool, args, out)
		}
		return string(out)
	}

	t.Run("mlpsim-bad-policy-fails", func(t *testing.T) {
		out := mustFailCleanly(t, "mlpsim", "-bench", "mcf", "-policy", "belady", "-n", "1000")
		if !strings.Contains(out, "belady") {
			t.Fatalf("diagnostic does not name the bad policy:\n%s", out)
		}
	})

	t.Run("mlpsim-missing-trace-fails", func(t *testing.T) {
		mustFailCleanly(t, "mlpsim", "-trace", filepath.Join(dir, "no-such.trace"))
	})

	t.Run("mlpsim-corrupt-trace-fails", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.trace")
		if err := os.WriteFile(bad, []byte("MLPT\x01\x07\x07\x07"), 0o644); err != nil {
			t.Fatal(err)
		}
		out := mustFailCleanly(t, "mlpsim", "-trace", bad, "-hist=false")
		if !strings.Contains(out, "corrupt") && !strings.Contains(out, "invalid kind") {
			t.Fatalf("diagnostic does not describe the corruption:\n%s", out)
		}
	})

	t.Run("mlpexp-unknown-experiment-fails", func(t *testing.T) {
		mustFailCleanly(t, "mlpexp", "-run", "fig99")
	})

	t.Run("mlptrace-missing-file-fails", func(t *testing.T) {
		mustFailCleanly(t, "mlptrace", "-stats", filepath.Join(dir, "absent.trace"))
	})

	t.Run("mlpsim-audited-run", func(t *testing.T) {
		out := runTool(t, dir, "mlpsim", "-bench", "micro.figure1",
			"-policy", "sbar", "-n", "120000", "-audit", "-hist=false")
		if !strings.Contains(out, "audit:") || !strings.Contains(out, "0 violations") {
			t.Fatalf("audited run did not report a clean audit:\n%s", out)
		}
	})
}
