module mlpcache

go 1.22
