// Acceptance tests for docs/OBSERVABILITY.md: the metric and event
// catalogs in that document are parsed and compared — in both
// directions — against what the simulator actually registers and
// emits, so the doc cannot drift from the code. The JSONL documents
// are round-tripped through strict decoders to pin the schemas.
package mlpcache

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"testing"

	"mlpcache/internal/experiments"
	"mlpcache/internal/metrics"
	"mlpcache/internal/oracle"
	"mlpcache/internal/prefetch"
	"mlpcache/internal/service"
	"mlpcache/internal/sim"
	"mlpcache/internal/trace"
	"mlpcache/internal/workload"
)

// catalogRow matches one catalog table row in docs/OBSERVABILITY.md,
// capturing the backticked dotted name in the first column and the
// second column. Rows whose second column is a metric kind belong to
// the metric catalog; rows in the event table have prose there.
var catalogRow = regexp.MustCompile("^\\| `([a-z][a-z0-9_.]*)` \\| ([^|]*) \\|")

// templateRow matches the per-core template rows of the multi-core
// metric catalog (`core.<i>.NAME`); parseCatalogs expands `<i>` for
// every core of the covering multi-core run.
var templateRow = regexp.MustCompile("^\\| `core\\.<i>\\.([a-z][a-z0-9_.]*)` \\| ([^|]*) \\|")

// multicoreCores is how many cores the covering multi-core run uses —
// template rows expand to exactly this many concrete names.
const multicoreCores = 2

// parseCatalogs reads the observability contract and returns the
// documented metric catalog (name -> kind) and event-type set.
func parseCatalogs(t *testing.T) (map[string]metrics.Kind, map[string]bool) {
	t.Helper()
	raw, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("reading contract doc: %v", err)
	}
	kinds := map[string]metrics.Kind{
		"counter":   metrics.KindCounter,
		"gauge":     metrics.KindGauge,
		"histogram": metrics.KindHistogram,
		"series":    metrics.KindSeries,
	}
	docMetrics := map[string]metrics.Kind{}
	docEvents := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := catalogRow.FindStringSubmatch(line)
		if m == nil {
			// Per-core template rows: expand `<i>` for each core of
			// the covering multi-core run.
			if tm := templateRow.FindStringSubmatch(line); tm != nil {
				k, ok := kinds[strings.TrimSpace(tm[2])]
				if !ok {
					t.Errorf("template row %q has no metric kind", line)
					continue
				}
				for i := 0; i < multicoreCores; i++ {
					name := fmt.Sprintf("core.%d.%s", i, tm[1])
					if _, dup := docMetrics[name]; dup {
						t.Errorf("doc lists metric %q twice", name)
					}
					docMetrics[name] = k
				}
			}
			continue
		}
		name, second := m[1], strings.TrimSpace(m[2])
		if k, ok := kinds[second]; ok {
			if _, dup := docMetrics[name]; dup {
				t.Errorf("doc lists metric %q twice", name)
			}
			docMetrics[name] = k
		} else {
			docEvents[name] = true
		}
	}
	if len(docMetrics) == 0 || len(docEvents) == 0 {
		t.Fatalf("catalog parse found %d metrics, %d events — table format changed?",
			len(docMetrics), len(docEvents))
	}
	return docMetrics, docEvents
}

// observedRun runs one small simulation with event tracing into sink
// and returns its result. The covering configurations are chosen so
// that together they register every cataloged metric and emit every
// event type: an audited, sampled LRU run covers the unconditional,
// sampled and audited sections; an audited, sampled rand-dynamic SBAR
// run covers the hybrid section (twolf drives enough leader contests
// to move PSEL); a prefetch-enabled run produces miss.merge events
// (demand upgrades of late prefetches — the only merge source at this
// instruction budget).
func observedRun(t testing.TB, bench string, spec sim.PolicySpec, prefetchOn bool, sink metrics.Tracer) sim.Result {
	t.Helper()
	w, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 300_000
	cfg.SampleInterval = 50_000
	cfg.SnapshotInterval = 60_000 // emits every snapshot.* type when sink != nil
	cfg.Audit = true
	cfg.Policy = spec
	if spec.RandDynamic {
		cfg.EpochInstructions = 100_000
	}
	if prefetchOn {
		pcfg := prefetch.DefaultConfig()
		cfg.Prefetch = &pcfg
	}
	cfg.Trace = sink
	return sim.MustRun(cfg, w.Build(42))
}

func coveringRuns(t testing.TB, sink metrics.Tracer) []sim.Result {
	return []sim.Result{
		observedRun(t, "mcf", sim.PolicySpec{Kind: sim.PolicyLRU}, false, sink),
		observedRun(t, "twolf", sim.PolicySpec{
			Kind: sim.PolicySBAR, RandDynamic: true, Seed: 42,
		}, false, sink),
		observedRun(t, "mgrid", sim.PolicySpec{Kind: sim.PolicyLRU}, true, sink),
	}
}

// oracleRegistry captures one small LRU run, compares it against the
// offline oracles, and returns a registry holding only the oracle.*
// families — exactly what mlpsim -oracle adds to a run's registry.
func oracleRegistry(t testing.TB) *metrics.Registry {
	t.Helper()
	w, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("unknown benchmark mcf")
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 120_000
	cap := oracle.NewCapture()
	cfg.Capture = cap
	sim.MustRun(cfg, w.Build(42))
	sets, err := cfg.L2.SetCount()
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	oracle.Compare(cap.Log(), sets, cfg.L2.Assoc).Observe(reg)
	return reg
}

// multicoreRegistry runs the covering multi-core simulation — two cores
// (mcf+art) sharing the L2 under audited rand-dynamic SBAR, so the
// partitioned per-thread selectors exist and core.<i>.psel_value
// registers — and returns its MultiResult registry: the multicore.*
// family plus every expanded core.<i>.* template row.
func multicoreRegistry(t testing.TB) *metrics.Registry {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 120_000
	cfg.Audit = true
	cfg.Policy = sim.PolicySpec{Kind: sim.PolicySBAR, RandDynamic: true, Seed: 42}
	cfg.EpochInstructions = 60_000
	var srcs []trace.Source
	for i, bench := range []string{"mcf", "art"} {
		w, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("unknown benchmark %q", bench)
		}
		srcs = append(srcs, w.Build(42+uint64(i)))
	}
	if len(srcs) != multicoreCores {
		t.Fatalf("covering mix has %d cores, template expansion assumes %d", len(srcs), multicoreCores)
	}
	res, err := sim.RunMulti(cfg, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	return res.Metrics()
}

// parallelRegistry returns the registry of the covering parallel run —
// a two-core mix executed by the wavefront engine (mlpsim -parallel on)
// drawing from a warmed arena — so the sim.parallel.* family registers
// from MultiResult.Parallel and the arena.* recycling family from
// ArenaStats.Observe, exactly as mlpsim composes them.
func parallelRegistry(t testing.TB) *metrics.Registry {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 60_000
	cfg.Parallel = sim.ParallelOn
	cfg.Arena = sim.NewArena()
	var srcs []trace.Source
	for i, bench := range []string{"mcf", "art"} {
		w, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("unknown benchmark %q", bench)
		}
		srcs = append(srcs, w.Build(42+uint64(i)))
	}
	res, err := sim.RunMulti(cfg, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parallel == nil {
		t.Fatal("forced parallel run reported no ParallelStats")
	}
	reg := res.Metrics()
	cfg.Arena.Stats().Observe(reg)
	return reg
}

// learnRegistry returns the registry of the covering learned run — a
// bandit simulation, whose Stats populate every field observeLearn
// exports, so the full learn.* family (docs/LEARNED.md) registers.
func learnRegistry(t testing.TB) *metrics.Registry {
	t.Helper()
	w, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("unknown benchmark mcf")
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 120_000
	cfg.Policy = sim.PolicySpec{Kind: sim.PolicyBandit, Seed: 42}
	return sim.MustRun(cfg, w.Build(42)).Metrics()
}

// serviceRegistry returns the sweep-service daemon's service.* family —
// what mlpserve's GET /metrics renders. Every service metric registers
// on any snapshot (zero-valued counters included), so no jobs need run.
func serviceRegistry(t testing.TB) *metrics.Registry {
	t.Helper()
	s, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	return s.MetricsSnapshot()
}

// TestMetricCatalogMatchesEmission asserts set equality between the
// documented metric catalog and the union of names registered by the
// two covering runs — every documented metric is emitted, and every
// emitted metric is documented, with matching kinds.
func TestMetricCatalogMatchesEmission(t *testing.T) {
	docMetrics, _ := parseCatalogs(t)

	emitted := map[string]metrics.Kind{}
	for _, res := range coveringRuns(t, nil) {
		for _, s := range res.Metrics().Samples() {
			emitted[s.Name] = s.Kind
		}
	}
	// The oracle families (docs/OBSERVABILITY.md "Oracle runs only") are
	// registered by mlpsim -oracle via oracle.Comparison.Observe; a
	// captured run covers them.
	for _, s := range oracleRegistry(t).Samples() {
		emitted[s.Name] = s.Kind
	}
	// The learned-policy family (mlpsim -policy bandit/learned): learn.*.
	for _, s := range learnRegistry(t).Samples() {
		emitted[s.Name] = s.Kind
	}
	// The sweep-service daemon's service.* family (mlpserve /metrics).
	for _, s := range serviceRegistry(t).Samples() {
		emitted[s.Name] = s.Kind
	}
	// The multi-core families (mlpsim -cores N): multicore.* and the
	// per-core core.<i>.* groups the template rows expand to.
	for _, s := range multicoreRegistry(t).Samples() {
		emitted[s.Name] = s.Kind
	}
	// The parallel engine (mlpsim -parallel on) and arena recycling
	// families: sim.parallel.* and arena.*.
	for _, s := range parallelRegistry(t).Samples() {
		emitted[s.Name] = s.Kind
	}

	for name, kind := range docMetrics {
		got, ok := emitted[name]
		if !ok {
			t.Errorf("documented metric %q never registered by a covering run", name)
			continue
		}
		if got != kind {
			t.Errorf("metric %q: doc says %s, registry says %s", name, kind, got)
		}
	}
	for name := range emitted {
		if _, ok := docMetrics[name]; !ok {
			t.Errorf("registered metric %q missing from docs/OBSERVABILITY.md", name)
		}
	}
}

// TestEventCatalogMatchesEmission asserts the documented event types
// are exactly the types the metrics package defines, and that every
// one of them is actually emitted by the covering runs plus one
// experiment-runner invocation (the source of run.start).
func TestEventCatalogMatchesEmission(t *testing.T) {
	_, docEvents := parseCatalogs(t)

	defined := map[string]bool{}
	for _, ty := range metrics.AllEventTypes() {
		defined[string(ty)] = true
	}
	for ty := range docEvents {
		if !defined[ty] {
			t.Errorf("documented event type %q has no metrics.EventType constant", ty)
		}
	}
	for ty := range defined {
		if !docEvents[ty] {
			t.Errorf("event type %q missing from docs/OBSERVABILITY.md", ty)
		}
	}

	seen := map[metrics.EventType]bool{}
	sink := metrics.FuncTracer(func(ev metrics.Event) { seen[ev.Type] = true })
	coveringRuns(t, sink)

	r := experiments.NewRunner(60_000, 42)
	r.Benchmarks = []string{"mcf"}
	r.Trace = sink
	if err := experiments.RunByID(r, "fig2", io.Discard); err != nil {
		t.Fatalf("fig2: %v", err)
	}

	for ty := range defined {
		if !seen[metrics.EventType(ty)] {
			t.Errorf("event type %q documented but never emitted by the covering runs", ty)
		}
	}
	for ty := range seen {
		if !defined[string(ty)] {
			t.Errorf("emitted event type %q is undocumented", ty)
		}
	}
}

// strictLine decodes one JSONL line into v, rejecting unknown fields
// so schema drift in either direction fails the test.
func strictLine(t *testing.T, line []byte, v any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("strict decode of %s: %v", line, err)
	}
}

// TestMetricsDocumentRoundTrip writes a full metrics document and
// strict-decodes every line: header first with the right schema, then
// one sorted sample per metric.
func TestMetricsDocumentRoundTrip(t *testing.T) {
	res := observedRun(t, "mcf", sim.PolicySpec{Kind: sim.PolicyLRU}, false, nil)
	var buf bytes.Buffer
	if err := res.Metrics().WriteJSONL(&buf, res.Header("mcf", 42)); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty document")
	}
	var hdr metrics.RunHeader
	strictLine(t, sc.Bytes(), &hdr)
	if hdr.Schema != metrics.MetricsSchema {
		t.Fatalf("header schema %q, want %q", hdr.Schema, metrics.MetricsSchema)
	}
	if hdr.Bench != "mcf" || hdr.Instructions == 0 || hdr.IPC == 0 {
		t.Fatalf("header not populated: %+v", hdr)
	}

	var prev string
	n := 0
	for sc.Scan() {
		var s metrics.Sample
		strictLine(t, sc.Bytes(), &s)
		if s.Name <= prev {
			t.Fatalf("samples not strictly sorted: %q after %q", s.Name, prev)
		}
		prev = s.Name
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != res.Metrics().Len() {
		t.Fatalf("decoded %d samples, registry holds %d", n, res.Metrics().Len())
	}
}

// TestEventsDocumentRoundTrip streams events through a JSONLTracer and
// strict-decodes the whole document, checking the header schema and
// that every line carries a documented type.
func TestEventsDocumentRoundTrip(t *testing.T) {
	_, docEvents := parseCatalogs(t)
	var buf bytes.Buffer
	tr := metrics.NewJSONLTracer(&buf, metrics.RunHeader{Bench: "twolf", Policy: "sbar", Seed: 42})
	observedRun(t, "twolf", sim.PolicySpec{Kind: sim.PolicySBAR, Seed: 42}, false, tr)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() == 0 {
		t.Fatal("no events emitted")
	}

	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		t.Fatal("empty document")
	}
	var hdr metrics.RunHeader
	strictLine(t, sc.Bytes(), &hdr)
	if hdr.Schema != metrics.EventsSchema {
		t.Fatalf("header schema %q, want %q", hdr.Schema, metrics.EventsSchema)
	}

	var n uint64
	for sc.Scan() {
		var ev metrics.Event
		strictLine(t, sc.Bytes(), &ev)
		if !docEvents[string(ev.Type)] {
			t.Fatalf("undocumented event type %q in stream", ev.Type)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != tr.Events() {
		t.Fatalf("decoded %d events, tracer counted %d", n, tr.Events())
	}
}

// v2Row matches one mlpcache.events/v2 record-ID table row in
// docs/OBSERVABILITY.md: a numeric ID column, then the backticked event
// type. The leading number keeps these rows out of catalogRow's reach.
var v2Row = regexp.MustCompile("^\\| ([0-9]+) \\| `([a-z][a-z0-9_.]*)` \\|")

// TestEventTypeIDsMatchDoc pins the v2 wire contract in both
// directions: every event type registered in code appears in the doc's
// record-ID table with the same ID, and every documented row resolves
// back to the same type — so an ID can be neither renumbered nor
// documented without the matching code change.
func TestEventTypeIDsMatchDoc(t *testing.T) {
	raw, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("reading contract doc: %v", err)
	}
	docIDs := map[string]byte{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := v2Row.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		id := 0
		for _, c := range m[1] {
			id = id*10 + int(c-'0')
		}
		if id <= 0 || id > 255 {
			t.Fatalf("doc row %q: ID out of byte range", line)
		}
		if _, dup := docIDs[m[2]]; dup {
			t.Errorf("doc lists v2 record ID for %q twice", m[2])
		}
		docIDs[m[2]] = byte(id)
	}
	if len(docIDs) == 0 {
		t.Fatal("no v2 record-ID rows parsed — table format changed?")
	}

	for _, ty := range metrics.AllEventTypes() {
		id, ok := metrics.EventTypeID(ty)
		if !ok {
			t.Errorf("event type %q has no v2 record ID registered", ty)
			continue
		}
		docID, ok := docIDs[string(ty)]
		if !ok {
			t.Errorf("event type %q (ID %d) missing from the doc's v2 record-ID table", ty, id)
			continue
		}
		if docID != id {
			t.Errorf("event type %q: doc says ID %d, code says %d", ty, docID, id)
		}
		back, ok := metrics.EventTypeByID(id)
		if !ok || back != ty {
			t.Errorf("EventTypeByID(%d) = %q, %v; want %q", id, back, ok, ty)
		}
	}
	for name, id := range docIDs {
		ty, ok := metrics.EventTypeByID(id)
		if !ok {
			t.Errorf("documented v2 record ID %d (%q) not registered in code", id, name)
			continue
		}
		if string(ty) != name {
			t.Errorf("v2 record ID %d: doc names %q, code names %q", id, name, ty)
		}
	}
	if len(docIDs) != len(metrics.AllEventTypes()) {
		t.Errorf("doc's v2 table has %d rows, code registers %d event types",
			len(docIDs), len(metrics.AllEventTypes()))
	}
}
