GO ?= go

.PHONY: tier1 build test race vet lint docs-check fuzz-smoke bench bench-smoke bench-record bench-compare clean

# tier1 is the repo's gate: every PR must leave it green.
tier1: vet lint docs-check build race fuzz-smoke bench-smoke bench-compare

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs both repo-convention checks (tools/lint): package-comment
# paper anchors and the no-telemetry-on-stdout rule for the CLIs.
lint:
	$(GO) run ./tools/lint

# docs-check verifies every internal package comment anchors the code to
# the paper (Section/Figure/Table/Algorithm N) — the godoc contract.
docs-check:
	$(GO) run ./tools/lint -docs

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short deterministic-ish fuzz smoke over the trace codec: the decoder
# must survive arbitrary bytes, and encode→decode must round-trip.
fuzz-smoke:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceDecode -fuzztime 5s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceRoundTrip -fuzztime 5s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke runs the observability and oracle benchmarks once each and
# fails if either stops being selected — a renamed or deleted benchmark
# silently vanishes from `go test -bench`, so the output is grepped for
# both names.
bench-smoke:
	@out="$$($(GO) test -bench 'BenchmarkObservability|BenchmarkOracleHeadroom' -benchtime 1x -run '^$$' .)"; \
	echo "$$out"; \
	for name in BenchmarkObservability BenchmarkOracleHeadroom; do \
		echo "$$out" | grep -q "$$name" || { echo "bench-smoke: $$name missing from benchmark output" >&2; exit 1; }; \
	done

# bench-record snapshots the perf-trajectory suite into BENCH_PR5.json
# (instr/s, ns/op, allocs/op per benchmark; best of two runs). The
# snapshot is committed so bench-compare has a fixed reference; any
# pre_pr5_baseline section already in the file is preserved.
bench-record:
	$(GO) run ./tools/benchjson -record -out BENCH_PR5.json

# bench-compare re-runs the suite and fails on a >5% instr/s drop or a
# >20% allocs/op growth against the committed snapshot (see
# docs/PERFORMANCE.md for the contract). Part of tier1.
bench-compare:
	$(GO) run ./tools/benchjson -compare -baseline BENCH_PR5.json

clean:
	$(GO) clean ./...
