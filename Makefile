GO ?= go

.PHONY: tier1 build test race vet fuzz-smoke bench clean

# tier1 is the repo's gate: every PR must leave it green.
tier1: vet build race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short deterministic-ish fuzz smoke over the trace codec: the decoder
# must survive arbitrary bytes, and encode→decode must round-trip.
fuzz-smoke:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceDecode -fuzztime 5s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceRoundTrip -fuzztime 5s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
