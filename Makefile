GO ?= go

.PHONY: tier1 build test race vet lint docs-check fuzz-smoke bench bench-smoke bench-record bench-compare loadtest-smoke clean

# tier1 is the repo's gate: every PR must leave it green.
tier1: vet lint docs-check build race fuzz-smoke bench-smoke bench-compare loadtest-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs both repo-convention checks (tools/lint): package-comment
# paper anchors and the no-telemetry-on-stdout rule for the CLIs.
lint:
	$(GO) run ./tools/lint

# docs-check verifies every internal package comment anchors the code to
# the paper (Section/Figure/Table/Algorithm N) — the godoc contract.
docs-check:
	$(GO) run ./tools/lint -docs

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short deterministic-ish fuzz smoke over the binary codecs: every
# decoder (instruction traces, mlpcache.events/v2 event streams, and
# mlpcache.model/v1 learned-model files) must survive arbitrary bytes,
# and encode→decode must round-trip.
fuzz-smoke:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceDecode -fuzztime 5s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz FuzzTraceRoundTrip -fuzztime 5s
	$(GO) test ./internal/metrics/ -run '^$$' -fuzz FuzzEventsV2Decode -fuzztime 5s
	$(GO) test ./internal/learn/ -run '^$$' -fuzz FuzzModelDecode -fuzztime 5s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke runs the observability, tracing, oracle, multi-core,
# learned-eviction, parallel-engine and arena benchmarks once each and
# fails if any stops being selected — a renamed or deleted benchmark
# silently vanishes from `go test -bench`, so the output is grepped for
# each name.
bench-smoke:
	@out="$$($(GO) test -bench 'BenchmarkObservability|BenchmarkTracingV2|BenchmarkOracleHeadroom|BenchmarkMulticoreThroughput|BenchmarkLearnedEviction|BenchmarkParallelMulticore|BenchmarkArenaReuse' -benchtime 1x -run '^$$' .)"; \
	echo "$$out"; \
	for name in BenchmarkObservability BenchmarkTracingV2 BenchmarkOracleHeadroom BenchmarkMulticoreThroughput BenchmarkLearnedEviction BenchmarkParallelMulticore BenchmarkArenaReuse; do \
		echo "$$out" | grep -q "$$name" || { echo "bench-smoke: $$name missing from benchmark output" >&2; exit 1; }; \
	done

# bench-record snapshots the perf-trajectory suite into BENCH_PR10.json
# (instr/s, ns/op, allocs/op per benchmark; best of four passes). The
# snapshot is committed so bench-compare has a fixed reference; any
# pre_pr5_baseline / prior_baselines sections already in the file are
# preserved, and the PR9 snapshot is folded in as a prior baseline so
# the cross-PR trajectory stays in one document.
bench-record:
	$(GO) run ./tools/benchjson -record -out BENCH_PR10.json -prior pr9=BENCH_PR9.json -count 4

# bench-compare re-runs the suite and fails on a >10% instr/s drop
# relative to the suite-wide median ratio (host steal on a virtualized
# single-vCPU machine moves every wall-clock figure together — only
# drops *away from the pack* indicate a code regression), a >20%
# allocs/op growth against the committed snapshot, a v2-traced run
# allocating more than 2x an untraced one, a learned-policy run
# allocating more than 1.5x the LRU baseline, a 4-core parallel run
# slower than serial on a 4+-CPU host, or an arena-reused run
# allocating more than 0.5x a cold one (see docs/PERFORMANCE.md for
# the contract). Part of tier1. Best-of-4 separate suite passes on
# both sides, so each benchmark's samples are spread across the run's
# wall time.
bench-compare:
	$(GO) run ./tools/benchjson -compare -baseline BENCH_PR10.json -count 4

# loadtest-smoke fires a short chaos burst at an in-process sweep
# service (tools/loadgen): every job must come back with a terminal
# answer and the daemon's counters must reconcile, or loadgen exits 1.
loadtest-smoke:
	$(GO) run ./tools/loadgen -jobs 60 -concurrency 12 -n 10000 -chaos-fail 150 -chaos-panic 20

clean:
	$(GO) clean ./...
