package mlpcache_test

import (
	"strings"
	"testing"

	"mlpcache"
)

// These tests exercise the public API exactly as README.md documents it.

func TestQuickstartFlow(t *testing.T) {
	cfg := mlpcache.DefaultConfig()
	cfg.MaxInstructions = 120_000
	cfg.Policy = mlpcache.PolicySpec{Kind: mlpcache.PolicySBAR}

	bench, ok := mlpcache.Benchmark("mcf")
	if !ok {
		t.Fatal("mcf model missing")
	}
	res := mlpcache.MustRun(cfg, bench.Build(42))
	if res.Instructions != 120_000 || res.IPC <= 0 {
		t.Fatalf("bad result: %s", res.Summary())
	}
	if !strings.Contains(res.Summary(), "sbar") {
		t.Fatalf("summary %q does not name the policy", res.Summary())
	}
}

func TestCustomWorkloadFlow(t *testing.T) {
	// The chase must thrash under LRU (streaming insertions between its
	// revisits exceed the 16 ways/set) yet fit under LIN's protection.
	mix := func() mlpcache.Source {
		list := mlpcache.NewPointerChase(mlpcache.ChaseConfig{Blocks: 3000, Gap: 8, Seed: 1})
		sweep := mlpcache.NewStream(mlpcache.StreamConfig{Base: 1 << 33, Blocks: 30_000, Gap: 6, Seed: 2})
		return mlpcache.NewMix(1,
			mlpcache.MixPart{Src: list, Weight: 1, Chunk: 24 * 9},
			mlpcache.MixPart{Src: sweep, Weight: 4, Chunk: 16 * 7},
		)
	}
	cfg := mlpcache.DefaultConfig()
	cfg.MaxInstructions = 400_000
	lru := mlpcache.MustRun(cfg, mix())

	cfg.Policy = mlpcache.PolicySpec{Kind: mlpcache.PolicyLIN, Lambda: 4}
	lin := mlpcache.MustRun(cfg, mix())

	if lin.IPC <= lru.IPC {
		t.Fatalf("LIN %.4f should beat LRU %.4f on a retainable chase", lin.IPC, lru.IPC)
	}
}

func TestPBestExposed(t *testing.T) {
	if got := mlpcache.PBest(1, 0.74); got != 0.74 {
		t.Fatalf("PBest(1, 0.74) = %v", got)
	}
}

func TestQuantizeExposed(t *testing.T) {
	if mlpcache.Quantize(444) != 7 || mlpcache.Quantize(100) != 1 {
		t.Fatal("quantizer disagrees with Figure 3b")
	}
}

func TestOPTExposed(t *testing.T) {
	res := mlpcache.SimulateOPT([]uint64{1, 2, 3, 1, 2}, 1, 2)
	if res.Misses != 4 {
		t.Fatalf("OPT misses = %d, want 4", res.Misses)
	}
}

func TestBenchmarkCatalog(t *testing.T) {
	if got := len(mlpcache.Benchmarks()); got != 14 {
		t.Fatalf("%d benchmarks", got)
	}
	if got := len(mlpcache.BenchmarkNames()); got != 14 {
		t.Fatalf("%d names", got)
	}
}

func TestCustomPolicyOnPublicCache(t *testing.T) {
	// Build a cache with a custom cost-aware policy through the public
	// surface only.
	costFirst := mlpcache.NewCostAware("cost-first", func(r, c int) int { return c*100 + r })
	c := mlpcache.NewCache(mlpcache.CacheConfig{Sets: 1, Assoc: 2, BlockBytes: 64}, costFirst)
	c.Fill(0, 7, false)
	c.Fill(64, 0, false)
	ev, evicted := c.Fill(128, 0, false)
	if !evicted || ev.Block != 1 {
		t.Fatalf("custom policy evicted %v, want block 1 (cheapest)", ev.Block)
	}
}

func TestSBARConstructionPublic(t *testing.T) {
	mtd := mlpcache.NewCache(mlpcache.CacheConfig{Sets: 64, Assoc: 4, BlockBytes: 64}, nil)
	s := mlpcache.NewSBAR(mtd, mlpcache.SBARConfig{LeaderSets: 8})
	if mtd.Policy() != s {
		t.Fatal("SBAR did not install itself")
	}
}
