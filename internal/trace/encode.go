package trace

import (
	"bufio"
	"encoding/binary"
	"io"

	"mlpcache/internal/simerr"
)

// Binary trace format, used by cmd/mlptrace to persist generated streams:
//
//	magic   "MLPT\x01"
//	records repeated until EOF:
//	  flags   1 byte: bits 0-2 Kind, bit 3 Mispredict, bit 4 hasDep,
//	          bit 5 hasAddr
//	  dep     uvarint (present if hasDep)
//	  addr    uvarint, delta-encoded against the previous address as a
//	          zig-zag signed difference (present if hasAddr)
//
// Delta encoding keeps strided streams near one byte per record.

var magic = []byte("MLPT\x01")

// ErrBadMagic is returned by NewReader when the input does not start with
// the trace file magic. It wraps simerr.ErrCorruptTrace so callers can
// classify it with either sentinel.
var ErrBadMagic = simerr.New(simerr.ErrCorruptTrace, "trace: bad magic (not a trace file)")

const (
	flagKindMask   = 0x07
	flagMispredict = 1 << 3
	flagHasDep     = 1 << 4
	flagHasAddr    = 1 << 5
	flagTaken      = 1 << 6
)

// Writer encodes instructions to an underlying stream.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	wroteHdr bool
	scratch  [2*binary.MaxVarintLen64 + 1]byte
}

// NewWriter returns a Writer that encodes to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one instruction record.
func (tw *Writer) Write(in Instr) error {
	if !tw.wroteHdr {
		if _, err := tw.w.Write(magic); err != nil {
			return err
		}
		tw.wroteHdr = true
	}
	flags := byte(in.Kind) & flagKindMask
	if in.Mispredict {
		flags |= flagMispredict
	}
	if in.Dep != 0 {
		flags |= flagHasDep
	}
	if in.Kind.IsMem() || (in.Kind == Branch && in.Addr != 0) {
		flags |= flagHasAddr
	}
	if in.Taken {
		flags |= flagTaken
	}
	buf := tw.scratch[:0]
	buf = append(buf, flags)
	if flags&flagHasDep != 0 {
		buf = binary.AppendUvarint(buf, uint64(in.Dep))
	}
	if flags&flagHasAddr != 0 {
		delta := int64(in.Addr) - int64(tw.prevAddr)
		buf = binary.AppendVarint(buf, delta)
		tw.prevAddr = in.Addr
	}
	_, err := tw.w.Write(buf)
	return err
}

// Flush writes any buffered data to the underlying stream. Call it once
// after the last Write.
func (tw *Writer) Flush() error {
	if !tw.wroteHdr {
		if _, err := tw.w.Write(magic); err != nil {
			return err
		}
		tw.wroteHdr = true
	}
	return tw.w.Flush()
}

// Reader decodes a trace stream. It implements Source; decode errors are
// surfaced through Err after Next reports false.
type Reader struct {
	r        *bufio.Reader
	prevAddr uint64
	err      error
}

// NewReader validates the magic and returns a Reader over r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, simerr.Wrap(simerr.ErrCorruptTrace, err, "trace: reading header")
	}
	for i := range magic {
		if hdr[i] != magic[i] {
			return nil, ErrBadMagic
		}
	}
	return &Reader{r: br}, nil
}

// Next decodes the next instruction. It reports false at end of stream or
// on a decode error; check Err to distinguish.
func (tr *Reader) Next() (Instr, bool) {
	if tr.err != nil {
		return Instr{}, false
	}
	flags, err := tr.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			tr.err = simerr.Wrap(simerr.ErrCorruptTrace, err, "trace: reading flags")
		}
		return Instr{}, false
	}
	var in Instr
	in.Kind = Kind(flags & flagKindMask)
	if in.Kind >= numKinds {
		tr.err = simerr.New(simerr.ErrCorruptTrace, "trace: invalid kind %d", in.Kind)
		return Instr{}, false
	}
	in.Mispredict = flags&flagMispredict != 0
	in.Taken = flags&flagTaken != 0
	if flags&flagHasDep != 0 {
		d, err := binary.ReadUvarint(tr.r)
		if err != nil {
			tr.err = simerr.Wrap(simerr.ErrCorruptTrace, err, "trace: reading dep")
			return Instr{}, false
		}
		if d > 1<<31-1 {
			tr.err = simerr.New(simerr.ErrCorruptTrace, "trace: dep %d out of range", d)
			return Instr{}, false
		}
		in.Dep = int32(d)
	}
	if flags&flagHasAddr != 0 {
		delta, err := binary.ReadVarint(tr.r)
		if err != nil {
			tr.err = simerr.Wrap(simerr.ErrCorruptTrace, err, "trace: reading addr")
			return Instr{}, false
		}
		in.Addr = uint64(int64(tr.prevAddr) + delta)
		tr.prevAddr = in.Addr
	}
	return in, true
}

// Err returns the first decode error encountered, or nil if the stream
// ended cleanly.
func (tr *Reader) Err() error { return tr.err }
