package trace

import (
	"testing"
	"testing/quick"
)

// loadsOf filters a collected stream down to its primary memory accesses
// (dropping the same-block touch loads, identified by non-64-aligned
// addresses when BlockBytes is 64).
func loadsOf(ins []Instr) []Instr {
	var out []Instr
	for _, in := range ins {
		if in.Kind.IsMem() && in.Addr%64 == 0 {
			out = append(out, in)
		}
	}
	return out
}

func TestPointerChaseVisitsEachBlockOncePerLap(t *testing.T) {
	const blocks = 50
	src := NewPointerChase(ChaseConfig{Blocks: blocks, Gap: 3, Seed: 1})
	ins := Collect(src, blocks*2*4) // two laps of (1 load + 3 filler)
	loads := loadsOf(ins)
	if len(loads) < 2*blocks {
		t.Fatalf("collected only %d loads", len(loads))
	}
	lap1 := map[uint64]int{}
	for _, l := range loads[:blocks] {
		lap1[l.Addr]++
	}
	if len(lap1) != blocks {
		t.Fatalf("first lap visited %d distinct blocks, want %d", len(lap1), blocks)
	}
	// Without Reshuffle, lap 2 visits the same blocks in the same order.
	for i := 0; i < blocks; i++ {
		if loads[i].Addr != loads[blocks+i].Addr {
			t.Fatalf("lap order changed at %d without Reshuffle", i)
		}
	}
}

func TestPointerChaseDependenceChain(t *testing.T) {
	src := NewPointerChase(ChaseConfig{Blocks: 10, Gap: 4, Touches: 2, Seed: 2})
	ins := Collect(src, 100)
	var loadIdx []int
	for i, in := range ins {
		if in.Kind == Load && in.Addr%64 == 0 {
			loadIdx = append(loadIdx, i)
		}
	}
	for j := 1; j < len(loadIdx); j++ {
		i := loadIdx[j]
		prod := i - int(ins[i].Dep)
		if prod != loadIdx[j-1] {
			t.Fatalf("load at %d: Dep=%d points to %d, want previous load at %d",
				i, ins[i].Dep, prod, loadIdx[j-1])
		}
	}
}

func TestPointerChaseReshuffle(t *testing.T) {
	const blocks = 64
	src := NewPointerChase(ChaseConfig{Blocks: blocks, Seed: 3, Reshuffle: true})
	loads := loadsOf(Collect(src, blocks*2))
	same := true
	for i := 0; i < blocks; i++ {
		if loads[i].Addr != loads[blocks+i].Addr {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Reshuffle did not change lap order")
	}
}

func TestColdChaseNeverRepeats(t *testing.T) {
	src := NewPointerChase(ChaseConfig{Blocks: 1, Cold: true, Seed: 4})
	loads := loadsOf(Collect(src, 500))
	seen := map[uint64]bool{}
	for _, l := range loads {
		if seen[l.Addr] {
			t.Fatalf("cold chase repeated block %#x", l.Addr)
		}
		seen[l.Addr] = true
	}
}

func TestColdChaseRunSkipSpan(t *testing.T) {
	const run, skip = 8, 24 // sets 0-7 of a 32-set "cache"
	src := NewPointerChase(ChaseConfig{Blocks: 1, Cold: true, RunLen: run, SkipLen: skip, Seed: 5})
	loads := loadsOf(Collect(src, 400))
	for _, l := range loads {
		set := (l.Addr / 64) % (run + skip)
		if set >= run {
			t.Fatalf("block %#x maps to set %d, outside span [0,%d)", l.Addr, set, run)
		}
	}
}

func TestStreamWrapsAndIsIndependent(t *testing.T) {
	src := NewStream(StreamConfig{Blocks: 5, Gap: 1, Seed: 6})
	loads := loadsOf(Collect(src, 60))
	if len(loads) < 12 {
		t.Fatalf("too few loads: %d", len(loads))
	}
	for i, l := range loads[:10] {
		if want := uint64(i%5) * 64; l.Addr != want {
			t.Fatalf("load %d addr %#x, want %#x", i, l.Addr, want)
		}
		if l.Dep != 0 {
			t.Fatalf("stream load %d carries Dep=%d, want 0", i, l.Dep)
		}
	}
}

func TestStreamCold(t *testing.T) {
	src := NewStream(StreamConfig{Blocks: 1, Cold: true, Seed: 7})
	loads := loadsOf(Collect(src, 100))
	for i := 1; i < len(loads); i++ {
		if loads[i].Addr <= loads[i-1].Addr {
			t.Fatal("cold stream addresses must be strictly increasing")
		}
	}
}

func TestAlternatingFlipsDependenceEachLap(t *testing.T) {
	const blocks = 20
	src := NewAlternating(AlternatingConfig{Blocks: blocks, ChaseGap: 2, BurstGap: 2, Seed: 8})
	ins := Collect(src, blocks*3*4)
	var loads []Instr
	for _, in := range ins {
		if in.Kind == Load && in.Addr%64 == 0 {
			loads = append(loads, in)
		}
	}
	// Lap 1 (chase): deps set; lap 2 (burst): deps clear.
	for i := 1; i < blocks; i++ {
		if loads[i].Dep == 0 {
			t.Fatalf("chase-lap load %d has no dependence", i)
		}
	}
	for i := blocks; i < 2*blocks; i++ {
		if loads[i].Dep != 0 {
			t.Fatalf("burst-lap load %d has Dep=%d", i, loads[i].Dep)
		}
	}
}

func TestSameBlockTouchesHitSameBlock(t *testing.T) {
	src := NewStream(StreamConfig{Blocks: 3, Touches: 2, Seed: 9})
	ins := Collect(src, 30)
	for i := 0; i < len(ins)-2; i++ {
		if ins[i].Kind == Load && ins[i].Addr%64 == 0 {
			for j := 1; j <= 2; j++ {
				tch := ins[i+j]
				if tch.Kind != Load || tch.Addr/64 != ins[i].Addr/64 || tch.Dep != 1 {
					t.Fatalf("touch %d after load %d malformed: %+v", j, i, tch)
				}
			}
		}
	}
}

// Property: Mix-rewritten dependences always point backward at an
// instruction from the same sub-stream (identified by address region).
func TestMixDependenceRewriting(t *testing.T) {
	mk := func(seed uint64, chunkA, chunkB int) []Instr {
		a := NewPointerChase(ChaseConfig{Base: 1 << 30, Blocks: 40, Gap: 2, Seed: seed})
		b := NewPointerChase(ChaseConfig{Base: 1 << 40, Blocks: 40, Gap: 2, Seed: seed + 1})
		m := NewMix(seed, MixPart{Src: a, Chunk: chunkA, Weight: 1}, MixPart{Src: b, Chunk: chunkB, Weight: 1})
		return Collect(m, 2000)
	}
	f := func(seedRaw uint16, ca, cb uint8) bool {
		ins := mk(uint64(seedRaw)+1, int(ca%30)+1, int(cb%30)+1)
		for i, in := range ins {
			if in.Kind != Load || in.Dep == 0 {
				continue
			}
			prod := i - int(in.Dep)
			if prod < 0 {
				return false
			}
			// The producer must be a load from the same region.
			p := ins[prod]
			if p.Kind != Load {
				return false
			}
			if (p.Addr >= 1<<40) != (in.Addr >= 1<<40) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMixChunksAreContiguous(t *testing.T) {
	a := NewStream(StreamConfig{Base: 0, Blocks: 100, Seed: 1})
	b := NewStream(StreamConfig{Base: 1 << 40, Blocks: 100, Seed: 2})
	m := NewMix(3, MixPart{Src: a, Chunk: 5, Weight: 1}, MixPart{Src: b, Chunk: 5, Weight: 1})
	ins := Collect(m, 500)
	// Runs of same-part instructions must have length ≥ 5 (exactly the
	// chunk, since both parts are infinite).
	runLen := 1
	for i := 1; i < len(ins); i++ {
		same := (ins[i].Addr >= 1<<40) == (ins[i-1].Addr >= 1<<40)
		if same {
			runLen++
			continue
		}
		if runLen%5 != 0 {
			t.Fatalf("chunk run of length %d, want multiple of 5", runLen)
		}
		runLen = 1
	}
}

func TestMixDrainsFiniteParts(t *testing.T) {
	a := NewSliceSource([]Instr{{Kind: Int}, {Kind: Int}})
	b := NewSliceSource([]Instr{{Kind: FP}})
	m := NewMix(1, MixPart{Src: a, Weight: 1}, MixPart{Src: b, Weight: 1})
	got := Collect(m, 100)
	if len(got) != 3 {
		t.Fatalf("Mix yielded %d instructions from finite parts, want 3", len(got))
	}
}

func TestPhasesSchedule(t *testing.T) {
	a := NewStream(StreamConfig{Base: 0, Blocks: 10, Seed: 1})
	b := NewStream(StreamConfig{Base: 1 << 40, Blocks: 10, Seed: 2})
	p := NewPhases(Phase{Src: a, Len: 20}, Phase{Src: b, Len: 10})
	ins := Collect(p, 90)
	for i, in := range ins {
		inB := in.Addr >= 1<<40
		phase := (i / 10) % 3 // 20 of a, 10 of b → pattern a a b
		wantB := phase == 2
		if in.Kind == Load && inB != wantB {
			t.Fatalf("instruction %d from wrong phase", i)
		}
	}
}

func TestTwoPassVisitsEachBlockExactlyTwice(t *testing.T) {
	cfg := TwoPassConfig{SegBlocks: 8, LagSegs: 3, ChaseGap: 1, BurstGap: 1, Seed: 1}
	src := NewTwoPass(cfg)
	ins := Collect(src, 4000)
	counts := map[uint64]int{}
	order := map[uint64][]int{}
	for i, in := range ins {
		if in.Kind == Load && in.Addr%64 == 0 {
			counts[in.Addr]++
			order[in.Addr] = append(order[in.Addr], i)
		}
	}
	twice := 0
	for addr, c := range counts {
		if c > 2 {
			t.Fatalf("block %#x visited %d times, want at most 2", addr, c)
		}
		if c == 2 {
			twice++
			gap := order[addr][1] - order[addr][0]
			// The revisit must be at least LagSegs segments away.
			if gap < cfg.SegBlocks*cfg.LagSegs {
				t.Fatalf("block %#x revisited after %d instructions, want >= %d",
					addr, gap, cfg.SegBlocks*cfg.LagSegs)
			}
		}
	}
	if twice == 0 {
		t.Fatal("no block received its second pass")
	}
}

func TestTwoPassPassStructure(t *testing.T) {
	src := NewTwoPass(TwoPassConfig{SegBlocks: 8, LagSegs: 2, ChaseGap: 2, BurstGap: 2, Seed: 3})
	ins := Collect(src, 3000)
	first := map[uint64]bool{}
	for _, in := range ins {
		if in.Kind != Load || in.Addr%64 != 0 {
			continue
		}
		if !first[in.Addr] {
			first[in.Addr] = true
			if in.Dep == 0 {
				t.Fatalf("first pass of %#x is not dependence-chained", in.Addr)
			}
		} else if in.Dep != 0 {
			t.Fatalf("second pass of %#x carries Dep=%d, want 0 (parallel burst)", in.Addr, in.Dep)
		}
	}
}

func TestTwoPassBatchLen(t *testing.T) {
	cfg := TwoPassConfig{SegBlocks: 64, ChaseGap: 10, BurstGap: 5, Touches: 2}
	want := 64 * (10 + 2 + 1 + 5 + 2 + 1)
	if got := cfg.BatchLen(); got != want {
		t.Fatalf("BatchLen = %d, want %d", got, want)
	}
}

func TestPhasesDrainFiniteSources(t *testing.T) {
	a := NewSliceSource([]Instr{{Kind: Int}, {Kind: Int}, {Kind: Int}})
	b := NewSliceSource([]Instr{{Kind: FP}})
	p := NewPhases(Phase{Src: a, Len: 2}, Phase{Src: b, Len: 2})
	got := Collect(p, 100)
	if len(got) != 4 {
		t.Fatalf("Phases yielded %d instructions from finite sources, want 4", len(got))
	}
}

func TestPhasesPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPhases() },
		func() { NewPhases(Phase{Src: NewSliceSource(nil), Len: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMixPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMix(1)
}

func TestGeneratorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewPointerChase(ChaseConfig{Blocks: 0}) },
		func() { NewStream(StreamConfig{Blocks: 0}) },
		func() { NewAlternating(AlternatingConfig{Blocks: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTwoPassSpan(t *testing.T) {
	src := NewTwoPass(TwoPassConfig{
		SegBlocks: 16, LagSegs: 2, ChaseGap: 1, BurstGap: 1,
		RunLen: 8, SkipLen: 24, Seed: 2,
	})
	for _, in := range Collect(src, 2000) {
		if in.Kind == Load && in.Addr%64 == 0 {
			set := (in.Addr / 64) % 32
			if set >= 8 {
				t.Fatalf("two-pass block %#x outside span (set %d)", in.Addr, set)
			}
		}
	}
}

func TestBranchOutcomesSynthesized(t *testing.T) {
	src := NewStream(StreamConfig{Blocks: 100, Gap: 8, Seed: 4})
	taken, branches := 0, 0
	for _, in := range Collect(src, 50_000) {
		if in.Kind == Branch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	if branches == 0 {
		t.Fatal("filler produced no branches")
	}
	frac := float64(taken) / float64(branches)
	// Mostly loop branches (98% taken) with a noisy minority.
	if frac < 0.85 || frac > 0.99 {
		t.Fatalf("taken fraction %.2f implausible", frac)
	}
}
