package trace

// TwoPassConfig parameterizes the generator behind the paper's high-delta
// benchmarks (bzip2, parser, mgrid). Each block is visited exactly twice:
//
//  1. a pointer-chase pass over fresh blocks — an isolated miss, so the
//     block's recorded mlp-cost is the full memory latency (cost_q = 7);
//  2. one revisit, LagSegs segments later, inside an independent burst —
//     under LRU the block has long been evicted, so it re-misses with
//     high parallelism and a tiny mlp-cost.
//
// The per-block cost delta is therefore ~400 cycles (Table 1's ≥120
// class), and the last-cost prediction is maximally wrong: an MLP-aware
// policy retains the block expecting another expensive miss, saves only a
// cheap parallel one, and is then stuck with a dead cost_q=7 line that
// outranks every live low-cost block — the pollution that makes LIN lose.
type TwoPassConfig struct {
	Base       uint64
	BlockBytes uint64
	// SegBlocks is the number of blocks per segment (one chase pass or
	// one burst pass).
	SegBlocks int
	// LagSegs is how many segments later the revisit happens. It must
	// exceed the LRU eviction horizon so the baseline re-misses.
	LagSegs int
	// ChaseGap and BurstGap are the filler counts for the two passes.
	ChaseGap int
	BurstGap int
	// Touches is the same-block spatial-locality factor.
	Touches int
	// RunLen/SkipLen confine the region to a fraction of the cache sets
	// (see ChaseConfig).
	RunLen  int
	SkipLen int
	FPFrac  float64
	Seed    uint64
}

type twoPass struct {
	queued
	cfg       TwoPassConfig
	rng       *RNG
	nextFresh int
	pending   [][]int // segment queue awaiting their second pass
}

// NewTwoPass returns the visit-twice generator described above.
func NewTwoPass(cfg TwoPassConfig) Source {
	if cfg.SegBlocks <= 0 {
		cfg.SegBlocks = 64
	}
	if cfg.LagSegs <= 0 {
		cfg.LagSegs = 64
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 64
	}
	t := &twoPass{cfg: cfg, rng: NewRNG(cfg.Seed)}
	t.refill = t.fill
	return t
}

func (t *twoPass) addr(blk int) uint64 {
	if t.cfg.RunLen > 0 {
		blk = (blk/t.cfg.RunLen)*(t.cfg.RunLen+t.cfg.SkipLen) + blk%t.cfg.RunLen
	}
	return t.cfg.Base + uint64(blk)*t.cfg.BlockBytes
}

// fill emits one chase segment and, once the lag has filled, the matching
// burst segment in the same batch, so a Mix chunk sized to BatchLen keeps
// both passes contiguous (chase misses stay isolated).
func (t *twoPass) fill(buf []Instr) []Instr {
	// First pass: a dependent chase over fresh blocks.
	seg := make([]int, t.cfg.SegBlocks)
	for i := range seg {
		seg[i] = t.nextFresh
		t.nextFresh++
		a := t.addr(seg[i])
		buf = append(buf, Instr{Kind: Load, Addr: a, Dep: int32(t.cfg.ChaseGap+t.cfg.Touches) + 1})
		buf = sameBlockTouches(buf, a, t.cfg.Touches)
		buf = fillerRun(buf, t.cfg.ChaseGap, t.rng, t.cfg.FPFrac, 0)
	}
	t.pending = append(t.pending, seg)
	if len(t.pending) <= t.cfg.LagSegs {
		return buf
	}
	// Second pass: independent loads, shuffled so the revisit is not a
	// recognizable stride.
	old := t.pending[0]
	t.pending = t.pending[1:]
	for _, i := range t.rng.Perm(len(old)) {
		a := t.addr(old[i])
		buf = append(buf, Instr{Kind: Load, Addr: a})
		buf = sameBlockTouches(buf, a, t.cfg.Touches)
		buf = fillerRun(buf, t.cfg.BurstGap, t.rng, t.cfg.FPFrac, 0)
	}
	return buf
}

// BatchLen returns the steady-state instruction count of one fill batch
// (one chase segment plus one burst segment); interleavers should chunk
// at this granularity to keep the chase pass isolated.
func (c TwoPassConfig) BatchLen() int {
	seg := c.SegBlocks
	if seg <= 0 {
		seg = 64
	}
	return seg * (c.ChaseGap + c.Touches + 1 + c.BurstGap + c.Touches + 1)
}
