package trace

import "mlpcache/internal/simerr"

// This file implements the workload generator combinators. Each generator
// produces an unbounded instruction stream; internal/workload composes them
// into models of the paper's SPEC CPU2000 benchmarks.
//
// Dependence semantics: a generator emits Dep distances relative to its own
// output stream. The interleaving combinators (Mix, Phases) rewrite those
// distances so they remain correct in the merged stream; see interleaver.

// queued is a helper base for generators that naturally produce
// instructions in batches. refill must append at least one instruction.
type queued struct {
	buf    []Instr
	pos    int
	refill func(buf []Instr) []Instr
}

func (q *queued) Next() (Instr, bool) {
	if q.pos >= len(q.buf) {
		q.buf = q.refill(q.buf[:0])
		q.pos = 0
		if len(q.buf) == 0 {
			return Instr{}, false
		}
	}
	in := q.buf[q.pos]
	q.pos++
	return in, true
}

// sameBlockTouches appends n loads to further words of the just-accessed
// block, each depending on the previous access. Real programs touch a
// fetched block several times (spatial locality); these extra loads hit
// the L1 and give the models realistic L1 hit rates and compute density
// without changing L2 behaviour.
func sameBlockTouches(buf []Instr, addr uint64, n int) []Instr {
	for i := 0; i < n; i++ {
		buf = append(buf, Instr{Kind: Load, Addr: addr + uint64(8*(i+1)), Dep: 1})
	}
	return buf
}

// fillerRun appends gap filler instructions using rng: mostly single-cycle
// integer ops with an occasional branch so the stream exercises the front
// end. mispredict gives the per-branch misprediction probability used in
// oracle mode; for predictor mode every branch also carries a static id
// (in Addr) and an actual outcome (Taken): most dynamic branches come
// from well-behaved "loop" branches that are almost always taken, the
// rest from noisier data-dependent ones.
func fillerRun(buf []Instr, gap int, rng *RNG, fpFrac, mispredict float64) []Instr {
	for i := 0; i < gap; i++ {
		switch {
		case rng.Bool(1.0/16) && gap > 1:
			id := uint64(rng.Intn(16))
			taken := rng.Bool(0.98)
			if id >= 14 { // data-dependent branches
				taken = rng.Bool(0.65)
			}
			buf = append(buf, Instr{
				Kind:       Branch,
				Addr:       id,
				Taken:      taken,
				Mispredict: rng.Bool(mispredict),
			})
		case rng.Bool(fpFrac):
			buf = append(buf, Instr{Kind: FP})
		default:
			buf = append(buf, Instr{Kind: Int})
		}
	}
	return buf
}

// ChaseConfig parameterizes a pointer-chasing load stream: every load
// depends on the value returned by the previous load, so misses to
// uncached blocks serialize and surface as the paper's "isolated misses".
type ChaseConfig struct {
	Base       uint64  // first byte of the region
	Blocks     int     // number of distinct blocks in the chase ring
	BlockBytes uint64  // cache block size (64 in the baseline)
	Gap        int     // filler instructions between consecutive loads
	Touches    int     // extra dependent same-block loads per visit (L1 hits)
	Stores     float64 // probability a visit also writes the block
	FPFrac     float64 // fraction of filler that is FP
	Mispredict float64 // branch misprediction probability in filler
	Reshuffle  bool    // re-randomize visit order every lap
	// Cold makes the chase walk ever-fresh blocks instead of a ring:
	// every miss is isolated AND compulsory, and the block is never
	// touched again. Under MLP-aware replacement such blocks become
	// dead high-cost residue — the pollution that makes LIN lose on
	// the paper's high-delta benchmarks.
	Cold bool
	// RunLen/SkipLen shape a cold walk's footprint: RunLen consecutive
	// blocks are visited, then SkipLen are skipped. Because a cache set
	// is selected by block number modulo the set count, a run/skip
	// pattern confines the pollution to a fraction of the sets, which
	// tunes how much of a co-resident working set the dead residue
	// starves. Zero values mean a plain sequential walk.
	RunLen  int
	SkipLen int
	Seed    uint64
}

// Validate checks the parameters, wrapping failures in
// simerr.ErrBadConfig.
func (c ChaseConfig) Validate() error {
	if c.Blocks <= 0 && !c.Cold {
		return simerr.New(simerr.ErrBadConfig, "trace: PointerChase needs at least one block, got %d", c.Blocks)
	}
	if c.Gap < 0 || c.Touches < 0 || c.RunLen < 0 || c.SkipLen < 0 {
		return simerr.New(simerr.ErrBadConfig, "trace: PointerChase counts must be non-negative")
	}
	if c.Stores < 0 || c.Stores > 1 || c.FPFrac < 0 || c.FPFrac > 1 || c.Mispredict < 0 || c.Mispredict > 1 {
		return simerr.New(simerr.ErrBadConfig, "trace: PointerChase probabilities must be in [0,1]")
	}
	return nil
}

type chase struct {
	queued
	cfg   ChaseConfig
	rng   *RNG
	order []int
	pos   int
}

// NewPointerChase returns a generator that walks a randomized ring of
// cfg.Blocks blocks. Each load's Dep points at the previous load in the
// chain (distance Gap+1), modelling a linked-list traversal.
// It panics (with a typed simerr.ErrBadConfig error) on invalid
// parameters; validate externally-sourced configs with Validate first.
func NewPointerChase(cfg ChaseConfig) Source {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = 1 // Cold walks ignore the ring size
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 64
	}
	c := &chase{cfg: cfg, rng: NewRNG(cfg.Seed)}
	c.order = c.rng.Perm(cfg.Blocks)
	c.refill = c.fill
	return c
}

func (c *chase) fill(buf []Instr) []Instr {
	var blk int
	if c.cfg.Cold {
		blk = c.pos
		if c.cfg.RunLen > 0 {
			blk = (c.pos/c.cfg.RunLen)*(c.cfg.RunLen+c.cfg.SkipLen) + c.pos%c.cfg.RunLen
		}
		c.pos++
	} else {
		if c.pos >= len(c.order) {
			c.pos = 0
			if c.cfg.Reshuffle {
				c.order = c.rng.Perm(c.cfg.Blocks)
			}
		}
		blk = c.order[c.pos]
		c.pos++
	}
	addr := c.cfg.Base + uint64(blk)*c.cfg.BlockBytes
	// The load depends on the previous load, which sits Gap+1
	// instructions back once the filler is emitted after it.
	buf = append(buf, Instr{Kind: Load, Addr: addr, Dep: int32(c.cfg.Gap+c.cfg.Touches) + 1})
	buf = sameBlockTouches(buf, addr, c.cfg.Touches)
	if c.rng.Bool(c.cfg.Stores) {
		buf = append(buf, Instr{Kind: Store, Addr: addr, Dep: 1})
	}
	return fillerRun(buf, c.cfg.Gap, c.rng, c.cfg.FPFrac, c.cfg.Mispredict)
}

// StreamConfig parameterizes an independent strided load stream: loads
// carry no dependences, so misses overlap inside the instruction window
// and surface as the paper's "parallel misses".
type StreamConfig struct {
	Base        uint64
	Blocks      int // working-set size in blocks; the sweep wraps
	StrideBlks  int // stride between consecutive accesses, in blocks
	BlockBytes  uint64
	Gap         int     // filler instructions between loads
	Touches     int     // extra dependent same-block loads per access (L1 hits)
	Stores      float64 // probability an access is a store instead of a load
	FPFrac      float64
	Mispredict  float64
	RandomOrder bool // visit blocks in a per-lap random order instead of strided
	// Cold makes the sweep monotonic instead of wrapping: every access
	// touches a never-seen block, so every miss is compulsory. Used to
	// model benchmarks with large compulsory fractions (Table 3).
	Cold bool
	Seed uint64
}

// Validate checks the parameters, wrapping failures in
// simerr.ErrBadConfig.
func (c StreamConfig) Validate() error {
	if c.Blocks <= 0 && !c.Cold {
		return simerr.New(simerr.ErrBadConfig, "trace: Stream needs at least one block, got %d", c.Blocks)
	}
	if c.Gap < 0 || c.Touches < 0 {
		return simerr.New(simerr.ErrBadConfig, "trace: Stream counts must be non-negative")
	}
	if c.Stores < 0 || c.Stores > 1 || c.FPFrac < 0 || c.FPFrac > 1 || c.Mispredict < 0 || c.Mispredict > 1 {
		return simerr.New(simerr.ErrBadConfig, "trace: Stream probabilities must be in [0,1]")
	}
	return nil
}

type stream struct {
	queued
	cfg   StreamConfig
	rng   *RNG
	next  int
	order []int
	pos   int
}

// NewStream returns a generator that sweeps a region of cfg.Blocks blocks
// with independent loads, wrapping around for ever. With RandomOrder the
// sweep order is re-randomized each lap.
// It panics (with a typed simerr.ErrBadConfig error) on invalid
// parameters; validate externally-sourced configs with Validate first.
func NewStream(cfg StreamConfig) Source {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Blocks <= 0 {
		cfg.Blocks = 1 // Cold sweeps ignore the wrap size
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 64
	}
	if cfg.StrideBlks == 0 {
		cfg.StrideBlks = 1
	}
	s := &stream{cfg: cfg, rng: NewRNG(cfg.Seed)}
	s.refill = s.fill
	return s
}

func (s *stream) fill(buf []Instr) []Instr {
	var blk int
	switch {
	case s.cfg.Cold:
		blk = s.next
		s.next += s.cfg.StrideBlks
	case s.cfg.RandomOrder:
		if s.pos >= len(s.order) {
			s.order = s.rng.Perm(s.cfg.Blocks)
			s.pos = 0
		}
		blk = s.order[s.pos]
		s.pos++
	default:
		blk = s.next
		s.next = (s.next + s.cfg.StrideBlks) % s.cfg.Blocks
	}
	addr := s.cfg.Base + uint64(blk)*s.cfg.BlockBytes
	kind := Load
	if s.rng.Bool(s.cfg.Stores) {
		kind = Store
	}
	buf = append(buf, Instr{Kind: kind, Addr: addr})
	buf = sameBlockTouches(buf, addr, s.cfg.Touches)
	return fillerRun(buf, s.cfg.Gap, s.rng, s.cfg.FPFrac, s.cfg.Mispredict)
}

// AlternatingConfig parameterizes a stream whose blocks flip between
// pointer-chase laps (isolated misses, mlp-cost near the full memory
// latency) and burst laps (parallel misses, low mlp-cost). Successive
// misses to the same block therefore see wildly different mlp-cost — the
// high-delta behaviour of bzip2, parser and mgrid in Table 1 that defeats
// last-cost prediction.
type AlternatingConfig struct {
	Base       uint64
	Blocks     int
	BlockBytes uint64
	ChaseGap   int // filler between loads on chase laps
	BurstGap   int // filler between loads on burst laps
	Touches    int // extra dependent same-block loads per visit (L1 hits)
	FPFrac     float64
	Mispredict float64
	// RunLen/SkipLen lay the region out in runs of consecutive blocks
	// separated by gaps, confining it to a fraction of the cache sets
	// (see ChaseConfig).
	RunLen  int
	SkipLen int
	Seed    uint64
}

// Validate checks the parameters, wrapping failures in
// simerr.ErrBadConfig.
func (c AlternatingConfig) Validate() error {
	if c.Blocks <= 0 {
		return simerr.New(simerr.ErrBadConfig, "trace: Alternating needs at least one block, got %d", c.Blocks)
	}
	if c.ChaseGap < 0 || c.BurstGap < 0 || c.Touches < 0 || c.RunLen < 0 || c.SkipLen < 0 {
		return simerr.New(simerr.ErrBadConfig, "trace: Alternating counts must be non-negative")
	}
	if c.FPFrac < 0 || c.FPFrac > 1 || c.Mispredict < 0 || c.Mispredict > 1 {
		return simerr.New(simerr.ErrBadConfig, "trace: Alternating probabilities must be in [0,1]")
	}
	return nil
}

type alternating struct {
	queued
	cfg   AlternatingConfig
	rng   *RNG
	order []int
	pos   int
	burst bool
}

// NewAlternating returns the high-delta generator described above.
// It panics (with a typed simerr.ErrBadConfig error) on invalid
// parameters; validate externally-sourced configs with Validate first.
func NewAlternating(cfg AlternatingConfig) Source {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 64
	}
	a := &alternating{cfg: cfg, rng: NewRNG(cfg.Seed)}
	a.order = a.rng.Perm(cfg.Blocks)
	a.refill = a.fill
	return a
}

func (a *alternating) fill(buf []Instr) []Instr {
	if a.pos >= len(a.order) {
		a.pos = 0
		a.burst = !a.burst
	}
	blk := a.order[a.pos]
	a.pos++
	if a.cfg.RunLen > 0 {
		blk = (blk/a.cfg.RunLen)*(a.cfg.RunLen+a.cfg.SkipLen) + blk%a.cfg.RunLen
	}
	addr := a.cfg.Base + uint64(blk)*a.cfg.BlockBytes
	if a.burst {
		buf = append(buf, Instr{Kind: Load, Addr: addr})
		buf = sameBlockTouches(buf, addr, a.cfg.Touches)
		return fillerRun(buf, a.cfg.BurstGap, a.rng, a.cfg.FPFrac, a.cfg.Mispredict)
	}
	buf = append(buf, Instr{Kind: Load, Addr: addr, Dep: int32(a.cfg.ChaseGap+a.cfg.Touches) + 1})
	buf = sameBlockTouches(buf, addr, a.cfg.Touches)
	return fillerRun(buf, a.cfg.ChaseGap, a.rng, a.cfg.FPFrac, a.cfg.Mispredict)
}

// depWindow is how many of a part's recent instructions an interleaver
// remembers for dependence rewriting. Dependences reaching further back
// are clamped to the oldest remembered instruction, which by then has
// almost certainly retired anyway.
const depWindow = 256

// part tracks one sub-stream inside an interleaver.
type part struct {
	src Source
	// ring[i%depWindow] is the absolute output index of this part's
	// i-th emitted instruction.
	ring  [depWindow]uint64
	count uint64
	done  bool
}

// emit pulls one instruction from the part, rewrites its dependence
// distance into the merged stream's coordinates, and records its position.
func (p *part) emit(absIndex uint64) (Instr, bool) {
	in, ok := p.src.Next()
	if !ok {
		p.done = true
		return Instr{}, false
	}
	if in.Dep > 0 {
		d := uint64(in.Dep)
		switch {
		case p.count == 0:
			in.Dep = 0 // no producer exists yet
		case d > p.count:
			d = p.count
			fallthrough
		default:
			if d > depWindow {
				d = depWindow
			}
			producer := p.ring[(p.count-d)%depWindow]
			in.Dep = int32(absIndex - producer)
		}
	}
	p.ring[p.count%depWindow] = absIndex
	p.count++
	return in, true
}

// MixPart is one weighted component of a Mix.
type MixPart struct {
	Src Source
	// Weight is the relative probability of selecting this part for the
	// next chunk.
	Weight float64
	// Chunk is how many instructions to draw per selection (default 1).
	// Larger chunks keep a part's misses adjacent, preserving their
	// intra-part memory-level parallelism.
	Chunk int
}

type mix struct {
	parts  []part
	meta   []MixPart
	rng    *RNG
	total  float64
	abs    uint64
	cur    int
	remain int
}

// NewMix interleaves the parts, selecting a part for each chunk with
// probability proportional to its weight. Dependences inside each part are
// preserved across the interleave.
func NewMix(seed uint64, parts ...MixPart) Source {
	if len(parts) == 0 {
		panic(simerr.New(simerr.ErrBadConfig, "trace: Mix needs at least one part"))
	}
	m := &mix{rng: NewRNG(seed), meta: parts}
	m.parts = make([]part, len(parts))
	for i := range parts {
		if parts[i].Chunk <= 0 {
			parts[i].Chunk = 1
		}
		if parts[i].Weight <= 0 {
			parts[i].Weight = 1
		}
		m.meta[i] = parts[i]
		m.parts[i] = part{src: parts[i].Src}
		m.total += parts[i].Weight
	}
	return m
}

func (m *mix) Next() (Instr, bool) {
	for tries := 0; tries < len(m.parts)+1; tries++ {
		if m.remain == 0 {
			m.pick()
			if m.remain == 0 {
				return Instr{}, false // all parts exhausted
			}
		}
		in, ok := m.parts[m.cur].emit(m.abs)
		if ok {
			m.remain--
			m.abs++
			return in, true
		}
		m.remain = 0
	}
	return Instr{}, false
}

func (m *mix) pick() {
	live := 0.0
	for i := range m.parts {
		if !m.parts[i].done {
			live += m.meta[i].Weight
		}
	}
	if live == 0 {
		return
	}
	x := m.rng.Float64() * live
	for i := range m.parts {
		if m.parts[i].done {
			continue
		}
		x -= m.meta[i].Weight
		if x < 0 {
			m.cur = i
			m.remain = m.meta[i].Chunk
			return
		}
	}
	// Floating-point slack: take the last live part.
	for i := len(m.parts) - 1; i >= 0; i-- {
		if !m.parts[i].done {
			m.cur = i
			m.remain = m.meta[i].Chunk
			return
		}
	}
}

// Phase is one leg of a Phases schedule.
type Phase struct {
	Src Source
	// Len is how many instructions this phase contributes before the
	// schedule advances.
	Len int
}

type phases struct {
	parts  []part
	lens   []int
	cur    int
	remain int
	abs    uint64
}

// NewPhases cycles through the given phases for ever: Len instructions
// from phase 0, then Len from phase 1, and so on, wrapping around. It is
// how the ammp model expresses its alternating LIN-friendly and
// LRU-friendly program phases.
func NewPhases(ps ...Phase) Source {
	if len(ps) == 0 {
		panic(simerr.New(simerr.ErrBadConfig, "trace: Phases needs at least one phase"))
	}
	g := &phases{}
	for _, p := range ps {
		if p.Len <= 0 {
			panic(simerr.New(simerr.ErrBadConfig, "trace: Phase.Len must be positive, got %d", p.Len))
		}
		g.parts = append(g.parts, part{src: p.Src})
		g.lens = append(g.lens, p.Len)
	}
	g.remain = g.lens[0]
	return g
}

func (g *phases) Next() (Instr, bool) {
	for tries := 0; tries <= len(g.parts); tries++ {
		if g.remain == 0 {
			g.cur = (g.cur + 1) % len(g.parts)
			g.remain = g.lens[g.cur]
		}
		if g.parts[g.cur].done {
			g.remain = 0
			continue
		}
		in, ok := g.parts[g.cur].emit(g.abs)
		if !ok {
			g.remain = 0
			continue
		}
		g.remain--
		g.abs++
		return in, true
	}
	return Instr{}, false
}
