package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, ins []Instr) []Instr {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, in := range ins {
		if err := w.Write(in); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	out := Collect(r, len(ins)+10)
	if r.Err() != nil {
		t.Fatalf("Reader error: %v", r.Err())
	}
	return out
}

func TestEncodeRoundTripBasic(t *testing.T) {
	ins := []Instr{
		{Kind: Int},
		{Kind: Load, Addr: 4096, Dep: 3},
		{Kind: Store, Addr: 64},
		{Kind: Branch, Mispredict: true},
		{Kind: Load, Addr: 1 << 40},
		{Kind: Div, Dep: 1},
	}
	got := roundTrip(t, ins)
	if !reflect.DeepEqual(got, ins) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ins)
	}
}

// Property: any generated instruction stream round-trips exactly.
func TestEncodeRoundTripProperty(t *testing.T) {
	gen := func(seed int64, n int) []Instr {
		r := rand.New(rand.NewSource(seed))
		ins := make([]Instr, n)
		for i := range ins {
			k := Kind(r.Intn(int(numKinds)))
			in := Instr{Kind: k}
			if k.IsMem() {
				in.Addr = r.Uint64() >> uint(r.Intn(40))
			}
			if r.Intn(3) == 0 {
				in.Dep = int32(r.Intn(200) + 1)
			}
			if k == Branch {
				in.Mispredict = r.Intn(2) == 0
			}
			ins[i] = in
		}
		return ins
	}
	f := func(seed int64, nRaw uint8) bool {
		ins := gen(seed, int(nRaw)+1)
		return reflect.DeepEqual(roundTrip(t, ins), ins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeEmptyStream(t *testing.T) {
	got := roundTrip(t, nil)
	if len(got) != 0 {
		t.Fatalf("empty stream decoded %d instructions", len(got))
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("ML"))); err == nil {
		t.Fatal("expected error for truncated header")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Instr{Kind: Load, Addr: 123456}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("expected decode failure on truncated record")
	}
	if r.Err() == nil {
		t.Fatal("expected Reader.Err to report the truncation")
	}
}

func TestEncodeDensity(t *testing.T) {
	// Strided streams should encode compactly thanks to address deltas.
	src := NewStream(StreamConfig{Blocks: 1000, Seed: 1})
	ins := Collect(src, 10000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, in := range ins {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(len(ins))
	if perRecord > 4 {
		t.Fatalf("encoding too loose: %.2f bytes/record", perRecord)
	}
}
