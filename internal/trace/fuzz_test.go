package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mlpcache/internal/simerr"
)

// FuzzTraceDecode feeds arbitrary bytes to the trace reader. The decoder
// must never panic and never loop forever: it either yields instructions
// with in-range fields or stops with a wrapped simerr.ErrCorruptTrace
// (header failures may also surface io errors, still wrapped).
func FuzzTraceDecode(f *testing.F) {
	// Seed corpus: a valid little trace, the bare header, a truncated
	// header, a corrupt magic, and records with pathological varints.
	var valid bytes.Buffer
	w := NewWriter(&valid)
	for _, in := range []Instr{
		{Kind: Int},
		{Kind: Load, Addr: 0x1000, Dep: 3},
		{Kind: Store, Addr: 0xffff_ffff_0000, Dep: 1},
		{Kind: Branch, Mispredict: true, Taken: true},
	} {
		if err := w.Write(in); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("MLPT\x01"))
	f.Add([]byte("MLPT"))
	f.Add([]byte("XLPT\x01junk"))
	f.Add(append([]byte("MLPT\x01"), 0x17, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add(append([]byte("MLPT\x01"), 0x07)) // invalid kind 7

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, simerr.ErrCorruptTrace) &&
				!errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("reader error not typed: %v", err)
			}
			return
		}
		// The stream is finite, so decoding must terminate well within
		// one instruction per input byte plus slack.
		limit := len(data) + 8
		n := 0
		for {
			in, ok := r.Next()
			if !ok {
				break
			}
			if n++; n > limit {
				t.Fatalf("decoded %d instructions from %d bytes", n, len(data))
			}
			if in.Kind >= numKinds {
				t.Fatalf("decoded out-of-range kind %d", in.Kind)
			}
			if in.Dep < 0 {
				t.Fatalf("decoded negative dep %d", in.Dep)
			}
		}
		if err := r.Err(); err != nil && !errors.Is(err, simerr.ErrCorruptTrace) {
			t.Fatalf("decode error not typed: %v", err)
		}
	})
}

// FuzzTraceRoundTrip encodes a canonicalized instruction pair and checks
// the decode reproduces it exactly.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint64(0x1000), int32(3), true, false, uint8(5), uint64(0x2000), int32(0), false, true)
	f.Add(uint8(0), uint64(0), int32(0), false, false, uint8(6), uint64(1<<40), int32(9), true, true)
	f.Add(uint8(5), ^uint64(0), int32(1<<30), false, false, uint8(4), uint64(1), int32(1), false, false)

	f.Fuzz(func(t *testing.T, k1 uint8, a1 uint64, d1 int32, m1, t1 bool,
		k2 uint8, a2 uint64, d2 int32, m2, t2 bool) {
		canon := func(k uint8, addr uint64, dep int32, mis, taken bool) Instr {
			in := Instr{Kind: Kind(k % uint8(numKinds)), Mispredict: mis, Taken: taken}
			if dep > 0 {
				in.Dep = dep
			}
			// The format carries addresses only for memory ops and
			// taken-address branches; others decode as zero.
			if in.Kind.IsMem() {
				in.Addr = addr
			} else if in.Kind == Branch {
				in.Addr = addr
			}
			return in
		}
		ins := []Instr{
			canon(k1, a1, d1, m1, t1),
			canon(k2, a2, d2, m2, t2),
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, in := range ins {
			if err := w.Write(in); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reading back own encoding: %v", err)
		}
		for i, want := range ins {
			got, ok := r.Next()
			if !ok {
				t.Fatalf("record %d missing: %v", i, r.Err())
			}
			// A branch with Addr 0 encodes without an address; the
			// previous record's delta base makes that decode to the
			// prior address only if flagged, so zero stays zero.
			if got != want {
				t.Fatalf("record %d: got %+v want %+v", i, got, want)
			}
		}
		if _, ok := r.Next(); ok {
			t.Fatal("decoded phantom record")
		}
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
	})
}
