// Package trace defines the instruction-stream representation consumed by
// the timing simulator, together with deterministic generators that build
// synthetic workloads and a compact binary on-disk encoding.
//
// A trace is a sequence of Instr records. Memory instructions carry a byte
// address; every instruction may carry a register dependence expressed as a
// backward distance in instructions. The dependence distance is what lets
// the out-of-order core model distinguish pointer-chasing loads (each load
// depends on the previous one, so their misses serialize and become
// "isolated misses" in the paper's terminology) from streaming loads (no
// dependences, so their misses overlap inside the instruction window and
// become "parallel misses") — the Figure 1 distinction the whole paper
// builds on (Section 2).
package trace

// Kind classifies an instruction for the timing model.
type Kind uint8

// Instruction kinds. Latencies follow the paper's Table 2: all INT
// instructions except multiply take 1 cycle, INT multiply takes 8, FP
// operations take 4 except divide at 16. Loads and stores are timed by the
// memory hierarchy; branches resolve in one cycle plus any misprediction
// penalty.
const (
	Int Kind = iota
	Mul
	FP
	Div
	Load
	Store
	Branch

	numKinds
)

var kindNames = [...]string{"int", "mul", "fp", "div", "load", "store", "branch"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// IsMem reports whether the instruction accesses data memory.
func (k Kind) IsMem() bool { return k == Load || k == Store }

// Instr is one dynamic instruction.
type Instr struct {
	// Addr is the byte address accessed by a Load or Store; zero otherwise.
	Addr uint64
	// Dep is the backward distance, in dynamic instructions, to the
	// producer of this instruction's source operand. Zero means the
	// instruction has no unresolved register dependence. A load with
	// Dep == 1 cannot issue until the immediately preceding instruction
	// completes.
	Dep int32
	// Kind selects the functional-unit timing class.
	Kind Kind
	// Mispredict marks a branch the front end mispredicts (oracle
	// mode, the default). When the simulator runs a real branch
	// predictor instead, it uses Taken — the branch's actual outcome —
	// and Addr, which for branches holds the static branch id.
	Mispredict bool
	// Taken is the branch's actual direction (predictor mode).
	Taken bool
}

// Source produces a stream of instructions. Implementations may be finite
// (Next reports false at end of stream) or unbounded (workload generators
// never report false; callers bound the run by instruction count).
type Source interface {
	Next() (Instr, bool)
}

// SliceSource replays a fixed slice of instructions once.
type SliceSource struct {
	instrs []Instr
	pos    int
}

// NewSliceSource returns a Source that yields each element of instrs in
// order, then reports end of stream. The slice is not copied.
func NewSliceSource(instrs []Instr) *SliceSource {
	return &SliceSource{instrs: instrs}
}

func (s *SliceSource) Next() (Instr, bool) {
	if s.pos >= len(s.instrs) {
		return Instr{}, false
	}
	in := s.instrs[s.pos]
	s.pos++
	return in, true
}

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// Collect drains up to n instructions from src into a new slice. It stops
// early if the source ends.
func Collect(src Source, n int) []Instr {
	out := make([]Instr, 0, n)
	for len(out) < n {
		in, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}

// Limit wraps src so that at most n instructions are produced.
type Limit struct {
	src  Source
	left int
}

// NewLimit returns a Source producing at most n instructions from src.
func NewLimit(src Source, n int) *Limit {
	return &Limit{src: src, left: n}
}

func (l *Limit) Next() (Instr, bool) {
	if l.left <= 0 {
		return Instr{}, false
	}
	in, ok := l.src.Next()
	if !ok {
		l.left = 0
		return Instr{}, false
	}
	l.left--
	return in, true
}

// Concat yields every instruction of each source in turn.
type Concat struct {
	srcs []Source
}

// NewConcat returns a Source that drains each of srcs in order.
func NewConcat(srcs ...Source) *Concat {
	return &Concat{srcs: srcs}
}

func (c *Concat) Next() (Instr, bool) {
	for len(c.srcs) > 0 {
		in, ok := c.srcs[0].Next()
		if ok {
			return in, true
		}
		c.srcs = c.srcs[1:]
	}
	return Instr{}, false
}

// Addresses returns the sequence of data-memory block numbers touched by
// the instructions, using the given block size in bytes. It is the access
// stream a cache at that block granularity observes, and is what the
// offline Belady/OPT analysis consumes.
func Addresses(instrs []Instr, blockBytes uint64) []uint64 {
	var out []uint64
	for _, in := range instrs {
		if in.Kind.IsMem() {
			out = append(out, in.Addr/blockBytes)
		}
	}
	return out
}
