package trace

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Int: "int", Mul: "mul", FP: "fp", Div: "div",
		Load: "load", Store: "store", Branch: "branch",
		Kind(99): "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindIsMem(t *testing.T) {
	for k := Int; k < numKinds; k++ {
		want := k == Load || k == Store
		if got := k.IsMem(); got != want {
			t.Errorf("%v.IsMem() = %v, want %v", k, got, want)
		}
	}
}

func TestSliceSource(t *testing.T) {
	ins := []Instr{{Kind: Int}, {Kind: Load, Addr: 64}, {Kind: Branch}}
	s := NewSliceSource(ins)
	for i, want := range ins {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("instr %d: got %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("expected end of stream")
	}
	s.Reset()
	if in, ok := s.Next(); !ok || in != ins[0] {
		t.Fatalf("after Reset: got %+v ok=%v", in, ok)
	}
}

func TestLimit(t *testing.T) {
	src := NewStream(StreamConfig{Blocks: 4, Seed: 1})
	lim := NewLimit(src, 7)
	n := 0
	for {
		_, ok := lim.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Fatalf("Limit yielded %d instructions, want 7", n)
	}
}

func TestLimitEndsWithShortSource(t *testing.T) {
	lim := NewLimit(NewSliceSource([]Instr{{Kind: Int}}), 10)
	if got := len(Collect(lim, 100)); got != 1 {
		t.Fatalf("got %d instructions, want 1", got)
	}
}

func TestConcat(t *testing.T) {
	a := NewSliceSource([]Instr{{Kind: Int}, {Kind: FP}})
	b := NewSliceSource([]Instr{{Kind: Load, Addr: 128}})
	got := Collect(NewConcat(a, b), 10)
	if len(got) != 3 || got[0].Kind != Int || got[1].Kind != FP || got[2].Kind != Load {
		t.Fatalf("Concat produced %+v", got)
	}
}

func TestAddresses(t *testing.T) {
	ins := []Instr{
		{Kind: Load, Addr: 0},
		{Kind: Int},
		{Kind: Store, Addr: 65},
		{Kind: Load, Addr: 128},
	}
	got := Addresses(ins, 64)
	want := []uint64{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(7).Uint64() == NewRNG(8).Uint64() {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGBoolExtremes(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

// Property: Perm always returns a permutation of [0, n).
func TestRNGPermProperty(t *testing.T) {
	r := NewRNG(11)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
