// Package prof wires runtime/pprof profiling into the CLIs
// (-cpuprofile / -memprofile on mlpsim, mlpexp and mlptrace): the
// instrumentation behind the paper's Section 7 overhead discussion when
// the simulator itself is the system under measurement. See the "pprof"
// section of docs/OBSERVABILITY.md for usage.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file paths
// and returns a stop function that finishes them. Call stop on every
// exit path before os.Exit — deferred calls do not run through os.Exit.
// With both paths empty, Start is a no-op and stop returns nil.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("prof: create mem profile: %w", err)
				}
				return first
			}
			runtime.GC() // flush recent allocations into the heap profile
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("prof: write mem profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("prof: close mem profile: %w", err)
			}
		}
		return first
	}, nil
}
