package audit

import (
	"fmt"

	"mlpcache/internal/cache"
)

// recencyWindow is how many sets one RecencyPermutation pass inspects.
// Ranking a set is O(assoc²) through the public SetView API, so a full
// 1024-set scan per pass would dominate small runs; a rotating window
// still covers the whole cache every sets/window passes.
const recencyWindow = 64

// RecencyPermutation returns a checker verifying that each inspected
// set's recency ranks form a permutation of 0..v-1 over its v valid
// lines — the LRU-stack property every recency-based policy in the
// simulator relies on. Each pass audits a rotating window of sets so the
// whole cache is covered across passes at bounded per-pass cost.
func RecencyPermutation(name string, c *cache.Cache) Checker {
	next := 0
	return Func(name, func(_ uint64, report func(string)) {
		sets := c.Config().Sets
		window := recencyWindow
		if window > sets {
			window = sets
		}
		for i := 0; i < window; i++ {
			set := (next + i) % sets
			checkSetRecency(c, set, report)
		}
		next = (next + window) % sets
	})
}

func checkSetRecency(c *cache.Cache, set int, report func(string)) {
	view := c.ViewSet(set)
	valid := 0
	for w := 0; w < view.Ways(); w++ {
		if view.Line(w).Valid {
			valid++
		}
	}
	seen := make([]bool, valid)
	for w := 0; w < view.Ways(); w++ {
		if !view.Line(w).Valid {
			continue
		}
		rank := view.RecencyRank(w)
		if rank < 0 || rank >= valid {
			report(fmt.Sprintf("set %d way %d: recency rank %d outside [0,%d)", set, w, rank, valid))
			return
		}
		if seen[rank] {
			report(fmt.Sprintf("set %d: duplicate recency rank %d", set, rank))
			return
		}
		seen[rank] = true
	}
}

// CostQBound returns a checker verifying every resident line's quantized
// cost fits the stated bit width (3 bits → 7 in the paper's design, §5).
func CostQBound(name string, c *cache.Cache, max uint8) Checker {
	return Func(name, func(_ uint64, report func(string)) {
		cfg := c.Config()
		for set := 0; set < cfg.Sets; set++ {
			view := c.ViewSet(set)
			for w := 0; w < view.Ways(); w++ {
				ln := view.Line(w)
				if ln.Valid && ln.CostQ > max {
					report(fmt.Sprintf("set %d way %d: cost_q %d exceeds %d", set, w, ln.CostQ, max))
				}
			}
		}
	})
}

// PselBound returns a checker verifying a saturating selector counter
// stays inside its bit width. value returns the counter's current value
// and maximum.
func PselBound(name string, value func() (v, max int)) Checker {
	return Func(name, func(_ uint64, report func(string)) {
		v, max := value()
		if v < 0 || v > max {
			report(fmt.Sprintf("psel value %d outside [0,%d]", v, max))
		}
	})
}
