package audit

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mlpcache/internal/cache"
	"mlpcache/internal/simerr"
)

func TestCleanReport(t *testing.T) {
	a := New(10, Func("noop", func(uint64, func(string)) {}))
	for cycle := uint64(1); cycle <= 100; cycle++ {
		a.MaybeCheck(cycle)
	}
	rep := a.Report()
	if rep.Checks != 10 {
		t.Fatalf("Checks = %d, want 10", rep.Checks)
	}
	if !rep.Ok() || rep.Err() != nil {
		t.Fatalf("clean run not ok: %v", rep.Err())
	}
}

func TestViolationsSurfaceAsErrInvariant(t *testing.T) {
	a := New(5, Func("bad", func(_ uint64, report func(string)) {
		report("broken thing")
	}))
	a.MaybeCheck(5)
	rep := a.Report()
	if rep.Ok() {
		t.Fatal("violating run reported ok")
	}
	err := rep.Err()
	if !errors.Is(err, simerr.ErrInvariant) {
		t.Fatalf("Err = %v, want ErrInvariant", err)
	}
	if !strings.Contains(err.Error(), "broken thing") {
		t.Fatalf("Err does not quote the first violation: %v", err)
	}
	if got := rep.Violations[0]; got.Checker != "bad" || got.Cycle != 5 {
		t.Fatalf("violation = %+v", got)
	}
}

func TestRetentionCap(t *testing.T) {
	a := New(1, Func("noisy", func(_ uint64, report func(string)) {
		for i := 0; i < 10; i++ {
			report(fmt.Sprintf("v%d", i))
		}
	}))
	for cycle := uint64(1); cycle <= 100; cycle++ {
		a.MaybeCheck(cycle)
	}
	rep := a.Report()
	if len(rep.Violations) != maxViolations {
		t.Fatalf("retained %d violations, want %d", len(rep.Violations), maxViolations)
	}
	if want := 10*100 - maxViolations; rep.Dropped != want {
		t.Fatalf("Dropped = %d, want %d", rep.Dropped, want)
	}
}

// Fast-forward skips cycles, so MaybeCheck must trigger on any cycle at
// or past the deadline, then re-arm past the observed cycle.
func TestMaybeCheckSurvivesFastForward(t *testing.T) {
	a := New(100, Func("noop", func(uint64, func(string)) {}))
	a.MaybeCheck(50)     // before first deadline: no pass
	a.MaybeCheck(10_000) // jumped far past several deadlines: one pass
	a.MaybeCheck(10_001) // re-armed past the jump: no pass
	if got := a.Report().Checks; got != 1 {
		t.Fatalf("Checks = %d, want 1 (one pass per deadline crossing)", got)
	}
	a.MaybeCheck(10_100)
	if got := a.Report().Checks; got != 2 {
		t.Fatalf("Checks = %d after next deadline, want 2", got)
	}
}

func TestStringsAdapter(t *testing.T) {
	calls := 0
	a := New(1, Strings("mshr", func() []string {
		calls++
		if calls == 2 {
			return []string{"leak A", "leak B"}
		}
		return nil
	}))
	a.MaybeCheck(1)
	a.MaybeCheck(2)
	rep := a.Report()
	if len(rep.Violations) != 2 {
		t.Fatalf("got %d violations, want 2", len(rep.Violations))
	}
	if rep.Violations[0].Detail != "leak A" || rep.Violations[0].Checker != "mshr" {
		t.Fatalf("violation = %+v", rep.Violations[0])
	}
}

func TestRecencyPermutationOnLiveCache(t *testing.T) {
	c := cache.New(cache.Config{Sets: 128, Assoc: 4, BlockBytes: 64}, cache.NewLRU())
	for i := uint64(0); i < 4096; i++ {
		addr := (i * 2654435761) % (1 << 20)
		if !c.Probe(addr, false) {
			c.Fill(addr, uint8(i%8), false)
		}
	}
	a := New(1, RecencyPermutation("l2-recency", c), CostQBound("l2-costq", c, 7))
	// Enough passes for the rotating window to cover all sets twice.
	for cycle := uint64(1); cycle <= 8; cycle++ {
		a.MaybeCheck(cycle)
	}
	if err := a.Report().Err(); err != nil {
		t.Fatalf("live LRU cache violates invariants: %v", err)
	}
}

func TestCostQBoundCatchesOversizedCost(t *testing.T) {
	c := cache.New(cache.Config{Sets: 4, Assoc: 2, BlockBytes: 64}, cache.NewLRU())
	c.Fill(0, 9, false) // 9 > 7: would not fit the 3-bit field
	a := New(1, CostQBound("costq", c, 7))
	a.CheckNow(1)
	if a.Report().Ok() {
		t.Fatal("oversized cost_q not reported")
	}
}

func TestPselBound(t *testing.T) {
	v := 3
	a := New(1, PselBound("psel", func() (int, int) { return v, 63 }))
	a.CheckNow(1)
	if !a.Report().Ok() {
		t.Fatalf("in-range psel flagged: %v", a.Report().Err())
	}
	v = 64
	a.CheckNow(2)
	if a.Report().Ok() {
		t.Fatal("out-of-range psel not reported")
	}
}
