// Package audit implements the simulator's invariant auditor: a set of
// pluggable checkers that cross-check live simulator state (recency
// stacks, MSHR bookkeeping, quantized costs, selector counters, sampling
// directories) while a run is in progress. The checkers encode the
// paper's structural invariants: Algorithm 1's cost accounting can never
// leave an MSHR entry with a negative or unbounded cost, the Figure 3b
// quantizer can never emit a value outside its 3-bit range, and the
// Section 6 selector counters must stay within their saturation bounds.
//
// The auditor is built for "cheap when off, bounded when on": a disabled
// run never constructs one, and an enabled run pays one integer compare
// per cycle plus a full checker pass every AuditEvery cycles. Checkers
// must never mutate the state they inspect.
//
// Violations accumulate in a Report; Report.Err wraps simerr.ErrInvariant
// so callers can classify audit failures with errors.Is like every other
// simulator error.
package audit

import (
	"fmt"

	"mlpcache/internal/simerr"
)

// DefaultEvery is the default audit period in cycles. It keeps the full
// checker pass off the hot path (a pass touches every registered
// structure) while still sampling a long run thousands of times.
const DefaultEvery = 16384

// maxViolations bounds the violations retained per report; a broken
// invariant tends to fire every pass, and the first few instances carry
// all the signal. Further violations are counted in Report.Dropped.
const maxViolations = 64

// Violation records one invariant breach.
type Violation struct {
	// Checker is the name of the checker that fired.
	Checker string
	// Cycle is the simulation cycle of the audit pass.
	Cycle uint64
	// Detail describes the breach.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s @cycle %d] %s", v.Checker, v.Cycle, v.Detail)
}

// Checker inspects one structure's invariants. Implementations must be
// read-only with respect to the simulated state.
type Checker interface {
	// Name identifies the checker in violations.
	Name() string
	// Check runs one audit pass, calling report once per breach found.
	Check(cycle uint64, report func(detail string))
}

// Func adapts a plain function into a Checker.
func Func(name string, fn func(cycle uint64, report func(detail string))) Checker {
	return funcChecker{name: name, fn: fn}
}

type funcChecker struct {
	name string
	fn   func(uint64, func(string))
}

func (c funcChecker) Name() string { return c.name }
func (c funcChecker) Check(cycle uint64, report func(string)) {
	c.fn(cycle, report)
}

// Strings adapts an AuditInvariants-style method — returning one string
// per violated invariant — into a Checker. The mshr, SBAR and CBS
// structures expose exactly this shape.
func Strings(name string, fn func() []string) Checker {
	return Func(name, func(_ uint64, report func(string)) {
		for _, detail := range fn() {
			report(detail)
		}
	})
}

// Report accumulates the outcome of an audited run.
type Report struct {
	// Checks counts completed audit passes.
	Checks uint64
	// Violations holds the retained breaches, oldest first, capped at an
	// internal limit.
	Violations []Violation
	// Dropped counts breaches beyond the retention cap.
	Dropped int
}

// Ok reports whether no invariant was violated.
func (r *Report) Ok() bool { return len(r.Violations) == 0 && r.Dropped == 0 }

// Err returns nil when the report is clean, and otherwise an error
// wrapping simerr.ErrInvariant that quotes the first violation.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	total := len(r.Violations) + r.Dropped
	return simerr.New(simerr.ErrInvariant, "audit: %d violation(s) in %d passes; first: %s",
		total, r.Checks, r.Violations[0])
}

func (r *Report) record(v Violation) {
	if len(r.Violations) >= maxViolations {
		r.Dropped++
		return
	}
	r.Violations = append(r.Violations, v)
}

// Auditor schedules checker passes over a running simulation.
type Auditor struct {
	every    uint64
	next     uint64
	checkers []Checker
	rep      Report
}

// New builds an auditor that runs a full checker pass every `every`
// cycles (DefaultEvery when zero or negative is not representable:
// every==0 selects DefaultEvery).
func New(every uint64, checkers ...Checker) *Auditor {
	if every == 0 {
		every = DefaultEvery
	}
	return &Auditor{every: every, next: every, checkers: checkers}
}

// Register appends checkers to the pass.
func (a *Auditor) Register(cs ...Checker) { a.checkers = append(a.checkers, cs...) }

// MaybeCheck runs a pass when the schedule is due. The comparison is
// against a deadline rather than now%every because the simulator
// fast-forwards over idle regions — cycle values are not consecutive.
func (a *Auditor) MaybeCheck(now uint64) {
	if now < a.next {
		return
	}
	a.CheckNow(now)
	for a.next <= now {
		a.next += a.every
	}
}

// CheckNow runs a full checker pass unconditionally.
func (a *Auditor) CheckNow(now uint64) {
	for _, c := range a.checkers {
		name := c.Name()
		c.Check(now, func(detail string) {
			a.rep.record(Violation{Checker: name, Cycle: now, Detail: detail})
		})
	}
	a.rep.Checks++
}

// Report returns the accumulated report. The pointer stays valid (and
// live) for the auditor's lifetime.
func (a *Auditor) Report() *Report { return &a.rep }
