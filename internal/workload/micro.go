package workload

import "mlpcache/internal/trace"

// Micro-workloads: small single-mechanism models, registered alongside
// the paper's 14 benchmarks (they appear in Registered() but not in the
// Table 3 set returned by Names()/All()). They give users and tests
// minimal reproductions of each behaviour the paper's mechanism reacts
// to, and are handy first arguments to mlpsim -bench.
func init() {
	register(Spec{
		Name: "micro.isolated", Class: "INT",
		Summary: "Pure pointer chase over an uncacheable working set: every " +
			"miss is isolated (mlp-cost ≈ 444 cycles, the 420+ bin of " +
			"Figure 2). The worst case traditional replacement cannot see.",
		Build: func(seed uint64) trace.Source {
			return trace.NewPointerChase(trace.ChaseConfig{
				Base: 1 << 33, Blocks: 40_000, Gap: 10, Touches: touches, Seed: seed,
			})
		},
	})

	register(Spec{
		Name: "micro.parallel", Class: "FP",
		Summary: "Pure independent stream over an uncacheable working set: " +
			"misses overlap up to the window/MSHR/bus limits (the 0-59 " +
			"cycle bin of Figure 2).",
		Build: func(seed uint64) trace.Source {
			return trace.NewStream(trace.StreamConfig{
				Base: 1 << 33, Blocks: 40_000, Gap: 8, Touches: touches, Seed: seed,
			})
		},
	})

	register(Spec{
		Name: "micro.figure1", Class: "INT",
		Summary: "The Figure 1 scenario at cache scale: a retainable " +
			"isolated-miss region (the S blocks) thrashed by a parallel " +
			"stream (the P blocks). LIN's best case.",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				chasePart(0, 4000, 10, seed+1, 1),
				streamPart(1, 30_000, 8, seed+2, 4),
			)
		},
	})

	register(Spec{
		Name: "micro.pollution", Class: "INT",
		Summary: "LIN's worst case distilled: visit-twice blocks whose " +
			"isolated first pass poisons the tags with dead cost_q=7 " +
			"residue, starving an LRU-friendly loop. The reason SBAR exists.",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				interleaved(seed+9, 4.0,
					parallelChase(0, 4000, 2, 6, seed+1, 2.2),
					streamPart(1, 20_000, 8, seed+2, 0.55),
				),
				twoPassPart(2, 10, 5, 280, seed+3, 1.2, 920),
			)
		},
	})

	register(Spec{
		Name: "micro.stores", Class: "INT",
		Summary: "Store-heavy streaming: write allocations, dirty evictions " +
			"and writeback bandwidth — exercises the store buffer's " +
			"non-blocking retirement (Table 2: store misses do not block " +
			"the window).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				trace.MixPart{
					Src: trace.NewStream(trace.StreamConfig{
						Base: base(0), Blocks: 30_000, Gap: 8,
						Touches: touches, Stores: 0.5, Seed: seed + 1,
					}),
					Weight: 3, Chunk: 16 * visitLen(8),
				},
				chasePart(1, 3000, 10, seed+2, 1),
			)
		},
	})

	register(Spec{
		Name: "micro.phases", Class: "FP",
		Summary: "A two-phase workload (LIN-friendly then LRU-friendly) for " +
			"watching SBAR's PSEL flip — the ammp mechanism without ammp's " +
			"tuning.",
		Build: func(seed uint64) trace.Source {
			phaseA := trace.NewMix(seed+10,
				chasePart(0, 6000, 8, seed+1, 1.5),
				streamPart(1, 24_000, 8, seed+2, 6),
			)
			phaseB := parallelChase(2, 10_000, 2, 6, seed+3, 1).Src
			return trace.NewPhases(
				trace.Phase{Src: phaseA, Len: 400_000},
				trace.Phase{Src: phaseB, Len: 400_000},
			)
		},
	})
}
