package workload

import "mlpcache/internal/trace"

// The models below size their working sets against the baseline L2:
// 1 MB = 16384 blocks of 64 B in 1024 sets of 16 ways. The mechanisms at
// play, matching the paper's Section 5.2 analysis:
//
//   - Thrash filtering (art, sixtrack, apsi, mcf, vpr, facerec): a reused
//     region whose misses carry above-baseline mlp-cost earns a LIN score
//     premium (λ·cost_q beats recency once cost_q ≥ 4) and is retained
//     against streaming thrash, eliminating its misses entirely. The
//     region must thrash under LRU (insertions between revisits exceed
//     16 ways/set) and fit inside LIN's protected capacity (≲ 11-12
//     ways/set ≈ 12K blocks).
//
//   - Dead-block pollution (bzip2, parser, mgrid, twolf's downside): a
//     cold pointer chase leaves isolated misses to blocks that are never
//     reused. Their stored cost_q = 7 outranks every recency position
//     (28 > 15 + 4·1), so under LIN they accumulate and starve an
//     LRU-friendly working set whose own misses are cheap and parallel.
//     Retaining them has zero value — exactly the failed prediction the
//     paper blames on high cost deltas. Under LRU the dead blocks age out
//     harmlessly.
//
//   - Alternating cost (the high-delta signature of Table 1): a region
//     that thrashes under LRU and is visited alternately by dependent
//     (isolated) and independent (parallel) laps re-misses each block
//     with costs that swing by ~400 cycles.
//
//   - Phase alternation (ammp, galgel): distinct program phases in which
//     different policies win; fixed policies compromise, SBAR tracks.
func init() {
	register(Spec{
		Name: "art", Class: "FP",
		PaperLINMissPct: -31, PaperLINIPCPct: +19,
		Summary: "Large low-temporal-locality working set that thrashes LRU; " +
			"a parallelism-2 reused region (~9K blocks, 31% of accesses) earns " +
			"a cost_q premium under LIN and is retained, filtering the thrash " +
			"(paper: −31% misses, +19% IPC; Figure 2 shows mostly parallel " +
			"misses).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				parallelChase(0, 9000, 2, 8, seed+1, 1),
				streamPart(1, 26000, 8, seed+2, 6.7),
			)
		},
	})

	register(Spec{
		Name: "mcf", Class: "INT",
		PaperLINMissPct: -11, PaperLINIPCPct: +22,
		Summary: "Pointer-intensive: a repeatable isolated-miss chase (the " +
			"paper's ~9% isolated misses) plus a dominant parallelism-2 chase " +
			"(the 180-240 cycle peak in Figure 2). LIN retains the isolated " +
			"region, eliminating almost all isolated misses (paper: −11% " +
			"misses, +22% IPC).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				chasePart(0, 6000, 10, seed+1, 1.2),
				parallelChase(1, 24000, 2, 10, seed+2, 5.5),
				streamPart(2, 18000, 10, seed+3, 3.3),
			)
		},
	})

	register(Spec{
		Name: "twolf", Class: "INT",
		PaperLINMissPct: +7, PaperLINIPCPct: +1.5,
		Summary: "Mixed blessing for LIN: a retainable isolated-miss chase " +
			"(stall savings) against cold-chase pollution that starves a " +
			"small LRU-friendly set (extra cheap misses). Misses rise while " +
			"IPC still edges up (paper: +7% misses, +1.5% IPC; Table 1: 52% " +
			"of deltas <60).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				chasePart(0, 2000, 12, seed+1, 0.14),
				twoPassPart(1, 12, 6, 260, seed+2, 0.8, 224),
				interleaved(seed+9, 5.0,
					streamPart(2, 16000, 12, seed+3, 1.1),
					streamPart(4, 1500, 10, seed+5, 2.0), // LRU-friendly victim set
				),
			)
		},
	})

	register(Spec{
		Name: "vpr", Class: "INT",
		PaperLINMissPct: -9, PaperLINIPCPct: +15,
		Summary: "Isolated-miss heavy with a retainable chase region; like mcf " +
			"but with a larger isolated fraction and some cost instability " +
			"(paper: −9% misses, +15% IPC).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				chasePart(0, 6000, 12, seed+1, 1.5),
				altPart(1, 7000, 12, 6, seed+2, 1.5, 128),
				parallelChase(2, 20000, 2, 12, seed+3, 3.5),
				streamPart(3, 14000, 12, seed+4, 2.5),
				coldChasePart(4, 12, seed+5, 0.4, 128),
			)
		},
	})

	register(Spec{
		Name: "facerec", Class: "FP",
		PaperLINMissPct: -3, PaperLINIPCPct: +4.4,
		Summary: "Two distinct Figure 2 peaks — one isolated, one at " +
			"parallelism 2 — with near-perfectly repeatable cost (Table 1: " +
			"96% of deltas <60). LIN retains the small isolated region " +
			"(paper: −3% misses, +4.4% IPC).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				chasePart(0, 3500, 10, seed+1, 0.6),
				parallelChase(1, 26000, 2, 10, seed+2, 7.5),
			)
		},
	})

	register(Spec{
		Name: "ammp", Class: "FP",
		PaperLINMissPct: +4, PaperLINIPCPct: +4.2,
		Summary: "Two alternating program phases (Section 7.1): a LIN-friendly " +
			"phase (isolated chase thrashed by streaming under LRU) and an " +
			"LRU-friendly phase (an in-cache parallelism-2 loop that phase-A's " +
			"cost_q=7 residue starves under LIN). LIN's phase-A win roughly " +
			"cancels its phase-B loss (paper: +4.2% IPC); SBAR tracks each " +
			"phase and reaches +18.3% in the paper.",
		Build: func(seed uint64) trace.Source {
			phaseA := trace.NewMix(seed+10,
				chasePart(0, 8000, 8, seed+1, 1.3),
				streamPart(1, 24000, 8, seed+2, 6),
			)
			phaseB := parallelChase(2, 10500, 2, 6, seed+3, 1).Src
			return trace.NewPhases(
				trace.Phase{Src: phaseA, Len: 550_000},
				trace.Phase{Src: phaseB, Len: 450_000},
			)
		},
	})

	register(Spec{
		Name: "galgel", Class: "FP",
		PaperLINMissPct: -6, PaperLINIPCPct: +5.1,
		Summary: "Mildly phased FP code: a thrash-filterable parallelism-2 " +
			"region dominates; the LRU-friendly interlude is parallel and " +
			"cheap, so LIN stays ahead and SBAR adds a little more (paper: " +
			"−6% misses, +5.1% IPC under LIN).",
		Build: func(seed uint64) trace.Source {
			phaseA := trace.NewMix(seed+10,
				parallelChase(0, 9000, 2, 8, seed+1, 1.3),
				streamPart(1, 24000, 8, seed+2, 5),
			)
			phaseB := trace.NewStream(trace.StreamConfig{
				Base: base(2), Blocks: 11000, Gap: 8, Seed: seed + 3,
			})
			return trace.NewPhases(
				trace.Phase{Src: phaseA, Len: 600_000},
				trace.Phase{Src: phaseB, Len: 300_000},
			)
		},
	})

	register(Spec{
		Name: "equake", Class: "FP",
		PaperLINMissPct: +1, PaperLINIPCPct: +0.2,
		Summary: "Balanced unstructured-mesh code: every region misses at the " +
			"same parallelism, so cost_q carries no signal and LIN decides " +
			"like LRU (paper: +1% misses, +0.2% IPC).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				parallelChase(0, 30000, 4, 10, seed+1, 5),
				streamPart(1, 25000, 10, seed+2, 5),
			)
		},
	})

	register(Spec{
		Name: "bzip2", Class: "INT",
		PaperLINMissPct: +6, PaperLINIPCPct: -3.3,
		Summary: "Unstable per-block cost (Table 1: average delta 126 cycles): " +
			"an alternating-cost region supplies misleading cost_q=7 markings " +
			"and cold-chase pollution accumulates dead high-cost residue that " +
			"starves the LRU-friendly hot set (paper: +6% misses, −3.3% IPC).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				interleaved(seed+9, 4.3,
					streamPart(0, 1500, 8, seed+1, 2.0), // LRU-friendly victim set
					streamPart(3, 22000, 8, seed+4, 0.7),
				),
				twoPassPart(1, 10, 5, 160, seed+2, 0.7, 224),
			)
		},
	})

	register(Spec{
		Name: "parser", Class: "INT",
		PaperLINMissPct: +35, PaperLINIPCPct: -16,
		Summary: "The worst case for last-cost prediction (average delta 190 " +
			"cycles): heavy cold-chase pollution permanently clogs sets with " +
			"dead cost_q=7 blocks, starving a dominant LRU-friendly working " +
			"set (paper: +35% misses, −16% IPC).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				interleaved(seed+9, 4.0,
					// Dependence-limited victim: starved misses stay
					// expensive (k=2) but never isolated (the light
					// stream keeps them company), so they cannot earn
					// a protective cost_q=7 of their own.
					parallelChase(0, 4000, 2, 6, seed+1, 2.2),
					streamPart(3, 20000, 8, seed+4, 0.55),
				),
				twoPassPart(1, 10, 5, 280, seed+2, 1.2, 920),
			)
		},
	})

	register(Spec{
		Name: "sixtrack", Class: "FP",
		PaperLINMissPct: -30, PaperLINIPCPct: +10,
		Summary: "Perfectly repeatable cost (Table 1: 100% of deltas <60): a " +
			"parallelism-2 reused region filtered out of a streaming thrash, " +
			"cutting misses by about a third.",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				parallelChase(0, 9500, 2, 12, seed+1, 1),
				streamPart(1, 24000, 12, seed+2, 5.8),
				coldPart(2, 12, seed+3, 0.6),
			)
		},
	})

	register(Spec{
		Name: "apsi", Class: "FP",
		PaperLINMissPct: -32, PaperLINIPCPct: +4.7,
		Summary: "Like sixtrack but more compute-bound (larger gaps between " +
			"memory operations), so a similar miss reduction buys a smaller " +
			"IPC gain (paper: −32% misses, +4.7% IPC).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				parallelChase(0, 9500, 2, 20, seed+1, 1),
				streamPart(1, 22000, 20, seed+2, 5.8),
				coldPart(2, 20, seed+3, 0.7),
			)
		},
	})

	register(Spec{
		Name: "lucas", Class: "FP",
		PaperLINMissPct: 0, PaperLINIPCPct: +1.3,
		Summary: "Streaming FFT-style kernel with a high compulsory fraction " +
			"(Table 3: 41.6%): replacement policy barely matters (paper: 0% " +
			"miss change, +1.3% IPC).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				streamPart(0, 18000, 10, seed+1, 3.5),
				coldPart(1, 10, seed+2, 5),
				parallelChase(2, 2500, 2, 10, seed+3, 0.4),
			)
		},
	})

	register(Spec{
		Name: "mgrid", Class: "FP",
		PaperLINMissPct: +3, PaperLINIPCPct: -33,
		Summary: "Multigrid sweeps touch blocks with completely different " +
			"parallelism at different grid levels (average delta 187 cycles, " +
			"66% of deltas ≥120) and carry the highest compulsory fraction " +
			"(46.6%). Dead cost_q=7 residue makes LIN starve an in-cache " +
			"parallelism-2 loop whose replacement misses are expensive — the " +
			"paper's largest slowdown (−33% IPC).",
		Build: func(seed uint64) trace.Source {
			return trace.NewMix(seed,
				interleaved(seed+9, 3.8,
					// Same construction as parser's victim, with an
					// even larger pollution span: mgrid is the paper's
					// worst case.
					parallelChase(0, 4500, 2, 6, seed+1, 3.3),
					streamPart(3, 16000, 8, seed+4, 0.55),
				),
				twoPassPart(1, 8, 4, 340, seed+2, 1.5, 960),
				coldPart(4, 6, seed+5, 0.8),
			)
		},
	})
}
