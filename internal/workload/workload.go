// Package workload models the paper's 14 SPEC CPU2000 benchmarks as
// synthetic instruction streams built from the trace generator
// combinators. SPEC binaries, the Alpha toolchain, and the authors'
// SimPoint slices are not available here, so each model instead encodes
// the paper's own characterisation of the program — its Figure 2 mlp-cost
// shape, its Table 1 cost-repeatability class, its Table 3 miss-volume
// class, and the mechanism the paper gives for why LIN helps or hurts it
// (Section 5.2). Absolute IPC values differ from the paper's testbed; the
// response *direction and ordering* under LIN, CBS and SBAR is what these
// models reproduce.
//
// The building blocks map to program behaviours as follows:
//
//   - pointer chase          → isolated misses (mlp-cost ≈ full latency)
//   - k interleaved chases   → parallelism-k misses (mlp-cost ≈ latency/k)
//   - independent stream     → highly parallel misses (bus-limited cost)
//   - alternating chase/burst→ unstable per-block cost (high Table 1 delta)
//   - looped in-cache stream → LRU-friendly reuse that stale high-cost
//     blocks can starve under LIN (the ammp/parser failure mode)
//   - cold stream            → compulsory misses (Table 3)
package workload

import (
	"sort"

	"mlpcache/internal/trace"
)

// Spec describes one benchmark model.
type Spec struct {
	// Name is the SPEC benchmark name ("art", "mcf", ...).
	Name string
	// Class is INT or FP, as in Table 3.
	Class string
	// Summary states the behaviour the model encodes and why.
	Summary string
	// PaperLINMissPct and PaperLINIPCPct are the paper's Figure 5
	// insets: the change in misses and IPC under LIN(λ=4), recorded
	// here so reports can show paper-vs-measured side by side.
	PaperLINMissPct float64
	PaperLINIPCPct  float64
	// Build constructs the instruction stream. Streams are unbounded;
	// the simulator bounds the run.
	Build func(seed uint64) trace.Source
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate benchmark " + s.Name)
	}
	registry[s.Name] = s
}

// Names returns all benchmark names in the paper's Table 3 order.
func Names() []string {
	return []string{
		"art", "mcf", "twolf", "vpr", "facerec", "ammp", "galgel",
		"equake", "bzip2", "parser", "sixtrack", "apsi", "lucas", "mgrid",
	}
}

// All returns every benchmark spec in Table 3 order.
func All() []Spec {
	names := Names()
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// ByName looks up one benchmark model.
func ByName(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Registered returns every registered name, sorted (includes any models
// beyond the paper's 14, e.g. microbenchmarks registered by tests).
func Registered() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Region bases keep each component's address range disjoint.
func base(i int) uint64 { return uint64(i+1) << 33 }

// l2Sets is the baseline L2's set count, which the cold-chase pollution
// spans are expressed against.
const l2Sets = 1024

// touches is the spatial-locality factor every model uses: each block
// visit issues this many extra same-block loads, which hit the L1 and
// give the models realistic L1 hit rates and compute density.
const touches = 2

// visitLen is the instruction cost of one block visit.
func visitLen(gap int) int { return gap + 1 + touches }

// chasePart builds a single pointer chase (isolated misses).
func chasePart(region int, blocks, gap int, seed uint64, weight float64) trace.MixPart {
	return trace.MixPart{
		Src: trace.NewPointerChase(trace.ChaseConfig{
			Base: base(region), Blocks: blocks, Gap: gap, Touches: touches, Seed: seed,
		}),
		Weight: weight,
		// Chunks long enough that the instruction window drains of
		// other parts' loads: mid-chunk misses see only this chase's
		// (serialized) misses and accrue the full isolated cost.
		Chunk: 24 * visitLen(gap),
	}
}

// streamPart builds an independent strided stream (parallel misses).
func streamPart(region int, blocks, gap int, seed uint64, weight float64) trace.MixPart {
	return trace.MixPart{
		Src: trace.NewStream(trace.StreamConfig{
			Base: base(region), Blocks: blocks, Gap: gap, Touches: touches, Seed: seed,
		}),
		Weight: weight,
		Chunk:  16 * visitLen(gap),
	}
}

// coldPart builds a never-repeating stream (compulsory misses).
func coldPart(region int, gap int, seed uint64, weight float64) trace.MixPart {
	return trace.MixPart{
		Src: trace.NewStream(trace.StreamConfig{
			Base: base(region), Blocks: 1, Gap: gap, Touches: touches, Cold: true, Seed: seed,
		}),
		Weight: weight,
		Chunk:  16 * visitLen(gap),
	}
}

// coldChasePart builds a pointer chase over ever-fresh blocks: isolated,
// compulsory misses to blocks that are never reused. Under LIN the dead
// blocks' stored cost_q=7 outranks every recency position and pollutes
// the cache (the bzip2/parser/mgrid failure mode).
// spanSets confines the pollution to that many of the L2's 1024 sets
// (0 means all sets), which tunes the starvation from mild to total.
func coldChasePart(region int, gap int, seed uint64, weight float64, spanSets int) trace.MixPart {
	cfg := trace.ChaseConfig{
		Base: base(region), Blocks: 1, Gap: gap, Touches: touches, Cold: true, Seed: seed,
	}
	if spanSets > 0 && spanSets < l2Sets {
		cfg.RunLen, cfg.SkipLen = spanSets, l2Sets-spanSets
	}
	return trace.MixPart{
		Src:    trace.NewPointerChase(cfg),
		Weight: weight,
		Chunk:  24 * visitLen(gap),
	}
}

// twoPassPart builds the visit-twice generator (trace.NewTwoPass): fresh
// blocks missed once in isolation (cost_q=7) and once in a parallel burst
// after an eviction-horizon lag, then never again. It supplies both the
// Table 1 high-delta signature and the dead-block pollution that defeats
// LIN on bzip2, parser and mgrid. spanSets confines it as in
// coldChasePart.
// lagSegs sets the revisit distance: if the blocks in flight between the
// two passes (2·64·lagSegs) exceed LIN's q7 retention capacity in the
// span (16·spanSets), even LIN cannot hold a block to its revisit and the
// retention attempt is pure loss.
func twoPassPart(region int, chaseGap, burstGap, lagSegs int, seed uint64, weight float64, spanSets int) trace.MixPart {
	cfg := trace.TwoPassConfig{
		Base: base(region), SegBlocks: 64, LagSegs: lagSegs,
		ChaseGap: chaseGap, BurstGap: burstGap, Touches: touches, Seed: seed,
	}
	if spanSets > 0 && spanSets < l2Sets {
		cfg.RunLen, cfg.SkipLen = spanSets, l2Sets-spanSets
	}
	return trace.MixPart{
		Src:    trace.NewTwoPass(cfg),
		Weight: weight,
		// One chunk per chase+burst batch keeps the chase isolated.
		Chunk: cfg.BatchLen(),
	}
}

// altPart builds the unstable-cost generator (high Table 1 delta).
// spanSets confines the region to that many cache sets so that, aligned
// with a cold-chase span, its stale cost_q=7 markings are churned out by
// the pollution before each revisit — killing LIN's retention value
// exactly where the cost signal is meaningless (0 means all sets).
func altPart(region int, blocks, chaseGap, burstGap int, seed uint64, weight float64, spanSets int) trace.MixPart {
	cfg := trace.AlternatingConfig{
		Base: base(region), Blocks: blocks,
		ChaseGap: chaseGap, BurstGap: burstGap, Touches: touches, Seed: seed,
	}
	if spanSets > 0 && spanSets < l2Sets {
		cfg.RunLen, cfg.SkipLen = spanSets, l2Sets-spanSets
	}
	return trace.MixPart{
		Src:    trace.NewAlternating(cfg),
		Weight: weight,
		// Long chunks, for the same isolation reason as chasePart:
		// chase laps must see their own serialized misses only.
		Chunk: 24 * visitLen(chaseGap),
	}
}

// interleaved merges parts at near-visit granularity inside one outer
// part, so their misses overlap in the instruction window and share the
// MLP-based cost. A sparsely-missing hot set interleaved with an
// always-missing stream keeps its misses cheap (parallel) — without this,
// rare misses are isolated, earn cost_q=7, and self-protect under LIN.
func interleaved(seed uint64, outerWeight float64, parts ...trace.MixPart) trace.MixPart {
	inner := make([]trace.MixPart, len(parts))
	chunk := 0
	for i, p := range parts {
		chunk += p.Chunk
		p.Chunk = max(1, p.Chunk/16)
		inner[i] = p
	}
	return trace.MixPart{
		Src:    trace.NewMix(seed^0x517c, inner...),
		Weight: outerWeight,
		Chunk:  chunk,
	}
}

// parallelChase builds k independent chases over disjoint slices of one
// region, producing misses with parallelism ≈ k (mlp-cost ≈ latency/k,
// e.g. k=2 lands in the paper's 180-240 cycle bin for mcf).
func parallelChase(region int, blocks, k, gap int, seed uint64, weight float64) trace.MixPart {
	per := blocks / k
	parts := make([]trace.MixPart, k)
	for i := range parts {
		parts[i] = trace.MixPart{
			Src: trace.NewPointerChase(trace.ChaseConfig{
				Base:   base(region) + uint64(i*per)*64,
				Blocks: per, Gap: gap, Touches: touches, Seed: seed + uint64(i)*977,
			}),
			Weight: 1,
			Chunk:  1,
		}
	}
	return trace.MixPart{
		Src:    trace.NewMix(seed^0x9e37, parts...),
		Weight: weight,
		// Long chunks keep the window filled with just these k chains,
		// pinning the observed miss parallelism at k.
		Chunk: 24 * k * visitLen(gap),
	}
}
