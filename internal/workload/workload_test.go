package workload

import (
	"testing"

	"mlpcache/internal/trace"
)

func TestRegistryCoversThePaper(t *testing.T) {
	names := Names()
	if len(names) != 14 {
		t.Fatalf("%d benchmarks, want the paper's 14", len(names))
	}
	for _, n := range names {
		s, ok := ByName(n)
		if !ok {
			t.Fatalf("benchmark %q not registered", n)
		}
		if s.Name != n || s.Build == nil || s.Summary == "" {
			t.Fatalf("spec %q incomplete", n)
		}
		if s.Class != "INT" && s.Class != "FP" {
			t.Fatalf("%q class %q", n, s.Class)
		}
	}
	if _, ok := ByName("gcc"); ok {
		t.Fatal("unexpected benchmark")
	}
	if got := len(All()); got != 14 {
		t.Fatalf("All() = %d entries", got)
	}
	if got := len(Registered()); got < 14 {
		t.Fatalf("Registered() = %d entries", got)
	}
}

func TestPaperColumnsPresent(t *testing.T) {
	// Every model records the paper's Figure 5 inset for side-by-side
	// reporting; the known winners and losers must carry the right sign.
	winners := []string{"art", "mcf", "vpr", "galgel", "sixtrack", "apsi"}
	losers := []string{"bzip2", "parser", "mgrid"}
	for _, n := range winners {
		s, _ := ByName(n)
		if s.PaperLINIPCPct <= 0 {
			t.Errorf("%s paper IPC %+v should be positive", n, s.PaperLINIPCPct)
		}
	}
	for _, n := range losers {
		s, _ := ByName(n)
		if s.PaperLINIPCPct >= 0 {
			t.Errorf("%s paper IPC %+v should be negative", n, s.PaperLINIPCPct)
		}
	}
}

func TestAllModelsProduceValidStreams(t *testing.T) {
	for _, spec := range All() {
		src := spec.Build(42)
		ins := trace.Collect(src, 50_000)
		if len(ins) != 50_000 {
			t.Fatalf("%s: stream ended after %d instructions", spec.Name, len(ins))
		}
		memOps := 0
		for i, in := range ins {
			if in.Dep < 0 {
				t.Fatalf("%s: negative dep at %d", spec.Name, i)
			}
			if in.Dep > 0 && int(in.Dep) > i+1 {
				// Allowed (CPU treats it as retired) but should be
				// rare — only stream-start artifacts.
				if i > 1000 {
					t.Fatalf("%s: dep %d at %d reaches before start", spec.Name, in.Dep, i)
				}
			}
			if in.Kind.IsMem() {
				memOps++
			} else if in.Addr != 0 && in.Kind != trace.Branch {
				t.Fatalf("%s: non-memory instruction carries an address", spec.Name)
			}
		}
		if frac := float64(memOps) / float64(len(ins)); frac < 0.05 || frac > 0.8 {
			t.Fatalf("%s: memory-op fraction %.2f implausible", spec.Name, frac)
		}
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	for _, spec := range All() {
		a := trace.Collect(spec.Build(7), 5000)
		b := trace.Collect(spec.Build(7), 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: instruction %d differs across builds with equal seed", spec.Name, i)
			}
		}
	}
}

func TestModelsRespondToSeed(t *testing.T) {
	spec, _ := ByName("mcf")
	a := trace.Collect(spec.Build(1), 5000)
	b := trace.Collect(spec.Build(2), 5000)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	register(Spec{Name: "mcf"})
}
