package workload

import (
	"strings"
	"testing"

	"mlpcache/internal/trace"
)

func TestMicroWorkloadsRegistered(t *testing.T) {
	micro := 0
	for _, n := range Registered() {
		if strings.HasPrefix(n, "micro.") {
			micro++
			s, ok := ByName(n)
			if !ok || s.Build == nil || s.Summary == "" {
				t.Fatalf("micro spec %q incomplete", n)
			}
		}
	}
	if micro < 6 {
		t.Fatalf("only %d micro workloads registered", micro)
	}
	// The Table 3 set must stay exactly the paper's 14.
	for _, n := range Names() {
		if strings.HasPrefix(n, "micro.") {
			t.Fatalf("micro workload %q leaked into the paper set", n)
		}
	}
}

func TestMicroWorkloadsProduceStreams(t *testing.T) {
	for _, n := range Registered() {
		if !strings.HasPrefix(n, "micro.") {
			continue
		}
		s, _ := ByName(n)
		ins := trace.Collect(s.Build(3), 20_000)
		if len(ins) != 20_000 {
			t.Fatalf("%s: stream ended early", n)
		}
	}
}

func TestMicroStoresEmitStores(t *testing.T) {
	s, _ := ByName("micro.stores")
	ins := trace.Collect(s.Build(1), 30_000)
	stores := 0
	for _, in := range ins {
		if in.Kind == trace.Store {
			stores++
		}
	}
	if stores == 0 {
		t.Fatal("micro.stores produced no stores")
	}
}
