package faultinject

import (
	"bytes"
	"errors"
	"testing"

	"mlpcache/internal/simerr"
)

func TestZeroPlanIsInert(t *testing.T) {
	if (Plan{}).Active() {
		t.Fatal("zero plan reports active")
	}
	in := NewInjector(Plan{})
	for i := 0; i < 100; i++ {
		if in.Jitter() != 0 {
			t.Fatal("inert injector produced jitter")
		}
	}
	if _, due := in.ThrottleDue(1 << 40); due {
		t.Fatal("inert injector requested a throttle")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Jitter() != 0 {
		t.Fatal("nil injector produced jitter")
	}
	if _, due := in.ThrottleDue(0); due {
		t.Fatal("nil injector requested a throttle")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	const max = 37
	a := NewInjector(Plan{Seed: 9, DRAMJitterMax: max})
	b := NewInjector(Plan{Seed: 9, DRAMJitterMax: max})
	c := NewInjector(Plan{Seed: 10, DRAMJitterMax: max})
	same, diff := true, false
	var seenNonZero bool
	for i := 0; i < 10_000; i++ {
		ja, jb, jc := a.Jitter(), b.Jitter(), c.Jitter()
		if ja > max {
			t.Fatalf("jitter %d exceeds max %d", ja, max)
		}
		if ja != jb {
			same = false
		}
		if ja != jc {
			diff = true
		}
		if ja != 0 {
			seenNonZero = true
		}
	}
	if !same {
		t.Fatal("same seed produced different jitter sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter sequences")
	}
	if !seenNonZero {
		t.Fatal("jitter never fired")
	}
}

func TestThrottleFiresOnce(t *testing.T) {
	in := NewInjector(Plan{MSHRCapacity: 4, MSHRThrottleAfter: 1000})
	if _, due := in.ThrottleDue(999); due {
		t.Fatal("throttle fired early")
	}
	capacity, due := in.ThrottleDue(1000)
	if !due || capacity != 4 {
		t.Fatalf("ThrottleDue(1000) = %d,%v; want 4,true", capacity, due)
	}
	if _, due := in.ThrottleDue(2000); due {
		t.Fatal("throttle fired twice")
	}
}

func TestValidate(t *testing.T) {
	if err := (Plan{MSHRCapacity: -1}).Validate(); !errors.Is(err, simerr.ErrBadConfig) {
		t.Fatalf("negative capacity: err = %v, want ErrBadConfig", err)
	}
	if err := (Plan{Seed: 3, DRAMJitterMax: 10, MSHRCapacity: 2}).Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestFlipBitsDeterministicSparesHeader(t *testing.T) {
	data := bytes.Repeat([]byte{0xAA}, 64)
	a := FlipBits(data, 7, 10, 5)
	b := FlipBits(data, 7, 10, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruptions")
	}
	if bytes.Equal(a, data) {
		t.Fatal("no bits flipped")
	}
	if !bytes.Equal(a[:5], data[:5]) {
		t.Fatal("header bytes were corrupted despite skip")
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Fatal("FlipBits mutated its input")
	}
}

func TestTruncate(t *testing.T) {
	data := []byte{1, 2, 3, 4}
	if got := Truncate(data, 2); !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("Truncate = %v", got)
	}
	if got := Truncate(data, 99); !bytes.Equal(got, data) {
		t.Fatalf("out-of-range keep: %v", got)
	}
	if got := Truncate(data, -1); !bytes.Equal(got, data) {
		t.Fatalf("negative keep: %v", got)
	}
}
