// Package faultinject implements the simulator's deterministic
// fault-injection harness. A Plan describes which faults to inject —
// DRAM latency jitter, mid-run MSHR capacity throttling — and byte-level
// helpers corrupt encoded trace streams for decode-robustness tests.
// The fault surface targets the Table 2 baseline memory system (400-cycle
// DRAM, 32-entry MSHR) whose timing Algorithm 1's cost accounting
// depends on.
//
// Every fault source is seeded: the same Plan produces the same fault
// sequence, so a failure found under injection replays exactly. The
// package deliberately has no dependency on time or math/rand.
//
// The contract the robustness tests enforce: under any Plan the
// simulator either completes with a well-formed Result or returns a
// wrapped typed error — it never panics, deadlocks, or silently
// miscounts.
package faultinject

import "mlpcache/internal/simerr"

// Plan describes the faults to inject into one run. The zero value
// injects nothing.
type Plan struct {
	// Seed drives every random choice the injector makes.
	Seed uint64
	// DRAMJitterMax, when positive, adds a uniform random 0..DRAMJitterMax
	// extra cycles to every DRAM access latency, modelling refresh
	// interference and scheduling noise.
	DRAMJitterMax uint64
	// MSHRCapacity, when positive, throttles the MSHR file to this many
	// allocatable entries once MSHRThrottleAfter instructions have
	// retired, modelling a partially failed miss file.
	MSHRCapacity int
	// MSHRThrottleAfter is the retired-instruction count at which the
	// MSHR throttle engages (immediately when zero).
	MSHRThrottleAfter uint64
}

// Active reports whether the plan injects any fault.
func (p Plan) Active() bool {
	return p.DRAMJitterMax > 0 || p.MSHRCapacity > 0
}

// Validate checks the plan, wrapping failures in simerr.ErrBadConfig.
func (p Plan) Validate() error {
	if p.MSHRCapacity < 0 {
		return simerr.New(simerr.ErrBadConfig, "faultinject: MSHRCapacity must be non-negative, got %d", p.MSHRCapacity)
	}
	return nil
}

// Injector is the run-time state of one plan: a seeded generator plus
// one-shot bookkeeping for the throttle.
type Injector struct {
	plan      Plan
	rng       uint64
	throttled bool
}

// NewInjector builds an injector for the plan. It panics (with a typed
// simerr.ErrBadConfig error) on an invalid plan; validate
// externally-sourced plans with Plan.Validate first.
func NewInjector(p Plan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	// xorshift needs a non-zero state; fold the seed through splitmix-style
	// mixing so adjacent seeds diverge immediately.
	s := p.Seed + 0x9e3779b97f4a7c15
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	return &Injector{plan: p, rng: s | 1}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// next steps the xorshift64 generator.
func (in *Injector) next() uint64 {
	x := in.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	in.rng = x
	return x
}

// Jitter returns the extra DRAM latency for one access: uniform in
// [0, DRAMJitterMax], or 0 when jitter is disabled.
func (in *Injector) Jitter() uint64 {
	if in == nil || in.plan.DRAMJitterMax == 0 {
		return 0
	}
	return in.next() % (in.plan.DRAMJitterMax + 1)
}

// ThrottleDue reports, given the retired-instruction count, whether the
// MSHR throttle should engage now, and to what capacity. It fires at
// most once per injector.
func (in *Injector) ThrottleDue(retired uint64) (capacity int, due bool) {
	if in == nil || in.throttled || in.plan.MSHRCapacity <= 0 {
		return 0, false
	}
	if retired < in.plan.MSHRThrottleAfter {
		return 0, false
	}
	in.throttled = true
	return in.plan.MSHRCapacity, true
}

// Chance draws one seeded decision: true with probability
// permille/1000. The sweep service's chaos layer uses it to inject
// transient job failures and worker panics at a configured rate while
// keeping the fault sequence replayable. Not safe for concurrent use —
// callers sharing an injector across goroutines serialize access.
func (in *Injector) Chance(permille int) bool {
	if in == nil || permille <= 0 {
		return false
	}
	if permille >= 1000 {
		return true
	}
	return in.next()%1000 < uint64(permille)
}

// FlipBits returns a copy of data with n random bit flips (positions
// drawn from the seed), sparing the first skip bytes — pass the magic
// length to corrupt a trace body while keeping its header readable.
// It is a test helper for decode-robustness checks.
func FlipBits(data []byte, seed uint64, n, skip int) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if len(out) <= skip {
		return out
	}
	in := NewInjector(Plan{Seed: seed})
	for i := 0; i < n; i++ {
		pos := skip + int(in.next()%uint64(len(out)-skip))
		out[pos] ^= 1 << (in.next() % 8)
	}
	return out
}

// Truncate returns the first keep bytes of data (all of it when keep is
// out of range), modelling a trace file cut short mid-record.
func Truncate(data []byte, keep int) []byte {
	if keep < 0 || keep > len(data) {
		keep = len(data)
	}
	out := make([]byte, keep)
	copy(out, data[:keep])
	return out
}
