// Package cpu models the out-of-order core of the baseline machine
// (Table 2): an eight-wide fetch/issue/retire engine with a 128-entry
// instruction window, oldest-ready scheduling, a store buffer that lets
// store misses retire without blocking the window, and a stall-on-
// mispredict front end with the paper's 15-cycle minimum penalty.
//
// The model is deliberately scoped to what MLP-aware replacement can
// observe: how many long-latency misses overlap inside the bounded
// window, and when the window stalls waiting for memory. Loads issue when
// their register dependence (a backward distance carried by the trace)
// resolves; dependent loads therefore serialize their misses (isolated
// misses) while independent loads overlap them (parallel misses).
package cpu

import (
	"mlpcache/internal/bpred"
	"mlpcache/internal/simerr"
	"mlpcache/internal/trace"
)

// Config describes the core.
type Config struct {
	ROBEntries         int
	FetchWidth         int
	IssueWidth         int
	RetireWidth        int
	MemPorts           int // memory instructions issued per cycle
	StoreBufferEntries int
	MispredictPenalty  uint64
	IntLat             uint64
	MulLat             uint64
	FPLat              uint64
	DivLat             uint64
	// BranchPredictor, when set, replaces the trace's oracle
	// Mispredict flags with a live gshare/per-address hybrid operating
	// on the branches' static ids and actual outcomes.
	BranchPredictor *bpred.Config
}

// DefaultConfig returns the paper's baseline core.
func DefaultConfig() Config {
	return Config{
		ROBEntries:         128,
		FetchWidth:         8,
		IssueWidth:         8,
		RetireWidth:        8,
		MemPorts:           2,
		StoreBufferEntries: 128,
		MispredictPenalty:  15,
		IntLat:             1,
		MulLat:             8,
		FPLat:              4,
		DivLat:             16,
	}
}

// Validate checks the configuration, wrapping failures in
// simerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.ROBEntries <= 0 || c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0 {
		return simerr.New(simerr.ErrBadConfig,
			"cpu: widths and window size must be positive (rob=%d fetch=%d issue=%d retire=%d)",
			c.ROBEntries, c.FetchWidth, c.IssueWidth, c.RetireWidth)
	}
	if c.MemPorts <= 0 {
		return simerr.New(simerr.ErrBadConfig, "cpu: MemPorts must be positive, got %d", c.MemPorts)
	}
	if c.StoreBufferEntries < 0 {
		return simerr.New(simerr.ErrBadConfig, "cpu: StoreBufferEntries must be non-negative, got %d", c.StoreBufferEntries)
	}
	if c.BranchPredictor != nil {
		if err := c.BranchPredictor.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MemSystem is the data-memory interface the core issues to.
type MemSystem interface {
	// Access starts a load (write=false) or store (write=true) at cycle
	// now. It returns the access's completion cycle. accepted=false
	// signals a structural hazard (MSHR full); the core retries the
	// instruction on a later cycle.
	Access(addr uint64, write bool, now uint64) (done uint64, accepted bool)
}

// Stats aggregates the core's counters.
type Stats struct {
	Retired     uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	Mispredicts uint64
	// MemStallCycles counts cycles in which nothing retired because the
	// window head was an incomplete memory instruction.
	MemStallCycles uint64
	// MemStallEpisodes counts maximal runs of such cycles — the paper's
	// "long-latency stalls" when the run is caused by an L2 miss.
	MemStallEpisodes uint64
	// FullWindowCycles counts cycles fetch was blocked by a full window.
	FullWindowCycles uint64
	// FetchMispredictCycles counts cycles fetch was blocked waiting for
	// a mispredicted branch to resolve (plus the redirect penalty).
	FetchMispredictCycles uint64
	// StoreBufferFullEvents counts issue attempts rejected by a full
	// store buffer; MSHRRejects counts memory accesses the hierarchy
	// refused (MSHR full).
	StoreBufferFullEvents uint64
	MSHRRejects           uint64
}

const (
	stWaiting uint8 = iota
	stDone          // issued; completes when doneAt is reached
)

type robEntry struct {
	in     trace.Instr
	doneAt uint64
	state  uint8
	// mispredicted records the branch's fate as decided at fetch
	// (oracle flag or live predictor), for retirement statistics.
	mispredicted bool
}

const noBranch = ^uint64(0)

// CPU is the core model. Drive it by calling Cycle with a monotonically
// increasing cycle number until Finished reports true or an instruction
// budget is met.
type CPU struct {
	cfg Config
	mem MemSystem
	src trace.Source

	rob      []robEntry
	head     int
	count    int
	waiting  int    // entries in stWaiting, bounds the issue scan
	headG    uint64 // global index of rob[head]
	nextG    uint64 // global index of the next fetched instruction
	srcDone  bool
	blockedG uint64 // global index of the unresolved mispredicted branch
	resumeAt uint64 // cycle fetch may resume after redirect; 0 = unresolved

	storeDone []uint64 // completion cycles of in-flight stores

	predictor *bpred.Predictor

	// events is a min-heap of pending completion cycles, letting the
	// run loop skip stall cycles in which nothing can change.
	events  eventHeap
	didWork bool

	// firstWaitingG is a lower bound on the global index of the oldest
	// stWaiting entry. During memory stalls the window head accumulates a
	// long prefix of completed-but-unretirable entries; starting the issue
	// scan at this cursor instead of the head skips that prefix. The bound
	// is maintained monotonically: it only advances when a scan proves no
	// waiting entry exists below the new value, and newly fetched entries
	// always carry larger global indices.
	firstWaitingG uint64

	inMemStall bool
	stats      Stats
}

// eventHeap is a plain binary min-heap of cycle numbers (inlined rather
// than container/heap to keep the hot path allocation-free).
type eventHeap []uint64

func (h *eventHeap) push(v uint64) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *eventHeap) pop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && old[l] < old[small] {
			small = l
		}
		if r < n && old[r] < old[small] {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
}

// New builds a core that executes src against mem.
func New(cfg Config, mem MemSystem, src trace.Source) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if mem == nil || src == nil {
		panic(simerr.New(simerr.ErrBadConfig, "cpu: need a memory system and a source"))
	}
	c := &CPU{
		cfg:      cfg,
		mem:      mem,
		src:      src,
		rob:      make([]robEntry, cfg.ROBEntries),
		blockedG: noBranch,
	}
	if cfg.BranchPredictor != nil {
		c.predictor = bpred.New(*cfg.BranchPredictor)
	}
	return c
}

// Reset returns the core to just-built state executing src against mem,
// recycling the ROB ring, store buffer and event-heap backings — the
// arena's reuse contract. Stale ROB entries are safe to keep: fetch
// fully overwrites a slot before any stage reads it. A configured
// branch predictor is rebuilt fresh (its tables are run state).
func (c *CPU) Reset(cfg Config, mem MemSystem, src trace.Source) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if mem == nil || src == nil {
		panic(simerr.New(simerr.ErrBadConfig, "cpu: need a memory system and a source"))
	}
	rob := c.rob
	if len(rob) != cfg.ROBEntries {
		rob = make([]robEntry, cfg.ROBEntries)
	}
	var pred *bpred.Predictor
	if cfg.BranchPredictor != nil {
		pred = bpred.New(*cfg.BranchPredictor)
	}
	*c = CPU{
		cfg:       cfg,
		mem:       mem,
		src:       src,
		rob:       rob,
		blockedG:  noBranch,
		storeDone: c.storeDone[:0],
		events:    c.events[:0],
		predictor: pred,
	}
}

// PredictorStats returns the live predictor's counters (zero value when
// running in oracle mode).
func (c *CPU) PredictorStats() bpred.Stats {
	if c.predictor == nil {
		return bpred.Stats{}
	}
	return c.predictor.Stats()
}

// Stats returns the core's counters.
func (c *CPU) Stats() Stats { return c.stats }

// Finished reports whether the source is drained and the window empty.
func (c *CPU) Finished() bool { return c.srcDone && c.count == 0 }

// slot maps a global instruction index in the window to its ROB slot.
// g is within the window, so the offset is below len(rob) and a single
// conditional wrap replaces the (much slower) modulo.
func (c *CPU) slot(g uint64) int {
	s := c.head + int(g-c.headG)
	if s >= len(c.rob) {
		s -= len(c.rob)
	}
	return s
}

// depReady reports whether the entry's register dependence has resolved
// by cycle now.
func (c *CPU) depReady(e *robEntry, g uint64, now uint64) bool {
	if e.in.Dep <= 0 {
		return true
	}
	if uint64(e.in.Dep) > g {
		return true // dependence reaches before the first instruction
	}
	prodG := g - uint64(e.in.Dep)
	if prodG < c.headG {
		return true // producer already retired
	}
	p := &c.rob[c.slot(prodG)]
	return p.state == stDone && p.doneAt <= now
}

// Cycle advances the core by one cycle: retire, drain the store buffer,
// issue, fetch. It returns the number of instructions retired this cycle.
func (c *CPU) Cycle(now uint64) int {
	c.didWork = false
	retired := c.retire(now)
	if retired > 0 {
		c.didWork = true
	}
	c.drainStores(now)
	c.issue(now)
	c.fetch(now)
	return retired
}

// NoteSkipped attributes n cycles the run loop skipped (because DidWork
// was false) to the stall statistics the skipped cycles would have
// accrued one by one.
func (c *CPU) NoteSkipped(n uint64) {
	if c.inMemStall {
		c.stats.MemStallCycles += n
	}
	// Attribution order mirrors fetch exactly (blocked front end before
	// full window), so a skipped stall cycle accrues the same counter a
	// burned one would.
	if c.blockedG != noBranch {
		c.stats.FetchMispredictCycles += n
	} else if c.count == len(c.rob) {
		c.stats.FullWindowCycles += n
	}
}

// DidWork reports whether the last Cycle retired, issued or fetched
// anything. When it returns false, no core state can change before
// NextEvent, so the run loop may skip ahead.
func (c *CPU) DidWork() bool { return c.didWork }

// NextEvent returns the earliest future cycle (strictly after now) at
// which core-visible state can change: a pending completion, a store
// buffer drain, or a fetch redirect. It returns ^uint64(0) if no such
// event is scheduled.
func (c *CPU) NextEvent(now uint64) uint64 {
	next := ^uint64(0)
	for len(c.events) > 0 {
		if t := c.events[0]; t > now {
			next = t
			break
		}
		c.events.pop()
	}
	if c.blockedG != noBranch && c.resumeAt > now && c.resumeAt < next {
		next = c.resumeAt
	}
	for _, d := range c.storeDone {
		if d > now && d < next {
			next = d
		}
	}
	return next
}

func (c *CPU) retire(now uint64) int {
	retired := 0
	for retired < c.cfg.RetireWidth && c.count > 0 {
		e := &c.rob[c.head]
		if e.state != stDone || e.doneAt > now {
			break
		}
		switch e.in.Kind {
		case trace.Load:
			c.stats.Loads++
		case trace.Store:
			c.stats.Stores++
		case trace.Branch:
			c.stats.Branches++
			if e.mispredicted {
				c.stats.Mispredicts++
			}
		}
		c.head++
		if c.head == len(c.rob) {
			c.head = 0
		}
		c.headG++
		c.count--
		c.stats.Retired++
		retired++
	}
	if retired == 0 && c.count > 0 {
		e := &c.rob[c.head]
		if e.in.Kind.IsMem() && (e.state != stDone || e.doneAt > now) {
			c.stats.MemStallCycles++
			if !c.inMemStall {
				c.inMemStall = true
				c.stats.MemStallEpisodes++
			}
		} else {
			c.inMemStall = false
		}
	} else {
		c.inMemStall = false
	}
	return retired
}

func (c *CPU) drainStores(now uint64) {
	out := c.storeDone[:0]
	for _, d := range c.storeDone {
		if d > now {
			out = append(out, d)
		}
	}
	c.storeDone = out
}

func (c *CPU) issue(now uint64) {
	if c.waiting == 0 {
		return
	}
	issued, memIssued, seenWaiting := 0, 0, 0
	toSee := c.waiting // snapshot: completions during the scan shrink c.waiting
	// Start at the oldest possibly-waiting entry instead of the head: the
	// cursor is a proven lower bound, so every skipped slot is known not
	// to be stWaiting and the scan's outcome is unchanged.
	start := 0
	if c.firstWaitingG > c.headG {
		start = int(c.firstWaitingG - c.headG)
	}
	slot := c.head + start
	if slot >= len(c.rob) {
		slot -= len(c.rob)
	}
	cursorSet := false
	for i := start; i < c.count; i++ {
		if issued >= c.cfg.IssueWidth || seenWaiting >= toSee {
			break
		}
		e := &c.rob[slot]
		slot++
		if slot == len(c.rob) {
			slot = 0
		}
		if e.state != stWaiting {
			continue
		}
		if !cursorSet {
			// First waiting entry this pass: everything older is done.
			c.firstWaitingG = c.headG + uint64(i)
			cursorSet = true
		}
		seenWaiting++
		g := c.headG + uint64(i)
		if !c.depReady(e, g, now) {
			continue
		}
		switch e.in.Kind {
		case trace.Int:
			c.complete(e, now+c.cfg.IntLat)
		case trace.Mul:
			c.complete(e, now+c.cfg.MulLat)
		case trace.FP:
			c.complete(e, now+c.cfg.FPLat)
		case trace.Div:
			c.complete(e, now+c.cfg.DivLat)
		case trace.Branch:
			c.complete(e, now+1)
			if c.blockedG == g {
				// Branch resolved: fetch redirects after the
				// minimum misprediction penalty.
				c.resumeAt = e.doneAt + c.cfg.MispredictPenalty
			}
		case trace.Load:
			if memIssued >= c.cfg.MemPorts {
				continue
			}
			memIssued++
			done, ok := c.mem.Access(e.in.Addr, false, now)
			if !ok {
				// A rejected access still mutates state (reject counters,
				// L2 probe stats), so the cycle counts as work: fast-forward
				// must not skip retry cycles a burned loop would execute.
				c.stats.MSHRRejects++
				c.didWork = true
				continue // retry on a later cycle
			}
			c.complete(e, done)
		case trace.Store:
			if memIssued >= c.cfg.MemPorts {
				continue
			}
			if len(c.storeDone) >= c.cfg.StoreBufferEntries {
				// The full-buffer event accrues per executed cycle, so the
				// cycle counts as work for the same reason a reject does.
				c.stats.StoreBufferFullEvents++
				c.didWork = true
				continue // window blocks only when the buffer is full
			}
			memIssued++
			done, ok := c.mem.Access(e.in.Addr, true, now)
			if !ok {
				c.stats.MSHRRejects++
				c.didWork = true
				continue
			}
			// The store retires from the window immediately; the
			// store buffer tracks the in-flight write.
			c.storeDone = append(c.storeDone, done)
			c.complete(e, now+1)
		}
		if e.state == stDone {
			issued++
		}
	}
}

func (c *CPU) complete(e *robEntry, doneAt uint64) {
	e.state = stDone
	e.doneAt = doneAt
	c.waiting--
	c.didWork = true
	c.events.push(doneAt)
}

// branchMispredicted decides a fetched branch's fate: a live predictor
// consults and trains on the branch's id and outcome; oracle mode obeys
// the trace's flag.
func (c *CPU) branchMispredicted(in trace.Instr) bool {
	if c.predictor != nil {
		return !c.predictor.PredictAndUpdate(in.Addr, in.Taken)
	}
	return in.Mispredict
}

func (c *CPU) fetch(now uint64) {
	if c.blockedG != noBranch {
		if c.resumeAt == 0 || now < c.resumeAt {
			c.stats.FetchMispredictCycles++
			return
		}
		c.blockedG = noBranch
		c.resumeAt = 0
	}
	if c.count == len(c.rob) {
		c.stats.FullWindowCycles++
		return
	}
	slot := c.head + c.count
	if slot >= len(c.rob) {
		slot -= len(c.rob)
	}
	for f := 0; f < c.cfg.FetchWidth && c.count < len(c.rob) && !c.srcDone; f++ {
		in, ok := c.src.Next()
		if !ok {
			c.srcDone = true
			return
		}
		c.rob[slot] = robEntry{in: in, state: stWaiting}
		mispredicted := in.Kind == trace.Branch && c.branchMispredicted(in)
		if mispredicted {
			c.rob[slot].mispredicted = true
		}
		slot++
		if slot == len(c.rob) {
			slot = 0
		}
		g := c.nextG
		c.nextG++
		c.count++
		c.waiting++
		c.didWork = true
		if mispredicted {
			// Stall-on-mispredict front end: no wrong path is
			// fetched; fetch waits for the branch to resolve.
			c.blockedG = g
			return
		}
	}
}
