package cpu

import (
	"testing"

	"mlpcache/internal/trace"
)

// fakeMem services loads with a fixed latency and optional rejection
// schedule.
type fakeMem struct {
	latency   uint64
	rejects   int // reject the first N accesses
	accesses  int
	writeSeen int
}

func (m *fakeMem) Access(addr uint64, write bool, now uint64) (uint64, bool) {
	if m.rejects > 0 {
		m.rejects--
		return 0, false
	}
	m.accesses++
	if write {
		m.writeSeen++
	}
	return now + m.latency, true
}

// run drives the core to completion and returns total cycles.
func run(t *testing.T, c *CPU, limit uint64) uint64 {
	t.Helper()
	var now uint64
	for now = 1; now < limit; now++ {
		c.Cycle(now)
		if c.Finished() {
			return now
		}
		if !c.DidWork() {
			if wake := c.NextEvent(now); wake != ^uint64(0) && wake > now+1 {
				c.NoteSkipped(wake - now - 1)
				now = wake - 1
			}
		}
	}
	t.Fatalf("core did not finish within %d cycles", limit)
	return 0
}

func repeat(in trace.Instr, n int) []trace.Instr {
	out := make([]trace.Instr, n)
	for i := range out {
		out[i] = in
	}
	return out
}

func TestIndependentALUIPCIsRetireWidth(t *testing.T) {
	const n = 8000
	c := New(DefaultConfig(), &fakeMem{latency: 2}, trace.NewSliceSource(repeat(trace.Instr{Kind: trace.Int}, n)))
	cycles := run(t, c, 100_000)
	ipc := float64(n) / float64(cycles)
	if ipc < 7 || ipc > 8 {
		t.Fatalf("independent ALU IPC = %.2f, want ≈ 8", ipc)
	}
	if c.Stats().Retired != n {
		t.Fatalf("retired %d, want %d", c.Stats().Retired, n)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	const n = 2000
	ins := repeat(trace.Instr{Kind: trace.Int, Dep: 1}, n)
	c := New(DefaultConfig(), &fakeMem{latency: 2}, trace.NewSliceSource(ins))
	cycles := run(t, c, 100_000)
	// A 1-cycle chain retires ~1 instruction per cycle.
	if ipc := float64(n) / float64(cycles); ipc > 1.2 {
		t.Fatalf("dependent-chain IPC = %.2f, want ≈ 1", ipc)
	}
}

func TestFunctionalUnitLatencies(t *testing.T) {
	// A chain of dependent divides (16 cycles each) is 16x slower than a
	// chain of dependent INTs.
	mk := func(k trace.Kind) uint64 {
		ins := repeat(trace.Instr{Kind: k, Dep: 1}, 500)
		c := New(DefaultConfig(), &fakeMem{latency: 2}, trace.NewSliceSource(ins))
		return run(t, c, 1_000_000)
	}
	intCycles, divCycles := mk(trace.Int), mk(trace.Div)
	ratio := float64(divCycles) / float64(intCycles)
	if ratio < 12 || ratio > 20 {
		t.Fatalf("div/int cycle ratio = %.1f, want ≈ 16", ratio)
	}
}

func TestLoadChainPaysMemoryLatency(t *testing.T) {
	const n = 100
	ins := repeat(trace.Instr{Kind: trace.Load, Addr: 64, Dep: 1}, n)
	mem := &fakeMem{latency: 100}
	c := New(DefaultConfig(), mem, trace.NewSliceSource(ins))
	cycles := run(t, c, 1_000_000)
	if cycles < 100*uint64(n-1) {
		t.Fatalf("dependent loads finished in %d cycles, want >= %d", cycles, 100*(n-1))
	}
	if mem.accesses != n {
		t.Fatalf("memory saw %d accesses, want %d", mem.accesses, n)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	const n = 100
	ins := repeat(trace.Instr{Kind: trace.Load, Addr: 64}, n)
	c := New(DefaultConfig(), &fakeMem{latency: 100}, trace.NewSliceSource(ins))
	cycles := run(t, c, 1_000_000)
	// With 2 memory ports and 100-cycle latency, 100 loads overlap
	// heavily: far faster than serial (100·100).
	if cycles > 2000 {
		t.Fatalf("independent loads took %d cycles — no overlap?", cycles)
	}
}

func TestWindowLimitsParallelism(t *testing.T) {
	// Loads spaced by window-filling filler: only window/(gap+1) loads
	// can be outstanding. With gap 127 (window 128), loads serialize.
	var ins []trace.Instr
	for i := 0; i < 50; i++ {
		ins = append(ins, trace.Instr{Kind: trace.Load, Addr: 64})
		ins = append(ins, repeat(trace.Instr{Kind: trace.Int, Dep: 1}, 127)...)
	}
	c := New(DefaultConfig(), &fakeMem{latency: 300}, trace.NewSliceSource(ins))
	cycles := run(t, c, 1_000_000)
	if cycles < 50*150 {
		t.Fatalf("window should have limited overlap; took only %d cycles", cycles)
	}
}

func TestStoresRetireWithoutWaiting(t *testing.T) {
	const n = 200
	ins := repeat(trace.Instr{Kind: trace.Store, Addr: 64}, n)
	mem := &fakeMem{latency: 400}
	c := New(DefaultConfig(), mem, trace.NewSliceSource(ins))
	cycles := run(t, c, 1_000_000)
	// 200 stores at 2 ports/cycle with a 128-entry store buffer: the
	// buffer fills (128), then drains at the 400-cycle latency.
	if cycles > 5000 {
		t.Fatalf("stores blocked the window: %d cycles", cycles)
	}
	if mem.writeSeen != n {
		t.Fatalf("memory saw %d writes, want %d", mem.writeSeen, n)
	}
	if c.Stats().Stores != n {
		t.Fatalf("retired %d stores, want %d", c.Stats().Stores, n)
	}
}

func TestStoreBufferFullBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StoreBufferEntries = 2
	ins := repeat(trace.Instr{Kind: trace.Store, Addr: 64}, 50)
	c := New(cfg, &fakeMem{latency: 100}, trace.NewSliceSource(ins))
	cycles := run(t, c, 1_000_000)
	if c.Stats().StoreBufferFullEvents == 0 {
		t.Fatal("expected store-buffer-full events")
	}
	// 50 stores through a 2-entry buffer at 100-cycle drain ≈ 2 per 100.
	if cycles < 2000 {
		t.Fatalf("tiny store buffer should throttle: %d cycles", cycles)
	}
}

func TestMispredictStallsFetch(t *testing.T) {
	mk := func(mispredict bool) uint64 {
		var ins []trace.Instr
		for i := 0; i < 200; i++ {
			ins = append(ins, trace.Instr{Kind: trace.Branch, Mispredict: mispredict})
			ins = append(ins, repeat(trace.Instr{Kind: trace.Int}, 7)...)
		}
		c := New(DefaultConfig(), &fakeMem{latency: 2}, trace.NewSliceSource(ins))
		cycles := run(t, c, 1_000_000)
		if mispredict && c.Stats().Mispredicts != 200 {
			t.Fatalf("mispredicts = %d, want 200", c.Stats().Mispredicts)
		}
		return cycles
	}
	good, bad := mk(false), mk(true)
	// Each mispredict costs >= the 15-cycle minimum penalty.
	if bad < good+200*15 {
		t.Fatalf("mispredicted run %d vs clean %d: penalty missing", bad, good)
	}
}

func TestMSHRRejectionRetries(t *testing.T) {
	ins := repeat(trace.Instr{Kind: trace.Load, Addr: 64}, 5)
	mem := &fakeMem{latency: 10, rejects: 7}
	c := New(DefaultConfig(), mem, trace.NewSliceSource(ins))
	run(t, c, 100_000)
	if c.Stats().MSHRRejects != 7 {
		t.Fatalf("rejects = %d, want 7", c.Stats().MSHRRejects)
	}
	if mem.accesses != 5 {
		t.Fatalf("accesses = %d, want 5 (all retried)", mem.accesses)
	}
}

func TestMemStallAccounting(t *testing.T) {
	// One isolated long load between filler: the window drains, then
	// stalls on the load.
	var ins []trace.Instr
	ins = append(ins, trace.Instr{Kind: trace.Load, Addr: 64})
	ins = append(ins, repeat(trace.Instr{Kind: trace.Int, Dep: 1}, 4)...)
	c := New(DefaultConfig(), &fakeMem{latency: 500}, trace.NewSliceSource(ins))
	run(t, c, 100_000)
	st := c.Stats()
	if st.MemStallCycles < 400 {
		t.Fatalf("mem stall cycles = %d, want most of the 500-cycle load", st.MemStallCycles)
	}
	if st.MemStallEpisodes != 1 {
		t.Fatalf("episodes = %d, want 1", st.MemStallEpisodes)
	}
}

func TestFinishedAndEmptyRun(t *testing.T) {
	c := New(DefaultConfig(), &fakeMem{latency: 2}, trace.NewSliceSource(nil))
	c.Cycle(1)
	if !c.Finished() {
		t.Fatal("empty source should finish immediately")
	}
}

func TestDepBeyondWindowTreatedAsRetired(t *testing.T) {
	// Dep distance far larger than anything in flight: ready at once.
	ins := []trace.Instr{
		{Kind: trace.Int},
		{Kind: trace.Int, Dep: 2000},
	}
	c := New(DefaultConfig(), &fakeMem{latency: 2}, trace.NewSliceSource(ins))
	cycles := run(t, c, 1000)
	if cycles > 10 {
		t.Fatalf("distant dep stalled the core: %d cycles", cycles)
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { New(Config{}, &fakeMem{}, trace.NewSliceSource(nil)) },
		func() { New(DefaultConfig(), nil, trace.NewSliceSource(nil)) },
		func() { New(DefaultConfig(), &fakeMem{}, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}
