package bpred

import (
	"testing"

	"mlpcache/internal/trace"
)

func TestAlwaysTakenBranchLearns(t *testing.T) {
	p := New(DefaultConfig())
	wrong := 0
	for i := 0; i < 1000; i++ {
		if !p.PredictAndUpdate(7, true) {
			wrong++
		}
	}
	if wrong > 2 {
		t.Fatalf("always-taken branch mispredicted %d times", wrong)
	}
}

func TestAlternatingBranchIsHardForBimodal(t *testing.T) {
	// Strict alternation defeats 2-bit counters but gshare's history
	// captures it: after warmup the hybrid should be near-perfect.
	p := New(DefaultConfig())
	wrong := 0
	for i := 0; i < 4000; i++ {
		if !p.PredictAndUpdate(3, i%2 == 0) {
			if i > 1000 {
				wrong++
			}
		}
	}
	if rate := float64(wrong) / 3000; rate > 0.05 {
		t.Fatalf("post-warmup alternation mispredict rate %.2f", rate)
	}
}

func TestLoopBranchPattern(t *testing.T) {
	// A loop branch taken 15 times then not taken once: history-based
	// prediction learns the exit after warmup.
	p := New(DefaultConfig())
	wrong := 0
	total := 0
	for iter := 0; iter < 400; iter++ {
		for i := 0; i < 16; i++ {
			taken := i != 15
			ok := p.PredictAndUpdate(11, taken)
			if iter > 100 {
				total++
				if !ok {
					wrong++
				}
			}
		}
	}
	if rate := float64(wrong) / float64(total); rate > 0.10 {
		t.Fatalf("loop pattern mispredict rate %.2f after warmup", rate)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := New(DefaultConfig())
	rng := trace.NewRNG(5)
	for i := 0; i < 20000; i++ {
		p.PredictAndUpdate(9, rng.Bool(0.5))
	}
	rate := p.Stats().MispredictRate()
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("random branch mispredict rate %.2f, want ≈ 0.5", rate)
	}
}

func TestDistinctBranchesDoNotDestructivelyAlias(t *testing.T) {
	// Two branches with opposite fixed behaviour must both be learned.
	p := New(DefaultConfig())
	wrong := 0
	for i := 0; i < 2000; i++ {
		if !p.PredictAndUpdate(100, true) {
			wrong++
		}
		if !p.PredictAndUpdate(200, false) {
			wrong++
		}
	}
	if wrong > 40 {
		t.Fatalf("two fixed branches mispredicted %d times", wrong)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		p.PredictAndUpdate(1, true)
	}
	st := p.Stats()
	if st.Lookups != 100 {
		t.Fatalf("lookups = %d", st.Lookups)
	}
	if st.Mispredicts > st.Lookups {
		t.Fatal("mispredicts exceed lookups")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}
