// Package bpred models the baseline machine's branch direction predictor
// (Table 2: a gshare/per-address hybrid with a selector). The simulator's
// default front end uses oracle misprediction flags carried by the trace;
// enabling a predictor replaces them with real predictions over the
// branch outcomes the generators synthesize, exercising the 15-cycle
// minimum redirect penalty from live state.
//
// Only direction prediction matters here: the front end stalls on a
// predicted-wrong branch rather than fetching a wrong path (see
// DESIGN.md on wrong-path exclusion), so no BTB is modelled.
package bpred

import "mlpcache/internal/simerr"

// Config sizes the hybrid predictor.
type Config struct {
	// GshareBits sizes the global-history table (2^bits 2-bit counters)
	// and the history register.
	GshareBits int
	// LocalBits sizes the per-address table (2^bits 2-bit counters,
	// indexed by branch id).
	LocalBits int
	// SelectorBits sizes the chooser table.
	SelectorBits int
}

// DefaultConfig returns a scaled-down version of the paper's 64K-entry
// structures (the synthetic workloads have few static branches, so small
// tables behave identically while staying cache-friendly).
func DefaultConfig() Config {
	return Config{GshareBits: 14, LocalBits: 14, SelectorBits: 14}
}

// Stats counts predictor activity.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
	// GshareUsed counts lookups the selector routed to gshare.
	GshareUsed uint64
}

// MispredictRate returns mispredicts over lookups.
func (s Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// Predictor is the hybrid direction predictor.
type Predictor struct {
	cfg      Config
	history  uint64
	gshare   []uint8 // 2-bit counters
	local    []uint8
	selector []uint8 // 2-bit: >=2 selects gshare
	stats    Stats
}

// Validate checks the configuration, wrapping failures in
// simerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.GshareBits <= 0 || c.LocalBits <= 0 || c.SelectorBits <= 0 {
		return simerr.New(simerr.ErrBadConfig,
			"bpred: table sizes must be positive (gshare=%d local=%d selector=%d)",
			c.GshareBits, c.LocalBits, c.SelectorBits)
	}
	if c.GshareBits > 30 || c.LocalBits > 30 || c.SelectorBits > 30 {
		return simerr.New(simerr.ErrBadConfig, "bpred: table sizes above 30 bits are not supported")
	}
	return nil
}

// New builds a predictor. It panics (with a typed simerr.ErrBadConfig
// error) on an invalid configuration; validate externally-sourced
// configs with Config.Validate first.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:      cfg,
		gshare:   make([]uint8, 1<<cfg.GshareBits),
		local:    make([]uint8, 1<<cfg.LocalBits),
		selector: make([]uint8, 1<<cfg.SelectorBits),
	}
	// Weakly-taken initial state, like most hardware.
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.local {
		p.local[i] = 2
	}
	for i := range p.selector {
		p.selector[i] = 2
	}
	return p
}

// Stats returns the activity counters.
func (p *Predictor) Stats() Stats { return p.stats }

func (p *Predictor) gIndex(id uint64) int {
	mask := uint64(1)<<p.cfg.GshareBits - 1
	return int((id ^ p.history) & mask)
}

func (p *Predictor) lIndex(id uint64) int {
	return int(id & (uint64(1)<<p.cfg.LocalBits - 1))
}

func (p *Predictor) sIndex(id uint64) int {
	return int(id & (uint64(1)<<p.cfg.SelectorBits - 1))
}

// PredictAndUpdate performs a combined lookup and resolution for a branch
// with the given static id and actual outcome, returning whether the
// prediction was correct. (The front end stalls on predicted-wrong
// branches, so prediction and resolution can be folded into one step —
// there is never a second in-flight lookup of the same history.)
func (p *Predictor) PredictAndUpdate(id uint64, taken bool) (correct bool) {
	p.stats.Lookups++
	gi, li, si := p.gIndex(id), p.lIndex(id), p.sIndex(id)
	gPred := p.gshare[gi] >= 2
	lPred := p.local[li] >= 2
	useG := p.selector[si] >= 2
	pred := lPred
	if useG {
		pred = gPred
		p.stats.GshareUsed++
	}
	correct = pred == taken
	if !correct {
		p.stats.Mispredicts++
	}

	// Update the chooser toward whichever component was right, when
	// they disagreed.
	if gPred != lPred {
		if gPred == taken {
			if p.selector[si] < 3 {
				p.selector[si]++
			}
		} else if p.selector[si] > 0 {
			p.selector[si]--
		}
	}
	// Update both components and the global history.
	update2bit(&p.gshare[gi], taken)
	update2bit(&p.local[li], taken)
	p.history = p.history<<1 | b2u(taken)
	return correct
}

func update2bit(c *uint8, taken bool) {
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
