package core

import "mlpcache/internal/cache"

// Hybrid is a replacement scheme that dynamically chooses between an
// MLP-aware and a traditional policy. It doubles as the main tag
// directory's cache.Policy and additionally observes the access stream to
// drive its selection machinery (ATDs and PSEL counters).
//
// Protocol, driven by the simulator for every L2 access:
//
//  1. The L2 is probed; the outcome is reported through OnAccess together
//     with whether a missing access allocated a new MSHR entry
//     (primaryMiss). Merged secondary misses are observed for ATD recency
//     but never update PSEL, mirroring the paper's treatment of
//     concurrent misses to one block as a single miss.
//  2. When a primary miss is serviced, OnFill delivers the quantized
//     MLP-based cost the MSHR computed, completing any deferred PSEL
//     update and ATD fill for that block.
type Hybrid interface {
	cache.Policy
	// OnAccess observes one L2 access. mtdHit is the main directory's
	// probe outcome; primaryMiss is true when a missing access allocated
	// a new MSHR entry.
	OnAccess(addr uint64, write, mtdHit, primaryMiss bool)
	// OnFill observes the service of a primary miss with the quantized
	// cost the MSHR computed for it.
	OnFill(addr uint64, costQ uint8)
	// AdvanceEpoch gives runtime selection policies (rand-dynamic
	// leaders) a chance to re-draw; called every epoch boundary.
	AdvanceEpoch()
	// UsingLIN reports the policy currently selected for the given set.
	UsingLIN(set int) bool
}

// HybridStats counts a hybrid's selection activity.
type HybridStats struct {
	// PselIncrements and PselDecrements count PSEL updates toward LIN
	// and toward LRU respectively.
	PselIncrements uint64
	PselDecrements uint64
	// LinVictims and LruVictims count victim decisions made with each
	// policy (leader-set decisions included for SBAR).
	LinVictims uint64
	LruVictims uint64
	// EpochReselects counts leader re-draws that changed the leader map.
	EpochReselects uint64
	// LeaderAccesses counts accesses observed in leader sets (SBAR) or
	// total observed accesses (CBS); TieBothHit/TieBothMiss count the
	// contests where neither policy won.
	LeaderAccesses uint64
	TieBothHit     uint64
	TieBothMiss    uint64
}

// Compile-time conformance checks.
var (
	_ Hybrid = (*SBAR)(nil)
	_ Hybrid = (*CBS)(nil)
)
