package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlpcache/internal/cache"
)

// buildSet fills a single-set cache so that way w holds block w with the
// given cost, and the recency order matches fill order with later touches.
func buildSet(t *testing.T, costs []uint8, p cache.Policy) *cache.Cache {
	t.Helper()
	c := cache.New(cache.Config{Sets: 1, Assoc: len(costs), BlockBytes: 64}, p)
	for b, q := range costs {
		c.Fill(uint64(b)*64, q, false)
	}
	return c
}

func TestLINVictimFormula(t *testing.T) {
	// Four ways, fill order 0..3 (so recency rank == way index), costs
	// chosen so the LIN score R + 4·cost_q picks way 1:
	//   way 0: R=0 cost=7 → 28
	//   way 1: R=1 cost=0 → 1   ← victim
	//   way 2: R=2 cost=1 → 6
	//   way 3: R=3 cost=3 → 15
	c := buildSet(t, []uint8{7, 0, 1, 3}, NewLIN(4))
	ev, evicted := c.Fill(100*64, 0, false)
	if !evicted || ev.Block != 1 {
		t.Fatalf("LIN evicted block %d, want 1", ev.Block)
	}
}

func TestLINTieBreaksTowardLowerRecency(t *testing.T) {
	// way 0: R=0 cost=1 → 4; way 1: R=1 cost=0 → 1... make a true tie:
	//   way 0: R=0 cost=1 → 4
	//   way 1: R=1 cost=0 → 1  (minimum, no tie)
	// Construct tie instead: costs {1,0}: scores 4 and 1 — no. Use λ=1:
	//   way 0: R=0 cost=1 → 1
	//   way 1: R=1 cost=0 → 1  tie → evict smaller recency (way 0).
	c := buildSet(t, []uint8{1, 0}, NewLIN(1))
	ev, _ := c.Fill(100*64, 0, false)
	if ev.Block != 0 {
		t.Fatalf("tie should evict the lower-recency line; evicted %d", ev.Block)
	}
}

func TestLINLambda4RetainsHighCostOverAnyRecency(t *testing.T) {
	// λ=4 × cost 7 = 28 exceeds the maximum recency rank (15 for
	// 16 ways), so a cost-7 block at LRU outlives a cost-0 block at MRU.
	costs := make([]uint8, 16)
	costs[0] = 7 // way 0 is the oldest (rank 0) and expensive
	c := buildSet(t, costs, NewLIN(4))
	ev, _ := c.Fill(100*64, 0, false)
	if ev.Block == 0 {
		t.Fatal("λ=4 must protect a cost-7 block at LRU position")
	}
}

// Property: LIN(λ=0) makes exactly the same decisions as LRU on any
// access sequence (the paper notes LRU is LIN's λ=0 special case).
func TestLINZeroLambdaEqualsLRU(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lin := cache.New(cache.Config{Sets: 4, Assoc: 4, BlockBytes: 64}, NewLIN(0))
		lru := cache.New(cache.Config{Sets: 4, Assoc: 4, BlockBytes: 64}, cache.NewLRU())
		for i := 0; i < 500; i++ {
			addr := uint64(r.Intn(80)) * 64
			cost := uint8(r.Intn(8))
			hitA := lin.Probe(addr, false)
			hitB := lru.Probe(addr, false)
			if hitA != hitB {
				return false
			}
			if !hitA {
				evA, okA := lin.Fill(addr, cost, false)
				evB, okB := lru.Fill(addr, cost, false)
				if okA != okB || (okA && evA.Block != evB.Block) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LIN never evicts an invalid... rather, Victim always returns
// an in-range way and prefers invalid ways.
func TestLINVictimRangeProperty(t *testing.T) {
	f := func(costsRaw []uint8) bool {
		n := len(costsRaw)
		if n == 0 || n > 16 {
			return true
		}
		costs := make([]uint8, n)
		for i, c := range costsRaw {
			costs[i] = c % 8
		}
		c := cache.New(cache.Config{Sets: 1, Assoc: n, BlockBytes: 64}, NewLIN(4))
		for b, q := range costs {
			c.Fill(uint64(b)*64, q, false)
		}
		// One more fill must succeed without panicking and evict a
		// previously-resident block.
		ev, evicted := c.Fill(uint64(n)*64, 0, false)
		return evicted && ev.Block < uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCostAwareCustomScore(t *testing.T) {
	// A "cost-only" CARE policy: ignore recency entirely.
	p := NewCostAware("cost-only", func(r, c int) int { return c })
	if p.Name() != "cost-only" {
		t.Fatalf("Name = %q", p.Name())
	}
	c := buildSet(t, []uint8{3, 1, 2}, p)
	c.Probe(1*64, false) // touching must not matter
	ev, _ := c.Fill(100*64, 0, false)
	if ev.Block != 1 {
		t.Fatalf("cost-only evicted %d, want 1 (lowest cost)", ev.Block)
	}
}

func TestNewLINPanicsOnNegativeLambda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLIN(-1)
}

func TestNewCostAwarePanicsOnNilScore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCostAware("nil", nil)
}

func TestLINName(t *testing.T) {
	if got := NewLIN(4).Name(); got != "lin4" {
		t.Fatalf("Name = %q, want lin4", got)
	}
}

// Property: raising a block's stored cost never makes LIN evict it when
// it would have survived at the lower cost (monotone protection). Tested
// by constructing random sets and comparing victim choices.
func TestLINCostMonotonicityProperty(t *testing.T) {
	f := func(seed int64, bump uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(8) + 2
		costs := make([]uint8, n)
		for i := range costs {
			costs[i] = uint8(r.Intn(8))
		}
		mk := func(cs []uint8) int {
			c := cache.New(cache.Config{Sets: 1, Assoc: n, BlockBytes: 64}, NewLIN(4))
			for b, q := range cs {
				c.Fill(uint64(b)*64, q, false)
			}
			ev, _ := c.Fill(uint64(n)*64, 0, false)
			return int(ev.Block)
		}
		victim := mk(costs)
		// Bump a non-victim block's cost: the victim must not change
		// to that block.
		target := r.Intn(n)
		if target == victim {
			return true
		}
		bumped := append([]uint8(nil), costs...)
		nb := int(bumped[target]) + int(bump%8)
		if nb > 7 {
			nb = 7
		}
		bumped[target] = uint8(nb)
		return mk(bumped) != target || bumped[target] == costs[target]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
