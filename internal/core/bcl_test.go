package core

import (
	"testing"

	"mlpcache/internal/cache"
)

func TestBCLPrefersCheapWithinDepth(t *testing.T) {
	// Fill order 0..3 → recency ranks equal way order.
	// costs: way0 (LRU) expensive, way1 cheap → BCL(t=4, d=2) evicts way1.
	c := buildSet(t, []uint8{7, 1, 7, 0}, NewBCL(4, 2))
	ev, _ := c.Fill(100*64, 0, false)
	if ev.Block != 1 {
		t.Fatalf("BCL evicted %d, want 1 (first cheap within depth)", ev.Block)
	}
}

func TestBCLFallsBackToLRU(t *testing.T) {
	// Everything within depth is expensive: evict plain LRU.
	c := buildSet(t, []uint8{7, 6, 0, 0}, NewBCL(4, 2))
	ev, _ := c.Fill(100*64, 0, false)
	if ev.Block != 0 {
		t.Fatalf("BCL evicted %d, want 0 (LRU fallback)", ev.Block)
	}
}

func TestBCLDepthOneIsLRU(t *testing.T) {
	// depth 1 inspects only the LRU block; expensive LRU → still LRU
	// (nothing else to choose).
	c := buildSet(t, []uint8{7, 0, 0, 0}, NewBCL(4, 1))
	ev, _ := c.Fill(100*64, 0, false)
	if ev.Block != 0 {
		t.Fatalf("BCL(d=1) evicted %d, want 0", ev.Block)
	}
}

func TestBCLGracefulUnderAllExpensive(t *testing.T) {
	// Unlike LIN, a set full of cost-7 blocks behaves exactly like LRU:
	// no starvation of anything.
	c := buildSet(t, []uint8{7, 7, 7, 7}, NewBCL(4, 4))
	ev, _ := c.Fill(100*64, 0, false)
	if ev.Block != 0 {
		t.Fatalf("all-expensive set: evicted %d, want LRU (0)", ev.Block)
	}
}

func TestBCLPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBCL(4, 0)
}

func TestDCLDisablesAfterLosses(t *testing.T) {
	p := NewDCL(4, 4)
	c := cache.New(cache.Config{Sets: 1, Assoc: 4, BlockBytes: 64}, p)
	// Dead expensive block at LRU + cheap churn: DCL protects the dead
	// block, which never gets re-referenced → repeated losses → the
	// engine decays to LRU.
	c.Fill(0, 7, false) // dead, expensive
	c.Fill(1*64, 0, false)
	c.Fill(2*64, 0, false)
	c.Fill(3*64, 0, false)
	for b := uint64(4); b < 200; b++ {
		c.Fill(b*64, 0, false)
	}
	st := p.Stats()
	if st.Protections == 0 {
		t.Fatal("DCL never protected anything")
	}
	if st.Losses == 0 {
		t.Fatal("dead-block protection should register losses")
	}
	// Eventually the dead block must have been evicted (LRU decay).
	if c.Contains(0) {
		t.Fatal("DCL kept the dead expensive block for ever")
	}
}

func TestDCLWinsKeepItEnabled(t *testing.T) {
	p := NewDCL(4, 4)
	c := cache.New(cache.Config{Sets: 1, Assoc: 4, BlockBytes: 64}, p)
	c.Fill(0, 7, false) // hot, expensive
	c.Fill(1*64, 0, false)
	c.Fill(2*64, 0, false)
	c.Fill(3*64, 0, false)
	for b := uint64(4); b < 100; b++ {
		c.Fill(b*64, 0, false)
		if !c.Probe(0, false) { // re-reference the protected block
			t.Fatal("hot expensive block was evicted despite protection")
		}
	}
	st := p.Stats()
	if st.Wins == 0 {
		t.Fatal("re-referenced protections should register wins")
	}
	if !p.Enabled() {
		t.Fatal("winning protections should keep DCL enabled")
	}
}

func TestBCLAndDCLAsSBARContestants(t *testing.T) {
	// The CARE engines drop into SBAR's generic contestant slots.
	mtd := cache.New(cache.Config{Sets: 64, Assoc: 4, BlockBytes: 64}, nil)
	s := NewSBAR(mtd, SBARConfig{LeaderSets: 8, Experimental: NewBCL(4, 4)})
	h := &sbarHarness{mtd: mtd, sbar: s}
	for b := uint64(0); b < 5000; b++ {
		h.access(b%600, uint8(b%8))
	}
	// Sanity only: the machinery must run and keep counters coherent.
	st := s.Stats()
	if st.LinVictims+st.LruVictims == 0 {
		t.Fatal("no victim decisions recorded")
	}
}
