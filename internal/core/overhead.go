package core

import "math/bits"

// Hardware storage-overhead model (Sections 1.2 and 6.4: SBAR costs
// 1854 B, under 0.2% of the baseline 1 MB cache). The model counts every
// bit of state each mechanism adds over a plain LRU cache, under explicit
// assumptions so the arithmetic is auditable.

// OverheadParams describes the machine the overhead is computed for.
type OverheadParams struct {
	PhysAddrBits int // physical address width (40 assumed)
	BlockBytes   uint64
	Sets         int // main cache sets
	Assoc        int
	MSHREntries  int
	CostRegBits  int // width of each MSHR mlp_cost register (10 here: saturates at 1023 cycles)
	LeaderSets   int // SBAR K
	PselBits     int
}

// DefaultOverheadParams returns the baseline machine's parameters
// (Table 2 geometry, 40-bit physical addresses).
func DefaultOverheadParams() OverheadParams {
	return OverheadParams{
		PhysAddrBits: 40,
		BlockBytes:   64,
		Sets:         1024,
		Assoc:        16,
		MSHREntries:  32,
		CostRegBits:  10,
		LeaderSets:   32,
		PselBits:     6,
	}
}

// Overhead reports the added storage of each mechanism, in bits.
type Overhead struct {
	// CCLBits is the cost-calculation logic's state: one mlp_cost
	// register per MSHR entry (the four shared adders are logic, not
	// storage).
	CCLBits int
	// CostQBitsTotal is the 3-bit quantized cost added to every main
	// tag-store entry, required by any MLP-aware policy (LIN).
	CostQBitsTotal int
	// SBARBits is the sampling machinery: the leader-set-only ATD plus
	// the PSEL counter. Simple-static leader selection needs no storage
	// (an index-bit comparison identifies leaders).
	SBARBits int
	// CBSLocalBits and CBSGlobalBits are the corresponding costs of the
	// non-sampled hybrids: two full ATDs plus per-set or single PSELs.
	CBSLocalBits  int
	CBSGlobalBits int
}

// atdEntryBits is the size of one auxiliary-tag-directory entry: tag,
// valid bit, and LRU recency bits for the set's associativity.
func atdEntryBits(p OverheadParams) int {
	offsetBits := bits.Len64(p.BlockBytes - 1)
	indexBits := bits.Len(uint(p.Sets) - 1)
	tagBits := p.PhysAddrBits - offsetBits - indexBits
	lruBits := bits.Len(uint(p.Assoc) - 1)
	return tagBits + 1 + lruBits
}

// ComputeOverhead evaluates the model.
func ComputeOverhead(p OverheadParams) Overhead {
	entry := atdEntryBits(p)
	fullATD := p.Sets * p.Assoc * entry
	sampledATD := p.LeaderSets * p.Assoc * entry
	return Overhead{
		CCLBits:        p.MSHREntries * p.CostRegBits,
		CostQBitsTotal: p.Sets * p.Assoc * CostQBits,
		SBARBits:       sampledATD + p.PselBits,
		CBSLocalBits:   2*fullATD + p.Sets*p.PselBits,
		CBSGlobalBits:  2*fullATD + 7, // the paper uses a 7-bit global PSEL
	}
}

// SBARBytes returns the SBAR overhead rounded up to whole bytes — the
// number the paper reports as 1854 B.
func (o Overhead) SBARBytes() int { return (o.SBARBits + 7) / 8 }

// SBARFractionOfCache returns SBAR's overhead as a fraction of the data
// capacity of the cache described by p.
func SBARFractionOfCache(p OverheadParams) float64 {
	o := ComputeOverhead(p)
	capacityBits := float64(uint64(p.Sets)*uint64(p.Assoc)*p.BlockBytes) * 8
	return float64(o.SBARBits) / capacityBits
}
