package core

import (
	"fmt"

	"mlpcache/internal/cache"
	"mlpcache/internal/metrics"

	"mlpcache/internal/simerr"
)

// CostAware is the cost-aware replacement engine (the paper's CARE): any
// victim-selection function over a line's LRU-stack position R and its
// stored quantized cost. Lower score evicts first; ties break toward the
// smaller recency value, exactly as the LIN policy specifies.
type CostAware struct {
	cache.Base
	name  string
	score func(recency, costQ int) int
	tr    metrics.Tracer
	// rankBuf is the Ranks scratch slice, reused across victim decisions
	// to keep the eviction path allocation-free. Policies are per-run
	// objects driven from a single goroutine, so one buffer suffices.
	rankBuf []int
}

// SetTracer installs an event tracer; each victim decision then emits a
// "victim" event carrying the winning way's R, cost_q, and score
// operands. A nil tracer (the default) disables emission.
func (p *CostAware) SetTracer(tr metrics.Tracer) { p.tr = tr }

// NewCostAware builds a CARE policy from an arbitrary score function.
func NewCostAware(name string, score func(recency, costQ int) int) *CostAware {
	if score == nil {
		panic(simerr.New(simerr.ErrBadConfig, "core: NewCostAware needs a score function"))
	}
	return &CostAware{name: name, score: score}
}

// NewLIN returns the paper's Linear policy with the given λ:
//
//	Victim_LIN = argmin_i { R(i) + λ·cost_q(i) }
//
// λ=0 degenerates to LRU; the paper's default is λ=4.
func NewLIN(lambda int) *CostAware {
	if lambda < 0 {
		panic(simerr.New(simerr.ErrBadConfig, "core: LIN lambda must be non-negative, got %d", lambda))
	}
	return NewCostAware(fmt.Sprintf("lin%d", lambda), func(r, c int) int {
		return r + lambda*c
	})
}

// Name implements cache.Policy.
func (p *CostAware) Name() string { return p.name }

// Victim implements cache.Policy. Invalid lines win immediately; among
// valid lines the minimum score wins, ties broken by smaller recency.
// All A stack positions come from one Ranks pass instead of a per-way
// RecencyRank scan, keeping the decision O(A) — the software analogue of
// the paper's point that replacement must be near-free in hardware.
func (p *CostAware) Victim(set cache.SetView) int {
	ways := set.Ways()
	for w := 0; w < ways; w++ {
		if !set.Line(w).Valid {
			return w
		}
	}
	p.rankBuf = set.Ranks(p.rankBuf)
	best := -1
	bestScore, bestRecency, bestCostQ := 0, 0, 0
	for w := 0; w < ways; w++ {
		r := p.rankBuf[w]
		c := int(set.Line(w).CostQ)
		s := p.score(r, c)
		if best < 0 || s < bestScore || (s == bestScore && r < bestRecency) {
			best, bestScore, bestRecency, bestCostQ = w, s, r, c
		}
	}
	if p.tr != nil {
		p.tr.Emit(metrics.Event{
			Type: metrics.EventVictim, Set: set.Index, Way: best,
			Recency: bestRecency, CostQ: bestCostQ, Score: bestScore,
			Policy: p.name,
		})
	}
	return best
}
