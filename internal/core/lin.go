package core

import (
	"fmt"

	"mlpcache/internal/cache"
	"mlpcache/internal/metrics"

	"mlpcache/internal/simerr"
)

// CostAware is the cost-aware replacement engine (the paper's CARE): any
// victim-selection function over a line's LRU-stack position R and its
// stored quantized cost. Lower score evicts first; ties break toward the
// smaller recency value, exactly as the LIN policy specifies.
type CostAware struct {
	cache.Base
	name  string
	score func(recency, costQ int) int
	tr    metrics.Tracer
}

// SetTracer installs an event tracer; each victim decision then emits a
// "victim" event carrying the winning way's R, cost_q, and score
// operands. A nil tracer (the default) disables emission.
func (p *CostAware) SetTracer(tr metrics.Tracer) { p.tr = tr }

// NewCostAware builds a CARE policy from an arbitrary score function.
func NewCostAware(name string, score func(recency, costQ int) int) *CostAware {
	if score == nil {
		panic(simerr.New(simerr.ErrBadConfig, "core: NewCostAware needs a score function"))
	}
	return &CostAware{name: name, score: score}
}

// NewLIN returns the paper's Linear policy with the given λ:
//
//	Victim_LIN = argmin_i { R(i) + λ·cost_q(i) }
//
// λ=0 degenerates to LRU; the paper's default is λ=4.
func NewLIN(lambda int) *CostAware {
	if lambda < 0 {
		panic(simerr.New(simerr.ErrBadConfig, "core: LIN lambda must be non-negative, got %d", lambda))
	}
	return NewCostAware(fmt.Sprintf("lin%d", lambda), func(r, c int) int {
		return r + lambda*c
	})
}

// Name implements cache.Policy.
func (p *CostAware) Name() string { return p.name }

// Victim implements cache.Policy. Invalid lines win immediately; among
// valid lines the minimum score wins, ties broken by smaller recency.
func (p *CostAware) Victim(set cache.SetView) int {
	best := -1
	bestScore, bestRecency, bestCostQ := 0, 0, 0
	for w := 0; w < set.Ways(); w++ {
		ln := set.Line(w)
		if !ln.Valid {
			return w
		}
		r := set.RecencyRank(w)
		c := int(ln.CostQ)
		s := p.score(r, c)
		if best < 0 || s < bestScore || (s == bestScore && r < bestRecency) {
			best, bestScore, bestRecency, bestCostQ = w, s, r, c
		}
	}
	if p.tr != nil {
		p.tr.Emit(metrics.Event{
			Type: metrics.EventVictim, Set: set.Index, Way: best,
			Recency: bestRecency, CostQ: bestCostQ, Score: bestScore,
			Policy: p.name,
		})
	}
	return best
}
