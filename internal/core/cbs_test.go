package core

import (
	"testing"

	"mlpcache/internal/cache"
)

type cbsHarness struct {
	mtd *cache.Cache
	cbs *CBS
}

func newCBSHarness(t *testing.T, cfg CBSConfig, sets, assoc int) *cbsHarness {
	t.Helper()
	mtd := cache.New(cache.Config{Sets: sets, Assoc: assoc, BlockBytes: 64}, nil)
	return &cbsHarness{mtd: mtd, cbs: NewCBS(mtd, cfg)}
}

func (h *cbsHarness) access(block uint64, costQ uint8) bool {
	addr := block * 64
	hit := h.mtd.Probe(addr, false)
	h.cbs.OnAccess(addr, false, hit, !hit)
	if !hit {
		h.mtd.Fill(addr, costQ, false)
		h.cbs.OnFill(addr, costQ)
	}
	return hit
}

func TestCBSDefaults(t *testing.T) {
	local := newCBSHarness(t, CBSConfig{Scope: CBSLocal}, 8, 2)
	global := newCBSHarness(t, CBSConfig{Scope: CBSGlobal}, 8, 2)
	if local.cbs.Psel(0).Max() != 63 {
		t.Fatalf("local PSEL max = %d, want 63 (6-bit)", local.cbs.Psel(0).Max())
	}
	if global.cbs.Psel(0).Max() != 127 {
		t.Fatalf("global PSEL max = %d, want 127 (7-bit per the paper)", global.cbs.Psel(0).Max())
	}
	if local.cbs.Psel(0) == local.cbs.Psel(1) {
		t.Fatal("CBS-local must keep per-set counters")
	}
	if global.cbs.Psel(0) != global.cbs.Psel(7) {
		t.Fatal("CBS-global must share one counter")
	}
}

func TestCBSFigure6Rules(t *testing.T) {
	// Build divergence between ATD-LIN and ATD-LRU in set 0 of a 2-way
	// cache: fill a protected (cost 7) block and a cheap one, then a
	// third block — ATD-LIN keeps the expensive block, ATD-LRU keeps
	// recency order.
	h := newCBSHarness(t, CBSConfig{Scope: CBSGlobal}, 4, 2)
	start := h.cbs.Psel(0).Value()
	h.access(0, 7) // set 0
	h.access(4, 1)
	h.access(8, 1) // ATD-LIN evicts 4; ATD-LRU evicts 0
	if h.cbs.Psel(0).Value() != start {
		t.Fatal("ties and both-miss cases must not move PSEL")
	}
	// Access 0: ATD-LIN hit, ATD-LRU miss → +cost. MTD hit or miss
	// depends on the selected policy; either way the sign is up.
	h.access(0, 6)
	afterUp := h.cbs.Psel(0).Value()
	if afterUp <= start {
		t.Fatalf("PSEL %d → %d; want increment on LIN-wins contest", start, afterUp)
	}
	st := h.cbs.Stats()
	if st.PselIncrements != 1 {
		t.Fatalf("increments = %d, want 1", st.PselIncrements)
	}
}

func TestCBSDecrementOnLRUWin(t *testing.T) {
	h := newCBSHarness(t, CBSConfig{Scope: CBSGlobal}, 4, 2)
	h.access(0, 7)
	h.access(4, 1)
	h.access(8, 1) // ATD-LIN: {0,8}; ATD-LRU: {4,8}
	start := h.cbs.Psel(0).Value()
	// Access 4: ATD-LIN miss, ATD-LRU hit → −cost (the serviced cost 3).
	h.access(4, 3)
	if got := h.cbs.Psel(0).Value(); got != start-3 {
		t.Fatalf("PSEL = %d, want %d", got, start-3)
	}
	if h.cbs.Stats().PselDecrements != 1 {
		t.Fatalf("decrements = %d, want 1", h.cbs.Stats().PselDecrements)
	}
}

func TestCBSLocalIsolatesSets(t *testing.T) {
	h := newCBSHarness(t, CBSConfig{Scope: CBSLocal}, 4, 2)
	// Create an LRU-wins contest in set 1 only.
	h.access(1, 7)
	h.access(5, 1)
	h.access(9, 1)
	h.access(5, 3) // ATD-LIN miss, ATD-LRU hit in set 1
	if h.cbs.Psel(1).Value() >= h.cbs.Psel(1).Max()/2+1 {
		t.Fatalf("set 1 PSEL should have moved down, got %d", h.cbs.Psel(1).Value())
	}
	if h.cbs.Psel(0).Value() != (h.cbs.Psel(0).Max()+1)/2 {
		t.Fatal("set 0 PSEL moved without any contest in set 0")
	}
}

func TestCBSVictimFollowsSelectedPolicy(t *testing.T) {
	// With PSEL forced low, MTD replaces with LRU; forced high, LIN.
	h := newCBSHarness(t, CBSConfig{Scope: CBSGlobal}, 4, 2)
	h.cbs.Psel(0).Add(-1000)
	h.access(0, 7)
	h.access(4, 1)
	h.access(8, 1)
	if h.mtd.Contains(0 * 64) {
		t.Fatal("under LRU selection, the oldest block must be evicted")
	}

	h2 := newCBSHarness(t, CBSConfig{Scope: CBSGlobal}, 4, 2)
	h2.cbs.Psel(0).Add(+1000)
	h2.access(0, 7)
	h2.access(4, 1)
	h2.access(8, 1)
	if !h2.mtd.Contains(0 * 64) {
		t.Fatal("under LIN selection, the cost-7 block must be protected")
	}
	if !h2.cbs.UsingLIN(0) {
		t.Fatal("UsingLIN should report the selection")
	}
}

func TestCBSName(t *testing.T) {
	h := newCBSHarness(t, CBSConfig{Scope: CBSLocal}, 4, 2)
	if h.cbs.Name() == "" {
		t.Fatal("empty name")
	}
	h.cbs.AdvanceEpoch() // must be a no-op
}

func TestOverheadMatchesPaper(t *testing.T) {
	p := DefaultOverheadParams()
	o := ComputeOverhead(p)
	// The paper reports 1854 B for SBAR; the model must land within 1%.
	got := o.SBARBytes()
	if got < 1836 || got > 1873 {
		t.Fatalf("SBAR overhead %d B, want within 1%% of the paper's 1854 B", got)
	}
	// And under 0.2% of the 1 MB cache, as the abstract claims.
	if frac := SBARFractionOfCache(p); frac >= 0.002 {
		t.Fatalf("SBAR fraction %.4f, want < 0.002", frac)
	}
}

func TestOverheadComponents(t *testing.T) {
	p := DefaultOverheadParams()
	o := ComputeOverhead(p)
	if o.CCLBits != 32*10 {
		t.Fatalf("CCL bits = %d, want 320", o.CCLBits)
	}
	if o.CostQBitsTotal != 1024*16*3 {
		t.Fatalf("cost_q bits = %d", o.CostQBitsTotal)
	}
	// SBAR needs dramatically less storage than either CBS variant
	// (the paper quotes a 64× ATD-entry reduction for K=32... 32× sets).
	if o.SBARBits*20 > o.CBSGlobalBits {
		t.Fatalf("SBAR (%d bits) not far smaller than CBS-global (%d bits)",
			o.SBARBits, o.CBSGlobalBits)
	}
	if o.CBSLocalBits <= o.CBSGlobalBits {
		t.Fatal("CBS-local must cost more than CBS-global (per-set PSELs)")
	}
}
