package core

import "testing"

func TestSimpleStaticPaperPositions(t *testing.T) {
	// K=32, N=1024: the paper's example — sets 0, 33, 66, 99, ... 1023.
	sel := NewSimpleStatic(1024, 32)
	if sel.Name() != "simple-static" || sel.K() != 32 {
		t.Fatalf("metadata wrong: %s/%d", sel.Name(), sel.K())
	}
	leaders := []int{}
	for s := 0; s < 1024; s++ {
		if slot, ok := sel.Slot(s); ok {
			if want := slot*32 + slot; s != want {
				t.Fatalf("leader %d at set %d, want %d", slot, s, want)
			}
			leaders = append(leaders, s)
		}
	}
	if len(leaders) != 32 {
		t.Fatalf("%d leaders, want 32", len(leaders))
	}
	if leaders[0] != 0 || leaders[1] != 33 || leaders[2] != 66 || leaders[31] != 1023 {
		t.Fatalf("leaders %v do not match the paper's 0,33,66,...,1023", leaders[:3])
	}
}

func TestSimpleStaticOnePerConstituency(t *testing.T) {
	for _, k := range []int{8, 16, 32, 64} {
		sel := NewSimpleStatic(1024, k)
		constituency := 1024 / k
		for c := 0; c < k; c++ {
			found := 0
			for s := c * constituency; s < (c+1)*constituency; s++ {
				if slot, ok := sel.Slot(s); ok {
					if slot != c {
						t.Fatalf("k=%d set %d slot %d, want %d", k, s, slot, c)
					}
					found++
				}
			}
			if found != 1 {
				t.Fatalf("k=%d constituency %d has %d leaders", k, c, found)
			}
		}
		if sel.Reselect() {
			t.Fatal("simple-static must never reselect")
		}
	}
}

func TestRandDynamicValidity(t *testing.T) {
	sel := NewRandDynamic(1024, 32, 9)
	if sel.Name() != "rand-dynamic" {
		t.Fatalf("Name = %q", sel.Name())
	}
	countPerConstituency := func() {
		t.Helper()
		for c := 0; c < 32; c++ {
			found := 0
			for s := c * 32; s < (c+1)*32; s++ {
				if slot, ok := sel.Slot(s); ok {
					if slot != c {
						t.Fatalf("set %d slot %d, want %d", s, slot, c)
					}
					found++
				}
			}
			if found != 1 {
				t.Fatalf("constituency %d has %d leaders", c, found)
			}
		}
	}
	countPerConstituency()
	// Reselecting must eventually change the map and keep it valid.
	changed := false
	for i := 0; i < 5; i++ {
		if sel.Reselect() {
			changed = true
		}
		countPerConstituency()
	}
	if !changed {
		t.Fatal("rand-dynamic never changed its leaders across 5 reselects")
	}
}

func TestLeaderGeometryValidation(t *testing.T) {
	bad := [][2]int{{0, 1}, {8, 0}, {8, 16}, {10, 3}}
	for _, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sets=%d k=%d should panic", c[0], c[1])
				}
			}()
			NewSimpleStatic(c[0], c[1])
		}()
	}
}
