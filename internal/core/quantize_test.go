package core

import (
	"testing"
	"testing/quick"
)

func TestQuantizeFigure3b(t *testing.T) {
	// The exact table of Figure 3(b).
	cases := []struct {
		cost float64
		want uint8
	}{
		{0, 0}, {59, 0}, {60, 1}, {119, 1}, {120, 2}, {179, 2},
		{180, 3}, {239, 3}, {240, 4}, {299, 4}, {300, 5}, {359, 5},
		{360, 6}, {419, 6}, {420, 7}, {444, 7}, {10000, 7},
	}
	for _, c := range cases {
		if got := Quantize(c.cost); got != c.want {
			t.Errorf("Quantize(%v) = %d, want %d", c.cost, got, c.want)
		}
	}
}

func TestQuantizeNegativeClamps(t *testing.T) {
	if Quantize(-5) != 0 {
		t.Fatal("negative cost should quantize to 0")
	}
}

// Properties: Quantize is monotone and stays within [0, CostQMax].
func TestQuantizeProperties(t *testing.T) {
	f := func(a, b float64) bool {
		qa, qb := Quantize(a), Quantize(b)
		if qa > CostQMax || qb > CostQMax {
			return false
		}
		if a <= b && qa > qb {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeWith(t *testing.T) {
	// 3-bit QuantizeWith must agree with Quantize.
	for _, cost := range []float64{0, 30, 60, 200, 419, 420, 1000} {
		if QuantizeWith(cost, 3) != Quantize(cost) {
			t.Fatalf("QuantizeWith(%v, 3) != Quantize", cost)
		}
	}
	// Full-scale alignment: the top code means ≥420 cycles at any width.
	for bits := 1; bits <= 8; bits++ {
		max := uint8(1<<bits - 1)
		if got := QuantizeWith(1e6, bits); got != max {
			t.Fatalf("QuantizeWith(1e6, %d) = %d, want %d", bits, got, max)
		}
		if got := QuantizeWith(0, bits); got != 0 {
			t.Fatalf("QuantizeWith(0, %d) = %d, want 0", bits, got)
		}
	}
}

func TestQuantizeWithPanicsOnBadBits(t *testing.T) {
	for _, bits := range []int{0, 9, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d should panic", bits)
				}
			}()
			QuantizeWith(100, bits)
		}()
	}
}

func TestPSELBasics(t *testing.T) {
	p := NewPSEL(6)
	if p.Max() != 63 {
		t.Fatalf("Max = %d, want 63", p.Max())
	}
	if p.Value() != 32 || !p.MSB() {
		t.Fatalf("midpoint init: value=%d msb=%v", p.Value(), p.MSB())
	}
	p.Add(-1)
	if p.MSB() {
		t.Fatal("MSB should clear below midpoint")
	}
	p.Reset()
	if p.Value() != 32 {
		t.Fatal("Reset should return to midpoint")
	}
}

// Property: PSEL saturates within [0, max] under arbitrary updates.
func TestPSELSaturationProperty(t *testing.T) {
	f := func(deltas []int8) bool {
		p := NewPSEL(6)
		for _, d := range deltas {
			p.Add(int(d))
			if p.Value() < 0 || p.Value() > 63 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPSELSaturatesAtExtremes(t *testing.T) {
	p := NewPSEL(6)
	p.Add(1000)
	if p.Value() != 63 {
		t.Fatalf("saturated high at %d, want 63", p.Value())
	}
	p.Add(-10000)
	if p.Value() != 0 {
		t.Fatalf("saturated low at %d, want 0", p.Value())
	}
}

func TestPSELPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPSEL(0)
}
