package core

import "mlpcache/internal/simerr"

// PSEL is the policy-selector saturating counter of Section 6.1. It is
// incremented when the MLP-aware contestant is doing better and
// decremented when the traditional contestant is, each time by the
// quantized cost of the losing side's miss, so selection follows the
// cumulative MLP-based cost (stall cycles) rather than raw miss counts.
// The most significant bit is the decision output: set means "use LIN".
type PSEL struct {
	value int
	max   int
	mid   int
}

// NewPSEL returns a saturating counter of the given bit width (6 in the
// SBAR baseline, 7 for CBS-global), initialized to its midpoint so
// neither policy starts favoured.
func NewPSEL(bits int) *PSEL {
	if bits < 1 || bits > 30 {
		panic(simerr.New(simerr.ErrBadConfig, "core: PSEL bits must be in [1,30], got %d", bits))
	}
	max := 1<<bits - 1
	return &PSEL{value: (max + 1) / 2, max: max, mid: (max + 1) / 2}
}

// Add applies a signed delta with saturating arithmetic.
func (p *PSEL) Add(delta int) {
	v := p.value + delta
	if v < 0 {
		v = 0
	}
	if v > p.max {
		v = p.max
	}
	p.value = v
}

// MSB reports the counter's most significant bit: true selects the
// MLP-aware (LIN) policy.
func (p *PSEL) MSB() bool { return p.value >= p.mid }

// Value returns the current counter value (for tests and telemetry).
func (p *PSEL) Value() int { return p.value }

// Max returns the saturation ceiling.
func (p *PSEL) Max() int { return p.max }

// Reset returns the counter to its midpoint.
func (p *PSEL) Reset() { p.value = p.mid }
