package core

import (
	"fmt"

	"mlpcache/internal/cache"
	"mlpcache/internal/metrics"

	"mlpcache/internal/simerr"
)

// SBARConfig parameterizes Sampling Based Adaptive Replacement.
type SBARConfig struct {
	// LeaderSets is K, the number of leader sets (32 in the paper's
	// default).
	LeaderSets int
	// PselBits sizes the selector counter (6 in the paper's default).
	PselBits int
	// Lambda is the λ of the LIN contestant (4 by default).
	Lambda int
	// Selector overrides the leader-set selection policy; nil uses
	// simple-static over the MTD geometry.
	Selector LeaderSelector
	// Experimental and Baseline override the two contestant policies.
	// The paper instantiates SBAR with LIN(λ) versus LRU, but the
	// mechanism is generic: any policy pair can race (Section 6 notes
	// the approach applies to hybrid replacement in general). Defaults:
	// LIN(Lambda) and LRU.
	Experimental cache.Policy
	Baseline     cache.Policy
	// Threads partitions the selector per thread for multi-core runs
	// sharing one L2: each thread gets its own PSEL counter, leader-set
	// contests credit the accessing thread's counter, and follower
	// victim decisions consult the accessing thread's counter (set via
	// SetThread). 0 or 1 keeps the paper's single Section 6 counter —
	// the single-core behavior is structurally unchanged.
	Threads int
}

func (c *SBARConfig) setDefaults(sets int) {
	if c.LeaderSets == 0 {
		c.LeaderSets = 32
	}
	if c.PselBits == 0 {
		c.PselBits = 6
	}
	if c.Lambda == 0 {
		c.Lambda = 4
	}
	if c.Selector == nil {
		c.Selector = NewSimpleStatic(sets, c.LeaderSets)
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
}

// SBAR implements Sampling Based Adaptive Replacement (Section 6.4).
//
// The main tag directory's sets are split into leader sets and follower
// sets. Leader sets always replace with LIN and, together with a single
// tag-only ATD that mirrors just the leader sets under LRU, update the
// PSEL counter: a leader-set (LIN) miss that the ATD (LRU) would have hit
// decrements PSEL by the miss's quantized cost, and a leader-set hit the
// ATD would have missed increments it. Follower sets obey PSEL's MSB.
type SBAR struct {
	mtd *cache.Cache
	atd *cache.Cache
	// psels holds one selector counter per thread (Section 6 uses one;
	// multi-core runs partition it per thread so set dueling converges
	// per workload under interference). cur is the thread whose counter
	// governs follower decisions and receives contest updates — always 0
	// in single-threaded runs.
	psels   []*PSEL
	cur     int
	sel     LeaderSelector
	lin     cache.Policy
	lru     cache.Policy
	cfg     SBARConfig
	pending map[uint64]sbarPending
	stats   HybridStats
	tr      metrics.Tracer
}

// SetTracer installs an event tracer: leader-set contests emit
// "sbar.leader" events and every PSEL movement emits a "psel.update"
// event. The tracer propagates to the experimental contestant when it is
// cost-aware, so follower victim decisions are traced too. A nil tracer
// (the default) disables emission.
func (s *SBAR) SetTracer(tr metrics.Tracer) {
	s.tr = tr
	if ca, ok := s.lin.(*CostAware); ok {
		ca.SetTracer(tr)
	}
}

type sbarPending struct {
	decrement bool // ATD-LRU hit while the leader (LIN) set missed
	fillATD   bool // both missed: fill the ATD when the cost is known
	tid       int  // thread whose PSEL the outcome settles against
}

// NewSBAR builds the SBAR engine shadowing mtd and installs itself as
// mtd's replacement policy.
func NewSBAR(mtd *cache.Cache, cfg SBARConfig) *SBAR {
	mcfg := mtd.Config()
	cfg.setDefaults(mcfg.Sets)
	if cfg.Selector.K() != cfg.LeaderSets {
		panic(simerr.New(simerr.ErrBadConfig, "core: SBAR selector provides %d leaders, config wants %d", cfg.Selector.K(), cfg.LeaderSets))
	}
	if cfg.Experimental == nil {
		cfg.Experimental = NewLIN(cfg.Lambda)
	}
	if cfg.Baseline == nil {
		cfg.Baseline = cache.NewLRU()
	}
	if cfg.Threads < 1 {
		panic(simerr.New(simerr.ErrBadConfig, "core: SBAR needs at least 1 thread, got %d", cfg.Threads))
	}
	psels := make([]*PSEL, cfg.Threads)
	for i := range psels {
		psels[i] = NewPSEL(cfg.PselBits)
	}
	s := &SBAR{
		mtd:     mtd,
		psels:   psels,
		sel:     cfg.Selector,
		lin:     cfg.Experimental,
		lru:     cfg.Baseline,
		cfg:     cfg,
		pending: make(map[uint64]sbarPending),
	}
	s.atd = s.newATD()
	mtd.SetPolicy(s)
	return s
}

// newATD builds the tag-only auxiliary directory covering just the leader
// sets: K sets of the MTD's associativity, indexed by routing each leader
// block to its leader's slot, with the full block number as tag.
func (s *SBAR) newATD() *cache.Cache {
	mcfg := s.mtd.Config()
	sets := uint64(mcfg.Sets)
	sel := s.sel
	return cache.New(cache.Config{
		Sets:       s.cfg.LeaderSets,
		Assoc:      mcfg.Assoc,
		BlockBytes: mcfg.BlockBytes,
		Index: func(block uint64) (int, uint64) {
			slot, leader := sel.Slot(int(block % sets))
			if !leader {
				panic(simerr.New(simerr.ErrInternal, "core: non-leader block %#x routed to SBAR ATD", block))
			}
			return slot, block
		},
	}, s.cfg.Baseline)
}

// Name implements cache.Policy.
func (s *SBAR) Name() string {
	return fmt.Sprintf("sbar(%s vs %s, k=%d, %s, psel=%db)",
		s.lin.Name(), s.lru.Name(), s.cfg.LeaderSets, s.sel.Name(), s.cfg.PselBits)
}

// Victim implements cache.Policy: leader sets always use LIN; follower
// sets follow PSEL.
func (s *SBAR) Victim(set cache.SetView) int {
	if _, leader := s.sel.Slot(set.Index); leader {
		s.stats.LinVictims++
		return s.lin.Victim(set)
	}
	if s.psels[s.cur].MSB() {
		s.stats.LinVictims++
		return s.lin.Victim(set)
	}
	s.stats.LruVictims++
	return s.lru.Victim(set)
}

// SetThread selects the thread whose PSEL counter governs subsequent
// follower decisions and receives subsequent leader-contest updates. The
// multi-core engine calls it before every L2 operation it routes on a
// core's behalf; single-core runs never call it and stay on counter 0.
func (s *SBAR) SetThread(tid int) {
	if tid < 0 || tid >= len(s.psels) {
		panic(simerr.New(simerr.ErrInternal, "core: SBAR thread %d outside [0,%d)", tid, len(s.psels)))
	}
	s.cur = tid
}

// active returns the policy currently governing a set: leaders always
// run the experimental policy, followers whatever PSEL selects.
func (s *SBAR) active(set int) cache.Policy {
	if _, leader := s.sel.Slot(set); leader || s.psels[s.cur].MSB() {
		return s.lin
	}
	return s.lru
}

// Touched implements cache.Policy, forwarding the notification to the
// policy governing the set (stateful contestants like BIP or DCL depend
// on these hooks).
func (s *SBAR) Touched(set cache.SetView, w int) { s.active(set.Index).Touched(set, w) }

// Filled implements cache.Policy (see Touched).
func (s *SBAR) Filled(set cache.SetView, w int) { s.active(set.Index).Filled(set, w) }

// OnAccess implements Hybrid.
func (s *SBAR) OnAccess(addr uint64, write, mtdHit, primaryMiss bool) {
	set := s.mtd.SetOf(addr)
	if _, leader := s.sel.Slot(set); !leader {
		return
	}
	s.stats.LeaderAccesses++
	atdHit := s.atd.Probe(addr, write)
	block := s.mtd.BlockOf(addr)
	switch {
	case mtdHit && atdHit:
		// Both policies hit: neither is doing better.
		s.stats.TieBothHit++
		s.leaderEvent(set, "both_hit")
	case mtdHit && !atdHit:
		// LIN (the leader set) is doing better. The cost of the
		// miss the LRU ATD incurred is the block's stored cost in
		// the MTD tag entry (footnote 6): the access is not
		// serviced by memory, so no fresh cost exists.
		cost, _ := s.mtd.CostOf(addr)
		s.psels[s.cur].Add(int(cost))
		s.stats.PselIncrements++
		s.pselEvent(int(cost), s.cur)
		s.leaderEvent(set, "mtd_hit")
		s.atd.Fill(addr, cost, false)
	case !mtdHit && atdHit:
		// LRU is doing better; the decrement amount is the
		// MLP-based cost of the miss, known when it is serviced.
		s.leaderEvent(set, "atd_hit")
		if primaryMiss {
			s.pending[block] = sbarPending{decrement: true, tid: s.cur}
		}
	default:
		// Both miss: PSEL unchanged; the ATD still needs the block
		// once its cost is known.
		s.stats.TieBothMiss++
		s.leaderEvent(set, "both_miss")
		if primaryMiss {
			s.pending[block] = sbarPending{fillATD: true, tid: s.cur}
		}
	}
}

func (s *SBAR) leaderEvent(set int, outcome string) {
	if s.tr == nil {
		return
	}
	s.tr.Emit(metrics.Event{Type: metrics.EventSBARLeader, Set: set, Outcome: outcome})
}

func (s *SBAR) pselEvent(delta, tid int) {
	if s.tr == nil {
		return
	}
	s.tr.Emit(metrics.Event{Type: metrics.EventPselUpdate, Delta: delta, Value: s.psels[tid].Value(), Tid: tid})
}

// OnFill implements Hybrid.
func (s *SBAR) OnFill(addr uint64, costQ uint8) {
	block := s.mtd.BlockOf(addr)
	p, ok := s.pending[block]
	if !ok {
		return
	}
	delete(s.pending, block)
	if p.decrement {
		s.psels[p.tid].Add(-int(costQ))
		s.stats.PselDecrements++
		s.pselEvent(-int(costQ), p.tid)
	}
	if p.fillATD {
		s.atd.Fill(addr, costQ, false)
	}
}

// AdvanceEpoch implements Hybrid: under rand-dynamic selection the
// leaders are re-drawn and the ATD restarts cold for the new sample.
func (s *SBAR) AdvanceEpoch() {
	if !s.sel.Reselect() {
		return
	}
	s.stats.EpochReselects++
	s.atd = s.newATD()
	clear(s.pending)
}

// UsingLIN implements Hybrid.
func (s *SBAR) UsingLIN(set int) bool {
	if _, leader := s.sel.Slot(set); leader {
		return true
	}
	return s.psels[s.cur].MSB()
}

// Psel exposes the selector counter for tests and telemetry (thread 0's
// counter, the only one in single-threaded runs).
func (s *SBAR) Psel() *PSEL { return s.psels[0] }

// PselFor exposes one thread's selector counter (multi-core telemetry).
func (s *SBAR) PselFor(tid int) *PSEL { return s.psels[tid] }

// Threads returns the number of per-thread selector counters.
func (s *SBAR) Threads() int { return len(s.psels) }

// Stats returns the selection counters.
func (s *SBAR) Stats() HybridStats { return s.stats }

// ATD exposes the auxiliary directory (read-only use in tests).
func (s *SBAR) ATD() *cache.Cache { return s.atd }

// AuditInvariants cross-checks SBAR's sampling bookkeeping and returns a
// description of every violated invariant (empty when consistent): the
// PSEL value stays inside its bit width, every block resident in the
// leader-set ATD routes to the leader slot holding it, and pending
// contest outcomes concern leader sets only. It never mutates state.
func (s *SBAR) AuditInvariants() []string {
	var out []string
	for tid, p := range s.psels {
		if v, max := p.Value(), p.Max(); v < 0 || v > max {
			out = append(out, fmt.Sprintf("thread %d psel value %d outside [0,%d]", tid, v, max))
		}
	}
	sets := uint64(s.mtd.Config().Sets)
	acfg := s.atd.Config()
	for set := 0; set < acfg.Sets; set++ {
		view := s.atd.ViewSet(set)
		for w := 0; w < view.Ways(); w++ {
			ln := view.Line(w)
			if !ln.Valid {
				continue
			}
			// The ATD indexer stores the full block number as tag.
			slot, leader := s.sel.Slot(int(ln.Tag % sets))
			if !leader {
				out = append(out, fmt.Sprintf("ATD set %d holds non-leader block %#x", set, ln.Tag))
			} else if slot != set {
				out = append(out, fmt.Sprintf("ATD block %#x belongs in slot %d but sits in set %d", ln.Tag, slot, set))
			}
		}
	}
	for block, p := range s.pending {
		if _, leader := s.sel.Slot(int(block % sets)); !leader {
			out = append(out, fmt.Sprintf("pending contest for non-leader block %#x", block))
		}
		if p.tid < 0 || p.tid >= len(s.psels) {
			out = append(out, fmt.Sprintf("pending contest for block %#x names thread %d outside [0,%d)", block, p.tid, len(s.psels)))
		}
	}
	return out
}
