package core

import (
	"mlpcache/internal/trace"

	"mlpcache/internal/simerr"
)

// LeaderSelector decides which cache sets are SBAR leader sets. The cache
// is logically divided into K equal constituencies of N/K consecutive
// sets; one leader is drawn from each (Section 6.4).
type LeaderSelector interface {
	// Name identifies the selection policy ("simple-static",
	// "rand-dynamic").
	Name() string
	// K returns the number of leader sets.
	K() int
	// Slot returns the leader slot index (0..K-1) for a set, and whether
	// the set is currently a leader.
	Slot(set int) (slot int, leader bool)
	// Reselect re-draws the leaders, returning true if they changed.
	// Static policies return false and do nothing.
	Reselect() bool
}

// simpleStatic implements the paper's simple-static policy: set 0 from
// constituency 0, set 1 from constituency 1, and so on (sets 0, 33, 66,
// ... for K=32, N=1024), so leaders are identified by comparing index bit
// fields with no storage.
type simpleStatic struct {
	sets, k, constituency int
}

// NewSimpleStatic returns the simple-static selector for a cache with the
// given number of sets and k leader sets. k must divide sets.
func NewSimpleStatic(sets, k int) LeaderSelector {
	validateLeaderGeometry(sets, k)
	return &simpleStatic{sets: sets, k: k, constituency: sets / k}
}

func (s *simpleStatic) Name() string { return "simple-static" }
func (s *simpleStatic) K() int       { return s.k }

func (s *simpleStatic) Slot(set int) (int, bool) {
	c := set / s.constituency
	// Leader of constituency c sits at offset c within it (offset wraps
	// if K exceeds the constituency size).
	if set%s.constituency == c%s.constituency {
		return c, true
	}
	return 0, false
}

func (s *simpleStatic) Reselect() bool { return false }

// randDynamic implements the rand-dynamic policy: one uniformly random
// leader per constituency, re-drawn every epoch (the paper re-invokes it
// every 25M instructions).
type randDynamic struct {
	sets, k, constituency int
	rng                   *trace.RNG
	offsets               []int // leader offset within each constituency
}

// NewRandDynamic returns the rand-dynamic selector seeded with seed.
func NewRandDynamic(sets, k int, seed uint64) LeaderSelector {
	validateLeaderGeometry(sets, k)
	r := &randDynamic{
		sets: sets, k: k, constituency: sets / k,
		rng:     trace.NewRNG(seed),
		offsets: make([]int, k),
	}
	r.draw()
	return r
}

func (r *randDynamic) Name() string { return "rand-dynamic" }
func (r *randDynamic) K() int       { return r.k }

func (r *randDynamic) draw() {
	for i := range r.offsets {
		r.offsets[i] = r.rng.Intn(r.constituency)
	}
}

func (r *randDynamic) Slot(set int) (int, bool) {
	c := set / r.constituency
	if set%r.constituency == r.offsets[c] {
		return c, true
	}
	return 0, false
}

func (r *randDynamic) Reselect() bool {
	old := make([]int, len(r.offsets))
	copy(old, r.offsets)
	r.draw()
	for i := range old {
		if old[i] != r.offsets[i] {
			return true
		}
	}
	return false
}

// ValidateLeaderGeometry checks that k leader sets tile a cache with the
// given number of sets (k must be positive, no larger than sets, and
// divide it evenly). Failures wrap simerr.ErrBadConfig; sim.Config uses
// this to reject bad sampling geometry before construction.
func ValidateLeaderGeometry(sets, k int) error {
	if sets <= 0 || k <= 0 {
		return simerr.New(simerr.ErrBadConfig, "core: sets and leader count must be positive, got sets=%d k=%d", sets, k)
	}
	if k > sets {
		return simerr.New(simerr.ErrBadConfig, "core: %d leader sets exceed %d sets", k, sets)
	}
	if sets%k != 0 {
		return simerr.New(simerr.ErrBadConfig, "core: leader count %d must divide set count %d", k, sets)
	}
	return nil
}

func validateLeaderGeometry(sets, k int) {
	if err := ValidateLeaderGeometry(sets, k); err != nil {
		panic(err)
	}
}
