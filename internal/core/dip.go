package core

import (
	"fmt"

	"mlpcache/internal/cache"

	"mlpcache/internal/trace"

	"mlpcache/internal/simerr"
)

// Extension: the insertion-policy line of work this paper seeded. SBAR's
// leader-set sampling is the mechanism Qureshi et al. generalized a year
// later into set dueling ("Adaptive Insertion Policies for High
// Performance Caching", ISCA 2007): LIP/BIP insertion raced against LRU
// with sampled sets and a PSEL counter. Because this repository's SBAR is
// generic over its two contestants, DIP falls out as a configuration —
// implemented here as a faithfulness check on that generality and as the
// paper's most influential piece of future work.

// BIP is the Bimodal Insertion Policy: evict LRU like plain LRU, but
// insert new blocks at the LRU position except for a 1-in-Epsilon chance
// of the traditional MRU insertion. Thrashing working sets larger than
// the cache keep only the trickle of MRU-inserted blocks — retaining a
// useful fraction instead of churning everything (the same
// thrash-filtering effect LIN achieves via cost, obtained via insertion).
type BIP struct {
	epsilonInv int
	rng        *trace.RNG
}

// NewBIP returns a bimodal-insertion policy that promotes 1 in epsilonInv
// fills to MRU (the ISCA 2007 paper uses 1/32). epsilonInv of 1 is plain
// LRU; very large values approach LIP (LRU-insertion policy).
func NewBIP(epsilonInv int, seed uint64) *BIP {
	if epsilonInv < 1 {
		panic(simerr.New(simerr.ErrBadConfig, "core: BIP epsilonInv must be at least 1, got %d", epsilonInv))
	}
	return &BIP{epsilonInv: epsilonInv, rng: trace.NewRNG(seed | 1)}
}

// Name implements cache.Policy.
func (p *BIP) Name() string { return fmt.Sprintf("bip(1/%d)", p.epsilonInv) }

// Victim implements cache.Policy: plain LRU victim selection via the
// shared rank-0 fast path.
func (p *BIP) Victim(set cache.SetView) int { return set.LRUWay() }

// Touched implements cache.Policy: hits promote normally (the cache
// already moved the line to MRU).
func (p *BIP) Touched(cache.SetView, int) {}

// Filled implements cache.Policy: demote the fresh line to LRU except for
// the bimodal trickle.
func (p *BIP) Filled(set cache.SetView, w int) {
	if p.epsilonInv > 1 && p.rng.Intn(p.epsilonInv) != 0 {
		set.Demote(w)
	}
}

// NewDIP builds the Dynamic Insertion Policy as an SBAR instance: BIP
// raced against LRU over sampled leader sets with a PSEL counter — set
// dueling, one year early. It installs itself as mtd's policy and returns
// the underlying SBAR engine (use its Psel/Stats for telemetry).
//
// Insertion policies have no per-miss cost, so drive fills with a
// constant costQ of 1: the paper observes that a constant cost makes the
// contest degenerate to exactly the miss counting DIP's PSEL uses (a
// costQ of 0 would contribute nothing and disable the duel).
func NewDIP(mtd *cache.Cache, leaderSets int, seed uint64) *SBAR {
	return NewSBAR(mtd, SBARConfig{
		LeaderSets:   leaderSets,
		Experimental: NewBIP(32, seed),
		Baseline:     cache.NewLRU(),
	})
}
