package core

import (
	"testing"

	"mlpcache/internal/cache"
)

func TestBIPInsertsAtLRUMostly(t *testing.T) {
	// With epsilonInv huge, every fill lands at LRU: a cyclic working
	// set one block larger than the cache thrashes completely under
	// LRU, but under LIP-like insertion the incumbent blocks survive.
	lru := cache.New(cache.Config{Sets: 1, Assoc: 4, BlockBytes: 64}, cache.NewLRU())
	bip := cache.New(cache.Config{Sets: 1, Assoc: 4, BlockBytes: 64}, NewBIP(1<<30, 1))
	miss := func(c *cache.Cache) (misses int) {
		for lap := 0; lap < 20; lap++ {
			for b := uint64(0); b < 5; b++ {
				if !c.Probe(b*64, false) {
					misses++
					c.Fill(b*64, 0, false)
				}
			}
		}
		return
	}
	mLRU, mBIP := miss(lru), miss(bip)
	if mLRU != 100 {
		t.Fatalf("cyclic set must fully thrash LRU: %d misses, want 100", mLRU)
	}
	if mBIP >= mLRU/2 {
		t.Fatalf("LRU-insertion should filter the thrash: %d misses vs LRU's %d", mBIP, mLRU)
	}
}

func TestBIPBimodalTrickle(t *testing.T) {
	// With epsilonInv = 2, about half the fills promote to MRU.
	p := NewBIP(2, 7)
	c := cache.New(cache.Config{Sets: 1, Assoc: 8, BlockBytes: 64}, p)
	mru := 0
	const fills = 2000
	for b := uint64(0); b < fills; b++ {
		c.Fill(b*64, 0, false)
		// Find the just-filled block's recency rank.
		for w := 0; w < 8; w++ {
			ln, _ := lineOf(c, b*64)
			_ = ln
			break
		}
		if rankOf(c, b*64) == 7 {
			mru++
		}
	}
	frac := float64(mru) / fills
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("MRU-insertion fraction %.2f, want ≈ 0.5", frac)
	}
}

// rankOf returns the recency rank of the block holding addr (test helper
// over the package-internal SetView).
func rankOf(c *cache.Cache, addr uint64) int {
	set := c.SetOf(addr)
	v := c.ViewSet(set)
	for w := 0; w < v.Ways(); w++ {
		ln := v.Line(w)
		if ln.Valid && c.Contains(addr) {
			// Identify the way by probing cost: instead compare tags
			// via CostOf trick — simpler: find way whose tag matches.
			if tagMatches(c, set, w, addr) {
				return v.RecencyRank(w)
			}
		}
	}
	return -1
}

func tagMatches(c *cache.Cache, set, w int, addr uint64) bool {
	v := c.ViewSet(set)
	// The default indexer tags by block / sets.
	tag := c.BlockOf(addr) / uint64(c.Config().Sets)
	return v.Line(w).Valid && v.Line(w).Tag == tag
}

func lineOf(c *cache.Cache, addr uint64) (cache.Line, bool) {
	set := c.SetOf(addr)
	v := c.ViewSet(set)
	for w := 0; w < v.Ways(); w++ {
		if tagMatches(c, set, w, addr) {
			return v.Line(w), true
		}
	}
	return cache.Line{}, false
}

func TestDIPFiltersThrashViaDueling(t *testing.T) {
	// A cyclic working set slightly larger than the cache: LRU misses
	// everything; DIP's dueling should detect BIP's advantage and cut
	// misses substantially.
	run := func(dip bool) uint64 {
		mtd := cache.New(cache.Config{Sets: 64, Assoc: 4, BlockBytes: 64}, nil)
		var s *SBAR
		if dip {
			s = NewDIP(mtd, 8, 3)
		}
		for lap := 0; lap < 40; lap++ {
			for b := uint64(0); b < 320; b++ { // 5 blocks/set vs 4 ways: all sets thrash
				addr := b * 64
				hit := mtd.Probe(addr, false)
				if s != nil {
					s.OnAccess(addr, false, hit, !hit)
				}
				if !hit {
					// Constant costQ 1: the duel counts misses.
					mtd.Fill(addr, 1, false)
					if s != nil {
						s.OnFill(addr, 1)
					}
				}
			}
		}
		return mtd.Stats().Misses
	}
	lruMisses, dipMisses := run(false), run(true)
	if lruMisses != 40*320 {
		t.Fatalf("LRU should fully thrash: %d misses", lruMisses)
	}
	if dipMisses*10 > lruMisses*9 {
		t.Fatalf("DIP misses %d vs LRU %d: dueling never engaged", dipMisses, lruMisses)
	}
}

func TestBIPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBIP(0, 1)
}
