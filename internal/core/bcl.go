package core

import (
	"fmt"

	"mlpcache/internal/cache"

	"mlpcache/internal/simerr"
)

// Alternative cost-aware replacement engines, after Jeong & Dubois'
// cost-sensitive LRU family, which the paper cites as drop-in CARE
// engines ("In general, any cost-sensitive replacement scheme, including
// the ones proposed in [8], can be used for implementing an MLP-aware
// replacement policy", Section 2). Both consume the same stored cost_q
// the MSHR cost-calculation logic produces; only the victim function
// differs from LIN's linear score.

// BCL is the basic cost-sensitive LRU: walk up the LRU stack from the
// bottom, at most Depth positions, and evict the first block whose cost_q
// is below Threshold; if every inspected block is expensive, fall back to
// plain LRU. Unlike LIN, BCL never lets cost override recency beyond its
// exploration depth, so a flood of expensive blocks degrades gracefully
// to LRU instead of starving the working set.
type BCL struct {
	cache.Base
	threshold uint8
	depth     int
	scratch   bclScratch
}

// bclScratch holds the reusable rank buffers of the BCL victim walk so
// the eviction path stays allocation-free.
type bclScratch struct {
	ranks  []int
	byRank []int
}

// NewBCL returns the basic cost-sensitive LRU engine. threshold is the
// cost_q at or above which a block is "expensive" (the paper's
// quantization makes 4 a natural split: λ·cost_q ≥ recency range); depth
// is how far up the LRU stack to search for a cheap victim.
func NewBCL(threshold uint8, depth int) *BCL {
	if depth < 1 {
		panic(simerr.New(simerr.ErrBadConfig, "core: BCL depth must be at least 1, got %d", depth))
	}
	return &BCL{threshold: threshold, depth: depth}
}

// Name implements cache.Policy.
func (p *BCL) Name() string { return fmt.Sprintf("bcl(t=%d,d=%d)", p.threshold, p.depth) }

// Victim implements cache.Policy.
func (p *BCL) Victim(set cache.SetView) int {
	return bclVictim(set, p.threshold, p.depth, &p.scratch)
}

// bclVictim is the shared BCL victim walk: cheapest-first within depth,
// LRU fallback. One Ranks pass orders the ways by stack position; the
// inverse map byRank[r] then drives the bottom-up cost probe in O(A).
func bclVictim(set cache.SetView, threshold uint8, depth int, sc *bclScratch) int {
	ways := set.Ways()
	for w := 0; w < ways; w++ {
		if !set.Line(w).Valid {
			return w
		}
	}
	sc.ranks = set.Ranks(sc.ranks)
	if cap(sc.byRank) < ways {
		sc.byRank = make([]int, ways)
	}
	byRank := sc.byRank[:ways]
	for w, r := range sc.ranks {
		byRank[r] = w
	}
	if depth > ways {
		depth = ways
	}
	for r := 0; r < depth; r++ {
		w := byRank[r]
		if set.Line(w).CostQ < threshold {
			return w
		}
	}
	return byRank[0]
}

// DCL is the dynamic variant: BCL plus a feedback loop that measures
// whether protecting expensive blocks is paying off. Whenever BCL skips
// the LRU block to evict a cheaper, more recent one, the skipped block is
// remembered; if it is re-referenced before leaving the set the
// protection "won" (the saved block's cost would have been paid again),
// otherwise it "lost" (a useless block squatted in the set). A saturating
// counter of wins and losses gates the cost-sensitivity: when losses
// dominate, DCL decays to plain LRU until wins recover — the same
// self-correcting character SBAR provides between whole policies, applied
// inside a single engine.
type DCL struct {
	threshold uint8
	depth     int
	counter   int // saturating in [-dclSat, +dclSat]
	protected map[int]dclWatch
	stats     DCLStats
	scratch   bclScratch
}

// dclWatch tracks one protected block: its tag and how many further
// victim decisions the set has taken since protection began.
type dclWatch struct {
	tag uint64
	age int
}

// dclAgeLimit is the number of subsequent evictions in the same set a
// protected block may survive without a re-reference before the
// protection counts as a loss.
const dclAgeLimit = 32

// DCLStats counts the feedback loop's activity.
type DCLStats struct {
	Protections uint64
	Wins        uint64
	Losses      uint64
}

const dclSat = 63

// NewDCL returns the dynamic cost-sensitive LRU engine.
func NewDCL(threshold uint8, depth int) *DCL {
	if depth < 1 {
		panic(simerr.New(simerr.ErrBadConfig, "core: DCL depth must be at least 1, got %d", depth))
	}
	return &DCL{
		threshold: threshold,
		depth:     depth,
		protected: make(map[int]dclWatch),
	}
}

// Name implements cache.Policy.
func (p *DCL) Name() string { return fmt.Sprintf("dcl(t=%d,d=%d)", p.threshold, p.depth) }

// Stats returns the feedback counters.
func (p *DCL) Stats() DCLStats { return p.stats }

// Enabled reports whether cost-sensitivity is currently active.
func (p *DCL) Enabled() bool { return p.counter >= 0 }

// Victim implements cache.Policy.
func (p *DCL) Victim(set cache.SetView) int {
	// LRUWay prefers the lowest-numbered invalid way, exactly like the
	// per-way reference scan this replaces.
	lruWay := set.LRUWay()
	if !set.Line(lruWay).Valid {
		return lruWay
	}
	// Age any active watch in this set; a protection that survives too
	// many evictions without a re-reference is judged a loss even if
	// the block is still resident.
	if watch, ok := p.protected[set.Index]; ok {
		watch.age++
		if watch.age > dclAgeLimit {
			p.loss()
			delete(p.protected, set.Index)
		} else {
			p.protected[set.Index] = watch
		}
	}
	if !p.Enabled() {
		p.counter++ // decay back toward enabling
		return lruWay
	}
	w := bclVictim(set, p.threshold, p.depth, &p.scratch)
	if w != lruWay {
		// The LRU block was protected: remember it and judge later.
		if watch, ok := p.protected[set.Index]; ok && watch.tag == set.Line(lruWay).Tag {
			// Already being watched; nothing to update.
		} else {
			if ok {
				// A different block was being watched and never won.
				p.loss()
			}
			p.protected[set.Index] = dclWatch{tag: set.Line(lruWay).Tag}
			p.stats.Protections++
		}
	} else if watch, ok := p.protected[set.Index]; ok && set.Line(lruWay).Tag == watch.tag {
		// The watched block is finally evicted without a win: loss.
		p.loss()
		delete(p.protected, set.Index)
	}
	return w
}

// Touched implements cache.Policy: a re-reference to a protected block is
// a win for cost-sensitivity.
func (p *DCL) Touched(set cache.SetView, w int) {
	if watch, ok := p.protected[set.Index]; ok && set.Line(w).Tag == watch.tag {
		p.win()
		delete(p.protected, set.Index)
	}
}

// Filled implements cache.Policy.
func (p *DCL) Filled(set cache.SetView, w int) {
	// If the watched block's way was overwritten (e.g. refreshed fill),
	// stop watching a stale tag.
	if watch, ok := p.protected[set.Index]; ok && set.Line(w).Tag == watch.tag {
		delete(p.protected, set.Index)
	}
}

func (p *DCL) win() {
	p.stats.Wins++
	if p.counter < dclSat {
		p.counter += 2
	}
}

func (p *DCL) loss() {
	p.stats.Losses++
	if p.counter > -dclSat {
		p.counter--
	}
}
