// Package core implements the paper's contribution: MLP-aware cache
// replacement. It provides the cost quantizer (Figure 3b), the Linear
// (LIN) replacement policy and the generic cost-aware replacement engine
// it instantiates (Section 5), the PSEL saturating selector counter, the
// Contest Based Selection hybrids CBS-local and CBS-global (Section 6.1),
// Sampling Based Adaptive Replacement (Section 6.4) with both leader-set
// selection policies, and the hardware storage-overhead model behind the
// paper's 1854-byte claim.
//
// The run-time computation of the MLP-based cost itself (Algorithm 1)
// lives with the miss status holding registers in internal/mshr, since
// that is the hardware structure that tracks in-flight misses; this
// package consumes the resulting cost values.
package core

import "mlpcache/internal/simerr"

// CostQBits is the width of the quantized MLP-based cost stored in each
// tag entry (Figure 3b uses 3 bits).
const CostQBits = 3

// CostQMax is the largest quantized cost value.
const CostQMax = 1<<CostQBits - 1

// QuantizeStep is the width in cycles of each quantization interval.
const QuantizeStep = 60

// Quantize converts an MLP-based cost in cycles to the 3-bit quantized
// value of Figure 3b: 0-59 cycles → 0, 60-119 → 1, ..., 360-419 → 6,
// 420 and above → 7.
func Quantize(mlpCost float64) uint8 {
	if mlpCost <= 0 {
		return 0
	}
	q := int(mlpCost / QuantizeStep)
	if q > CostQMax {
		q = CostQMax
	}
	return uint8(q)
}

// QuantizeWith generalizes Quantize to an arbitrary bit width, used by the
// quantization-granularity ablation. bits must be in [1, 8].
func QuantizeWith(mlpCost float64, bits int) uint8 {
	if bits < 1 || bits > 8 {
		panic(simerr.New(simerr.ErrBadConfig, "core: QuantizeWith bits must be in [1,8], got %d", bits))
	}
	if mlpCost <= 0 {
		return 0
	}
	max := 1<<bits - 1
	// Keep the full-scale point aligned with the 3-bit scheme: the top
	// code still means "at or above 420 cycles".
	step := float64(QuantizeStep*8) / float64(max+1)
	q := int(mlpCost / step)
	if q > max {
		q = max
	}
	return uint8(q)
}
