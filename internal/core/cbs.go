package core

import (
	"fmt"

	"mlpcache/internal/cache"
	"mlpcache/internal/metrics"
)

// CBSScope selects between the per-set and global variants of Contest
// Based Selection (Section 6.2).
type CBSScope int

const (
	// CBSLocal keeps one PSEL counter per cache set.
	CBSLocal CBSScope = iota
	// CBSGlobal keeps a single PSEL counter updated by every set. The
	// paper found a 7-bit counter works better for this variant.
	CBSGlobal
)

func (s CBSScope) String() string {
	if s == CBSLocal {
		return "local"
	}
	return "global"
}

// CBSConfig parameterizes Contest Based Selection.
type CBSConfig struct {
	Scope    CBSScope
	PselBits int // default: 6 for local, 7 for global
	Lambda   int // LIN λ, default 4
}

// CBS implements Contest Based Selection (Section 6.1): two full
// auxiliary tag directories, ATD-LIN and ATD-LRU, observe the entire
// access stream and compete. PSEL accumulates the quantized cost of each
// contest the policies split (one hits where the other misses); the main
// tag directory replaces with whichever policy PSEL favours.
type CBS struct {
	mtd     *cache.Cache
	atdLin  *cache.Cache
	atdLru  *cache.Cache
	psel    []*PSEL // one per set for CBSLocal, a single element for CBSGlobal
	cfg     CBSConfig
	lin     cache.Policy
	lru     cache.Policy
	pending map[uint64]cbsPending
	stats   HybridStats
	tr      metrics.Tracer
}

// SetTracer installs an event tracer: every PSEL movement emits a
// "psel.update" event carrying the set index (always 0 under the global
// scope). The tracer propagates to the MTD-facing LIN contestant so
// victim decisions are traced; the ATD contestants stay untraced to keep
// the stream about decisions that affect the real cache. A nil tracer
// (the default) disables emission.
func (c *CBS) SetTracer(tr metrics.Tracer) {
	c.tr = tr
	if ca, ok := c.lin.(*CostAware); ok {
		ca.SetTracer(tr)
	}
}

type cbsPending struct {
	set     int
	delta   int8 // +1: increment by cost (LIN better); -1: decrement; 0: tie
	fillLin bool
	fillLru bool
}

// NewCBS builds a CBS engine shadowing mtd and installs itself as mtd's
// replacement policy. Both ATDs replicate the MTD's full geometry
// (tag-only), which is exactly the hardware expense SBAR exists to avoid.
func NewCBS(mtd *cache.Cache, cfg CBSConfig) *CBS {
	if cfg.PselBits == 0 {
		if cfg.Scope == CBSGlobal {
			cfg.PselBits = 7
		} else {
			cfg.PselBits = 6
		}
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 4
	}
	mcfg := mtd.Config()
	atdGeom := cache.Config{Sets: mcfg.Sets, Assoc: mcfg.Assoc, BlockBytes: mcfg.BlockBytes}
	c := &CBS{
		mtd:     mtd,
		atdLin:  cache.New(atdGeom, NewLIN(cfg.Lambda)),
		atdLru:  cache.New(atdGeom, cache.NewLRU()),
		cfg:     cfg,
		lin:     NewLIN(cfg.Lambda),
		lru:     cache.NewLRU(),
		pending: make(map[uint64]cbsPending),
	}
	n := 1
	if cfg.Scope == CBSLocal {
		n = mcfg.Sets
	}
	c.psel = make([]*PSEL, n)
	for i := range c.psel {
		c.psel[i] = NewPSEL(cfg.PselBits)
	}
	mtd.SetPolicy(c)
	return c
}

func (c *CBS) pselFor(set int) *PSEL {
	if c.cfg.Scope == CBSGlobal {
		return c.psel[0]
	}
	return c.psel[set]
}

// Name implements cache.Policy.
func (c *CBS) Name() string {
	return fmt.Sprintf("cbs-%s(psel=%db,λ=%d)", c.cfg.Scope, c.cfg.PselBits, c.cfg.Lambda)
}

// Victim implements cache.Policy.
func (c *CBS) Victim(set cache.SetView) int {
	if c.pselFor(set.Index).MSB() {
		c.stats.LinVictims++
		return c.lin.Victim(set)
	}
	c.stats.LruVictims++
	return c.lru.Victim(set)
}

// active returns the policy PSEL currently selects for the set.
func (c *CBS) active(set int) cache.Policy {
	if c.pselFor(set).MSB() {
		return c.lin
	}
	return c.lru
}

// Touched implements cache.Policy, forwarding to the selected policy
// (stateful engines depend on these hooks).
func (c *CBS) Touched(set cache.SetView, w int) { c.active(set.Index).Touched(set, w) }

// Filled implements cache.Policy (see Touched).
func (c *CBS) Filled(set cache.SetView, w int) { c.active(set.Index).Filled(set, w) }

// OnAccess implements Hybrid.
func (c *CBS) OnAccess(addr uint64, write, mtdHit, primaryMiss bool) {
	linHit := c.atdLin.Probe(addr, write)
	lruHit := c.atdLru.Probe(addr, write)
	var delta int8
	switch {
	case linHit && !lruHit:
		delta = +1 // LIN doing better: PSEL += cost of ATD-LRU's miss
	case !linHit && lruHit:
		delta = -1 // LRU doing better: PSEL -= cost of ATD-LIN's miss
	}
	set := c.mtd.SetOf(addr)
	if mtdHit {
		// The block is not (re)fetched from memory, so the cost of
		// the losing ATD's miss comes from the MTD tag entry.
		cost, _ := c.mtd.CostOf(addr)
		c.apply(set, delta, cost)
		if !linHit {
			c.atdLin.Fill(addr, cost, false)
		}
		if !lruHit {
			c.atdLru.Fill(addr, cost, false)
		}
		return
	}
	if primaryMiss {
		c.pending[c.mtd.BlockOf(addr)] = cbsPending{
			set: set, delta: delta, fillLin: !linHit, fillLru: !lruHit,
		}
	}
}

// OnFill implements Hybrid.
func (c *CBS) OnFill(addr uint64, costQ uint8) {
	block := c.mtd.BlockOf(addr)
	p, ok := c.pending[block]
	if !ok {
		return
	}
	delete(c.pending, block)
	c.apply(p.set, p.delta, costQ)
	if p.fillLin {
		c.atdLin.Fill(addr, costQ, false)
	}
	if p.fillLru {
		c.atdLru.Fill(addr, costQ, false)
	}
}

func (c *CBS) apply(set int, delta int8, cost uint8) {
	switch delta {
	case +1:
		c.pselFor(set).Add(int(cost))
		c.stats.PselIncrements++
	case -1:
		c.pselFor(set).Add(-int(cost))
		c.stats.PselDecrements++
	}
	if delta != 0 && c.tr != nil {
		c.tr.Emit(metrics.Event{
			Type: metrics.EventPselUpdate, Set: set,
			Delta: int(delta) * int(cost), Value: c.pselFor(set).Value(),
		})
	}
}

// AdvanceEpoch implements Hybrid (CBS has no epoch state).
func (c *CBS) AdvanceEpoch() {}

// UsingLIN implements Hybrid.
func (c *CBS) UsingLIN(set int) bool { return c.pselFor(set).MSB() }

// Stats returns the selection counters.
func (c *CBS) Stats() HybridStats { return c.stats }

// Psel exposes the selector counter for the given set.
func (c *CBS) Psel(set int) *PSEL { return c.pselFor(set) }

// AuditInvariants cross-checks CBS's bookkeeping and returns a
// description of every violated invariant (empty when consistent): every
// PSEL value stays inside its bit width, both auxiliary directories
// replicate the MTD geometry, and every pending contest is recorded
// against the set its block maps to. It never mutates state.
func (c *CBS) AuditInvariants() []string {
	var out []string
	for i, p := range c.psel {
		if v, max := p.Value(), p.Max(); v < 0 || v > max {
			out = append(out, fmt.Sprintf("psel[%d] value %d outside [0,%d]", i, v, max))
		}
	}
	mcfg := c.mtd.Config()
	for _, atd := range []struct {
		name string
		c    *cache.Cache
	}{{"ATD-LIN", c.atdLin}, {"ATD-LRU", c.atdLru}} {
		acfg := atd.c.Config()
		if acfg.Sets != mcfg.Sets || acfg.Assoc != mcfg.Assoc {
			out = append(out, fmt.Sprintf("%s geometry %dx%d differs from MTD %dx%d",
				atd.name, acfg.Sets, acfg.Assoc, mcfg.Sets, mcfg.Assoc))
		}
	}
	for block, p := range c.pending {
		if want := c.mtd.SetOf(block * mcfg.BlockBytes); p.set != want {
			out = append(out, fmt.Sprintf("pending block %#x recorded for set %d, maps to set %d", block, p.set, want))
		}
	}
	return out
}
