package core

import (
	"strings"
	"testing"
	"testing/quick"

	"mlpcache/internal/cache"
	"mlpcache/internal/trace"
)

// sbarHarness drives an SBAR-managed cache through the memsys protocol
// without timing: misses are serviced immediately with a caller-chosen
// quantized cost.
type sbarHarness struct {
	mtd  *cache.Cache
	sbar *SBAR
}

func newSBARHarness(t *testing.T, cfg SBARConfig, sets, assoc int) *sbarHarness {
	t.Helper()
	mtd := cache.New(cache.Config{Sets: sets, Assoc: assoc, BlockBytes: 64}, nil)
	return &sbarHarness{mtd: mtd, sbar: NewSBAR(mtd, cfg)}
}

// access performs one block access; on a miss the block is filled with
// costQ. Returns whether the MTD hit.
func (h *sbarHarness) access(block uint64, costQ uint8) bool {
	addr := block * 64
	hit := h.mtd.Probe(addr, false)
	h.sbar.OnAccess(addr, false, hit, !hit)
	if !hit {
		h.mtd.Fill(addr, costQ, false)
		h.sbar.OnFill(addr, costQ)
	}
	return hit
}

func TestSBARLeaderSetsAlwaysUseLIN(t *testing.T) {
	h := newSBARHarness(t, SBARConfig{LeaderSets: 2, Lambda: 4}, 4, 2)
	// Force PSEL to favour LRU; leader sets must still replace with LIN.
	h.sbar.Psel().Add(-100)
	// Leader sets for K=2, N=4: constituency 2, leaders at 0 and 3.
	if !h.sbar.UsingLIN(0) || !h.sbar.UsingLIN(3) {
		t.Fatal("leader sets must report LIN regardless of PSEL")
	}
	if h.sbar.UsingLIN(1) || h.sbar.UsingLIN(2) {
		t.Fatal("follower sets must follow PSEL (LRU here)")
	}
	// In leader set 0: a cost-7 block at LRU must survive a fill (LIN
	// behaviour), even though PSEL selects LRU.
	h.access(0, 7) // block 0 → set 0, expensive
	h.access(4, 0) // block 4 → set 0, cheap, MRU
	h.access(8, 0) // set 0 full → LIN evicts block 4 (score 15+0 vs 0+28... rank1+0=1)
	if !h.mtd.Contains(0 * 64) {
		t.Fatal("leader set evicted the protected cost-7 block")
	}
}

func TestSBARFollowersObeyPSEL(t *testing.T) {
	h := newSBARHarness(t, SBARConfig{LeaderSets: 2, Lambda: 4}, 4, 2)
	// Follower set 1 (blocks ≡ 1 mod 4). With PSEL high (LIN): cost-7
	// block survives; with PSEL low (LRU): it is evicted.
	h.sbar.Psel().Add(+100)
	h.access(1, 7)
	h.access(5, 0)
	h.access(9, 0)
	if !h.mtd.Contains(1 * 64) {
		t.Fatal("follower under LIN evicted the cost-7 block")
	}

	h2 := newSBARHarness(t, SBARConfig{LeaderSets: 2, Lambda: 4}, 4, 2)
	h2.sbar.Psel().Add(-100)
	h2.access(1, 7)
	h2.access(5, 0)
	h2.access(9, 0)
	if h2.mtd.Contains(1 * 64) {
		t.Fatal("follower under LRU kept the LRU-position block")
	}
}

func TestSBARDecrementRule(t *testing.T) {
	// Figure 6: leader (LIN) miss + ATD-LRU hit → PSEL -= cost_q of the
	// miss, applied when the miss is serviced.
	h := newSBARHarness(t, SBARConfig{LeaderSets: 2, Lambda: 4}, 4, 2)
	start := h.sbar.Psel().Value()
	// Leader set 0. Fill blocks 0 (q7) and 4 (q0): both in MTD and ATD.
	h.access(0, 7)
	h.access(4, 1)
	// Insert block 8 (q0): LIN evicts block 4 (cheap); LRU (ATD) evicts
	// block 0 (oldest).
	h.access(8, 1)
	// Access block 4 again: MTD misses (LIN evicted it), ATD hits → the
	// paper's decrement case. Service cost 5.
	if h.access(4, 5) {
		t.Fatal("expected MTD miss for block 4")
	}
	st := h.sbar.Stats()
	if st.PselDecrements != 1 {
		t.Fatalf("decrements = %d, want 1", st.PselDecrements)
	}
	if got := h.sbar.Psel().Value(); got != start-5 {
		t.Fatalf("PSEL = %d, want %d (decrement by the serviced cost)", got, start-5)
	}
}

func TestSBARIncrementRule(t *testing.T) {
	// Figure 6 mirror: leader hit + ATD-LRU miss → PSEL += cost_q taken
	// from the MTD tag entry (footnote 6: not serviced by memory).
	h := newSBARHarness(t, SBARConfig{LeaderSets: 2, Lambda: 4}, 4, 2)
	h.access(0, 7) // leader set 0, protected by LIN
	h.access(4, 1)
	h.access(8, 1) // ATD-LRU evicts block 0; MTD-LIN evicts a cheap block
	start := h.sbar.Psel().Value()
	// Access block 0: MTD hits (LIN kept it), ATD misses → increment by
	// the MTD-stored cost (7).
	if !h.access(0, 0) {
		t.Fatal("expected MTD hit for the protected block")
	}
	st := h.sbar.Stats()
	if st.PselIncrements != 1 {
		t.Fatalf("increments = %d, want 1", st.PselIncrements)
	}
	if got := h.sbar.Psel().Value(); got != start+7 {
		t.Fatalf("PSEL = %d, want %d", got, start+7)
	}
}

func TestSBARTiesLeavePSELUnchanged(t *testing.T) {
	h := newSBARHarness(t, SBARConfig{LeaderSets: 2, Lambda: 4}, 4, 2)
	start := h.sbar.Psel().Value()
	h.access(0, 3) // both miss
	h.access(0, 3) // both hit
	if got := h.sbar.Psel().Value(); got != start {
		t.Fatalf("PSEL moved to %d on tie outcomes", got)
	}
	st := h.sbar.Stats()
	if st.TieBothMiss != 1 || st.TieBothHit != 1 {
		t.Fatalf("tie counters %+v", st)
	}
}

func TestSBARFollowerAccessesDoNotUpdatePSEL(t *testing.T) {
	h := newSBARHarness(t, SBARConfig{LeaderSets: 2, Lambda: 4}, 4, 2)
	start := h.sbar.Psel().Value()
	for b := uint64(0); b < 40; b++ {
		h.access(b*4+1, 7) // all in follower set 1
	}
	if h.sbar.Psel().Value() != start {
		t.Fatal("follower sets must not update PSEL")
	}
	if h.sbar.Stats().LeaderAccesses != 0 {
		t.Fatal("follower accesses counted as leader accesses")
	}
}

func TestSBARConvergesToLRUUnderDeadPollution(t *testing.T) {
	// The bzip2/parser/mgrid scenario in miniature: a hot loop that LRU
	// keeps, plus dead cost-7 blocks that LIN wrongly protects. PSEL
	// must saturate toward LRU.
	h := newSBARHarness(t, SBARConfig{}, 1024, 16)
	rng := trace.NewRNG(3)
	cold := uint64(1 << 24)
	for round := 0; round < 40; round++ {
		for b := uint64(0); b < 4000; b++ {
			h.access(b, 1)
			if rng.Bool(0.5) {
				h.access(cold, 7)
				cold++
			}
		}
	}
	if h.sbar.Psel().MSB() {
		t.Fatalf("PSEL = %d still selects LIN under dead pollution", h.sbar.Psel().Value())
	}
	if h.sbar.UsingLIN(5) {
		t.Fatal("followers should be using LRU")
	}
}

func TestSBARConvergesToLINWhenCostIsRepeatable(t *testing.T) {
	// The mcf scenario in miniature: an expensive region that thrashes
	// under LRU but fits if protected, against a streaming region.
	h := newSBARHarness(t, SBARConfig{}, 1024, 16)
	streamNext := uint64(1 << 24)
	for round := 0; round < 60; round++ {
		for b := uint64(0); b < 6000; b++ {
			h.access(b, 7) // expensive reused region
			// Two streaming fills per reused access → LRU thrashes
			// the reused region.
			for s := 0; s < 2; s++ {
				h.access(streamNext%40000+1<<23, 0)
				streamNext++
			}
		}
	}
	if !h.sbar.Psel().MSB() {
		t.Fatalf("PSEL = %d still selects LRU for a LIN-friendly workload", h.sbar.Psel().Value())
	}
}

func TestSBARAdvanceEpochRandDynamic(t *testing.T) {
	sel := NewRandDynamic(1024, 32, 11)
	mtd := cache.New(cache.Config{Sets: 1024, Assoc: 16, BlockBytes: 64}, nil)
	s := NewSBAR(mtd, SBARConfig{Selector: sel})
	oldATD := s.ATD()
	s.AdvanceEpoch()
	if s.Stats().EpochReselects == 0 {
		t.Skip("reselect drew identical leaders (astronomically unlikely)")
	}
	if s.ATD() == oldATD {
		t.Fatal("epoch reselect must rebuild the ATD")
	}
}

func TestSBARAdvanceEpochStaticIsNoop(t *testing.T) {
	mtd := cache.New(cache.Config{Sets: 64, Assoc: 4, BlockBytes: 64}, nil)
	s := NewSBAR(mtd, SBARConfig{LeaderSets: 8})
	old := s.ATD()
	s.AdvanceEpoch()
	if s.ATD() != old || s.Stats().EpochReselects != 0 {
		t.Fatal("simple-static epoch must be a no-op")
	}
}

func TestSBARName(t *testing.T) {
	mtd := cache.New(cache.Config{Sets: 64, Assoc: 4, BlockBytes: 64}, nil)
	s := NewSBAR(mtd, SBARConfig{LeaderSets: 8})
	if s.Name() == "" {
		t.Fatal("empty name")
	}
	if mtd.Policy() != s {
		t.Fatal("SBAR must install itself as the MTD policy")
	}
}

func TestSBARGenericContestants(t *testing.T) {
	// SBAR is a generic hybrid engine: race FIFO against LRU.
	mtd := cache.New(cache.Config{Sets: 64, Assoc: 4, BlockBytes: 64}, nil)
	s := NewSBAR(mtd, SBARConfig{
		LeaderSets:   8,
		Experimental: cache.NewFIFO(),
		Baseline:     cache.NewLRU(),
	})
	if got := s.Name(); !strings.Contains(got, "fifo") || !strings.Contains(got, "lru") {
		t.Fatalf("Name %q should identify both contestants", got)
	}
	// Leader sets must replace with the experimental policy: in leader
	// set 0, FIFO evicts the first-filled block even if recently used.
	h := &sbarHarness{mtd: mtd, sbar: s}
	h.access(0, 0)   // set 0 (leader for K=8, N=64)
	h.access(64, 0)  // same set
	h.access(128, 0) // same set
	h.access(192, 0) // set 0 now full
	h.access(0, 0)   // touch block 0 (protects it under LRU, not FIFO)
	h.access(256, 0) // forces an eviction
	if mtd.Contains(0) {
		t.Fatal("FIFO leader set should have evicted the first-filled block")
	}
}

// Property: whatever access pattern is thrown at it, SBAR's PSEL stays in
// range, its pending map never grows beyond the number of in-flight
// primary misses it was told about, and victim selection never panics.
func TestSBARRobustnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := trace.NewRNG(uint64(seed) | 1)
		h := newSBARHarness(t, SBARConfig{LeaderSets: 4}, 64, 4)
		for i := 0; i < 3000; i++ {
			block := uint64(rng.Intn(400))
			h.access(block, uint8(rng.Intn(8)))
			if v := h.sbar.Psel().Value(); v < 0 || v > h.sbar.Psel().Max() {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 25); err != nil {
		t.Fatal(err)
	}
}

// quickCheck adapts testing/quick with a bounded count.
func quickCheck(f any, count int) error {
	return quick.Check(f, &quick.Config{MaxCount: count})
}
