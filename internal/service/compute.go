package service

import (
	"bytes"
	"context"

	"mlpcache/internal/experiments"
	"mlpcache/internal/faultinject"
	"mlpcache/internal/metrics"
	"mlpcache/internal/sim"
	"mlpcache/internal/workload"
)

// flipBitsSkip spares the telemetry stream's leading bytes from chaos
// corruption: enough of the v1 header line / v2 magic survives that
// decoders fail loudly inside the body instead of rejecting the whole
// document as the wrong format.
const flipBitsSkip = 8

// compute executes the job's simulation(s) and renders the response
// body. Cancellation flows through ctx into sim.RunContext's
// cooperative check. arena is the calling worker's private component
// pool (rescache.Do runs this closure on the winning caller's own
// goroutine, so exclusivity holds even under singleflight).
func (s *Server) compute(ctx context.Context, j Job, arena *sim.Arena) ([]byte, error) {
	if j.Experiment != "" {
		return s.computeExperiment(ctx, j)
	}
	w, ok := workload.ByName(j.Bench)
	if !ok {
		// Validate admits only known benchmarks; reaching this is a bug
		// the worker's recover boundary would still contain.
		panic("service: unvalidated benchmark " + j.Bench)
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = j.Instructions
	cfg.Policy = j.spec()
	cfg.Arena = arena
	if s.cfg.Chaos.DRAMJitterMax > 0 {
		cfg.Faults = &faultinject.Plan{
			Seed:          s.cfg.Chaos.Seed ^ j.Seed,
			DRAMJitterMax: s.cfg.Chaos.DRAMJitterMax,
		}
	}

	var buf bytes.Buffer
	var tracer metrics.FileTracer
	if j.Telemetry != TelemetryMetrics {
		format := "v1"
		if j.Telemetry == TelemetryEventsV2 {
			format = "v2"
		}
		hdr := metrics.RunHeader{Bench: j.Bench, Policy: j.spec().String(), Seed: j.Seed}
		t, err := metrics.NewFileTracer(&buf, format, hdr)
		if err != nil {
			return nil, err
		}
		tracer = t
		cfg.Trace = tracer
	}

	res, err := sim.RunContext(ctx, cfg, w.Build(j.Seed))
	if err != nil {
		return nil, err
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return nil, err
		}
		body := buf.Bytes()
		if n := s.cfg.Chaos.FlipTelemetryBits; n > 0 {
			body = faultinject.FlipBits(body, s.cfg.Chaos.Seed^j.Seed, n, flipBitsSkip)
		}
		return body, nil
	}
	if err := res.Metrics().WriteJSONL(&buf, res.Header(j.Bench, j.Seed)); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// computeExperiment runs a whole experiment table on a job-scoped
// runner: one worker (the service pool is the parallelism source), the
// job's context for cancellation, and a bounded memo table.
func (s *Server) computeExperiment(ctx context.Context, j Job) ([]byte, error) {
	r := experiments.NewRunner(j.Instructions, j.Seed)
	r.Benchmarks = j.Benchmarks
	r.Workers = 1
	r.Context = ctx
	r.Capacity = s.cfg.CacheCapacity
	var buf bytes.Buffer
	if err := experiments.RunByIDJSON(r, j.Experiment, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
