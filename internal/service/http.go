package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"mlpcache/internal/metrics"
	"mlpcache/internal/simerr"
)

// maxJobBody bounds a job request's JSON body.
const maxJobBody = 1 << 20

// Handler returns the service's HTTP surface:
//
//	POST /v1/jobs  — submit one Job (JSON body), blocking until its
//	                 outcome; 200 with the result body, 400 on a bad
//	                 job, 429 when admission rejects it, 503 while
//	                 draining, 504 on deadline, 500 on internal failure.
//	GET  /healthz  — liveness: 200 while the process runs.
//	GET  /readyz   — readiness: 200 accepting, 503 draining.
//	GET  /metrics  — the service.* metric family as one
//	                 mlpcache.metrics/v1 JSONL document.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		s.MetricsSnapshot().WriteJSONL(w, metrics.RunHeader{})
	})
	return mux
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var job Job
	dec := json.NewDecoder(io.LimitReader(r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := s.Submit(r.Context(), job)
	if out.Err != nil {
		writeError(w, statusFor(out.Err), out.Err)
		return
	}
	w.Header().Set("Content-Type", out.ContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(out.Body)
}

// statusFor maps the typed error taxonomy onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClientCap):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, simerr.ErrCancelled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, simerr.ErrBadConfig) || errors.Is(err, simerr.ErrUnknownBenchmark):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the JSON error envelope every non-200 jobs response uses.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}
