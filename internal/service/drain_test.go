package service

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"mlpcache/internal/simerr"
)

// TestSignalDrain is the table-driven shutdown contract:
//
//   - one SIGTERM: admission stops, the in-flight job finishes, the
//     daemon exits 0;
//   - a second SIGTERM mid-drain: remaining jobs are force-cancelled
//     (still answered) and the daemon exits nonzero.
//
// Serve takes its signals from a plain channel, so the whole table runs
// in-process and race-clean — no child processes, no real signal
// delivery.
func TestSignalDrain(t *testing.T) {
	cases := []struct {
		name         string
		signals      int
		instructions uint64
		drainTimeout time.Duration
		wantExit     int
		wantJobDone  bool // job completes (true) vs cancelled (false)
	}{
		{
			name:         "single signal drains and exits zero",
			signals:      1,
			instructions: 800_000,
			drainTimeout: 2 * time.Minute,
			wantExit:     0,
			wantJobDone:  true,
		},
		{
			name:         "second signal forces nonzero exit",
			signals:      2,
			instructions: 50_000_000,
			drainTimeout: 2 * time.Minute,
			wantExit:     1,
			wantJobDone:  false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Config{Workers: 1, DefaultDeadline: 5 * time.Minute, MaxDeadline: 5 * time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			sigs := make(chan os.Signal, 2)
			var logbuf bytes.Buffer
			exited := make(chan int, 1)
			go func() { exited <- Serve(s, l, sigs, tc.drainTimeout, &logbuf) }()

			// Put one slow job in flight, then signal.
			done := make(chan Outcome, 1)
			go func() {
				done <- s.Submit(context.Background(), Job{Bench: "mcf", Instructions: tc.instructions})
			}()
			waitInflight(t, s, 1)
			for i := 0; i < tc.signals; i++ {
				sigs <- syscall.SIGTERM
				time.Sleep(10 * time.Millisecond) // let the first select fire before the second signal
			}

			var code int
			select {
			case code = <-exited:
			case <-time.After(3 * time.Minute):
				t.Fatal("daemon never exited")
			}
			if code != tc.wantExit {
				t.Fatalf("exit code = %d, want %d\nlog:\n%s", code, tc.wantExit, logbuf.String())
			}

			var out Outcome
			select {
			case out = <-done:
			case <-time.After(time.Minute):
				t.Fatal("in-flight job was lost during shutdown")
			}
			if tc.wantJobDone {
				if out.Err != nil {
					t.Fatalf("drained job failed: %v", out.Err)
				}
			} else if !errors.Is(out.Err, simerr.ErrCancelled) {
				t.Fatalf("forced job err = %v, want ErrCancelled", out.Err)
			}

			// Admission is closed either way.
			late := s.Submit(context.Background(), Job{Bench: "micro.isolated", Instructions: 5_000})
			if !errors.Is(late.Err, ErrDraining) {
				t.Fatalf("post-shutdown submit err = %v, want ErrDraining", late.Err)
			}
			if !strings.Contains(logbuf.String(), "draining") {
				t.Fatalf("log missing drain announcement:\n%s", logbuf.String())
			}
		})
	}
}

// TestDrainDeadlineForcesStragglers checks Drain itself: a job that
// outlives the drain deadline is cancelled, accounted, and the drain
// still returns (exit 0 is the caller's decision).
func TestDrainDeadlineForcesStragglers(t *testing.T) {
	s, err := New(Config{Workers: 1, DefaultDeadline: 5 * time.Minute, MaxDeadline: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Outcome, 1)
	go func() {
		done <- s.Submit(context.Background(), Job{Bench: "mcf", Instructions: 50_000_000})
	}()
	waitInflight(t, s, 1)
	start := time.Now()
	s.Drain(50 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("drain with a 50ms deadline took %v", elapsed)
	}
	out := <-done
	if !errors.Is(out.Err, simerr.ErrCancelled) {
		t.Fatalf("straggler err = %v, want ErrCancelled", out.Err)
	}
	c := s.Snapshot()
	if c.DrainForced == 0 {
		t.Fatal("forced-drain counter never moved")
	}
	if c.Admitted != c.Completed+c.Failed+c.Cancelled {
		t.Fatalf("drain lost a job: %+v", c)
	}
}
