package service

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestChaosAccounting is the PR's headline robustness check: ≥1000
// concurrent HTTP jobs against a live listener with every fault
// injector armed — transient failures, worker panics, DRAM jitter,
// telemetry bit-flips — plus deliberately short deadlines and enough
// clients to trip the per-client cap. Every request must come back with
// a terminal status (no hangs, no lost jobs), client-observed outcomes
// must reconcile exactly with the server's counters, and a SIGTERM
// afterwards must drain to exit 0.
func TestChaosAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is simulation-heavy")
	}
	const jobs = 1000

	s, err := New(Config{
		Workers:        8,
		QueueDepth:     64,
		PerClientCap:   48,
		MaxRetries:     2,
		RetryBaseDelay: 100 * time.Microsecond,
		RetryMaxDelay:  time.Millisecond,
		CacheCapacity:  64,
		Chaos: Chaos{
			Seed:              7,
			FailPermille:      120,
			PanicPermille:     20,
			DRAMJitterMax:     16,
			FlipTelemetryBits: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	go func() { exited <- Serve(s, l, sigs, 30*time.Second, io.Discard) }()
	base := "http://" + l.Addr().String()

	benches := []string{"micro.isolated", "micro.parallel", "micro.figure1", "micro.pollution", "micro.stores"}
	policies := []string{"lru", "lin", "sbar"}
	telemetry := []string{TelemetryMetrics, TelemetryEventsV1, TelemetryEventsV2}

	type result struct {
		status int
		err    error
	}
	results := make([]result, jobs)
	client := &http.Client{Timeout: 2 * time.Minute}
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deadline := 0
			if i%17 == 0 {
				deadline = 1 // near-certain 504
			}
			body := fmt.Sprintf(
				`{"bench":%q,"policy":%q,"instructions":%d,"seed":%d,"telemetry":%q,"deadline_ms":%d,"client":"c%d"}`,
				benches[i%len(benches)], policies[i%len(policies)],
				4_000+(i%7)*1_000, uint64(i%11)+1, telemetry[i%len(telemetry)], deadline, i%5)
			resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				results[i] = result{err: err}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results[i] = result{status: resp.StatusCode}
		}(i)
	}
	wg.Wait()

	counts := map[int]int{}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("job %d got a transport error (lost job): %v", i, r.err)
		}
		counts[r.status]++
	}
	t.Logf("status counts: %v", counts)
	total := 0
	for code, n := range counts {
		switch code {
		case 200, 429, 500, 503, 504:
			total += n
		default:
			t.Fatalf("unexpected status %d (%d jobs)", code, n)
		}
	}
	if total != jobs {
		t.Fatalf("accounted for %d of %d jobs", total, jobs)
	}

	c := s.Snapshot()
	t.Logf("server counters: %+v", c)
	if got := c.Completed + c.Failed + c.Cancelled; got != c.Admitted {
		t.Fatalf("admitted %d != completed %d + failed %d + cancelled %d",
			c.Admitted, c.Completed, c.Failed, c.Cancelled)
	}
	if want := uint64(counts[200]); c.Completed != want {
		t.Fatalf("completed = %d, client saw %d 200s", c.Completed, want)
	}
	if want := uint64(counts[429]); c.RejectedQueue+c.RejectedClient != want {
		t.Fatalf("rejections queue=%d client=%d, client saw %d 429s",
			c.RejectedQueue, c.RejectedClient, want)
	}
	if want := uint64(counts[503]); c.RejectedDraining != want {
		t.Fatalf("draining rejections = %d, client saw %d 503s", c.RejectedDraining, want)
	}
	if want := uint64(counts[504]); c.Cancelled != want {
		t.Fatalf("cancelled = %d, client saw %d 504s", c.Cancelled, want)
	}
	if c.Panics == 0 {
		t.Fatal("panic injection armed but no worker panic recovered")
	}
	if c.Retried == 0 {
		t.Fatal("transient-fault injection armed but nothing retried")
	}
	if counts[200] == 0 {
		t.Fatal("no job survived the chaos sweep")
	}

	// Clean SIGTERM drain after the storm.
	sigs <- syscall.SIGTERM
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("drain exit code = %d, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon failed to drain")
	}
}
