package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mlpcache/internal/metrics"
	"mlpcache/internal/simerr"
)

// newTestServer builds a started server and registers cleanup.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitInflight polls until n jobs are executing (or fails the test).
func waitInflight(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.InFlight() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d in-flight jobs (have %d)", n, s.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitReturnsMetricsDocument(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	out := s.Submit(context.Background(), Job{Bench: "micro.isolated", Instructions: 10_000})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	lines := strings.Split(strings.TrimSpace(string(out.Body)), "\n")
	var hdr metrics.RunHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if hdr.Schema != metrics.MetricsSchema || hdr.Bench != "micro.isolated" {
		t.Fatalf("header = %+v, want metrics/v1 for micro.isolated", hdr)
	}
	if len(lines) < 10 {
		t.Fatalf("metrics document has only %d lines", len(lines))
	}
}

func TestSubmitValidates(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cases := []Job{
		{Bench: "nope"},
		{Bench: "mcf", Policy: "nope"},
		{Bench: "mcf", Instructions: 1 << 60},
		{Bench: "mcf", Telemetry: "nope"},
		{Experiment: "fig99"},
		{Experiment: "fig9", Bench: "mcf"},
	}
	for _, j := range cases {
		out := s.Submit(context.Background(), j)
		if out.Err == nil {
			t.Fatalf("job %+v admitted, want validation error", j)
		}
		if !errors.Is(out.Err, simerr.ErrBadConfig) && !errors.Is(out.Err, simerr.ErrUnknownBenchmark) {
			t.Fatalf("job %+v: err = %v, want typed bad-config", j, out.Err)
		}
	}
	if c := s.Snapshot(); c.Admitted != 0 {
		t.Fatalf("invalid jobs were admitted: %+v", c)
	}
}

// TestResultCacheDedup checks identical configurations share one
// simulation (singleflight) and later submitters hit the cache.
func TestResultCacheDedup(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	job := Job{Bench: "micro.parallel", Instructions: 40_000}
	var wg sync.WaitGroup
	bodies := make([][]byte, 8)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := s.Submit(context.Background(), job)
			if out.Err != nil {
				t.Errorf("submit %d: %v", i, out.Err)
				return
			}
			bodies[i] = out.Body
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if !bytes.Equal(b, bodies[0]) {
			t.Fatalf("body %d diverged from body 0", i)
		}
	}
	c := s.Snapshot()
	if c.CacheMisses != 1 {
		t.Fatalf("8 identical jobs computed %d times, want 1", c.CacheMisses)
	}
	if c.CacheHits != 7 {
		t.Fatalf("cache hits = %d, want 7", c.CacheHits)
	}
}

// TestCacheEviction checks the LRU bound on the result cache.
func TestCacheEviction(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheCapacity: 1})
	for _, seed := range []uint64{1, 2, 1} {
		out := s.Submit(context.Background(), Job{Bench: "micro.isolated", Instructions: 10_000, Seed: seed})
		if out.Err != nil {
			t.Fatal(out.Err)
		}
	}
	c := s.Snapshot()
	if c.CacheEvictions == 0 {
		t.Fatal("capacity-1 cache never evicted across 2 distinct keys")
	}
	if c.CacheMisses != 3 {
		t.Fatalf("misses = %d, want 3 (the third job's key was evicted)", c.CacheMisses)
	}
}

// TestDeadlineCancelsJob checks a short deadline stops a long
// simulation with the typed sentinel.
func TestDeadlineCancelsJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	out := s.Submit(context.Background(),
		Job{Bench: "mcf", Instructions: 40_000_000, DeadlineMS: 30})
	if !errors.Is(out.Err, simerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", out.Err)
	}
	if c := s.Snapshot(); c.Cancelled != 1 {
		t.Fatalf("cancelled counter = %d, want 1", c.Cancelled)
	}
}

// TestQueueFullRejects checks bounded-queue admission: with one busy
// worker and a depth-1 queue, a third concurrent job bounces with
// ErrQueueFull.
func TestQueueFullRejects(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, DefaultDeadline: time.Minute})
	slow := Job{Bench: "mcf", Instructions: 20_000_000}
	done := make(chan Outcome, 2)
	go func() { done <- s.Submit(context.Background(), slow) }()
	waitInflight(t, s, 1)
	go func() { done <- s.Submit(context.Background(), Job{Bench: "mcf", Instructions: 20_000_000, Seed: 2}) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c := s.Snapshot()
		if c.Admitted == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second job never queued: %+v", c)
		}
		time.Sleep(time.Millisecond)
	}
	out := s.Submit(context.Background(), Job{Bench: "mcf", Instructions: 20_000_000, Seed: 3})
	if !errors.Is(out.Err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", out.Err)
	}
	s.Close() // cancel the two slow jobs
	<-done
	<-done
	c := s.Snapshot()
	if c.RejectedQueue != 1 || c.Admitted != 2 {
		t.Fatalf("counters = %+v, want 2 admitted + 1 queue rejection", c)
	}
}

// TestPerClientCap checks one client cannot monopolize the system while
// another still gets in.
func TestPerClientCap(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8, PerClientCap: 1, DefaultDeadline: time.Minute})
	done := make(chan Outcome, 1)
	go func() {
		done <- s.Submit(context.Background(), Job{Bench: "mcf", Instructions: 20_000_000, Client: "greedy"})
	}()
	waitInflight(t, s, 1)
	out := s.Submit(context.Background(), Job{Bench: "parser", Instructions: 10_000, Client: "greedy"})
	if !errors.Is(out.Err, ErrClientCap) {
		t.Fatalf("second greedy job: err = %v, want ErrClientCap", out.Err)
	}
	ok := make(chan Outcome, 1)
	go func() {
		ok <- s.Submit(context.Background(), Job{Bench: "micro.isolated", Instructions: 10_000, Client: "modest"})
	}()
	select {
	case out := <-ok:
		if out.Err != nil {
			t.Fatalf("other client's job failed: %v", out.Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("other client's job starved behind the cap")
	}
	s.Close()
	<-done
}

// TestRetryAbsorbsTransientFaults checks injected transient failures
// are retried to success within the budget.
func TestRetryAbsorbsTransientFaults(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 2, MaxRetries: 5,
		RetryBaseDelay: time.Microsecond, RetryMaxDelay: 10 * time.Microsecond,
		RetryBudgetBurst: 64, RetryBudgetRatio: 1,
		Chaos: Chaos{Seed: 11, FailPermille: 350},
	})
	okCount := 0
	for i := 0; i < 20; i++ {
		out := s.Submit(context.Background(),
			Job{Bench: "micro.isolated", Instructions: 5_000, Seed: uint64(i + 1)})
		if out.Err == nil {
			okCount++
		} else if !errors.Is(out.Err, ErrTransient) {
			t.Fatalf("job %d failed non-transiently: %v", i, out.Err)
		}
	}
	c := s.Snapshot()
	if c.Retried == 0 {
		t.Fatalf("35%% failure rate but zero retries: %+v", c)
	}
	if okCount == 0 {
		t.Fatal("no job survived retry")
	}
	if c.Completed+c.Failed != 20 {
		t.Fatalf("accounting: completed %d + failed %d != 20", c.Completed, c.Failed)
	}
}

// TestRetryBudgetBrakes checks the storm brake: with the bucket dry,
// transient failures fail fast instead of retrying.
func TestRetryBudgetBrakes(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, MaxRetries: 5,
		RetryBudgetBurst: 0.5, RetryBudgetRatio: 0.001,
		Chaos: Chaos{Seed: 3, FailPermille: 1000},
	})
	out := s.Submit(context.Background(), Job{Bench: "micro.isolated", Instructions: 5_000})
	if !errors.Is(out.Err, ErrTransient) {
		t.Fatalf("err = %v, want wrapped ErrTransient", out.Err)
	}
	c := s.Snapshot()
	if c.BudgetExhausted != 1 || c.Retried != 0 {
		t.Fatalf("counters = %+v, want 1 budget-exhausted failure with 0 retries", c)
	}
}

// TestPanicIsolation checks a panicking job converts to ErrInternal for
// that job alone and the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Chaos: Chaos{Seed: 5, PanicPermille: 500}})
	var panicked, completed int
	for i := 0; i < 30; i++ {
		out := s.Submit(context.Background(),
			Job{Bench: "micro.isolated", Instructions: 5_000, Seed: uint64(i + 1)})
		switch {
		case out.Err == nil:
			completed++
		case errors.Is(out.Err, simerr.ErrInternal):
			panicked++
		default:
			t.Fatalf("job %d: unexpected error %v", i, out.Err)
		}
	}
	if panicked == 0 || completed == 0 {
		t.Fatalf("panicked=%d completed=%d: want both nonzero (seeded 50%% panic rate)", panicked, completed)
	}
	c := s.Snapshot()
	if c.Panics != uint64(panicked) || c.Completed != uint64(completed) {
		t.Fatalf("counters %+v disagree with observed panicked=%d completed=%d", c, panicked, completed)
	}
}

// TestExperimentJob checks a whole experiment table runs as one job and
// returns mlpcache.table/v1 JSON.
func TestExperimentJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := newTestServer(t, Config{Workers: 1})
	out := s.Submit(context.Background(),
		Job{Experiment: "tab3", Benchmarks: []string{"mcf"}, Instructions: 30_000})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	var doc struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(out.Body, &doc); err != nil {
		t.Fatalf("experiment body: %v", err)
	}
	if doc.Schema != "mlpcache.table/v1" {
		t.Fatalf("schema = %q, want mlpcache.table/v1", doc.Schema)
	}
}

// TestEventsTelemetryJob checks the events-v2 response decodes back to
// the run's event stream (no chaos corruption configured).
func TestEventsTelemetryJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	out := s.Submit(context.Background(),
		Job{Bench: "micro.isolated", Instructions: 10_000, Telemetry: TelemetryEventsV2})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	r, err := metrics.NewEventsReader(bytes.NewReader(out.Body))
	if err != nil {
		t.Fatalf("v2 body rejected: %v", err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if err := r.Err(); err != nil {
		t.Fatalf("v2 decode: %v", err)
	}
	if n == 0 {
		t.Fatal("v2 stream decoded zero events")
	}
	if c := s.Snapshot(); c.CacheHits+c.CacheMisses != 0 {
		t.Fatalf("event-stream job touched the result cache: %+v", c)
	}
}

// TestHTTPEndpoints drives the full handler surface over real HTTP.
func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, b.String()
	}

	if resp, _ := get("/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, b.String()
	}

	if resp, body := post(`{"bench":"micro.isolated","instructions":10000}`); resp.StatusCode != 200 {
		t.Fatalf("job = %d: %s", resp.StatusCode, body)
	} else if !strings.Contains(body, metrics.MetricsSchema) {
		t.Fatalf("job body is not a metrics document: %.120s", body)
	}
	if resp, body := post(`{"bench":"nope"}`); resp.StatusCode != 400 {
		t.Fatalf("bad bench = %d: %s", resp.StatusCode, body)
	}
	if resp, body := post(`{"bench":"mcf","unknown_field":1}`); resp.StatusCode != 400 {
		t.Fatalf("unknown field = %d: %s", resp.StatusCode, body)
	}
	if resp, body := post(`{"bench":"mcf","instructions":40000000,"deadline_ms":20}`); resp.StatusCode != 504 {
		t.Fatalf("deadline job = %d: %s", resp.StatusCode, body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{metrics.MetricsSchema, "service.jobs.admitted", "service.cache.hit_rate"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}

	// Drain flips readiness and rejects new jobs with 503.
	s.Drain(time.Second)
	if resp, _ := get("/readyz"); resp.StatusCode != 503 {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if resp, body := post(`{"bench":"mcf"}`); resp.StatusCode != 503 {
		t.Fatalf("draining job = %d: %s", resp.StatusCode, body)
	}
}

// TestMetricsSnapshotNames pins the service.* catalog: every metric the
// snapshot registers appears with its kind in docs/OBSERVABILITY.md (the
// bidirectional contract test in the repo root does the cross-check;
// this guards the set stays stable from the package's side).
func TestMetricsSnapshotNames(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	reg := s.MetricsSnapshot()
	if reg.Len() != 17 {
		t.Fatalf("service metric family has %d entries, want 17: %v", reg.Len(), reg.Names())
	}
	for _, name := range reg.Names() {
		if !strings.HasPrefix(name, "service.") {
			t.Fatalf("metric %q outside the service.* namespace", name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Workers: -1},
		{QueueDepth: -1},
		{MaxRetries: -1},
		{Chaos: Chaos{FailPermille: 2000}},
		{Chaos: Chaos{PanicPermille: -2}},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, simerr.ErrBadConfig) {
			t.Fatalf("config %+v: err = %v, want ErrBadConfig", cfg, err)
		}
	}
}

func TestJobKeyStable(t *testing.T) {
	a := Job{Bench: "mcf", Policy: "lin", Lambda: 4, Instructions: 1000, Seed: 1}
	b := a
	b.DeadlineMS = 500
	b.Client = "someone"
	b.Telemetry = TelemetryMetrics
	if a.Key() != b.Key() {
		t.Fatal("deadline/client/telemetry leaked into the cache key")
	}
	c := a
	c.Seed = 2
	if a.Key() == c.Key() {
		t.Fatal("seed change did not change the cache key")
	}
	if len(a.Key()) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", a.Key())
	}
}

func TestSubmitCallerContextCancels(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Outcome, 1)
	go func() { done <- s.Submit(ctx, Job{Bench: "mcf", Instructions: 40_000_000}) }()
	waitInflight(t, s, 1)
	cancel()
	select {
	case out := <-done:
		if !errors.Is(out.Err, simerr.ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled after caller hangup", out.Err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("caller cancellation never reached the job")
	}
}

func ExampleServer() {
	s, _ := New(Config{Workers: 1})
	defer s.Close()
	out := s.Submit(context.Background(), Job{Bench: "micro.isolated", Instructions: 5_000})
	fmt.Println(out.Err, len(out.Body) > 0)
	// Output: <nil> true
}
