package service

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"
)

// Serve runs the server's HTTP surface on l and blocks until shutdown,
// returning the process exit code:
//
//   - First signal on sigs: admission stops (readyz flips to 503),
//     in-flight and queued jobs drain under drainTimeout (stragglers
//     past the deadline are cancelled but still answered), the listener
//     closes, exit 0.
//   - Second signal mid-drain: every remaining job is force-cancelled
//     and Serve returns 1 immediately after they are accounted.
//   - Listener failure: exit 1.
//
// logw receives one-line progress messages (the daemon's stderr).
// cmd/mlpserve and the drain tests drive this directly — the tests feed
// sigs from a plain channel, so the table runs in-process and
// race-clean.
func Serve(s *Server, l net.Listener, sigs <-chan os.Signal, drainTimeout time.Duration, logw io.Writer) int {
	if logw == nil {
		logw = io.Discard
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(l) }()
	fmt.Fprintf(logw, "mlpserve: listening on http://%s\n", l.Addr())

	select {
	case err := <-serveErr:
		fmt.Fprintf(logw, "mlpserve: listener failed: %v\n", err)
		s.Close()
		return 1
	case sig := <-sigs:
		fmt.Fprintf(logw, "mlpserve: caught %v, draining (deadline %v; signal again to force)\n", sig, drainTimeout)
	}

	drained := make(chan struct{})
	go func() {
		s.Drain(drainTimeout)
		close(drained)
	}()
	code := 0
	select {
	case <-drained:
		c := s.Snapshot()
		fmt.Fprintf(logw, "mlpserve: drained: %d completed, %d failed, %d cancelled of %d admitted\n",
			c.Completed, c.Failed, c.Cancelled, c.Admitted)
	case sig := <-sigs:
		fmt.Fprintf(logw, "mlpserve: caught second %v, forcing shutdown\n", sig)
		s.Close()
		<-drained
		code = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	return code
}
