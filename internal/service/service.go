// Package service runs the paper's sweep family — the benchmark×policy
// simulations behind the LIN results of Figure 5 and the SBAR results
// of Figure 9 — as a long-lived daemon: concurrent jobs over HTTP with
// admission control (bounded queue, per-client caps), per-job deadlines
// plumbed into the simulator's cooperative cancellation check, capped
// jittered retry with a token-bucket budget for transient faults,
// worker-pool crash isolation (a panicking job converts to
// simerr.ErrInternal without taking the daemon down), a bounded
// LRU+singleflight result cache keyed by a stable config hash, and
// graceful signal-driven drain. See docs/ROBUSTNESS.md for the fault
// model and docs/OBSERVABILITY.md for the service.* metric catalog.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlpcache/internal/faultinject"
	"mlpcache/internal/metrics"
	"mlpcache/internal/rescache"
	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
)

// Admission and chaos sentinels. Job errors wrap exactly one of these
// or a simerr sentinel; the HTTP layer maps them onto status codes.
var (
	// ErrQueueFull rejects a job because the bounded queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("job queue full")
	// ErrClientCap rejects a job because its client already has too
	// many jobs in the system (HTTP 429).
	ErrClientCap = errors.New("per-client cap reached")
	// ErrDraining rejects a job because the server is shutting down
	// (HTTP 503).
	ErrDraining = errors.New("server draining")
	// ErrTransient marks a chaos-injected transient fault; the retry
	// layer absorbs these until the attempt or budget limit.
	ErrTransient = errors.New("transient injected fault")
)

// Chaos configures deterministic fault injection on the service path;
// the zero value injects nothing. Rates are seeded through one
// faultinject.Injector, so a failing run replays.
type Chaos struct {
	// Seed drives every chaos decision.
	Seed uint64
	// FailPermille injects ErrTransient into that fraction (0..1000) of
	// job attempts, exercising the retry/backoff/budget path.
	FailPermille int
	// PanicPermille makes that fraction of job attempts panic inside
	// the worker, exercising crash isolation.
	PanicPermille int
	// DRAMJitterMax forwards a faultinject DRAM-jitter plan into every
	// simulation the service runs.
	DRAMJitterMax uint64
	// FlipTelemetryBits flips that many random bits in each streamed
	// events response body (sparing a small header prefix), exercising
	// client-side decode robustness.
	FlipTelemetryBits int
}

// Active reports whether any chaos is configured.
func (c Chaos) Active() bool {
	return c.FailPermille > 0 || c.PanicPermille > 0 || c.DRAMJitterMax > 0 || c.FlipTelemetryBits > 0
}

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 64).
	QueueDepth int
	// PerClientCap bounds one client's jobs in the system — queued plus
	// running (default 16; negative disables the cap).
	PerClientCap int
	// DefaultInstructions is the per-run budget when a job names none
	// (default 200k).
	DefaultInstructions uint64
	// MaxInstructions is the admission ceiling on a job's budget
	// (default 50M).
	MaxInstructions uint64
	// DefaultDeadline bounds a job's wall time when it names none
	// (default 60s).
	DefaultDeadline time.Duration
	// MaxDeadline is the ceiling on requested deadlines (default 5m).
	MaxDeadline time.Duration
	// MaxRetries caps transient-fault retries per job (default 3).
	MaxRetries int
	// RetryBaseDelay is the first backoff step (default 5ms); each
	// retry doubles it up to RetryMaxDelay (default 100ms), jittered
	// uniformly in [delay/2, delay].
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// RetryBudgetRatio earns that many retry tokens per admitted job
	// (default 0.2); RetryBudgetBurst caps the bucket (default 16).
	// An empty bucket fails a transient job instead of retrying — the
	// storm brake.
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// CacheCapacity bounds the result cache (default 512 entries;
	// negative disables caching).
	CacheCapacity int
	// Chaos configures fault injection (zero: none).
	Chaos Chaos
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.PerClientCap == 0 {
		c.PerClientCap = 16
	}
	if c.DefaultInstructions == 0 {
		c.DefaultInstructions = 200_000
	}
	if c.MaxInstructions == 0 {
		c.MaxInstructions = 50_000_000
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBaseDelay == 0 {
		c.RetryBaseDelay = 5 * time.Millisecond
	}
	if c.RetryMaxDelay == 0 {
		c.RetryMaxDelay = 100 * time.Millisecond
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.2
	}
	if c.RetryBudgetBurst == 0 {
		c.RetryBudgetBurst = 16
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 512
	}
	return c
}

// Validate checks the resolved configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Workers < 1 {
		return simerr.New(simerr.ErrBadConfig, "service: workers must be >= 1, got %d", c.Workers)
	}
	if c.QueueDepth < 1 {
		return simerr.New(simerr.ErrBadConfig, "service: queue depth must be >= 1, got %d", c.QueueDepth)
	}
	if c.MaxRetries < 0 {
		return simerr.New(simerr.ErrBadConfig, "service: max retries must be >= 0, got %d", c.MaxRetries)
	}
	for _, p := range []int{c.Chaos.FailPermille, c.Chaos.PanicPermille} {
		if p < 0 || p > 1000 {
			return simerr.New(simerr.ErrBadConfig, "service: chaos permille %d out of [0,1000]", p)
		}
	}
	return nil
}

// task is one admitted job traveling through the queue.
type task struct {
	job      Job
	ctx      context.Context
	cancel   context.CancelFunc
	stopLink func() bool // detaches the caller-context cancellation link
	done     chan Outcome
}

// Outcome is a job's terminal state: a body on success, a typed error
// otherwise, plus how many retries it consumed.
type Outcome struct {
	Body        []byte
	ContentType string
	Err         error
	Retries     int
}

// Server is the sweep service: admission, worker pool, retry, result
// cache, drain. Build with New; it starts accepting immediately.
type Server struct {
	cfg   Config
	queue chan *task
	cache *rescache.Cache[[]byte]

	baseCtx   context.Context
	cancelAll context.CancelFunc

	// admitMu serializes the draining flag flip against job admission:
	// once Drain (or Close) sets draining under the lock, no Submit can
	// add to the jobs WaitGroup, so the drain wait cannot race a late
	// admission into a stopped worker pool.
	admitMu     sync.Mutex
	draining    atomic.Bool
	stopWorkers chan struct{}
	stopOnce    sync.Once
	workerWG    sync.WaitGroup
	jobs        sync.WaitGroup

	clientMu sync.Mutex
	clients  map[string]int

	retryMu   sync.Mutex
	budget    float64
	jitterRNG uint64

	chaosMu sync.Mutex
	chaos   *faultinject.Injector

	admitted         atomic.Uint64
	completed        atomic.Uint64
	failed           atomic.Uint64
	cancelled        atomic.Uint64
	rejectedQueue    atomic.Uint64
	rejectedClient   atomic.Uint64
	rejectedDraining atomic.Uint64
	retried          atomic.Uint64
	budgetExhausted  atomic.Uint64
	panics           atomic.Uint64
	drainForced      atomic.Uint64
	inflight         atomic.Int64
}

// New builds and starts a Server: its worker pool is live and Submit /
// the HTTP handler admit jobs until Drain or Close.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		queue:       make(chan *task, cfg.QueueDepth),
		baseCtx:     ctx,
		cancelAll:   cancel,
		stopWorkers: make(chan struct{}),
		clients:     make(map[string]int),
		budget:      cfg.RetryBudgetBurst,
		jitterRNG:   cfg.Chaos.Seed ^ 0x5deece66d,
		chaos:       faultinject.NewInjector(faultinject.Plan{Seed: cfg.Chaos.Seed}),
	}
	if cfg.CacheCapacity > 0 {
		s.cache = rescache.New[[]byte](cfg.CacheCapacity)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// Config returns the server's resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// Submit runs one job through admission, the queue and the worker pool,
// blocking until its terminal Outcome. ctx is the caller's context
// (e.g. the HTTP request's): its cancellation propagates into the job,
// but Submit always returns a fully accounted Outcome — a job is never
// silently dropped.
func (s *Server) Submit(ctx context.Context, job Job) Outcome {
	job.normalize(s.cfg)
	if err := job.Validate(s.cfg); err != nil {
		return Outcome{Err: err}
	}
	if !s.acquireClient(job.Client) {
		s.rejectedClient.Add(1)
		return Outcome{Err: fmt.Errorf("service: client %q: %w", job.Client, ErrClientCap)}
	}
	s.admitMu.Lock()
	if s.draining.Load() {
		s.admitMu.Unlock()
		s.releaseClient(job.Client)
		s.rejectedDraining.Add(1)
		return Outcome{Err: fmt.Errorf("service: %w", ErrDraining)}
	}
	s.jobs.Add(1)
	s.admitMu.Unlock()
	jctx, cancel := context.WithTimeout(s.baseCtx, job.deadline(s.cfg))
	t := &task{
		job:    job,
		ctx:    jctx,
		cancel: cancel,
		done:   make(chan Outcome, 1),
	}
	t.stopLink = context.AfterFunc(ctx, cancel)
	select {
	case s.queue <- t:
	default:
		s.jobs.Done()
		t.release()
		s.releaseClient(job.Client)
		s.rejectedQueue.Add(1)
		return Outcome{Err: fmt.Errorf("service: %w", ErrQueueFull)}
	}
	s.admitted.Add(1)
	s.earnRetryTokens()
	return <-t.done
}

// release tears down the task's context plumbing.
func (t *task) release() {
	t.stopLink()
	t.cancel()
}

func (s *Server) acquireClient(client string) bool {
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	if s.cfg.PerClientCap > 0 && s.clients[client] >= s.cfg.PerClientCap {
		return false
	}
	s.clients[client]++
	return true
}

func (s *Server) releaseClient(client string) {
	s.clientMu.Lock()
	if s.clients[client]--; s.clients[client] <= 0 {
		delete(s.clients, client)
	}
	s.clientMu.Unlock()
}

// worker pulls tasks until the drain machinery stops the pool. Every
// dequeued task gets exactly one Outcome. Each worker owns a private
// simulation arena for the lifetime of the pool, so sustained traffic
// recycles cache arrays, MSHR files and blockmap tables instead of
// rebuilding them per job; a panicking job never poisons the arena
// because components are only pooled on clean simulation exit.
func (s *Server) worker() {
	defer s.workerWG.Done()
	arena := sim.NewArena()
	for {
		select {
		case t := <-s.queue:
			s.inflight.Add(1)
			out := s.execute(t, arena)
			s.inflight.Add(-1)
			t.release()
			s.releaseClient(t.job.Client)
			t.done <- out
			s.jobs.Done()
		case <-s.stopWorkers:
			return
		}
	}
}

// execute runs one task to a terminal outcome: success, typed failure,
// cancellation, or retried success — with the worker's recover boundary
// converting any panic into simerr.ErrInternal for this job alone.
func (s *Server) execute(t *task, arena *sim.Arena) (out Outcome) {
	attempt := 0
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.failed.Add(1)
			out = Outcome{
				Err:     simerr.New(simerr.ErrInternal, "service: job panicked: %v", r),
				Retries: attempt,
			}
		}
	}()
	for ; ; attempt++ {
		if err := t.ctx.Err(); err != nil {
			s.cancelled.Add(1)
			return Outcome{Err: simerr.Wrap(simerr.ErrCancelled, err, "service: job cancelled"), Retries: attempt}
		}
		body, ctype, err := s.runOnce(t, arena)
		if err == nil {
			s.completed.Add(1)
			return Outcome{Body: body, ContentType: ctype, Retries: attempt}
		}
		if errors.Is(err, simerr.ErrCancelled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			s.cancelled.Add(1)
			if !errors.Is(err, simerr.ErrCancelled) {
				err = simerr.Wrap(simerr.ErrCancelled, err, "service: job cancelled")
			}
			return Outcome{Err: err, Retries: attempt}
		}
		if !errors.Is(err, ErrTransient) || attempt >= s.cfg.MaxRetries {
			s.failed.Add(1)
			return Outcome{Err: err, Retries: attempt}
		}
		if !s.spendRetryToken() {
			s.budgetExhausted.Add(1)
			s.failed.Add(1)
			return Outcome{Err: fmt.Errorf("service: retry budget exhausted: %w", err), Retries: attempt}
		}
		s.retried.Add(1)
		if !sleepCtx(t.ctx, s.backoff(attempt)) {
			s.cancelled.Add(1)
			return Outcome{
				Err:     simerr.Wrap(simerr.ErrCancelled, t.ctx.Err(), "service: job cancelled in backoff"),
				Retries: attempt + 1,
			}
		}
	}
}

// runOnce is one attempt: chaos draws first (so retries see fresh
// draws), then the cached or direct compute.
func (s *Server) runOnce(t *task, arena *sim.Arena) ([]byte, string, error) {
	if fail, pan := s.chaosDraw(); fail {
		return nil, "", fmt.Errorf("service: chaos: %w", ErrTransient)
	} else if pan {
		panic(simerr.New(simerr.ErrInternal, "service: chaos-injected panic"))
	}
	ctype := contentType(t.job)
	if s.cache != nil && cacheable(t.job) {
		body, err := s.cache.Do(t.ctx, t.job.Key(), func() ([]byte, error) {
			return s.compute(t.ctx, t.job, arena)
		})
		return body, ctype, err
	}
	body, err := s.compute(t.ctx, t.job, arena)
	return body, ctype, err
}

// cacheable excludes event-stream jobs: their body is the run's
// telemetry stream, which exists to observe a fresh execution.
func cacheable(j Job) bool { return j.Telemetry == TelemetryMetrics }

func contentType(j Job) string {
	switch {
	case j.Experiment != "":
		return "application/json"
	case j.Telemetry == TelemetryEventsV2:
		return "application/octet-stream"
	default:
		return "application/x-ndjson"
	}
}

// chaosDraw makes this attempt's injection decisions under one lock so
// the seeded sequence is consumed atomically.
func (s *Server) chaosDraw() (fail, panicNow bool) {
	if !s.cfg.Chaos.Active() {
		return false, false
	}
	s.chaosMu.Lock()
	defer s.chaosMu.Unlock()
	fail = s.chaos.Chance(s.cfg.Chaos.FailPermille)
	if !fail {
		panicNow = s.chaos.Chance(s.cfg.Chaos.PanicPermille)
	}
	return fail, panicNow
}

// backoff returns the jittered exponential delay for a retry attempt:
// base<<attempt capped at RetryMaxDelay, then jittered uniformly into
// [delay/2, delay] from a seeded LCG so retry timing is replayable.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBaseDelay << uint(attempt)
	if d > s.cfg.RetryMaxDelay || d <= 0 {
		d = s.cfg.RetryMaxDelay
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	s.retryMu.Lock()
	s.jitterRNG = s.jitterRNG*6364136223846793005 + 1442695040888963407
	r := s.jitterRNG >> 33
	s.retryMu.Unlock()
	return time.Duration(half + int64(r%uint64(half+1)))
}

// sleepCtx sleeps d unless ctx dies first; reports whether it slept
// fully.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// earnRetryTokens credits the token bucket on admission.
func (s *Server) earnRetryTokens() {
	s.retryMu.Lock()
	s.budget += s.cfg.RetryBudgetRatio
	if s.budget > s.cfg.RetryBudgetBurst {
		s.budget = s.cfg.RetryBudgetBurst
	}
	s.retryMu.Unlock()
}

// spendRetryToken takes one token; false means the budget is dry and
// the retry storm brake engages.
func (s *Server) spendRetryToken() bool {
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	if s.budget < 1 {
		return false
	}
	s.budget--
	return true
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports how many jobs are executing on workers right now.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Drain stops admission and waits for every admitted job to reach its
// outcome. If timeout elapses first, remaining jobs are cancelled (they
// still complete with accounted ErrCancelled outcomes — nothing is
// dropped) and the drain is recorded as forced. The worker pool is
// stopped before returning.
func (s *Server) Drain(timeout time.Duration) error {
	s.admitMu.Lock()
	s.draining.Store(true)
	s.admitMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case <-done:
		case <-timer.C:
			s.drainForced.Add(1)
			s.cancelAll()
			<-done
		}
	} else {
		<-done
	}
	s.stopOnce.Do(func() { close(s.stopWorkers) })
	s.workerWG.Wait()
	return nil
}

// Close force-stops the server: admission off, every in-flight job
// cancelled (each still yields an accounted outcome), workers joined.
// Safe after Drain; used by tests and the second-signal path.
func (s *Server) Close() {
	s.admitMu.Lock()
	s.draining.Store(true)
	s.admitMu.Unlock()
	s.cancelAll()
	s.jobs.Wait()
	s.stopOnce.Do(func() { close(s.stopWorkers) })
	s.workerWG.Wait()
}

// Counters is a point-in-time accounting snapshot. The invariant the
// chaos tests enforce: Admitted == Completed + Failed + Cancelled once
// the server is drained, with rejections accounted separately.
type Counters struct {
	Admitted, Completed, Failed, Cancelled          uint64
	RejectedQueue, RejectedClient, RejectedDraining uint64
	Retried, BudgetExhausted, Panics, DrainForced   uint64
	CacheHits, CacheMisses, CacheEvictions          uint64
}

// Snapshot reads the counters.
func (s *Server) Snapshot() Counters {
	c := Counters{
		Admitted:         s.admitted.Load(),
		Completed:        s.completed.Load(),
		Failed:           s.failed.Load(),
		Cancelled:        s.cancelled.Load(),
		RejectedQueue:    s.rejectedQueue.Load(),
		RejectedClient:   s.rejectedClient.Load(),
		RejectedDraining: s.rejectedDraining.Load(),
		Retried:          s.retried.Load(),
		BudgetExhausted:  s.budgetExhausted.Load(),
		Panics:           s.panics.Load(),
		DrainForced:      s.drainForced.Load(),
	}
	if s.cache != nil {
		c.CacheHits, c.CacheMisses, c.CacheEvictions = s.cache.Stats()
	}
	return c
}

// MetricsSnapshot renders the live service.* metric family into a fresh
// registry — the /metrics endpoint body. Every name here is cataloged
// in docs/OBSERVABILITY.md (enforced bidirectionally by tests).
func (s *Server) MetricsSnapshot() *metrics.Registry {
	c := s.Snapshot()
	reg := metrics.NewRegistry()
	reg.Counter("service.jobs.admitted", "jobs", "jobs accepted into the queue").Add(c.Admitted)
	reg.Counter("service.jobs.completed", "jobs", "jobs finished successfully").Add(c.Completed)
	reg.Counter("service.jobs.failed", "jobs", "jobs failed terminally").Add(c.Failed)
	reg.Counter("service.jobs.cancelled", "jobs", "jobs stopped by deadline or shutdown").Add(c.Cancelled)
	reg.Counter("service.jobs.rejected.queue", "jobs", "jobs rejected: queue full").Add(c.RejectedQueue)
	reg.Counter("service.jobs.rejected.client", "jobs", "jobs rejected: per-client cap").Add(c.RejectedClient)
	reg.Counter("service.jobs.rejected.draining", "jobs", "jobs rejected during drain").Add(c.RejectedDraining)
	reg.Counter("service.jobs.retried", "attempts", "retry attempts after transient faults").Add(c.Retried)
	reg.Counter("service.retry.budget_exhausted", "jobs", "jobs failed with the retry bucket dry").Add(c.BudgetExhausted)
	reg.Counter("service.worker.panics", "panics", "job panics caught at the worker boundary").Add(c.Panics)
	reg.Counter("service.drain.forced", "drains", "drains that hit their deadline and force-cancelled").Add(c.DrainForced)
	reg.Counter("service.cache.hits", "lookups", "result-cache hits").Add(c.CacheHits)
	reg.Counter("service.cache.misses", "lookups", "result-cache misses (fresh computes)").Add(c.CacheMisses)
	reg.Counter("service.cache.evictions", "entries", "result-cache LRU evictions").Add(c.CacheEvictions)
	reg.Gauge("service.queue.depth", "jobs", "jobs waiting in the admission queue").Set(float64(len(s.queue)))
	reg.Gauge("service.jobs.inflight", "jobs", "jobs executing on workers right now").Set(float64(s.inflight.Load()))
	hitRate := 0.0
	if lookups := c.CacheHits + c.CacheMisses; lookups > 0 {
		hitRate = float64(c.CacheHits) / float64(lookups)
	}
	reg.Gauge("service.cache.hit_rate", "ratio", "result-cache hit fraction of lookups").Set(hitRate)
	return reg
}
