package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"mlpcache/internal/experiments"
	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
	"mlpcache/internal/workload"
)

// Telemetry formats a job may request for its response body.
const (
	// TelemetryMetrics returns the run's mlpcache.metrics/v1 JSONL
	// document (the default, and the only cacheable format).
	TelemetryMetrics = "metrics"
	// TelemetryEventsV1 streams the run's events as mlpcache.events/v1
	// JSONL instead of the metric set.
	TelemetryEventsV1 = "events-v1"
	// TelemetryEventsV2 streams the run's events in the compact
	// mlpcache.events/v2 binary encoding.
	TelemetryEventsV2 = "events-v2"
)

// Job is one sweep request: a single benchmark×policy simulation, or a
// whole experiment table by registry id. The zero values of Deadline,
// Client and Telemetry fall back to server defaults; those three fields
// are excluded from the result-cache key since they don't affect the
// simulation.
type Job struct {
	// Experiment, when non-empty, runs a whole experiment table (an
	// experiments registry id such as "fig9") and returns its
	// mlpcache.table/v1 JSON. Mutually exclusive with Bench/Policy.
	Experiment string `json:"experiment,omitempty"`

	// Bench names the workload model (required for single runs).
	Bench string `json:"bench,omitempty"`
	// Policy is the replacement policy kind ("lru" when empty).
	Policy string `json:"policy,omitempty"`
	// Lambda, Leaders, PselBits and RandDynamic mirror the mlpsim
	// policy-tuning flags.
	Lambda      int  `json:"lambda,omitempty"`
	Leaders     int  `json:"leaders,omitempty"`
	PselBits    int  `json:"psel,omitempty"`
	RandDynamic bool `json:"rand_dynamic,omitempty"`

	// Instructions is the per-run budget (server default when zero,
	// capped at Config.MaxInstructions).
	Instructions uint64 `json:"instructions,omitempty"`
	// Seed drives workload generation (default 42, the CLI default).
	Seed uint64 `json:"seed,omitempty"`
	// Benchmarks restricts an experiment job's benchmark set.
	Benchmarks []string `json:"benchmarks,omitempty"`

	// Telemetry selects the response body: TelemetryMetrics (default),
	// TelemetryEventsV1 or TelemetryEventsV2.
	Telemetry string `json:"telemetry,omitempty"`
	// DeadlineMS bounds the job's wall time in milliseconds (server
	// default when zero, capped at Config.MaxDeadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Client identifies the submitter for per-client admission caps;
	// empty submitters share the "anonymous" bucket.
	Client string `json:"client,omitempty"`
}

// normalize fills defaulted fields in place.
func (j *Job) normalize(cfg Config) {
	if j.Policy == "" {
		j.Policy = string(sim.PolicyLRU)
	}
	if j.Instructions == 0 {
		j.Instructions = cfg.DefaultInstructions
	}
	if j.Seed == 0 {
		j.Seed = 42
	}
	if j.Telemetry == "" {
		j.Telemetry = TelemetryMetrics
	}
	if j.Client == "" {
		j.Client = "anonymous"
	}
}

// Validate checks the job against the server's admission limits,
// wrapping failures in simerr.ErrBadConfig / simerr.ErrUnknownBenchmark.
// Call after normalize.
func (j *Job) Validate(cfg Config) error {
	switch j.Telemetry {
	case TelemetryMetrics, TelemetryEventsV1, TelemetryEventsV2:
	default:
		return simerr.New(simerr.ErrBadConfig,
			"service: unknown telemetry %q (want %s, %s or %s)",
			j.Telemetry, TelemetryMetrics, TelemetryEventsV1, TelemetryEventsV2)
	}
	if j.Instructions > cfg.MaxInstructions {
		return simerr.New(simerr.ErrBadConfig,
			"service: instruction budget %d exceeds the server cap %d",
			j.Instructions, cfg.MaxInstructions)
	}
	if j.DeadlineMS < 0 {
		return simerr.New(simerr.ErrBadConfig, "service: deadline_ms must be >= 0")
	}
	if j.Experiment != "" {
		if j.Bench != "" {
			return simerr.New(simerr.ErrBadConfig,
				"service: a job names either an experiment or a bench, not both")
		}
		if !knownExperiment(j.Experiment) {
			return simerr.New(simerr.ErrBadConfig,
				"service: unknown experiment %q (known: %v plus %v)",
				j.Experiment, experiments.AllIDs(), experiments.SensitivityIDs())
		}
		for _, b := range j.Benchmarks {
			if _, ok := workload.ByName(b); !ok {
				return simerr.New(simerr.ErrUnknownBenchmark,
					"service: unknown benchmark %q (known: %v)", b, workload.Names())
			}
		}
		if j.Telemetry != TelemetryMetrics {
			return simerr.New(simerr.ErrBadConfig,
				"service: experiment jobs return tables, not event streams")
		}
		return nil
	}
	if _, ok := workload.ByName(j.Bench); !ok {
		return simerr.New(simerr.ErrUnknownBenchmark,
			"service: unknown benchmark %q (known: %v)", j.Bench, workload.Names())
	}
	if !sim.PolicyKind(j.Policy).Known() {
		return simerr.New(simerr.ErrBadConfig, "service: unknown policy %q", j.Policy)
	}
	return nil
}

func knownExperiment(id string) bool {
	for _, known := range [][]string{experiments.AllIDs(), experiments.SensitivityIDs()} {
		for _, k := range known {
			if k == id {
				return true
			}
		}
	}
	return false
}

// deadline resolves the job's effective wall-time bound.
func (j *Job) deadline(cfg Config) time.Duration {
	d := cfg.DefaultDeadline
	if j.DeadlineMS > 0 {
		d = time.Duration(j.DeadlineMS) * time.Millisecond
	}
	if cfg.MaxDeadline > 0 && d > cfg.MaxDeadline {
		d = cfg.MaxDeadline
	}
	return d
}

// Key returns the job's stable result-cache key: a SHA-256 over every
// field that affects the simulation output, excluding deadline, client
// identity and telemetry format. Two submitters asking for the same
// configuration therefore share one cache entry and one in-flight
// simulation.
func (j *Job) Key() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "exp=%s|bench=%s|policy=%s|lambda=%d|leaders=%d|psel=%d|rand=%t|n=%d|seed=%d|benches=%v",
		j.Experiment, j.Bench, j.Policy, j.Lambda, j.Leaders, j.PselBits,
		j.RandDynamic, j.Instructions, j.Seed, j.Benchmarks)
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:])
}

// spec builds the simulator policy spec for a single-run job.
func (j *Job) spec() sim.PolicySpec {
	return sim.PolicySpec{
		Kind:        sim.PolicyKind(j.Policy),
		Lambda:      j.Lambda,
		LeaderSets:  j.Leaders,
		PselBits:    j.PselBits,
		RandDynamic: j.RandDynamic,
		Seed:        j.Seed,
	}
}
