package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// driveCache runs a deterministic access mix and returns every
// observable outcome: probe hits, eviction records and final stats.
func driveCache(c *Cache, seed int64) ([]bool, []Evicted, Stats) {
	rng := rand.New(rand.NewSource(seed))
	var hits []bool
	var evs []Evicted
	for i := 0; i < 4_000; i++ {
		addr := uint64(rng.Intn(1 << 14) * 64)
		switch rng.Intn(4) {
		case 0:
			hits = append(hits, c.Probe(addr, rng.Intn(2) == 0))
		case 1:
			ev, evicted := c.Fill(addr, uint8(rng.Intn(8)), rng.Intn(2) == 0)
			if evicted {
				evs = append(evs, ev)
			}
		case 2:
			c.MarkDirty(addr)
		case 3:
			hits = append(hits, c.Probe(addr, false))
		}
	}
	return hits, evs, c.Stats()
}

// TestResetMatchesFresh is the arena's reuse contract: a Reset cache
// must be indistinguishable from a just-built one under any access mix.
func TestResetMatchesFresh(t *testing.T) {
	fresh := newTestCache(64, 8, NewLRU())
	wantHits, wantEvs, wantStats := driveCache(fresh, 11)

	used := newTestCache(64, 8, NewLRU())
	driveCache(used, 99) // dirty every structure with a different mix
	used.Reset(NewLRU())
	gotHits, gotEvs, gotStats := driveCache(used, 11)

	if !reflect.DeepEqual(gotHits, wantHits) {
		t.Fatal("probe outcomes diverge after Reset")
	}
	if !reflect.DeepEqual(gotEvs, wantEvs) {
		t.Fatal("eviction records diverge after Reset")
	}
	if gotStats != wantStats {
		t.Fatalf("stats diverge after Reset: got %+v, want %+v", gotStats, wantStats)
	}
}

// TestResetInstallsDefaultPolicy pins the nil-policy convenience: Reset
// with nil falls back to LRU, mirroring New.
func TestResetInstallsDefaultPolicy(t *testing.T) {
	c := newTestCache(4, 2, NewLRU())
	driveCache(c, 3)
	c.Reset(nil)
	if c.Policy() == nil {
		t.Fatal("Reset(nil) left no policy installed")
	}
	if got := c.Stats(); got != (Stats{}) {
		t.Fatalf("Reset left stats behind: %+v", got)
	}
}
