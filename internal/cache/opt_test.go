package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOPTKnownSequence(t *testing.T) {
	// Classic example: 2-entry fully-associative cache.
	// Stream: a b c a b. OPT: miss a, miss b, miss c (evict b, since a
	// is used sooner), hit a, miss b → 4 misses. LRU: a b c(evict a)
	// a(evict b) b(evict c) → 5 misses.
	stream := []uint64{1, 2, 3, 1, 2}
	opt := SimulateOPT(stream, 1, 2)
	lru := SimulateOffline(stream, 1, 2, NewLRU())
	if opt.Misses != 4 {
		t.Fatalf("OPT misses = %d, want 4", opt.Misses)
	}
	if lru.Misses != 5 {
		t.Fatalf("LRU misses = %d, want 5", lru.Misses)
	}
}

func TestOPTTraceShape(t *testing.T) {
	stream := []uint64{1, 2, 1, 3}
	res := SimulateOPT(stream, 1, 2)
	if len(res.Trace) != 4 || res.Accesses != 4 {
		t.Fatalf("trace length %d, accesses %d", len(res.Trace), res.Accesses)
	}
	if res.Trace[0].Hit || !res.Trace[2].Hit {
		t.Fatalf("unexpected hit pattern %+v", res.Trace)
	}
	if !res.Trace[3].HasVictim {
		t.Fatal("final miss into a full set must report a victim")
	}
}

// Property: Belady's OPT never takes more misses than LRU, FIFO, or
// Random on any access stream (optimality against our online policies).
func TestOPTOptimalityProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, blocksRaw, setsRaw, assocRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%800) + 20
		blocks := int(blocksRaw%40) + 4
		sets := 1 << (setsRaw % 3)   // 1, 2, 4
		assoc := int(assocRaw%4) + 1 // 1..4
		stream := make([]uint64, n)
		for i := range stream {
			stream[i] = uint64(r.Intn(blocks))
		}
		opt := SimulateOPT(stream, sets, assoc)
		for _, p := range []Policy{NewLRU(), NewFIFO(), NewRandom(uint64(seed) | 1)} {
			if online := SimulateOffline(stream, sets, assoc, p); opt.Misses > online.Misses {
				t.Logf("OPT %d > %s %d (n=%d blocks=%d sets=%d assoc=%d)",
					opt.Misses, p.Name(), online.Misses, n, blocks, sets, assoc)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: miss counts cannot go below the number of distinct blocks
// (compulsory lower bound), and OPT reaches it when everything fits.
func TestOPTCompulsoryBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stream := make([]uint64, 200)
		distinct := map[uint64]bool{}
		for i := range stream {
			stream[i] = uint64(r.Intn(8))
			distinct[stream[i]] = true
		}
		res := SimulateOPT(stream, 1, 8) // everything fits
		return res.Misses == uint64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineMissRate(t *testing.T) {
	res := SimulateOffline([]uint64{1, 1, 2, 2}, 1, 4, NewLRU())
	if got := res.MissRate(); got != 0.5 {
		t.Fatalf("MissRate = %v, want 0.5", got)
	}
	var empty OfflineResult
	if empty.MissRate() != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

func TestOPTPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulateOPT([]uint64{1}, 0, 1)
}
