package cache

// Offline replacement simulation over a recorded block-access stream.
// Belady's OPT (evict the block referenced furthest in the future) gives
// the theoretical minimum miss count the paper's Figure 1 contrasts with
// MLP-aware replacement; the offline LRU simulation provides the matching
// online baseline for miss-count comparisons that do not need timing.
// internal/oracle generalizes this engine to streams captured from live
// runs, with per-access cost weights (oracle.Belady reproduces
// SimulateOPT exactly on bare block streams — a golden test enforces it).

import "mlpcache/internal/simerr"

// AccessResult records the outcome of one access in an offline run.
type AccessResult struct {
	Block uint64
	Hit   bool
	// Evicted is the block displaced when this access missed into a
	// full set; valid only when HasVictim.
	Evicted   uint64
	HasVictim bool
}

// OfflineResult summarizes an offline replacement simulation.
type OfflineResult struct {
	Misses   uint64
	Accesses uint64
	Trace    []AccessResult // per-access outcomes, in order
}

// MissRate returns misses over accesses (0 when empty).
func (r OfflineResult) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// SimulateOPT runs Belady's optimal replacement over the block stream on a
// cache with the given number of sets and ways (sets=1 models a
// fully-associative cache). Blocks map to sets by block % sets.
func SimulateOPT(stream []uint64, sets, assoc int) OfflineResult {
	if sets <= 0 || assoc <= 0 {
		panic(simerr.New(simerr.ErrBadConfig, "cache: SimulateOPT needs positive sets and assoc"))
	}
	const never = int(^uint(0) >> 1) // sentinel: no future use

	// nextUse[i] is the index of the next access to stream[i]'s block
	// after position i, or never.
	nextUse := make([]int, len(stream))
	last := make(map[uint64]int, len(stream))
	for i := len(stream) - 1; i >= 0; i-- {
		if j, ok := last[stream[i]]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = never
		}
		last[stream[i]] = i
	}

	type resident struct {
		block uint64
		next  int // index of the block's next use
	}
	setsState := make([][]resident, sets)
	res := OfflineResult{Trace: make([]AccessResult, 0, len(stream))}

	for i, b := range stream {
		s := int(b % uint64(sets))
		lines := setsState[s]
		out := AccessResult{Block: b}
		found := -1
		for w := range lines {
			if lines[w].block == b {
				found = w
				break
			}
		}
		if found >= 0 {
			lines[found].next = nextUse[i]
			out.Hit = true
		} else {
			res.Misses++
			if len(lines) < assoc {
				setsState[s] = append(lines, resident{block: b, next: nextUse[i]})
			} else {
				victim := 0
				for w := 1; w < len(lines); w++ {
					if lines[w].next > lines[victim].next {
						victim = w
					}
				}
				out.Evicted = lines[victim].block
				out.HasVictim = true
				lines[victim] = resident{block: b, next: nextUse[i]}
			}
		}
		res.Accesses++
		res.Trace = append(res.Trace, out)
	}
	return res
}

// SimulateOffline runs the given policy over the block stream on a
// freshly built cache with the given geometry, recording per-access
// outcomes. It is the untimed (miss-count only) counterpart of the full
// simulator, used by tests and the Figure 1 analysis.
func SimulateOffline(stream []uint64, sets, assoc int, policy Policy) OfflineResult {
	c := New(Config{Sets: sets, Assoc: assoc, BlockBytes: 1}, policy)
	res := OfflineResult{Trace: make([]AccessResult, 0, len(stream))}
	for _, b := range stream {
		out := AccessResult{Block: b}
		if c.Probe(b, false) {
			out.Hit = true
		} else {
			res.Misses++
			ev, has := c.Fill(b, 0, false)
			if has {
				out.Evicted = ev.Block
				out.HasVictim = true
			}
		}
		res.Accesses++
		res.Trace = append(res.Trace, out)
	}
	return res
}
