package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestCache(sets, assoc int, p Policy) *Cache {
	return New(Config{Sets: sets, Assoc: assoc, BlockBytes: 64}, p)
}

func TestConfigDerivesSets(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 20, Assoc: 16, BlockBytes: 64}, nil)
	if got := c.Config().Sets; got != 1024 {
		t.Fatalf("derived %d sets, want 1024", got)
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	cases := []Config{
		{Assoc: 0, Sets: 4},
		{Assoc: 4},
		{Assoc: 4, Sets: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			New(cfg, nil)
		}()
	}
}

func TestProbeFillBasics(t *testing.T) {
	c := newTestCache(4, 2, NewLRU())
	if c.Probe(0x100, false) {
		t.Fatal("cold probe should miss")
	}
	if _, ev := c.Fill(0x100, 3, false); ev {
		t.Fatal("fill into empty set should not evict")
	}
	if !c.Probe(0x100, false) {
		t.Fatal("probe after fill should hit")
	}
	if !c.Probe(0x13f, false) {
		t.Fatal("same-block offset should hit")
	}
	if cost, ok := c.CostOf(0x100); !ok || cost != 3 {
		t.Fatalf("CostOf = %d,%v; want 3,true", cost, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEvictionAtCapacityIsLRU(t *testing.T) {
	c := newTestCache(1, 2, NewLRU())
	c.Fill(0*64, 0, false)
	c.Fill(1*64, 0, false)
	c.Probe(0*64, false) // block 0 becomes MRU
	ev, evicted := c.Fill(2*64, 0, false)
	if !evicted || ev.Block != 1 {
		t.Fatalf("evicted %+v (%v), want block 1", ev, evicted)
	}
	if !c.Contains(0 * 64) {
		t.Fatal("MRU block evicted")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := newTestCache(1, 1, NewLRU())
	c.Fill(0, 0, true)
	ev, evicted := c.Fill(64, 0, false)
	if !evicted || !ev.Dirty {
		t.Fatalf("expected dirty eviction, got %+v %v", ev, evicted)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestProbeWriteSetsDirty(t *testing.T) {
	c := newTestCache(1, 1, NewLRU())
	c.Fill(0, 0, false)
	c.Probe(0, true)
	ev, _ := c.Fill(64, 0, false)
	if !ev.Dirty {
		t.Fatal("write probe should have dirtied the line")
	}
}

func TestMarkDirty(t *testing.T) {
	c := newTestCache(2, 1, NewLRU())
	c.Fill(0, 0, false)
	if !c.MarkDirty(0) {
		t.Fatal("MarkDirty on resident block returned false")
	}
	if c.MarkDirty(1 << 20) {
		t.Fatal("MarkDirty on absent block returned true")
	}
	ev, _ := c.Fill(2*64, 0, false)
	if !ev.Dirty {
		t.Fatal("dirty bit not set")
	}
}

func TestInvalidate(t *testing.T) {
	c := newTestCache(2, 2, NewLRU())
	c.Fill(0, 0, true)
	dirty, present := c.Invalidate(0)
	if !dirty || !present {
		t.Fatalf("Invalidate = %v,%v; want true,true", dirty, present)
	}
	if c.Contains(0) {
		t.Fatal("block still present after Invalidate")
	}
	if _, present := c.Invalidate(0); present {
		t.Fatal("second Invalidate found the block")
	}
}

func TestFillRefreshExistingBlock(t *testing.T) {
	c := newTestCache(1, 2, NewLRU())
	c.Fill(0, 1, false)
	c.Fill(64, 1, false)
	// Re-fill block 0 (e.g. racing requests): must not duplicate.
	if _, ev := c.Fill(0, 5, false); ev {
		t.Fatal("refresh fill should not evict")
	}
	if cost, _ := c.CostOf(0); cost != 5 {
		t.Fatalf("refresh did not update cost: %d", cost)
	}
	// Block 64 must survive (no duplicate tag consumed a way).
	if !c.Contains(64) {
		t.Fatal("refresh fill displaced the other resident block")
	}
}

func TestCustomIndexerATDStyle(t *testing.T) {
	// An ATD-style cache: 2 sets fed from "leader" sets 0 and 3 of an
	// 8-set geometry, tagged by full block number.
	slot := map[uint64]int{0: 0, 3: 1}
	c := New(Config{Sets: 2, Assoc: 2, BlockBytes: 64, Index: func(b uint64) (int, uint64) {
		return slot[b%8], b
	}}, NewLRU())
	c.Fill(0*64, 0, false)  // block 0 → slot 0
	c.Fill(8*64, 0, false)  // block 8 ≡ set 0 → slot 0
	c.Fill(3*64, 0, false)  // block 3 → slot 1
	c.Fill(16*64, 0, false) // block 16 ≡ set 0 → slot 0, evicts LRU (block 0)
	if c.Contains(0) {
		t.Fatal("block 0 should have been evicted from slot 0")
	}
	if !c.Contains(8*64) || !c.Contains(3*64) || !c.Contains(16*64) {
		t.Fatal("expected blocks missing")
	}
}

// Property: a set never holds two lines with the same tag, and the
// recency ranks of valid lines form a permutation of 0..valid-1.
func TestSetInvariantsProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		c := newTestCache(4, 4, NewLRU())
		ops := int(opsRaw%500) + 50
		for i := 0; i < ops; i++ {
			addr := uint64(r.Intn(64)) * 64
			if !c.Probe(addr, r.Intn(4) == 0) {
				c.Fill(addr, uint8(r.Intn(8)), false)
			}
		}
		for s := 0; s < 4; s++ {
			v := SetView{cache: c, Index: s}
			tags := map[uint64]bool{}
			valid := 0
			for w := 0; w < v.Ways(); w++ {
				ln := v.Line(w)
				if !ln.Valid {
					continue
				}
				valid++
				if tags[ln.Tag] {
					return false // duplicate tag
				}
				tags[ln.Tag] = true
			}
			ranks := map[int]bool{}
			for w := 0; w < v.Ways(); w++ {
				if !v.Line(w).Valid {
					continue
				}
				rk := v.RecencyRank(w)
				if rk < 0 || rk >= valid || ranks[rk] {
					return false
				}
				ranks[rk] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: hit-then-probe of the same address always hits again
// (residency is stable between fills).
func TestProbeIdempotentHit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := newTestCache(8, 2, NewLRU())
		for i := 0; i < 200; i++ {
			addr := uint64(r.Intn(100)) * 64
			if c.Probe(addr, false) {
				if !c.Probe(addr, false) {
					return false
				}
			} else {
				c.Fill(addr, 0, false)
				if !c.Probe(addr, false) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyVictims(t *testing.T) {
	t.Run("fifo", func(t *testing.T) {
		c := newTestCache(1, 2, NewFIFO())
		c.Fill(0, 0, false)
		c.Fill(64, 0, false)
		c.Probe(0, false) // touch does not protect under FIFO
		ev, _ := c.Fill(128, 0, false)
		if ev.Block != 0 {
			t.Fatalf("FIFO evicted block %d, want 0", ev.Block)
		}
	})
	t.Run("random-in-range-and-deterministic", func(t *testing.T) {
		mk := func() []uint64 {
			c := newTestCache(1, 4, NewRandom(42))
			var evs []uint64
			for b := uint64(0); b < 32; b++ {
				if ev, evicted := c.Fill(b*64, 0, false); evicted {
					evs = append(evs, ev.Block)
				}
			}
			return evs
		}
		a, b := mk(), mk()
		if len(a) != 28 {
			t.Fatalf("got %d evictions, want 28", len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("random policy not deterministic for equal seeds")
			}
		}
	})
	t.Run("nmru-protects-mru", func(t *testing.T) {
		c := newTestCache(1, 4, NewNMRU(7))
		for b := uint64(0); b < 4; b++ {
			c.Fill(b*64, 0, false)
		}
		c.Probe(2*64, false) // block 2 is MRU
		ev, _ := c.Fill(4*64, 0, false)
		if ev.Block == 2 {
			t.Fatal("NMRU evicted the MRU block")
		}
	})
}

func TestPolicyPanicsOnBadVictim(t *testing.T) {
	bad := NewCostAwareStub()
	c := newTestCache(1, 2, bad)
	c.Fill(0, 0, false)
	c.Fill(64, 0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range victim")
		}
	}()
	c.Fill(128, 0, false)
}

// NewCostAwareStub returns a deliberately broken policy for the
// panic-path test.
func NewCostAwareStub() Policy { return badPolicy{} }

type badPolicy struct{ Base }

func (badPolicy) Name() string       { return "bad" }
func (badPolicy) Victim(SetView) int { return 99 }

func TestViewSetAndDemote(t *testing.T) {
	c := newTestCache(2, 3, NewLRU())
	c.Fill(0*64, 0, false) // set 0
	c.Fill(2*64, 0, false) // set 0
	c.Fill(4*64, 0, false) // set 0: fill order 0,2,4 → 4 is MRU
	v := c.ViewSet(0)
	mru := -1
	for w := 0; w < v.Ways(); w++ {
		if v.RecencyRank(w) == 2 {
			mru = w
		}
	}
	if mru < 0 {
		t.Fatal("no MRU way found")
	}
	v.Demote(mru)
	if got := v.RecencyRank(mru); got != 0 {
		t.Fatalf("demoted way has rank %d, want 0", got)
	}
	// Next eviction must take the demoted line.
	demotedTag := v.Line(mru).Tag
	ev, _ := c.Fill(6*64, 0, false)
	if ev.Block != demotedTag*2 { // default indexer: block = tag*sets + set
		t.Fatalf("evicted block %d, want the demoted line", ev.Block)
	}
}

func TestDemoteSingleLineIsNoop(t *testing.T) {
	c := newTestCache(1, 2, NewLRU())
	c.Fill(0, 0, false)
	v := c.ViewSet(0)
	v.Demote(0) // only one valid line; must not panic or corrupt
	if !c.Contains(0) {
		t.Fatal("demote corrupted the set")
	}
}

func TestViewSetPanicsOutOfRange(t *testing.T) {
	c := newTestCache(2, 2, NewLRU())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.ViewSet(5)
}

func TestAccessorsAndStats(t *testing.T) {
	c := newTestCache(4, 2, NewLRU())
	if got := c.Config().String(); got == "" {
		t.Fatal("empty config string")
	}
	if c.SetOf(5*64) != 1 {
		t.Fatalf("SetOf = %d", c.SetOf(5*64))
	}
	c.Probe(0, false)
	c.Fill(0, 0, false)
	c.Probe(0, false)
	st := c.Stats()
	if st.Accesses() != 2 || st.MissRate() != 0.5 {
		t.Fatalf("stats %+v", st)
	}
	c.ResetStats()
	if c.Stats().Accesses() != 0 {
		t.Fatal("ResetStats failed")
	}
	if c.Policy().Name() != "lru" {
		t.Fatal("Policy accessor wrong")
	}
	c.SetPolicy(NewFIFO())
	if c.Policy().Name() != "fifo" {
		t.Fatal("SetPolicy failed")
	}
	var emptyStats Stats
	if emptyStats.MissRate() != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{NewLRU(), NewFIFO(), NewRandom(1), NewNMRU(1)} {
		if p.Name() == "" {
			t.Fatal("empty policy name")
		}
		// The observer hooks must be safe no-ops.
		c := newTestCache(1, 2, p)
		c.Fill(0, 0, false)
		c.Probe(0, false)
	}
}

func TestNMRUSingleWay(t *testing.T) {
	c := newTestCache(1, 1, NewNMRU(3))
	c.Fill(0, 0, false)
	ev, evicted := c.Fill(64, 0, false)
	if !evicted || ev.Block != 0 {
		t.Fatal("degenerate single-way NMRU must still evict")
	}
}
