// Package cache implements the set-associative cache model used for every
// tag directory in the simulator: the L1 data cache, the L2 (the paper's
// MTD, main tag directory), and the tag-only auxiliary tag directories
// (ATDs) that the hybrid replacement schemes shadow it with.
//
// The cache separates lookup (Probe) from allocation (Fill) because in the
// timing simulator a miss is serviced hundreds of cycles after it is
// detected, with other accesses in between. Replacement is delegated to a
// Policy, which sees a SetView exposing per-line recency rank and the
// paper's quantized MLP-based cost (Figure 3b) — the two operands of the
// Section 5 linear cost function. The geometry defaults mirror the
// paper's Table 2 baseline (1MB 16-way L2, 64B lines).
package cache

import (
	"fmt"

	"mlpcache/internal/metrics"
	"mlpcache/internal/simerr"
)

// Line is one cache block's tag-store entry.
type Line struct {
	// Tag identifies the block within its set (see Indexer).
	Tag uint64
	// Valid marks the entry as holding a block.
	Valid bool
	// Dirty marks the block as modified; evicting it produces a
	// writeback.
	Dirty bool
	// CostQ is the 3-bit quantized MLP-based cost stored alongside the
	// tag, written when the block's miss was serviced (paper §5).
	CostQ uint8

	lastUse  uint64 // global access sequence, for recency ranking
	inserted uint64 // fill sequence, for FIFO
}

// Indexer maps a block number to a set index and an in-set tag. The
// default splits the block number into low set bits and high tag bits;
// sampled ATDs override it to place only leader sets.
type Indexer func(block uint64) (set int, tag uint64)

// Config describes a cache's geometry.
type Config struct {
	// SizeBytes is the total data capacity. Either SizeBytes or Sets
	// must be given; Sets wins if both are set.
	SizeBytes uint64
	// Assoc is the number of ways per set.
	Assoc int
	// BlockBytes is the line size (64 in the baseline).
	BlockBytes uint64
	// Sets overrides the set count derived from SizeBytes.
	Sets int
	// Index overrides the default block→(set,tag) mapping. By
	// convention a custom indexer uses the full block number as the
	// tag (sampled ATDs do), so evicted lines can be reported without
	// an inverse mapping.
	Index Indexer
}

func (c Config) String() string {
	return fmt.Sprintf("%dKB %d-way %dB-line (%d sets)",
		uint64(c.Sets)*uint64(c.Assoc)*c.BlockBytes/1024, c.Assoc, c.BlockBytes, c.Sets)
}

// Validate checks the geometry, wrapping failures in simerr.ErrBadConfig.
// It accepts every configuration New accepts (BlockBytes 0 defaults to
// 64; Sets may be derived from SizeBytes).
func (c Config) Validate() error {
	_, err := c.SetCount()
	return err
}

// SetCount returns the set count the geometry resolves to — Sets if
// given, otherwise derived from SizeBytes — or a wrapped
// simerr.ErrBadConfig when the geometry is unbuildable.
func (c Config) SetCount() (int, error) {
	block := c.BlockBytes
	if block == 0 {
		block = 64
	}
	if c.Assoc <= 0 {
		return 0, simerr.New(simerr.ErrBadConfig, "cache: associativity must be positive, got %d", c.Assoc)
	}
	sets := c.Sets
	if sets == 0 {
		if c.SizeBytes == 0 {
			return 0, simerr.New(simerr.ErrBadConfig, "cache: need SizeBytes or Sets")
		}
		sets = int(c.SizeBytes / (uint64(c.Assoc) * block))
	}
	if sets <= 0 {
		return 0, simerr.New(simerr.ErrBadConfig,
			"cache: set count must be positive (size %dB, %d-way, %dB blocks gives %d sets)",
			c.SizeBytes, c.Assoc, block, sets)
	}
	return sets, nil
}

// Stats aggregates a cache's access counters.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Writebacks uint64
}

// Accesses returns hits plus misses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses over accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// Observe registers the counters under prefix (e.g. "cache.l2") in the
// metrics registry: <prefix>.hit, .miss, .fill, .writeback plus the
// derived .miss_rate gauge.
func (s Stats) Observe(reg *metrics.Registry, prefix string) {
	reg.Counter(prefix+".hit", "accesses", "tag-store probe hits").Add(s.Hits)
	reg.Counter(prefix+".miss", "accesses", "tag-store probe misses").Add(s.Misses)
	reg.Counter(prefix+".fill", "fills", "blocks installed").Add(s.Fills)
	reg.Counter(prefix+".writeback", "evictions", "dirty evictions").Add(s.Writebacks)
	reg.Gauge(prefix+".miss_rate", "ratio", "misses over accesses").Set(s.MissRate())
}

// Cache is a set-associative tag store.
type Cache struct {
	cfg         Config
	policy      Policy
	lines       []Line // sets*assoc, set-major
	seq         uint64
	stats       Stats
	customIndex bool
}

// New builds a cache. It panics on invalid geometry with a typed
// simerr.ErrBadConfig error (a configuration error in the calling code,
// not a runtime condition); validate externally-sourced geometries with
// Config.Validate first.
func New(cfg Config, policy Policy) *Cache {
	sets, err := cfg.SetCount()
	if err != nil {
		panic(err)
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 64
	}
	cfg.Sets = sets
	custom := cfg.Index != nil
	if !custom {
		sets := uint64(cfg.Sets)
		cfg.Index = func(block uint64) (int, uint64) {
			return int(block % sets), block / sets
		}
	}
	if policy == nil {
		policy = NewLRU()
	}
	return &Cache{
		cfg:         cfg,
		policy:      policy,
		lines:       make([]Line, cfg.Sets*cfg.Assoc),
		customIndex: custom,
	}
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// CustomIndex reports whether the cache was built with a caller-supplied
// block→set mapping (sampled ATDs). Pools that match caches by geometry
// use it to exclude such caches: two custom indexers with equal
// Sets/Assoc/BlockBytes need not place blocks the same way.
func (c *Cache) CustomIndex() bool { return c.customIndex }

// Policy returns the replacement policy in use.
func (c *Cache) Policy() Policy { return c.policy }

// SetPolicy swaps the replacement policy (used by tests and ablations).
func (c *Cache) SetPolicy(p Policy) { c.policy = p }

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// BlockOf returns the block number containing the byte address.
func (c *Cache) BlockOf(addr uint64) uint64 { return addr / c.cfg.BlockBytes }

// SetOf returns the set index a byte address maps to.
func (c *Cache) SetOf(addr uint64) int {
	set, _ := c.cfg.Index(c.BlockOf(addr))
	return set
}

func (c *Cache) set(set int) []Line {
	base := set * c.cfg.Assoc
	return c.lines[base : base+c.cfg.Assoc]
}

func (c *Cache) find(block uint64) (set int, way int, ok bool) {
	set, tag := c.cfg.Index(block)
	lines := c.set(set)
	for w := range lines {
		if lines[w].Valid && lines[w].Tag == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// Probe looks up the byte address. On a hit it updates recency (and the
// dirty bit if write is set) and returns true. On a miss it returns false
// and changes nothing; the caller services the miss and later calls Fill.
func (c *Cache) Probe(addr uint64, write bool) bool {
	set, way, ok := c.find(c.BlockOf(addr))
	if !ok {
		c.stats.Misses++
		return false
	}
	c.stats.Hits++
	c.seq++
	ln := &c.set(set)[way]
	ln.lastUse = c.seq
	if write {
		ln.Dirty = true
	}
	c.policy.Touched(SetView{cache: c, Index: set}, way)
	return true
}

// Contains reports whether the block holding addr is resident, without
// updating any replacement state.
func (c *Cache) Contains(addr uint64) bool {
	_, _, ok := c.find(c.BlockOf(addr))
	return ok
}

// CostOf returns the stored quantized cost of the block holding addr; ok
// is false if the block is not resident. Hybrid replacement uses this to
// source the cost of ATD-only misses from the MTD tag store (paper §6.1,
// footnote 6).
func (c *Cache) CostOf(addr uint64) (costQ uint8, ok bool) {
	set, way, ok := c.find(c.BlockOf(addr))
	if !ok {
		return 0, false
	}
	return c.set(set)[way].CostQ, true
}

// Evicted describes a line displaced by Fill.
type Evicted struct {
	Block uint64 // block number of the displaced line
	Dirty bool   // true if the displacement produces a writeback
	CostQ uint8
}

// Fill installs the block holding addr, evicting a victim if the set is
// full. costQ is the quantized MLP-based cost computed while the miss was
// in flight; dirty pre-marks the line (for write allocations). It returns
// the displaced line, if any. Filling an already-resident block just
// refreshes its metadata.
func (c *Cache) Fill(addr uint64, costQ uint8, dirty bool) (Evicted, bool) {
	block := c.BlockOf(addr)
	set, tag := c.cfg.Index(block)
	lines := c.set(set)
	c.seq++
	c.stats.Fills++

	way := -1
	for w := range lines {
		if lines[w].Valid && lines[w].Tag == tag {
			way = w // already resident (racing fill); refresh in place
			break
		}
	}
	if way < 0 {
		for w := range lines {
			if !lines[w].Valid {
				way = w
				break
			}
		}
	}
	var ev Evicted
	evicted := false
	if way < 0 {
		way = c.policy.Victim(SetView{cache: c, Index: set})
		if way < 0 || way >= c.cfg.Assoc {
			panic(simerr.New(simerr.ErrInternal,
				"cache: policy %s returned invalid way %d", c.policy.Name(), way))
		}
		old := lines[way]
		ev = Evicted{Block: c.blockFromTag(set, old.Tag), Dirty: old.Dirty, CostQ: old.CostQ}
		evicted = true
		if old.Dirty {
			c.stats.Writebacks++
		}
	}
	lines[way] = Line{
		Tag:      tag,
		Valid:    true,
		Dirty:    dirty,
		CostQ:    costQ,
		lastUse:  c.seq,
		inserted: c.seq,
	}
	c.policy.Filled(SetView{cache: c, Index: set}, way)
	return ev, evicted
}

// blockFromTag reverses the default indexer; with a custom indexer the
// tag is the full block number by convention (sampled ATDs), so it is
// returned unchanged.
func (c *Cache) blockFromTag(set int, tag uint64) uint64 {
	if c.customIndex {
		return tag
	}
	return tag*uint64(c.cfg.Sets) + uint64(set)
}

// MarkDirty sets the dirty bit of the block holding addr if resident,
// without touching recency. It reports whether the block was found; the
// simulator uses it to sink L1 writebacks into the L2.
func (c *Cache) MarkDirty(addr uint64) bool {
	set, way, ok := c.find(c.BlockOf(addr))
	if !ok {
		return false
	}
	c.set(set)[way].Dirty = true
	return true
}

// Invalidate drops the block holding addr if resident, returning its
// dirtiness.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	set, way, ok := c.find(c.BlockOf(addr))
	if !ok {
		return false, false
	}
	ln := &c.set(set)[way]
	dirty := ln.Dirty
	*ln = Line{}
	return dirty, true
}

// ResetStats zeroes the access counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset returns the cache to its just-built state in place: every line
// invalidated, the counters and the recency/fill sequence zeroed, and
// the given replacement policy installed (nil installs plain LRU, the
// same default New applies). The backing line array is reused, so a
// pooled cache costs no allocation on its next run (sim.Arena).
func (c *Cache) Reset(policy Policy) {
	clear(c.lines)
	c.seq = 0
	c.stats = Stats{}
	if policy == nil {
		policy = NewLRU()
	}
	c.policy = policy
}

// ViewSet returns a view of the given set — the same object Policy
// implementations receive. Tools and tests use it to inspect cache
// contents.
func (c *Cache) ViewSet(set int) SetView {
	if set < 0 || set >= c.cfg.Sets {
		panic(simerr.New(simerr.ErrInternal, "cache: ViewSet index %d out of range [0,%d)", set, c.cfg.Sets))
	}
	return SetView{cache: c, Index: set}
}

// SetView gives a Policy read access to one set.
type SetView struct {
	cache *Cache
	// Index is the set's index within the cache, letting set-dependent
	// policies (SBAR leader/follower split) dispatch.
	Index int
}

// Ways returns the associativity.
func (v SetView) Ways() int { return v.cache.cfg.Assoc }

// Line returns way w's entry by value.
func (v SetView) Line(w int) Line { return v.cache.set(v.Index)[w] }

// RecencyRank returns way w's LRU-stack position: 0 for the least
// recently used valid line, Ways()-1 for the most recently used. Invalid
// lines rank below all valid ones.
//
// This is the O(A)-per-way reference implementation; policies on the
// eviction hot path use Ranks, which computes every way's position at
// once. The invariant auditor and the property tests keep the two in
// agreement.
func (v SetView) RecencyRank(w int) int {
	lines := v.cache.set(v.Index)
	me := lines[w]
	rank := 0
	for i := range lines {
		if i == w {
			continue
		}
		other := lines[i]
		if !me.Valid {
			continue // invalid lines stay at rank 0
		}
		if other.Valid && other.lastUse < me.lastUse {
			rank++
		}
	}
	return rank
}

// Demote moves way w to the bottom of the recency stack (LRU position),
// as if it had not been touched since before every other valid line.
// Insertion-policy variants (e.g. BIP) use it from their Filled hook to
// insert at LRU instead of MRU.
func (v SetView) Demote(w int) {
	lines := v.cache.set(v.Index)
	var minUse uint64
	first := true
	for i := range lines {
		if i == w || !lines[i].Valid {
			continue
		}
		if first || lines[i].lastUse < minUse {
			minUse = lines[i].lastUse
			first = false
		}
	}
	if first {
		return // only line in the set; position is moot
	}
	if minUse == 0 {
		// No room below: shift every other valid line up one step so
		// the demoted line can take a unique bottom slot. Recency is a
		// per-set total order over distinct lastUse values, so a
		// uniform shift preserves it; clamping to 0 instead would give
		// two lines the same rank and break LRU victim selection.
		for i := range lines {
			if i != w && lines[i].Valid {
				lines[i].lastUse++
			}
		}
		minUse = 1
	}
	lines[w].lastUse = minUse - 1
}

// Ranks fills buf with every way's LRU-stack position and returns it
// (reallocating when buf is too small, so callers can reuse a scratch
// slice across invocations). The result agrees exactly with calling
// RecencyRank for each way — invalid lines rank 0; a valid line's rank
// counts the valid lines with older lastUse — but costs one sorting pass
// over the set instead of a quadratic scan, which matters because the
// cost-aware victim functions need all A positions on every eviction.
func (v SetView) Ranks(buf []int) []int {
	lines := v.cache.set(v.Index)
	n := len(lines)
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	// Insertion-sort the valid ways by lastUse. Associativities are small
	// (16 in the baseline), so this stays cache-resident and branch-cheap;
	// the stack array keeps the common case allocation-free.
	var stack [64]int
	var order []int
	if n <= len(stack) {
		order = stack[:0]
	} else {
		order = make([]int, 0, n)
	}
	for w := 0; w < n; w++ {
		buf[w] = 0
		if !lines[w].Valid {
			continue
		}
		lu := lines[w].lastUse
		i := len(order)
		order = append(order, w)
		for i > 0 && lines[order[i-1]].lastUse > lu {
			order[i] = order[i-1]
			i--
		}
		order[i] = w
	}
	for r, w := range order {
		buf[w] = r
	}
	return buf
}

// LRUWay returns the victim plain LRU would pick: the lowest-numbered
// invalid way if one exists, otherwise the way at recency rank 0 (the
// oldest lastUse). It is the shared O(A) victim fast path under the LRU,
// BIP and DCL policies.
func (v SetView) LRUWay() int {
	lines := v.cache.set(v.Index)
	best := 0
	for w := range lines {
		if !lines[w].Valid {
			return w
		}
		if lines[w].lastUse < lines[best].lastUse {
			best = w
		}
	}
	return best
}

// lru returns the way with the oldest use, preferring invalid lines.
func (v SetView) lru() int { return v.LRUWay() }
