package cache

// Policy selects replacement victims. Implementations may keep per-set
// state keyed by SetView.Index, but the base policies here derive
// everything from the line metadata the cache maintains (recency and
// insertion sequence), which keeps them trivially correct for any number
// of sets.
type Policy interface {
	// Name identifies the policy in reports ("lru", "lin4", ...).
	Name() string
	// Victim picks the way to evict from a full set.
	Victim(set SetView) int
	// Touched notifies the policy of a hit on way w.
	Touched(set SetView, w int)
	// Filled notifies the policy of a fill into way w.
	Filled(set SetView, w int)
}

// Base is a no-op observer mix-in for policies that need no notification
// state of their own.
type Base struct{}

// Touched implements Policy.
func (Base) Touched(SetView, int) {}

// Filled implements Policy.
func (Base) Filled(SetView, int) {}

// LRU evicts the least recently used line — the paper's baseline policy.
type LRU struct{ Base }

// NewLRU returns the least-recently-used policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (*LRU) Name() string { return "lru" }

// Victim implements Policy: the way at recency rank 0, preferring
// invalid lines (see SetView.LRUWay).
func (*LRU) Victim(set SetView) int { return set.LRUWay() }

// FIFO evicts the line that was filled first.
type FIFO struct{ Base }

// NewFIFO returns the first-in-first-out policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Policy.
func (*FIFO) Name() string { return "fifo" }

// Victim implements Policy.
func (*FIFO) Victim(set SetView) int {
	lines := set.cache.set(set.Index)
	best := 0
	for w := range lines {
		if !lines[w].Valid {
			return w
		}
		if lines[w].inserted < lines[best].inserted {
			best = w
		}
	}
	return best
}

// Random evicts a uniformly random line, using a deterministic seeded
// generator so runs remain reproducible.
type Random struct {
	Base
	state uint64
}

// NewRandom returns the random policy seeded with seed.
func NewRandom(seed uint64) *Random {
	return &Random{state: seed | 1}
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

// Victim implements Policy.
func (r *Random) Victim(set SetView) int {
	for w := 0; w < set.Ways(); w++ {
		if !set.Line(w).Valid {
			return w
		}
	}
	// xorshift64
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return int(r.state % uint64(set.Ways()))
}

// NMRU evicts the least recently used among all lines except the most
// recently used (equivalent to LRU for 2-way caches; cheaper in hardware
// for higher associativity). Included as an additional CARE baseline.
type NMRU struct {
	Base
	state uint64
}

// NewNMRU returns the not-most-recently-used policy seeded with seed.
func NewNMRU(seed uint64) *NMRU { return &NMRU{state: seed | 1} }

// Name implements Policy.
func (*NMRU) Name() string { return "nmru" }

// Victim implements Policy.
func (n *NMRU) Victim(set SetView) int {
	lines := set.cache.set(set.Index)
	mru, lru := 0, 0
	for w := range lines {
		if !lines[w].Valid {
			return w
		}
		if lines[w].lastUse > lines[mru].lastUse {
			mru = w
		}
		if lines[w].lastUse < lines[lru].lastUse {
			lru = w
		}
	}
	if lru != mru {
		return lru
	}
	// Degenerate single-way set.
	return lru
}
