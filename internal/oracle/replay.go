package oracle

// Offline replays over a captured Log. Every replay maps block b to set
// b % sets — the live L2's default indexer — and charges an access its
// Record.CostQ when it misses, so the replays and the live run are
// scored in the same currency: miss count and summed quantized mlp-cost
// (the paper's Section 2 objective). Sets are independent under this
// mapping, so each replay runs per set and sums.

import (
	"mlpcache/internal/cache"
	"mlpcache/internal/core"
	"mlpcache/internal/simerr"
)

// Result summarizes one replay of a log.
type Result struct {
	// Name labels the replayed policy ("belady", "cost-belady", "ehc",
	// or the online policy's own name).
	Name string
	// Accesses is the replayed access count (== Log.Accesses()).
	Accesses uint64
	// Misses counts replay misses.
	Misses uint64
	// CostQSum sums Record.CostQ over replay misses.
	CostQSum uint64
}

// never is the next-use sentinel: the block is not referenced again.
const never = int(^uint(0) >> 1)

// splitSets partitions record indices by home set (block % sets).
func splitSets(log *Log, sets int) [][]int {
	if sets <= 0 {
		panic(simerr.New(simerr.ErrBadConfig, "oracle: sets must be positive, got %d", sets))
	}
	bySet := make([][]int, sets)
	for i, rec := range log.Records {
		s := int(rec.Block % uint64(sets))
		bySet[s] = append(bySet[s], i)
	}
	return bySet
}

// nextUses computes, for each position p in the per-set index list idx,
// the position (within idx) of the next access to the same block, or
// never.
func nextUses(log *Log, idx []int) []int {
	next := make([]int, len(idx))
	last := make(map[uint64]int, len(idx))
	for p := len(idx) - 1; p >= 0; p-- {
		b := log.Records[idx[p]].Block
		if q, ok := last[b]; ok {
			next[p] = q
		} else {
			next[p] = never
		}
		last[b] = p
	}
	return next
}

// resident is one line of a replayed set.
type resident struct {
	block uint64
	next  int // position (within the set's index list) of the next use
}

// replaySet runs one set's subsequence under a victim rule and
// accumulates misses and cost into res. victim picks the way to evict
// from a full set given the current position p.
func replaySet(log *Log, idx, next []int, assoc int, res *Result,
	victim func(lines []resident, p int) int) {

	lines := make([]resident, 0, assoc)
	for p, i := range idx {
		rec := log.Records[i]
		found := -1
		for w := range lines {
			if lines[w].block == rec.Block {
				found = w
				break
			}
		}
		if found >= 0 {
			lines[found].next = next[p]
			continue
		}
		res.Misses++
		res.CostQSum += uint64(rec.CostQ)
		if len(lines) < assoc {
			lines = append(lines, resident{block: rec.Block, next: next[p]})
			continue
		}
		w := victim(lines, p)
		lines[w] = resident{block: rec.Block, next: next[p]}
	}
}

// beladyVictim is classic Belady/OPT: evict the line whose next use is
// furthest in the future.
func beladyVictim(log *Log, idx []int) func([]resident, int) int {
	return func(lines []resident, _ int) int {
		w := 0
		for v := 1; v < len(lines); v++ {
			if lines[v].next > lines[w].next {
				w = v
			}
		}
		return w
	}
}

// costVictim is the cost-density rule: evicting a line forfeits one
// future hit, turning its next access into a miss that costs that
// access's CostQ. Evict the line with the smallest forfeited cost per
// cycle of reuse distance — never-referenced-again lines first (they
// forfeit nothing), then minimum CostQ(next)/(next-p), ties broken
// toward the furthest next use.
func costVictim(log *Log, idx []int) func([]resident, int) int {
	return func(lines []resident, p int) int {
		w, wScore := -1, 0.0
		for v := range lines {
			n := lines[v].next
			if n == never {
				return v
			}
			score := float64(log.Records[idx[n]].CostQ) / float64(n-p)
			if w < 0 || score < wScore || (score == wScore && n > lines[w].next) {
				w, wScore = v, score
			}
		}
		return w
	}
}

// checkGeometry validates a replay geometry.
func checkGeometry(sets, assoc int) {
	if sets <= 0 || assoc <= 0 {
		panic(simerr.New(simerr.ErrBadConfig,
			"oracle: replay needs positive sets and assoc, got %d x %d", sets, assoc))
	}
}

// Belady replays the log under classic Belady/OPT: per set, evict the
// line referenced furthest in the future. This minimizes the replay's
// miss count (the Figure 1 "OPT" column, generalized from
// cache.SimulateOPT to arbitrary per-set streams) but not its cost.
func Belady(log *Log, sets, assoc int) Result {
	checkGeometry(sets, assoc)
	res := Result{Name: "belady", Accesses: log.Accesses()}
	for _, idx := range splitSets(log, sets) {
		replaySet(log, idx, nextUses(log, idx), assoc, &res, beladyVictim(log, idx))
	}
	return res
}

// CostBelady replays the log minimizing summed quantized mlp-cost — the
// paper's Section 2 objective. Weighted offline caching has no simple
// exchange-argument optimum, so each set is replayed under both the
// cost-density greedy and classic Belady and the cheaper schedule is
// kept (cost first, misses as tie-break). Sets are independent, so the
// combination is itself a feasible schedule; by construction its summed
// cost is never above Belady's.
func CostBelady(log *Log, sets, assoc int) Result {
	checkGeometry(sets, assoc)
	res := Result{Name: "cost-belady", Accesses: log.Accesses()}
	for _, idx := range splitSets(log, sets) {
		next := nextUses(log, idx)
		var greedy, opt Result
		replaySet(log, idx, next, assoc, &greedy, costVictim(log, idx))
		replaySet(log, idx, next, assoc, &opt, beladyVictim(log, idx))
		best := greedy
		if opt.CostQSum < best.CostQSum ||
			(opt.CostQSum == best.CostQSum && opt.Misses < best.Misses) {
			best = opt
		}
		res.Misses += best.Misses
		res.CostQSum += best.CostQSum
	}
	return res
}

// EHC replays the log under an expected-hit-count predictor — unlike
// the two oracles it uses no future knowledge, so it is a realizable
// midpoint: per block, an EWMA of hits-per-residency is kept across
// evictions, and the victim is the line with the fewest expected hits
// remaining (expected minus received), ties broken toward LRU.
func EHC(log *Log, sets, assoc int) Result {
	checkGeometry(sets, assoc)
	type line struct {
		block   uint64
		hits    uint64
		lastUse int
	}
	res := Result{Name: "ehc", Accesses: log.Accesses()}
	expect := make(map[uint64]float64)
	for _, idx := range splitSets(log, sets) {
		lines := make([]line, 0, assoc)
		for p, i := range idx {
			rec := log.Records[i]
			found := -1
			for w := range lines {
				if lines[w].block == rec.Block {
					found = w
					break
				}
			}
			if found >= 0 {
				lines[found].hits++
				lines[found].lastUse = p
				continue
			}
			res.Misses++
			res.CostQSum += uint64(rec.CostQ)
			if len(lines) < assoc {
				lines = append(lines, line{block: rec.Block, lastUse: p})
				continue
			}
			w := 0
			score := func(l line) float64 { return expect[l.block] - float64(l.hits) }
			for v := 1; v < len(lines); v++ {
				sv, sw := score(lines[v]), score(lines[w])
				if sv < sw || (sv == sw && lines[v].lastUse < lines[w].lastUse) {
					w = v
				}
			}
			old := lines[w]
			expect[old.block] = (expect[old.block] + float64(old.hits)) / 2
			lines[w] = line{block: rec.Block, lastUse: p}
		}
	}
	return res
}

// ReplayOnline replays the log through a real cache.Policy on a fresh
// tag store with the same geometry and scoring — the untimed online
// baseline the oracle results are compared against (and the property
// tests' witnesses: no online policy can miss less than Belady).
func ReplayOnline(log *Log, sets, assoc int, policy cache.Policy) Result {
	checkGeometry(sets, assoc)
	c := cache.New(cache.Config{Sets: sets, Assoc: assoc, BlockBytes: 1}, policy)
	res := Result{Name: policy.Name(), Accesses: log.Accesses()}
	for _, rec := range log.Records {
		if c.Probe(rec.Block, false) {
			continue
		}
		res.Misses++
		res.CostQSum += uint64(rec.CostQ)
		c.Fill(rec.Block, rec.CostQ, false)
	}
	return res
}

// ReplayHybrid replays the log through a hybrid selection scheme
// (SBAR/CBS) driving a fresh tag store — the untimed analogue of a
// timed hybrid run. build receives the tag store so the hybrid can
// attach its ATDs; the returned hybrid is installed as the store's
// policy and the replay mirrors the memory system's access protocol:
// probe, OnAccess with the outcome (every replay miss is primary — the
// untimed replay has no MSHR to merge into), then fill and OnFill on a
// miss. Epochs never advance; static leader selection is the natural
// fit here.
func ReplayHybrid(log *Log, sets, assoc int, build func(mtd *cache.Cache) core.Hybrid) Result {
	checkGeometry(sets, assoc)
	c := cache.New(cache.Config{Sets: sets, Assoc: assoc, BlockBytes: 1}, nil)
	h := build(c)
	c.SetPolicy(h)
	res := Result{Name: h.Name(), Accesses: log.Accesses()}
	for _, rec := range log.Records {
		hit := c.Probe(rec.Block, false)
		h.OnAccess(rec.Block, false, hit, !hit)
		if hit {
			continue
		}
		res.Misses++
		res.CostQSum += uint64(rec.CostQ)
		c.Fill(rec.Block, rec.CostQ, false)
		h.OnFill(rec.Block, rec.CostQ)
	}
	return res
}
