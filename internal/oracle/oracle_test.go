package oracle

import (
	"math/rand"
	"testing"

	"mlpcache/internal/cache"
	"mlpcache/internal/sim"
	"mlpcache/internal/workload"
)

// figure1Stream rebuilds the paper's Figure 1 access loop (P1..P4
// forward, P4..P1 backward, then S1 S2 S3) — the stream the Figure 1
// experiment feeds cache.SimulateOPT.
func figure1Stream(iters int) []uint64 {
	var stream []uint64
	for i := 0; i < iters; i++ {
		stream = append(stream, 0, 1, 2, 3, 3, 2, 1, 0, 4, 5, 6)
	}
	return stream
}

// TestBeladyMatchesSimulateOPT is the golden test: the generalized
// per-set Belady must reproduce cache.SimulateOPT exactly — on the
// Figure 1 example and on random multi-set streams.
func TestBeladyMatchesSimulateOPT(t *testing.T) {
	stream := figure1Stream(100)
	ref := cache.SimulateOPT(stream, 1, 4)
	got := Belady(LogFromBlocks(stream), 1, 4)
	if got.Misses != ref.Misses || got.Accesses != ref.Accesses {
		t.Fatalf("Figure 1 stream: oracle Belady %d/%d misses/accesses, cache.SimulateOPT %d/%d",
			got.Misses, got.Accesses, ref.Misses, ref.Accesses)
	}
	// Unit costs: the cost-weighted objective degenerates to miss count,
	// so the cost replay must tie OPT exactly.
	cost := CostBelady(LogFromBlocks(stream), 1, 4)
	if cost.CostQSum != ref.Misses {
		t.Fatalf("unit-cost CostBelady summed cost %d, want OPT misses %d", cost.CostQSum, ref.Misses)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		sets := []int{1, 2, 8}[trial%3]
		assoc := 2 + trial%4
		n := 200 + rng.Intn(800)
		blocks := make([]uint64, n)
		for i := range blocks {
			blocks[i] = uint64(rng.Intn(6 * sets * assoc))
		}
		ref := cache.SimulateOPT(blocks, sets, assoc)
		got := Belady(LogFromBlocks(blocks), sets, assoc)
		if got.Misses != ref.Misses {
			t.Fatalf("trial %d (%dx%d, %d accesses): oracle %d misses, SimulateOPT %d",
				trial, sets, assoc, n, got.Misses, ref.Misses)
		}
	}
}

// randomLog builds a log with random blocks and random quantized costs.
func randomLog(rng *rand.Rand, n, blockSpace int) *Log {
	log := &Log{Records: make([]Record, n)}
	for i := range log.Records {
		log.Records[i] = Record{
			Block: uint64(rng.Intn(blockSpace)),
			CostQ: uint8(rng.Intn(8)),
			Kind:  sim.AccessMiss,
		}
	}
	return log
}

// TestOracleBounds is the property test: on random traces, Belady's
// miss count lower-bounds every online policy and the EHC predictor,
// and cost-weighted Belady's summed cost never exceeds Belady's.
func TestOracleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		sets := []int{1, 4, 16}[trial%3]
		assoc := 2 + trial%7
		log := randomLog(rng, 300+rng.Intn(1200), 4*sets*assoc+rng.Intn(8*sets*assoc))

		opt := Belady(log, sets, assoc)
		costOpt := CostBelady(log, sets, assoc)
		ehc := EHC(log, sets, assoc)
		online := []Result{
			ReplayOnline(log, sets, assoc, cache.NewLRU()),
			ReplayOnline(log, sets, assoc, cache.NewFIFO()),
			ReplayOnline(log, sets, assoc, cache.NewRandom(uint64(trial))),
			ehc,
		}
		for _, res := range online {
			if res.Accesses != opt.Accesses {
				t.Fatalf("trial %d: %s replayed %d accesses, oracle %d",
					trial, res.Name, res.Accesses, opt.Accesses)
			}
			if opt.Misses > res.Misses {
				t.Fatalf("trial %d (%dx%d): Belady %d misses exceeds %s's %d",
					trial, sets, assoc, opt.Misses, res.Name, res.Misses)
			}
		}
		if costOpt.CostQSum > opt.CostQSum {
			t.Fatalf("trial %d (%dx%d): cost-weighted Belady cost %d exceeds Belady's %d",
				trial, sets, assoc, costOpt.CostQSum, opt.CostQSum)
		}
		if opt.Misses > costOpt.Misses {
			t.Fatalf("trial %d: Belady misses %d exceed cost-Belady's %d (OPT not minimal)",
				trial, opt.Misses, costOpt.Misses)
		}
	}
}

// captureRun runs one audited simulation with a capture sink attached
// and returns the result and the log.
func captureRun(t *testing.T, bench string, spec sim.PolicySpec, n uint64) (sim.Result, *Log) {
	t.Helper()
	w, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = n
	cfg.Policy = spec
	cfg.Audit = true
	cap := NewCapture()
	cfg.Capture = cap
	res, err := sim.Run(cfg, w.Build(42))
	if err != nil {
		t.Fatalf("captured run failed: %v", err)
	}
	return res, cap.Log()
}

// TestCaptureMatchesLiveCounters asserts the capture sink's own
// accounting agrees with the simulator's, across an audited sweep of
// policies: captured primary misses equal MemStats.DemandMisses and
// the captured cost sum equals MemStats.CostQSum, for every kind of
// access path (hits, misses, merges).
func TestCaptureMatchesLiveCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, spec := range []sim.PolicySpec{
		{Kind: sim.PolicyLRU},
		{Kind: sim.PolicyLIN, Lambda: 4},
		{Kind: sim.PolicySBAR},
	} {
		for _, bench := range []string{"mcf", "ammp"} {
			res, log := captureRun(t, bench, spec, 150_000)
			if log.LiveMisses != res.Mem.DemandMisses {
				t.Errorf("%s/%s: captured %d misses, simulator counted %d",
					bench, spec, log.LiveMisses, res.Mem.DemandMisses)
			}
			if log.LiveCost != res.Mem.CostQSum {
				t.Errorf("%s/%s: captured cost %d, simulator counted %d",
					bench, spec, log.LiveCost, res.Mem.CostQSum)
			}
			var misses, merges uint64
			for _, rec := range log.Records {
				switch rec.Kind {
				case sim.AccessMiss:
					misses++
				case sim.AccessMerge:
					merges++
				}
			}
			if misses != res.Mem.DemandMisses || merges != res.Mem.MergedMisses {
				t.Errorf("%s/%s: record kinds %d miss / %d merge, simulator %d / %d",
					bench, spec, misses, merges, res.Mem.DemandMisses, res.Mem.MergedMisses)
			}
			if log.Accesses() == 0 {
				t.Errorf("%s/%s: empty capture", bench, spec)
			}
		}
	}
}

// TestComparisonOnCapturedRuns replays real captured logs at the live
// geometry and checks the acceptance invariants end to end: Belady
// lower-bounds the live miss count, cost-weighted Belady's cost
// lower-bounds both Belady's cost and the live cost.
func TestComparisonOnCapturedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	l2 := sim.DefaultConfig().L2
	sets, err := l2.SetCount()
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range []string{"mcf", "art", "parser", "ammp"} {
		_, log := captureRun(t, bench, sim.PolicySpec{Kind: sim.PolicyLRU}, 200_000)
		cmp := Compare(log, sets, l2.Assoc)
		if cmp.OPT.Misses > cmp.LiveMisses {
			t.Errorf("%s: Belady %d misses exceeds live %d", bench, cmp.OPT.Misses, cmp.LiveMisses)
		}
		if cmp.CostOPT.CostQSum > cmp.OPT.CostQSum {
			t.Errorf("%s: cost-Belady cost %d exceeds Belady's %d",
				bench, cmp.CostOPT.CostQSum, cmp.OPT.CostQSum)
		}
		if cmp.CostOPT.CostQSum > cmp.LiveCost {
			t.Errorf("%s: cost-Belady cost %d exceeds live %d",
				bench, cmp.CostOPT.CostQSum, cmp.LiveCost)
		}
		if cmp.MissHeadroomPct() < 0 || cmp.CostHeadroomPct() < 0 {
			t.Errorf("%s: negative headroom: miss %.1f%% cost %.1f%%",
				bench, cmp.MissHeadroomPct(), cmp.CostHeadroomPct())
		}
	}
}
