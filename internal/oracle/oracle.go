// Package oracle is the offline replacement-oracle engine: it captures
// the live L2 demand-access stream (via sim.Config.Capture) into a
// compact access log and replays it, untimed, under oracles the online
// policies can be measured against. Three replays are provided: classic
// Belady/OPT, which minimizes miss count — the objective the paper's
// Section 2 and Figure 1 argue is the wrong one; a cost-weighted Belady
// variant that minimizes the summed quantized mlp-cost the live run
// actually accrued — the paper's objective; and an EHC-style
// expected-hit-count predictor (a realizable midpoint between the
// oracles and the online policies, after "Making Belady-Inspired
// Replacement Policies More Effective Using Expected Hit Count"). The
// generalization starts from cache.SimulateOPT, the Figure 1 worked
// example's fully-associative OPT, and extends it to the full per-set
// geometry of the live L2 with per-access cost weights.
package oracle

import (
	"mlpcache/internal/core"
	"mlpcache/internal/learn"
	"mlpcache/internal/sim"
)

// Record is one captured L2 demand access.
type Record struct {
	// Block is the L2 block number (the live L2 maps it to set
	// block % sets, and the replays use the same mapping).
	Block uint64
	// CostQ is the access's quantized mlp-cost if it misses: for a
	// captured hit, the resident line's stored cost (what the block's
	// own miss accrued); for a captured miss or merge, the cost
	// Algorithm 1 computed when the miss's fill serviced it. A miss
	// still in flight when the run ended keeps 0.
	CostQ uint8
	// Kind is the access's live outcome (hit, primary miss, merge).
	Kind sim.AccessKind
}

// Log is a captured access stream plus the live run's own accounting
// over it, so replays can be compared against what actually happened.
type Log struct {
	Records []Record
	// LiveMisses counts captured primary demand misses — equal to the
	// run's MemStats.DemandMisses.
	LiveMisses uint64
	// LiveCost sums the quantized cost over serviced captured misses —
	// equal to the run's MemStats.CostQSum.
	LiveCost uint64
}

// Accesses returns the number of captured accesses.
func (l *Log) Accesses() uint64 { return uint64(len(l.Records)) }

// LogFromBlocks builds a log from a bare block stream with unit cost
// per access — miss count and summed cost coincide, which makes the
// classic and cost-weighted replays directly comparable to
// cache.SimulateOPT (tests use this).
func LogFromBlocks(blocks []uint64) *Log {
	log := &Log{Records: make([]Record, len(blocks))}
	for i, b := range blocks {
		log.Records[i] = Record{Block: b, CostQ: 1, Kind: sim.AccessMiss}
	}
	return log
}

// TrainingSamples converts the captured stream into the offline
// trainer's input: one learn.Sample per record, block plus quantized
// cost, order preserved — training replays the exact demand stream the
// live run saw (docs/ORACLE.md, "Capture as training data").
func (l *Log) TrainingSamples() []learn.Sample {
	out := make([]learn.Sample, len(l.Records))
	for i, rec := range l.Records {
		out[i] = learn.Sample{Block: rec.Block, CostQ: rec.CostQ}
	}
	return out
}

// Capture implements sim.AccessObserver: it appends one Record per L2
// demand access and patches miss/merge records with the accrued cost
// when the miss's fill computes it (the fill-time OnMissCost call). Set
// it as Config.Capture, run, then read Log.
type Capture struct {
	log Log
	// pending maps an in-flight block to the indices of its unpatched
	// miss and merge records.
	pending map[uint64][]int
}

// NewCapture returns an empty capture sink.
func NewCapture() *Capture {
	return &Capture{pending: make(map[uint64][]int)}
}

// OnL2Access implements sim.AccessObserver.
func (c *Capture) OnL2Access(block uint64, kind sim.AccessKind, costQ uint8) {
	if costQ > core.CostQMax {
		costQ = core.CostQMax
	}
	c.log.Records = append(c.log.Records, Record{Block: block, CostQ: costQ, Kind: kind})
	switch kind {
	case sim.AccessMiss:
		c.log.LiveMisses++
		c.pending[block] = append(c.pending[block], len(c.log.Records)-1)
	case sim.AccessMerge:
		c.pending[block] = append(c.pending[block], len(c.log.Records)-1)
	}
}

// OnMissCost implements sim.AccessObserver: the block's fill computed
// its accrued quantized cost, so every pending record for the block is
// patched and the live cost sum advances — once per serviced fill,
// matching MemStats.CostQSum.
func (c *Capture) OnMissCost(block uint64, costQ uint8) {
	if costQ > core.CostQMax {
		costQ = core.CostQMax
	}
	for _, i := range c.pending[block] {
		c.log.Records[i].CostQ = costQ
	}
	delete(c.pending, block)
	c.log.LiveCost += uint64(costQ)
}

// Log returns the captured stream. Call it after the run completes;
// misses still in flight at the end keep cost 0, exactly as the live
// run never accounted them either.
func (c *Capture) Log() *Log { return &c.log }
