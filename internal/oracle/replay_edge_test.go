package oracle

import (
	"testing"

	"mlpcache/internal/cache"
	"mlpcache/internal/core"
	"mlpcache/internal/sim"
)

// replayAll runs every replay in the package over one log and returns
// the results keyed by name — the degenerate-input tests assert the
// same properties across all of them.
func replayAll(log *Log, sets, assoc int) map[string]Result {
	out := map[string]Result{
		"belady":      Belady(log, sets, assoc),
		"cost-belady": CostBelady(log, sets, assoc),
		"ehc":         EHC(log, sets, assoc),
		"online-lru":  ReplayOnline(log, sets, assoc, cache.NewLRU()),
		"online-rand": ReplayOnline(log, sets, assoc, cache.NewRandom(7)),
	}
	out["hybrid-sbar"] = ReplayHybrid(log, sets, assoc, func(mtd *cache.Cache) core.Hybrid {
		return core.NewSBAR(mtd, core.SBARConfig{
			LeaderSets: 2,
			PselBits:   6,
			Lambda:     4,
			Selector:   core.NewSimpleStatic(sets, 2),
			Threads:    1,
		})
	})
	return out
}

// TestReplayEmptyCapture feeds a capture with no records through every
// replay and Compare: clean all-zero results and zero headroom, no
// panics, no NaNs.
func TestReplayEmptyCapture(t *testing.T) {
	log := &Log{}
	for name, res := range replayAll(log, 8, 4) {
		if res.Accesses != 0 || res.Misses != 0 || res.CostQSum != 0 {
			t.Errorf("%s: empty capture replayed to %d/%d/%d accesses/misses/cost, want all zero",
				name, res.Accesses, res.Misses, res.CostQSum)
		}
	}
	cmp := Compare(log, 8, 4)
	if got := cmp.MissHeadroomPct(); got != 0 {
		t.Errorf("empty capture miss headroom %.1f%%, want 0", got)
	}
	if got := cmp.CostHeadroomPct(); got != 0 {
		t.Errorf("empty capture cost headroom %.1f%%, want 0", got)
	}
	if len(log.TrainingSamples()) != 0 {
		t.Errorf("empty capture yielded %d training samples", len(log.TrainingSamples()))
	}
}

// TestReplaySingleRecord replays a one-record capture: exactly one
// access, one compulsory miss, and the record's cost — under every
// replay rule.
func TestReplaySingleRecord(t *testing.T) {
	log := &Log{Records: []Record{{Block: 13, CostQ: 5, Kind: sim.AccessMiss}}}
	for name, res := range replayAll(log, 8, 4) {
		if res.Accesses != 1 || res.Misses != 1 || res.CostQSum != 5 {
			t.Errorf("%s: single record replayed to %d/%d/%d accesses/misses/cost, want 1/1/5",
				name, res.Accesses, res.Misses, res.CostQSum)
		}
	}
}

// TestReplayAllHitsCapture builds the capture an all-hits run would
// leave behind — LiveMisses and LiveCost zero, every record a hit on
// one hot block — and checks the replays charge only the compulsory
// miss while Compare reports clean zero headroom (the live run has no
// misses an oracle could avoid; the percentages must not go negative
// or NaN).
func TestReplayAllHitsCapture(t *testing.T) {
	log := &Log{}
	for i := 0; i < 64; i++ {
		log.Records = append(log.Records, Record{Block: 21, CostQ: 3, Kind: sim.AccessHit})
	}
	for name, res := range replayAll(log, 8, 4) {
		if res.Accesses != 64 || res.Misses != 1 {
			t.Errorf("%s: all-hits capture replayed to %d/%d accesses/misses, want 64/1",
				name, res.Accesses, res.Misses)
		}
	}
	cmp := Compare(log, 8, 4)
	if got := cmp.MissHeadroomPct(); got != 0 {
		t.Errorf("all-hits capture miss headroom %.1f%%, want 0", got)
	}
	if got := cmp.CostHeadroomPct(); got != 0 {
		t.Errorf("all-hits capture cost headroom %.1f%%, want 0", got)
	}
}
