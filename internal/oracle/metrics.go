package oracle

import "mlpcache/internal/metrics"

// Comparison bundles one captured run's live accounting with all three
// offline replays at a fixed geometry — the unit of the oracle-headroom
// experiment and of `mlpsim -oracle`.
type Comparison struct {
	// Sets and Assoc are the replay geometry (the live L2's).
	Sets, Assoc int
	// Accesses is the captured access count.
	Accesses uint64
	// LiveMisses and LiveCost are the live run's own score over the
	// same stream (MemStats.DemandMisses / MemStats.CostQSum).
	LiveMisses, LiveCost uint64
	// OPT is the classic Belady replay, CostOPT the cost-weighted one,
	// EHC the realizable expected-hit-count predictor.
	OPT, CostOPT, EHC Result
}

// Compare captures the full comparison: the log replayed under all
// three oracles at the given geometry.
func Compare(log *Log, sets, assoc int) Comparison {
	return Comparison{
		Sets:       sets,
		Assoc:      assoc,
		Accesses:   log.Accesses(),
		LiveMisses: log.LiveMisses,
		LiveCost:   log.LiveCost,
		OPT:        Belady(log, sets, assoc),
		CostOPT:    CostBelady(log, sets, assoc),
		EHC:        EHC(log, sets, assoc),
	}
}

// headroomPct returns how much of `live` the oracle value `opt` leaves
// on the table, in percent of live (0 when the live run was idle).
func headroomPct(live, opt uint64) float64 {
	if live == 0 {
		return 0
	}
	return 100 * (float64(live) - float64(opt)) / float64(live)
}

// MissHeadroomPct is the live run's miss-count headroom vs Belady:
// the percentage of live misses an optimal schedule would have avoided.
func (c Comparison) MissHeadroomPct() float64 { return headroomPct(c.LiveMisses, c.OPT.Misses) }

// CostHeadroomPct is the live run's mlp-cost headroom vs cost-weighted
// Belady — the paper's objective: the percentage of summed quantized
// cost an optimal schedule would have avoided.
func (c Comparison) CostHeadroomPct() float64 { return headroomPct(c.LiveCost, c.CostOPT.CostQSum) }

// Observe registers the comparison under the stable dotted names
// catalogued in docs/ORACLE.md (and docs/OBSERVABILITY.md's oracle
// section): the captured stream size, the live score, each replay's
// miss count and summed cost, and the two headroom gauges.
func (c Comparison) Observe(reg *metrics.Registry) {
	reg.Counter("oracle.accesses", "accesses", "captured L2 demand accesses replayed").Add(c.Accesses)
	reg.Counter("oracle.live.miss", "misses", "live run's primary demand misses over the captured stream").Add(c.LiveMisses)
	reg.Counter("oracle.live.cost", "cost_q", "live run's summed quantized cost over the captured stream").Add(c.LiveCost)
	reg.Counter("oracle.opt.miss", "misses", "Belady replay misses (minimum possible)").Add(c.OPT.Misses)
	reg.Counter("oracle.opt.cost", "cost_q", "Belady replay summed quantized cost").Add(c.OPT.CostQSum)
	reg.Counter("oracle.costopt.miss", "misses", "cost-weighted Belady replay misses").Add(c.CostOPT.Misses)
	reg.Counter("oracle.costopt.cost", "cost_q", "cost-weighted Belady replay summed quantized cost").Add(c.CostOPT.CostQSum)
	reg.Counter("oracle.ehc.miss", "misses", "expected-hit-count replay misses").Add(c.EHC.Misses)
	reg.Counter("oracle.ehc.cost", "cost_q", "expected-hit-count replay summed quantized cost").Add(c.EHC.CostQSum)
	reg.Gauge("oracle.headroom.miss_pct", "percent", "live misses an optimal schedule avoids").Set(c.MissHeadroomPct())
	reg.Gauge("oracle.headroom.cost_pct", "percent", "live summed cost an optimal schedule avoids").Set(c.CostHeadroomPct())
}
