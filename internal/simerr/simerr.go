// Package simerr defines the simulator's error taxonomy: a small set of
// sentinel errors every internal package wraps its failures in, so
// callers — sim.Run, the CLIs, the experiment harness — can classify a
// failure with errors.Is without parsing message strings. ErrBadConfig
// guards the knobs of the paper's Table 2 baseline machine (cache
// geometry, MSHR size, DRAM timing) against values the model's
// assumptions — Algorithm 1's cost accrual included — do not cover.
//
// Conventions (see docs/ROBUSTNESS.md):
//
//   - Functions that consume external input (configs, trace files, CLI
//     flags) return wrapped errors; nothing that can be triggered from
//     outside the process panics.
//   - Constructors whose misuse is a programmer error (negative
//     associativity passed by code, not by a config file) panic, but
//     panic with a typed error value built by New, so a recover()
//     boundary can still classify it.
//   - sim.Run installs such a boundary: any internal panic surfaces as a
//     wrapped ErrInternal instead of escaping the public API.
package simerr

import (
	"errors"
	"fmt"
)

// Sentinel errors. Wrapped errors match these under errors.Is.
var (
	// ErrBadConfig marks an invalid configuration: bad geometry, an
	// unknown policy kind, out-of-range counter widths.
	ErrBadConfig = errors.New("invalid configuration")

	// ErrCorruptTrace marks undecodable or truncated trace input.
	ErrCorruptTrace = errors.New("corrupt trace")

	// ErrMSHRLeak marks an MSHR protocol violation: freeing a block
	// that holds no entry (a double free or a free-without-allocate).
	ErrMSHRLeak = errors.New("mshr protocol violation")

	// ErrInvariant marks a machine-checked invariant violation found by
	// the audit package (internal/audit).
	ErrInvariant = errors.New("invariant violation")

	// ErrUnknownBenchmark marks a benchmark name absent from the
	// workload registry.
	ErrUnknownBenchmark = errors.New("unknown benchmark")

	// ErrInternal marks a provable simulator bug caught at a recover()
	// boundary — the typed form of "this should never happen".
	ErrInternal = errors.New("internal simulator error")

	// ErrCancelled marks a run stopped by its context: a deadline
	// expired or the caller cancelled mid-simulation. The partial work
	// is discarded; errors.Is also matches the context's own cause
	// (context.DeadlineExceeded or context.Canceled) through the wrap.
	ErrCancelled = errors.New("run cancelled")
)

// New builds an error wrapping the given sentinel:
//
//	simerr.New(simerr.ErrBadConfig, "cache: %d ways", n)
//
// renders as "cache: 8 ways: invalid configuration" and matches
// errors.Is(err, simerr.ErrBadConfig).
func New(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), sentinel)
}

// Wrap chains an underlying cause onto a sentinel with context:
//
//	simerr.Wrap(simerr.ErrCorruptTrace, err, "reading dep")
//
// The result matches both the sentinel and the cause under errors.Is.
func Wrap(sentinel, cause error, context string) error {
	return fmt.Errorf("%s: %w: %w", context, sentinel, cause)
}
