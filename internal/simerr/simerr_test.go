package simerr

import (
	"errors"
	"io"
	"testing"
)

func TestNewMatchesSentinel(t *testing.T) {
	err := New(ErrBadConfig, "cache: %d ways", -1)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("New result does not match its sentinel: %v", err)
	}
	if errors.Is(err, ErrCorruptTrace) {
		t.Fatalf("New result matches a foreign sentinel: %v", err)
	}
	want := "cache: -1 ways: invalid configuration"
	if err.Error() != want {
		t.Fatalf("message = %q, want %q", err.Error(), want)
	}
}

func TestWrapMatchesSentinelAndCause(t *testing.T) {
	err := Wrap(ErrCorruptTrace, io.ErrUnexpectedEOF, "reading dep")
	if !errors.Is(err, ErrCorruptTrace) {
		t.Fatalf("Wrap result does not match its sentinel: %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("Wrap result does not match its cause: %v", err)
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{
		ErrBadConfig, ErrCorruptTrace, ErrMSHRLeak,
		ErrInvariant, ErrUnknownBenchmark, ErrInternal,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Fatalf("sentinels %d and %d alias: %v / %v", i, j, a, b)
			}
		}
	}
}
