package mshr

import (
	"testing"
)

// driveMSHR runs a deterministic allocate/tick/free pattern and returns
// the observed costs plus the final stats block.
func driveMSHR(t *testing.T, m *MSHR) ([]float64, Stats) {
	t.Helper()
	var costs []float64
	for round := uint64(0); round < 8; round++ {
		base := round * 1000
		for b := uint64(0); b < 8; b++ {
			m.Allocate(base+b, b%2 == 0, base+b)
		}
		for c := base; c < base+500; c++ {
			m.Tick(c)
		}
		for b := uint64(0); b < 8; b++ {
			costs = append(costs, free(t, m, base+b, base+500+b))
		}
	}
	return costs, m.Stats()
}

// TestResetMatchesFresh is the arena's reuse contract: a Reset MSHR file
// must reproduce a just-built one — same costs from the shared cost
// clock, same occupancy accounting, same stats — under both the exact
// and the adder-approximated clock.
func TestResetMatchesFresh(t *testing.T) {
	for _, cfg := range []Config{{Entries: 16}, {Entries: 16, Adders: 4}} {
		fresh := New(cfg)
		wantCosts, wantStats := driveMSHR(t, fresh)

		used := New(cfg)
		driveMSHR(t, used)
		used.Allocate(42, true, 1) // leave an entry live so Reset must clear it
		used.Reset()
		if used.Len() != 0 {
			t.Fatalf("Len = %d after Reset, want 0", used.Len())
		}
		if used.Pending(42) {
			t.Fatal("entry survived Reset")
		}
		gotCosts, gotStats := driveMSHR(t, used)

		if len(gotCosts) != len(wantCosts) {
			t.Fatalf("cost count diverges after Reset: %d vs %d", len(gotCosts), len(wantCosts))
		}
		for i := range gotCosts {
			if gotCosts[i] != wantCosts[i] {
				t.Fatalf("cost %d diverges after Reset: %v vs %v", i, gotCosts[i], wantCosts[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("stats diverge after Reset: got %+v, want %+v", gotStats, wantStats)
		}
	}
}
