// Package mshr models the Miss Status Holding Registers together with the
// paper's cost calculation logic (CCL, Algorithm 1): every cycle, each
// outstanding demand miss accrues 1/N cycles of MLP-based cost, where N is
// the number of outstanding demand misses. An isolated miss therefore
// accrues its full service latency (444 cycles on the baseline machine),
// while k parallel misses split each cycle k ways.
//
// Two update implementations are provided: the exact one (an adder per
// entry, invoked every cycle) and the paper's cost-reduced variant that
// time-shares four adders round-robin across the valid entries, which the
// paper reports — and the ablation bench confirms — makes a negligible
// difference.
package mshr

import (
	"fmt"

	"mlpcache/internal/blockmap"
	"mlpcache/internal/metrics"
	"mlpcache/internal/simerr"
)

// Config parameterizes the MSHR file.
type Config struct {
	// Entries is the number of simultaneous outstanding misses (32 in
	// the baseline).
	Entries int
	// Adders, when positive, enables the time-shared-adder
	// approximation with that many adders (the paper uses 4). Zero
	// selects the exact per-entry update.
	Adders int
	// CostCap saturates each entry's accumulated cost, modelling a
	// finite-width cost register. Zero means unbounded.
	CostCap float64
}

// Validate checks the configuration, wrapping failures in
// simerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.Entries <= 0 {
		return simerr.New(simerr.ErrBadConfig, "mshr: Entries must be positive, got %d", c.Entries)
	}
	if c.Adders < 0 {
		return simerr.New(simerr.ErrBadConfig, "mshr: Adders must be non-negative, got %d", c.Adders)
	}
	if c.CostCap < 0 {
		return simerr.New(simerr.ErrBadConfig, "mshr: CostCap must be non-negative, got %v", c.CostCap)
	}
	return nil
}

type entry struct {
	block      uint64
	valid      bool
	demand     bool
	cost       float64
	lastUpdate uint64  // cycle of the entry's last adder visit
	base       float64 // exact mode: cost-clock reading when demand charging began
}

// MSHR is the miss file.
type MSHR struct {
	cfg      Config
	capacity int // allocatable entries; <= cfg.Entries (see SetCapacity)
	entries  []entry
	index    *blockmap.Table[int] // block → slot; open-addressed, allocation-free
	demand   int                  // count of valid demand entries
	rr       int                  // round-robin pointer for adder sharing

	// Exact-mode cost clock: clock accumulates Σ 1/N(t) over cycles with
	// N(t) > 0 demand misses outstanding. An entry's cost is the clock
	// advance over its lifetime (clock minus the entry's base), which
	// makes the exact per-entry update O(1) per allocate/free event
	// instead of O(entries) per cycle.
	clock   float64
	clockAt uint64 // cycle the clock was last advanced to

	// Peak tracks the maximum simultaneous occupancy observed.
	Peak int

	allocations uint64 // primary entries created
	merges      uint64 // accesses absorbed by an in-flight entry
	rejects     uint64 // allocations refused because the file was full
}

// Stats is the file's lifetime accounting, exported to the metrics
// registry as the mshr.* family.
type Stats struct {
	// Allocations counts primary entries created (demand and prefetch).
	Allocations uint64
	// Merges counts accesses absorbed by an in-flight entry.
	Merges uint64
	// Rejects counts allocations refused because the file was full.
	Rejects uint64
	// Peak is the maximum simultaneous occupancy observed.
	Peak int
}

// Stats returns the file's lifetime accounting.
func (m *MSHR) Stats() Stats {
	return Stats{Allocations: m.allocations, Merges: m.merges, Rejects: m.rejects, Peak: m.Peak}
}

// Observe registers the counters in the metrics registry as the mshr.*
// family: mshr.allocations, mshr.merges, mshr.rejects, and the
// mshr.occupancy.peak gauge.
func (s Stats) Observe(reg *metrics.Registry) {
	reg.Counter("mshr.allocations", "entries", "primary MSHR entries created").Add(s.Allocations)
	reg.Counter("mshr.merges", "accesses", "accesses merged into in-flight entries").Add(s.Merges)
	reg.Counter("mshr.rejects", "accesses", "allocations refused with the file full").Add(s.Rejects)
	reg.Gauge("mshr.occupancy.peak", "entries", "maximum simultaneous occupancy").Set(float64(s.Peak))
}

// New builds an MSHR file. It panics (with a typed simerr.ErrBadConfig
// error) on an invalid configuration; validate externally-sourced
// configs with Config.Validate first.
func New(cfg Config) *MSHR {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &MSHR{
		cfg:      cfg,
		capacity: cfg.Entries,
		entries:  make([]entry, cfg.Entries),
		index:    blockmap.New[int](cfg.Entries),
	}
}

// Exact reports whether the exact (event-driven) cost update is in use.
func (m *MSHR) Exact() bool { return m.cfg.Adders <= 0 }

// Reset returns the file to its just-built state in place: all entries
// invalidated, the block index emptied, the cost clock, round-robin
// pointer, peak gauge and lifetime counters zeroed, and any SetCapacity
// throttle lifted. The entry array and index storage are reused, so a
// pooled file costs no allocation on its next run (sim.Arena).
func (m *MSHR) Reset() {
	clear(m.entries)
	m.index.Reset()
	m.capacity = m.cfg.Entries
	m.demand = 0
	m.rr = 0
	m.clock = 0
	m.clockAt = 0
	m.Peak = 0
	m.allocations = 0
	m.merges = 0
	m.rejects = 0
}

// advanceClock brings the exact-mode cost clock up to the given cycle.
// Between events N is constant, so the clock advances by elapsed/N.
func (m *MSHR) advanceClock(cycle uint64) {
	if cycle > m.clockAt {
		if m.demand > 0 {
			m.clock += float64(cycle-m.clockAt) / float64(m.demand)
		}
		m.clockAt = cycle
	}
}

// Config returns the file's configuration.
func (m *MSHR) Config() Config { return m.cfg }

// Len returns the number of valid entries.
func (m *MSHR) Len() int { return m.index.Len() }

// Full reports whether no entry is free.
func (m *MSHR) Full() bool { return m.index.Len() >= m.capacity }

// Capacity returns the number of currently allocatable entries.
func (m *MSHR) Capacity() int { return m.capacity }

// SetCapacity throttles the file to n allocatable entries (clamped to
// the configured entry count). Entries beyond the new capacity that are
// already in flight complete normally; only new allocations are gated.
// The fault-injection harness uses this to model a degraded miss file
// mid-run. It returns a wrapped simerr.ErrBadConfig for n < 1.
func (m *MSHR) SetCapacity(n int) error {
	if n < 1 {
		return simerr.New(simerr.ErrBadConfig, "mshr: capacity must be at least 1, got %d", n)
	}
	if n > m.cfg.Entries {
		n = m.cfg.Entries
	}
	m.capacity = n
	return nil
}

// OutstandingDemand returns N, the number of outstanding demand misses.
func (m *MSHR) OutstandingDemand() int { return m.demand }

// Pending reports whether a miss for the block is in flight.
func (m *MSHR) Pending(block uint64) bool {
	_, ok := m.index.Get(block)
	return ok
}

// Allocate registers a miss for the block at the given cycle.
// primary is true when a new entry was created; false means the miss
// merged into an in-flight entry for the same block (the paper treats
// such concurrent misses as a single miss). full is true — and nothing is
// allocated — when the file has no free entry.
func (m *MSHR) Allocate(block uint64, demand bool, cycle uint64) (primary, full bool) {
	if m.Exact() {
		m.advanceClock(cycle)
	}
	if i, ok := m.index.Get(block); ok {
		// Merge. A demand access upgrades a non-demand entry so the
		// cost machinery starts charging it.
		if demand && !m.entries[i].demand {
			m.entries[i].demand = true
			m.demand++
			if m.Exact() {
				m.entries[i].base = m.clock
			}
		}
		m.merges++
		return false, false
	}
	if m.Full() {
		m.rejects++
		return false, true
	}
	slot := -1
	for i := range m.entries {
		if !m.entries[i].valid {
			slot = i
			break
		}
	}
	m.entries[slot] = entry{block: block, valid: true, demand: demand, lastUpdate: cycle}
	m.index.Put(block, slot)
	if demand {
		m.demand++
		if m.Exact() {
			m.entries[slot].base = m.clock
		}
	}
	if m.index.Len() > m.Peak {
		m.Peak = m.index.Len()
	}
	m.allocations++
	return true, false
}

// Tick advances the cost calculation logic by one cycle (Algorithm 1's
// update_mlp_cost). cycle is the current cycle number, used by the
// adder-sharing approximation.
func (m *MSHR) Tick(cycle uint64) {
	if m.demand == 0 {
		return
	}
	if m.Exact() {
		// Exact mode needs no per-cycle work: the cost clock advances
		// lazily at allocate/free events. (Calling Tick is still
		// harmless.)
		return
	}
	share := 1 / float64(m.demand)
	// Time-shared adders: visit up to Adders valid entries round-robin,
	// crediting each with the cycles elapsed since its last visit at the
	// current 1/N rate.
	visited := 0
	for scanned := 0; scanned < len(m.entries) && visited < m.cfg.Adders; scanned++ {
		i := m.rr
		m.rr = (m.rr + 1) % len(m.entries)
		if !m.entries[i].valid {
			continue
		}
		visited++
		if !m.entries[i].demand {
			m.entries[i].lastUpdate = cycle
			continue
		}
		elapsed := float64(cycle - m.entries[i].lastUpdate)
		if elapsed > 0 {
			m.addCost(i, elapsed*share)
			m.entries[i].lastUpdate = cycle
		}
	}
}

func (m *MSHR) addCost(i int, amount float64) {
	m.entries[i].cost += amount
	if m.cfg.CostCap > 0 && m.entries[i].cost > m.cfg.CostCap {
		m.entries[i].cost = m.cfg.CostCap
	}
}

// Free releases the block's entry when its miss is serviced, returning
// the accumulated MLP-based cost. Freeing a block with no entry — a
// double free or a free-without-allocate, a protocol violation in the
// caller — returns a wrapped simerr.ErrMSHRLeak instead of panicking, so
// the violation propagates to sim.Run's caller as a typed error.
func (m *MSHR) Free(block uint64, cycle uint64) (float64, error) {
	i, ok := m.index.Get(block)
	if !ok {
		return 0, simerr.New(simerr.ErrMSHRLeak,
			"mshr: Free of block %#x with no entry (double free or free-without-allocate)", block)
	}
	e := &m.entries[i]
	var cost float64
	switch {
	case m.Exact():
		if e.demand {
			m.advanceClock(cycle)
			cost = m.clock - e.base
			if m.cfg.CostCap > 0 && cost > m.cfg.CostCap {
				cost = m.cfg.CostCap
			}
		}
	default:
		if e.demand && m.demand > 0 {
			// Credit the tail the round-robin scan has not
			// reached yet.
			if elapsed := float64(cycle - e.lastUpdate); elapsed > 0 {
				m.addCost(i, elapsed/float64(m.demand))
			}
		}
		cost = e.cost
	}
	if e.demand {
		m.demand--
	}
	e.valid = false
	m.index.Delete(block)
	return cost, nil
}

// Cost returns the block's accumulated cost as of the given cycle; ok is
// false if no entry exists.
func (m *MSHR) Cost(block uint64, cycle uint64) (cost float64, ok bool) {
	i, found := m.index.Get(block)
	if !found {
		return 0, false
	}
	if m.Exact() {
		if !m.entries[i].demand {
			return 0, true
		}
		m.advanceClock(cycle)
		return m.clock - m.entries[i].base, true
	}
	return m.entries[i].cost, true
}

// AuditInvariants cross-checks the file's internal bookkeeping and
// returns a description of every violated invariant (empty when
// consistent). The audit package runs this periodically during audited
// simulations; it never mutates state.
//
// Checked invariants: the index maps exactly the valid entries (no leak,
// no alias, no dangling slot); the demand counter equals the number of
// valid demand entries; occupancy never exceeds the configured size; in
// exact mode every valid demand entry's cost-clock base is no greater
// than the current clock.
func (m *MSHR) AuditInvariants() []string {
	var out []string
	valid := 0
	demand := 0
	for i := range m.entries {
		e := &m.entries[i]
		if !e.valid {
			continue
		}
		valid++
		if e.demand {
			demand++
		}
		slot, ok := m.index.Get(e.block)
		if !ok {
			out = append(out, fmt.Sprintf("valid entry %d (block %#x) missing from index", i, e.block))
		} else if slot != i {
			out = append(out, fmt.Sprintf("block %#x indexed at slot %d but stored at %d", e.block, slot, i))
		}
		if m.Exact() && e.demand && e.base > m.clock {
			out = append(out, fmt.Sprintf("demand block %#x clock base %v ahead of clock %v", e.block, e.base, m.clock))
		}
	}
	if m.index.Len() != valid {
		out = append(out, fmt.Sprintf("index holds %d blocks but %d entries are valid", m.index.Len(), valid))
	}
	if m.demand != demand {
		out = append(out, fmt.Sprintf("demand counter %d but %d valid demand entries", m.demand, demand))
	}
	if valid > m.cfg.Entries {
		out = append(out, fmt.Sprintf("occupancy %d exceeds configured %d entries", valid, m.cfg.Entries))
	}
	m.index.Range(func(block uint64, slot int) bool {
		if slot < 0 || slot >= len(m.entries) {
			out = append(out, fmt.Sprintf("block %#x indexed at out-of-range slot %d", block, slot))
			return true
		}
		if !m.entries[slot].valid || m.entries[slot].block != block {
			out = append(out, fmt.Sprintf("index entry %#x→%d dangles", block, slot))
		}
		return true
	})
	return out
}
