// Package mshr models the Miss Status Holding Registers together with the
// paper's cost calculation logic (CCL, Algorithm 1): every cycle, each
// outstanding demand miss accrues 1/N cycles of MLP-based cost, where N is
// the number of outstanding demand misses. An isolated miss therefore
// accrues its full service latency (444 cycles on the baseline machine),
// while k parallel misses split each cycle k ways.
//
// Two update implementations are provided: the exact one (an adder per
// entry, invoked every cycle) and the paper's cost-reduced variant that
// time-shares four adders round-robin across the valid entries, which the
// paper reports — and the ablation bench confirms — makes a negligible
// difference.
package mshr

import "fmt"

// Config parameterizes the MSHR file.
type Config struct {
	// Entries is the number of simultaneous outstanding misses (32 in
	// the baseline).
	Entries int
	// Adders, when positive, enables the time-shared-adder
	// approximation with that many adders (the paper uses 4). Zero
	// selects the exact per-entry update.
	Adders int
	// CostCap saturates each entry's accumulated cost, modelling a
	// finite-width cost register. Zero means unbounded.
	CostCap float64
}

type entry struct {
	block      uint64
	valid      bool
	demand     bool
	cost       float64
	lastUpdate uint64 // cycle of the entry's last adder visit
}

// MSHR is the miss file.
type MSHR struct {
	cfg     Config
	entries []entry
	index   map[uint64]int // block → slot
	demand  int            // count of valid demand entries
	rr      int            // round-robin pointer for adder sharing

	// Exact-mode cost clock: clock accumulates Σ 1/N(t) over cycles with
	// N(t) > 0 demand misses outstanding. An entry's cost is the clock
	// advance over its lifetime, which makes the exact per-entry update
	// O(1) per allocate/free event instead of O(entries) per cycle.
	clock     float64
	clockAt   uint64 // cycle the clock was last advanced to
	clockBase map[uint64]float64

	// Peak tracks the maximum simultaneous occupancy observed.
	Peak int
}

// New builds an MSHR file.
func New(cfg Config) *MSHR {
	if cfg.Entries <= 0 {
		panic("mshr: Entries must be positive")
	}
	return &MSHR{
		cfg:       cfg,
		entries:   make([]entry, cfg.Entries),
		index:     make(map[uint64]int, cfg.Entries),
		clockBase: make(map[uint64]float64, cfg.Entries),
	}
}

// Exact reports whether the exact (event-driven) cost update is in use.
func (m *MSHR) Exact() bool { return m.cfg.Adders <= 0 }

// advanceClock brings the exact-mode cost clock up to the given cycle.
// Between events N is constant, so the clock advances by elapsed/N.
func (m *MSHR) advanceClock(cycle uint64) {
	if cycle > m.clockAt {
		if m.demand > 0 {
			m.clock += float64(cycle-m.clockAt) / float64(m.demand)
		}
		m.clockAt = cycle
	}
}

// Config returns the file's configuration.
func (m *MSHR) Config() Config { return m.cfg }

// Len returns the number of valid entries.
func (m *MSHR) Len() int { return len(m.index) }

// Full reports whether no entry is free.
func (m *MSHR) Full() bool { return len(m.index) == m.cfg.Entries }

// OutstandingDemand returns N, the number of outstanding demand misses.
func (m *MSHR) OutstandingDemand() int { return m.demand }

// Pending reports whether a miss for the block is in flight.
func (m *MSHR) Pending(block uint64) bool {
	_, ok := m.index[block]
	return ok
}

// Allocate registers a miss for the block at the given cycle.
// primary is true when a new entry was created; false means the miss
// merged into an in-flight entry for the same block (the paper treats
// such concurrent misses as a single miss). full is true — and nothing is
// allocated — when the file has no free entry.
func (m *MSHR) Allocate(block uint64, demand bool, cycle uint64) (primary, full bool) {
	if m.Exact() {
		m.advanceClock(cycle)
	}
	if i, ok := m.index[block]; ok {
		// Merge. A demand access upgrades a non-demand entry so the
		// cost machinery starts charging it.
		if demand && !m.entries[i].demand {
			m.entries[i].demand = true
			m.demand++
			if m.Exact() {
				m.clockBase[block] = m.clock
			}
		}
		return false, false
	}
	if m.Full() {
		return false, true
	}
	slot := -1
	for i := range m.entries {
		if !m.entries[i].valid {
			slot = i
			break
		}
	}
	m.entries[slot] = entry{block: block, valid: true, demand: demand, lastUpdate: cycle}
	m.index[block] = slot
	if demand {
		m.demand++
		if m.Exact() {
			m.clockBase[block] = m.clock
		}
	}
	if len(m.index) > m.Peak {
		m.Peak = len(m.index)
	}
	return true, false
}

// Tick advances the cost calculation logic by one cycle (Algorithm 1's
// update_mlp_cost). cycle is the current cycle number, used by the
// adder-sharing approximation.
func (m *MSHR) Tick(cycle uint64) {
	if m.demand == 0 {
		return
	}
	if m.Exact() {
		// Exact mode needs no per-cycle work: the cost clock advances
		// lazily at allocate/free events. (Calling Tick is still
		// harmless.)
		return
	}
	share := 1 / float64(m.demand)
	// Time-shared adders: visit up to Adders valid entries round-robin,
	// crediting each with the cycles elapsed since its last visit at the
	// current 1/N rate.
	visited := 0
	for scanned := 0; scanned < len(m.entries) && visited < m.cfg.Adders; scanned++ {
		i := m.rr
		m.rr = (m.rr + 1) % len(m.entries)
		if !m.entries[i].valid {
			continue
		}
		visited++
		if !m.entries[i].demand {
			m.entries[i].lastUpdate = cycle
			continue
		}
		elapsed := float64(cycle - m.entries[i].lastUpdate)
		if elapsed > 0 {
			m.addCost(i, elapsed*share)
			m.entries[i].lastUpdate = cycle
		}
	}
}

func (m *MSHR) addCost(i int, amount float64) {
	m.entries[i].cost += amount
	if m.cfg.CostCap > 0 && m.entries[i].cost > m.cfg.CostCap {
		m.entries[i].cost = m.cfg.CostCap
	}
}

// Free releases the block's entry when its miss is serviced, returning
// the accumulated MLP-based cost. It panics if the block has no entry
// (a protocol violation in the caller, not a runtime condition).
func (m *MSHR) Free(block uint64, cycle uint64) float64 {
	i, ok := m.index[block]
	if !ok {
		panic(fmt.Sprintf("mshr: Free of block %#x with no entry", block))
	}
	e := &m.entries[i]
	var cost float64
	switch {
	case m.Exact():
		if e.demand {
			m.advanceClock(cycle)
			cost = m.clock - m.clockBase[block]
			delete(m.clockBase, block)
			if m.cfg.CostCap > 0 && cost > m.cfg.CostCap {
				cost = m.cfg.CostCap
			}
		}
	default:
		if e.demand && m.demand > 0 {
			// Credit the tail the round-robin scan has not
			// reached yet.
			if elapsed := float64(cycle - e.lastUpdate); elapsed > 0 {
				m.addCost(i, elapsed/float64(m.demand))
			}
		}
		cost = e.cost
	}
	if e.demand {
		m.demand--
	}
	e.valid = false
	delete(m.index, block)
	return cost
}

// Cost returns the block's accumulated cost as of the given cycle; ok is
// false if no entry exists.
func (m *MSHR) Cost(block uint64, cycle uint64) (cost float64, ok bool) {
	i, found := m.index[block]
	if !found {
		return 0, false
	}
	if m.Exact() {
		if !m.entries[i].demand {
			return 0, true
		}
		m.advanceClock(cycle)
		return m.clock - m.clockBase[block], true
	}
	return m.entries[i].cost, true
}
