package mshr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlpcache/internal/simerr"
)

// free is the test-side Free wrapper: a protocol error fails the test.
func free(t *testing.T, m *MSHR, block, cycle uint64) float64 {
	t.Helper()
	cost, err := m.Free(block, cycle)
	if err != nil {
		t.Fatalf("Free(%#x, %d): %v", block, cycle, err)
	}
	return cost
}

func TestIsolatedMissCostEqualsLifetime(t *testing.T) {
	m := New(Config{Entries: 32})
	m.Allocate(1, true, 100)
	for c := uint64(101); c <= 544; c++ {
		m.Tick(c)
	}
	cost := free(t, m, 1, 544)
	if cost != 444 {
		t.Fatalf("isolated cost = %v, want 444", cost)
	}
}

func TestTwoParallelMissesSplitTheCost(t *testing.T) {
	m := New(Config{Entries: 32})
	m.Allocate(1, true, 0)
	m.Allocate(2, true, 0)
	c1 := free(t, m, 1, 444)
	c2 := free(t, m, 2, 444)
	if math.Abs(c1-222) > 1e-9 || math.Abs(c2-222) > 1e-9 {
		t.Fatalf("parallel costs = %v, %v; want 222 each", c1, c2)
	}
}

func TestStaggeredOverlap(t *testing.T) {
	// Miss A alone for 100 cycles, then B joins for 100 cycles, then A
	// retires: A = 100·1 + 100·½ = 150.
	m := New(Config{Entries: 32})
	m.Allocate(1, true, 0)
	m.Allocate(2, true, 100)
	if got := free(t, m, 1, 200); math.Abs(got-150) > 1e-9 {
		t.Fatalf("A cost = %v, want 150", got)
	}
	// B continues alone for 50 more: 100·½ + 50 = 100.
	if got := free(t, m, 2, 250); math.Abs(got-100) > 1e-9 {
		t.Fatalf("B cost = %v, want 100", got)
	}
}

func TestMergeIsNotPrimary(t *testing.T) {
	m := New(Config{Entries: 4})
	primary, full := m.Allocate(7, true, 0)
	if !primary || full {
		t.Fatalf("first allocation: primary=%v full=%v", primary, full)
	}
	primary, full = m.Allocate(7, true, 10)
	if primary || full {
		t.Fatalf("merge: primary=%v full=%v", primary, full)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after merge, want 1", m.Len())
	}
}

func TestFullRejects(t *testing.T) {
	m := New(Config{Entries: 2})
	m.Allocate(1, true, 0)
	m.Allocate(2, true, 0)
	if !m.Full() {
		t.Fatal("expected full")
	}
	if _, full := m.Allocate(3, true, 0); !full {
		t.Fatal("allocation into a full file must report full")
	}
	free(t, m, 1, 10)
	if m.Full() {
		t.Fatal("still full after Free")
	}
	if primary, full := m.Allocate(3, true, 10); !primary || full {
		t.Fatal("allocation after Free should succeed")
	}
}

func TestFreeUnknownReturnsTypedError(t *testing.T) {
	m := New(Config{Entries: 2})
	if _, err := m.Free(42, 0); !errors.Is(err, simerr.ErrMSHRLeak) {
		t.Fatalf("Free of unknown block: err = %v, want ErrMSHRLeak", err)
	}
}

func TestDoubleFreeReturnsTypedError(t *testing.T) {
	m := New(Config{Entries: 2})
	m.Allocate(7, true, 0)
	free(t, m, 7, 100)
	_, err := m.Free(7, 101)
	if !errors.Is(err, simerr.ErrMSHRLeak) {
		t.Fatalf("double free: err = %v, want ErrMSHRLeak", err)
	}
	// The failed free must not corrupt state: a fresh allocate works.
	if primary, full := m.Allocate(7, true, 102); !primary || full {
		t.Fatal("allocate after failed double free should succeed")
	}
	if violations := m.AuditInvariants(); len(violations) != 0 {
		t.Fatalf("state corrupted after double free: %v", violations)
	}
}

func TestSetCapacityThrottles(t *testing.T) {
	m := New(Config{Entries: 4})
	m.Allocate(1, true, 0)
	m.Allocate(2, true, 0)
	m.Allocate(3, true, 0)
	if err := m.SetCapacity(2); err != nil {
		t.Fatal(err)
	}
	if !m.Full() {
		t.Fatal("throttled file with 3 in flight must report full at capacity 2")
	}
	// In-flight entries above the new capacity still complete.
	free(t, m, 3, 50)
	free(t, m, 2, 60)
	if m.Full() {
		t.Fatal("one of two capacity slots in use; must not be full")
	}
	if primary, full := m.Allocate(4, true, 70); !primary || full {
		t.Fatal("allocation under the throttled capacity should succeed")
	}
	if primary, full := m.Allocate(5, true, 80); primary || !full {
		t.Fatal("allocation beyond the throttled capacity must report full")
	}
	// Clamp: capacity cannot exceed the configured entries.
	if err := m.SetCapacity(1000); err != nil {
		t.Fatal(err)
	}
	if m.Capacity() != 4 {
		t.Fatalf("Capacity = %d after over-sized SetCapacity, want 4", m.Capacity())
	}
	if err := m.SetCapacity(0); !errors.Is(err, simerr.ErrBadConfig) {
		t.Fatalf("SetCapacity(0): err = %v, want ErrBadConfig", err)
	}
}

func TestAuditInvariantsClean(t *testing.T) {
	for _, adders := range []int{0, 4} {
		m := New(Config{Entries: 8, Adders: adders})
		r := rand.New(rand.NewSource(11))
		inflight := []uint64{}
		next := uint64(0)
		for cycle := uint64(1); cycle <= 5000; cycle++ {
			m.Tick(cycle)
			if r.Intn(10) == 0 && !m.Full() {
				m.Allocate(next, r.Intn(4) > 0, cycle)
				inflight = append(inflight, next)
				next++
			}
			if r.Intn(12) == 0 && len(inflight) > 0 {
				free(t, m, inflight[0], cycle)
				inflight = inflight[1:]
			}
			if cycle%97 == 0 {
				if v := m.AuditInvariants(); len(v) != 0 {
					t.Fatalf("adders=%d cycle=%d: %v", adders, cycle, v)
				}
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{},
		{Entries: -1},
		{Entries: 4, Adders: -2},
		{Entries: 4, CostCap: -1},
	} {
		if err := bad.Validate(); !errors.Is(err, simerr.ErrBadConfig) {
			t.Fatalf("Validate(%+v) = %v, want ErrBadConfig", bad, err)
		}
	}
	if err := (Config{Entries: 32, Adders: 4, CostCap: 420}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestPendingAndCost(t *testing.T) {
	m := New(Config{Entries: 4})
	m.Allocate(9, true, 0)
	if !m.Pending(9) || m.Pending(8) {
		t.Fatal("Pending wrong")
	}
	if cost, ok := m.Cost(9, 50); !ok || math.Abs(cost-50) > 1e-9 {
		t.Fatalf("Cost = %v,%v; want 50,true", cost, ok)
	}
	if _, ok := m.Cost(8, 50); ok {
		t.Fatal("Cost of absent block reported ok")
	}
}

func TestNonDemandAccruesNothing(t *testing.T) {
	m := New(Config{Entries: 4})
	m.Allocate(1, false, 0)
	if m.OutstandingDemand() != 0 {
		t.Fatal("non-demand entry counted as demand")
	}
	if cost := free(t, m, 1, 100); cost != 0 {
		t.Fatalf("non-demand cost = %v, want 0", cost)
	}
}

func TestDemandUpgradeStartsCharging(t *testing.T) {
	m := New(Config{Entries: 4})
	m.Allocate(1, false, 0)
	m.Allocate(1, true, 100) // demand merge upgrades
	if m.OutstandingDemand() != 1 {
		t.Fatal("upgrade did not mark demand")
	}
	if cost := free(t, m, 1, 200); math.Abs(cost-100) > 1e-9 {
		t.Fatalf("upgraded cost = %v, want 100 (charged from upgrade)", cost)
	}
}

func TestCostCap(t *testing.T) {
	m := New(Config{Entries: 4, CostCap: 100})
	m.Allocate(1, true, 0)
	if cost := free(t, m, 1, 10_000); cost != 100 {
		t.Fatalf("capped cost = %v, want 100", cost)
	}
}

// Property (cost conservation): with only demand misses, the total cost
// accrued across all entries equals the number of cycles during which at
// least one demand miss was outstanding — Algorithm 1 hands out exactly
// one cycle of cost per busy cycle.
func TestCostConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := New(Config{Entries: 8})
		inflight := map[uint64]bool{}
		var total float64
		var busy uint64
		cycle := uint64(0)
		for step := 0; step < 400; step++ {
			cycle++
			if m.OutstandingDemand() > 0 {
				busy++
			}
			m.Tick(cycle)
			switch r.Intn(3) {
			case 0:
				b := uint64(r.Intn(20))
				if !m.Full() || inflight[b] {
					if primary, full := m.Allocate(b, true, cycle); primary && !full {
						inflight[b] = true
					}
				}
			case 1:
				for b := range inflight {
					c, err := m.Free(b, cycle)
					if err != nil {
						return false
					}
					total += c
					delete(inflight, b)
					break
				}
			}
		}
		for b := range inflight {
			c, err := m.Free(b, cycle)
			if err != nil {
				return false
			}
			total += c
		}
		return math.Abs(total-float64(busy)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The 4-adder time-shared approximation must track the exact computation
// closely (the paper reports a negligible difference).
func TestAdderSharingApproximation(t *testing.T) {
	run := func(adders int) (costs []float64) {
		m := New(Config{Entries: 32, Adders: adders})
		r := rand.New(rand.NewSource(5))
		inflight := []uint64{}
		next := uint64(0)
		for cycle := uint64(1); cycle <= 20_000; cycle++ {
			m.Tick(cycle)
			if r.Intn(50) == 0 && !m.Full() {
				m.Allocate(next, true, cycle)
				inflight = append(inflight, next)
				next++
			}
			if r.Intn(60) == 0 && len(inflight) > 0 {
				c, _ := m.Free(inflight[0], cycle)
				costs = append(costs, c)
				inflight = inflight[1:]
			}
		}
		for _, b := range inflight {
			c, _ := m.Free(b, 20_000)
			costs = append(costs, c)
		}
		return costs
	}
	exact := run(0)
	shared := run(4)
	if len(exact) != len(shared) {
		t.Fatalf("run shapes differ: %d vs %d", len(exact), len(shared))
	}
	var sumE, sumS float64
	for i := range exact {
		sumE += exact[i]
		sumS += shared[i]
	}
	if sumE == 0 {
		t.Fatal("degenerate run")
	}
	rel := math.Abs(sumS-sumE) / sumE
	if rel > 0.05 {
		t.Fatalf("adder sharing deviates %.1f%% in aggregate cost, want <= 5%%", 100*rel)
	}
}

func TestPeakTracking(t *testing.T) {
	m := New(Config{Entries: 8})
	for b := uint64(0); b < 5; b++ {
		m.Allocate(b, true, 0)
	}
	free(t, m, 0, 10)
	if m.Peak != 5 {
		t.Fatalf("Peak = %d, want 5", m.Peak)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}
