package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// AllEventTypes lists every traced event type, in emission-doc order.
func AllEventTypes() []EventType {
	return []EventType{
		EventMissIssue, EventMissMerge, EventMissFill,
		EventVictim, EventPselUpdate, EventSBARLeader, EventRunStart,
		EventSnapshotIPC, EventSnapshotMPKI, EventSnapshotAvgCostQ,
		EventSnapshotMSHR, EventSnapshotCostHist,
	}
}

// FilterTracer wraps another tracer with type filtering and every-Nth
// sampling, so long traced runs stay tractable (the -trace-events-sample
// and -trace-events-filter CLI flags). Run-boundary events
// (EventRunStart) always pass through unfiltered and unsampled —
// dropping them would break the per-run framing downstream consumers
// split event streams on — and do not advance the sample counter.
// snapshot.* gauge samples obey the type allow-list but are exempt from
// sampling (and leave the counter untouched): every-Nth decimation of a
// periodic gauge series would corrupt the curve it encodes.
type FilterTracer struct {
	dst    Tracer
	sample uint64
	allow  map[EventType]bool // nil: all types allowed

	seen, kept uint64
}

// NewFilterTracer wraps dst. sample keeps every sample-th matching event
// (0 or 1: keep all); types restricts to the given set (empty: all).
func NewFilterTracer(dst Tracer, sample uint64, types []EventType) *FilterTracer {
	t := &FilterTracer{dst: dst, sample: sample}
	if len(types) > 0 {
		t.allow = make(map[EventType]bool, len(types))
		for _, ty := range types {
			t.allow[ty] = true
		}
	}
	return t
}

// Emit implements Tracer.
func (t *FilterTracer) Emit(ev Event) {
	if ev.Type == EventRunStart {
		t.dst.Emit(ev)
		return
	}
	if t.allow != nil && !t.allow[ev.Type] {
		return
	}
	if ev.Type.IsSnapshot() {
		t.dst.Emit(ev)
		return
	}
	t.seen++
	if t.sample > 1 && (t.seen-1)%t.sample != 0 {
		return
	}
	t.kept++
	t.dst.Emit(ev)
}

// Seen returns how many non-boundary events matched the type filter;
// Kept how many of those survived sampling.
func (t *FilterTracer) Seen() uint64 { return t.seen }

// Kept returns the number of events forwarded to the wrapped tracer
// (excluding run boundaries).
func (t *FilterTracer) Kept() uint64 { return t.kept }

// ParseEventFilter parses a comma-separated event-type list into types
// for NewFilterTracer. A token may be a full type name ("miss.fill") or
// a family prefix ("miss" expands to every miss.* type). Unknown tokens
// are an error listing the valid names.
func ParseEventFilter(spec string) ([]EventType, error) {
	var out []EventType
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		matched := false
		for _, ty := range AllEventTypes() {
			name := string(ty)
			if name == tok || strings.SplitN(name, ".", 2)[0] == tok {
				out = append(out, ty)
				matched = true
			}
		}
		if !matched {
			var names []string
			for _, ty := range AllEventTypes() {
				names = append(names, string(ty))
			}
			sort.Strings(names)
			return nil, fmt.Errorf("unknown event type %q (valid: %s, or a family prefix like \"miss\")",
				tok, strings.Join(names, ", "))
		}
	}
	return out, nil
}
