package metrics

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"mlpcache/internal/simerr"
)

// The mlpcache.events/v2 compact binary event encoding. Full-fidelity
// event capture under JSONL costs ~3x the allocations of an untraced
// run; v2 brings a traced run to allocation parity so every victim and
// fill event of a real workload can be kept (docs/OBSERVABILITY.md,
// "Binary events"). Layout:
//
//	magic   "MLPE\x02"
//	header  uvarint length, then the RunHeader as JSON with
//	        schema "mlpcache.events/v2"
//	records repeated until EOF:
//	  id     1 byte: the event type's registered record ID (eventIDs)
//	  mask   uvarint: one bit per present (non-zero) Event field, in
//	         the fMask constants' order
//	  fields present fields in mask order — cycle/addr/block as zig-zag
//	         varint deltas against the previous record's values, small
//	         ints as zig-zag varints, cost/gauge as 8-byte little-endian
//	         IEEE-754 bits (exact round-trip), strings as interning
//	         references (0 = new string: uvarint length + bytes,
//	         assigned the next index; n>0 = previously seen string n)
//
// Absent mask bits mean zero/empty — exactly the v1 JSONL omitempty
// semantics — so decode followed by JSONL re-encoding reproduces the v1
// document byte for byte.

// EventsSchemaV2 identifies the compact binary event-trace format (the
// embedded header's "schema" field; decoders rewrite it to EventsSchema
// when converting back to JSONL).
const EventsSchemaV2 = "mlpcache.events/v2"

var eventsMagic = []byte("MLPE\x02")

// ErrBadEventsMagic is returned by NewEventsReader when the input does
// not start with the v2 magic. It wraps simerr.ErrCorruptTrace so
// callers can classify it with either sentinel.
var ErrBadEventsMagic = simerr.New(simerr.ErrCorruptTrace,
	"metrics: bad magic (not an mlpcache.events/v2 file)")

// Field-presence mask bits, one per Event field, in wire order.
const (
	fCycle = 1 << iota
	fAddr
	fBlock
	fSet
	fWay
	fCost
	fCostQ
	fRecency
	fScore
	fPolicy
	fDelta
	fValue
	fOutcome
	fLabel
	fGauge
	fTid

	fKnown = 1<<16 - 1 // all defined bits; anything above is corrupt
)

// Decoder hardening bounds: the header is a one-line JSON object and
// interned strings are policy labels / benchmark names, so anything
// past these limits is corruption, not data.
const (
	maxHeaderBytes = 1 << 20
	maxStringBytes = 1 << 12
)

// BinaryTracer streams events in the v2 binary encoding through a
// buffered writer. The steady-state Emit path performs zero heap
// allocations: records are built in a reused scratch buffer and string
// fields are interned (a string allocates only on first sight). Write
// errors are sticky, mirroring JSONLTracer: the first one is kept and
// later Emits become no-ops — call Flush once at the end.
type BinaryTracer struct {
	bw    *bufio.Writer
	err   error
	count uint64
	buf   []byte

	prevCycle uint64
	prevAddr  uint64
	prevBlock uint64
	strings   map[string]uint64
}

// NewBinaryTracer wraps w and writes the magic and header. hdr.Schema
// is forced to EventsSchemaV2.
func NewBinaryTracer(w io.Writer, hdr RunHeader) *BinaryTracer {
	hdr.Schema = EventsSchemaV2
	t := &BinaryTracer{
		bw:      bufio.NewWriter(w),
		buf:     make([]byte, 0, 256),
		strings: make(map[string]uint64),
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		t.err = err
		return t
	}
	if _, err := t.bw.Write(eventsMagic); err != nil {
		t.err = err
		return t
	}
	var lb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lb[:], uint64(len(hb)))
	if _, err := t.bw.Write(lb[:n]); err != nil {
		t.err = err
		return t
	}
	if _, err := t.bw.Write(hb); err != nil {
		t.err = err
	}
	return t
}

// Emit encodes one event record (no-op after a write error). An event
// type without a registered record ID is a sticky error: v2 files must
// stay decodable, so unknown types cannot be silently skipped.
func (t *BinaryTracer) Emit(ev Event) {
	if t.err != nil {
		return
	}
	id, ok := eventIDs[ev.Type]
	if !ok {
		t.err = simerr.New(simerr.ErrBadConfig,
			"metrics: event type %q has no v2 record ID", ev.Type)
		return
	}

	var mask uint64
	if ev.Cycle != 0 {
		mask |= fCycle
	}
	if ev.Addr != 0 {
		mask |= fAddr
	}
	if ev.Block != 0 {
		mask |= fBlock
	}
	if ev.Set != 0 {
		mask |= fSet
	}
	if ev.Way != 0 {
		mask |= fWay
	}
	if ev.Cost != 0 {
		mask |= fCost
	}
	if ev.CostQ != 0 {
		mask |= fCostQ
	}
	if ev.Recency != 0 {
		mask |= fRecency
	}
	if ev.Score != 0 {
		mask |= fScore
	}
	if ev.Policy != "" {
		mask |= fPolicy
	}
	if ev.Delta != 0 {
		mask |= fDelta
	}
	if ev.Value != 0 {
		mask |= fValue
	}
	if ev.Outcome != "" {
		mask |= fOutcome
	}
	if ev.Label != "" {
		mask |= fLabel
	}
	if ev.Gauge != 0 {
		mask |= fGauge
	}
	if ev.Tid != 0 {
		mask |= fTid
	}

	buf := append(t.buf[:0], id)
	buf = binary.AppendUvarint(buf, mask)
	if mask&fCycle != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Cycle-t.prevCycle))
		t.prevCycle = ev.Cycle
	}
	if mask&fAddr != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Addr-t.prevAddr))
		t.prevAddr = ev.Addr
	}
	if mask&fBlock != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Block-t.prevBlock))
		t.prevBlock = ev.Block
	}
	if mask&fSet != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Set))
	}
	if mask&fWay != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Way))
	}
	if mask&fCost != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Cost))
	}
	if mask&fCostQ != 0 {
		buf = binary.AppendVarint(buf, int64(ev.CostQ))
	}
	if mask&fRecency != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Recency))
	}
	if mask&fScore != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Score))
	}
	if mask&fPolicy != 0 {
		buf = t.appendString(buf, ev.Policy)
	}
	if mask&fDelta != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Delta))
	}
	if mask&fValue != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Value))
	}
	if mask&fOutcome != 0 {
		buf = t.appendString(buf, ev.Outcome)
	}
	if mask&fLabel != 0 {
		buf = t.appendString(buf, ev.Label)
	}
	if mask&fGauge != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ev.Gauge))
	}
	if mask&fTid != 0 {
		buf = binary.AppendVarint(buf, int64(ev.Tid))
	}
	t.buf = buf

	if _, err := t.bw.Write(buf); err != nil {
		t.err = err
		return
	}
	t.count++
}

// appendString appends an interning reference: a previously seen string
// is its 1-based table index; a new one is 0, its length and bytes, and
// takes the next index.
func (t *BinaryTracer) appendString(buf []byte, s string) []byte {
	if ref, ok := t.strings[s]; ok {
		return binary.AppendUvarint(buf, ref)
	}
	t.strings[s] = uint64(len(t.strings)) + 1
	buf = binary.AppendUvarint(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Events returns the number of records successfully encoded.
func (t *BinaryTracer) Events() uint64 { return t.count }

// Flush drains the buffer and returns the first error seen, if any.
func (t *BinaryTracer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// FileTracer is the common surface of the stream-writing tracers the
// CLIs construct for -trace-events: emit, count, flush.
type FileTracer interface {
	Tracer
	Events() uint64
	Flush() error
}

// NewFileTracer selects the events encoding by format name: "v1" (or
// "jsonl", or empty) streams mlpcache.events/v1 JSONL, "v2" (or
// "binary") the compact binary encoding. The -trace-events-format flag
// maps straight onto it.
func NewFileTracer(w io.Writer, format string, hdr RunHeader) (FileTracer, error) {
	switch format {
	case "", "v1", "jsonl":
		return NewJSONLTracer(w, hdr), nil
	case "v2", "binary":
		return NewBinaryTracer(w, hdr), nil
	}
	return nil, fmt.Errorf("unknown trace-events format %q (want v1 or v2)", format)
}

// EventsReader streams a v2 binary file back out as Events. Decode
// errors are sticky and wrap simerr.ErrCorruptTrace; check Err after
// Next reports false to distinguish corruption from clean EOF.
type EventsReader struct {
	r   *bufio.Reader
	hdr RunHeader
	err error

	prevCycle uint64
	prevAddr  uint64
	prevBlock uint64
	strings   []string
}

// NewEventsReader validates the magic, decodes the embedded header and
// returns a reader positioned at the first record.
func NewEventsReader(r io.Reader) (*EventsReader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(eventsMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, simerr.Wrap(simerr.ErrCorruptTrace, err, "metrics: reading events magic")
	}
	for i := range eventsMagic {
		if hdr[i] != eventsMagic[i] {
			return nil, ErrBadEventsMagic
		}
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, simerr.Wrap(simerr.ErrCorruptTrace, err, "metrics: reading header length")
	}
	if hlen > maxHeaderBytes {
		return nil, simerr.New(simerr.ErrCorruptTrace, "metrics: header length %d out of range", hlen)
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(br, hb); err != nil {
		return nil, simerr.Wrap(simerr.ErrCorruptTrace, err, "metrics: reading header")
	}
	er := &EventsReader{r: br}
	if err := json.Unmarshal(hb, &er.hdr); err != nil {
		return nil, simerr.Wrap(simerr.ErrCorruptTrace, err, "metrics: decoding header")
	}
	if er.hdr.Schema != EventsSchemaV2 {
		return nil, simerr.New(simerr.ErrCorruptTrace,
			"metrics: header schema %q, want %q", er.hdr.Schema, EventsSchemaV2)
	}
	return er, nil
}

// Header returns the embedded run header (schema EventsSchemaV2).
func (er *EventsReader) Header() RunHeader { return er.hdr }

// corrupt records a sticky decode error.
func (er *EventsReader) corrupt(err error, what string) (Event, bool) {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF // mid-record EOF is truncation
	}
	er.err = simerr.Wrap(simerr.ErrCorruptTrace, err, "metrics: reading "+what)
	return Event{}, false
}

// Next decodes the next event. It reports false at end of stream or on
// a decode error; check Err to distinguish.
func (er *EventsReader) Next() (Event, bool) {
	if er.err != nil {
		return Event{}, false
	}
	id, err := er.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			er.err = simerr.Wrap(simerr.ErrCorruptTrace, err, "metrics: reading record id")
		}
		return Event{}, false
	}
	ty, ok := eventByID[id]
	if !ok {
		er.err = simerr.New(simerr.ErrCorruptTrace, "metrics: unknown event record ID %d", id)
		return Event{}, false
	}
	mask, err := binary.ReadUvarint(er.r)
	if err != nil {
		return er.corrupt(err, "field mask")
	}
	if mask&^uint64(fKnown) != 0 {
		er.err = simerr.New(simerr.ErrCorruptTrace, "metrics: field mask %#x has unknown bits", mask)
		return Event{}, false
	}

	ev := Event{Type: ty}
	varint := func(what string) (int64, bool) {
		v, err := binary.ReadVarint(er.r)
		if err != nil {
			er.corrupt(err, what)
			return 0, false
		}
		return v, true
	}
	f64 := func(what string) (float64, bool) {
		var b [8]byte
		if _, err := io.ReadFull(er.r, b[:]); err != nil {
			er.corrupt(err, what)
			return 0, false
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), true
	}

	if mask&fCycle != 0 {
		d, ok := varint("cycle")
		if !ok {
			return Event{}, false
		}
		er.prevCycle += uint64(d)
		ev.Cycle = er.prevCycle
	}
	if mask&fAddr != 0 {
		d, ok := varint("addr")
		if !ok {
			return Event{}, false
		}
		er.prevAddr += uint64(d)
		ev.Addr = er.prevAddr
	}
	if mask&fBlock != 0 {
		d, ok := varint("block")
		if !ok {
			return Event{}, false
		}
		er.prevBlock += uint64(d)
		ev.Block = er.prevBlock
	}
	if mask&fSet != 0 {
		v, ok := varint("set")
		if !ok {
			return Event{}, false
		}
		ev.Set = int(v)
	}
	if mask&fWay != 0 {
		v, ok := varint("way")
		if !ok {
			return Event{}, false
		}
		ev.Way = int(v)
	}
	if mask&fCost != 0 {
		v, ok := f64("cost")
		if !ok {
			return Event{}, false
		}
		ev.Cost = v
	}
	if mask&fCostQ != 0 {
		v, ok := varint("cost_q")
		if !ok {
			return Event{}, false
		}
		ev.CostQ = int(v)
	}
	if mask&fRecency != 0 {
		v, ok := varint("recency")
		if !ok {
			return Event{}, false
		}
		ev.Recency = int(v)
	}
	if mask&fScore != 0 {
		v, ok := varint("score")
		if !ok {
			return Event{}, false
		}
		ev.Score = int(v)
	}
	if mask&fPolicy != 0 {
		s, ok := er.readString("policy")
		if !ok {
			return Event{}, false
		}
		ev.Policy = s
	}
	if mask&fDelta != 0 {
		v, ok := varint("delta")
		if !ok {
			return Event{}, false
		}
		ev.Delta = int(v)
	}
	if mask&fValue != 0 {
		v, ok := varint("value")
		if !ok {
			return Event{}, false
		}
		ev.Value = int(v)
	}
	if mask&fOutcome != 0 {
		s, ok := er.readString("outcome")
		if !ok {
			return Event{}, false
		}
		ev.Outcome = s
	}
	if mask&fLabel != 0 {
		s, ok := er.readString("label")
		if !ok {
			return Event{}, false
		}
		ev.Label = s
	}
	if mask&fGauge != 0 {
		v, ok := f64("gauge")
		if !ok {
			return Event{}, false
		}
		ev.Gauge = v
	}
	if mask&fTid != 0 {
		v, ok := varint("tid")
		if !ok {
			return Event{}, false
		}
		ev.Tid = int(v)
	}
	return ev, true
}

// readString resolves an interning reference, mirroring appendString.
func (er *EventsReader) readString(what string) (string, bool) {
	ref, err := binary.ReadUvarint(er.r)
	if err != nil {
		er.corrupt(err, what+" ref")
		return "", false
	}
	if ref > 0 {
		if ref > uint64(len(er.strings)) {
			er.err = simerr.New(simerr.ErrCorruptTrace,
				"metrics: %s ref %d beyond string table (%d entries)", what, ref, len(er.strings))
			return "", false
		}
		return er.strings[ref-1], true
	}
	n, err := binary.ReadUvarint(er.r)
	if err != nil {
		er.corrupt(err, what+" length")
		return "", false
	}
	if n > maxStringBytes {
		er.err = simerr.New(simerr.ErrCorruptTrace, "metrics: %s length %d out of range", what, n)
		return "", false
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(er.r, b); err != nil {
		er.corrupt(err, what)
		return "", false
	}
	s := string(b)
	er.strings = append(er.strings, s)
	return s, true
}

// Err returns the first decode error encountered, or nil if the stream
// ended cleanly.
func (er *EventsReader) Err() error { return er.err }
