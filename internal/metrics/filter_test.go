package metrics

import "testing"

func collect() (*[]Event, Tracer) {
	var got []Event
	return &got, FuncTracer(func(ev Event) { got = append(got, ev) })
}

func TestFilterTracerTypes(t *testing.T) {
	got, dst := collect()
	ft := NewFilterTracer(dst, 0, []EventType{EventMissFill})
	ft.Emit(Event{Type: EventMissIssue})
	ft.Emit(Event{Type: EventMissFill, CostQ: 3})
	ft.Emit(Event{Type: EventVictim})
	ft.Emit(Event{Type: EventMissFill, CostQ: 5})
	if len(*got) != 2 || (*got)[0].CostQ != 3 || (*got)[1].CostQ != 5 {
		t.Fatalf("type filter kept %v", *got)
	}
	if ft.Seen() != 2 || ft.Kept() != 2 {
		t.Fatalf("counters seen=%d kept=%d, want 2/2", ft.Seen(), ft.Kept())
	}
}

func TestFilterTracerSampling(t *testing.T) {
	got, dst := collect()
	ft := NewFilterTracer(dst, 3, nil)
	for i := 0; i < 10; i++ {
		ft.Emit(Event{Type: EventMissIssue, Cycle: uint64(i)})
	}
	// Every 3rd starting with the first: cycles 0, 3, 6, 9.
	if len(*got) != 4 {
		t.Fatalf("sample=3 over 10 events kept %d, want 4", len(*got))
	}
	for i, want := range []uint64{0, 3, 6, 9} {
		if (*got)[i].Cycle != want {
			t.Fatalf("kept cycles %v, want 0,3,6,9", *got)
		}
	}
	if ft.Seen() != 10 || ft.Kept() != 4 {
		t.Fatalf("counters seen=%d kept=%d, want 10/4", ft.Seen(), ft.Kept())
	}
}

func TestFilterTracerRunStartAlwaysPasses(t *testing.T) {
	got, dst := collect()
	// Harshest settings: heavy sampling plus a filter excluding run.start.
	ft := NewFilterTracer(dst, 1000, []EventType{EventVictim})
	for i := 0; i < 5; i++ {
		ft.Emit(Event{Type: EventRunStart, Label: "mcf"})
		ft.Emit(Event{Type: EventMissIssue})
		ft.Emit(Event{Type: EventVictim})
	}
	var starts int
	for _, ev := range *got {
		if ev.Type == EventRunStart {
			starts++
		}
	}
	if starts != 5 {
		t.Fatalf("run.start framing not preserved: %d of 5 boundaries kept", starts)
	}
}

func TestParseEventFilter(t *testing.T) {
	types, err := ParseEventFilter("miss,victim")
	if err != nil {
		t.Fatal(err)
	}
	want := map[EventType]bool{
		EventMissIssue: true, EventMissMerge: true, EventMissFill: true, EventVictim: true,
	}
	if len(types) != len(want) {
		t.Fatalf("ParseEventFilter(miss,victim) = %v, want the 3 miss.* types plus victim", types)
	}
	for _, ty := range types {
		if !want[ty] {
			t.Fatalf("unexpected type %q in %v", ty, types)
		}
	}
	if _, err := ParseEventFilter("miss.fill, sbar.leader"); err != nil {
		t.Fatalf("exact names rejected: %v", err)
	}
	if _, err := ParseEventFilter("bogus"); err == nil {
		t.Fatal("unknown token accepted")
	}
}
