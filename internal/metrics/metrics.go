// Package metrics is the simulator's observability registry: typed
// counters, gauges, histograms and instruction-indexed interval series
// behind stable dotted names (cache.l2.demand_miss, mshr.occupancy,
// psel.value, cost_q.hist), exported as one JSONL document per run.
//
// The registry gives every signal the paper's evaluation is built from a
// durable, machine-readable identity: the Figure 2 mlp-cost distribution
// is cost_q.hist, the Figure 11 time series are the interval.* and
// psel.* series, the Section 6 selector telemetry is psel.increments /
// psel.decrements, and Algorithm 1's accounting surfaces as the mshr.*
// family. docs/OBSERVABILITY.md is the catalog and schema contract; a
// test asserts the two never drift apart.
//
// Containers build on the internal/stats primitives (Histogram, Series)
// so a registry can adopt the histograms the simulator already maintains
// without copying samples.
package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"regexp"
	"sort"
	"sync"

	"mlpcache/internal/simerr"
)

// Kind discriminates the metric containers in exported samples.
type Kind string

// The four metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
	KindSeries    Kind = "series"
)

// MetricsSchema identifies the metrics JSONL document format (the header
// line's "schema" field). Bump on any incompatible change and update
// docs/OBSERVABILITY.md in the same commit.
const MetricsSchema = "mlpcache.metrics/v1"

// nameRE is the grammar of metric names: lowercase dotted components of
// letters, digits and underscores. The leading component starts with a
// letter; later components may be purely numeric, which indexed families
// like the multi-core core.<i>.* group use. Loosening the grammar is
// append-only: every previously valid name stays valid.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9][a-z0-9_]*)*$`)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time float metric.
type Gauge struct{ v float64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the last recorded value.
func (g *Gauge) Value() float64 { return g.v }

// entry is one registered metric: exactly one of the payload pointers is
// non-nil, matching kind.
type entry struct {
	name    string
	kind    Kind
	unit    string
	help    string
	counter *Counter
	gauge   *Gauge
	hist    HistogramSource
	series  SeriesSource
}

// HistogramSource is what a registry needs from a histogram: the
// internal/stats.Histogram satisfies it.
type HistogramSource interface {
	Width() float64
	Bins() []uint64
	Total() uint64
	Mean() float64
}

// SeriesSource is what a registry needs from an instruction-indexed time
// series; the internal/stats.Series satisfies it via the SeriesAdapter.
type SeriesSource interface {
	Len() int
	At(i int) (instructions uint64, value float64)
}

// Registry holds a run's metric set. Metrics are registered once by name
// (get-or-create); a name collision across kinds is a programmer error
// and panics with a typed simerr.ErrBadConfig.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) register(name string, kind Kind, unit, help string) *entry {
	if !nameRE.MatchString(name) {
		panic(simerr.New(simerr.ErrBadConfig,
			"metrics: invalid metric name %q (want dotted lowercase, e.g. cache.l2.demand_miss)", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(simerr.New(simerr.ErrBadConfig,
				"metrics: %s already registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, kind: kind, unit: unit, help: help}
	r.entries[name] = e
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, unit, help string) *Counter {
	e := r.register(name, KindCounter, unit, help)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	e := r.register(name, KindGauge, unit, help)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// AttachHistogram registers an externally maintained histogram under the
// given name. The registry samples it at export time, so the simulator's
// live Figure 2 histogram is exported without copying.
func (r *Registry) AttachHistogram(name, unit, help string, h HistogramSource) {
	if h == nil {
		panic(simerr.New(simerr.ErrBadConfig, "metrics: AttachHistogram(%s) needs a histogram", name))
	}
	r.register(name, KindHistogram, unit, help).hist = h
}

// AttachSeries registers an externally maintained time series under the
// given name (see AttachHistogram).
func (r *Registry) AttachSeries(name, unit, help string, s SeriesSource) {
	if s == nil {
		panic(simerr.New(simerr.ErrBadConfig, "metrics: AttachSeries(%s) needs a series", name))
	}
	r.register(name, KindSeries, unit, help).series = s
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// HistSnapshot is a histogram's exported state.
type HistSnapshot struct {
	// Width is the bin width; the final bin is the overflow bin.
	Width  float64  `json:"width"`
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total"`
	Mean   float64  `json:"mean"`
}

// Point is one exported series sample: retired-instruction index and
// value.
type Point struct {
	Instructions uint64  `json:"i"`
	Value        float64 `json:"v"`
}

// Sample is one metric's exported state — one JSONL line in a metrics
// document. Exactly the fields matching Kind are populated; zero-valued
// optional fields are omitted (absent means zero).
type Sample struct {
	Name   string        `json:"name"`
	Kind   Kind          `json:"kind"`
	Unit   string        `json:"unit,omitempty"`
	Help   string        `json:"help,omitempty"`
	Value  float64       `json:"value,omitempty"`
	Hist   *HistSnapshot `json:"hist,omitempty"`
	Points []Point       `json:"points,omitempty"`
}

func (e *entry) sample() Sample {
	s := Sample{Name: e.name, Kind: e.kind, Unit: e.unit, Help: e.help}
	switch e.kind {
	case KindCounter:
		s.Value = float64(e.counter.Value())
	case KindGauge:
		s.Value = e.gauge.Value()
	case KindHistogram:
		s.Hist = &HistSnapshot{
			Width:  e.hist.Width(),
			Counts: e.hist.Bins(),
			Total:  e.hist.Total(),
			Mean:   e.hist.Mean(),
		}
	case KindSeries:
		pts := make([]Point, e.series.Len())
		for i := range pts {
			pts[i].Instructions, pts[i].Value = e.series.At(i)
		}
		s.Points = pts
	}
	return s
}

// Samples exports every metric's current state, sorted by name.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Sample, 0, len(names))
	for _, n := range names {
		out = append(out, r.entries[n].sample())
	}
	return out
}

// RunHeader is the first line of every metrics or events JSONL document:
// it identifies the schema and the run the telemetry belongs to.
type RunHeader struct {
	Schema       string  `json:"schema"`
	Bench        string  `json:"bench,omitempty"`
	Policy       string  `json:"policy,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	Cycles       uint64  `json:"cycles,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`
}

// WriteJSONL writes the run header followed by one Sample line per
// metric, sorted by name. hdr.Schema is forced to MetricsSchema.
func (r *Registry) WriteJSONL(w io.Writer, hdr RunHeader) error {
	hdr.Schema = MetricsSchema
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, s := range r.Samples() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Report is a whole run as a single JSON object: the header plus the full
// metric set. cmd/mlpsim -json prints one of these to stdout.
type Report struct {
	RunHeader
	Metrics []Sample `json:"metrics"`
}

// ReportSchema identifies the single-object run report format.
const ReportSchema = "mlpcache.run/v1"

// BuildReport assembles a Report from the registry. hdr.Schema is forced
// to ReportSchema.
func (r *Registry) BuildReport(hdr RunHeader) Report {
	hdr.Schema = ReportSchema
	return Report{RunHeader: hdr, Metrics: r.Samples()}
}
