package metrics

import (
	"bufio"
	"encoding/json"
	"io"
)

// EventsSchema identifies the event-trace JSONL document format (the
// header line's "schema" field).
const EventsSchema = "mlpcache.events/v1"

// EventType names one kind of traced simulator event.
type EventType string

// The traced event types. docs/OBSERVABILITY.md documents each payload.
const (
	// EventMissIssue: a primary demand miss allocated an MSHR entry
	// and begins accruing mlp-cost (Algorithm 1 start).
	EventMissIssue EventType = "miss.issue"
	// EventMissMerge: a demand access merged into an in-flight miss.
	EventMissMerge EventType = "miss.merge"
	// EventMissFill: an MSHR entry freed at fill time; Cost is the
	// accrued mlp-based cost, CostQ its 3-bit quantization (Figure 3b).
	EventMissFill EventType = "miss.fill"
	// EventVictim: a cost-aware policy picked a victim; Recency and
	// CostQ are the LIN operands, Score = R + lambda*cost_q.
	EventVictim EventType = "victim"
	// EventPselUpdate: a policy-selector counter moved; Delta is the
	// signed step, Value the post-update counter.
	EventPselUpdate EventType = "psel.update"
	// EventSBARLeader: a leader-set access classified by the SBAR
	// tie-breaking logic; Outcome is one of both_hit, mtd_hit,
	// atd_hit, both_miss.
	EventSBARLeader EventType = "sbar.leader"
	// EventRunStart: a run boundary in a multi-run stream (mlpexp);
	// Label is the benchmark, Policy the policy spec.
	EventRunStart EventType = "run.start"
)

// Event is one traced simulator event — one JSONL line in an events
// document. Only Type is always present; every other field is omitted
// when zero (absent means 0 / empty), except Outcome which is a string
// precisely so that its values are never dropped.
type Event struct {
	Type    EventType `json:"t"`
	Cycle   uint64    `json:"cycle,omitempty"`
	Addr    uint64    `json:"addr,omitempty"`
	Block   uint64    `json:"block,omitempty"`
	Set     int       `json:"set,omitempty"`
	Way     int       `json:"way,omitempty"`
	Cost    float64   `json:"cost,omitempty"`
	CostQ   int       `json:"cost_q,omitempty"`
	Recency int       `json:"r,omitempty"`
	Score   int       `json:"score,omitempty"`
	Policy  string    `json:"policy,omitempty"`
	Delta   int       `json:"delta,omitempty"`
	Value   int       `json:"value,omitempty"`
	Outcome string    `json:"outcome,omitempty"`
	Label   string    `json:"label,omitempty"`
}

// Tracer receives simulator events. A nil Tracer disables tracing; every
// emit site is guarded by a nil check so the disabled path costs one
// branch.
type Tracer interface {
	Emit(Event)
}

// JSONLTracer streams events as JSONL through a buffered writer. The
// header line is written at construction. Write errors are sticky: the
// first one is kept and later Emits become no-ops, so hot paths never
// check errors — call Flush once at the end.
type JSONLTracer struct {
	bw    *bufio.Writer
	enc   *json.Encoder
	err   error
	count uint64
}

// NewJSONLTracer wraps w and writes the events header line. hdr.Schema
// is forced to EventsSchema.
func NewJSONLTracer(w io.Writer, hdr RunHeader) *JSONLTracer {
	hdr.Schema = EventsSchema
	bw := bufio.NewWriter(w)
	t := &JSONLTracer{bw: bw, enc: json.NewEncoder(bw)}
	t.err = t.enc.Encode(hdr)
	return t
}

// Emit writes one event line (no-op after a write error).
func (t *JSONLTracer) Emit(ev Event) {
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(ev)
	if t.err == nil {
		t.count++
	}
}

// Events returns the number of events successfully encoded.
func (t *JSONLTracer) Events() uint64 { return t.count }

// Flush drains the buffer and returns the first error seen, if any.
func (t *JSONLTracer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// FuncTracer adapts a function to the Tracer interface (handy in tests).
type FuncTracer func(Event)

// Emit calls the function.
func (f FuncTracer) Emit(ev Event) { f(ev) }
