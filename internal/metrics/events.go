package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"strings"
)

// EventsSchema identifies the event-trace JSONL document format (the
// header line's "schema" field).
const EventsSchema = "mlpcache.events/v1"

// EventType names one kind of traced simulator event.
type EventType string

// The traced event types. docs/OBSERVABILITY.md documents each payload.
const (
	// EventMissIssue: a primary demand miss allocated an MSHR entry
	// and begins accruing mlp-cost (Algorithm 1 start).
	EventMissIssue EventType = "miss.issue"
	// EventMissMerge: a demand access merged into an in-flight miss.
	EventMissMerge EventType = "miss.merge"
	// EventMissFill: an MSHR entry freed at fill time; Cost is the
	// accrued mlp-based cost, CostQ its 3-bit quantization (Figure 3b).
	EventMissFill EventType = "miss.fill"
	// EventVictim: a cost-aware policy picked a victim; Recency and
	// CostQ are the LIN operands, Score = R + lambda*cost_q.
	EventVictim EventType = "victim"
	// EventPselUpdate: a policy-selector counter moved; Delta is the
	// signed step, Value the post-update counter.
	EventPselUpdate EventType = "psel.update"
	// EventSBARLeader: a leader-set access classified by the SBAR
	// tie-breaking logic; Outcome is one of both_hit, mtd_hit,
	// atd_hit, both_miss.
	EventSBARLeader EventType = "sbar.leader"
	// EventRunStart: a run boundary in a multi-run stream (mlpexp);
	// Label is the benchmark, Policy the policy spec.
	EventRunStart EventType = "run.start"

	// The snapshot.* family: periodic in-loop gauge samples emitted
	// every Config.SnapshotInterval retired instructions, turning the
	// end-of-run aggregates into time-resolved curves. Each sample
	// carries its value in Gauge; snapshot.cost_hist additionally uses
	// Value as the histogram bin index.

	// EventSnapshotIPC: retired instructions per cycle over the
	// interval since the previous snapshot.
	EventSnapshotIPC EventType = "snapshot.ipc"
	// EventSnapshotMPKI: L2 demand misses per thousand retired
	// instructions over the interval.
	EventSnapshotMPKI EventType = "snapshot.mpki"
	// EventSnapshotAvgCostQ: mean quantized mlp-cost per serviced miss
	// over the interval (Figure 3b quantization).
	EventSnapshotAvgCostQ EventType = "snapshot.avg_cost_q"
	// EventSnapshotMSHR: the miss file's occupancy at the boundary.
	EventSnapshotMSHR EventType = "snapshot.mshr_occupancy"
	// EventSnapshotCostHist: one cumulative Figure 2 histogram bin
	// count at the boundary; Value is the bin index, Gauge the count.
	EventSnapshotCostHist EventType = "snapshot.cost_hist"
)

// IsSnapshot reports whether the type belongs to the snapshot.* gauge
// family. Snapshot samples are exempt from every-Nth sampling in
// FilterTracer — dropping points from a gauge series would corrupt it —
// but still subject to the type allow-list.
func (t EventType) IsSnapshot() bool { return strings.HasPrefix(string(t), "snapshot.") }

// eventIDs registers each event type's one-byte mlpcache.events/v2
// record ID alongside its dotted name. IDs are append-only wire
// contract: never renumber or reuse one (docs/OBSERVABILITY.md keeps
// the matching table, and observability_test.go pins both directions).
var eventIDs = map[EventType]byte{
	EventMissIssue:        1,
	EventMissMerge:        2,
	EventMissFill:         3,
	EventVictim:           4,
	EventPselUpdate:       5,
	EventSBARLeader:       6,
	EventRunStart:         7,
	EventSnapshotIPC:      8,
	EventSnapshotMPKI:     9,
	EventSnapshotAvgCostQ: 10,
	EventSnapshotMSHR:     11,
	EventSnapshotCostHist: 12,
}

// eventByID is the inverse of eventIDs, built once at init.
var eventByID = func() map[byte]EventType {
	inv := make(map[byte]EventType, len(eventIDs))
	for ty, id := range eventIDs {
		if _, dup := inv[id]; dup {
			panic("metrics: duplicate v2 event ID " + string(ty))
		}
		inv[id] = ty
	}
	return inv
}()

// EventTypeID returns the type's stable mlpcache.events/v2 record ID.
func EventTypeID(t EventType) (byte, bool) {
	id, ok := eventIDs[t]
	return id, ok
}

// EventTypeByID resolves a v2 record ID back to its event type.
func EventTypeByID(id byte) (EventType, bool) {
	ty, ok := eventByID[id]
	return ty, ok
}

// Event is one traced simulator event — one JSONL line in an events
// document. Only Type is always present; every other field is omitted
// when zero (absent means 0 / empty), except Outcome which is a string
// precisely so that its values are never dropped.
type Event struct {
	Type    EventType `json:"t"`
	Cycle   uint64    `json:"cycle,omitempty"`
	Addr    uint64    `json:"addr,omitempty"`
	Block   uint64    `json:"block,omitempty"`
	Set     int       `json:"set,omitempty"`
	Way     int       `json:"way,omitempty"`
	Cost    float64   `json:"cost,omitempty"`
	CostQ   int       `json:"cost_q,omitempty"`
	Recency int       `json:"r,omitempty"`
	Score   int       `json:"score,omitempty"`
	Policy  string    `json:"policy,omitempty"`
	Delta   int       `json:"delta,omitempty"`
	Value   int       `json:"value,omitempty"`
	Outcome string    `json:"outcome,omitempty"`
	Label   string    `json:"label,omitempty"`
	Gauge   float64   `json:"gauge,omitempty"`
	// Tid is the issuing core's index in a multi-core run. Appended for
	// multi-core tracing under the append-only field contract: it takes
	// the next v2 presence-mask bit and is omitted when zero, so
	// single-core captures are byte-identical to pre-Tid ones.
	Tid int `json:"tid,omitempty"`
}

// Tracer receives simulator events. A nil Tracer disables tracing; every
// emit site is guarded by a nil check so the disabled path costs one
// branch.
type Tracer interface {
	Emit(Event)
}

// JSONLTracer streams events as JSONL through a buffered writer. The
// header line is written at construction. Write errors are sticky: the
// first one is kept and later Emits become no-ops, so hot paths never
// check errors — call Flush once at the end.
type JSONLTracer struct {
	bw    *bufio.Writer
	enc   *json.Encoder
	err   error
	count uint64
}

// NewJSONLTracer wraps w and writes the events header line. hdr.Schema
// is forced to EventsSchema.
func NewJSONLTracer(w io.Writer, hdr RunHeader) *JSONLTracer {
	hdr.Schema = EventsSchema
	bw := bufio.NewWriter(w)
	t := &JSONLTracer{bw: bw, enc: json.NewEncoder(bw)}
	t.err = t.enc.Encode(hdr)
	return t
}

// Emit writes one event line (no-op after a write error).
func (t *JSONLTracer) Emit(ev Event) {
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(ev)
	if t.err == nil {
		t.count++
	}
}

// Events returns the number of events successfully encoded.
func (t *JSONLTracer) Events() uint64 { return t.count }

// Flush drains the buffer and returns the first error seen, if any.
func (t *JSONLTracer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// FuncTracer adapts a function to the Tracer interface (handy in tests).
type FuncTracer func(Event)

// Emit calls the function.
func (f FuncTracer) Emit(ev Event) { f(ev) }
