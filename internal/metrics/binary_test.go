package metrics

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mlpcache/internal/simerr"
)

// syntheticStream builds a multi-run event stream exercising every event
// type, every field, string re-interning, backward cycle deltas across
// run boundaries, and zero-valued fields (omitted on the wire).
func syntheticStream() []Event {
	var evs []Event
	for run := 0; run < 3; run++ {
		bench := []string{"mcf", "ammp", "art"}[run]
		evs = append(evs, Event{Type: EventRunStart, Label: bench, Policy: "lin4"})
		// Cycles restart low each run: the delta goes backward.
		evs = append(evs,
			Event{Type: EventMissIssue, Cycle: 2, Addr: 0x6_0000_0000, Block: 0x1800_0000},
			Event{Type: EventMissMerge, Cycle: 9, Addr: 0x6_0000_0040, Block: 0x1800_0001},
			Event{Type: EventMissFill, Cycle: 450, Addr: 0x6_0000_0000, Block: 0x1800_0000, Cost: 444.25, CostQ: 7},
			Event{Type: EventVictim, Cycle: 451, Set: 12, Way: 3, CostQ: 2, Recency: 5, Score: 13, Policy: "lin4"},
			Event{Type: EventPselUpdate, Cycle: 460, Delta: -1, Value: 511},
			Event{Type: EventSBARLeader, Cycle: 470, Outcome: "mtd_hit"},
			Event{Type: EventSnapshotIPC, Cycle: 500, Gauge: 0.732},
			Event{Type: EventSnapshotMPKI, Cycle: 500, Gauge: 41.5},
			Event{Type: EventSnapshotAvgCostQ, Cycle: 500, Gauge: 2.25},
			Event{Type: EventSnapshotMSHR, Cycle: 500, Gauge: 4},
			Event{Type: EventSnapshotCostHist, Cycle: 500, Value: 0, Gauge: 17},
			Event{Type: EventSnapshotCostHist, Cycle: 500, Value: 3, Gauge: 9},
			// All-zero payload: only the type survives omitempty.
			Event{Type: EventMissIssue},
		)
	}
	return evs
}

// jsonlBytes replays events through an optional FilterTracer into a
// JSONL tracer and returns the document.
func jsonlBytes(t *testing.T, hdr RunHeader, evs []Event, sample uint64, types []EventType) []byte {
	t.Helper()
	var buf bytes.Buffer
	jt := NewJSONLTracer(&buf, hdr)
	var dst Tracer = jt
	if sample > 1 || len(types) > 0 {
		dst = NewFilterTracer(jt, sample, types)
	}
	for _, ev := range evs {
		dst.Emit(ev)
	}
	if err := jt.Flush(); err != nil {
		t.Fatalf("jsonl flush: %v", err)
	}
	return buf.Bytes()
}

// v2DecodedBytes replays events through an optional FilterTracer into a
// binary tracer, decodes the file with EventsReader, re-encodes the
// decoded stream as JSONL and returns that document.
func v2DecodedBytes(t *testing.T, hdr RunHeader, evs []Event, sample uint64, types []EventType) []byte {
	t.Helper()
	var bin bytes.Buffer
	bt := NewBinaryTracer(&bin, hdr)
	var dst Tracer = bt
	if sample > 1 || len(types) > 0 {
		dst = NewFilterTracer(bt, sample, types)
	}
	for _, ev := range evs {
		dst.Emit(ev)
	}
	if err := bt.Flush(); err != nil {
		t.Fatalf("binary flush: %v", err)
	}

	rd, err := NewEventsReader(&bin)
	if err != nil {
		t.Fatalf("NewEventsReader: %v", err)
	}
	if got := rd.Header().Schema; got != EventsSchemaV2 {
		t.Fatalf("embedded header schema = %q, want %q", got, EventsSchemaV2)
	}
	var out bytes.Buffer
	jt := NewJSONLTracer(&out, rd.Header())
	for {
		ev, ok := rd.Next()
		if !ok {
			break
		}
		jt.Emit(ev)
	}
	if err := rd.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := jt.Flush(); err != nil {
		t.Fatalf("re-encode flush: %v", err)
	}
	return out.Bytes()
}

// TestEventsV2RoundTripJSONL is the tentpole property: encoding a stream
// as v2 and decoding it back yields byte-for-byte the v1 JSONL document
// a JSONL tracer would have produced directly — with and without
// FilterTracer sampling/filtering in front, and across run.start
// boundaries.
func TestEventsV2RoundTripJSONL(t *testing.T) {
	hdr := RunHeader{Bench: "mcf", Policy: "lin4", Seed: 42}
	evs := syntheticStream()
	cases := []struct {
		name   string
		sample uint64
		types  []EventType
	}{
		{name: "unfiltered"},
		{name: "sampled", sample: 3},
		{name: "filtered", types: []EventType{EventMissIssue, EventMissFill, EventSnapshotIPC}},
		{name: "sampled-filtered", sample: 2, types: []EventType{EventMissIssue, EventVictim, EventSnapshotCostHist}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := jsonlBytes(t, hdr, evs, tc.sample, tc.types)
			got := v2DecodedBytes(t, hdr, evs, tc.sample, tc.types)
			if !bytes.Equal(want, got) {
				t.Fatalf("decoded v2 differs from direct v1 JSONL\nwant:\n%s\ngot:\n%s", want, got)
			}
		})
	}
}

// TestBinaryTracerEmitAllocs pins the zero-allocation contract: after
// the string table has seen a stream's labels, Emit allocates nothing.
func TestBinaryTracerEmitAllocs(t *testing.T) {
	bt := NewBinaryTracer(io.Discard, RunHeader{Bench: "equake"})
	evs := syntheticStream()
	for _, ev := range evs { // warm up the string table and scratch buffer
		bt.Emit(ev)
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		bt.Emit(evs[i%len(evs)])
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state Emit allocates %.2f/op, want 0", avg)
	}
	if err := bt.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// TestBinaryTracerUnknownType checks that an unregistered event type is
// a sticky typed error rather than a silently skipped record.
func TestBinaryTracerUnknownType(t *testing.T) {
	bt := NewBinaryTracer(io.Discard, RunHeader{})
	bt.Emit(Event{Type: EventType("no.such.event")})
	if err := bt.Flush(); !errors.Is(err, simerr.ErrBadConfig) {
		t.Fatalf("flush after unknown type = %v, want ErrBadConfig wrap", err)
	}
}

// TestEventsReaderRejectsCorruption checks the decoder's typed-error
// contract on malformed inputs.
func TestEventsReaderRejectsCorruption(t *testing.T) {
	var good bytes.Buffer
	bt := NewBinaryTracer(&good, RunHeader{Bench: "mcf"})
	for _, ev := range syntheticStream() {
		bt.Emit(ev)
	}
	if err := bt.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	data := good.Bytes()

	t.Run("bad-magic", func(t *testing.T) {
		_, err := NewEventsReader(bytes.NewReader([]byte("JSON{}..")))
		if !errors.Is(err, simerr.ErrCorruptTrace) {
			t.Fatalf("err = %v, want ErrCorruptTrace wrap", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		rd, err := NewEventsReader(bytes.NewReader(data[:len(data)-3]))
		if err != nil {
			t.Fatalf("NewEventsReader: %v", err)
		}
		for {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
		if err := rd.Err(); !errors.Is(err, simerr.ErrCorruptTrace) {
			t.Fatalf("Err = %v, want ErrCorruptTrace wrap", err)
		}
	})
	t.Run("unknown-record-id", func(t *testing.T) {
		bad := append(append([]byte{}, data...), 0xFF, 0x00)
		rd, err := NewEventsReader(bytes.NewReader(bad))
		if err != nil {
			t.Fatalf("NewEventsReader: %v", err)
		}
		for {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
		if err := rd.Err(); !errors.Is(err, simerr.ErrCorruptTrace) {
			t.Fatalf("Err = %v, want ErrCorruptTrace wrap", err)
		}
	})
}

// FuzzEventsV2Decode feeds arbitrary bytes to the v2 decoder: it must
// never panic, and every failure must classify as ErrCorruptTrace.
// Wired into `make tier1` via the fuzz-smoke target.
func FuzzEventsV2Decode(f *testing.F) {
	var good bytes.Buffer
	bt := NewBinaryTracer(&good, RunHeader{Bench: "mcf", Policy: "lin4", Seed: 42})
	for _, ev := range syntheticStream() {
		bt.Emit(ev)
	}
	if err := bt.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte("MLPE\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewEventsReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, simerr.ErrCorruptTrace) {
				t.Fatalf("open error %v does not wrap ErrCorruptTrace", err)
			}
			return
		}
		for i := 0; i < 1_000_000; i++ {
			if _, ok := rd.Next(); !ok {
				break
			}
		}
		if err := rd.Err(); err != nil && !errors.Is(err, simerr.ErrCorruptTrace) {
			t.Fatalf("decode error %v does not wrap ErrCorruptTrace", err)
		}
	})
}
