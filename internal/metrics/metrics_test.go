package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"mlpcache/internal/simerr"
	"mlpcache/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cache.l2.demand_miss", "misses", "demand misses")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create returns the same counter.
	if again := r.Counter("cache.l2.demand_miss", "misses", ""); again != c {
		t.Fatalf("second Counter() returned a different instance")
	}
	g := r.Gauge("run.ipc", "ipc", "instructions per cycle")
	g.Set(1.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestBadNamePanics(t *testing.T) {
	for _, name := range []string{"", "Upper.case", "1starts.with.digit", "trailing.", ".leading", "has space", "has-dash"} {
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					t.Fatalf("name %q: no panic", name)
				}
				err, ok := rec.(error)
				if !ok || !errors.Is(err, simerr.ErrBadConfig) {
					t.Fatalf("name %q: panic %v, want ErrBadConfig", name, rec)
				}
			}()
			NewRegistry().Counter(name, "", "")
		}()
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.y", "", "")
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatalf("no panic on kind clash")
		}
		if err, ok := rec.(error); !ok || !errors.Is(err, simerr.ErrBadConfig) {
			t.Fatalf("panic %v, want ErrBadConfig", rec)
		}
	}()
	r.Gauge("x.y", "", "")
}

func TestSamplesSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Gauge("b.gauge", "", "").Set(2)
	r.Counter("a.counter", "", "").Add(7)
	h := stats.NewHistogram(60, 8)
	h.Add(30)
	h.Add(500)
	r.AttachHistogram("c.hist", "cycles", "", h)
	var ser stats.Series
	ser.Add(1000, 0.5)
	ser.Add(2000, 0.75)
	r.AttachSeries("d.series", "ipc", "", &ser)

	samples := r.Samples()
	wantNames := []string{"a.counter", "b.gauge", "c.hist", "d.series"}
	if len(samples) != len(wantNames) {
		t.Fatalf("got %d samples, want %d", len(samples), len(wantNames))
	}
	for i, s := range samples {
		if s.Name != wantNames[i] {
			t.Fatalf("sample %d name = %q, want %q (sorted)", i, s.Name, wantNames[i])
		}
	}
	if samples[0].Kind != KindCounter || samples[0].Value != 7 {
		t.Fatalf("counter sample = %+v", samples[0])
	}
	if samples[1].Kind != KindGauge || samples[1].Value != 2 {
		t.Fatalf("gauge sample = %+v", samples[1])
	}
	hs := samples[2].Hist
	if samples[2].Kind != KindHistogram || hs == nil || hs.Total != 2 || hs.Width != 60 || len(hs.Counts) != 8 {
		t.Fatalf("hist sample = %+v", samples[2])
	}
	if hs.Counts[0] != 1 || hs.Counts[7] != 1 {
		t.Fatalf("hist counts = %v", hs.Counts)
	}
	pts := samples[3].Points
	if samples[3].Kind != KindSeries || len(pts) != 2 || pts[1].Instructions != 2000 || pts[1].Value != 0.75 {
		t.Fatalf("series sample = %+v", samples[3])
	}
}

func TestAttachNilPanics(t *testing.T) {
	r := NewRegistry()
	for _, f := range []func(){
		func() { r.AttachHistogram("h", "", "", nil) },
		func() { r.AttachSeries("s", "", "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic on nil attach")
				}
			}()
			f()
		}()
	}
}

// strictDecode round-trips one JSON line into v, rejecting unknown fields
// — the same check the CLI round-trip test applies, so the schema structs
// here are authoritative.
func strictDecode(t *testing.T, line string, v any) {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("strict decode of %q: %v", line, err)
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.l2.demand_miss", "misses", "primary demand misses").Add(3)
	h := stats.NewHistogram(60, 8)
	h.Add(100)
	r.AttachHistogram("cost_q.hist", "cycles", "", h)

	var buf bytes.Buffer
	hdr := RunHeader{Bench: "mcf", Policy: "lin4", Seed: 42, Instructions: 1000, Cycles: 2000, IPC: 0.5}
	if err := r.WriteJSONL(&buf, hdr); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatalf("no header line")
	}
	var gotHdr RunHeader
	strictDecode(t, sc.Text(), &gotHdr)
	if gotHdr.Schema != MetricsSchema {
		t.Fatalf("header schema = %q, want %q", gotHdr.Schema, MetricsSchema)
	}
	if gotHdr.Bench != "mcf" || gotHdr.Seed != 42 || gotHdr.IPC != 0.5 {
		t.Fatalf("header = %+v", gotHdr)
	}
	var lines int
	for sc.Scan() {
		var s Sample
		strictDecode(t, sc.Text(), &s)
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d sample lines, want 2", lines)
	}
}

func TestJSONLTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf, RunHeader{Bench: "mcf"})
	tr.Emit(Event{Type: EventMissIssue, Cycle: 10, Block: 0xabc})
	tr.Emit(Event{Type: EventMissFill, Cycle: 500, Block: 0xabc, Cost: 123.5, CostQ: 2})
	tr.Emit(Event{Type: EventSBARLeader, Outcome: "both_miss", Set: 3})
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if tr.Events() != 3 {
		t.Fatalf("Events = %d, want 3", tr.Events())
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatalf("no header")
	}
	var hdr RunHeader
	strictDecode(t, sc.Text(), &hdr)
	if hdr.Schema != EventsSchema {
		t.Fatalf("schema = %q, want %q", hdr.Schema, EventsSchema)
	}
	var evs []Event
	for sc.Scan() {
		var ev Event
		strictDecode(t, sc.Text(), &ev)
		evs = append(evs, ev)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[1].Type != EventMissFill || evs[1].Cost != 123.5 || evs[1].CostQ != 2 {
		t.Fatalf("fill event = %+v", evs[1])
	}
	if evs[2].Outcome != "both_miss" {
		t.Fatalf("leader event = %+v", evs[2])
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 4096 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestJSONLTracerStickyError(t *testing.T) {
	tr := NewJSONLTracer(&failWriter{}, RunHeader{})
	for i := 0; i < 10000; i++ {
		tr.Emit(Event{Type: EventMissIssue, Cycle: uint64(i)})
	}
	if err := tr.Flush(); err == nil {
		t.Fatalf("Flush: want error after writer failure")
	}
}

func TestBuildReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("run.instructions", "instructions", "").Add(100)
	rep := r.BuildReport(RunHeader{Bench: "ammp", Policy: "lru"})
	if rep.Schema != ReportSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	if len(rep.Metrics) != 1 || rep.Metrics[0].Name != "run.instructions" {
		t.Fatalf("metrics = %+v", rep.Metrics)
	}
	// The report must marshal and strict-unmarshal cleanly.
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("strict unmarshal: %v", err)
	}
}

func TestFuncTracer(t *testing.T) {
	var got []Event
	var tr Tracer = FuncTracer(func(ev Event) { got = append(got, ev) })
	tr.Emit(Event{Type: EventVictim, Recency: 3, CostQ: 1, Score: 7})
	if len(got) != 1 || got[0].Score != 7 {
		t.Fatalf("got %+v", got)
	}
}
