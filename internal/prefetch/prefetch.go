// Package prefetch implements a stride prefetcher for the L2, the classic
// MLP-generating mechanism the paper's Section 2 groups with out-of-order
// execution and runahead. Prefetching interacts with MLP-aware
// replacement in two ways this package makes observable:
//
//  1. Prefetch requests occupy MSHR entries but are not demand misses, so
//     Algorithm 1 must not charge them MLP-based cost (the MSHR's demand
//     flag and demand-upgrade path model exactly this);
//  2. successful prefetches convert would-be parallel misses into hits,
//     concentrating the remaining misses into the expensive isolated
//     region — which shifts the Figure 2 distribution rightward and makes
//     cost-aware replacement matter more, not less.
//
// The design is a standard reference-prediction table: per-stream entries
// keyed by a hash of the accessing block's region, tracking the last
// address and a confirmed stride with 2-bit confidence.
package prefetch

import "mlpcache/internal/simerr"

// Config parameterizes the stride prefetcher.
type Config struct {
	// Streams is the number of tracked streams (table entries).
	Streams int
	// Degree is how many blocks to prefetch per trigger once a stride
	// is confirmed.
	Degree int
	// Distance is how far ahead (in strides) the prefetch window
	// starts. With a 444-cycle memory, adjacent-block prefetches are
	// almost always late; a distance of several strides gives the
	// request time to complete before the demand stream arrives.
	Distance int
	// RegionBits groups addresses into streams by their high bits
	// (default 16: 64 KB regions).
	RegionBits int
}

// Validate checks the configuration, wrapping failures in
// simerr.ErrBadConfig. Degree, Distance and RegionBits have defaults
// applied by New, so only Streams can be invalid.
func (c Config) Validate() error {
	if c.Streams <= 0 {
		return simerr.New(simerr.ErrBadConfig, "prefetch: Streams must be positive, got %d", c.Streams)
	}
	return nil
}

// DefaultConfig returns a 16-stream, degree-4, distance-12 prefetcher.
func DefaultConfig() Config {
	return Config{Streams: 16, Degree: 4, Distance: 12, RegionBits: 16}
}

// Stats counts prefetcher activity. Accuracy is confirmed hits over
// issued prefetches (tracked by the consumer).
type Stats struct {
	// Trains counts table updates; Confirms counts stride confirmations.
	Trains   uint64
	Confirms uint64
	// Issued counts prefetch addresses produced.
	Issued uint64
}

type streamEntry struct {
	valid      bool
	region     uint64
	lastBlock  uint64
	stride     int64
	confidence uint8 // 0..3; issue at >= 2
	lastUse    uint64
}

// Prefetcher is the stride engine. Feed every demand L2 access through
// Observe; it returns the block addresses to prefetch (possibly none).
type Prefetcher struct {
	cfg     Config
	entries []streamEntry
	seq     uint64
	stats   Stats
	out     []uint64 // reused output buffer
}

// New builds a prefetcher. It panics (with a typed
// simerr.ErrBadConfig error) on an invalid configuration; validate
// externally-sourced configs with Config.Validate first.
func New(cfg Config) *Prefetcher {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	if cfg.Distance <= 0 {
		cfg.Distance = 1
	}
	if cfg.RegionBits <= 0 {
		cfg.RegionBits = 16
	}
	return &Prefetcher{cfg: cfg, entries: make([]streamEntry, cfg.Streams)}
}

// Stats returns the activity counters.
func (p *Prefetcher) Stats() Stats { return p.stats }

// Observe trains on a demand access to the given block number and returns
// the blocks to prefetch. The returned slice is reused across calls.
func (p *Prefetcher) Observe(block uint64) []uint64 {
	p.seq++
	p.stats.Trains++
	region := block >> (p.cfg.RegionBits - 6) // block-granular region id

	// Find the stream entry for this region, or victimize the LRU one.
	idx := -1
	lru := 0
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.region == region {
			idx = i
			break
		}
		if !e.valid || e.lastUse < p.entries[lru].lastUse {
			lru = i
		}
	}
	if idx < 0 {
		p.entries[lru] = streamEntry{valid: true, region: region, lastBlock: block, lastUse: p.seq}
		return nil
	}

	e := &p.entries[idx]
	e.lastUse = p.seq
	stride := int64(block) - int64(e.lastBlock)
	e.lastBlock = block
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.confidence < 3 {
			e.confidence++
		}
		if e.confidence == 2 {
			p.stats.Confirms++
		}
	} else {
		e.stride = stride
		e.confidence = 0
		return nil
	}
	if e.confidence < 2 {
		return nil
	}

	p.out = p.out[:0]
	next := int64(block) + stride*int64(p.cfg.Distance-1)
	for d := 0; d < p.cfg.Degree; d++ {
		next += stride
		if next < 0 {
			break
		}
		p.out = append(p.out, uint64(next))
		p.stats.Issued++
	}
	return p.out
}
