package prefetch

import (
	"testing"
	"testing/quick"
)

func TestStrideDetection(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 2, Distance: 1})
	// Three accesses with stride 1: confirmation on the third.
	if out := p.Observe(100); out != nil {
		t.Fatalf("first access issued %v", out)
	}
	if out := p.Observe(101); out != nil {
		t.Fatalf("second access issued %v", out)
	}
	if out := p.Observe(102); out != nil {
		t.Fatalf("third access issued %v (confidence threshold)", out)
	}
	out := p.Observe(103)
	if len(out) != 2 || out[0] != 104 || out[1] != 105 {
		t.Fatalf("confirmed stride issued %v, want [104 105]", out)
	}
	if p.Stats().Confirms != 1 {
		t.Fatalf("confirms = %d", p.Stats().Confirms)
	}
}

func TestDistanceOffsetsWindow(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 2, Distance: 10})
	for b := uint64(0); b < 4; b++ {
		p.Observe(b)
	}
	out := p.Observe(4)
	if len(out) != 2 || out[0] != 14 || out[1] != 15 {
		t.Fatalf("distance-10 window issued %v, want [14 15]", out)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 1, Distance: 1})
	for b := uint64(100); b > 96; b-- {
		p.Observe(b)
	}
	out := p.Observe(96)
	if len(out) != 1 || out[0] != 95 {
		t.Fatalf("negative stride issued %v, want [95]", out)
	}
}

func TestNegativeStrideClampsAtZero(t *testing.T) {
	p := New(Config{Streams: 4, Degree: 4, Distance: 1})
	p.Observe(3)
	p.Observe(2)
	p.Observe(1)
	out := p.Observe(0)
	for _, b := range out {
		if int64(b) < 0 {
			t.Fatalf("issued negative block %d", b)
		}
	}
}

func TestRandomAccessesStayQuiet(t *testing.T) {
	p := New(Config{Streams: 8, Degree: 2, Distance: 4})
	// A pseudo-random walk in one region: strides never repeat enough
	// to confirm.
	seq := []uint64{5, 93, 17, 410, 2, 777, 39, 512, 8, 250}
	issued := 0
	for _, b := range seq {
		issued += len(p.Observe(b))
	}
	if issued != 0 {
		t.Fatalf("random walk triggered %d prefetches", issued)
	}
}

func TestStreamTableVictimization(t *testing.T) {
	p := New(Config{Streams: 2, Degree: 1, Distance: 1, RegionBits: 16})
	// Three interleaved regions with only two table entries: one stream
	// keeps getting evicted, the other two still confirm eventually.
	regionA, regionB, regionC := uint64(0), uint64(1<<20), uint64(2<<20)
	issued := 0
	for i := uint64(0); i < 10; i++ {
		issued += len(p.Observe(regionA + i))
		issued += len(p.Observe(regionB + i))
		issued += len(p.Observe(regionC + i)) // evicts A or B each round
	}
	// Correctness here is just "no panic, monotone stats"; with only
	// two entries and three streams thrashing the table, confirmations
	// are rare but the structure must stay sound.
	if p.Stats().Trains != 30 {
		t.Fatalf("trains = %d, want 30", p.Stats().Trains)
	}
	_ = issued
}

// Property: Observe never issues more than Degree blocks, never issues
// block numbers below zero, and issued blocks always continue the
// confirmed stride.
func TestObserveProperty(t *testing.T) {
	f := func(seed uint8, strideRaw int8) bool {
		stride := int64(strideRaw%16) + 1 // positive strides 1..16
		p := New(Config{Streams: 4, Degree: 3, Distance: 5})
		block := uint64(seed)*64 + 1000
		for step := 0; step < 20; step++ {
			out := p.Observe(block)
			if len(out) > 3 {
				return false
			}
			for i, b := range out {
				want := int64(block) + stride*int64(5+i)
				if int64(b) != want {
					return false
				}
			}
			block = uint64(int64(block) + stride)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Streams: 0})
}
