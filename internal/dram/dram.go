// Package dram models the baseline machine's main memory: 32 independent
// DRAM banks behind a 16-byte-wide split-transaction bus running at a 4:1
// frequency ratio (Table 2). An uncontended read costs 400 cycles of bank
// access plus 44 cycles of bus transfer — the 444-cycle isolated-miss
// latency quoted throughout the paper. Bank conflicts and bus contention
// serialize overlapping requests, which is what makes some "parallel"
// misses drift into the high-cost bins of Figure 2.
package dram

import "mlpcache/internal/simerr"

// Config parameterizes the memory system.
type Config struct {
	// Banks is the number of independent DRAM banks (32).
	Banks int
	// AccessCycles is the bank access latency (400).
	AccessCycles uint64
	// BusCycles is the bus occupancy per block transfer (44: a 64-byte
	// block over a 16-byte bus at 4:1 frequency, plus arbitration).
	BusCycles uint64
}

// Validate checks the configuration, wrapping failures in
// simerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return simerr.New(simerr.ErrBadConfig, "dram: Banks must be positive, got %d", c.Banks)
	}
	if c.AccessCycles == 0 {
		return simerr.New(simerr.ErrBadConfig, "dram: AccessCycles must be positive")
	}
	return nil
}

// Default returns the baseline configuration.
func Default() Config {
	return Config{Banks: 32, AccessCycles: 400, BusCycles: 44}
}

// Stats aggregates memory traffic counters.
type Stats struct {
	Reads  uint64
	Writes uint64
	// BankWaitCycles accumulates cycles requests spent queued behind a
	// busy bank; BusWaitCycles likewise for the shared bus.
	BankWaitCycles uint64
	BusWaitCycles  uint64
}

// DRAM is the memory model. Completion times are computed at issue:
// per-bank and bus bookings are kept as "free at" horizons, which yields
// first-come-first-served service per resource as long as requests are
// issued in non-decreasing time order — which the cycle-driven simulator
// guarantees.
type DRAM struct {
	cfg      Config
	bankFree []uint64
	busFree  uint64
	stats    Stats
}

// New builds a memory model. It panics (with a typed
// simerr.ErrBadConfig error) on an invalid configuration; validate
// externally-sourced configs with Config.Validate first.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DRAM{cfg: cfg, bankFree: make([]uint64, cfg.Banks)}
}

// Config returns the model's configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns the traffic counters.
func (d *DRAM) Stats() Stats { return d.stats }

// BankOf returns the bank a block maps to.
func (d *DRAM) BankOf(block uint64) int { return int(block % uint64(d.cfg.Banks)) }

// Read schedules a block read issued at cycle now and returns its
// completion cycle: queue behind the bank, access, queue behind the bus,
// transfer.
func (d *DRAM) Read(block uint64, now uint64) uint64 {
	bank := d.BankOf(block)
	start := max(now, d.bankFree[bank])
	d.stats.BankWaitCycles += start - now
	bankDone := start + d.cfg.AccessCycles
	d.bankFree[bank] = bankDone
	busStart := max(bankDone, d.busFree)
	d.stats.BusWaitCycles += busStart - bankDone
	done := busStart + d.cfg.BusCycles
	d.busFree = done
	d.stats.Reads++
	return done
}

// Write schedules a block write (a dirty-line writeback) issued at cycle
// now and returns its completion cycle. Data flows the other way: bus
// transfer first, then the bank update.
func (d *DRAM) Write(block uint64, now uint64) uint64 {
	busStart := max(now, d.busFree)
	d.stats.BusWaitCycles += busStart - now
	busDone := busStart + d.cfg.BusCycles
	d.busFree = busDone
	bank := d.BankOf(block)
	start := max(busDone, d.bankFree[bank])
	d.stats.BankWaitCycles += start - busDone
	done := start + d.cfg.AccessCycles
	d.bankFree[bank] = done
	d.stats.Writes++
	return done
}
