package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsolatedReadTakes444Cycles(t *testing.T) {
	d := New(Default())
	if done := d.Read(0, 1000); done != 1444 {
		t.Fatalf("isolated read completes at %d, want 1444", done)
	}
}

func TestDifferentBanksOverlapOnBankButShareBus(t *testing.T) {
	d := New(Default())
	a := d.Read(0, 0) // bank 0
	b := d.Read(1, 0) // bank 1: bank access overlaps; bus serializes
	if a != 444 {
		t.Fatalf("first read at %d, want 444", a)
	}
	if b != 488 { // bank done at 400, bus free at 444 → 444+44
		t.Fatalf("second read at %d, want 488", b)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	d := New(Default())
	a := d.Read(0, 0)
	b := d.Read(32, 0) // same bank (block % 32)
	if a != 444 {
		t.Fatalf("first read at %d", a)
	}
	if b != 844 { // bank busy until 400, access until 800, bus +44
		t.Fatalf("conflicting read at %d, want 844", b)
	}
	if d.Stats().BankWaitCycles != 400 {
		t.Fatalf("bank wait = %d, want 400", d.Stats().BankWaitCycles)
	}
}

func TestWritePath(t *testing.T) {
	d := New(Default())
	done := d.Write(5, 100)
	if done != 100+44+400 {
		t.Fatalf("write done at %d, want 544", done)
	}
	if d.Stats().Writes != 1 {
		t.Fatal("write not counted")
	}
}

func TestBankOf(t *testing.T) {
	d := New(Default())
	if d.BankOf(33) != 1 || d.BankOf(64) != 0 {
		t.Fatal("bank mapping wrong")
	}
}

// Property: with requests issued in non-decreasing time order, each
// bank's service periods never overlap and the bus never transfers two
// blocks at once.
func TestNoResourceOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := New(Config{Banks: 4, AccessCycles: 50, BusCycles: 10})
		now := uint64(0)
		type span struct{ start, end uint64 }
		busSpans := []span{}
		bankEnd := map[int]uint64{}
		for i := 0; i < 200; i++ {
			now += uint64(r.Intn(30))
			block := uint64(r.Intn(64))
			done := d.Read(block, now)
			// Reconstruct: the bus transfer is the final BusCycles.
			busSpans = append(busSpans, span{done - 10, done})
			bank := d.BankOf(block)
			// Bank access ends at the bus start at the earliest
			// possible moment; ends must be strictly increasing per
			// bank by at least AccessCycles apart.
			if prev, ok := bankEnd[bank]; ok {
				if done-10 < prev { // bus start before previous bank end is fine;
					// but bank accesses must not overlap: this bank's
					// access started at >= prev, so its end >= prev+50.
					_ = prev
				}
			}
			bankEnd[bank] = done - 10 // bank end <= bus start
			if done < now+50+10 {
				return false // faster than physically possible
			}
		}
		// Bus spans must be non-overlapping when sorted by start.
		for i := 1; i < len(busSpans); i++ {
			for j := 0; j < i; j++ {
				a, b := busSpans[i], busSpans[j]
				if a.start < b.end && b.start < a.end {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion time is monotone in issue time for the same block
// sequence (FCFS per resource).
func TestMonotoneCompletionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := New(Default())
		now, lastSameBank := uint64(0), map[int]uint64{}
		for i := 0; i < 100; i++ {
			now += uint64(r.Intn(100))
			block := uint64(r.Intn(8)) // few banks → conflicts
			done := d.Read(block, now)
			bank := d.BankOf(block)
			if done <= lastSameBank[bank] {
				return false
			}
			lastSameBank[bank] = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadBanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Banks: 0})
}
