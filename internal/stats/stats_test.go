package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramPaperBinning(t *testing.T) {
	h := NewHistogram(60, 8) // the Figure 2 axes
	for _, v := range []float64{0, 59.9, 60, 119, 420, 444, 9999} {
		h.Add(v)
	}
	bins := h.Bins()
	if bins[0] != 2 || bins[1] != 2 || bins[7] != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.BinLabel(0) != "0-59" || h.BinLabel(7) != "420+" {
		t.Fatalf("labels: %q %q", h.BinLabel(0), h.BinLabel(7))
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(60, 8)
	h.Add(-5)
	if h.Bins()[0] != 1 {
		t.Fatal("negative sample should land in bin 0")
	}
}

func TestHistogramPercentAndMean(t *testing.T) {
	h := NewHistogram(10, 2)
	h.Add(5)
	h.Add(5)
	h.Add(100)
	h.Add(200)
	pct := h.Percent()
	if pct[0] != 50 || pct[1] != 50 {
		t.Fatalf("percent = %v", pct)
	}
	if got := h.Mean(); math.Abs(got-77.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	h.Reset()
	if h.Total() != 0 || h.Mean() != 0 {
		t.Fatal("reset failed")
	}
	if p := h.Percent(); p[0] != 0 {
		t.Fatal("empty percent should be zero")
	}
}

// Property: percentages always sum to ~100 for non-empty histograms and
// every sample lands in exactly one bin.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(60, 8)
		for _, v := range vals {
			h.Add(math.Abs(v))
		}
		var binSum uint64
		for _, b := range h.Bins() {
			binSum += b
		}
		if binSum != uint64(len(vals)) {
			return false
		}
		var pctSum float64
		for _, p := range h.Percent() {
			pctSum += p
		}
		return math.Abs(pctSum-100) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSparkline(t *testing.T) {
	h := NewHistogram(60, 8)
	if got := len([]rune(h.Sparkline())); got != 8 {
		t.Fatalf("empty sparkline has %d runes, want 8", got)
	}
	h.Add(444)
	s := []rune(h.Sparkline())
	if s[7] != '█' {
		t.Fatalf("full bin should render as █, got %q", string(s[7]))
	}
}

func TestHistogramSingleBin(t *testing.T) {
	// A one-bin histogram is all overflow bin: every sample lands in it,
	// its label is the bare overflow form, and the sparkline is one full
	// block once anything is recorded.
	h := NewHistogram(60, 1)
	if got := h.BinLabel(0); got != "0+" {
		t.Fatalf("single-bin label = %q, want \"0+\"", got)
	}
	if got := len([]rune(h.Sparkline())); got != 1 {
		t.Fatalf("empty single-bin sparkline has %d runes, want 1", got)
	}
	h.Add(-5)
	h.Add(0)
	h.Add(1e9)
	if h.Total() != 3 || h.Bins()[0] != 3 {
		t.Fatalf("total=%d bins=%v, want all 3 samples in the one bin", h.Total(), h.Bins())
	}
	if got := h.Sparkline(); got != "█" {
		t.Fatalf("loaded single-bin sparkline = %q, want full block", got)
	}
	if pct := h.Percent(); pct[0] != 100 {
		t.Fatalf("single-bin percent = %v, want [100]", pct)
	}
}

func TestHistogramSparklineUniform(t *testing.T) {
	// Equal counts in every bin must render as a flat line of full
	// blocks (each bin is at the maximum).
	h := NewHistogram(10, 4)
	for i := 0; i < 4; i++ {
		h.Add(float64(i) * 10)
	}
	if got := h.Sparkline(); got != "████" {
		t.Fatalf("uniform sparkline = %q, want \"████\"", got)
	}
}

func TestHistogramWidthAccessor(t *testing.T) {
	// Width feeds the metrics registry's histogram snapshots; it must
	// echo the constructor argument.
	if got := NewHistogram(60, 8).Width(); got != 60 {
		t.Fatalf("Width() = %v, want 60", got)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 8)
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean should be 0")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 || m.N() != 2 {
		t.Fatalf("mean=%v n=%d", m.Value(), m.N())
	}
	m.Reset()
	if m.N() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if _, _, ok := s.MinMax(); ok {
		t.Fatal("empty series MinMax should report !ok")
	}
	s.Add(100, 1.5)
	s.Add(200, 0.5)
	s.Add(300, 2.5)
	min, max, ok := s.MinMax()
	if !ok || min != 0.5 || max != 2.5 {
		t.Fatalf("MinMax = %v %v %v", min, max, ok)
	}
	vals := s.Values()
	if len(vals) != 3 || vals[1] != 0.5 {
		t.Fatalf("Values = %v", vals)
	}
}

func TestSeriesSinglePoint(t *testing.T) {
	// With one point, min and max coincide on it.
	var s Series
	s.Add(100, 1.25)
	min, max, ok := s.MinMax()
	if !ok || min != 1.25 || max != 1.25 {
		t.Fatalf("single-point MinMax = %v %v %v, want 1.25 1.25 true", min, max, ok)
	}
}

func TestSeriesLenAt(t *testing.T) {
	// Len/At are the SeriesSource view the metrics registry snapshots.
	var s Series
	if s.Len() != 0 {
		t.Fatalf("empty Len = %d", s.Len())
	}
	s.Add(100, 1.5)
	s.Add(200, 0.5)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if i, v := s.At(1); i != 200 || v != 0.5 {
		t.Fatalf("At(1) = %d %v, want 200 0.5", i, v)
	}
}
