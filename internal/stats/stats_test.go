package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramPaperBinning(t *testing.T) {
	h := NewHistogram(60, 8) // the Figure 2 axes
	for _, v := range []float64{0, 59.9, 60, 119, 420, 444, 9999} {
		h.Add(v)
	}
	bins := h.Bins()
	if bins[0] != 2 || bins[1] != 2 || bins[7] != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.BinLabel(0) != "0-59" || h.BinLabel(7) != "420+" {
		t.Fatalf("labels: %q %q", h.BinLabel(0), h.BinLabel(7))
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(60, 8)
	h.Add(-5)
	if h.Bins()[0] != 1 {
		t.Fatal("negative sample should land in bin 0")
	}
}

func TestHistogramPercentAndMean(t *testing.T) {
	h := NewHistogram(10, 2)
	h.Add(5)
	h.Add(5)
	h.Add(100)
	h.Add(200)
	pct := h.Percent()
	if pct[0] != 50 || pct[1] != 50 {
		t.Fatalf("percent = %v", pct)
	}
	if got := h.Mean(); math.Abs(got-77.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	h.Reset()
	if h.Total() != 0 || h.Mean() != 0 {
		t.Fatal("reset failed")
	}
	if p := h.Percent(); p[0] != 0 {
		t.Fatal("empty percent should be zero")
	}
}

// Property: percentages always sum to ~100 for non-empty histograms and
// every sample lands in exactly one bin.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(60, 8)
		for _, v := range vals {
			h.Add(math.Abs(v))
		}
		var binSum uint64
		for _, b := range h.Bins() {
			binSum += b
		}
		if binSum != uint64(len(vals)) {
			return false
		}
		var pctSum float64
		for _, p := range h.Percent() {
			pctSum += p
		}
		return math.Abs(pctSum-100) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSparkline(t *testing.T) {
	h := NewHistogram(60, 8)
	if got := len([]rune(h.Sparkline())); got != 8 {
		t.Fatalf("empty sparkline has %d runes, want 8", got)
	}
	h.Add(444)
	s := []rune(h.Sparkline())
	if s[7] != '█' {
		t.Fatalf("full bin should render as █, got %q", string(s[7]))
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 8)
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean should be 0")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 || m.N() != 2 {
		t.Fatalf("mean=%v n=%d", m.Value(), m.N())
	}
	m.Reset()
	if m.N() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if _, _, ok := s.MinMax(); ok {
		t.Fatal("empty series MinMax should report !ok")
	}
	s.Add(100, 1.5)
	s.Add(200, 0.5)
	s.Add(300, 2.5)
	min, max, ok := s.MinMax()
	if !ok || min != 0.5 || max != 2.5 {
		t.Fatalf("MinMax = %v %v %v", min, max, ok)
	}
	vals := s.Values()
	if len(vals) != 3 || vals[1] != 0.5 {
		t.Fatalf("Values = %v", vals)
	}
}
