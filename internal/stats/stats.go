// Package stats provides the small statistical containers the simulator
// and the experiment harness share: fixed-bin histograms (the paper's
// 60-cycle mlp-cost bins), online means, and instruction-indexed time
// series (Figure 11).
package stats

import (
	"fmt"
	"math"
	"strings"

	"mlpcache/internal/simerr"
)

// Histogram counts samples into bins of fixed width; the last bin is an
// overflow bin collecting everything at or above its lower edge. With
// width 60 and 8 bins it reproduces the paper's Figure 2 axes: bins
// [0,60), [60,120), ... [360,420), and 420+.
type Histogram struct {
	width  float64
	counts []uint64
	total  uint64
	sum    float64
}

// NewHistogram returns a histogram with the given bin width and bin count
// (the final bin is the overflow bin). It panics on non-positive
// parameters.
func NewHistogram(width float64, bins int) *Histogram {
	if width <= 0 || bins <= 0 {
		panic(simerr.New(simerr.ErrBadConfig,
			"stats: histogram needs positive width and bins, got width=%v bins=%d", width, bins))
	}
	return &Histogram{width: width, counts: make([]uint64, bins)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	b := int(v / h.width)
	if b < 0 {
		b = 0
	}
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
	h.total++
	h.sum += v
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Width returns the bin width.
func (h *Histogram) Width() float64 { return h.width }

// Mean returns the mean of all recorded samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bins returns the raw per-bin counts. The returned slice is a copy.
func (h *Histogram) Bins() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Percent returns each bin's share of the total in percent. All zeros if
// no samples were recorded.
func (h *Histogram) Percent() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = 100 * float64(c) / float64(h.total)
	}
	return out
}

// BinLabel renders the half-open range of bin i ("0-59", "420+").
func (h *Histogram) BinLabel(i int) string {
	lo := float64(i) * h.width
	if i == len(h.counts)-1 {
		return fmt.Sprintf("%.0f+", lo)
	}
	return fmt.Sprintf("%.0f-%.0f", lo, lo+h.width-1)
}

// Reset discards all samples, keeping the binning.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
}

// Sparkline renders the histogram as a one-line unicode bar chart, useful
// in terminal output from cmd/mlpexp.
func (h *Histogram) Sparkline() string {
	const ramp = " ▁▂▃▄▅▆▇█"
	var max uint64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(h.counts))
	}
	var b strings.Builder
	for _, c := range h.counts {
		idx := int(math.Round(float64(c) / float64(max) * 8))
		b.WriteRune([]rune(ramp)[idx])
	}
	return b.String()
}

// Mean accumulates an online arithmetic mean.
type Mean struct {
	n   uint64
	sum float64
}

// Add records one sample.
func (m *Mean) Add(v float64) { m.n++; m.sum += v }

// N returns the number of samples.
func (m *Mean) N() uint64 { return m.n }

// Value returns the mean (0 if empty).
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Reset discards all samples.
func (m *Mean) Reset() { m.n = 0; m.sum = 0 }

// Point is one sample of a time series, indexed by retired instructions.
type Point struct {
	Instructions uint64
	Value        float64
}

// Series is an instruction-indexed time series (e.g. IPC over the run).
type Series struct {
	Name   string
	Points []Point
}

// Add appends one point.
func (s *Series) Add(instructions uint64, value float64) {
	s.Points = append(s.Points, Point{Instructions: instructions, Value: value})
}

// Values returns just the values, in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

// Len returns the number of points in the series.
func (s *Series) Len() int { return len(s.Points) }

// At returns the i'th point as (instruction index, value).
func (s *Series) At(i int) (uint64, float64) {
	p := s.Points[i]
	return p.Instructions, p.Value
}

// MinMax returns the extremes of the series values; ok is false if the
// series is empty.
func (s *Series) MinMax() (min, max float64, ok bool) {
	if len(s.Points) == 0 {
		return 0, 0, false
	}
	min, max = s.Points[0].Value, s.Points[0].Value
	for _, p := range s.Points[1:] {
		if p.Value < min {
			min = p.Value
		}
		if p.Value > max {
			max = p.Value
		}
	}
	return min, max, true
}
