// Package analytic implements the paper's Section 6.3 analytical model of
// sampling: the probability that a majority vote over k randomly chosen
// leader sets selects the globally best replacement policy, when a
// fraction p of all sets favours that policy (equations 3-5, Figure 8).
package analytic

import (
	"math"

	"mlpcache/internal/simerr"
)

// PBest returns P(Best) for k leader sets at favour fraction p:
//
//	odd k:  Σ_{i=0}^{(k-1)/2} C(k,i) p^(k-i) (1-p)^i
//	even k: Σ_{i=0}^{k/2-1} C(k,i) p^(k-i) (1-p)^i + ½ C(k,k/2) (p(1-p))^(k/2)
//
// (the even-k tie is broken by a fair coin). It panics on k < 1 or p
// outside [0,1] — both configuration errors.
func PBest(k int, p float64) float64 {
	if k < 1 {
		panic(simerr.New(simerr.ErrBadConfig, "analytic: k must be at least 1, got %d", k))
	}
	if p < 0 || p > 1 {
		panic(simerr.New(simerr.ErrBadConfig, "analytic: p must be in [0,1], got %v", p))
	}
	sum := 0.0
	if k%2 == 1 {
		for i := 0; i <= (k-1)/2; i++ {
			sum += term(k, i, p)
		}
		return clamp01(sum)
	}
	for i := 0; i < k/2; i++ {
		sum += term(k, i, p)
	}
	sum += 0.5 * term(k, k/2, p)
	return clamp01(sum)
}

// term computes C(k,i) p^(k-i) (1-p)^i in log space for numerical range.
func term(k, i int, p float64) float64 {
	if p == 0 {
		if i == k {
			return 1
		}
		return 0
	}
	if p == 1 {
		if i == 0 {
			return 1
		}
		return 0
	}
	logC := lgamma(float64(k)+1) - lgamma(float64(i)+1) - lgamma(float64(k-i)+1)
	return math.Exp(logC + float64(k-i)*math.Log(p) + float64(i)*math.Log(1-p))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Curve returns PBest over the given leader-set counts for one p — one
// line of Figure 8.
func Curve(ks []int, p float64) []float64 {
	out := make([]float64, len(ks))
	for i, k := range ks {
		out[i] = PBest(k, p)
	}
	return out
}

// MinLeadersFor returns the smallest odd k ≤ kMax with PBest(k,p) ≥ target,
// or 0 if none. It quantifies the paper's conclusion that 16-32 leader
// sets select the best policy with >95% probability for the measured
// p ∈ [0.74, 0.99].
func MinLeadersFor(p, target float64, kMax int) int {
	for k := 1; k <= kMax; k += 2 {
		if PBest(k, p) >= target {
			return k
		}
	}
	return 0
}
