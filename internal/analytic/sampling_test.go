package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPBestBaseCases(t *testing.T) {
	// k=1: P(Best) = p (equation preceding eq. 3).
	for _, p := range []float64{0.5, 0.6, 0.74, 0.9, 1.0} {
		if got := PBest(1, p); math.Abs(got-p) > 1e-12 {
			t.Errorf("PBest(1, %v) = %v, want %v", p, got, p)
		}
	}
	// p=0.5: majority vote of a fair coin stays at 1/2 for every k.
	for _, k := range []int{1, 2, 3, 8, 31, 64} {
		if got := PBest(k, 0.5); math.Abs(got-0.5) > 1e-9 {
			t.Errorf("PBest(%d, 0.5) = %v, want 0.5", k, got)
		}
	}
	// p=1: always selects best.
	if PBest(7, 1) != 1 {
		t.Error("PBest(k, 1) must be 1")
	}
	if PBest(7, 0) != 0 {
		t.Error("PBest(k, 0) must be 0")
	}
}

func TestPBestEquation3(t *testing.T) {
	// Equation 3: three leader sets: p³ + 3p²(1-p).
	for _, p := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		want := p*p*p + 3*p*p*(1-p)
		if got := PBest(3, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("PBest(3, %v) = %v, want %v", p, got, want)
		}
	}
}

func TestPBestEvenTieBreak(t *testing.T) {
	// k=2: win both (p²) or split (2p(1-p)) decided by a fair coin:
	// p² + p(1-p) = p. The paper's Figure 8 shows k=2 equal to k=1.
	for _, p := range []float64{0.6, 0.7, 0.8} {
		if got := PBest(2, p); math.Abs(got-p) > 1e-12 {
			t.Errorf("PBest(2, %v) = %v, want %v", p, got, p)
		}
	}
}

func TestPaperConclusion(t *testing.T) {
	// "16-32 leader sets select the globally best policy with >95%
	// probability" for the measured p ∈ [0.74, 0.99].
	for _, p := range []float64{0.74, 0.8, 0.9, 0.99} {
		if got := PBest(31, p); got < 0.95 {
			t.Errorf("PBest(31, %v) = %v, want >= 0.95", p, got)
		}
	}
	// And the flip side: at p just over 1/2, 32 sets are NOT enough —
	// the curves of Figure 8 really do spread.
	if got := PBest(31, 0.55); got > 0.95 {
		t.Errorf("PBest(31, 0.55) = %v; Figure 8 shows slow convergence near p=0.5", got)
	}
}

// Properties: P(Best) ∈ [min(p,1-p)... actually [0,1]], ≥ p for odd k ≥ 1
// when p ≥ 0.5, and non-decreasing in k over odd k.
func TestPBestProperties(t *testing.T) {
	f := func(pRaw uint16, kRaw uint8) bool {
		p := 0.5 + float64(pRaw%500)/1000 // [0.5, 1)
		k := int(kRaw%40)*2 + 1           // odd 1..79
		v := PBest(k, p)
		if v < 0 || v > 1 {
			return false
		}
		if v+1e-12 < p { // majority vote never hurts for p ≥ ½, odd k
			return false
		}
		if k >= 3 && PBest(k, p)+1e-12 < PBest(k-2, p) {
			return false // monotone in odd k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPBestLargeKNumericallyStable(t *testing.T) {
	if got := PBest(1001, 0.6); got < 0.999 || got > 1 || math.IsNaN(got) {
		t.Fatalf("PBest(1001, 0.6) = %v", got)
	}
}

func TestCurve(t *testing.T) {
	ks := []int{1, 3, 5}
	c := Curve(ks, 0.7)
	if len(c) != 3 {
		t.Fatal("curve length")
	}
	for i, k := range ks {
		if c[i] != PBest(k, 0.7) {
			t.Fatal("curve disagrees with PBest")
		}
	}
}

func TestMinLeadersFor(t *testing.T) {
	k := MinLeadersFor(0.74, 0.95, 129)
	if k == 0 || k > 32 {
		t.Fatalf("MinLeadersFor(0.74, 0.95) = %d, want a small odd k", k)
	}
	if k%2 != 1 {
		t.Fatalf("k = %d should be odd", k)
	}
	if PBest(k, 0.74) < 0.95 || (k > 1 && PBest(k-2, 0.74) >= 0.95) {
		t.Fatal("MinLeadersFor not minimal")
	}
	if MinLeadersFor(0.501, 0.999999, 9) != 0 {
		t.Fatal("unreachable target should return 0")
	}
}

func TestPBestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { PBest(0, 0.5) },
		func() { PBest(3, -0.1) },
		func() { PBest(3, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
