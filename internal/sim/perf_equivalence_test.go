package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"mlpcache/internal/cache"
	"mlpcache/internal/workload"
)

// TestRanksAgreeWithReferenceAcrossPolicies is the hot-path rewrite's
// property test: SetView.Ranks (the one-pass ranking the optimized
// victim functions are built on) and SetView.LRUWay must agree with the
// per-way RecencyRank reference under every replacement policy in the
// registry, across randomized fill/touch/demote/invalidate sequences.
// The policies themselves run live (hybrids included), so the sequences
// exercise exactly the metadata states real victim decisions see.
func TestRanksAgreeWithReferenceAcrossPolicies(t *testing.T) {
	for _, kind := range AllPolicies {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			// A small cache maximizes set pressure and eviction churn.
			cfg.L2 = cache.Config{Sets: 16, Assoc: 8, BlockBytes: 64}
			cfg.Policy = PolicySpec{Kind: kind, Seed: 11, LeaderSets: 4}
			l2, hybrid, err := buildL2(cfg, 1)
			if err != nil {
				t.Fatalf("buildL2(%s): %v", kind, err)
			}
			rng := rand.New(rand.NewSource(int64(len(kind)) + 17))
			// Addresses over 4× the cache's block capacity force misses.
			universe := uint64(4 * 16 * 8)
			for op := 0; op < 20_000; op++ {
				addr := (rng.Uint64() % universe) * 64
				write := rng.Intn(4) == 0
				switch rng.Intn(10) {
				case 0: // invalidate
					l2.Invalidate(addr)
				case 1: // demote a random valid way, as BIP's fill path does
					set := rng.Intn(cfg.L2.Sets)
					view := l2.ViewSet(set)
					w := rng.Intn(view.Ways())
					if view.Line(w).Valid {
						view.Demote(w)
					}
				default: // probe, then fill on miss — the memsys access shape
					hit := l2.Probe(addr, write)
					if hybrid != nil {
						hybrid.OnAccess(addr, write, hit, !hit)
					}
					if !hit {
						costQ := uint8(rng.Intn(8))
						l2.Fill(addr, costQ, write)
						if hybrid != nil {
							hybrid.OnFill(addr, costQ)
						}
					}
				}
				checkRanksAgainstReference(t, l2, cfg.L2.Sets, op)
				if t.Failed() {
					return
				}
			}
		})
	}
}

// checkRanksAgainstReference compares the optimized ranking primitives
// with the RecencyRank reference on every set.
func checkRanksAgainstReference(t *testing.T, c *cache.Cache, sets, op int) {
	t.Helper()
	var buf []int
	for s := 0; s < sets; s++ {
		view := c.ViewSet(s)
		buf = view.Ranks(buf)
		firstInvalid := -1
		for w := 0; w < view.Ways(); w++ {
			if !view.Line(w).Valid {
				if firstInvalid < 0 {
					firstInvalid = w
				}
				continue
			}
			if want := view.RecencyRank(w); buf[w] != want {
				t.Errorf("op %d set %d way %d: Ranks=%d, RecencyRank=%d", op, s, w, buf[w], want)
				return
			}
		}
		lru := view.LRUWay()
		switch {
		case firstInvalid >= 0:
			if lru != firstInvalid {
				t.Errorf("op %d set %d: LRUWay=%d, want first invalid way %d", op, s, lru, firstInvalid)
				return
			}
		default:
			if view.RecencyRank(lru) != 0 {
				t.Errorf("op %d set %d: LRUWay=%d has rank %d, want 0", op, s, lru, view.RecencyRank(lru))
				return
			}
		}
	}
}

// TestFastForwardEquivalenceSweep is the stall fast-forward's
// equivalence proof over the audited robustness sweep: for every policy
// in the registry on two benchmark models, a run with fast-forward
// enabled must produce a Result bit-identical to the cycle-by-cycle
// reference — cycles, IPC, every counter block, the cost histogram, and
// the Figure 11 interval series — and both runs must audit clean.
func TestFastForwardEquivalenceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is a long test")
	}
	for _, bench := range []string{"mcf", "parser"} {
		spec, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("benchmark %q missing", bench)
		}
		for _, kind := range AllPolicies {
			kind := kind
			t.Run(bench+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				cfg.MaxInstructions = 60_000
				cfg.Policy = PolicySpec{Kind: kind, Seed: 7}
				if kind == PolicySBAR {
					cfg.Policy.RandDynamic = true
					cfg.EpochInstructions = 20_000
				}
				cfg.Audit = true
				cfg.AuditEvery = 2048
				cfg.SampleInterval = 10_000
				fast, err := Run(cfg, spec.Build(11))
				if err != nil {
					t.Fatalf("fast-forward run failed: %v", err)
				}
				slow := cfg
				slow.DisableFastForward = true
				ref, err := Run(slow, spec.Build(11))
				if err != nil {
					t.Fatalf("reference run failed: %v", err)
				}
				for name, r := range map[string]Result{"fast": fast, "exact": ref} {
					if r.Audit == nil || !r.Audit.Ok() {
						t.Fatalf("%s run did not audit clean: %+v", name, r.Audit)
					}
				}
				// The auditor fires per run-loop iteration, so the
				// fast-forwarded run legitimately completes fewer
				// passes; everything else must match exactly.
				fast.Audit, ref.Audit = nil, nil
				if !reflect.DeepEqual(fast, ref) {
					t.Fatalf("fast-forward result diverges from exact:\nfast: %+v\nexact: %+v", fast, ref)
				}
			})
		}
	}
}
