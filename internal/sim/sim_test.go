package sim

import (
	"errors"
	"testing"

	"mlpcache/internal/bpred"
	"mlpcache/internal/simerr"
	"mlpcache/internal/trace"
)

// bpredDefault is a shorthand for tests.
func bpredDefault() bpred.Config { return bpred.DefaultConfig() }

// microMix builds a small but representative workload: an isolated chase,
// a parallel stream, and a reusable hot set.
func microMix(seed uint64) trace.Source {
	return trace.NewMix(seed,
		trace.MixPart{
			Src:    trace.NewPointerChase(trace.ChaseConfig{Base: 1 << 33, Blocks: 600, Gap: 8, Seed: seed + 1}),
			Weight: 1, Chunk: 24 * 9,
		},
		trace.MixPart{
			Src:    trace.NewStream(trace.StreamConfig{Base: 2 << 33, Blocks: 3000, Gap: 6, Seed: seed + 2}),
			Weight: 2, Chunk: 16 * 7,
		},
		trace.MixPart{
			Src:    trace.NewStream(trace.StreamConfig{Base: 3 << 33, Blocks: 150, Gap: 4, Seed: seed + 3}),
			Weight: 1, Chunk: 16 * 5,
		},
	)
}

func smallConfig(n uint64) Config {
	cfg := DefaultConfig()
	cfg.MaxInstructions = n
	return cfg
}

func TestRunBasicSanity(t *testing.T) {
	cfg := smallConfig(200_000)
	res := MustRun(cfg, microMix(1))
	if res.Instructions != 200_000 {
		t.Fatalf("retired %d, want 200000", res.Instructions)
	}
	if res.IPC <= 0 || res.IPC > 8 {
		t.Fatalf("IPC %v out of range", res.IPC)
	}
	if res.Mem.DemandMisses == 0 {
		t.Fatal("workload produced no misses")
	}
	if res.Mem.CompulsoryMisses > res.Mem.DemandMisses {
		t.Fatal("compulsory misses exceed total misses")
	}
	if res.CostHist.Total() != res.Mem.DemandMisses {
		t.Fatalf("histogram has %d samples, want %d misses",
			res.CostHist.Total(), res.Mem.DemandMisses)
	}
	if res.L2.Misses < res.Mem.DemandMisses {
		t.Fatal("L2 probe misses fewer than serviced misses")
	}
}

func TestRunDeterminism(t *testing.T) {
	a := MustRun(smallConfig(150_000), microMix(7))
	b := MustRun(smallConfig(150_000), microMix(7))
	if a.Cycles != b.Cycles || a.Mem.DemandMisses != b.Mem.DemandMisses || a.IPC != b.IPC {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Summary(), b.Summary())
	}
}

// The fast-forward optimization must be exact: identical cycle counts,
// miss counts, and cost histograms with and without it.
func TestFastForwardEquivalence(t *testing.T) {
	base := smallConfig(120_000)
	fast := MustRun(base, microMix(3))
	slow := base
	slow.DisableFastForward = true
	ref := MustRun(slow, microMix(3))
	if fast.Cycles != ref.Cycles {
		t.Fatalf("cycles differ: fast %d vs exact %d", fast.Cycles, ref.Cycles)
	}
	if fast.Mem.DemandMisses != ref.Mem.DemandMisses {
		t.Fatalf("misses differ: %d vs %d", fast.Mem.DemandMisses, ref.Mem.DemandMisses)
	}
	if fast.AvgMLPCost() != ref.AvgMLPCost() {
		t.Fatalf("costs differ: %v vs %v", fast.AvgMLPCost(), ref.AvgMLPCost())
	}
	fb, rb := fast.CostHist.Bins(), ref.CostHist.Bins()
	for i := range fb {
		if fb[i] != rb[i] {
			t.Fatalf("histogram bin %d differs: %d vs %d", i, fb[i], rb[i])
		}
	}
	if fast.CPU.MemStallCycles != ref.CPU.MemStallCycles {
		t.Fatalf("stall accounting differs: %d vs %d",
			fast.CPU.MemStallCycles, ref.CPU.MemStallCycles)
	}
}

func TestIsolatedMissesLandInTopBin(t *testing.T) {
	// A pure pointer chase over an uncacheable working set: every miss
	// is isolated, so the 420+ bin must dominate.
	cfg := smallConfig(150_000)
	src := trace.NewPointerChase(trace.ChaseConfig{Blocks: 40_000, Gap: 8, Seed: 5})
	res := MustRun(cfg, src)
	pct := res.CostHist.Percent()
	if pct[7] < 90 {
		t.Fatalf("isolated chase: only %.1f%% of misses in the 420+ bin", pct[7])
	}
	if avg := res.AvgMLPCost(); avg < 420 {
		t.Fatalf("avg mlp-cost %v, want >= 420", avg)
	}
}

func TestParallelMissesAreCheap(t *testing.T) {
	cfg := smallConfig(150_000)
	src := trace.NewStream(trace.StreamConfig{Blocks: 40_000, Gap: 6, Seed: 5})
	res := MustRun(cfg, src)
	if avg := res.AvgMLPCost(); avg > 120 {
		t.Fatalf("streaming misses average %v cycles, want well under 120", avg)
	}
}

func TestKParallelChasesCostLatencyOverK(t *testing.T) {
	// Two interleaved chases → mlp-cost ≈ 444/2, the paper's mcf peak.
	inner := []trace.MixPart{}
	for i := 0; i < 2; i++ {
		inner = append(inner, trace.MixPart{
			Src: trace.NewPointerChase(trace.ChaseConfig{
				Base: uint64(i) << 33, Blocks: 20_000, Gap: 8, Seed: uint64(i) + 1}),
			Weight: 1, Chunk: 1,
		})
	}
	res := MustRun(smallConfig(150_000), trace.NewMix(9, inner...))
	pct := res.CostHist.Percent()
	if pct[3] < 50 { // 180-239 bin
		t.Fatalf("k=2 chase: only %.1f%% of misses in the 180-239 bin (hist %v)", pct[3], pct)
	}
}

func TestPolicies(t *testing.T) {
	for _, kind := range []PolicyKind{
		PolicyLRU, PolicyFIFO, PolicyRandom, PolicyNMRU, PolicyLIN,
		PolicyBCL, PolicyDCL, PolicyDIP,
		PolicySBAR, PolicyCBSLocal, PolicyCBSGlobal,
	} {
		cfg := smallConfig(60_000)
		cfg.Policy = PolicySpec{Kind: kind}
		res := MustRun(cfg, microMix(2))
		if res.Instructions != 60_000 {
			t.Fatalf("%s: retired %d", kind, res.Instructions)
		}
		isHybrid := kind == PolicySBAR || kind == PolicyCBSLocal ||
			kind == PolicyCBSGlobal || kind == PolicyDIP
		if isHybrid != (res.Hybrid != nil) {
			t.Fatalf("%s: hybrid stats presence wrong", kind)
		}
	}
}

func TestUnknownPolicyReturnsTypedError(t *testing.T) {
	cfg := smallConfig(1000)
	cfg.Policy = PolicySpec{Kind: "belady"}
	_, err := Run(cfg, microMix(1))
	if !errors.Is(err, simerr.ErrBadConfig) {
		t.Fatalf("unknown policy: err = %v, want ErrBadConfig", err)
	}
}

func TestSeriesSampling(t *testing.T) {
	cfg := smallConfig(100_000)
	cfg.SampleInterval = 10_000
	res := MustRun(cfg, microMix(4))
	if res.Series == nil {
		t.Fatal("no series")
	}
	n := len(res.Series.IPC.Points)
	if n < 9 || n > 11 {
		t.Fatalf("%d sample points, want ≈ 10", n)
	}
	if len(res.Series.MPKI.Points) != n || len(res.Series.AvgCostQ.Points) != n {
		t.Fatal("series lengths disagree")
	}
	for _, p := range res.Series.IPC.Points {
		if p.Value <= 0 || p.Value > 8 {
			t.Fatalf("interval IPC %v out of range", p.Value)
		}
	}
}

func TestLINPlumbingChangesBehaviour(t *testing.T) {
	// On a chase-vs-stream thrash mix, LIN(4) must retain the expensive
	// chase region and beat LRU — verifying the policy actually reaches
	// the L2 through the spec plumbing.
	mix := func(seed uint64) trace.Source {
		return trace.NewMix(seed,
			trace.MixPart{
				Src:    trace.NewPointerChase(trace.ChaseConfig{Base: 1 << 33, Blocks: 3000, Gap: 8, Seed: seed + 1}),
				Weight: 1, Chunk: 24 * 9,
			},
			trace.MixPart{
				Src:    trace.NewStream(trace.StreamConfig{Base: 2 << 33, Blocks: 30_000, Gap: 6, Seed: seed + 2}),
				Weight: 4, Chunk: 16 * 7,
			},
		)
	}
	lru := MustRun(smallConfig(400_000), mix(6))
	cfg := smallConfig(400_000)
	cfg.Policy = PolicySpec{Kind: PolicyLIN, Lambda: 4}
	lin := MustRun(cfg, mix(6))
	if lin.IPC <= lru.IPC {
		t.Fatalf("LIN (%.4f) should beat LRU (%.4f) on a retainable chase mix",
			lin.IPC, lru.IPC)
	}
	if lin.Mem.DemandMisses >= lru.Mem.DemandMisses {
		t.Fatalf("LIN misses %d should undercut LRU's %d",
			lin.Mem.DemandMisses, lru.Mem.DemandMisses)
	}
}

func TestMergedMissesCounted(t *testing.T) {
	// Two immediate loads to different words of the same block: the
	// second merges into the first's MSHR entry.
	ins := []trace.Instr{
		{Kind: trace.Load, Addr: 0},
		{Kind: trace.Load, Addr: 8},
	}
	cfg := DefaultConfig()
	res := MustRun(cfg, trace.NewSliceSource(ins))
	if res.Mem.DemandMisses != 1 || res.Mem.MergedMisses != 1 {
		t.Fatalf("misses=%d merged=%d, want 1/1", res.Mem.DemandMisses, res.Mem.MergedMisses)
	}
}

func TestDeltaTracking(t *testing.T) {
	// Deltas need blocks that miss more than once: a thrashing loop.
	cfg := smallConfig(300_000)
	res := MustRun(cfg, trace.NewStream(trace.StreamConfig{Blocks: 20_000, Gap: 4, Seed: 8}))
	if res.Delta.Samples() == 0 {
		t.Fatal("no delta samples despite block re-misses")
	}
	total := res.Delta.PercentLt60() + res.Delta.PercentGe60Lt120() + res.Delta.PercentGe120()
	if total < 99.9 || total > 100.1 {
		t.Fatalf("delta percentages sum to %v", total)
	}
}

func TestWritebacksReachDRAM(t *testing.T) {
	// Store-heavy thrash: dirty L2 evictions must generate DRAM writes.
	src := trace.NewStream(trace.StreamConfig{Blocks: 40_000, Gap: 4, Stores: 1.0, Seed: 3})
	cfg := smallConfig(150_000)
	res := MustRun(cfg, src)
	if res.DRAM.Writes == 0 {
		t.Fatal("no writebacks reached DRAM")
	}
}

func TestMissHook(t *testing.T) {
	var hooked uint64
	cfg := smallConfig(50_000)
	cfg.MissHook = func(addr uint64, costQ uint8) { hooked++ }
	res := MustRun(cfg, microMix(9))
	if hooked != res.Mem.DemandMisses {
		t.Fatalf("hook saw %d misses, result says %d", hooked, res.Mem.DemandMisses)
	}
}

func TestCAREPolicies(t *testing.T) {
	// BCL and DCL plug in as L2 policies; on the LIN-friendly mix they
	// must at least not catastrophically regress against LRU, and on a
	// dead-pollution mix DCL must track LRU much more closely than LIN.
	base := MustRun(smallConfig(150_000), microMix(11))
	for _, kind := range []PolicyKind{PolicyBCL, PolicyDCL} {
		cfg := smallConfig(150_000)
		cfg.Policy = PolicySpec{Kind: kind}
		res := MustRun(cfg, microMix(11))
		if res.IPC < base.IPC*0.8 {
			t.Errorf("%s IPC %.4f collapsed vs LRU %.4f", kind, res.IPC, base.IPC)
		}
	}
}

func TestLiveBranchPredictorMode(t *testing.T) {
	// With a live predictor the workloads' synthesized branch outcomes
	// produce a plausible misprediction rate, and the fast-forward
	// optimization stays exact.
	mk := func(disableFF bool) Result {
		cfg := smallConfig(150_000)
		bp := bpredDefault()
		cfg.CPU.BranchPredictor = &bp
		cfg.DisableFastForward = disableFF
		return MustRun(cfg, microMix(13))
	}
	fast, ref := mk(false), mk(true)
	if fast.Bpred.Lookups == 0 {
		t.Fatal("predictor never consulted")
	}
	rate := fast.Bpred.MispredictRate()
	if rate <= 0 || rate > 0.25 {
		t.Fatalf("mispredict rate %.3f implausible", rate)
	}
	if fast.Cycles != ref.Cycles || fast.CPU.Mispredicts != ref.CPU.Mispredicts {
		t.Fatalf("fast-forward diverges under live prediction: %d/%d vs %d/%d",
			fast.Cycles, fast.CPU.Mispredicts, ref.Cycles, ref.CPU.Mispredicts)
	}
	// The oracle-mode run (no mispredicts in these workloads) must be
	// at least as fast.
	oracle := MustRun(smallConfig(150_000), microMix(13))
	if oracle.IPC < fast.IPC {
		t.Fatalf("oracle IPC %.4f below live-predictor IPC %.4f", oracle.IPC, fast.IPC)
	}
}

func TestResultAccessors(t *testing.T) {
	res := MustRun(smallConfig(60_000), microMix(15))
	if res.MissesServiced() != res.Mem.DemandMisses {
		t.Fatal("MissesServiced mismatch")
	}
	if res.MPKI() <= 0 || res.AvgCostQ() < 0 || res.CompulsoryPercent() <= 0 {
		t.Fatalf("accessors: mpki=%v costq=%v comp=%v", res.MPKI(), res.AvgCostQ(), res.CompulsoryPercent())
	}
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
	var zero Result
	if zero.MPKI() != 0 || zero.AvgCostQ() != 0 || zero.CompulsoryPercent() != 0 {
		t.Fatal("zero-value accessors must be 0")
	}
	if zero.IPCDeltaPercent(zero) != 0 || zero.MissDeltaPercent(zero) != 0 {
		t.Fatal("zero-baseline deltas must be 0")
	}
}

func TestL1WritebackDropPath(t *testing.T) {
	// With an L2 smaller than the L1, dirty L1 victims routinely find
	// their block already evicted from the L2 and are dropped (and
	// counted). A deliberately inverted hierarchy makes the path easy
	// to hit.
	src := trace.NewStream(trace.StreamConfig{Blocks: 60_000, Gap: 2, Stores: 1.0, Seed: 9})
	cfg := smallConfig(250_000)
	cfg.L2.SizeBytes = 8 * 1024
	res := MustRun(cfg, src)
	if res.Mem.L1WritebackDrops == 0 {
		t.Fatal("expected dropped L1 writebacks under heavy store thrash")
	}
}

func TestHybridInterfaceConformance(t *testing.T) {
	// Compile-time conformance is checked in core; here verify the sim
	// surfaces hybrid stats for every hybrid kind.
	for _, kind := range []PolicyKind{PolicySBAR, PolicyCBSLocal, PolicyCBSGlobal, PolicyDIP} {
		cfg := smallConfig(30_000)
		cfg.Policy = PolicySpec{Kind: kind}
		if res := MustRun(cfg, microMix(16)); res.Hybrid == nil {
			t.Fatalf("%s: no hybrid stats", kind)
		}
	}
}

func TestMispredictStatMatchesPredictor(t *testing.T) {
	// The retired-mispredict counter must agree with the predictor's
	// own accounting (modulo in-flight branches at run end).
	cfg := smallConfig(150_000)
	bp := bpredDefault()
	cfg.CPU.BranchPredictor = &bp
	res := MustRun(cfg, microMix(17))
	if res.CPU.Mispredicts == 0 {
		t.Fatal("live predictor produced no retired mispredicts")
	}
	diff := int64(res.Bpred.Mispredicts) - int64(res.CPU.Mispredicts)
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Fatalf("predictor counted %d mispredicts, retirement %d",
			res.Bpred.Mispredicts, res.CPU.Mispredicts)
	}
}
