package sim

import (
	"mlpcache/internal/learn"
	"mlpcache/internal/metrics"
)

// Metrics exports the result as a metrics registry: every counter the run
// accumulated under the stable dotted names catalogued in
// docs/OBSERVABILITY.md. Conditional families (hybrid.*, psel.*,
// interval.*, audit.*) appear only when the run produced them; everything
// else is always present, zero-valued if idle.
func (r Result) Metrics() *metrics.Registry {
	reg := metrics.NewRegistry()

	// Run totals.
	reg.Counter("run.instructions", "instructions", "instructions retired").Add(r.Instructions)
	reg.Counter("run.cycles", "cycles", "cycles simulated").Add(r.Cycles)
	reg.Gauge("run.ipc", "ipc", "retired instructions per cycle").Set(r.IPC)

	// Core.
	reg.Counter("cpu.retired", "instructions", "instructions retired by the core").Add(r.CPU.Retired)
	reg.Counter("cpu.loads", "instructions", "load instructions retired").Add(r.CPU.Loads)
	reg.Counter("cpu.stores", "instructions", "store instructions retired").Add(r.CPU.Stores)
	reg.Counter("cpu.branches", "instructions", "branch instructions retired").Add(r.CPU.Branches)
	reg.Counter("cpu.mispredicts", "branches", "mispredicted branches").Add(r.CPU.Mispredicts)
	reg.Counter("cpu.mem_stall_cycles", "cycles", "cycles retirement blocked on memory").Add(r.CPU.MemStallCycles)
	reg.Counter("cpu.mem_stall_episodes", "episodes", "maximal memory-stall runs").Add(r.CPU.MemStallEpisodes)
	reg.Counter("cpu.full_window_cycles", "cycles", "cycles fetch blocked by a full window").Add(r.CPU.FullWindowCycles)
	reg.Counter("cpu.fetch_mispredict_cycles", "cycles", "cycles fetch blocked on a mispredict").Add(r.CPU.FetchMispredictCycles)
	reg.Counter("cpu.store_buffer_full", "events", "issues rejected by a full store buffer").Add(r.CPU.StoreBufferFullEvents)
	reg.Counter("cpu.mshr_rejects", "events", "accesses the memory system refused").Add(r.CPU.MSHRRejects)

	// Branch predictor (zero when the oracle front end is in use).
	reg.Counter("bpred.lookups", "branches", "live predictor lookups").Add(r.Bpred.Lookups)
	reg.Counter("bpred.mispredicts", "branches", "live predictor mispredicts").Add(r.Bpred.Mispredicts)
	reg.Counter("bpred.gshare_used", "branches", "lookups routed to gshare").Add(r.Bpred.GshareUsed)
	reg.Gauge("bpred.mispredict_rate", "ratio", "mispredicts over lookups").Set(r.Bpred.MispredictRate())

	// Tag stores.
	r.L1.Observe(reg, "cache.l1")
	r.L2.Observe(reg, "cache.l2")
	reg.Counter("cache.l1.writeback_drop", "evictions", "dirty L1 evictions whose block was absent from L2").Add(r.Mem.L1WritebackDrops)
	reg.Counter("cache.l2.demand_miss", "misses", "primary L2 demand misses serviced by DRAM").Add(r.Mem.DemandMisses)
	reg.Counter("cache.l2.merged_miss", "misses", "L2 misses merged into an in-flight entry").Add(r.Mem.MergedMisses)
	reg.Counter("cache.l2.compulsory_miss", "misses", "first-ever-reference demand misses").Add(r.Mem.CompulsoryMisses)
	reg.Gauge("sim.mem.tracked_blocks", "blocks", "distinct blocks in the memory system's footprint store").Set(float64(r.Mem.TrackedBlocks))

	// MSHR file (Algorithm 1's home).
	r.MSHR.Observe(reg)

	// MLP-based cost accounting (Figure 2, Figure 3b).
	reg.Counter("cost_q.sum", "cost_q", "summed quantized cost over serviced misses").Add(r.Mem.CostQSum)
	reg.Gauge("cost_q.avg", "cost_q", "mean quantized cost per serviced miss").Set(r.AvgCostQ())
	reg.Gauge("mlp_cost.avg", "cycles", "mean mlp-based cost per serviced miss").Set(r.AvgMLPCost())
	reg.AttachHistogram("cost_q.hist", "cycles", "mlp-cost distribution, 60-cycle bins, final bin 420+", r.CostHist)

	// Table 1 successive-miss cost deltas.
	reg.Counter("delta.lt60", "misses", "successive-miss cost deltas below 60 cycles").Add(r.Delta.Lt60)
	reg.Counter("delta.ge60_lt120", "misses", "deltas in [60,120) cycles").Add(r.Delta.Ge60Lt120)
	reg.Counter("delta.ge120", "misses", "deltas of 120+ cycles").Add(r.Delta.Ge120)
	reg.Gauge("delta.mean", "cycles", "mean successive-miss cost delta").Set(r.Delta.Mean())

	// DRAM.
	reg.Counter("dram.reads", "requests", "DRAM read requests").Add(r.DRAM.Reads)
	reg.Counter("dram.writes", "requests", "DRAM write requests").Add(r.DRAM.Writes)
	reg.Counter("dram.bank_wait_cycles", "cycles", "cycles queued behind busy banks").Add(r.DRAM.BankWaitCycles)
	reg.Counter("dram.bus_wait_cycles", "cycles", "cycles queued for the shared bus").Add(r.DRAM.BusWaitCycles)

	// Prefetcher (all zero when disabled).
	reg.Counter("prefetch.issued", "requests", "prefetches issued").Add(r.Mem.PrefetchIssued)
	reg.Counter("prefetch.dropped", "requests", "prefetches dropped for lack of an MSHR entry").Add(r.Mem.PrefetchDropped)
	reg.Counter("prefetch.useful", "fills", "prefetched blocks later hit by demand").Add(r.Mem.PrefetchUseful)
	reg.Counter("prefetch.unused", "fills", "prefetched blocks evicted untouched").Add(r.Mem.PrefetchUnused)
	reg.Counter("prefetch.late", "requests", "in-flight prefetches a demand access merged into").Add(r.Mem.PrefetchLate)

	// Hybrid selection machinery (SBAR/CBS/DIP runs only).
	if r.Hybrid != nil {
		h := r.Hybrid
		reg.Counter("psel.increments", "updates", "PSEL movements toward LIN").Add(h.PselIncrements)
		reg.Counter("psel.decrements", "updates", "PSEL movements toward LRU").Add(h.PselDecrements)
		reg.Counter("hybrid.lin_victims", "victims", "victim decisions made by LIN").Add(h.LinVictims)
		reg.Counter("hybrid.lru_victims", "victims", "victim decisions made by the baseline policy").Add(h.LruVictims)
		reg.Counter("hybrid.epoch_reselects", "epochs", "leader re-draws that changed the map").Add(h.EpochReselects)
		reg.Counter("hybrid.leader_accesses", "accesses", "accesses observed by the contest machinery").Add(h.LeaderAccesses)
		reg.Counter("hybrid.tie_both_hit", "contests", "contests both policies hit").Add(h.TieBothHit)
		reg.Counter("hybrid.tie_both_miss", "contests", "contests both policies missed").Add(h.TieBothMiss)
	}

	// Learned eviction machinery (bandit/learned runs only).
	observeLearn(reg, r.Learn)

	// Interval time series (SampleInterval runs only).
	if r.Series != nil {
		s := r.Series
		reg.AttachSeries("interval.ipc", "ipc", "per-interval IPC (Figure 11)", &s.IPC)
		reg.AttachSeries("interval.mpki", "mpki", "per-interval L2 demand MPKI", &s.MPKI)
		reg.AttachSeries("interval.avg_cost_q", "cost_q", "per-interval mean quantized cost", &s.AvgCostQ)
		reg.AttachSeries("interval.using_lin", "boolean", "1 when LIN was selected at the boundary", &s.UsingLIN)
		reg.AttachSeries("psel.value", "counter", "selector counter at interval boundaries", &s.PselValue)
		reg.AttachSeries("mshr.occupancy", "entries", "miss-file occupancy at interval boundaries", &s.MSHROccupancy)
	}

	// Invariant auditor (audited runs only).
	if r.Audit != nil {
		reg.Counter("audit.checks", "passes", "completed auditor passes").Add(r.Audit.Checks)
		reg.Counter("audit.violations", "violations", "invariant breaches retained").Add(uint64(len(r.Audit.Violations)))
		reg.Counter("audit.dropped", "violations", "breaches beyond the retention cap").Add(uint64(r.Audit.Dropped))
	}

	return reg
}

// observeLearn emits the learn.* family (docs/LEARNED.md) into reg. It
// is shared between single-core and multi-core exports and a no-op when
// the run's L2 policy was not a learned one.
func observeLearn(reg *metrics.Registry, s *learn.Stats) {
	if s == nil {
		return
	}
	reg.Counter("learn.victims", "victims", "victim decisions made by the learned policy").Add(s.Victims)
	reg.Counter("learn.ghost_hits", "misses", "sampled misses an arm's shadow would have hit (bandit regret signal)").Add(s.GhostHits)
	reg.Counter("learn.confirmed", "misses", "sampled misses no arm's shadow held (eviction confirmed harmless)").Add(s.Confirmed)
	reg.Counter("learn.arm.recency", "victims", "bandit victims chosen by the evict-LRU arm").Add(s.ArmRecency)
	reg.Counter("learn.arm.protect", "victims", "bandit victims chosen by the evict-MRU arm").Add(s.ArmProtect)
	reg.Counter("learn.arm.frequency", "victims", "bandit victims chosen by the fewest-hits arm").Add(s.ArmFrequency)
	reg.Counter("learn.arm.cost", "victims", "bandit victims chosen by the cheapest-cost arm").Add(s.ArmCost)
	reg.Counter("learn.arm.scatter", "victims", "bandit victims chosen by the random-LRU-half arm").Add(s.ArmScatter)
	reg.Gauge("learn.weight.recency", "weight", "final evict-LRU arm weight").Set(s.WeightRecency)
	reg.Gauge("learn.weight.protect", "weight", "final evict-MRU arm weight").Set(s.WeightProtect)
	reg.Gauge("learn.weight.frequency", "weight", "final fewest-hits arm weight").Set(s.WeightFrequency)
	reg.Gauge("learn.weight.cost", "weight", "final cheapest-cost arm weight").Set(s.WeightCost)
	reg.Gauge("learn.weight.scatter", "weight", "final random-LRU-half arm weight").Set(s.WeightScatter)
	reg.Counter("learn.fills.trained", "fills", "fills whose signature the model had trained").Add(s.TrainedFills)
	reg.Counter("learn.fills.untrained", "fills", "fills whose signature the model had never seen").Add(s.UntrainedFills)
}

// Header builds the JSONL run header identifying this result. bench and
// seed come from the caller (the Result does not record them).
func (r Result) Header(bench string, seed uint64) metrics.RunHeader {
	return metrics.RunHeader{
		Bench:        bench,
		Policy:       r.Policy,
		Seed:         seed,
		Instructions: r.Instructions,
		Cycles:       r.Cycles,
		IPC:          r.IPC,
	}
}
