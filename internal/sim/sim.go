package sim

import (
	"context"
	"fmt"

	"mlpcache/internal/audit"
	"mlpcache/internal/bpred"
	"mlpcache/internal/cache"
	"mlpcache/internal/core"
	"mlpcache/internal/cpu"
	"mlpcache/internal/dram"
	"mlpcache/internal/faultinject"
	"mlpcache/internal/learn"
	"mlpcache/internal/mshr"
	"mlpcache/internal/simerr"
	"mlpcache/internal/stats"
	"mlpcache/internal/trace"
)

// SeriesSet is the Figure 11 time-series bundle: each point covers one
// SampleInterval of retired instructions.
type SeriesSet struct {
	// AvgCostQ is the average quantized MLP-based cost per serviced
	// miss in the interval.
	AvgCostQ stats.Series
	// MPKI is L2 demand misses per thousand retired instructions.
	MPKI stats.Series
	// IPC is retired instructions per cycle over the interval.
	IPC stats.Series
	// UsingLIN samples whether a hybrid policy had LIN selected for
	// follower sets at each interval boundary (1.0) or LRU (0.0);
	// empty for fixed policies.
	UsingLIN stats.Series
	// PselValue samples the selector counter at each interval boundary
	// (SBAR's single PSEL, CBS's global/set-0 counter); empty for fixed
	// policies.
	PselValue stats.Series
	// MSHROccupancy samples the miss file's occupancy at each interval
	// boundary.
	MSHROccupancy stats.Series
}

// Result bundles everything a run measured.
type Result struct {
	// Policy is the replacement configuration's label.
	Policy string
	// Instructions and Cycles are the run totals; IPC their ratio.
	Instructions uint64
	Cycles       uint64
	IPC          float64

	CPU   cpu.Stats
	Bpred bpred.Stats
	L1    cache.Stats
	L2    cache.Stats
	DRAM  dram.Stats
	Mem   MemStats
	MSHR  mshr.Stats

	// CostHist is the Figure 2 mlp-cost distribution (60-cycle bins,
	// final bin 420+) over serviced demand misses.
	CostHist *stats.Histogram
	// Delta is the Table 1 successive-miss cost-delta distribution.
	Delta DeltaStats
	// Hybrid carries the selection counters when a hybrid policy ran.
	Hybrid *core.HybridStats
	// Learn carries the learned-eviction accounting when the bandit or
	// the learned predictor ran (docs/LEARNED.md).
	Learn *learn.Stats
	// Series is non-nil when Config.SampleInterval was set.
	Series *SeriesSet
	// Audit is non-nil when Config.Audit was set: the invariant
	// auditor's report. A run with violations also returns a wrapped
	// simerr.ErrInvariant.
	Audit *audit.Report
}

// MissesServiced returns the number of primary L2 demand misses.
func (r Result) MissesServiced() uint64 { return r.Mem.DemandMisses }

// AvgMLPCost returns the mean MLP-based cost per serviced miss in cycles.
func (r Result) AvgMLPCost() float64 { return r.CostHist.Mean() }

// AvgCostQ returns the mean quantized cost per serviced miss.
func (r Result) AvgCostQ() float64 {
	if r.Mem.DemandMisses == 0 {
		return 0
	}
	return float64(r.Mem.CostQSum) / float64(r.Mem.DemandMisses)
}

// MPKI returns L2 demand misses per thousand instructions.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.Mem.DemandMisses) / float64(r.Instructions)
}

// CompulsoryPercent returns the compulsory share of demand misses.
func (r Result) CompulsoryPercent() float64 {
	if r.Mem.DemandMisses == 0 {
		return 0
	}
	return 100 * float64(r.Mem.CompulsoryMisses) / float64(r.Mem.DemandMisses)
}

// IPCDeltaPercent returns this run's IPC improvement over a baseline run
// in percent.
func (r Result) IPCDeltaPercent(baseline Result) float64 {
	if baseline.IPC == 0 {
		return 0
	}
	return 100 * (r.IPC - baseline.IPC) / baseline.IPC
}

// MissDeltaPercent returns the change in serviced misses relative to a
// baseline run in percent (negative means fewer misses).
func (r Result) MissDeltaPercent(baseline Result) float64 {
	if baseline.Mem.DemandMisses == 0 {
		return 0
	}
	return 100 * (float64(r.Mem.DemandMisses) - float64(baseline.Mem.DemandMisses)) /
		float64(baseline.Mem.DemandMisses)
}

// MustRun is Run for known-good configurations and sources: it panics on
// any error. Tests, benchmarks and the experiment registry — whose
// inputs are all compiled in — use it to keep call sites terse.
func MustRun(cfg Config, src trace.Source) Result {
	res, err := Run(cfg, src)
	if err != nil {
		panic(err)
	}
	return res
}

// cancelCheckCycles is how many simulated cycles elapse between polls of
// the run context. At the simulator's measured throughput this bounds
// cancellation latency to a few milliseconds of wall time while keeping
// the hot loop's cost to one parked-threshold compare per cycle — the
// same trick the snapshot path uses (see nextSnap below). Fast-forward
// jumps only shorten the interval, never lengthen it.
const cancelCheckCycles = 1 << 16

// Run executes the instruction source with no cancellation; it is
// RunContext under a background context.
func Run(cfg Config, src trace.Source) (Result, error) {
	return RunContext(context.Background(), cfg, src)
}

// RunContext executes the instruction source on the configured machine
// until MaxInstructions retire, the source drains, the cycle guard
// trips, or ctx is done. Cancellation is cooperative: the run loop polls
// ctx.Done every cancelCheckCycles simulated cycles and returns a
// wrapped simerr.ErrCancelled (which also matches the context's cause
// under errors.Is) with an empty Result. A background context costs one
// parked-threshold compare per cycle.
//
// Errors are typed (see the simerr package): an invalid configuration
// returns a wrapped simerr.ErrBadConfig before anything is built, a
// source whose Err method reports a decode failure yields that error
// (wrapped simerr.ErrCorruptTrace for the trace reader), an MSHR
// protocol violation yields simerr.ErrMSHRLeak, and audit violations
// yield simerr.ErrInvariant alongside the partial Result. Any panic
// escaping the machine's internals is converted to a wrapped
// simerr.ErrInternal rather than unwinding into the caller.
func RunContext(ctx context.Context, cfg Config, src trace.Source) (res Result, err error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	done := ctx.Done()
	if done != nil {
		select {
		case <-done:
			return Result{}, simerr.Wrap(simerr.ErrCancelled, ctx.Err(), "sim: run cancelled before start")
		default:
		}
	}
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			if e, ok := r.(error); ok {
				err = simerr.Wrap(simerr.ErrInternal, e, "sim: panic during run")
			} else {
				err = simerr.New(simerr.ErrInternal, "sim: panic during run: %v", r)
			}
		}
	}()
	orig := src
	if cfg.MaxInstructions > 0 {
		src = trace.NewLimit(src, int(cfg.MaxInstructions))
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		if cfg.MaxInstructions > 0 {
			// Generous guard: even a pure chain of isolated misses
			// retires one instruction per ~460 cycles.
			maxCycles = cfg.MaxInstructions*2048 + 1_000_000
		} else {
			maxCycles = 1 << 40
		}
	}

	l2, hybrid, err := buildL2(cfg, 1)
	if err != nil {
		return Result{}, err
	}
	var inj *faultinject.Injector
	if cfg.Faults != nil && cfg.Faults.Active() {
		inj = faultinject.NewInjector(*cfg.Faults)
	}
	mem := newMemSystem(cfg, l2, hybrid, inj)
	c := cfg.Arena.getCPU(cfg.CPU, mem, src)
	var auditor *audit.Auditor
	if cfg.Audit {
		auditor = buildAuditor(cfg, mem, hybrid)
	}

	var ser *SeriesSet
	if cfg.SampleInterval > 0 {
		ser = &SeriesSet{
			AvgCostQ:      stats.Series{Name: "avg-costq-per-miss"},
			MPKI:          stats.Series{Name: "mpki"},
			IPC:           stats.Series{Name: "ipc"},
			UsingLIN:      stats.Series{Name: "lin-selected"},
			PselValue:     stats.Series{Name: "psel-value"},
			MSHROccupancy: stats.Series{Name: "mshr-occupancy"},
		}
	}

	var (
		now         uint64
		retired     uint64
		nextSample  = cfg.SampleInterval
		sampleCycle uint64
		nextEpoch   = cfg.EpochInstructions
		// Snapshot emission is disabled by parking the threshold at the
		// top of the range, keeping the hot loop's check to one compare.
		nextSnap = ^uint64(0)
		snap     snapState
		// Cancellation polls are parked the same way when the context
		// cannot be cancelled (context.Background().Done() is nil).
		nextCancel = ^uint64(0)
	)
	if cfg.SnapshotInterval > 0 && mem.tr != nil {
		nextSnap = cfg.SnapshotInterval
	}
	if done != nil {
		nextCancel = cancelCheckCycles
	}
	for now = 1; now <= maxCycles; now++ {
		if now >= nextCancel {
			select {
			case <-done:
				return Result{}, simerr.Wrap(simerr.ErrCancelled, ctx.Err(),
					fmt.Sprintf("sim: run cancelled at cycle %d", now))
			default:
			}
			nextCancel = now + cancelCheckCycles
		}
		if err := mem.Tick(now); err != nil {
			return Result{}, err
		}
		retired += uint64(c.Cycle(now))
		if capacity, due := inj.ThrottleDue(retired); due {
			if err := mem.mshr.SetCapacity(capacity); err != nil {
				return Result{}, err
			}
		}
		if auditor != nil {
			auditor.MaybeCheck(now)
		}

		if ser != nil && retired >= nextSample {
			misses, costQSum := mem.takeInterval()
			intInstr := cfg.SampleInterval
			intCycles := now - sampleCycle
			if intCycles > 0 {
				ser.IPC.Add(retired, float64(intInstr)/float64(intCycles))
			}
			ser.MPKI.Add(retired, 1000*float64(misses)/float64(intInstr))
			avg := 0.0
			if misses > 0 {
				avg = float64(costQSum) / float64(misses)
			}
			ser.AvgCostQ.Add(retired, avg)
			if hybrid != nil {
				v := 0.0
				if hybrid.UsingLIN(1) {
					v = 1.0
				}
				ser.UsingLIN.Add(retired, v)
				if psel, ok := pselValueOf(hybrid); ok {
					ser.PselValue.Add(retired, float64(psel))
				}
			}
			ser.MSHROccupancy.Add(retired, float64(mem.mshr.Len()))
			sampleCycle = now
			nextSample += cfg.SampleInterval
		}
		if retired >= nextSnap {
			mem.emitSnapshot(now, retired, &snap)
			nextSnap += cfg.SnapshotInterval
		}
		if hybrid != nil && cfg.EpochInstructions > 0 && retired >= nextEpoch {
			hybrid.AdvanceEpoch()
			nextEpoch += cfg.EpochInstructions
		}
		if c.Finished() && !mem.drainInflight() {
			break
		}
		// Fast-forward through stall cycles: when the core made no
		// progress this cycle, nothing can change until its next
		// completion event or the next DRAM fill.
		if !c.DidWork() && !cfg.DisableFastForward {
			wake := c.NextEvent(now)
			if nf := mem.nextFill(); nf < wake {
				wake = nf
			}
			if wake == ^uint64(0) {
				break // wedged: nothing in flight, nothing to do
			}
			if wake > now+1 {
				c.NoteSkipped(wake - now - 1)
				now = wake - 1
			}
		}
	}

	res = Result{
		Policy:       cfg.Policy.String(),
		Instructions: retired,
		Cycles:       now,
		CPU:          c.Stats(),
		Bpred:        c.PredictorStats(),
		L1:           mem.l1.Stats(),
		L2:           mem.l2.Stats(),
		DRAM:         mem.dram.Stats(),
		Mem:          mem.statsSnapshot(),
		MSHR:         mem.mshr.Stats(),
		CostHist:     mem.costHist,
		Delta:        mem.delta,
		Series:       ser,
	}
	if now > 0 {
		res.IPC = float64(retired) / float64(now)
	}
	if hybrid != nil {
		hs := statsOf(hybrid)
		res.Hybrid = &hs
	}
	res.Learn = learnStatsOf(l2.Policy())
	if s, ok := orig.(interface{ Err() error }); ok {
		if err := s.Err(); err != nil {
			return res, err
		}
	}
	if auditor != nil {
		auditor.CheckNow(now)
		res.Audit = auditor.Report()
		if err := res.Audit.Err(); err != nil {
			return res, err
		}
	}
	// The result is fully assembled (stats copied by value, histograms
	// kept — the arena never pools them), so the machine's bulk
	// components can go back to the pool for the next run.
	cfg.Arena.release(mem)
	cfg.Arena.putCPUs(c)
	return res, nil
}

func statsOf(h core.Hybrid) core.HybridStats {
	switch v := h.(type) {
	case *core.SBAR:
		return v.Stats()
	case *core.CBS:
		return v.Stats()
	default:
		return core.HybridStats{}
	}
}

// learnStatsOf extracts the learned-eviction accounting when the L2's
// policy is one of internal/learn's (nil otherwise) — the Learn
// analogue of statsOf.
func learnStatsOf(p cache.Policy) *learn.Stats {
	switch v := p.(type) {
	case *learn.Bandit:
		s := v.Stats()
		return &s
	case *learn.Predictor:
		s := v.Stats()
		return &s
	default:
		return nil
	}
}

// pselValueOf returns the hybrid's selector counter value: SBAR's single
// PSEL, or CBS's set-0 counter (the global counter under CBSGlobal).
func pselValueOf(h core.Hybrid) (int, bool) {
	switch v := h.(type) {
	case *core.SBAR:
		return v.Psel().Value(), true
	case *core.CBS:
		return v.Psel(0).Value(), true
	default:
		return 0, false
	}
}

// Summary renders a one-paragraph textual report of a result.
func (r Result) Summary() string {
	return fmt.Sprintf(
		"policy=%s instr=%d cycles=%d IPC=%.4f L2miss=%d (merged %d, compulsory %.1f%%) "+
			"MPKI=%.2f avg-mlp-cost=%.1f mem-stall=%d cycles",
		r.Policy, r.Instructions, r.Cycles, r.IPC,
		r.Mem.DemandMisses, r.Mem.MergedMisses, r.CompulsoryPercent(),
		r.MPKI(), r.AvgMLPCost(), r.CPU.MemStallCycles)
}
