package sim

import (
	"reflect"
	"testing"

	"mlpcache/internal/workload"
)

// TestMulticoreSingleCoreEquivalence is the multi-core engine's
// correctness anchor: a one-core RunMulti must reproduce the single-core
// engine's Result bit for bit — cycles, IPC, every counter block, the
// cost histogram and the Table 1 deltas — across the audited policy
// sweep. The two run loops are written to have identical cycle
// structure; this test keeps them that way.
func TestMulticoreSingleCoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is a long test")
	}
	for _, bench := range []string{"mcf", "parser"} {
		spec, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("benchmark %q missing", bench)
		}
		for _, kind := range AllPolicies {
			kind := kind
			t.Run(bench+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				cfg.MaxInstructions = 60_000
				cfg.Policy = PolicySpec{Kind: kind, Seed: 7}
				if kind == PolicySBAR {
					cfg.Policy.RandDynamic = true
					cfg.EpochInstructions = 20_000
				}
				cfg.Audit = true
				cfg.AuditEvery = 2048
				legacy, err := Run(cfg, spec.Build(11))
				if err != nil {
					t.Fatalf("single-core run failed: %v", err)
				}
				multi, err := RunMulti(cfg, spec.Build(11))
				if err != nil {
					t.Fatalf("one-core multi run failed: %v", err)
				}
				if legacy.Audit == nil || !legacy.Audit.Ok() {
					t.Fatalf("single-core run did not audit clean: %+v", legacy.Audit)
				}
				if multi.Audit == nil || !multi.Audit.Ok() {
					t.Fatalf("multi-core run did not audit clean: %+v", multi.Audit)
				}
				if len(multi.Cores) != 1 {
					t.Fatalf("one-core run reported %d cores", len(multi.Cores))
				}
				// Reassemble the multi-core result in the single-core
				// Result's shape; every shared field must match exactly.
				// The auditors run different checker sets, so the audit
				// reports are excluded.
				c0 := multi.Cores[0]
				got := Result{
					Policy:       multi.Policy,
					Instructions: multi.Instructions(),
					Cycles:       multi.Cycles,
					IPC:          multi.IPC(),
					CPU:          c0.CPU,
					Bpred:        c0.Bpred,
					L1:           c0.L1,
					L2:           multi.L2,
					DRAM:         multi.DRAM,
					Mem:          multi.Mem,
					MSHR:         c0.MSHR,
					CostHist:     multi.CostHist,
					Delta:        multi.Delta,
					Hybrid:       multi.Hybrid,
					Learn:        multi.Learn,
				}
				legacy.Audit, legacy.Series = nil, nil
				if !reflect.DeepEqual(got, legacy) {
					t.Fatalf("one-core multi result diverges from single-core engine:\nmulti:  %+v\nlegacy: %+v", got, legacy)
				}
				if !reflect.DeepEqual(c0.CostHist, multi.CostHist) {
					t.Fatalf("one-core per-core histogram diverges from aggregate")
				}
				if multi.CrossCoreMerges != 0 {
					t.Fatalf("one-core run counted %d cross-core merges", multi.CrossCoreMerges)
				}
			})
		}
	}
}

// TestMulticoreDeterminism asserts that a contended two-core run is a
// pure function of its inputs: the same configuration and sources give
// byte-identical results run to run, including under rand-dynamic SBAR
// and auditing. The experiment tables depend on this.
func TestMulticoreDeterminism(t *testing.T) {
	mcf, _ := workload.ByName("mcf")
	art, _ := workload.ByName("art")
	cfg := DefaultConfig()
	cfg.MaxInstructions = 40_000
	cfg.Policy = PolicySpec{Kind: PolicySBAR, Seed: 7, RandDynamic: true}
	cfg.EpochInstructions = 20_000
	cfg.Audit = true
	cfg.AuditEvery = 4096
	run := func() MultiResult {
		t.Helper()
		res, err := RunMulti(cfg, mcf.Build(11), art.Build(13))
		if err != nil {
			t.Fatalf("two-core run failed: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two-core run is not deterministic:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	if len(a.PselValues) != 2 {
		t.Fatalf("partitioned SBAR reported %d per-thread selectors, want 2", len(a.PselValues))
	}
	for i, c := range a.Cores {
		if c.Instructions != cfg.MaxInstructions {
			t.Fatalf("core %d retired %d instructions, want %d", i, c.Instructions, cfg.MaxInstructions)
		}
	}
}

// TestMulticoreRejectsSingleCoreFeatures pins validateMulti: the
// single-core-only features must fail fast with a typed error.
func TestMulticoreRejectsSingleCoreFeatures(t *testing.T) {
	mcf, _ := workload.ByName("mcf")
	base := DefaultConfig()
	base.MaxInstructions = 1_000
	for name, mutate := range map[string]func(*Config){
		"sample-interval":   func(c *Config) { c.SampleInterval = 100 },
		"snapshot-interval": func(c *Config) { c.SnapshotInterval = 100 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := RunMulti(cfg, mcf.Build(1)); err == nil {
			t.Errorf("%s: RunMulti accepted an unsupported config", name)
		}
	}
	if _, err := RunMulti(base); err == nil {
		t.Errorf("RunMulti accepted zero sources")
	}
}
