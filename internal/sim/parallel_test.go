package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mlpcache/internal/simerr"
	"mlpcache/internal/trace"
	"mlpcache/internal/workload"
)

// parallelMixes are the heterogeneous workload mixes the equivalence
// sweep runs: distinct benchmarks per core so contention, cross-core
// merges and per-thread cost clocks all see asymmetric traffic.
var parallelMixes = map[string][]string{
	"mcf+art":    {"mcf", "art"},
	"parser+mcf": {"parser", "mcf"},
}

func mixSources(t *testing.T, names []string, cores int) []trace.Source {
	t.Helper()
	srcs := make([]trace.Source, cores)
	for i := 0; i < cores; i++ {
		spec, ok := workload.ByName(names[i%len(names)])
		if !ok {
			t.Fatalf("benchmark %q missing", names[i%len(names)])
		}
		srcs[i] = spec.Build(uint64(11 + i))
	}
	return srcs
}

// TestParallelMatchesSerial is the parallel engine's correctness anchor:
// across policies (including the bandit and the learned predictor), core
// counts and heterogeneous mixes, a forced-parallel RunMulti must
// reproduce the serial engine's MultiResult bit for bit — every counter
// block, histogram, PSEL value and the final cycle count. Only the
// Parallel block itself (absent from serial results) is excluded.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is a long test")
	}
	for mixName, mix := range parallelMixes {
		for _, kind := range []PolicyKind{PolicyLRU, PolicyLIN, PolicySBAR, PolicyBandit, PolicyLearned} {
			for _, cores := range []int{1, 2, 4} {
				mix, kind, cores := mix, kind, cores
				t.Run(mixName+"/"+string(kind)+"/"+itoa(cores), func(t *testing.T) {
					t.Parallel()
					cfg := DefaultConfig()
					cfg.MaxInstructions = 40_000
					cfg.Policy = PolicySpec{Kind: kind, Seed: 7}
					cfg.Parallel = ParallelOff
					serial, err := RunMulti(cfg, mixSources(t, mix, cores)...)
					if err != nil {
						t.Fatalf("serial run failed: %v", err)
					}
					// A single core is ineligible for the parallel engine
					// (ParallelOn rejects it); auto mode must fall back to
					// the serial loop and still match bit for bit.
					if cores == 1 {
						cfg.Parallel = ParallelAuto
					} else {
						cfg.Parallel = ParallelOn
					}
					par, err := RunMulti(cfg, mixSources(t, mix, cores)...)
					if err != nil {
						t.Fatalf("parallel run failed: %v", err)
					}
					if cores > 1 {
						if par.Parallel == nil {
							t.Fatal("parallel run did not report ParallelStats")
						}
						if par.Parallel.SharedOps == 0 {
							t.Fatal("parallel run committed no shared operations")
						}
						par.Parallel = nil
					} else if par.Parallel != nil {
						t.Fatal("auto mode engaged the parallel engine on one core")
					}
					if !reflect.DeepEqual(par, serial) {
						t.Fatalf("parallel result diverges from serial engine:\nparallel: %+v\nserial:   %+v", par, serial)
					}
				})
			}
		}
	}
}

// TestParallelMatchesSerialNoFastForward pins the burn-every-cycle path:
// with fast-forward disabled the workers never skip, and the result must
// still match the serial engine exactly.
func TestParallelMatchesSerialNoFastForward(t *testing.T) {
	if testing.Short() {
		t.Skip("burns every stall cycle")
	}
	cfg := DefaultConfig()
	cfg.MaxInstructions = 5_000
	cfg.DisableFastForward = true
	cfg.Parallel = ParallelOff
	serial, err := RunMulti(cfg, mixSources(t, []string{"mcf", "art"}, 2)...)
	if err != nil {
		t.Fatalf("serial run failed: %v", err)
	}
	cfg.Parallel = ParallelOn
	par, err := RunMulti(cfg, mixSources(t, []string{"mcf", "art"}, 2)...)
	if err != nil {
		t.Fatalf("parallel run failed: %v", err)
	}
	par.Parallel = nil
	if !reflect.DeepEqual(par, serial) {
		t.Fatalf("parallel result diverges from serial engine without fast-forward:\nparallel: %+v\nserial:   %+v", par, serial)
	}
}

// TestParallelDeterminism runs the parallel engine twice under the same
// configuration: goroutine scheduling must not leak into any field,
// ParallelStats included.
func TestParallelDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstructions = 30_000
	cfg.Policy = PolicySpec{Kind: PolicySBAR, Seed: 7, RandDynamic: true}
	cfg.Parallel = ParallelOn
	a, err := RunMulti(cfg, mixSources(t, []string{"mcf", "art"}, 2)...)
	if err != nil {
		t.Fatalf("first run failed: %v", err)
	}
	b, err := RunMulti(cfg, mixSources(t, []string{"mcf", "art"}, 2)...)
	if err != nil {
		t.Fatalf("second run failed: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel runs diverge:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestParallelRejectsIneligible pins the fail-fast contract: forcing the
// parallel engine onto a configuration it cannot reproduce bit-identically
// is a typed configuration error, not a silent fallback.
func TestParallelRejectsIneligible(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.MaxInstructions = 1_000
		cfg.Parallel = ParallelOn
		return cfg
	}
	cases := []struct {
		name  string
		cores int
		mut   func(*Config)
	}{
		{"one-core", 1, func(*Config) {}},
		{"audit", 2, func(c *Config) { c.Audit = true }},
		{"epochs", 2, func(c *Config) { c.EpochInstructions = 1_000 }},
		{"mshr-adders", 2, func(c *Config) { c.MSHR.Adders = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			_, err := RunMulti(cfg, mixSources(t, []string{"mcf", "art"}, tc.cores)...)
			if !errors.Is(err, simerr.ErrBadConfig) {
				t.Fatalf("want ErrBadConfig, got %v", err)
			}
		})
	}
	// Auto mode must fall back silently on the same configurations.
	for _, tc := range cases {
		cfg := base()
		cfg.Parallel = ParallelAuto
		tc.mut(&cfg)
		if tc.name == "audit" {
			cfg.AuditEvery = 512
		}
		if _, err := RunMulti(cfg, mixSources(t, []string{"mcf", "art"}, tc.cores)...); err != nil {
			t.Fatalf("%s: auto mode should fall back to serial, got %v", tc.name, err)
		}
	}
}

// TestParallelCancellation cancels a forced-parallel run mid-flight: the
// workers must unwind from wherever the wavefront has them (spinning,
// deep in cpu.Cycle, holding nothing), the run must return ErrCancelled,
// and no goroutine may outlive the call.
func TestParallelCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	cfg.Parallel = ParallelOn
	cfg.MaxInstructions = 5_000_000 // far more work than the deadline allows
	_, err := RunMultiContext(ctx, cfg, mixSources(t, []string{"mcf", "art"}, 4)...)
	if !errors.Is(err, simerr.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}

	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = RunMultiContext(ctx, cfg, mixSources(t, []string{"mcf", "art"}, 4)...)
	if !errors.Is(err, simerr.ErrCancelled) {
		t.Fatalf("want ErrCancelled after deadline, got %v", err)
	}
	// The workers are joined before RunMultiContext returns; give the
	// runtime a moment to retire exiting goroutines, then insist none
	// leaked.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across cancelled parallel run: %d before, %d after", before, after)
	}
}

// TestParallelPanicIsInternalError injects a panic into one core's miss
// path (via MissHook, which runs under the commit lock) and requires the
// run to surface ErrInternal with every worker unwound — no barrier may
// deadlock on the dead core.
func TestParallelPanicIsInternalError(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := DefaultConfig()
	cfg.Parallel = ParallelOn
	cfg.MaxInstructions = 200_000
	hooked := 0
	cfg.MissHook = func(addr uint64, costQ uint8) {
		hooked++
		if hooked == 100 {
			panic("injected fault")
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunMulti(cfg, mixSources(t, []string{"mcf", "art"}, 4)...)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, simerr.ErrInternal) {
			t.Fatalf("want ErrInternal, got %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("parallel run deadlocked after injected panic")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked after injected panic: %d before, %d after", before, after)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
