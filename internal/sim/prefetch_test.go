package sim

import (
	"testing"

	"mlpcache/internal/prefetch"
	"mlpcache/internal/trace"
)

// chainedWalk builds the textbook prefetch target: a strided walk whose
// loads are dependence-chained. Without prefetching every miss is
// isolated (444 cycles, serialized); a stride prefetcher turns the walk
// into hits. (A bandwidth-saturated independent stream, by contrast,
// cannot benefit: its misses already pipeline at the bus limit.)
func chainedWalk(n int) trace.Source {
	ins := make([]trace.Instr, 0, 3*n)
	for i := 0; i < n; i++ {
		ins = append(ins,
			trace.Instr{Kind: trace.Load, Addr: uint64(i) * 64, Dep: 3},
			trace.Instr{Kind: trace.Int},
			trace.Instr{Kind: trace.Int},
		)
	}
	return trace.NewSliceSource(ins)
}

func TestPrefetcherHelpsChainedWalk(t *testing.T) {
	mk := func(pf bool) Result {
		cfg := DefaultConfig()
		if pf {
			p := prefetch.DefaultConfig()
			cfg.Prefetch = &p
		}
		return MustRun(cfg, chainedWalk(3000))
	}
	off, on := mk(false), mk(true)
	if on.Mem.PrefetchIssued == 0 {
		t.Fatal("stride prefetcher issued nothing on a unit-stride walk")
	}
	// Steady state is prefetch-pipelined: the demand stream runs just
	// behind the prefetch wave, so most accesses merge into in-flight
	// prefetches ("late") and wait only a fraction of the memory
	// latency. The observable transformations:
	//   - IPC improves several-fold,
	//   - the misses that remain are cheap (their cost clock starts at
	//     the demand merge, not at the prefetch issue) — prefetching
	//     converts isolated misses into high-MLP ones, the paper's
	//     Section 2 framing.
	if on.IPC <= 2*off.IPC {
		t.Fatalf("prefetching should transform a serialized walk: IPC %.4f vs %.4f",
			on.IPC, off.IPC)
	}
	if covered := on.Mem.PrefetchUseful + on.Mem.PrefetchLate; covered*2 < on.Mem.PrefetchIssued {
		t.Fatalf("coverage too low: %d of %d prefetches used", covered, on.Mem.PrefetchIssued)
	}
	if off.AvgMLPCost() < 400 {
		t.Fatalf("baseline walk should be isolated: avg cost %.0f", off.AvgMLPCost())
	}
	if on.AvgMLPCost() > off.AvgMLPCost()/3 {
		t.Fatalf("prefetching should slash the per-miss cost: %.0f vs %.0f",
			on.AvgMLPCost(), off.AvgMLPCost())
	}
}

func TestPrefetcherUselessOnPointerChase(t *testing.T) {
	// A randomized pointer chase has no stride: the prefetcher should
	// issue few requests and the miss count must not change materially.
	mk := func(pf bool) Result {
		cfg := smallConfig(150_000)
		if pf {
			p := prefetch.DefaultConfig()
			cfg.Prefetch = &p
		}
		src := trace.NewPointerChase(trace.ChaseConfig{Blocks: 40_000, Gap: 10, Seed: 4})
		return MustRun(cfg, src)
	}
	off, on := mk(false), mk(true)
	diff := int64(on.Mem.DemandMisses) - int64(off.Mem.DemandMisses)
	if diff < 0 {
		diff = -diff
	}
	if uint64(diff)*20 > off.Mem.DemandMisses {
		t.Fatalf("chase misses moved by %d (of %d) under a stride prefetcher",
			diff, off.Mem.DemandMisses)
	}
}

func TestPrefetchCostAccountingStaysClean(t *testing.T) {
	// Prefetch fills must not enter the mlp-cost histogram: samples
	// must equal demand misses exactly.
	cfg := smallConfig(150_000)
	p := prefetch.DefaultConfig()
	cfg.Prefetch = &p
	res := MustRun(cfg, microMix(5))
	if res.CostHist.Total() != res.Mem.DemandMisses {
		t.Fatalf("histogram %d samples vs %d demand misses",
			res.CostHist.Total(), res.Mem.DemandMisses)
	}
}

func TestPrefetchFastForwardEquivalence(t *testing.T) {
	mk := func(disable bool) Result {
		cfg := smallConfig(120_000)
		p := prefetch.DefaultConfig()
		cfg.Prefetch = &p
		cfg.DisableFastForward = disable
		return MustRun(cfg, microMix(3))
	}
	fast, ref := mk(false), mk(true)
	if fast.Cycles != ref.Cycles || fast.Mem.DemandMisses != ref.Mem.DemandMisses {
		t.Fatalf("fast-forward diverges with prefetching: %d/%d vs %d/%d",
			fast.Cycles, fast.Mem.DemandMisses, ref.Cycles, ref.Mem.DemandMisses)
	}
}
