package sim

import (
	"reflect"
	"testing"

	"mlpcache/internal/workload"
)

// TestArenaRunsBitIdentical is the arena's correctness anchor: a run
// drawing every bulk component from a warm arena must reproduce a cold
// run bit for bit, for both engines. The arena's whole contract is
// reset-to-just-built state on reuse; any counter a Reset misses shows
// up here as a DeepEqual diff.
func TestArenaRunsBitIdentical(t *testing.T) {
	mcf, _ := workload.ByName("mcf")
	art, _ := workload.ByName("art")

	t.Run("single-core", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.MaxInstructions = 40_000
		cfg.Policy = PolicySpec{Kind: PolicySBAR, Seed: 7}
		cold, err := Run(cfg, mcf.Build(11))
		if err != nil {
			t.Fatalf("cold run failed: %v", err)
		}
		cfg.Arena = NewArena()
		if _, err := Run(cfg, art.Build(3)); err != nil { // populate the pools
			t.Fatalf("warm-up run failed: %v", err)
		}
		warm, err := Run(cfg, mcf.Build(11))
		if err != nil {
			t.Fatalf("arena run failed: %v", err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Fatalf("arena-backed run diverges from cold run:\nwarm: %+v\ncold: %+v", warm, cold)
		}
		s := cfg.Arena.Stats()
		if s.CacheReuses == 0 || s.MSHRReuses == 0 || s.CPUReuses == 0 || s.TableReuses == 0 {
			t.Fatalf("arena reported no reuse after a warm run: %+v", s)
		}
	})

	for name, mode := range map[string]ParallelMode{"multi-serial": ParallelOff, "multi-parallel": ParallelOn} {
		mode := mode
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.MaxInstructions = 30_000
			cfg.Policy = PolicySpec{Kind: PolicyLIN}
			cfg.Parallel = mode
			cold, err := RunMulti(cfg, mcf.Build(11), art.Build(12))
			if err != nil {
				t.Fatalf("cold run failed: %v", err)
			}
			cfg.Arena = NewArena()
			if _, err := RunMulti(cfg, art.Build(5), mcf.Build(6)); err != nil {
				t.Fatalf("warm-up run failed: %v", err)
			}
			warm, err := RunMulti(cfg, mcf.Build(11), art.Build(12))
			if err != nil {
				t.Fatalf("arena run failed: %v", err)
			}
			if !reflect.DeepEqual(warm, cold) {
				t.Fatalf("arena-backed run diverges from cold run:\nwarm: %+v\ncold: %+v", warm, cold)
			}
		})
	}
}

// TestArenaSharedAcrossConfigs exercises geometry matching: runs with a
// different L2 shape must not reuse the mismatched cache, and the arena
// must keep runs correct when configurations interleave.
func TestArenaSharedAcrossConfigs(t *testing.T) {
	mcf, _ := workload.ByName("mcf")
	arena := NewArena()

	small := DefaultConfig()
	small.MaxInstructions = 10_000
	small.Arena = arena

	big := small
	big.L2.SizeBytes = small.L2.SizeBytes * 2

	cold := small
	cold.Arena = nil

	want, err := Run(cold, mcf.Build(11))
	if err != nil {
		t.Fatalf("cold run failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := Run(big, mcf.Build(uint64(20+i))); err != nil {
			t.Fatalf("big run failed: %v", err)
		}
		got, err := Run(small, mcf.Build(11))
		if err != nil {
			t.Fatalf("small run failed: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interleaved arena runs diverge on iteration %d", i)
		}
	}
}
