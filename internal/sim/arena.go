package sim

import (
	"mlpcache/internal/blockmap"
	"mlpcache/internal/cache"
	"mlpcache/internal/cpu"
	"mlpcache/internal/metrics"
	"mlpcache/internal/mshr"
	"mlpcache/internal/trace"
)

// arenaPoolCap bounds each of the Arena's component pools. A worker
// reusing one arena per job holds at most one run's worth of components
// between jobs; the cap only matters if an arena is fed from runs with
// ever-growing core counts, and keeps even that case bounded.
const arenaPoolCap = 128

// Arena recycles a run's bulk allocations — cache line arrays, MSHR
// files, blockmap tables, fill-heap backing and fill freelists — across
// runs, so a worker executing many simulations (an experiment sweep, an
// mlpserve worker) pays the cold-allocation cost once instead of per
// job. Set Config.Arena to use it; both the single-core and multi-core
// engines draw their components from the arena and return them after
// the result is assembled.
//
// Recycled components are reset to their just-built state on reuse
// (cache.Reset, mshr.Reset, blockmap.Reset), so arena-backed runs are
// bit-identical to cold ones — TestArenaRunsBitIdentical holds the two
// engines to that. Result histograms and policy state are never pooled:
// results alias them after the run returns (the experiment cache
// memoizes Results), so the arena only touches objects the engines own
// outright.
//
// An Arena is not goroutine-safe. Give each worker goroutine its own;
// internal/experiments.Runner and internal/service do exactly that
// (docs/PERFORMANCE.md "Simulation arenas").
type Arena struct {
	caches  []*cache.Cache
	mshrs   []*mshr.MSHR
	cpus    []*cpu.CPU
	single  []*blockmap.Table[*fill]
	multi   []*blockmap.Table[*multiFill]
	tracked []*blockmap.Table[blockInfo]

	// Fill-heap backing arrays and freelists, objects included: the
	// fills themselves are plain structs the engines fully overwrite on
	// reuse (newFill), so carrying them between runs is safe.
	singleHeap []*fill
	singleFree []*fill
	multiHeap  []*multiFill
	multiFree  []*multiFill

	stats ArenaStats
}

// NewArena returns an empty arena. The zero value is not usable; a nil
// Config.Arena simply disables pooling.
func NewArena() *Arena { return &Arena{} }

// ArenaStats counts component reuse across an arena's lifetime,
// exported to the metrics registry as the arena.* family.
type ArenaStats struct {
	// CacheReuses and CacheBuilds split cache acquisitions into pool
	// hits and cold constructions; likewise for MSHR files and blockmap
	// tables (the in-flight and footprint stores).
	CacheReuses uint64
	CacheBuilds uint64
	MSHRReuses  uint64
	MSHRBuilds  uint64
	CPUReuses   uint64
	CPUBuilds   uint64
	TableReuses uint64
	TableBuilds uint64
}

// Stats returns the arena's lifetime reuse accounting.
func (a *Arena) Stats() ArenaStats { return a.stats }

// Observe registers the counters in the metrics registry as the arena.*
// family (catalogued in docs/OBSERVABILITY.md).
func (s ArenaStats) Observe(reg *metrics.Registry) {
	reg.Counter("arena.cache.reuses", "caches", "caches drawn from the pool").Add(s.CacheReuses)
	reg.Counter("arena.cache.builds", "caches", "caches built cold").Add(s.CacheBuilds)
	reg.Counter("arena.mshr.reuses", "files", "MSHR files drawn from the pool").Add(s.MSHRReuses)
	reg.Counter("arena.mshr.builds", "files", "MSHR files built cold").Add(s.MSHRBuilds)
	reg.Counter("arena.cpu.reuses", "cores", "core models drawn from the pool").Add(s.CPUReuses)
	reg.Counter("arena.cpu.builds", "cores", "core models built cold").Add(s.CPUBuilds)
	reg.Counter("arena.table.reuses", "tables", "blockmap tables drawn from the pool").Add(s.TableReuses)
	reg.Counter("arena.table.builds", "tables", "blockmap tables built cold").Add(s.TableBuilds)
}

// getCache returns a cache with the requested geometry and policy,
// reusing a pooled one when its resolved geometry matches. Custom
// indexers (sampled ATDs) are never pooled: their geometry is not
// comparable, and they are built by the hybrid engines, not the
// simulator core.
func (a *Arena) getCache(cfg cache.Config, policy cache.Policy) *cache.Cache {
	if a == nil || cfg.Index != nil {
		return cache.New(cfg, policy)
	}
	sets, err := cfg.SetCount()
	if err != nil {
		return cache.New(cfg, policy) // New panics with the typed error
	}
	block := cfg.BlockBytes
	if block == 0 {
		block = 64
	}
	for i := len(a.caches) - 1; i >= 0; i-- {
		got := a.caches[i].Config()
		if got.Sets == sets && got.Assoc == cfg.Assoc && got.BlockBytes == block {
			c := a.caches[i]
			a.caches[i] = a.caches[len(a.caches)-1]
			a.caches[len(a.caches)-1] = nil
			a.caches = a.caches[:len(a.caches)-1]
			c.Reset(policy)
			a.stats.CacheReuses++
			return c
		}
	}
	a.stats.CacheBuilds++
	return cache.New(cfg, policy)
}

// getMSHR returns an MSHR file with the requested configuration,
// reusing a pooled one when the configs match exactly.
func (a *Arena) getMSHR(cfg mshr.Config) *mshr.MSHR {
	if a == nil {
		return mshr.New(cfg)
	}
	for i := len(a.mshrs) - 1; i >= 0; i-- {
		if a.mshrs[i].Config() == cfg {
			m := a.mshrs[i]
			a.mshrs[i] = a.mshrs[len(a.mshrs)-1]
			a.mshrs[len(a.mshrs)-1] = nil
			a.mshrs = a.mshrs[:len(a.mshrs)-1]
			m.Reset()
			a.stats.MSHRReuses++
			return m
		}
	}
	a.stats.MSHRBuilds++
	return mshr.New(cfg)
}

// getCPU returns a core model executing src against mem, reusing a
// pooled one when available. Any pooled core serves any configuration:
// cpu.Reset reallocates the ROB ring only when its length changes and
// recycles the store-buffer and event-heap backings, which carry no
// observable state.
func (a *Arena) getCPU(cfg cpu.Config, mem cpu.MemSystem, src trace.Source) *cpu.CPU {
	if a == nil {
		return cpu.New(cfg, mem, src)
	}
	if n := len(a.cpus); n > 0 {
		c := a.cpus[n-1]
		a.cpus[n-1] = nil
		a.cpus = a.cpus[:n-1]
		c.Reset(cfg, mem, src)
		a.stats.CPUReuses++
		return c
	}
	a.stats.CPUBuilds++
	return cpu.New(cfg, mem, src)
}

// putCPUs returns core models after result assembly. Results copy CPU
// statistics out by value, so nothing released here is reachable from
// the caller's Result.
func (a *Arena) putCPUs(cpus ...*cpu.CPU) {
	if a == nil {
		return
	}
	for _, c := range cpus {
		if c != nil && len(a.cpus) < arenaPoolCap {
			a.cpus = append(a.cpus, c)
		}
	}
}

// Table pools. Any pooled table serves any request: blockmap tables
// grow on demand, and a table recycled from an earlier run has already
// grown to that run's population, so steady-state reuse never rehashes.

func (a *Arena) getSingleTable(expected int) *blockmap.Table[*fill] {
	if a == nil {
		return blockmap.New[*fill](expected)
	}
	if n := len(a.single); n > 0 {
		t := a.single[n-1]
		a.single[n-1] = nil
		a.single = a.single[:n-1]
		t.Reset()
		a.stats.TableReuses++
		return t
	}
	a.stats.TableBuilds++
	return blockmap.New[*fill](expected)
}

func (a *Arena) getMultiTable(expected int) *blockmap.Table[*multiFill] {
	if a == nil {
		return blockmap.New[*multiFill](expected)
	}
	if n := len(a.multi); n > 0 {
		t := a.multi[n-1]
		a.multi[n-1] = nil
		a.multi = a.multi[:n-1]
		t.Reset()
		a.stats.TableReuses++
		return t
	}
	a.stats.TableBuilds++
	return blockmap.New[*multiFill](expected)
}

func (a *Arena) getTrackedTable(expected int) *blockmap.Table[blockInfo] {
	if a == nil {
		return blockmap.New[blockInfo](expected)
	}
	if n := len(a.tracked); n > 0 {
		t := a.tracked[n-1]
		a.tracked[n-1] = nil
		a.tracked = a.tracked[:n-1]
		t.Reset()
		a.stats.TableReuses++
		return t
	}
	a.stats.TableBuilds++
	return blockmap.New[blockInfo](expected)
}

// getSingleFills returns recycled fill-heap backing and a recycled
// freelist for the single-core engine (both possibly nil/empty on a
// cold arena). The freelist carries live *fill objects from the
// previous run; newFill overwrites every field on reuse.
func (a *Arena) getSingleFills() (heap []*fill, free []*fill) {
	if a == nil {
		return nil, nil
	}
	heap, free = a.singleHeap, a.singleFree
	a.singleHeap, a.singleFree = nil, nil
	return heap[:0:cap(heap)], free
}

func (a *Arena) getMultiFills() (heap []*multiFill, free []*multiFill) {
	if a == nil {
		return nil, nil
	}
	heap, free = a.multiHeap, a.multiFree
	a.multiHeap, a.multiFree = nil, nil
	return heap[:0:cap(heap)], free
}

// release returns a single-core memory system's poolable components.
// The engines call it after result assembly; nothing released here is
// reachable from the Result (histograms, policy state and stats values
// stay with the caller).
func (a *Arena) release(m *memSystem) {
	if a == nil || m == nil {
		return
	}
	a.putCache(m.l1)
	a.putCache(m.l2)
	a.putMSHR(m.mshr)
	if len(a.single) < arenaPoolCap {
		a.single = append(a.single, m.inflight)
	}
	if len(a.tracked) < arenaPoolCap {
		a.tracked = append(a.tracked, m.tracked)
	}
	// The heap drains before a run completes normally; clear any
	// stragglers (errored runs) so the backing array holds no live fills.
	clear(m.fills.h)
	a.singleHeap, a.singleFree = m.fills.h[:0:cap(m.fills.h)], m.fillFree
}

// releaseMulti returns a multi-core memory system's poolable
// components: the shared L2, every core's L1 and MSHR file, and the
// shared tables, heap backing and freelist.
func (a *Arena) releaseMulti(m *multiMemSystem) {
	if a == nil || m == nil {
		return
	}
	a.putCache(m.l2)
	for _, p := range m.ports {
		a.putCache(p.l1)
		a.putMSHR(p.mshr)
	}
	if len(a.multi) < arenaPoolCap {
		a.multi = append(a.multi, m.inflight)
	}
	if len(a.tracked) < arenaPoolCap {
		a.tracked = append(a.tracked, m.tracked)
	}
	clear(m.fills.h)
	a.multiHeap, a.multiFree = m.fills.h[:0:cap(m.fills.h)], m.fillFree
}

func (a *Arena) putCache(c *cache.Cache) {
	if c != nil && !c.CustomIndex() && len(a.caches) < arenaPoolCap {
		a.caches = append(a.caches, c)
	}
}

func (a *Arena) putMSHR(m *mshr.MSHR) {
	if m != nil && len(a.mshrs) < arenaPoolCap {
		a.mshrs = append(a.mshrs, m)
	}
}
