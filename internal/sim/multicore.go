package sim

import (
	"context"
	"fmt"

	"mlpcache/internal/audit"
	"mlpcache/internal/blockmap"
	"mlpcache/internal/bpred"
	"mlpcache/internal/cache"
	"mlpcache/internal/core"
	"mlpcache/internal/cpu"
	"mlpcache/internal/dram"
	"mlpcache/internal/learn"
	"mlpcache/internal/metrics"
	"mlpcache/internal/mshr"
	"mlpcache/internal/simerr"
	"mlpcache/internal/stats"
	"mlpcache/internal/trace"
)

// MaxCores bounds a multi-core run. Sharer sets are a single uint64
// bitmask, so the limit is architectural, not a tuning knob.
const MaxCores = 64

// multiTracer stamps outgoing events with the current cycle and the
// issuing core before forwarding them. It is the multi-core analogue of
// clockTracer: the memory system keeps now and tid current so victim,
// contest and miss-lifecycle events carry the thread that caused them.
// psel.update events are exempt from tid stamping — the selector is
// partitioned per thread and SBAR tags those events with the counter's
// owner itself, which can legitimately differ from the core whose fill
// is being serviced (a deferred leader-contest decrement).
type multiTracer struct {
	dst metrics.Tracer
	now uint64
	tid int
}

func (t *multiTracer) Emit(ev metrics.Event) {
	if ev.Cycle == 0 {
		ev.Cycle = t.now
	}
	if ev.Tid == 0 && ev.Type != metrics.EventPselUpdate {
		ev.Tid = t.tid
	}
	t.dst.Emit(ev)
}

// multiFill is a pending DRAM→L2 fill in a multi-core run. owner is the
// core whose access issued the primary miss; sharers is the bitmask of
// cores with an MSHR entry waiting on the block (owner's bit included).
type multiFill struct {
	done    uint64
	addr    uint64
	write   bool
	owner   int
	sharers uint64
}

// multiFillHeap is fillHeap for multiFill: the same inlined min-heap
// ordered by completion cycle, with the same tail-nil discipline.
type multiFillHeap struct{ h []*multiFill }

func (h *multiFillHeap) Len() int         { return len(h.h) }
func (h *multiFillHeap) Peek() *multiFill { return h.h[0] }

func (h *multiFillHeap) Push(f *multiFill) {
	h.h = append(h.h, f)
	j := len(h.h) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if h.h[j].done >= h.h[i].done {
			break
		}
		h.h[i], h.h[j] = h.h[j], h.h[i]
		j = i
	}
}

func (h *multiFillHeap) Pop() *multiFill {
	n := len(h.h) - 1
	h.h[0], h.h[n] = h.h[n], h.h[0]
	i := 0
	for {
		j := 2*i + 1 // left child
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h.h[j2].done < h.h[j].done {
			j = j2
		}
		if h.h[j].done >= h.h[i].done {
			break
		}
		h.h[i], h.h[j] = h.h[j], h.h[i]
		i = j
	}
	out := h.h[n]
	h.h[n] = nil
	h.h = h.h[:n]
	return out
}

// corePort is one core's private slice of the memory system: its own L1
// and MSHR file in front of the shared L2. It implements cpu.MemSystem.
// Keeping the MSHR per core keeps Algorithm 1's cost clock per thread:
// each cycle divides among that core's own outstanding demand misses, so
// mlp-cost measures the issuing thread's overlap, not the whole chip's.
type corePort struct {
	m    *multiMemSystem
	tid  int
	l1   *cache.Cache
	mshr *mshr.MSHR

	mstats   MemStats // per-core counters (prefetch fields stay zero)
	costSum  float64  // summed mlp-cost over this core's serviced misses
	costHist *stats.Histogram

	// fillDue is set by accessL2 to the service cycle of the fill this
	// core just started waiting on (a primary miss or a cross-core
	// merge), and zero otherwise. The parallel engine reads it after
	// each access to schedule its fill barriers; the serial engine
	// ignores it.
	fillDue uint64
}

// Access implements cpu.MemSystem for one core: the private L1 probe,
// then the shared-L2 path. The split matters to the parallel engine,
// which wraps accessL2 in its ordering protocol while L1 hits stay
// lock-free; the serial engine's behaviour is unchanged.
func (p *corePort) Access(addr uint64, write bool, now uint64) (uint64, bool) {
	if p.l1.Probe(addr, write) {
		return now + p.m.cfg.L1Lat, true
	}
	return p.accessL2(addr, write, now)
}

// accessL2 is the shared-state half of an access. It mirrors
// memSystem.Access step for step (so a one-core run is bit-identical to
// the single-core engine) with the capture, prefetch and fault-injection
// branches — all rejected by RunMulti's validation — removed, and one
// addition: a miss on a block another core already has in flight
// allocates a primary entry in this core's own MSHR and joins the fill's
// sharer set, so the waiting thread pays its own cost clock for the
// overlap (a cross-core merge). In a parallel run the caller holds the
// engine's commit lock and has established this access's serial
// position (docs/MULTICORE.md "Determinism contract").
func (p *corePort) accessL2(addr uint64, write bool, now uint64) (uint64, bool) {
	m := p.m
	p.fillDue = 0
	if m.tr != nil {
		m.tr.now = now
		m.tr.tid = p.tid
	}
	if m.sbar != nil {
		m.sbar.SetThread(p.tid)
	}
	l2Hit := m.l2.Probe(addr, false)
	block := m.l2.BlockOf(addr)
	if l2Hit {
		if m.hybrid != nil {
			m.hybrid.OnAccess(addr, write, true, false)
		}
		p.fillL1(addr, write)
		return now + m.cfg.L1Lat + m.cfg.L2Lat, true
	}
	// L2 demand miss.
	if f, ok := m.inflight.Get(block); ok {
		bit := uint64(1) << uint(p.tid)
		if f.sharers&bit == 0 {
			// Another core's miss is already fetching the block. This
			// core still waits on DRAM, so it allocates a primary entry
			// in its own MSHR — starting its own cost clock — and joins
			// the fill's sharer set.
			if p.mshr.Full() {
				return 0, false
			}
			p.mshr.Allocate(block, true, now)
			f.sharers |= bit
			m.crossMerges++
		} else {
			p.mshr.Allocate(block, true, now)
		}
		f.write = f.write || write
		if m.tr != nil {
			m.tr.Emit(metrics.Event{Type: metrics.EventMissMerge, Addr: addr, Block: block})
		}
		p.mstats.MergedMisses++
		if m.hybrid != nil {
			m.hybrid.OnAccess(addr, write, false, false)
		}
		p.fillDue = f.done
		return f.done, true
	}
	if p.mshr.Full() {
		return 0, false // structural stall; the core retries
	}
	p.mshr.Allocate(block, true, now)
	if m.tr != nil {
		m.tr.Emit(metrics.Event{Type: metrics.EventMissIssue, Addr: addr, Block: block})
	}
	if m.hybrid != nil {
		m.hybrid.OnAccess(addr, write, false, true)
	}
	p.mstats.DemandMisses++
	p.noteSeen(block)
	done := m.dram.Read(block, now+m.cfg.L1Lat+m.cfg.L2Lat)
	f := m.newFill(done, addr, write, p.tid)
	m.inflight.Put(block, f)
	m.fills.Push(f)
	p.fillDue = done
	return done, true
}

// noteSeen records a demand miss on the block in the shared footprint
// store, crediting the compulsory miss to the core that touched the
// block first.
func (p *corePort) noteSeen(block uint64) {
	info, _ := p.m.tracked.Get(block)
	if !info.seen {
		info.seen = true
		p.m.tracked.Put(block, info)
		p.mstats.CompulsoryMisses++
	}
}

// fillL1 installs the block into this core's L1, sinking any dirty
// victim into the shared L2's dirty bit.
func (p *corePort) fillL1(addr uint64, write bool) {
	ev, evicted := p.l1.Fill(addr, 0, write)
	if evicted && ev.Dirty {
		if !p.m.l2.MarkDirty(ev.Block * p.l1.Config().BlockBytes) {
			p.mstats.L1WritebackDrops++
		}
	}
}

// multiMemSystem is the contended memory system: per-core L1s and MSHR
// files in front of one shared L2 and one shared DRAM.
type multiMemSystem struct {
	cfg    Config
	l2     *cache.Cache
	dram   *dram.DRAM
	hybrid core.Hybrid
	// sbar is the hybrid downcast when the selector is partitioned per
	// thread (SBAR with Threads > 1); nil otherwise (DIP and CBS keep a
	// single shared counter, as documented in docs/MULTICORE.md).
	sbar *core.SBAR

	ports []*corePort

	fills    multiFillHeap
	inflight *blockmap.Table[*multiFill] // block → pending fill
	fillFree []*multiFill

	// tracked is the shared per-block footprint store: compulsory-miss
	// classification and Table 1 deltas are block properties, so they
	// live chip-wide even though cost accounting is per thread.
	tracked *blockmap.Table[blockInfo]

	costHist *stats.Histogram // aggregate Figure 2 distribution
	delta    DeltaStats       // Table 1 deltas over the shared block store

	// crossMerges counts demand misses that joined another core's
	// in-flight miss (exported as multicore.cross_core_merges).
	crossMerges uint64

	tr *multiTracer
}

func newMultiMemSystem(cfg Config, l2 *cache.Cache, hybrid core.Hybrid, cores int) *multiMemSystem {
	m := &multiMemSystem{
		cfg:      cfg,
		l2:       l2,
		dram:     dram.New(cfg.DRAM),
		hybrid:   hybrid,
		inflight: cfg.Arena.getMultiTable(cores * cfg.MSHR.Entries),
		tracked:  cfg.Arena.getTrackedTable(256),
		costHist: stats.NewHistogram(60, 8),
	}
	m.fills.h, m.fillFree = cfg.Arena.getMultiFills()
	if s, ok := hybrid.(*core.SBAR); ok && s.Threads() > 1 {
		m.sbar = s
	}
	if cfg.Trace != nil {
		m.tr = &multiTracer{dst: cfg.Trace}
		attachTracer(l2, hybrid, m.tr)
	}
	// One batch allocation for the port structs themselves; the slice of
	// pointers keeps every exported surface unchanged.
	backing := make([]corePort, cores)
	m.ports = make([]*corePort, cores)
	for i := 0; i < cores; i++ {
		p := &backing[i]
		*p = corePort{
			m:        m,
			tid:      i,
			l1:       cfg.Arena.getCache(cfg.L1, cache.NewLRU()),
			mshr:     cfg.Arena.getMSHR(cfg.MSHR),
			costHist: stats.NewHistogram(60, 8),
		}
		m.ports[i] = p
	}
	return m
}

// newFill builds a pending fill with the owner's sharer bit set,
// recycling from the freelist as the single-core engine does.
func (m *multiMemSystem) newFill(done, addr uint64, write bool, owner int) *multiFill {
	var f *multiFill
	if n := len(m.fillFree); n > 0 {
		f = m.fillFree[n-1]
		m.fillFree[n-1] = nil
		m.fillFree = m.fillFree[:n-1]
	} else {
		f = new(multiFill)
	}
	*f = multiFill{done: done, addr: addr, write: write, owner: owner, sharers: 1 << uint(owner)}
	return f
}

// Tick advances the memory side by one cycle: every core's MSHR cost
// clock runs (Algorithm 1, per thread), then any DRAM fills due this
// cycle install into the shared hierarchy.
func (m *multiMemSystem) Tick(now uint64) error {
	if m.tr != nil {
		m.tr.now = now
	}
	for _, p := range m.ports {
		p.mshr.Tick(now)
	}
	for m.fills.Len() > 0 && m.fills.Peek().done <= now {
		f := m.fills.Pop()
		if err := m.service(f, now); err != nil {
			return err
		}
		m.fillFree = append(m.fillFree, f)
	}
	return nil
}

// service completes one fill. The owning core's MSHR entry yields the
// miss's mlp-cost — the thread-tagged cost the paper's accounting needs —
// and feeds the owner's histogram plus the aggregate one. Every other
// sharer frees its own entry too (its clock measured its own wait, which
// already shaped the costs of that core's concurrent misses) but the
// block's stored cost is the owner's. The block installs into the shared
// L2 and the owner's L1; other sharers refetch from L2 on their next
// touch.
func (m *multiMemSystem) service(f *multiFill, now uint64) error {
	block := m.l2.BlockOf(f.addr)
	m.inflight.Delete(block)
	p := m.ports[f.owner]
	if m.tr != nil {
		m.tr.tid = f.owner
	}
	if m.sbar != nil {
		m.sbar.SetThread(f.owner)
	}
	cost, err := p.mshr.Free(block, now)
	if err != nil {
		return err
	}
	for rest := f.sharers &^ (1 << uint(f.owner)); rest != 0; rest &= rest - 1 {
		tid := trailingZeros(rest)
		if _, err := m.ports[tid].mshr.Free(block, now); err != nil {
			return err
		}
	}

	m.costHist.Add(cost)
	p.costHist.Add(cost)
	p.costSum += cost
	if m.cfg.TrackDeltas {
		info, _ := m.tracked.Get(block)
		if info.hasCost {
			d := cost - info.lastCost
			if d < 0 {
				d = -d
			}
			m.delta.add(d)
		}
		info.hasCost = true
		info.lastCost = cost
		m.tracked.Put(block, info)
	}

	costQ := core.Quantize(cost)
	if m.tr != nil {
		m.tr.Emit(metrics.Event{
			Type: metrics.EventMissFill, Addr: f.addr, Block: block,
			Cost: cost, CostQ: int(costQ),
		})
	}
	if m.cfg.MissHook != nil {
		m.cfg.MissHook(f.addr, costQ)
	}
	p.mstats.CostQSum += uint64(costQ)

	ev, evicted := m.l2.Fill(f.addr, costQ, false)
	if evicted && ev.Dirty && m.cfg.ModelWritebacks {
		m.dram.Write(ev.Block, now)
	}
	if m.hybrid != nil {
		m.hybrid.OnFill(f.addr, costQ)
	}
	p.fillL1(f.addr, f.write)
	return nil
}

// trailingZeros returns the index of the lowest set bit (v must be
// non-zero). Inlined instead of math/bits to keep the import surface of
// the hot path unchanged.
func trailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// drainInflight reports whether misses are still outstanding.
func (m *multiMemSystem) drainInflight() bool { return m.fills.Len() > 0 }

// nextFill returns the cycle of the earliest pending DRAM fill, or
// ^uint64(0) when none is outstanding.
func (m *multiMemSystem) nextFill() uint64 {
	if m.fills.Len() == 0 {
		return ^uint64(0)
	}
	return m.fills.Peek().done
}

// CoreResult is one core's slice of a multi-core run.
type CoreResult struct {
	// Instructions and IPC are this core's retirement totals over the
	// run's shared cycle count.
	Instructions uint64
	IPC          float64

	CPU   cpu.Stats
	Bpred bpred.Stats
	L1    cache.Stats
	MSHR  mshr.Stats
	// Mem holds this core's share of the memory-side counters: misses it
	// issued, merges it joined, compulsory misses it touched first, and
	// the quantized cost its own misses accrued. Prefetch fields and
	// TrackedBlocks stay zero (the footprint store is chip-wide).
	Mem MemStats
	// CostHist is this core's Figure 2 mlp-cost distribution; CostSum its
	// raw summed cost.
	CostHist *stats.Histogram
	CostSum  float64
}

// MPKI returns this core's L2 demand misses per thousand of its own
// retired instructions.
func (c CoreResult) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c.Mem.DemandMisses) / float64(c.Instructions)
}

// AvgCostQ returns this core's mean quantized cost per serviced miss.
func (c CoreResult) AvgCostQ() float64 {
	if c.Mem.DemandMisses == 0 {
		return 0
	}
	return float64(c.Mem.CostQSum) / float64(c.Mem.DemandMisses)
}

// AvgMLPCost returns this core's mean mlp-based cost per serviced miss.
func (c CoreResult) AvgMLPCost() float64 {
	if c.Mem.DemandMisses == 0 {
		return 0
	}
	return c.CostSum / float64(c.Mem.DemandMisses)
}

// MultiResult bundles everything a multi-core run measured: per-core
// slices plus the shared-L2 aggregates.
type MultiResult struct {
	// Policy is the replacement configuration's label.
	Policy string
	// Cycles is the shared clock's final value.
	Cycles uint64

	// Cores holds one entry per core, in core order.
	Cores []CoreResult

	L2   cache.Stats
	DRAM dram.Stats
	// Mem is the chip-wide aggregate: per-core counters summed, with
	// TrackedBlocks stamped from the shared footprint store.
	Mem MemStats
	// CrossCoreMerges counts demand misses that joined another core's
	// in-flight miss for the same block.
	CrossCoreMerges uint64

	// CostHist is the aggregate Figure 2 distribution; Delta the Table 1
	// successive-miss deltas over the shared block store.
	CostHist *stats.Histogram
	Delta    DeltaStats

	// Hybrid carries the selection counters when a hybrid policy ran.
	Hybrid *core.HybridStats
	// Learn carries the learned-eviction accounting when the bandit or
	// the learned predictor drove the shared L2 (docs/LEARNED.md).
	Learn *learn.Stats
	// PselValues holds each thread's final selector value when the
	// policy partitions its PSEL per thread (SBAR); nil otherwise.
	PselValues []int
	// Audit is non-nil when Config.Audit was set.
	Audit *audit.Report
	// Parallel is non-nil when the parallel engine ran (Config.Parallel,
	// docs/MULTICORE.md "Determinism contract"). It carries only
	// schedule-independent counters, so two parallel runs of the same
	// configuration produce DeepEqual results.
	Parallel *ParallelStats
}

// Instructions returns total retired instructions across cores.
func (r MultiResult) Instructions() uint64 {
	var n uint64
	for _, c := range r.Cores {
		n += c.Instructions
	}
	return n
}

// IPC returns aggregate throughput: total retired instructions per
// shared-clock cycle.
func (r MultiResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions()) / float64(r.Cycles)
}

// MissesServiced returns aggregate primary L2 demand misses.
func (r MultiResult) MissesServiced() uint64 { return r.Mem.DemandMisses }

// MPKI returns aggregate L2 demand misses per thousand instructions.
func (r MultiResult) MPKI() float64 {
	instr := r.Instructions()
	if instr == 0 {
		return 0
	}
	return 1000 * float64(r.Mem.DemandMisses) / float64(instr)
}

// AvgCostQ returns the aggregate mean quantized cost per serviced miss.
func (r MultiResult) AvgCostQ() float64 {
	if r.Mem.DemandMisses == 0 {
		return 0
	}
	return float64(r.Mem.CostQSum) / float64(r.Mem.DemandMisses)
}

// AvgMLPCost returns the aggregate mean mlp-based cost per miss.
func (r MultiResult) AvgMLPCost() float64 { return r.CostHist.Mean() }

// Summary renders a one-paragraph textual report.
func (r MultiResult) Summary() string {
	return fmt.Sprintf(
		"policy=%s cores=%d instr=%d cycles=%d IPC=%.4f L2miss=%d (merged %d, cross-core %d) "+
			"MPKI=%.2f avg-mlp-cost=%.1f",
		r.Policy, len(r.Cores), r.Instructions(), r.Cycles, r.IPC(),
		r.Mem.DemandMisses, r.Mem.MergedMisses, r.CrossCoreMerges,
		r.MPKI(), r.AvgMLPCost())
}

// validateMulti rejects the single-core-only features a multi-core run
// does not support, with typed errors so CLIs can report them cleanly.
func validateMulti(cfg Config, cores int) error {
	if cores < 1 || cores > MaxCores {
		return simerr.New(simerr.ErrBadConfig, "sim: multicore run needs 1..%d sources, got %d", MaxCores, cores)
	}
	switch {
	case cfg.Prefetch != nil:
		return simerr.New(simerr.ErrBadConfig, "sim: multicore run does not support prefetching")
	case cfg.Capture != nil:
		return simerr.New(simerr.ErrBadConfig, "sim: multicore run does not support access capture")
	case cfg.Faults != nil:
		return simerr.New(simerr.ErrBadConfig, "sim: multicore run does not support fault injection")
	case cfg.SampleInterval > 0:
		return simerr.New(simerr.ErrBadConfig, "sim: multicore run does not support the interval series (SampleInterval)")
	case cfg.SnapshotInterval > 0:
		return simerr.New(simerr.ErrBadConfig, "sim: multicore run does not support snapshot emission (SnapshotInterval)")
	}
	return nil
}

// RunMulti executes one instruction source per core on N cores sharing
// the contended L2; it is RunMultiContext under a background context.
func RunMulti(cfg Config, srcs ...trace.Source) (MultiResult, error) {
	return RunMultiContext(context.Background(), cfg, srcs...)
}

// RunMultiContext is the multi-core run loop: N cores, each with a
// private L1 and MSHR file, sharing one L2, one DRAM and one replacement
// engine. Its cycle structure mirrors RunContext exactly — memory tick,
// per-core CPU cycles in core order, audit, epoch, finish check, stall
// fast-forward — so a one-core run reproduces the single-core engine's
// Result bit for bit (asserted by TestMulticoreSingleCoreEquivalence).
// Each core retires up to MaxInstructions from its own source.
//
// Multi-core runs reject prefetching, access capture, fault injection
// and the interval/snapshot series (validateMulti); everything else —
// tracing, auditing, epochs, MissHook — carries over.
func RunMultiContext(ctx context.Context, cfg Config, srcs ...trace.Source) (res MultiResult, err error) {
	if err := cfg.Validate(); err != nil {
		return MultiResult{}, err
	}
	if err := validateMulti(cfg, len(srcs)); err != nil {
		return MultiResult{}, err
	}
	done := ctx.Done()
	if done != nil {
		select {
		case <-done:
			return MultiResult{}, simerr.Wrap(simerr.ErrCancelled, ctx.Err(), "sim: run cancelled before start")
		default:
		}
	}
	defer func() {
		if r := recover(); r != nil {
			res = MultiResult{}
			if e, ok := r.(error); ok {
				err = simerr.Wrap(simerr.ErrInternal, e, "sim: panic during run")
			} else {
				err = simerr.New(simerr.ErrInternal, "sim: panic during run: %v", r)
			}
		}
	}()
	cores := len(srcs)
	parallel, err := resolveParallel(cfg, cores)
	if err != nil {
		return MultiResult{}, err
	}
	orig := make([]trace.Source, cores)
	copy(orig, srcs)
	limited := make([]trace.Source, cores)
	for i, src := range srcs {
		if cfg.MaxInstructions > 0 {
			src = trace.NewLimit(src, int(cfg.MaxInstructions))
		}
		limited[i] = src
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		if cfg.MaxInstructions > 0 {
			// The single-core guard, scaled: contention can serialize the
			// cores' miss chains, so each core gets the full allowance.
			maxCycles = uint64(cores)*cfg.MaxInstructions*2048 + 1_000_000
		} else {
			maxCycles = 1 << 40
		}
	}

	l2, hybrid, err := buildL2(cfg, cores)
	if err != nil {
		return MultiResult{}, err
	}
	mem := newMultiMemSystem(cfg, l2, hybrid, cores)
	if parallel {
		return runMultiParallel(ctx, cfg, mem, hybrid, limited, orig, maxCycles)
	}
	cpus := make([]*cpu.CPU, cores)
	for i, src := range limited {
		cpus[i] = cfg.Arena.getCPU(cfg.CPU, mem.ports[i], src)
	}
	var auditor *audit.Auditor
	if cfg.Audit {
		auditor = buildMultiAuditor(cfg, mem, hybrid)
	}

	var (
		now        uint64
		retired    uint64 // total across cores, for the epoch schedule
		perRetired = make([]uint64, cores)
		nextEpoch  = cfg.EpochInstructions
		nextCancel = ^uint64(0)
	)
	if done != nil {
		nextCancel = cancelCheckCycles
	}
	for now = 1; now <= maxCycles; now++ {
		if now >= nextCancel {
			select {
			case <-done:
				return MultiResult{}, simerr.Wrap(simerr.ErrCancelled, ctx.Err(),
					fmt.Sprintf("sim: run cancelled at cycle %d", now))
			default:
			}
			nextCancel = now + cancelCheckCycles
		}
		if err := mem.Tick(now); err != nil {
			return MultiResult{}, err
		}
		anyWork := false
		for i, c := range cpus {
			n := uint64(c.Cycle(now))
			perRetired[i] += n
			retired += n
			if c.DidWork() {
				anyWork = true
			}
		}
		if auditor != nil {
			auditor.MaybeCheck(now)
		}
		if hybrid != nil && cfg.EpochInstructions > 0 && retired >= nextEpoch {
			hybrid.AdvanceEpoch()
			nextEpoch += cfg.EpochInstructions
		}
		allDone := true
		for _, c := range cpus {
			if !c.Finished() {
				allDone = false
				break
			}
		}
		if allDone && !mem.drainInflight() {
			break
		}
		// Fast-forward through stall cycles: when no core made progress
		// this cycle, nothing changes until the earliest completion event
		// across the cores or the next DRAM fill.
		if !anyWork && !cfg.DisableFastForward {
			wake := mem.nextFill()
			for _, c := range cpus {
				if w := c.NextEvent(now); w < wake {
					wake = w
				}
			}
			if wake == ^uint64(0) {
				break // wedged: nothing in flight, nothing to do
			}
			if wake > now+1 {
				skip := wake - now - 1
				for _, c := range cpus {
					c.NoteSkipped(skip)
				}
				now = wake - 1
			}
		}
	}

	res, err = assembleMulti(cfg, mem, hybrid, cpus, perRetired, now, orig)
	if err != nil {
		return res, err
	}
	if auditor != nil {
		auditor.CheckNow(now)
		res.Audit = auditor.Report()
		if err := res.Audit.Err(); err != nil {
			return res, err
		}
	}
	cfg.Arena.releaseMulti(mem)
	cfg.Arena.putCPUs(cpus...)
	return res, nil
}

// assembleMulti builds the MultiResult both multi-core engines share: the
// shared-L2 aggregates, one CoreResult per core, hybrid/learned extras and
// the deferred source-error check. The caller layers on engine-specific
// pieces (the serial engine its audit report, the parallel engine its
// ParallelStats) and returns the memory system to the arena.
func assembleMulti(cfg Config, mem *multiMemSystem, hybrid core.Hybrid, cpus []*cpu.CPU, perRetired []uint64, now uint64, orig []trace.Source) (MultiResult, error) {
	res := MultiResult{
		Policy:   cfg.Policy.String(),
		Cycles:   now,
		L2:       mem.l2.Stats(),
		DRAM:     mem.dram.Stats(),
		CostHist: mem.costHist,
		Delta:    mem.delta,
	}
	res.CrossCoreMerges = mem.crossMerges
	for i, p := range mem.ports {
		cr := CoreResult{
			Instructions: perRetired[i],
			CPU:          cpus[i].Stats(),
			Bpred:        cpus[i].PredictorStats(),
			L1:           p.l1.Stats(),
			MSHR:         p.mshr.Stats(),
			Mem:          p.mstats,
			CostHist:     p.costHist,
			CostSum:      p.costSum,
		}
		if now > 0 {
			cr.IPC = float64(cr.Instructions) / float64(now)
		}
		res.Cores = append(res.Cores, cr)
		res.Mem.DemandMisses += p.mstats.DemandMisses
		res.Mem.MergedMisses += p.mstats.MergedMisses
		res.Mem.CompulsoryMisses += p.mstats.CompulsoryMisses
		res.Mem.L1WritebackDrops += p.mstats.L1WritebackDrops
		res.Mem.CostQSum += p.mstats.CostQSum
	}
	res.Mem.TrackedBlocks = uint64(mem.tracked.Len())
	if hybrid != nil {
		hs := statsOf(hybrid)
		res.Hybrid = &hs
		if mem.sbar != nil {
			for t := 0; t < mem.sbar.Threads(); t++ {
				res.PselValues = append(res.PselValues, mem.sbar.PselFor(t).Value())
			}
		}
	}
	res.Learn = learnStatsOf(mem.l2.Policy())
	for _, s := range orig {
		if es, ok := s.(interface{ Err() error }); ok {
			if err := es.Err(); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// buildMultiAuditor assembles the invariant checkers for an audited
// multi-core run: the shared L2's structural checks, every core's own
// L1 and MSHR checks, the MSHR↔fill-table bijection extended to sharer
// sets, and the hybrid engine's checks (with every per-thread selector
// bounded when the PSEL is partitioned).
func buildMultiAuditor(cfg Config, mem *multiMemSystem, hybrid core.Hybrid) *audit.Auditor {
	a := audit.New(cfg.AuditEvery,
		audit.RecencyPermutation("l2-recency", mem.l2),
		audit.CostQBound("l2-costq", mem.l2, 7),
		audit.Func("mshr-inflight", func(_ uint64, report func(string)) {
			// Every sharer of a pending fill must hold an MSHR entry for
			// the block, and each core's occupancy must equal its count
			// of in-flight sharer bits: per core, entries and fills are
			// created and retired together.
			perCore := make([]int, len(mem.ports))
			mem.inflight.Range(func(block uint64, f *multiFill) bool {
				for rest := f.sharers; rest != 0; rest &= rest - 1 {
					tid := trailingZeros(rest)
					perCore[tid]++
					if !mem.ports[tid].mshr.Pending(block) {
						report(fmt.Sprintf("core %d shares in-flight block %#x but has no MSHR entry", tid, block))
					}
				}
				return true
			})
			for i, p := range mem.ports {
				if got, want := p.mshr.Len(), perCore[i]; got != want {
					report(fmt.Sprintf("core %d MSHR holds %d entries but shares %d in-flight fills", i, got, want))
				}
			}
		}),
	)
	for i, p := range mem.ports {
		a.Register(
			audit.RecencyPermutation(fmt.Sprintf("l1-recency-core%d", i), p.l1),
			audit.Strings(fmt.Sprintf("mshr-core%d", i), p.mshr.AuditInvariants),
		)
	}
	switch h := hybrid.(type) {
	case *core.SBAR:
		a.Register(audit.Strings("sbar", h.AuditInvariants))
		for t := 0; t < h.Threads(); t++ {
			t := t
			a.Register(audit.PselBound(fmt.Sprintf("sbar-psel-t%d", t), func() (int, int) {
				p := h.PselFor(t)
				return p.Value(), p.Max()
			}))
		}
	case *core.CBS:
		a.Register(audit.Strings("cbs", h.AuditInvariants))
	}
	return a
}
