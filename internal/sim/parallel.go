package sim

// The deterministic parallel multi-core engine: one goroutine per core,
// bit-identical to the serial engine in RunMultiContext.
//
// The design is a conservative wavefront. Each core advances its own
// cycle counter and publishes it in a padded atomic (pos). Work that
// touches only private state — L1 hits, the whole out-of-order window —
// runs lock-free. Work that touches shared state (an L2 access, a DRAM
// fill installing into the hierarchy) is an *ordered operation*: before
// executing one at cycle t, core i waits until every lower-numbered core
// has passed cycle t and every higher-numbered core has reached it, then
// performs the operation under the engine's commit lock. That wait
// condition reproduces the serial engine's exact interleaving — cores in
// index order within a cycle, cycles in order — so the shared L2, the
// replacement policy, the DRAM model and every cost clock observe the
// same sequence of events the serial loop would have produced.
//
// Fills are the other synchronization point. A pending DRAM fill must
// install at exactly its due cycle, before any core's accesses at that
// cycle probe the L2 (the serial loop's Tick runs before the cores'
// Cycles). Each core tracks the due cycles of the fills it is waiting on
// (corePort.fillDue); at the top of a cycle that has one due, the core
// waits for every core to reach that cycle and services everything due
// through it under the commit lock. Because each owner halts at its own
// dues, a fill is always serviced at its exact due cycle, and the
// owner's L1 is never written while the owner is inside cpu.Cycle.
//
// Idle cycles fast-forward per core rather than globally. This is only
// sound because an idle cycle's effects are identical whether the cycle
// is executed or skipped: cpu.NoteSkipped attributes stall cycles in the
// same priority order the fetch stage burns them, and any cycle whose
// execution would mutate state (an MSHR-reject retry, a full store
// buffer probe) counts as work and is never skipped — by either engine.
// The equivalence suite (TestParallelMatchesSerial) holds the two
// engines to DeepEqual results across policies, core counts and mixes.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mlpcache/internal/core"
	"mlpcache/internal/cpu"
	"mlpcache/internal/simerr"
	"mlpcache/internal/trace"
)

// ParallelStats counts the parallel engine's coordination work. All
// fields are schedule-independent — they depend only on the simulated
// history, never on goroutine timing — so they are safe to include in
// the DeepEqual determinism contract. Exported to the metrics registry
// as the sim.parallel.* family (docs/OBSERVABILITY.md).
type ParallelStats struct {
	// SharedOps counts ordered shared-L2 operations committed through
	// the wavefront protocol (L2 probes past the private L1).
	SharedOps uint64
	// FillWaits counts fill barriers: cycles at which a core halted to
	// install DRAM fills due that cycle before simulating it.
	FillWaits uint64
	// TailCycles counts stall cycles attributed after the workers
	// parked, replaying the serial loop's run-out to the final cycle.
	TailCycles uint64
}

// resolveParallel decides which multi-core engine runs. ParallelOn
// demands the parallel engine and errors if the configuration cannot
// support it bit-identically; ParallelAuto uses it when supported and
// more than one scheduler thread is available; ParallelOff never does.
func resolveParallel(cfg Config, cores int) (bool, error) {
	switch cfg.Parallel {
	case ParallelOff:
		return false, nil
	case ParallelOn:
		if err := parallelEligible(cfg, cores); err != nil {
			return false, err
		}
		return true, nil
	default: // ParallelAuto
		if parallelEligible(cfg, cores) != nil {
			return false, nil
		}
		return runtime.GOMAXPROCS(0) > 1, nil
	}
}

// parallelEligible reports why a configuration is pinned to the serial
// engine, or nil when the parallel engine can reproduce it exactly.
func parallelEligible(cfg Config, cores int) error {
	switch {
	case cores < 2:
		return simerr.New(simerr.ErrBadConfig, "sim: parallel engine needs at least 2 cores, got %d", cores)
	case cfg.Audit:
		return simerr.New(simerr.ErrBadConfig, "sim: parallel engine does not support auditing (invariant checks walk the global clock)")
	case cfg.EpochInstructions > 0:
		return simerr.New(simerr.ErrBadConfig, "sim: parallel engine does not support epochs (the schedule is ordered by global retirement)")
	case cfg.MSHR.Adders > 0:
		return simerr.New(simerr.ErrBadConfig, "sim: parallel engine needs the exact MSHR cost clock (MSHR.Adders == 0)")
	}
	return nil
}

// posParked is a parked core's published position: past every cycle, so
// no waiter ever blocks on a core that has left the wavefront.
const posParked = ^uint64(0)

// parPos is one core's published cycle position, padded to its own
// cache line so the wavefront spins of neighbouring cores don't
// false-share.
type parPos struct {
	v atomic.Uint64
	_ [7]uint64
}

// parAbort unwinds a worker goroutine from arbitrarily deep inside
// cpu.Cycle when the run is being torn down (cancellation, a peer's
// panic, a memory-system error). It is thrown only by the worker's own
// frames and recovered at the top of run.
type parAbort struct{}

type parEngine struct {
	mem *multiMemSystem
	pos []parPos

	// mu is the commit lock: every shared-state mutation — ordered L2
	// operations, fill service, trace emission — happens under it, at
	// the operation's exact serial position. fillsThrough (guarded by
	// mu) is the cycle through which pending fills have been installed.
	mu           sync.Mutex
	fillsThrough uint64

	abort   atomic.Bool
	errOnce sync.Once
	err     error

	wg sync.WaitGroup
}

// fail records the run's first error and tears the wavefront down.
func (e *parEngine) fail(err error) {
	e.errOnce.Do(func() { e.err = err })
	e.abort.Store(true)
}

// serviceThrough installs every pending fill due at or before cycle t.
// Callers hold mu and have established that every core has reached t, so
// no core can still issue an ordered operation before a serviced fill's
// due cycle. Each fill is serviced at exactly its own due cycle — the
// serial engine's Tick order — regardless of which core triggers it.
func (e *parEngine) serviceThrough(t uint64) error {
	if t <= e.fillsThrough {
		return nil
	}
	m := e.mem
	for m.fills.Len() > 0 && m.fills.Peek().done <= t {
		f := m.fills.Pop()
		if m.tr != nil {
			m.tr.now = f.done
		}
		if err := m.service(f, f.done); err != nil {
			return err
		}
		m.fillFree = append(m.fillFree, f)
	}
	e.fillsThrough = t
	return nil
}

// dueHeap is a core-local min-heap of fill due cycles the core is
// waiting on. Duplicates are fine; the barrier pops everything due.
type dueHeap struct{ h []uint64 }

func (d *dueHeap) len() int    { return len(d.h) }
func (d *dueHeap) min() uint64 { return d.h[0] }
func (d *dueHeap) push(v uint64) {
	d.h = append(d.h, v)
	j := len(d.h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if d.h[j] >= d.h[i] {
			break
		}
		d.h[i], d.h[j] = d.h[j], d.h[i]
		j = i
	}
}

func (d *dueHeap) pop() {
	n := len(d.h) - 1
	d.h[0] = d.h[n]
	d.h = d.h[:n]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && d.h[j2] < d.h[j] {
			j = j2
		}
		if d.h[j] >= d.h[i] {
			break
		}
		d.h[i], d.h[j] = d.h[j], d.h[i]
		i = j
	}
}

// parkKind records how a worker left its loop, which the coordinator
// turns into the run's final cycle count and tail attribution.
type parkKind uint8

const (
	parkAborted   parkKind = iota // cancelled, peer failure, or own panic
	parkFinished                  // source drained, window empty, fills serviced
	parkWedged                    // idle forever: no events, no pending fills
	parkExhausted                 // next event (or the clock) past MaxCycles
)

// parWorker drives one core. It owns the core's CPU, trace source and
// private dues heap; everything shared goes through the engine.
type parWorker struct {
	eng  *parEngine
	tid  int
	port *corePort
	cpu  *cpu.CPU
	dues dueHeap

	// clearedAt caches the last cycle whose wavefront wait completed:
	// the wait conditions are monotone in the peers' positions, so later
	// ordered operations in the same cycle skip the spin.
	clearedAt uint64

	parkKind parkKind
	parkAt   uint64 // cycle through which this core's stalls are attributed
	wake     uint64 // for parkExhausted: the core's next event past MaxCycles

	retired   uint64
	sharedOps uint64
	fillWaits uint64
}

// Access implements cpu.MemSystem. The private L1 probe stays lock-free;
// anything deeper is an ordered operation.
func (w *parWorker) Access(addr uint64, write bool, now uint64) (uint64, bool) {
	if w.port.l1.Probe(addr, write) {
		return now + w.port.m.cfg.L1Lat, true
	}
	return w.sharedAccess(addr, write, now)
}

// sharedAccess commits one ordered L2 operation at (now, tid): wait for
// the wavefront, then probe/allocate under the commit lock with every
// fill due through now already installed.
func (w *parWorker) sharedAccess(addr uint64, write bool, now uint64) (uint64, bool) {
	if w.clearedAt < now {
		w.waitPeers(now, true)
		w.clearedAt = now
	}
	done, ok := w.commitAccess(addr, write, now)
	w.sharedOps++
	return done, ok
}

// commitAccess holds the commit lock for one ordered operation. The
// deferred unlock matters: a panic under the lock (a policy bug, a user
// MissHook) must release it on the way out, so the other workers observe
// the abort flag instead of blocking on the lock forever.
func (w *parWorker) commitAccess(addr uint64, write bool, now uint64) (uint64, bool) {
	eng := w.eng
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if eng.abort.Load() {
		panic(parAbort{})
	}
	if err := eng.serviceThrough(now); err != nil {
		eng.fail(err)
		panic(parAbort{})
	}
	done, ok := w.port.accessL2(addr, write, now)
	if due := w.port.fillDue; due != 0 {
		w.dues.push(due)
	}
	return done, ok
}

// waitPeers blocks until every peer has reached cycle t. With ordered
// true, lower-numbered peers must have passed t entirely (their cycle-t
// operations commit first; that is the serial engine's core order).
func (w *parWorker) waitPeers(t uint64, ordered bool) {
	eng := w.eng
	for j := range eng.pos {
		if j == w.tid {
			continue
		}
		need := t
		if ordered && j < w.tid {
			need = t + 1
		}
		for eng.pos[j].v.Load() < need {
			if eng.abort.Load() {
				panic(parAbort{})
			}
			runtime.Gosched()
		}
	}
}

// fillBarrier runs at the top of cycle t when one of this core's fills
// is due: once every core has reached t, install everything due through
// t, exactly where the serial loop's Tick would have.
func (w *parWorker) fillBarrier(t uint64) {
	w.waitPeers(t, false)
	w.commitService(t)
	for w.dues.len() > 0 && w.dues.min() <= t {
		w.dues.pop()
	}
	w.fillWaits++
}

// commitService is fillBarrier's locked half, with the same deferred
// unlock-on-panic contract as commitAccess.
func (w *parWorker) commitService(t uint64) {
	eng := w.eng
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if eng.abort.Load() {
		panic(parAbort{})
	}
	if err := eng.serviceThrough(t); err != nil {
		eng.fail(err)
		panic(parAbort{})
	}
}

func (w *parWorker) park(kind parkKind, at, wake uint64) {
	w.parkKind = kind
	w.parkAt = at
	w.wake = wake
	w.eng.pos[w.tid].v.Store(posParked)
}

// run is the per-core loop: the serial engine's cycle body, with the
// global tick replaced by fill barriers, the global fast-forward by a
// per-core one, and the loop exit by a park whose kind the coordinator
// reduces to the shared clock's final value.
func (w *parWorker) run(ctx context.Context, maxCycles uint64) {
	defer w.eng.wg.Done()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(parAbort); !ok {
			if err, ok := r.(error); ok {
				w.eng.fail(simerr.Wrap(simerr.ErrInternal, err, fmt.Sprintf("sim: panic on core %d", w.tid)))
			} else {
				w.eng.fail(simerr.New(simerr.ErrInternal, "sim: panic on core %d: %v", w.tid, r))
			}
		}
		w.park(parkAborted, 0, 0)
	}()
	eng := w.eng
	disableFF := eng.mem.cfg.DisableFastForward
	done := ctx.Done()
	nextCancel := ^uint64(0)
	if done != nil {
		nextCancel = uint64(cancelCheckCycles)
	}
	c := w.cpu
	for t := uint64(1); ; t++ {
		if t > maxCycles {
			w.park(parkExhausted, maxCycles, maxCycles+1)
			return
		}
		if t >= nextCancel {
			select {
			case <-done:
				eng.fail(simerr.Wrap(simerr.ErrCancelled, ctx.Err(),
					fmt.Sprintf("sim: run cancelled at cycle %d", t)))
				w.park(parkAborted, 0, 0)
				return
			default:
			}
			nextCancel = t + uint64(cancelCheckCycles)
		}
		if eng.abort.Load() {
			w.park(parkAborted, 0, 0)
			return
		}
		eng.pos[w.tid].v.Store(t)
		if w.dues.len() > 0 && w.dues.min() <= t {
			w.fillBarrier(t)
		}
		w.retired += uint64(c.Cycle(t))
		if c.Finished() && w.dues.len() == 0 {
			w.park(parkFinished, t, 0)
			return
		}
		if !c.DidWork() && !disableFF {
			wake := c.NextEvent(t)
			if w.dues.len() > 0 && w.dues.min() < wake {
				wake = w.dues.min()
			}
			if wake == ^uint64(0) {
				w.park(parkWedged, t, 0)
				return
			}
			if wake > maxCycles {
				w.park(parkExhausted, t, wake)
				return
			}
			if wake > t+1 {
				c.NoteSkipped(wake - t - 1)
				t = wake - 1
			}
		}
	}
}

// runMultiParallel executes the run with one goroutine per core and
// reduces the parked workers to the serial engine's exact result.
func runMultiParallel(ctx context.Context, cfg Config, mem *multiMemSystem, hybrid core.Hybrid, limited, orig []trace.Source, maxCycles uint64) (MultiResult, error) {
	cores := len(limited)
	eng := &parEngine{mem: mem, pos: make([]parPos, cores)}
	workers := make([]*parWorker, cores)
	for i := range workers {
		w := &parWorker{eng: eng, tid: i, port: mem.ports[i]}
		w.cpu = cfg.Arena.getCPU(cfg.CPU, w, limited[i])
		workers[i] = w
	}
	eng.wg.Add(cores)
	for _, w := range workers {
		go w.run(ctx, maxCycles)
	}
	eng.wg.Wait()
	if eng.err != nil {
		return MultiResult{}, eng.err
	}

	// Reduce the parks to the serial loop's final cycle. With every core
	// run out, the serial loop would have: broken at the last finish (or
	// last fill install) when all sources drain; broken at the last
	// core's idle point when the chip wedges; or fast-forwarded past
	// MaxCycles to the earliest next event when the clock exhausts, so
	// the clock lands on that event. Stall attribution for the cycles
	// between a core's park and that final cycle is replayed in bulk —
	// identical to executing them, which is what makes the per-core
	// fast-forward exact (see the package comment).
	par := &ParallelStats{}
	var now uint64
	exhausted := false
	wakeMin := ^uint64(0)
	for _, w := range workers {
		if w.parkKind == parkExhausted {
			exhausted = true
			if w.wake < wakeMin {
				wakeMin = w.wake
			}
		}
		if w.parkAt > now {
			now = w.parkAt
		}
		par.SharedOps += w.sharedOps
		par.FillWaits += w.fillWaits
	}
	if exhausted {
		now = wakeMin
	}
	for _, w := range workers {
		through := now
		if exhausted {
			through = now - 1 // the serial loop attributes up to the wake it exits on
		}
		if w.parkKind != parkFinished && through > w.parkAt {
			w.cpu.NoteSkipped(through - w.parkAt)
			par.TailCycles += through - w.parkAt
		}
	}

	perRetired := make([]uint64, cores)
	cpus := make([]*cpu.CPU, cores)
	for i, w := range workers {
		perRetired[i] = w.retired
		cpus[i] = w.cpu
	}
	res, err := assembleMulti(cfg, mem, hybrid, cpus, perRetired, now, orig)
	if err != nil {
		return res, err
	}
	res.Parallel = par
	cfg.Arena.releaseMulti(mem)
	cfg.Arena.putCPUs(cpus...)
	return res, nil
}
