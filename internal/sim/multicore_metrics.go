package sim

import (
	"fmt"

	"mlpcache/internal/metrics"
)

// Metrics exports a multi-core result as a metrics registry under the
// names catalogued in docs/OBSERVABILITY.md: the aggregate families the
// single-core engine also emits (run.*, cache.l2.*, cost_q.*, delta.*,
// dram.*, hybrid/psel, audit.*), the multicore.* run shape, and one
// core.<i>.* group per core. Per-core L1, CPU and branch-predictor
// detail stays in the CoreResult structs; the registry carries each
// core's headline counters so dashboards can see who is suffering under
// contention.
func (r MultiResult) Metrics() *metrics.Registry {
	reg := metrics.NewRegistry()

	// Run totals (aggregate across cores, one shared clock).
	reg.Counter("run.instructions", "instructions", "instructions retired").Add(r.Instructions())
	reg.Counter("run.cycles", "cycles", "cycles simulated").Add(r.Cycles)
	reg.Gauge("run.ipc", "ipc", "retired instructions per cycle").Set(r.IPC())

	// Run shape.
	reg.Gauge("multicore.cores", "cores", "cores sharing the contended L2").Set(float64(len(r.Cores)))
	reg.Counter("multicore.cross_core_merges", "misses", "demand misses that joined another core's in-flight miss").Add(r.CrossCoreMerges)

	// Shared tag store and memory-side aggregates.
	r.L2.Observe(reg, "cache.l2")
	reg.Counter("cache.l2.demand_miss", "misses", "primary L2 demand misses serviced by DRAM").Add(r.Mem.DemandMisses)
	reg.Counter("cache.l2.merged_miss", "misses", "L2 misses merged into an in-flight entry").Add(r.Mem.MergedMisses)
	reg.Counter("cache.l2.compulsory_miss", "misses", "first-ever-reference demand misses").Add(r.Mem.CompulsoryMisses)
	reg.Gauge("sim.mem.tracked_blocks", "blocks", "distinct blocks in the memory system's footprint store").Set(float64(r.Mem.TrackedBlocks))

	// MLP-based cost accounting (Figure 2, Figure 3b), chip-wide.
	reg.Counter("cost_q.sum", "cost_q", "summed quantized cost over serviced misses").Add(r.Mem.CostQSum)
	reg.Gauge("cost_q.avg", "cost_q", "mean quantized cost per serviced miss").Set(r.AvgCostQ())
	reg.Gauge("mlp_cost.avg", "cycles", "mean mlp-based cost per serviced miss").Set(r.AvgMLPCost())
	reg.AttachHistogram("cost_q.hist", "cycles", "mlp-cost distribution, 60-cycle bins, final bin 420+", r.CostHist)

	// Table 1 successive-miss cost deltas over the shared block store.
	reg.Counter("delta.lt60", "misses", "successive-miss cost deltas below 60 cycles").Add(r.Delta.Lt60)
	reg.Counter("delta.ge60_lt120", "misses", "deltas in [60,120) cycles").Add(r.Delta.Ge60Lt120)
	reg.Counter("delta.ge120", "misses", "deltas of 120+ cycles").Add(r.Delta.Ge120)
	reg.Gauge("delta.mean", "cycles", "mean successive-miss cost delta").Set(r.Delta.Mean())

	// Shared DRAM.
	reg.Counter("dram.reads", "requests", "DRAM read requests").Add(r.DRAM.Reads)
	reg.Counter("dram.writes", "requests", "DRAM write requests").Add(r.DRAM.Writes)
	reg.Counter("dram.bank_wait_cycles", "cycles", "cycles queued behind busy banks").Add(r.DRAM.BankWaitCycles)
	reg.Counter("dram.bus_wait_cycles", "cycles", "cycles queued for the shared bus").Add(r.DRAM.BusWaitCycles)

	// Per-core slices.
	for i, c := range r.Cores {
		p := fmt.Sprintf("core.%d.", i)
		reg.Counter(p+"instructions", "instructions", "instructions retired by this core").Add(c.Instructions)
		reg.Gauge(p+"ipc", "ipc", "this core's retired instructions per cycle").Set(c.IPC)
		reg.Counter(p+"demand_miss", "misses", "primary L2 demand misses this core issued").Add(c.Mem.DemandMisses)
		reg.Counter(p+"merged_miss", "misses", "misses this core merged into in-flight entries").Add(c.Mem.MergedMisses)
		reg.Counter(p+"compulsory_miss", "misses", "first-ever block references this core issued").Add(c.Mem.CompulsoryMisses)
		reg.Gauge(p+"mpki", "mpki", "this core's L2 demand misses per thousand of its instructions").Set(c.MPKI())
		reg.Gauge(p+"avg_cost_q", "cost_q", "mean quantized cost of this core's misses").Set(c.AvgCostQ())
		reg.Gauge(p+"avg_mlp_cost", "cycles", "mean mlp-based cost of this core's misses").Set(c.AvgMLPCost())
		reg.Counter(p+"mem_stall_cycles", "cycles", "cycles this core's retirement blocked on memory").Add(c.CPU.MemStallCycles)
		reg.Counter(p+"mshr_rejects", "events", "accesses this core's MSHR file refused").Add(c.CPU.MSHRRejects)
		reg.Gauge(p+"mshr_peak", "entries", "this core's maximum simultaneous MSHR occupancy").Set(float64(c.MSHR.Peak))
		if r.PselValues != nil {
			reg.Gauge(p+"psel_value", "counter", "this thread's final partitioned selector value").Set(float64(r.PselValues[i]))
		}
	}

	// Hybrid selection machinery (SBAR/CBS/DIP runs only).
	if r.Hybrid != nil {
		h := r.Hybrid
		reg.Counter("psel.increments", "updates", "PSEL movements toward LIN").Add(h.PselIncrements)
		reg.Counter("psel.decrements", "updates", "PSEL movements toward LRU").Add(h.PselDecrements)
		reg.Counter("hybrid.lin_victims", "victims", "victim decisions made by LIN").Add(h.LinVictims)
		reg.Counter("hybrid.lru_victims", "victims", "victim decisions made by the baseline policy").Add(h.LruVictims)
		reg.Counter("hybrid.epoch_reselects", "epochs", "leader re-draws that changed the map").Add(h.EpochReselects)
		reg.Counter("hybrid.leader_accesses", "accesses", "accesses observed by the contest machinery").Add(h.LeaderAccesses)
		reg.Counter("hybrid.tie_both_hit", "contests", "contests both policies hit").Add(h.TieBothHit)
		reg.Counter("hybrid.tie_both_miss", "contests", "contests both policies missed").Add(h.TieBothMiss)
	}

	// Learned eviction machinery (bandit/learned runs only).
	observeLearn(reg, r.Learn)

	// Parallel engine accounting (parallel runs only). All three are
	// schedule-independent, so they survive the bit-identity contract.
	if r.Parallel != nil {
		p := r.Parallel
		reg.Counter("sim.parallel.shared_ops", "operations", "shared-L2 operations committed in serial order").Add(p.SharedOps)
		reg.Counter("sim.parallel.fill_waits", "barriers", "fill barriers where a core waited for the wavefront").Add(p.FillWaits)
		reg.Counter("sim.parallel.tail_cycles", "cycles", "idle cycles attributed to parked cores at reduction").Add(p.TailCycles)
	}

	// Invariant auditor (audited runs only).
	if r.Audit != nil {
		reg.Counter("audit.checks", "passes", "completed auditor passes").Add(r.Audit.Checks)
		reg.Counter("audit.violations", "violations", "invariant breaches retained").Add(uint64(len(r.Audit.Violations)))
		reg.Counter("audit.dropped", "violations", "breaches beyond the retention cap").Add(uint64(r.Audit.Dropped))
	}

	return reg
}

// Header builds the JSONL run header identifying this result. bench and
// seed come from the caller; instruction and IPC totals are aggregates
// over the cores.
func (r MultiResult) Header(bench string, seed uint64) metrics.RunHeader {
	return metrics.RunHeader{
		Bench:        bench,
		Policy:       r.Policy,
		Seed:         seed,
		Instructions: r.Instructions(),
		Cycles:       r.Cycles,
		IPC:          r.IPC(),
	}
}
