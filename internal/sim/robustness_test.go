package sim

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mlpcache/internal/faultinject"
	"mlpcache/internal/simerr"
	"mlpcache/internal/trace"
	"mlpcache/internal/workload"
)

// TestAuditedSweepAllPolicies is the PR's acceptance criterion for the
// invariant auditor: every replacement configuration, run on two
// benchmark models with every checker enabled, must finish with zero
// violations.
func TestAuditedSweepAllPolicies(t *testing.T) {
	for _, bench := range []string{"mcf", "parser"} {
		spec, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("benchmark %q missing", bench)
		}
		for _, kind := range AllPolicies {
			kind := kind
			t.Run(bench+"/"+string(kind), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultConfig()
				cfg.MaxInstructions = 60_000
				cfg.Policy = PolicySpec{Kind: kind, Seed: 7}
				if kind == PolicySBAR {
					cfg.Policy.RandDynamic = true
					cfg.EpochInstructions = 20_000
				}
				cfg.Audit = true
				cfg.AuditEvery = 2048
				res, err := Run(cfg, spec.Build(11))
				if err != nil {
					t.Fatalf("audited run failed: %v", err)
				}
				if res.Audit == nil {
					t.Fatal("audited run returned no report")
				}
				if res.Audit.Checks == 0 {
					t.Fatal("auditor never ran a pass")
				}
				if !res.Audit.Ok() {
					t.Fatalf("%d violations; first: %s",
						len(res.Audit.Violations), res.Audit.Violations[0])
				}
			})
		}
	}
}

// Regression test: DIP's BIP contestant demotes nearly every fill to the
// LRU position, which used to walk lastUse down to zero and clamp there,
// giving two lines the same recency rank — the first real bug the
// l2-recency checker caught. A long demote-heavy run must stay a strict
// total order.
func TestDemoteHeavyRunKeepsRecencyPermutation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstructions = 150_000
	cfg.Policy = PolicySpec{Kind: PolicyDIP}
	cfg.Audit = true
	cfg.AuditEvery = 512
	res, err := Run(cfg, microMix(3))
	if err != nil {
		t.Fatalf("demote-heavy audited run failed: %v", err)
	}
	if res.Audit == nil || !res.Audit.Ok() {
		t.Fatalf("recency invariant violated: %+v", res.Audit)
	}
}

// Fault injection: every plan must end in a clean Result or a wrapped
// typed error — never a panic, deadlock, or silent miscount.
func TestFaultInjectionGracefulDegradation(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.MaxInstructions = 80_000
		cfg.Policy = PolicySpec{Kind: PolicySBAR}
		cfg.Audit = true
		cfg.AuditEvery = 4096
		return cfg
	}
	plans := []faultinject.Plan{
		{Seed: 1, DRAMJitterMax: 200},
		{Seed: 2, MSHRCapacity: 1, MSHRThrottleAfter: 10_000},
		{Seed: 3, DRAMJitterMax: 97, MSHRCapacity: 2, MSHRThrottleAfter: 5_000},
	}
	spec, _ := workload.ByName("mcf")
	for i, plan := range plans {
		plan := plan
		t.Run(fmt.Sprintf("plan%d", i), func(t *testing.T) {
			t.Parallel()
			cfg := base()
			cfg.Faults = &plan
			res, err := Run(cfg, spec.Build(5))
			if err != nil {
				t.Fatalf("faulted run must degrade gracefully, got %v", err)
			}
			if res.Instructions == 0 {
				t.Fatal("faulted run retired nothing")
			}
			if !res.Audit.Ok() {
				t.Fatalf("fault injection broke an invariant: %s", res.Audit.Violations[0])
			}
		})
	}
}

// A throttled MSHR must slow the machine down, not just survive.
func TestMSHRThrottleReducesParallelism(t *testing.T) {
	run := func(plan *faultinject.Plan) Result {
		cfg := DefaultConfig()
		cfg.MaxInstructions = 60_000
		cfg.Faults = plan
		// A parallel stream benefits from MSHR capacity, so throttling
		// to one entry must serialize the misses.
		src := trace.NewStream(trace.StreamConfig{Base: 1 << 30, Blocks: 4096, Gap: 2})
		res, err := Run(cfg, src)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return res
	}
	free := run(nil)
	throttled := run(&faultinject.Plan{MSHRCapacity: 1})
	if throttled.Cycles <= free.Cycles {
		t.Fatalf("throttled run (%d cycles) not slower than free run (%d cycles)",
			throttled.Cycles, free.Cycles)
	}
}

// Deterministic jitter: same plan, same result.
func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() Result {
		cfg := DefaultConfig()
		cfg.MaxInstructions = 40_000
		cfg.Faults = &faultinject.Plan{Seed: 9, DRAMJitterMax: 150}
		spec, _ := workload.ByName("ammp")
		res, err := Run(cfg, spec.Build(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.Mem.DemandMisses != b.Mem.DemandMisses {
		t.Fatalf("same fault plan diverged: %d/%d/%d vs %d/%d/%d",
			a.Cycles, a.Instructions, a.Mem.DemandMisses,
			b.Cycles, b.Instructions, b.Mem.DemandMisses)
	}
}

// Corrupt and truncated trace streams must surface as wrapped
// ErrCorruptTrace from Run — never a panic or a silent short run.
func TestCorruptTraceSurfacesTypedError(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	src := workloadStream(4096)
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	check := func(t *testing.T, data []byte) {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			// Header-level corruption is a legitimate clean rejection.
			if !errors.Is(err, simerr.ErrCorruptTrace) {
				t.Fatalf("reader error not typed: %v", err)
			}
			return
		}
		cfg := DefaultConfig()
		cfg.MaxInstructions = 100_000
		_, err = Run(cfg, r)
		if err != nil && !errors.Is(err, simerr.ErrCorruptTrace) {
			t.Fatalf("corrupt trace produced a foreign error: %v", err)
		}
		// err == nil is acceptable: the corruption may decode as valid
		// records. The property under test is "typed error or clean
		// result, never a panic".
	}
	t.Run("bitflips", func(t *testing.T) {
		for seed := uint64(0); seed < 20; seed++ {
			check(t, faultinject.FlipBits(clean, seed, 8, 5))
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, keep := range []int{5, 6, 7, len(clean) / 2, len(clean) - 1} {
			check(t, faultinject.Truncate(clean, keep))
		}
	})
}

// workloadStream yields a bounded instruction stream for encoding.
func workloadStream(n int) trace.Source {
	spec, _ := workload.ByName("mcf")
	return trace.NewLimit(spec.Build(2), n)
}

// The MSHR-leak path: a memory system that double-frees must surface
// ErrMSHRLeak through Run, not panic. We can't reach that from config,
// so exercise the boundary directly: a Source whose Err reports after
// drain behaves like a corrupt reader.
type errSource struct {
	n   int
	err error
}

func (s *errSource) Next() (trace.Instr, bool) {
	if s.n == 0 {
		return trace.Instr{}, false
	}
	s.n--
	return trace.Instr{Kind: trace.Load, Addr: uint64(s.n) * 64}, true
}

func (s *errSource) Err() error { return s.err }

func TestSourceErrPropagates(t *testing.T) {
	cfg := smallConfig(10_000)
	src := &errSource{n: 500, err: simerr.New(simerr.ErrCorruptTrace, "trace: synthetic decode failure")}
	res, err := Run(cfg, src)
	if !errors.Is(err, simerr.ErrCorruptTrace) {
		t.Fatalf("source error not propagated: %v", err)
	}
	if res.Instructions == 0 {
		t.Fatal("partial result discarded; want stats up to the failure")
	}
}

// The recover boundary: a panicking hook inside the machine must come
// back as a wrapped ErrInternal, not unwind into the caller.
func TestPanicConvertsToErrInternal(t *testing.T) {
	cfg := smallConfig(10_000)
	cfg.MissHook = func(addr uint64, costQ uint8) {
		panic("hook exploded")
	}
	_, err := Run(cfg, microMix(2))
	if !errors.Is(err, simerr.ErrInternal) {
		t.Fatalf("panic not converted: %v", err)
	}
}

// Validation must reject bad configs with ErrBadConfig before anything
// is built.
func TestConfigValidationRejects(t *testing.T) {
	cases := map[string]func(*Config){
		"zero-assoc-l2":   func(c *Config) { c.L2.Assoc = 0 },
		"zero-mshr":       func(c *Config) { c.MSHR.Entries = 0 },
		"bad-policy":      func(c *Config) { c.Policy.Kind = "plru" },
		"bad-leader-geom": func(c *Config) { c.Policy = PolicySpec{Kind: PolicySBAR, LeaderSets: 999} },
		"neg-lambda":      func(c *Config) { c.Policy.Lambda = -1 },
		"bad-psel":        func(c *Config) { c.Policy.PselBits = 40 },
		"bad-faults":      func(c *Config) { c.Faults = &faultinject.Plan{MSHRCapacity: -2} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.MaxInstructions = 1000
			mutate(&cfg)
			_, err := Run(cfg, microMix(1))
			if !errors.Is(err, simerr.ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}
