package sim

import (
	"container/heap"

	"mlpcache/internal/cache"
	"mlpcache/internal/core"
	"mlpcache/internal/dram"
	"mlpcache/internal/faultinject"
	"mlpcache/internal/metrics"
	"mlpcache/internal/mshr"
	"mlpcache/internal/prefetch"
	"mlpcache/internal/stats"
)

// clockTracer stamps outgoing events with the current cycle before
// forwarding them. The replacement policies emit victim and PSEL events
// without a notion of time; the memory system keeps now current so the
// exported stream is fully ordered.
type clockTracer struct {
	dst metrics.Tracer
	now uint64
}

func (t *clockTracer) Emit(ev metrics.Event) {
	if ev.Cycle == 0 {
		ev.Cycle = t.now
	}
	t.dst.Emit(ev)
}

// MemStats aggregates the memory-side counters the experiments consume.
type MemStats struct {
	// DemandMisses counts primary L2 demand misses (serviced by DRAM).
	DemandMisses uint64
	// MergedMisses counts L2 misses that merged into an in-flight MSHR
	// entry for the same block.
	MergedMisses uint64
	// CompulsoryMisses counts first-ever references among DemandMisses.
	CompulsoryMisses uint64
	// L1WritebackDrops counts dirty L1 evictions whose block was absent
	// from L2 (the data is dropped; only a counter in this model).
	L1WritebackDrops uint64
	// CostQSum accumulates quantized costs over serviced misses, for
	// average-cost_q reporting.
	CostQSum uint64
	// Prefetch accounting: issued requests, those dropped for lack of
	// an MSHR entry, fills later hit by demand (useful), fills evicted
	// unused, and in-flight prefetches a demand access merged into
	// (late — the access still waits, but less).
	PrefetchIssued  uint64
	PrefetchDropped uint64
	PrefetchUseful  uint64
	PrefetchUnused  uint64
	PrefetchLate    uint64
}

// DeltaStats is the Table 1 measurement: the distribution of the absolute
// difference in mlp-cost between successive misses to the same block.
type DeltaStats struct {
	Lt60      uint64
	Ge60Lt120 uint64
	Ge120     uint64
	sum       float64
}

// Samples returns the number of deltas observed.
func (d DeltaStats) Samples() uint64 { return d.Lt60 + d.Ge60Lt120 + d.Ge120 }

// Mean returns the average delta in cycles.
func (d DeltaStats) Mean() float64 {
	if n := d.Samples(); n > 0 {
		return d.sum / float64(n)
	}
	return 0
}

// PercentLt60 etc. return each class's share in percent.
func (d DeltaStats) PercentLt60() float64      { return d.pct(d.Lt60) }
func (d DeltaStats) PercentGe60Lt120() float64 { return d.pct(d.Ge60Lt120) }
func (d DeltaStats) PercentGe120() float64     { return d.pct(d.Ge120) }

func (d DeltaStats) pct(c uint64) float64 {
	if n := d.Samples(); n > 0 {
		return 100 * float64(c) / float64(n)
	}
	return 0
}

func (d *DeltaStats) add(delta float64) {
	switch {
	case delta < 60:
		d.Lt60++
	case delta < 120:
		d.Ge60Lt120++
	default:
		d.Ge120++
	}
	d.sum += delta
}

// fill is a pending DRAM→L2 fill.
type fill struct {
	done     uint64
	addr     uint64
	write    bool // a store touched the block while the miss was in flight
	prefetch bool // still a pure prefetch (no demand access merged)
}

type fillHeap []*fill

func (h fillHeap) Len() int           { return len(h) }
func (h fillHeap) Less(i, j int) bool { return h[i].done < h[j].done }
func (h fillHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *fillHeap) Push(x any)        { *h = append(*h, x.(*fill)) }
func (h *fillHeap) Pop() (out any)    { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
func (h fillHeap) Peek() *fill        { return h[0] }

// memSystem is the two-level hierarchy the core issues into. It
// implements cpu.MemSystem.
type memSystem struct {
	cfg    Config
	l1     *cache.Cache
	l2     *cache.Cache
	mshr   *mshr.MSHR
	dram   *dram.DRAM
	hybrid core.Hybrid

	fills    fillHeap
	inflight map[uint64]*fill // block → pending fill

	seen     map[uint64]struct{} // blocks ever demand-missed (compulsory)
	lastCost map[uint64]float64  // block → previous mlp-cost (Table 1)

	costHist *stats.Histogram // Figure 2: mlp-cost, 60-cycle bins
	delta    DeltaStats
	mstats   MemStats

	pf         *prefetch.Prefetcher
	prefetched map[uint64]struct{} // blocks resident via an unused prefetch

	// inj, when non-nil, perturbs DRAM latencies (fault injection). A
	// nil injector is inert, so the hot path needs no flag check.
	inj *faultinject.Injector

	// tr, when non-nil, receives the miss-lifecycle event stream and is
	// shared (cycle-stamped) with the replacement policies.
	tr *clockTracer

	// capture, when non-nil, receives the L2 demand-access stream for
	// offline oracle replay (Config.Capture).
	capture AccessObserver

	// Interval accumulators for the Figure 11 time series.
	intMisses   uint64
	intCostQSum uint64
}

func newMemSystem(cfg Config, l2 *cache.Cache, hybrid core.Hybrid, inj *faultinject.Injector) *memSystem {
	m := &memSystem{
		cfg:      cfg,
		inj:      inj,
		l1:       cache.New(cfg.L1, cache.NewLRU()),
		l2:       l2,
		mshr:     mshr.New(cfg.MSHR),
		dram:     dram.New(cfg.DRAM),
		hybrid:   hybrid,
		inflight: make(map[uint64]*fill),
		seen:     make(map[uint64]struct{}),
		lastCost: make(map[uint64]float64),
		costHist: stats.NewHistogram(60, 8),
		capture:  cfg.Capture,
	}
	if cfg.Prefetch != nil {
		m.pf = prefetch.New(*cfg.Prefetch)
		m.prefetched = make(map[uint64]struct{})
	}
	if cfg.Trace != nil {
		m.tr = &clockTracer{dst: cfg.Trace}
		attachTracer(l2, hybrid, m.tr)
	}
	return m
}

// attachTracer hands the cycle-stamping tracer to whichever replacement
// machinery can emit events: the hybrid engines (which propagate it to
// their cost-aware contestant) or a bare cost-aware policy on the L2.
func attachTracer(l2 *cache.Cache, hybrid core.Hybrid, tr metrics.Tracer) {
	switch h := hybrid.(type) {
	case *core.SBAR:
		h.SetTracer(tr)
	case *core.CBS:
		h.SetTracer(tr)
	default:
		if ca, ok := l2.Policy().(*core.CostAware); ok {
			ca.SetTracer(tr)
		}
	}
}

// dramRead issues a DRAM read and applies any injected latency jitter to
// its completion time. Jitter is safe to add after the fact: the fill
// heap orders completions by time, so a perturbed fill simply completes
// later.
func (m *memSystem) dramRead(block uint64, at uint64) uint64 {
	return m.dram.Read(block, at) + m.inj.Jitter()
}

// trainPrefetcher observes a demand L2 access and issues any predicted
// prefetches: non-demand MSHR allocations that Algorithm 1 does not
// charge.
func (m *memSystem) trainPrefetcher(block uint64, now uint64) {
	if m.pf == nil {
		return
	}
	for _, target := range m.pf.Observe(block) {
		addr := target * m.l2.Config().BlockBytes
		if m.l2.Contains(addr) || m.mshr.Pending(target) {
			continue
		}
		if m.mshr.Full() {
			m.mstats.PrefetchDropped++
			continue
		}
		m.mshr.Allocate(target, false, now)
		m.mstats.PrefetchIssued++
		done := m.dramRead(target, now)
		f := &fill{done: done, addr: addr, prefetch: true}
		m.inflight[target] = f
		heap.Push(&m.fills, f)
	}
}

// Access implements cpu.MemSystem.
func (m *memSystem) Access(addr uint64, write bool, now uint64) (uint64, bool) {
	if m.tr != nil {
		m.tr.now = now
	}
	if m.l1.Probe(addr, write) {
		return now + m.cfg.L1Lat, true
	}
	l2Hit := m.l2.Probe(addr, false)
	block := m.l2.BlockOf(addr)
	if l2Hit {
		if m.capture != nil {
			// A hit's cost-if-miss estimate is the resident line's
			// stored quantized cost — what the block's own miss accrued.
			costQ, _ := m.l2.CostOf(addr)
			m.capture.OnL2Access(block, AccessHit, costQ)
		}
		if m.prefetched != nil {
			if _, ok := m.prefetched[block]; ok {
				delete(m.prefetched, block)
				m.mstats.PrefetchUseful++
			}
		}
		if m.hybrid != nil {
			m.hybrid.OnAccess(addr, write, true, false)
		}
		m.fillL1(addr, write)
		m.trainPrefetcher(block, now)
		return now + m.cfg.L1Lat + m.cfg.L2Lat, true
	}
	// L2 demand miss.
	if f, ok := m.inflight[block]; ok {
		// Merge into the in-flight miss (or claim an in-flight
		// prefetch); completes with it.
		m.mshr.Allocate(block, true, now)
		f.write = f.write || write
		if m.tr != nil {
			m.tr.Emit(metrics.Event{Type: metrics.EventMissMerge, Addr: addr, Block: block})
		}
		if f.prefetch {
			// A late prefetch: the demand access still waits, but
			// the cost clock only starts now (demand upgrade).
			if m.capture != nil {
				m.capture.OnL2Access(block, AccessMiss, 0)
			}
			f.prefetch = false
			m.mstats.PrefetchLate++
			m.mstats.DemandMisses++
			if _, ok := m.seen[block]; !ok {
				m.seen[block] = struct{}{}
				m.mstats.CompulsoryMisses++
			}
			if m.hybrid != nil {
				m.hybrid.OnAccess(addr, write, false, true)
			}
		} else {
			if m.capture != nil {
				m.capture.OnL2Access(block, AccessMerge, 0)
			}
			m.mstats.MergedMisses++
			if m.hybrid != nil {
				m.hybrid.OnAccess(addr, write, false, false)
			}
		}
		m.trainPrefetcher(block, now)
		return f.done, true
	}
	if m.mshr.Full() {
		return 0, false // structural stall; the core retries
	}
	m.mshr.Allocate(block, true, now)
	if m.capture != nil {
		m.capture.OnL2Access(block, AccessMiss, 0)
	}
	if m.tr != nil {
		m.tr.Emit(metrics.Event{Type: metrics.EventMissIssue, Addr: addr, Block: block})
	}
	if m.hybrid != nil {
		m.hybrid.OnAccess(addr, write, false, true)
	}
	m.mstats.DemandMisses++
	if _, ok := m.seen[block]; !ok {
		m.seen[block] = struct{}{}
		m.mstats.CompulsoryMisses++
	}
	done := m.dramRead(block, now+m.cfg.L1Lat+m.cfg.L2Lat)
	f := &fill{done: done, addr: addr, write: write}
	m.inflight[block] = f
	heap.Push(&m.fills, f)
	m.trainPrefetcher(block, now)
	return done, true
}

// Tick advances the memory side by one cycle: the MSHR cost calculation
// logic runs (Algorithm 1), then any DRAM fills due this cycle install
// into the hierarchy. A non-nil error reports an MSHR protocol violation
// (simerr.ErrMSHRLeak) and aborts the run.
func (m *memSystem) Tick(now uint64) error {
	if m.tr != nil {
		m.tr.now = now
	}
	m.mshr.Tick(now)
	for len(m.fills) > 0 && m.fills.Peek().done <= now {
		f := heap.Pop(&m.fills).(*fill)
		if err := m.service(f, now); err != nil {
			return err
		}
	}
	return nil
}

func (m *memSystem) service(f *fill, now uint64) error {
	block := m.l2.BlockOf(f.addr)
	delete(m.inflight, block)
	cost, err := m.mshr.Free(block, now)
	if err != nil {
		return err
	}

	if f.prefetch {
		// A pure prefetch fill: no demand miss to account, no cost.
		ev, evicted := m.l2.Fill(f.addr, 0, false)
		if evicted {
			if _, ok := m.prefetched[ev.Block]; ok {
				delete(m.prefetched, ev.Block)
				m.mstats.PrefetchUnused++
			}
			if ev.Dirty && m.cfg.ModelWritebacks {
				m.dram.Write(ev.Block, now)
			}
		}
		m.prefetched[block] = struct{}{}
		return nil
	}

	m.costHist.Add(cost)
	if m.cfg.TrackDeltas {
		if prev, ok := m.lastCost[block]; ok {
			d := cost - prev
			if d < 0 {
				d = -d
			}
			m.delta.add(d)
		}
		m.lastCost[block] = cost
	}

	costQ := core.Quantize(cost)
	if m.tr != nil {
		m.tr.Emit(metrics.Event{
			Type: metrics.EventMissFill, Addr: f.addr, Block: block,
			Cost: cost, CostQ: int(costQ),
		})
	}
	if m.cfg.MissHook != nil {
		m.cfg.MissHook(f.addr, costQ)
	}
	if m.capture != nil {
		m.capture.OnMissCost(block, costQ)
	}
	m.mstats.CostQSum += uint64(costQ)
	m.intMisses++
	m.intCostQSum += uint64(costQ)

	ev, evicted := m.l2.Fill(f.addr, costQ, false)
	if evicted {
		if m.prefetched != nil {
			if _, ok := m.prefetched[ev.Block]; ok {
				delete(m.prefetched, ev.Block)
				m.mstats.PrefetchUnused++
			}
		}
		if ev.Dirty && m.cfg.ModelWritebacks {
			m.dram.Write(ev.Block, now)
		}
	}
	if m.hybrid != nil {
		m.hybrid.OnFill(f.addr, costQ)
	}
	m.fillL1(f.addr, f.write)
	return nil
}

// fillL1 installs the block into the L1, sinking any dirty victim into
// the L2's dirty bit.
func (m *memSystem) fillL1(addr uint64, write bool) {
	ev, evicted := m.l1.Fill(addr, 0, write)
	if evicted && ev.Dirty {
		if !m.l2.MarkDirty(ev.Block * m.l1.Config().BlockBytes) {
			m.mstats.L1WritebackDrops++
		}
	}
}

// takeInterval returns and resets the Figure 11 interval accumulators.
func (m *memSystem) takeInterval() (misses, costQSum uint64) {
	misses, costQSum = m.intMisses, m.intCostQSum
	m.intMisses, m.intCostQSum = 0, 0
	return misses, costQSum
}

// drainInflight reports whether misses are still outstanding (used to let
// the run loop wind down cleanly).
func (m *memSystem) drainInflight() bool { return len(m.fills) > 0 }

// nextFill returns the cycle of the earliest pending DRAM fill, or
// ^uint64(0) when none is outstanding.
func (m *memSystem) nextFill() uint64 {
	if len(m.fills) == 0 {
		return ^uint64(0)
	}
	return m.fills.Peek().done
}
