package sim

import (
	"mlpcache/internal/blockmap"
	"mlpcache/internal/cache"
	"mlpcache/internal/core"
	"mlpcache/internal/dram"
	"mlpcache/internal/faultinject"
	"mlpcache/internal/metrics"
	"mlpcache/internal/mshr"
	"mlpcache/internal/prefetch"
	"mlpcache/internal/stats"
)

// clockTracer stamps outgoing events with the current cycle before
// forwarding them. The replacement policies emit victim and PSEL events
// without a notion of time; the memory system keeps now current so the
// exported stream is fully ordered.
type clockTracer struct {
	dst metrics.Tracer
	now uint64
}

func (t *clockTracer) Emit(ev metrics.Event) {
	if ev.Cycle == 0 {
		ev.Cycle = t.now
	}
	t.dst.Emit(ev)
}

// MemStats aggregates the memory-side counters the experiments consume.
type MemStats struct {
	// DemandMisses counts primary L2 demand misses (serviced by DRAM).
	DemandMisses uint64
	// MergedMisses counts L2 misses that merged into an in-flight MSHR
	// entry for the same block.
	MergedMisses uint64
	// CompulsoryMisses counts first-ever references among DemandMisses.
	CompulsoryMisses uint64
	// L1WritebackDrops counts dirty L1 evictions whose block was absent
	// from L2 (the data is dropped; only a counter in this model).
	L1WritebackDrops uint64
	// CostQSum accumulates quantized costs over serviced misses, for
	// average-cost_q reporting.
	CostQSum uint64
	// Prefetch accounting: issued requests, those dropped for lack of
	// an MSHR entry, fills later hit by demand (useful), fills evicted
	// unused, and in-flight prefetches a demand access merged into
	// (late — the access still waits, but less).
	PrefetchIssued  uint64
	PrefetchDropped uint64
	PrefetchUseful  uint64
	PrefetchUnused  uint64
	PrefetchLate    uint64
	// TrackedBlocks is the final population of the flat per-block
	// footprint store (distinct blocks ever demand-missed or
	// prefetched). The store grows with the application's footprint and
	// is never pruned, so this doubles as the memory system's own memory
	// footprint gauge; exported as sim.mem.tracked_blocks.
	TrackedBlocks uint64
}

// DeltaStats is the Table 1 measurement: the distribution of the absolute
// difference in mlp-cost between successive misses to the same block.
type DeltaStats struct {
	Lt60      uint64
	Ge60Lt120 uint64
	Ge120     uint64
	sum       float64
}

// Samples returns the number of deltas observed.
func (d DeltaStats) Samples() uint64 { return d.Lt60 + d.Ge60Lt120 + d.Ge120 }

// Mean returns the average delta in cycles.
func (d DeltaStats) Mean() float64 {
	if n := d.Samples(); n > 0 {
		return d.sum / float64(n)
	}
	return 0
}

// PercentLt60 etc. return each class's share in percent.
func (d DeltaStats) PercentLt60() float64      { return d.pct(d.Lt60) }
func (d DeltaStats) PercentGe60Lt120() float64 { return d.pct(d.Ge60Lt120) }
func (d DeltaStats) PercentGe120() float64     { return d.pct(d.Ge120) }

func (d DeltaStats) pct(c uint64) float64 {
	if n := d.Samples(); n > 0 {
		return 100 * float64(c) / float64(n)
	}
	return 0
}

func (d *DeltaStats) add(delta float64) {
	switch {
	case delta < 60:
		d.Lt60++
	case delta < 120:
		d.Ge60Lt120++
	default:
		d.Ge120++
	}
	d.sum += delta
}

// fill is a pending DRAM→L2 fill.
type fill struct {
	done     uint64
	addr     uint64
	write    bool // a store touched the block while the miss was in flight
	prefetch bool // still a pure prefetch (no demand access merged)
}

// blockInfo is the per-block record in the memory system's flat
// footprint store: everything the miss path remembers about a block
// across its whole lifetime.
type blockInfo struct {
	seen       bool    // block has demand-missed before (compulsory classification)
	hasCost    bool    // lastCost holds a valid previous cost
	prefetched bool    // resident via a prefetch no demand access has hit yet
	lastCost   float64 // previous mlp-cost (Table 1 successive-miss deltas)
}

// fillHeap is a concrete min-heap of pending fills ordered by completion
// cycle. It inlines container/heap's exact sift traversals (so heap order
// — and therefore fill service order among equal completion cycles — is
// bit-identical to the interface-based version it replaces) without the
// any-boxing and indirect calls of the container/heap protocol. Pop nils
// the vacated tail slot so the backing array never retains a serviced
// fill.
type fillHeap struct{ h []*fill }

func (h *fillHeap) Len() int    { return len(h.h) }
func (h *fillHeap) Peek() *fill { return h.h[0] }

func (h *fillHeap) Push(f *fill) {
	h.h = append(h.h, f)
	j := len(h.h) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if h.h[j].done >= h.h[i].done {
			break
		}
		h.h[i], h.h[j] = h.h[j], h.h[i]
		j = i
	}
}

func (h *fillHeap) Pop() *fill {
	n := len(h.h) - 1
	h.h[0], h.h[n] = h.h[n], h.h[0]
	i := 0
	for {
		j := 2*i + 1 // left child
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h.h[j2].done < h.h[j].done {
			j = j2
		}
		if h.h[j].done >= h.h[i].done {
			break
		}
		h.h[i], h.h[j] = h.h[j], h.h[i]
		i = j
	}
	out := h.h[n]
	h.h[n] = nil // release the slot; the fill returns to the freelist
	h.h = h.h[:n]
	return out
}

// memSystem is the two-level hierarchy the core issues into. It
// implements cpu.MemSystem.
type memSystem struct {
	cfg    Config
	l1     *cache.Cache
	l2     *cache.Cache
	mshr   *mshr.MSHR
	dram   *dram.DRAM
	hybrid core.Hybrid

	fills    fillHeap
	inflight *blockmap.Table[*fill] // block → pending fill; bounded by the MSHR
	fillFree []*fill                // serviced fills recycled into new misses

	// tracked is the flat per-block footprint store, replacing the three
	// block-keyed Go maps the miss path used to touch (seen, lastCost,
	// prefetched). One probe finds all of a block's history. Its
	// population grows with the run's distinct-block footprint and is
	// never pruned — by design, since compulsory-miss classification
	// needs full history; the final size is exported as the
	// sim.mem.tracked_blocks gauge so runs can watch the footprint.
	tracked *blockmap.Table[blockInfo]

	costHist *stats.Histogram // Figure 2: mlp-cost, 60-cycle bins
	delta    DeltaStats
	mstats   MemStats

	pf *prefetch.Prefetcher

	// inj, when non-nil, perturbs DRAM latencies (fault injection). A
	// nil injector is inert, so the hot path needs no flag check.
	inj *faultinject.Injector

	// tr, when non-nil, receives the miss-lifecycle event stream and is
	// shared (cycle-stamped) with the replacement policies.
	tr *clockTracer

	// capture, when non-nil, receives the L2 demand-access stream for
	// offline oracle replay (Config.Capture).
	capture AccessObserver

	// Interval accumulators for the Figure 11 time series.
	intMisses   uint64
	intCostQSum uint64
}

func newMemSystem(cfg Config, l2 *cache.Cache, hybrid core.Hybrid, inj *faultinject.Injector) *memSystem {
	m := &memSystem{
		cfg:      cfg,
		inj:      inj,
		l1:       cfg.Arena.getCache(cfg.L1, cache.NewLRU()),
		l2:       l2,
		mshr:     cfg.Arena.getMSHR(cfg.MSHR),
		dram:     dram.New(cfg.DRAM),
		hybrid:   hybrid,
		inflight: cfg.Arena.getSingleTable(cfg.MSHR.Entries),
		tracked:  cfg.Arena.getTrackedTable(256),
		costHist: stats.NewHistogram(60, 8),
		capture:  cfg.Capture,
	}
	m.fills.h, m.fillFree = cfg.Arena.getSingleFills()
	if cfg.Prefetch != nil {
		m.pf = prefetch.New(*cfg.Prefetch)
	}
	if cfg.Trace != nil {
		m.tr = &clockTracer{dst: cfg.Trace}
		attachTracer(l2, hybrid, m.tr)
	}
	return m
}

// attachTracer hands the cycle-stamping tracer to whichever replacement
// machinery can emit events: the hybrid engines (which propagate it to
// their cost-aware contestant) or a bare cost-aware policy on the L2.
func attachTracer(l2 *cache.Cache, hybrid core.Hybrid, tr metrics.Tracer) {
	switch h := hybrid.(type) {
	case *core.SBAR:
		h.SetTracer(tr)
	case *core.CBS:
		h.SetTracer(tr)
	default:
		if ca, ok := l2.Policy().(*core.CostAware); ok {
			ca.SetTracer(tr)
		}
	}
}

// newFill builds a pending fill, recycling a serviced one from the
// freelist when available so steady-state miss traffic allocates
// nothing: the live fill population is bounded by the MSHR, and every
// serviced fill returns to the list.
func (m *memSystem) newFill(done, addr uint64, write, prefetch bool) *fill {
	if n := len(m.fillFree); n > 0 {
		f := m.fillFree[n-1]
		m.fillFree[n-1] = nil
		m.fillFree = m.fillFree[:n-1]
		*f = fill{done: done, addr: addr, write: write, prefetch: prefetch}
		return f
	}
	return &fill{done: done, addr: addr, write: write, prefetch: prefetch}
}

// dramRead issues a DRAM read and applies any injected latency jitter to
// its completion time. Jitter is safe to add after the fact: the fill
// heap orders completions by time, so a perturbed fill simply completes
// later.
func (m *memSystem) dramRead(block uint64, at uint64) uint64 {
	return m.dram.Read(block, at) + m.inj.Jitter()
}

// trainPrefetcher observes a demand L2 access and issues any predicted
// prefetches: non-demand MSHR allocations that Algorithm 1 does not
// charge.
func (m *memSystem) trainPrefetcher(block uint64, now uint64) {
	if m.pf == nil {
		return
	}
	for _, target := range m.pf.Observe(block) {
		addr := target * m.l2.Config().BlockBytes
		if m.l2.Contains(addr) || m.mshr.Pending(target) {
			continue
		}
		if m.mshr.Full() {
			m.mstats.PrefetchDropped++
			continue
		}
		m.mshr.Allocate(target, false, now)
		m.mstats.PrefetchIssued++
		done := m.dramRead(target, now)
		f := m.newFill(done, addr, false, true)
		m.inflight.Put(target, f)
		m.fills.Push(f)
	}
}

// Access implements cpu.MemSystem.
func (m *memSystem) Access(addr uint64, write bool, now uint64) (uint64, bool) {
	if m.tr != nil {
		m.tr.now = now
	}
	if m.l1.Probe(addr, write) {
		return now + m.cfg.L1Lat, true
	}
	l2Hit := m.l2.Probe(addr, false)
	block := m.l2.BlockOf(addr)
	if l2Hit {
		if m.capture != nil {
			// A hit's cost-if-miss estimate is the resident line's
			// stored quantized cost — what the block's own miss accrued.
			costQ, _ := m.l2.CostOf(addr)
			m.capture.OnL2Access(block, AccessHit, costQ)
		}
		if m.pf != nil {
			if info, ok := m.tracked.Get(block); ok && info.prefetched {
				info.prefetched = false
				m.tracked.Put(block, info)
				m.mstats.PrefetchUseful++
			}
		}
		if m.hybrid != nil {
			m.hybrid.OnAccess(addr, write, true, false)
		}
		m.fillL1(addr, write)
		m.trainPrefetcher(block, now)
		return now + m.cfg.L1Lat + m.cfg.L2Lat, true
	}
	// L2 demand miss.
	if f, ok := m.inflight.Get(block); ok {
		// Merge into the in-flight miss (or claim an in-flight
		// prefetch); completes with it.
		m.mshr.Allocate(block, true, now)
		f.write = f.write || write
		if m.tr != nil {
			m.tr.Emit(metrics.Event{Type: metrics.EventMissMerge, Addr: addr, Block: block})
		}
		if f.prefetch {
			// A late prefetch: the demand access still waits, but
			// the cost clock only starts now (demand upgrade).
			if m.capture != nil {
				m.capture.OnL2Access(block, AccessMiss, 0)
			}
			f.prefetch = false
			m.mstats.PrefetchLate++
			m.mstats.DemandMisses++
			m.noteSeen(block)
			if m.hybrid != nil {
				m.hybrid.OnAccess(addr, write, false, true)
			}
		} else {
			if m.capture != nil {
				m.capture.OnL2Access(block, AccessMerge, 0)
			}
			m.mstats.MergedMisses++
			if m.hybrid != nil {
				m.hybrid.OnAccess(addr, write, false, false)
			}
		}
		m.trainPrefetcher(block, now)
		return f.done, true
	}
	if m.mshr.Full() {
		return 0, false // structural stall; the core retries
	}
	m.mshr.Allocate(block, true, now)
	if m.capture != nil {
		m.capture.OnL2Access(block, AccessMiss, 0)
	}
	if m.tr != nil {
		m.tr.Emit(metrics.Event{Type: metrics.EventMissIssue, Addr: addr, Block: block})
	}
	if m.hybrid != nil {
		m.hybrid.OnAccess(addr, write, false, true)
	}
	m.mstats.DemandMisses++
	m.noteSeen(block)
	done := m.dramRead(block, now+m.cfg.L1Lat+m.cfg.L2Lat)
	f := m.newFill(done, addr, write, false)
	m.inflight.Put(block, f)
	m.fills.Push(f)
	m.trainPrefetcher(block, now)
	return done, true
}

// noteSeen records a demand miss on the block, counting it as
// compulsory on the block's first-ever demand miss.
func (m *memSystem) noteSeen(block uint64) {
	info, _ := m.tracked.Get(block)
	if !info.seen {
		info.seen = true
		m.tracked.Put(block, info)
		m.mstats.CompulsoryMisses++
	}
}

// Tick advances the memory side by one cycle: the MSHR cost calculation
// logic runs (Algorithm 1), then any DRAM fills due this cycle install
// into the hierarchy. A non-nil error reports an MSHR protocol violation
// (simerr.ErrMSHRLeak) and aborts the run.
func (m *memSystem) Tick(now uint64) error {
	if m.tr != nil {
		m.tr.now = now
	}
	m.mshr.Tick(now)
	for m.fills.Len() > 0 && m.fills.Peek().done <= now {
		f := m.fills.Pop()
		if err := m.service(f, now); err != nil {
			return err
		}
		m.fillFree = append(m.fillFree, f)
	}
	return nil
}

func (m *memSystem) service(f *fill, now uint64) error {
	block := m.l2.BlockOf(f.addr)
	m.inflight.Delete(block)
	cost, err := m.mshr.Free(block, now)
	if err != nil {
		return err
	}

	if f.prefetch {
		// A pure prefetch fill: no demand miss to account, no cost.
		ev, evicted := m.l2.Fill(f.addr, 0, false)
		if evicted {
			m.notePrefetchEvicted(ev.Block)
			if ev.Dirty && m.cfg.ModelWritebacks {
				m.dram.Write(ev.Block, now)
			}
		}
		info, _ := m.tracked.Get(block)
		info.prefetched = true
		m.tracked.Put(block, info)
		return nil
	}

	m.costHist.Add(cost)
	if m.cfg.TrackDeltas {
		info, _ := m.tracked.Get(block)
		if info.hasCost {
			d := cost - info.lastCost
			if d < 0 {
				d = -d
			}
			m.delta.add(d)
		}
		info.hasCost = true
		info.lastCost = cost
		m.tracked.Put(block, info)
	}

	costQ := core.Quantize(cost)
	if m.tr != nil {
		m.tr.Emit(metrics.Event{
			Type: metrics.EventMissFill, Addr: f.addr, Block: block,
			Cost: cost, CostQ: int(costQ),
		})
	}
	if m.cfg.MissHook != nil {
		m.cfg.MissHook(f.addr, costQ)
	}
	if m.capture != nil {
		m.capture.OnMissCost(block, costQ)
	}
	m.mstats.CostQSum += uint64(costQ)
	m.intMisses++
	m.intCostQSum += uint64(costQ)

	ev, evicted := m.l2.Fill(f.addr, costQ, false)
	if evicted {
		if m.pf != nil {
			m.notePrefetchEvicted(ev.Block)
		}
		if ev.Dirty && m.cfg.ModelWritebacks {
			m.dram.Write(ev.Block, now)
		}
	}
	if m.hybrid != nil {
		m.hybrid.OnFill(f.addr, costQ)
	}
	m.fillL1(f.addr, f.write)
	return nil
}

// fillL1 installs the block into the L1, sinking any dirty victim into
// the L2's dirty bit.
func (m *memSystem) fillL1(addr uint64, write bool) {
	ev, evicted := m.l1.Fill(addr, 0, write)
	if evicted && ev.Dirty {
		if !m.l2.MarkDirty(ev.Block * m.l1.Config().BlockBytes) {
			m.mstats.L1WritebackDrops++
		}
	}
}

// snapState carries the run totals at the previous snapshot boundary so
// each snapshot.* gauge covers exactly one Config.SnapshotInterval. It
// deliberately does not share the Figure 11 interval accumulators
// (takeInterval): the two periods are independently configurable.
type snapState struct {
	retired uint64
	cycle   uint64
	misses  uint64
	costQ   uint64
}

// emitSnapshot streams one snapshot.* gauge group through the tracer:
// interval IPC, MPKI and mean quantized cost since the previous
// boundary, the instantaneous MSHR occupancy, and the cumulative
// Figure 2 cost-histogram bins (one event per bin, Value = bin index).
// Only called with a tracer attached, at snapshot-interval rate — the
// histogram copy it takes is nowhere near the per-miss hot path.
func (m *memSystem) emitSnapshot(now, retired uint64, s *snapState) {
	dInstr := retired - s.retired
	dCyc := now - s.cycle
	dMiss := m.mstats.DemandMisses - s.misses
	dCost := m.mstats.CostQSum - s.costQ
	var ipc, mpki, avg float64
	if dCyc > 0 {
		ipc = float64(dInstr) / float64(dCyc)
	}
	if dInstr > 0 {
		mpki = 1000 * float64(dMiss) / float64(dInstr)
	}
	if dMiss > 0 {
		avg = float64(dCost) / float64(dMiss)
	}
	m.tr.Emit(metrics.Event{Type: metrics.EventSnapshotIPC, Gauge: ipc})
	m.tr.Emit(metrics.Event{Type: metrics.EventSnapshotMPKI, Gauge: mpki})
	m.tr.Emit(metrics.Event{Type: metrics.EventSnapshotAvgCostQ, Gauge: avg})
	m.tr.Emit(metrics.Event{Type: metrics.EventSnapshotMSHR, Gauge: float64(m.mshr.Len())})
	for i, c := range m.costHist.Bins() {
		m.tr.Emit(metrics.Event{Type: metrics.EventSnapshotCostHist, Value: i, Gauge: float64(c)})
	}
	*s = snapState{retired: retired, cycle: now, misses: m.mstats.DemandMisses, costQ: m.mstats.CostQSum}
}

// takeInterval returns and resets the Figure 11 interval accumulators.
func (m *memSystem) takeInterval() (misses, costQSum uint64) {
	misses, costQSum = m.intMisses, m.intCostQSum
	m.intMisses, m.intCostQSum = 0, 0
	return misses, costQSum
}

// notePrefetchEvicted marks an evicted block's unused-prefetch status
// resolved: a prefetched block leaving the cache untouched counts as an
// unused prefetch.
func (m *memSystem) notePrefetchEvicted(block uint64) {
	if info, ok := m.tracked.Get(block); ok && info.prefetched {
		info.prefetched = false
		m.tracked.Put(block, info)
		m.mstats.PrefetchUnused++
	}
}

// statsSnapshot returns the lifetime counters with the footprint gauge
// stamped from the block store's current population.
func (m *memSystem) statsSnapshot() MemStats {
	s := m.mstats
	s.TrackedBlocks = uint64(m.tracked.Len())
	return s
}

// drainInflight reports whether misses are still outstanding (used to let
// the run loop wind down cleanly).
func (m *memSystem) drainInflight() bool { return m.fills.Len() > 0 }

// nextFill returns the cycle of the earliest pending DRAM fill, or
// ^uint64(0) when none is outstanding.
func (m *memSystem) nextFill() uint64 {
	if m.fills.Len() == 0 {
		return ^uint64(0)
	}
	return m.fills.Peek().done
}
