// Package sim wires the substrates — out-of-order core, two-level cache
// hierarchy, MSHR cost-calculation logic, and DRAM — into the full
// baseline machine of the paper's Table 2, runs instruction streams
// through it, and gathers the statistics every experiment in the paper is
// built from: IPC, miss counts, compulsory-miss fractions, the mlp-cost
// histogram of Figure 2, the per-block cost deltas of Table 1, and the
// Figure 11 time series.
package sim

import (
	"fmt"

	"mlpcache/internal/cache"
	"mlpcache/internal/core"
	"mlpcache/internal/cpu"
	"mlpcache/internal/dram"
	"mlpcache/internal/faultinject"
	"mlpcache/internal/learn"
	"mlpcache/internal/metrics"
	"mlpcache/internal/mshr"
	"mlpcache/internal/prefetch"
	"mlpcache/internal/simerr"
)

// PolicyKind names an L2 replacement configuration.
type PolicyKind string

// Supported replacement configurations.
const (
	PolicyLRU       PolicyKind = "lru"
	PolicyFIFO      PolicyKind = "fifo"
	PolicyRandom    PolicyKind = "random"
	PolicyNMRU      PolicyKind = "nmru"
	PolicyLIN       PolicyKind = "lin"
	PolicyBCL       PolicyKind = "bcl"
	PolicyDCL       PolicyKind = "dcl"
	PolicyDIP       PolicyKind = "dip"
	PolicySBAR      PolicyKind = "sbar"
	PolicyCBSLocal  PolicyKind = "cbs-local"
	PolicyCBSGlobal PolicyKind = "cbs-global"
	PolicyBandit    PolicyKind = "bandit"
	PolicyLearned   PolicyKind = "learned"
)

// AllPolicies lists every supported replacement configuration; the
// robustness sweep and CLIs iterate it.
var AllPolicies = []PolicyKind{
	PolicyLRU, PolicyFIFO, PolicyRandom, PolicyNMRU, PolicyLIN,
	PolicyBCL, PolicyDCL, PolicyDIP, PolicySBAR, PolicyCBSLocal, PolicyCBSGlobal,
	PolicyBandit, PolicyLearned,
}

// Known reports whether the kind names a supported policy ("" selects
// the LRU default).
func (k PolicyKind) Known() bool {
	if k == "" {
		return true
	}
	for _, p := range AllPolicies {
		if k == p {
			return true
		}
	}
	return false
}

// PolicySpec selects and parameterizes the L2 replacement policy.
type PolicySpec struct {
	Kind PolicyKind
	// Lambda is LIN's λ (default 4); used by LIN, SBAR and CBS.
	Lambda int
	// LeaderSets is SBAR's K (default 32).
	LeaderSets int
	// PselBits sizes the selector counter (default 6; CBS-global 7).
	PselBits int
	// RandDynamic selects SBAR's rand-dynamic leader selection instead
	// of simple-static.
	RandDynamic bool
	// Seed seeds stochastic policies (random replacement, rand-dynamic,
	// the bandit's arm-sampling stream, the untrained default model's
	// signature salt).
	Seed uint64
	// ModelPath names a trained learn.Model file for the learned
	// policy; empty selects an untrained default model (which behaves
	// exactly like LRU). Only valid with Kind == PolicyLearned.
	ModelPath string
	// Model injects an in-memory model for the learned policy, taking
	// precedence over ModelPath. Only valid with Kind == PolicyLearned.
	Model *learn.Model
}

// String renders a short label ("lin4", "sbar/32").
func (p PolicySpec) String() string {
	switch p.Kind {
	case PolicyLIN:
		return fmt.Sprintf("lin%d", p.lambda())
	case PolicySBAR:
		sel := "static"
		if p.RandDynamic {
			sel = "rand"
		}
		return fmt.Sprintf("sbar/%d/%s", p.leaderSets(), sel)
	default:
		return string(p.Kind)
	}
}

func (p PolicySpec) lambda() int {
	if p.Lambda == 0 {
		return 4
	}
	return p.Lambda
}

func (p PolicySpec) leaderSets() int {
	if p.LeaderSets == 0 {
		return 32
	}
	return p.LeaderSets
}

// AccessKind classifies one captured L2 demand access (see
// Config.Capture). The three kinds mirror the memory system's own
// accounting: a Hit found the block resident, a Miss is a primary demand
// miss or the demand upgrade of a late prefetch (exactly the accesses
// counted in MemStats.DemandMisses), and a Merge joined an in-flight
// demand miss (MemStats.MergedMisses).
type AccessKind uint8

// The captured access kinds.
const (
	AccessHit AccessKind = iota
	AccessMiss
	AccessMerge
)

// String names the kind.
func (k AccessKind) String() string {
	switch k {
	case AccessHit:
		return "hit"
	case AccessMiss:
		return "miss"
	case AccessMerge:
		return "merge"
	}
	return "unknown"
}

// AccessObserver receives the L2 demand-access stream as the simulation
// runs — the capture sink behind internal/oracle's offline replays.
// OnL2Access is called once per demand access in program order; hits
// carry the resident line's stored quantized cost (the cost the block's
// miss accrued), misses and merges carry 0 and are completed by a later
// OnMissCost call when the miss's fill computes the accrued cost
// (Algorithm 1). Pure-prefetch traffic is never reported.
type AccessObserver interface {
	OnL2Access(block uint64, kind AccessKind, costQ uint8)
	OnMissCost(block uint64, costQ uint8)
}

// Config is the full machine and run configuration.
type Config struct {
	CPU  cpu.Config
	L1   cache.Config
	L2   cache.Config
	MSHR mshr.Config
	DRAM dram.Config

	// L1Lat and L2Lat are hit latencies in cycles (2 and 15).
	L1Lat uint64
	L2Lat uint64

	Policy PolicySpec

	// MaxInstructions bounds the run (0: until the source drains).
	MaxInstructions uint64
	// MaxCycles is a deadlock guard (0: derived from MaxInstructions).
	MaxCycles uint64
	// SampleInterval, when non-zero, records the Figure 11 time series
	// every that many retired instructions.
	SampleInterval uint64
	// SnapshotInterval, when non-zero and Trace is set, emits the
	// snapshot.* gauge family through the tracer every that many
	// retired instructions: interval IPC, MPKI and mean cost_q, the
	// MSHR occupancy at the boundary, and the cumulative Figure 2
	// cost-histogram bins — time-resolved curves in the event stream
	// instead of end-of-run aggregates (docs/OBSERVABILITY.md). Its
	// accounting is independent of SampleInterval; with a nil Trace it
	// is a no-op.
	SnapshotInterval uint64
	// EpochInstructions is the rand-dynamic leader reselection period
	// (the paper uses 25M; scaled runs use less). 0 disables epochs.
	EpochInstructions uint64
	// ModelWritebacks sends dirty L2 evictions to DRAM, consuming bank
	// and bus bandwidth.
	ModelWritebacks bool
	// TrackDeltas enables the Table 1 per-block delta statistics.
	TrackDeltas bool
	// MissHook, when set, observes every serviced L2 miss (instrumentation
	// for workload analysis and tests).
	MissHook func(addr uint64, costQ uint8)
	// Capture, when non-nil, receives every L2 demand access (hit,
	// primary miss, merge) with its quantized mlp-cost — the stream
	// internal/oracle replays offline under Belady-style policies. A nil
	// observer costs one predictable branch per L2 access.
	Capture AccessObserver
	// Trace, when non-nil, receives the event stream documented in
	// docs/OBSERVABILITY.md: miss issue/merge/fill with accrued
	// mlp-cost, victim selections with the LIN operands, PSEL updates,
	// and SBAR leader contests. Events are stamped with the current
	// cycle before delivery. A nil tracer costs one predictable branch
	// per potential emit site.
	Trace metrics.Tracer
	// DisableFastForward forces strict cycle-by-cycle simulation. The
	// fast-forward optimization is exact (tests assert equivalence), so
	// this exists only for those tests and for debugging.
	DisableFastForward bool
	// Prefetch enables an L2 stride prefetcher (nil: off, the paper's
	// baseline). Prefetch requests occupy MSHR entries as non-demand
	// misses: Algorithm 1 charges them no cost unless a demand access
	// merges into them, at which point the cost clock starts — the
	// paper's definition of a demand miss, kept intact.
	Prefetch *prefetch.Config
	// Audit enables the invariant auditor: a full checker pass over the
	// cache recency stacks, MSHR bookkeeping, quantized costs and
	// selector counters every AuditEvery cycles. Violations make Run
	// return a wrapped simerr.ErrInvariant alongside the Result.
	Audit bool
	// AuditEvery is the audit period in cycles (audit.DefaultEvery when
	// zero).
	AuditEvery uint64
	// Faults, when non-nil and active, injects the described faults
	// (deterministic, seeded) into the run. See faultinject.Plan.
	Faults *faultinject.Plan
	// Parallel selects the multi-core execution engine: ParallelAuto
	// (the default) runs the wavefront-parallel engine when the run is
	// eligible and more than one OS thread is available, ParallelOn
	// forces it (erroring when the run is ineligible), ParallelOff
	// forces the serial interleave. Both engines produce bit-identical
	// MultiResults (docs/MULTICORE.md); single-core runs ignore it.
	Parallel ParallelMode
	// Arena, when non-nil, recycles the run's bulk allocations — cache
	// line arrays, blockmap tables, MSHR files, fill heaps and
	// freelists — across runs. An Arena is not goroutine-safe: give
	// each worker its own (docs/PERFORMANCE.md "Simulation arenas").
	Arena *Arena
}

// ParallelMode selects how RunMulti schedules its cores.
type ParallelMode int

// Parallel engine selection for Config.Parallel.
const (
	// ParallelAuto picks the parallel engine when the run is eligible
	// (2+ cores, exact MSHR mode, no auditing or epochs) and
	// GOMAXPROCS > 1; otherwise it runs the serial interleave.
	ParallelAuto ParallelMode = iota
	// ParallelOff forces the serial interleave.
	ParallelOff
	// ParallelOn forces the parallel engine; ineligible runs fail with
	// simerr.ErrBadConfig instead of silently degrading.
	ParallelOn
)

func (m ParallelMode) String() string {
	switch m {
	case ParallelOff:
		return "off"
	case ParallelOn:
		return "on"
	default:
		return "auto"
	}
}

// Validate checks the whole machine configuration, wrapping every
// failure in simerr.ErrBadConfig. Run calls it before constructing
// anything, so a bad configuration surfaces as one typed error instead
// of a panic mid-build.
func (c Config) Validate() error {
	if err := c.CPU.Validate(); err != nil {
		return fmt.Errorf("sim: cpu: %w", err)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("sim: l1: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("sim: l2: %w", err)
	}
	if err := c.MSHR.Validate(); err != nil {
		return fmt.Errorf("sim: mshr: %w", err)
	}
	if err := c.DRAM.Validate(); err != nil {
		return fmt.Errorf("sim: dram: %w", err)
	}
	if c.Prefetch != nil {
		if err := c.Prefetch.Validate(); err != nil {
			return fmt.Errorf("sim: prefetch: %w", err)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("sim: faults: %w", err)
		}
	}
	if c.Parallel < ParallelAuto || c.Parallel > ParallelOn {
		return simerr.New(simerr.ErrBadConfig, "sim: unknown parallel mode %d", int(c.Parallel))
	}
	spec := c.Policy
	if !spec.Kind.Known() {
		return simerr.New(simerr.ErrBadConfig, "sim: unknown policy %q", spec.Kind)
	}
	if spec.Lambda < 0 {
		return simerr.New(simerr.ErrBadConfig, "sim: policy lambda must be non-negative, got %d", spec.Lambda)
	}
	if spec.PselBits < 0 || spec.PselBits > 30 {
		return simerr.New(simerr.ErrBadConfig, "sim: policy PselBits must be in [0,30], got %d", spec.PselBits)
	}
	if spec.LeaderSets < 0 {
		return simerr.New(simerr.ErrBadConfig, "sim: policy LeaderSets must be non-negative, got %d", spec.LeaderSets)
	}
	if (spec.ModelPath != "" || spec.Model != nil) && spec.Kind != PolicyLearned {
		return simerr.New(simerr.ErrBadConfig, "sim: a learned model only drives -policy learned, not %q", spec.Kind)
	}
	switch spec.Kind {
	case PolicySBAR, PolicyDIP:
		sets, err := c.L2.SetCount()
		if err != nil {
			return fmt.Errorf("sim: l2: %w", err)
		}
		if err := core.ValidateLeaderGeometry(sets, spec.leaderSets()); err != nil {
			return fmt.Errorf("sim: policy %s: %w", spec.Kind, err)
		}
	}
	return nil
}

// DefaultConfig returns the paper's baseline machine (Table 2) with LRU
// replacement and no run bound.
func DefaultConfig() Config {
	return Config{
		CPU: cpu.DefaultConfig(),
		L1: cache.Config{
			SizeBytes:  16 * 1024,
			Assoc:      4,
			BlockBytes: 64,
		},
		L2: cache.Config{
			SizeBytes:  1024 * 1024,
			Assoc:      16,
			BlockBytes: 64,
		},
		MSHR:            mshr.Config{Entries: 32},
		DRAM:            dram.Default(),
		L1Lat:           2,
		L2Lat:           15,
		Policy:          PolicySpec{Kind: PolicyLRU},
		ModelWritebacks: true,
		TrackDeltas:     true,
	}
}

// buildL2 constructs the L2 cache with the configured replacement policy,
// returning the hybrid engine when one is in use. An unknown policy kind
// yields a wrapped simerr.ErrBadConfig. threads is the number of cores
// sharing the cache: SBAR partitions its selector counter per thread
// (Section 6's set dueling, one PSEL per core); 1 is the single-core
// machine and every other policy ignores it.
func buildL2(cfg Config, threads int) (*cache.Cache, core.Hybrid, error) {
	l2 := cfg.Arena.getCache(cfg.L2, nil)
	spec := cfg.Policy
	switch spec.Kind {
	case PolicyLRU, "":
		l2.SetPolicy(cache.NewLRU())
	case PolicyFIFO:
		l2.SetPolicy(cache.NewFIFO())
	case PolicyRandom:
		l2.SetPolicy(cache.NewRandom(spec.Seed + 1))
	case PolicyNMRU:
		l2.SetPolicy(cache.NewNMRU(spec.Seed + 1))
	case PolicyLIN:
		l2.SetPolicy(core.NewLIN(spec.lambda()))
	case PolicyBCL:
		l2.SetPolicy(core.NewBCL(4, l2.Config().Assoc/2))
	case PolicyDCL:
		l2.SetPolicy(core.NewDCL(4, l2.Config().Assoc/2))
	case PolicyDIP:
		// Inside the full simulator the duel is driven by real
		// quantized costs rather than DIP's miss counting — an
		// "MLP-weighted DIP": expensive misses push the duel harder.
		return l2, core.NewDIP(l2, spec.leaderSets(), spec.Seed+3), nil
	case PolicySBAR:
		sets := l2.Config().Sets
		var sel core.LeaderSelector
		if spec.RandDynamic {
			sel = core.NewRandDynamic(sets, spec.leaderSets(), spec.Seed+2)
		} else {
			sel = core.NewSimpleStatic(sets, spec.leaderSets())
		}
		return l2, core.NewSBAR(l2, core.SBARConfig{
			LeaderSets: spec.leaderSets(),
			PselBits:   spec.PselBits,
			Lambda:     spec.lambda(),
			Selector:   sel,
			Threads:    threads,
		}), nil
	case PolicyCBSLocal:
		return l2, core.NewCBS(l2, core.CBSConfig{
			Scope: core.CBSLocal, PselBits: spec.PselBits, Lambda: spec.lambda(),
		}), nil
	case PolicyCBSGlobal:
		return l2, core.NewCBS(l2, core.CBSConfig{
			Scope: core.CBSGlobal, PselBits: spec.PselBits, Lambda: spec.lambda(),
		}), nil
	case PolicyBandit:
		geo := l2.Config()
		l2.SetPolicy(learn.NewBandit(geo.Sets, geo.Assoc, spec.Seed+5))
	case PolicyLearned:
		geo := l2.Config()
		model := spec.Model
		if model == nil && spec.ModelPath != "" {
			m, err := learn.ReadModelFile(spec.ModelPath)
			if err != nil {
				return nil, nil, err
			}
			model = m
		}
		if model == nil {
			// Untrained default: every signature neutral, which the
			// predictor resolves to exact LRU behavior.
			model = learn.NewModel(geo.Sets, geo.Assoc, learn.DefaultTableBits, spec.Seed+7)
		}
		p, err := learn.NewPredictor(model, geo.Sets, geo.Assoc)
		if err != nil {
			return nil, nil, err
		}
		l2.SetPolicy(p)
	default:
		return nil, nil, simerr.New(simerr.ErrBadConfig, "sim: unknown policy %q", spec.Kind)
	}
	return l2, nil, nil
}
