package sim

import (
	"fmt"

	"mlpcache/internal/audit"
	"mlpcache/internal/core"
)

// buildAuditor assembles the invariant checkers for one audited run:
// structural checks on the L2 (recency-stack permutation, quantized-cost
// bounds), the MSHR's own bookkeeping audit, agreement between the MSHR
// and the memory system's in-flight fill table, and — when a hybrid
// policy is racing — the selector and sampling-directory checks of the
// engine in use (SBAR/DIP share *core.SBAR; CBS has its own).
func buildAuditor(cfg Config, mem *memSystem, hybrid core.Hybrid) *audit.Auditor {
	a := audit.New(cfg.AuditEvery,
		audit.RecencyPermutation("l2-recency", mem.l2),
		audit.CostQBound("l2-costq", mem.l2, 7),
		audit.RecencyPermutation("l1-recency", mem.l1),
		audit.Strings("mshr", mem.mshr.AuditInvariants),
		audit.Func("mshr-inflight", func(_ uint64, report func(string)) {
			// Every pending fill must hold an MSHR entry and vice
			// versa: allocations and fills are created and retired
			// together, so the two tables are a bijection.
			mem.inflight.Range(func(block uint64, _ *fill) bool {
				if !mem.mshr.Pending(block) {
					report(fmt.Sprintf("in-flight fill for block %#x has no MSHR entry", block))
				}
				return true
			})
			if got, want := mem.mshr.Len(), mem.inflight.Len(); got != want {
				report(fmt.Sprintf("MSHR holds %d entries but %d fills are in flight", got, want))
			}
		}),
	)
	switch h := hybrid.(type) {
	case *core.SBAR:
		a.Register(
			audit.Strings("sbar", h.AuditInvariants),
			audit.PselBound("sbar-psel", func() (int, int) {
				p := h.Psel()
				return p.Value(), p.Max()
			}),
		)
	case *core.CBS:
		a.Register(audit.Strings("cbs", h.AuditInvariants))
	}
	return a
}
