package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"mlpcache/internal/simerr"
)

// TestRunContextPreCancelled checks an already-dead context stops the
// run before any cycle executes.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, smallConfig(100_000), microMix(7))
	if !errors.Is(err, simerr.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	if res.Instructions != 0 {
		t.Fatalf("cancelled run still retired %d instructions", res.Instructions)
	}
}

// TestRunContextDeadlineMidRun checks the cooperative in-loop poll: a
// deadline far shorter than the run's wall time stops it with the
// typed sentinel, and the deadline cause survives the wrap.
func TestRunContextDeadlineMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, smallConfig(50_000_000), microMix(7))
	if !errors.Is(err, simerr.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.DeadlineExceeded", err)
	}
	// 50M instructions takes tens of seconds; cancellation must bite
	// within the poll granularity, not at run completion.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, cooperative check is not firing", elapsed)
	}
}

// TestRunMatchesRunContextBackground checks the default path is
// unchanged: Run is RunContext under a background context, bit-identical
// results included.
func TestRunMatchesRunContextBackground(t *testing.T) {
	a, err := Run(smallConfig(40_000), microMix(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), smallConfig(40_000), microMix(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IPC != b.IPC || a.Mem.DemandMisses != b.Mem.DemandMisses {
		t.Fatal("RunContext(Background) diverged from Run")
	}
}
