package rescache

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	ctx := context.Background()
	get := func(k string, v int) int {
		got, err := c.Do(ctx, k, func() (int, error) { return v, nil })
		if err != nil {
			t.Fatalf("Do(%s): %v", k, err)
		}
		return got
	}
	get("a", 1)
	get("b", 2)
	get("a", 1) // touch a: LRU order is now b, a
	get("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction at capacity 2")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if hits, misses, ev := c.Stats(); ev != 1 || misses != 3 || hits < 1 {
		t.Fatalf("stats hits=%d misses=%d evictions=%d, want 1 eviction, 3 misses", hits, misses, ev)
	}
	keys := c.Keys()
	sort.Strings(keys)
	if fmt.Sprint(keys) != "[a c]" {
		t.Fatalf("keys = %v, want [a c]", keys)
	}
}

func TestUnboundedByDefault(t *testing.T) {
	c := New[int](0)
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, err := c.Do(ctx, k, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 100 {
		t.Fatalf("unbounded cache holds %d entries, want 100", c.Len())
	}
	if _, _, ev := c.Stats(); ev != 0 {
		t.Fatalf("unbounded cache evicted %d entries", ev)
	}
}

// TestSingleflight checks that concurrent callers of one key share a
// single compute, even while unrelated keys churn the LRU stack.
func TestSingleflight(t *testing.T) {
	c := New[int](1)
	ctx := context.Background()
	var computes atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do(ctx, "hot", func() (int, error) {
				computes.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("hot key computed %d times, want 1", n)
	}
	// Evict the hot key, then recompute: dedup must survive eviction.
	if _, err := c.Do(ctx, "cold", func() (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("hot"); ok {
		t.Fatal("hot key survived capacity-1 eviction")
	}
	if _, err := c.Do(ctx, "hot", func() (int, error) { computes.Add(1); return 42, nil }); err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 2 {
		t.Fatalf("recompute after eviction ran %d times total, want 2", n)
	}
}

// TestOwnerErrorDoesNotPoison checks that a failed compute caches
// nothing and that waiters retry under their own context.
func TestOwnerErrorDoesNotPoison(t *testing.T) {
	c := New[int](0)
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
	}()
	<-started
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "k", func() (int, error) { return 7, nil })
		done <- err
	}()
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("waiter retry failed: %v", err)
	}
	if v, ok := c.Get("k"); !ok || v != 7 {
		t.Fatalf("retry result = %d, %v; want 7 cached", v, ok)
	}
}

// TestWaiterContextCancel checks a waiter abandons a slow compute when
// its own context dies, without disturbing the owner.
func TestWaiterContextCancel(t *testing.T) {
	c := New[int](0)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), "slow", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(ctx, "slow", func() (int, error) { return 0, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	close(release)
	if v, ok := c.Get("slow"); !ok && v != 0 {
		// The owner may not have published yet; Do again to synchronize.
		if got, err := c.Do(context.Background(), "slow", func() (int, error) { return 99, nil }); err != nil || got != 1 {
			t.Fatalf("owner result lost: got %d, %v", got, err)
		}
	}
}

// TestDoIfUpgrade exercises the predicate path: a stale entry is
// replaced in place and keeps its key.
func TestDoIfUpgrade(t *testing.T) {
	c := New[int](0)
	ctx := context.Background()
	c.Do(ctx, "k", func() (int, error) { return 1, nil })
	v, err := c.DoIf(ctx, "k", func(v int) bool { return v >= 10 },
		func(prev int, cached bool) (int, error) {
			if !cached || prev != 1 {
				t.Fatalf("upgrade saw prev=%d cached=%v", prev, cached)
			}
			return prev + 10, nil
		})
	if err != nil || v != 11 {
		t.Fatalf("DoIf = %d, %v; want 11", v, err)
	}
	if got, _ := c.Get("k"); got != 11 {
		t.Fatalf("upgraded entry = %d, want 11", got)
	}
	if c.Len() != 1 {
		t.Fatalf("upgrade duplicated the entry: len %d", c.Len())
	}
}
