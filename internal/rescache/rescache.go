// Package rescache is a bounded, singleflight-deduplicating result
// cache shared by the experiment runner's memo table and the sweep
// service's result store. It applies the paper's own subject matter to
// its infrastructure: entries are ranked by a recency stack and evicted
// LRU, the same baseline the replacement study of Section 3 measures
// every policy against, so the memo table cannot grow without bound
// under heavy sweep traffic.
//
// Concurrency contract: lookups of the same key coalesce into one
// compute (singleflight). If the owner's compute fails, nothing is
// cached and exactly the waiters still interested retry — each under
// its own context — so one job's deadline cannot poison another's
// result. Eviction never breaks dedup: an in-flight compute is tracked
// separately from the entry table, so a key evicted mid-wait simply
// recomputes once.
package rescache

import (
	"context"
	"sync"
)

// Cache is a string-keyed bounded LRU with singleflight dedup. The zero
// value is not ready; use New. A Capacity of 0 means unbounded.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*entry[V]
	// head/tail of the recency stack: head is MRU, tail is LRU.
	head, tail *entry[V]
	inflight   map[string]chan struct{}

	hits, misses, evictions uint64
}

type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
}

// New returns an empty cache holding at most capacity entries (0:
// unbounded).
func New[V any](capacity int) *Cache[V] {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache[V]{
		capacity: capacity,
		entries:  make(map[string]*entry[V]),
		inflight: make(map[string]chan struct{}),
	}
}

// Stats reports lifetime hit/miss/eviction counts.
func (c *Cache[V]) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns the cached keys in unspecified order.
func (c *Cache[V]) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	return keys
}

// Get peeks at a key without computing, bumping its recency on a hit.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.touch(e)
		return e.val, true
	}
	var zero V
	return zero, false
}

// Do returns the cached value for key, computing it via fn at most once
// across concurrent callers. See DoIf for the full contract.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func() (V, error)) (V, error) {
	return c.DoIf(ctx, key, nil, func(V, bool) (V, error) { return fn() })
}

// DoIf is Do with an acceptance predicate: a cached value only counts
// as a hit when ok (nil: always) accepts it; otherwise the caller that
// wins the singleflight recomputes via fn, which receives the stale
// value (if any) and replaces it. The runner uses this to upgrade a
// result-only entry with a captured access log without re-keying.
//
// While waiting on another caller's compute, ctx aborts the wait (the
// compute itself keeps running for whoever still wants it). If the
// owner's fn fails, its error is returned to the owner alone; waiters
// re-claim and retry under their own contexts.
func (c *Cache[V]) DoIf(ctx context.Context, key string, ok func(V) bool,
	fn func(prev V, cached bool) (V, error)) (V, error) {

	var zero V
	for {
		c.mu.Lock()
		if e, found := c.entries[key]; found && (ok == nil || ok(e.val)) {
			c.touch(e)
			c.hits++
			v := e.val
			c.mu.Unlock()
			return v, nil
		}
		if ch, busy := c.inflight[key]; busy {
			c.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return zero, ctx.Err()
			}
			continue
		}
		var prev V
		var cached bool
		if e, found := c.entries[key]; found {
			prev, cached = e.val, true
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.misses++
		c.mu.Unlock()

		v, err := fn(prev, cached)
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.put(key, v)
		}
		c.mu.Unlock()
		close(ch)
		if err != nil {
			return zero, err
		}
		return v, nil
	}
}

// put inserts or replaces key at the MRU position and evicts the LRU
// tail while over capacity. Callers hold c.mu.
func (c *Cache[V]) put(key string, v V) {
	if e, ok := c.entries[key]; ok {
		e.val = v
		c.touch(e)
		return
	}
	e := &entry[V]{key: key, val: v}
	c.entries[key] = e
	c.pushFront(e)
	for c.capacity > 0 && len(c.entries) > c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions++
	}
}

// touch moves an entry to the MRU position. Callers hold c.mu.
func (c *Cache[V]) touch(e *entry[V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
