// Package learn layers learned eviction onto the reproduction: a
// multi-armed bandit that treats per-set way selection as an expert
// problem with delayed, mlp-cost-decayed feedback, and an expected-
// hit-count predictor trained offline from oracle capture logs against
// Belady decisions. Both consume the paper's quantized mlp-cost signal
// (Figure 3b): the bandit's penalty for a bad eviction scales with the
// cost_q of the miss it caused, so expensive misses — the Section 2
// cost objective — punish harder than parallel ones. Both policies are
// allocation-free on the victim path (SetView.Ranks scratch, the same
// discipline as core.CostAware) and register as first-class replacement
// configurations in internal/sim.
package learn

// Stats aggregates one run's learned-eviction accounting. Bandit runs
// populate the arm counters and final weights; predictor runs populate
// the fill-signature counters. Victims counts every victim decision the
// policy made.
type Stats struct {
	// Victims counts victim decisions (full sets only; invalid-way
	// fills never reach the policy).
	Victims uint64
	// GhostHits counts sampled main-directory misses that hit at least
	// one arm's shadow directory — a would-have-hit: some eviction
	// schedule would have kept the block, so the arms that lost it are
	// penalized by the miss's quantized mlp-cost.
	GhostHits uint64
	// Confirmed counts sampled main-directory misses that missed every
	// arm's shadow — no schedule would have kept the block, so the
	// eviction is confirmed harmless and every arm collects the small
	// confirmation reward.
	Confirmed uint64
	// ArmRecency/ArmProtect/ArmFrequency/ArmCost/ArmScatter count
	// victim decisions per bandit arm.
	ArmRecency   uint64
	ArmProtect   uint64
	ArmFrequency uint64
	ArmCost      uint64
	ArmScatter   uint64
	// WeightRecency/WeightProtect/WeightFrequency/WeightCost/
	// WeightScatter are the bandit's final per-arm running-mean outcome
	// estimates (reward positive, penalty negative).
	WeightRecency   float64
	WeightProtect   float64
	WeightFrequency float64
	WeightCost      float64
	WeightScatter   float64
	// TrainedFills counts fills whose block signature hit a trained
	// model entry; UntrainedFills counts fills that fell back to the
	// neutral prediction.
	TrainedFills   uint64
	UntrainedFills uint64
}

// splitmix64 is the block-signature mixer shared by the trainer and the
// online predictor — the model file stores the seed so the two always
// hash identically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
