package learn

import (
	"mlpcache/internal/simerr"
)

// Sample is one captured L2 demand access: the block address and the
// quantized mlp-cost its miss accrued (hits carry the resident line's
// stored cost). internal/oracle capture logs convert 1:1.
type Sample struct {
	Block uint64
	CostQ uint8
}

// TrainConfig parameterizes offline training.
type TrainConfig struct {
	// Sets and Assoc give the target cache geometry (the default
	// indexer's split: set = block mod Sets).
	Sets, Assoc int
	// TableBits sizes the signature table (DefaultTableBits when 0).
	TableBits int
	// Seed salts the signature hash; it is stored in the model so
	// online lookups hash identically. Training is deterministic: the
	// same samples and config produce a byte-identical model file.
	Seed uint64
}

// trainAcc accumulates one signature's closed generations.
type trainAcc struct {
	hits uint64
	gens uint64
}

// trainResident is one Belady-resident block during training replay.
type trainResident struct {
	block uint64
	next  int
	hits  uint64
}

// trainNever marks a block with no further use in the sample stream.
const trainNever = int(^uint(0) >> 1)

// Train replays the sample stream per set under Belady's optimal
// policy and tabulates, per block signature, the mean number of hits
// one residency generation earns: a generation opens when Belady fills
// the block, accrues its hits, and closes when Belady evicts it (or the
// stream ends). The table entry is the fixed-point mean (HitScale)
// over all of a signature's generations — the quantity the online
// Predictor spends down as hits arrive.
func Train(samples []Sample, cfg TrainConfig) (*Model, error) {
	if cfg.Sets < 1 || cfg.Assoc < 1 {
		return nil, simerr.New(simerr.ErrBadConfig, "learn: training geometry %d sets × %d ways is invalid", cfg.Sets, cfg.Assoc)
	}
	tableBits := cfg.TableBits
	if tableBits == 0 {
		tableBits = DefaultTableBits
	}
	if tableBits < 1 || tableBits > MaxTableBits {
		return nil, simerr.New(simerr.ErrBadConfig, "learn: tableBits must be in [1,%d], got %d", MaxTableBits, tableBits)
	}
	model := NewModel(cfg.Sets, cfg.Assoc, tableBits, cfg.Seed)

	// Split the stream per set, keeping stream order within each set.
	perSet := make([][]uint64, cfg.Sets)
	for _, s := range samples {
		set := s.Block % uint64(cfg.Sets)
		perSet[set] = append(perSet[set], s.Block)
	}

	acc := make(map[uint32]*trainAcc)
	closeGen := func(block uint64, hits uint64) {
		sig := model.signature(block)
		a := acc[sig]
		if a == nil {
			a = &trainAcc{}
			acc[sig] = a
		}
		a.hits += hits
		a.gens++
		model.Generations++
	}

	next := []int(nil)
	last := map[uint64]int{}
	res := []trainResident(nil)
	for set := 0; set < cfg.Sets; set++ {
		stream := perSet[set]
		if len(stream) == 0 {
			continue
		}
		// next[i] is the index of block stream[i]'s next use.
		if cap(next) < len(stream) {
			next = make([]int, len(stream))
		}
		next = next[:len(stream)]
		clear(last)
		for i := len(stream) - 1; i >= 0; i-- {
			if j, ok := last[stream[i]]; ok {
				next[i] = j
			} else {
				next[i] = trainNever
			}
			last[stream[i]] = i
		}
		res = res[:0]
		for i, block := range stream {
			found := false
			for r := range res {
				if res[r].block == block {
					res[r].hits++
					res[r].next = next[i]
					found = true
					break
				}
			}
			if found {
				continue
			}
			if len(res) < cfg.Assoc {
				res = append(res, trainResident{block: block, next: next[i]})
				continue
			}
			// Belady: evict the resident with the furthest next use
			// (first such on ties, deterministically).
			victim := 0
			for r := 1; r < len(res); r++ {
				if res[r].next > res[victim].next {
					victim = r
				}
			}
			closeGen(res[victim].block, res[victim].hits)
			res[victim] = trainResident{block: block, next: next[i]}
		}
		for r := range res {
			closeGen(res[r].block, res[r].hits)
		}
	}

	for sig, a := range acc {
		// Fixed-point rounded mean, capped below the Untrained mark.
		e := (a.hits*HitScale + a.gens/2) / a.gens
		if e >= Untrained {
			e = Untrained - 1
		}
		model.Table[sig] = uint8(e)
	}
	return model, nil
}
