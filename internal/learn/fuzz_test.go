package learn

import (
	"bytes"
	"errors"
	"testing"

	"mlpcache/internal/simerr"
)

// FuzzModelDecode feeds arbitrary bytes to the model codec. The decoder
// must never panic and never over-allocate: it either returns a model
// whose re-encoding is byte-identical to the input, or fails with a
// wrapped simerr.ErrCorruptTrace — the same contract as the trace and
// events decoders, so the CLIs report one line on stderr and exit 1.
func FuzzModelDecode(f *testing.F) {
	// Seed corpus: a trained-looking model, an untrained default, and
	// the codec's rejection paths (truncation, bad magic, flipped CRC,
	// absurd tableBits, zero geometry, trailing garbage).
	m := NewModel(64, 8, 8, 0xabcdef)
	m.Generations = 41
	for i := 0; i < len(m.Table); i += 3 {
		m.Table[i] = uint8(i % int(Untrained))
	}
	valid := m.Encode()
	f.Add(valid)
	f.Add(NewModel(1, 1, 1, 0).Encode())
	f.Add([]byte{})
	f.Add(valid[:modelHeaderLen])
	f.Add(append([]byte("XLPM\x01"), valid[5:]...))
	f.Add(func() []byte { b := bytes.Clone(valid); b[len(b)-2] ^= 0x80; return b }())
	f.Add(func() []byte { b := bytes.Clone(valid); b[5] = 63; return b }())
	f.Add(func() []byte { b := bytes.Clone(valid); b[6], b[7] = 0, 0; return b }())
	f.Add(append(bytes.Clone(valid), 0xee))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeModel(data)
		if err != nil {
			if !errors.Is(err, simerr.ErrCorruptTrace) {
				t.Fatalf("decode error not typed ErrCorruptTrace: %v", err)
			}
			return
		}
		if got := m.Encode(); !bytes.Equal(got, data) {
			t.Fatalf("decode→encode drifted: %d in, %d out", len(data), len(got))
		}
	})
}
