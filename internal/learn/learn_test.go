package learn

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"mlpcache/internal/cache"
	"mlpcache/internal/simerr"
)

// replay drives a standalone tag directory with a block stream under the
// given policy and returns the miss count — the untimed replay loop the
// oracle package uses, reduced to what the policy tests need.
func replay(blocks []uint64, sets, assoc int, p cache.Policy) uint64 {
	c := cache.New(cache.Config{Sets: sets, Assoc: assoc, BlockBytes: 1}, p)
	var misses uint64
	for _, b := range blocks {
		if c.Probe(b, false) {
			continue
		}
		misses++
		c.Fill(b, uint8(b%8), false)
	}
	return misses
}

// TestModelRoundTrip encodes a trained-looking model and decodes it
// back, through bytes and through the file helpers.
func TestModelRoundTrip(t *testing.T) {
	m := NewModel(64, 8, 10, 0xfeed)
	m.Generations = 123
	for i := 0; i < len(m.Table); i += 7 {
		m.Table[i] = uint8(i % int(Untrained))
	}
	data := m.Encode()
	got, err := DecodeModel(data)
	if err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if got.TableBits != m.TableBits || got.Sets != m.Sets || got.Assoc != m.Assoc ||
		got.Seed != m.Seed || got.Generations != m.Generations || !bytes.Equal(got.Table, m.Table) {
		t.Fatalf("round trip mismatch: got %+v", got)
	}
	if re := got.Encode(); !bytes.Equal(re, data) {
		t.Fatalf("re-encode is not byte-identical (%d vs %d bytes)", len(re), len(data))
	}

	path := filepath.Join(t.TempDir(), "m.model")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ReadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile.Encode(), data) {
		t.Fatal("file round trip is not byte-identical")
	}
}

// TestModelDecodeRejectsCorruption walks the codec's failure modes; each
// must surface a wrapped simerr.ErrCorruptTrace, never a panic.
func TestModelDecodeRejectsCorruption(t *testing.T) {
	valid := NewModel(16, 4, 6, 1).Encode()
	cases := map[string][]byte{
		"empty":     {},
		"truncated": valid[:len(valid)/2],
		"magic":     append([]byte("XLPM\x01"), valid[5:]...),
		"tableBits": func() []byte { b := bytes.Clone(valid); b[5] = MaxTableBits + 1; return b }(),
		"geometry":  func() []byte { b := bytes.Clone(valid); b[8], b[9], b[10], b[11] = 0, 0, 0, 0; return b }(),
		"crc":       func() []byte { b := bytes.Clone(valid); b[len(b)-1] ^= 0xff; return b }(),
		"trailing":  append(bytes.Clone(valid), 0),
	}
	for name, data := range cases {
		if _, err := DecodeModel(data); !errors.Is(err, simerr.ErrCorruptTrace) {
			t.Errorf("%s: want ErrCorruptTrace, got %v", name, err)
		}
	}
	if _, err := ReadModelFile(filepath.Join(t.TempDir(), "absent.model")); !errors.Is(err, simerr.ErrCorruptTrace) {
		t.Errorf("missing file: want ErrCorruptTrace, got %v", err)
	}
}

// TestTrainDeterministic is the acceptance criterion: the same capture
// and seed must produce a byte-identical model file.
func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := make([]Sample, 5000)
	for i := range samples {
		samples[i] = Sample{Block: uint64(rng.Intn(400)), CostQ: uint8(rng.Intn(8))}
	}
	cfg := TrainConfig{Sets: 8, Assoc: 4, TableBits: 12, Seed: 77}
	a, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("same samples + seed produced different model bytes")
	}
	if a.Generations == 0 || a.Trained() == 0 {
		t.Fatalf("training closed %d generations, trained %d signatures; want both > 0",
			a.Generations, a.Trained())
	}
	// A different seed salts the signature hash: same knowledge, other
	// table layout.
	other, err := Train(samples, TrainConfig{Sets: 8, Assoc: 4, TableBits: 12, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Encode(), other.Encode()) {
		t.Fatal("different seeds produced identical model bytes")
	}
}

// TestTrainMeanHits checks the tabulated value on a hand-built stream:
// one set, two ways, block 0 earns exactly three hits per generation.
func TestTrainMeanHits(t *testing.T) {
	var samples []Sample
	for g := 0; g < 4; g++ {
		a, b := uint64(100+2*g), uint64(101+2*g)
		samples = append(samples,
			Sample{Block: 0}, Sample{Block: 0}, Sample{Block: 0}, Sample{Block: 0},
			// Conflict blocks with nearby reuse: when b arrives, block
			// 0's next use (the following generation) is the furthest,
			// so Belady evicts it and closes the generation at 3 hits.
			Sample{Block: a}, Sample{Block: b}, Sample{Block: a}, Sample{Block: b},
		)
	}
	m, err := Train(samples, TrainConfig{Sets: 1, Assoc: 2, TableBits: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Lookup(0), uint8(3*HitScale); got != want {
		t.Fatalf("block 0 entry %d, want %d (3 hits per generation)", got, want)
	}

	// Empty training input: a valid, fully-untrained model.
	empty, err := Train(nil, TrainConfig{Sets: 1, Assoc: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Generations != 0 || empty.Trained() != 0 {
		t.Fatalf("empty training: %d generations, %d trained entries", empty.Generations, empty.Trained())
	}
}

// TestUntrainedPredictorMatchesLRU: with every signature untrained, all
// victim scores tie and the tie-break is the LRU rank — the predictor
// must shadow cache.NewLRU access for access.
func TestUntrainedPredictorMatchesLRU(t *testing.T) {
	const sets, assoc = 8, 4
	rng := rand.New(rand.NewSource(3))
	p, err := NewPredictor(NewModel(sets, assoc, 10, 1), sets, assoc)
	if err != nil {
		t.Fatal(err)
	}
	lru := cache.New(cache.Config{Sets: sets, Assoc: assoc, BlockBytes: 1}, cache.NewLRU())
	pred := cache.New(cache.Config{Sets: sets, Assoc: assoc, BlockBytes: 1}, p)
	for i := 0; i < 20000; i++ {
		b := uint64(rng.Intn(6 * sets * assoc))
		hitLRU := lru.Probe(b, false)
		hitPred := pred.Probe(b, false)
		if hitLRU != hitPred {
			t.Fatalf("access %d (block %d): LRU hit=%v, untrained predictor hit=%v", i, b, hitLRU, hitPred)
		}
		if !hitLRU {
			lru.Fill(b, 0, false)
			pred.Fill(b, 0, false)
		}
	}
	st := p.Stats()
	if st.TrainedFills != 0 || st.UntrainedFills == 0 {
		t.Fatalf("untrained model saw %d trained / %d untrained fills", st.TrainedFills, st.UntrainedFills)
	}
}

// TestPredictorRejectsGeometryMismatch: a model trained for one
// geometry must not silently drive another (signatures would alias).
func TestPredictorRejectsGeometryMismatch(t *testing.T) {
	if _, err := NewPredictor(NewModel(16, 4, 8, 1), 32, 4); !errors.Is(err, simerr.ErrBadConfig) {
		t.Fatalf("want ErrBadConfig for sets mismatch, got %v", err)
	}
	if _, err := NewPredictor(nil, 16, 4); !errors.Is(err, simerr.ErrBadConfig) {
		t.Fatalf("want ErrBadConfig for nil model, got %v", err)
	}
}

// cyclicStream builds the classic LRU-pathological loop: every set
// cycles through assoc+1 resident blocks, so strict LRU misses every
// access after warmup while any protect/scatter schedule keeps most of
// the working set.
func cyclicStream(sets, assoc, iters int) []uint64 {
	var blocks []uint64
	for i := 0; i < iters; i++ {
		for k := 0; k <= assoc; k++ {
			for s := 0; s < sets; s++ {
				blocks = append(blocks, uint64(k*sets+s))
			}
		}
	}
	return blocks
}

// TestBanditBeatsLRUOnThrash: on the cyclic thrash stream the bandit's
// shadow directories must discover a non-recency arm and land well
// under LRU's (total) miss count.
func TestBanditBeatsLRUOnThrash(t *testing.T) {
	const sets, assoc = 16, 8
	blocks := cyclicStream(sets, assoc, 200)
	lru := replay(blocks, sets, assoc, cache.NewLRU())
	b := NewBandit(sets, assoc, 11)
	bandit := replay(blocks, sets, assoc, b)
	if bandit >= lru {
		t.Fatalf("bandit %d misses, LRU %d — no arm learned on a thrash loop", bandit, lru)
	}
	st := b.Stats()
	if sum := st.ArmRecency + st.ArmProtect + st.ArmFrequency + st.ArmCost + st.ArmScatter; sum != st.Victims {
		t.Fatalf("arm pulls sum to %d, victims %d", sum, st.Victims)
	}
	if st.GhostHits == 0 {
		t.Fatal("no would-have-hit feedback reached the bandit on a thrash loop")
	}
}

// TestBanditDeterministic: the bandit is a pure function of stream and
// seed — same inputs, same misses, same stats.
func TestBanditDeterministic(t *testing.T) {
	const sets, assoc = 8, 4
	rng := rand.New(rand.NewSource(21))
	blocks := make([]uint64, 30000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(5 * sets * assoc))
	}
	b1 := NewBandit(sets, assoc, 9)
	b2 := NewBandit(sets, assoc, 9)
	m1 := replay(blocks, sets, assoc, b1)
	m2 := replay(blocks, sets, assoc, b2)
	if m1 != m2 || b1.Stats() != b2.Stats() {
		t.Fatalf("same stream + seed diverged: %d vs %d misses, %+v vs %+v", m1, m2, b1.Stats(), b2.Stats())
	}
}

// TestVictimPathAllocationFree pins the policy contract both learned
// policies share with the built-ins: zero allocations per access once
// the scratch buffers are warm.
func TestVictimPathAllocationFree(t *testing.T) {
	const sets, assoc = 16, 8
	model := NewModel(sets, assoc, 10, 1)
	pred, err := NewPredictor(model, sets, assoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		p    cache.Policy
	}{
		{"bandit", NewBandit(sets, assoc, 13)},
		{"learned", pred},
	} {
		c := cache.New(cache.Config{Sets: sets, Assoc: assoc, BlockBytes: 1}, tc.p)
		rng := rand.New(rand.NewSource(1))
		blocks := make([]uint64, 4096)
		for i := range blocks {
			blocks[i] = uint64(rng.Intn(4 * sets * assoc))
		}
		for _, b := range blocks { // warm the scratch buffers and fill the sets
			if !c.Probe(b, false) {
				c.Fill(b, uint8(b%8), false)
			}
		}
		i := 0
		avg := testing.AllocsPerRun(2000, func() {
			b := blocks[i%len(blocks)]
			i++
			if !c.Probe(b, false) {
				c.Fill(b, uint8(b%8), false)
			}
		})
		if avg != 0 {
			t.Errorf("%s: %.2f allocs per access on the victim path, want 0", tc.name, avg)
		}
	}
}
