package learn

import (
	"encoding/binary"
	"hash/crc32"
	"os"

	"mlpcache/internal/simerr"
)

// Model file layout (mlpcache.model/v1; the version rides in the magic
// like the events/v2 encoding):
//
//	magic        "MLPM\x01" (5 bytes)
//	tableBits    u8  — table holds 1<<tableBits one-byte entries
//	assoc        u16 LE — geometry the model was trained for
//	sets         u32 LE
//	seed         u64 LE — signature-hash salt (training determinism)
//	generations  u64 LE — Belady generations closed during training
//	table        1<<tableBits bytes of fixed-point expected hit counts
//	crc32        u32 LE — IEEE CRC over every preceding byte
//
// Encoding is a pure function of the struct, so the acceptance
// criterion "same capture + seed → byte-identical model file" reduces
// to deterministic training. A truncated or corrupt file fails decoding
// with a typed simerr.ErrCorruptTrace, exactly like the trace and
// events codecs, so the CLIs report one line on stderr and exit 1.
const (
	modelMagic = "MLPM\x01"

	// MaxTableBits bounds the table so a corrupt header cannot demand
	// an absurd allocation from the decoder.
	MaxTableBits = 24
	// DefaultTableBits sizes untrained default models and the trainer's
	// default table (64 Ki entries, 64 KiB — cheap next to the 1 MB L2).
	DefaultTableBits = 16

	// Untrained marks a table entry no training generation ever
	// touched; the online predictor substitutes a neutral prediction.
	Untrained = 0xFF
	// HitScale is the fixed-point scale of trained entries: entry =
	// round(HitScale × mean hits per Belady generation), capped below
	// Untrained.
	HitScale = 8

	modelHeaderLen = 5 + 1 + 2 + 4 + 8 + 8
)

// Model is a trained (or untrained) expected-hit-count table keyed by
// block signature.
type Model struct {
	TableBits uint8
	Sets      uint32
	Assoc     uint16
	Seed      uint64
	// Generations counts the Belady generations the trainer closed —
	// 0 identifies an untrained default model.
	Generations uint64
	Table       []uint8
}

// NewModel returns an untrained model (every entry Untrained) for the
// given cache geometry.
func NewModel(sets, assoc, tableBits int, seed uint64) *Model {
	if tableBits < 1 || tableBits > MaxTableBits {
		panic(simerr.New(simerr.ErrBadConfig, "learn: tableBits must be in [1,%d], got %d", MaxTableBits, tableBits))
	}
	if sets < 1 || assoc < 1 {
		panic(simerr.New(simerr.ErrBadConfig, "learn: model geometry %d sets × %d ways is invalid", sets, assoc))
	}
	table := make([]uint8, 1<<tableBits)
	for i := range table {
		table[i] = Untrained
	}
	return &Model{
		TableBits: uint8(tableBits),
		Sets:      uint32(sets),
		Assoc:     uint16(assoc),
		Seed:      seed,
		Table:     table,
	}
}

// signature hashes a block address into a table index. The set/tag
// split of the default cache indexer (set = block mod sets, tag =
// block / sets) is inverted here so the online predictor, which sees
// tags, addresses the same entry the trainer wrote for the block.
func (m *Model) signature(block uint64) uint32 {
	return uint32(splitmix64(block^m.Seed) >> (64 - uint(m.TableBits)))
}

// Lookup returns the trained entry for a block (Untrained when no
// generation touched its signature).
func (m *Model) Lookup(block uint64) uint8 { return m.Table[m.signature(block)] }

// Trained counts table entries holding a trained prediction.
func (m *Model) Trained() int {
	n := 0
	for _, e := range m.Table {
		if e != Untrained {
			n++
		}
	}
	return n
}

// Encode serializes the model. The output is a pure function of the
// struct's fields.
func (m *Model) Encode() []byte {
	out := make([]byte, 0, modelHeaderLen+len(m.Table)+4)
	out = append(out, modelMagic...)
	out = append(out, m.TableBits)
	out = binary.LittleEndian.AppendUint16(out, m.Assoc)
	out = binary.LittleEndian.AppendUint32(out, m.Sets)
	out = binary.LittleEndian.AppendUint64(out, m.Seed)
	out = binary.LittleEndian.AppendUint64(out, m.Generations)
	out = append(out, m.Table...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// DecodeModel parses a serialized model, validating the magic, the
// header bounds, the exact payload length and the CRC trailer. Every
// failure is a wrapped simerr.ErrCorruptTrace.
func DecodeModel(data []byte) (*Model, error) {
	if len(data) < modelHeaderLen+4 {
		return nil, simerr.New(simerr.ErrCorruptTrace, "learn: model truncated at %d bytes (header needs %d)", len(data), modelHeaderLen+4)
	}
	if string(data[:5]) != modelMagic {
		return nil, simerr.New(simerr.ErrCorruptTrace, "learn: bad model magic %q", data[:5])
	}
	m := &Model{
		TableBits:   data[5],
		Assoc:       binary.LittleEndian.Uint16(data[6:8]),
		Sets:        binary.LittleEndian.Uint32(data[8:12]),
		Seed:        binary.LittleEndian.Uint64(data[12:20]),
		Generations: binary.LittleEndian.Uint64(data[20:28]),
	}
	if m.TableBits < 1 || m.TableBits > MaxTableBits {
		return nil, simerr.New(simerr.ErrCorruptTrace, "learn: model tableBits %d out of range [1,%d]", m.TableBits, MaxTableBits)
	}
	if m.Sets == 0 || m.Assoc == 0 {
		return nil, simerr.New(simerr.ErrCorruptTrace, "learn: model geometry %d sets × %d ways is invalid", m.Sets, m.Assoc)
	}
	tableLen := 1 << m.TableBits
	if want := modelHeaderLen + tableLen + 4; len(data) != want {
		return nil, simerr.New(simerr.ErrCorruptTrace, "learn: model is %d bytes, want %d for %d table bits", len(data), want, m.TableBits)
	}
	body := data[:len(data)-4]
	if got, want := binary.LittleEndian.Uint32(data[len(data)-4:]), crc32.ChecksumIEEE(body); got != want {
		return nil, simerr.New(simerr.ErrCorruptTrace, "learn: model CRC mismatch: file says %08x, payload hashes to %08x", got, want)
	}
	m.Table = append([]uint8(nil), data[modelHeaderLen:modelHeaderLen+tableLen]...)
	return m, nil
}

// WriteFile serializes the model to path.
func (m *Model) WriteFile(path string) error {
	return os.WriteFile(path, m.Encode(), 0o644)
}

// ReadModelFile loads and validates a serialized model.
func ReadModelFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, simerr.Wrap(simerr.ErrCorruptTrace, err, "learn: reading model")
	}
	return DecodeModel(data)
}
