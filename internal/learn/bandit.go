package learn

import (
	"mlpcache/internal/cache"
	"mlpcache/internal/simerr"
)

// The bandit's arms: five eviction experts spanning the regimes the
// paper's workloads exhibit (recency-friendly, thrashing, frequency-
// skewed, cost-structured, and adversarial-to-determinism patterns
// where randomized eviction wins).
const (
	armRecency   = iota // evict the LRU line
	armProtect          // evict the MRU line (thrash/scan resistance)
	armFrequency        // evict the fewest-hits-since-fill line
	armCost             // evict the cheapest-to-refetch line (lowest cost_q)
	armScatter          // evict a uniform-random line from the LRU half
	numArms
)

const (
	// banditSwitchMargin is the hysteresis on arm changes: a challenger
	// must beat the incumbent's value estimate by this much before the
	// played arm switches. Every switch rebuilds the sets' working
	// structure, so chasing small estimate differences costs more than
	// it wins.
	banditSwitchMargin = 0.01
	// banditConfirmReward is the (small) reward for an arm whose
	// shadow kept the block alive through a main-directory access — or,
	// on a miss, proof that losing the block cost nothing.
	banditConfirmReward = 0.05
	// banditSampleFactor picks every Nth set for shadow evaluation:
	// each arm runs a private shadow tag directory over the sampled
	// sets, so arms are judged on the cache state their own decisions
	// produce — judging them on the shared directory's state conflates
	// every arm's behaviour with the incumbent's.
	banditSampleFactor = 4
)

// shadowArm drives one arm's private shadow directory: the same victim
// rule the bandit would apply, evolving under its own decisions.
type shadowArm struct {
	cache.Base
	mode    int
	assoc   int
	hits    []uint32 // per-way hits since fill (frequency signal)
	rankBuf []int
	state   uint64 // scatter's xorshift64 stream
}

func (p *shadowArm) Name() string { return "shadow" }

func (p *shadowArm) Victim(set cache.SetView) int {
	ways := set.Ways()
	for w := 0; w < ways; w++ {
		if !set.Line(w).Valid {
			return w
		}
	}
	p.rankBuf = set.Ranks(p.rankBuf)
	return armVictim(p.mode, set, p.hits[set.Index*p.assoc:(set.Index+1)*p.assoc], p.rankBuf, &p.state)
}

func (p *shadowArm) Touched(set cache.SetView, w int) {
	h := p.hits[set.Index*p.assoc+w : set.Index*p.assoc+w+1]
	if h[0] != ^uint32(0) {
		h[0]++
	}
}

func (p *shadowArm) Filled(set cache.SetView, w int) {
	p.hits[set.Index*p.assoc+w] = 0
}

// armVictim applies one arm's eviction rule to a full set. hits is the
// set's per-way hit-since-fill slice, rankBuf its recency ranks (rank 0
// = LRU), and state the caller's xorshift64 stream for the scatter arm.
func armVictim(mode int, set cache.SetView, hits []uint32, rankBuf []int, state *uint64) int {
	ways := set.Ways()
	switch mode {
	case armRecency, armProtect:
		want := 0
		if mode == armProtect {
			want = ways - 1
		}
		for w := 0; w < ways; w++ {
			if rankBuf[w] == want {
				return w
			}
		}
		return 0
	case armFrequency:
		best := 0
		for w := 1; w < ways; w++ {
			if hits[w] < hits[best] || (hits[w] == hits[best] && rankBuf[w] < rankBuf[best]) {
				best = w
			}
		}
		return best
	case armCost:
		best := 0
		bestCost := set.Line(0).CostQ
		for w := 1; w < ways; w++ {
			c := set.Line(w).CostQ
			if c < bestCost || (c == bestCost && rankBuf[w] < rankBuf[best]) {
				best, bestCost = w, c
			}
		}
		return best
	default: // armScatter
		half := ways / 2
		if half == 0 {
			half = 1
		}
		*state ^= *state << 13
		*state ^= *state >> 7
		*state ^= *state << 17
		pick := int(*state % uint64(half))
		for w := 0; w < ways; w++ {
			if rankBuf[w] == pick {
				return w
			}
		}
		return 0
	}
}

// Bandit treats per-set way selection as a multi-armed bandit over five
// eviction experts with delayed, sampled feedback. Every banditSampleFactor-th
// set is additionally tracked in five private shadow tag directories,
// one per arm, each evolving under that arm's own eviction rule.
// Feedback is credited at the ISSUE's two moments: an access that
// misses the main directory but hits an arm's shadow is that victim's
// would-have-hit time — the arms that lost the block are penalized by
// the miss's quantized mlp-cost (expensive misses punish harder), the
// arms that kept it are rewarded; an access missing every shadow is the
// eviction-confirmed time — no arm would have kept the block, so the
// penalty-free confirmation flows to all. The victim path greedily
// plays the arm with the best running-mean outcome (with switch
// hysteresis) and is allocation-free on the shared Ranks scratch; the
// shadow directories are fully preallocated at construction.
type Bandit struct {
	cache.Base
	// weights holds the per-arm running-mean outcome estimates (reward
	// positive, penalty negative); judged counts in judged. A running
	// mean rather than an EWMA: every arm is judged on every sampled
	// access, so the means are directly comparable, and they converge
	// instead of chasing workload phases — the target is the arm that
	// is best over the whole run. Exported via Stats as the arm
	// weights.
	weights [numArms]float64
	judged  [numArms]uint64
	arms    [numArms]uint64
	shadows [numArms]*cache.Cache
	// hits counts per-way hits since fill in the main directory (the
	// frequency arm's signal), sets*assoc contiguous.
	hits       []uint32
	sets       int
	assoc      int
	shadowSets int
	rankBuf    []int
	state      uint64 // scatter's xorshift64 stream for main-directory picks
	current    int    // the incumbent arm (hysteresis)
	stats      Stats
}

// NewBandit builds the bandit for a sets × assoc cache. The seed fixes
// the scatter arm's sampling streams, so a run is a pure function of
// its inputs.
func NewBandit(sets, assoc int, seed uint64) *Bandit {
	if sets < 1 || assoc < 1 {
		panic(simerr.New(simerr.ErrBadConfig, "learn: bandit geometry %d sets × %d ways is invalid", sets, assoc))
	}
	shadowSets := sets / banditSampleFactor
	if shadowSets == 0 {
		shadowSets = 1
	}
	b := &Bandit{
		hits:       make([]uint32, sets*assoc),
		sets:       sets,
		assoc:      assoc,
		shadowSets: shadowSets,
		rankBuf:    make([]int, 0, assoc),
		state:      seed | 1,
	}
	for a := 0; a < numArms; a++ {
		p := &shadowArm{
			mode:    a,
			assoc:   assoc,
			hits:    make([]uint32, shadowSets*assoc),
			rankBuf: make([]int, 0, assoc),
			state:   (seed + uint64(a)*0x9e3779b97f4a7c15) | 1,
		}
		b.shadows[a] = cache.New(cache.Config{Sets: shadowSets, Assoc: assoc, BlockBytes: 1}, p)
	}
	return b
}

// Name implements cache.Policy.
func (b *Bandit) Name() string { return "bandit" }

// pickArm returns the incumbent arm unless a challenger's value
// estimate beats it by the switch margin. Ties go to the lowest arm
// index, and the incumbent starts as recency, so a fresh bandit starts
// from the LRU prior.
func (b *Bandit) pickArm() int {
	best := 0
	for a := 1; a < numArms; a++ {
		if b.weights[a] > b.weights[best] {
			best = a
		}
	}
	if best != b.current && b.weights[best] > b.weights[b.current]+banditSwitchMargin {
		b.current = best
	}
	return b.current
}

// sampled reports whether the set feeds the shadow directories, and the
// shadow set it maps to.
func (b *Bandit) sampled(set int) (int, bool) {
	if set%banditSampleFactor != 0 {
		return 0, false
	}
	s := set / banditSampleFactor
	if s >= b.shadowSets {
		return 0, false
	}
	return s, true
}

// observe drives the five shadow directories with one sampled access
// and settles each arm's judgement: a shadow hit means the arm kept the
// block (reward), a shadow miss means its eviction schedule lost it
// (penalty scaled by the access's quantized mlp-cost). mtdMiss records
// whether the main directory itself missed, for the would-have-hit
// accounting.
func (b *Bandit) observe(shadowSet int, tag uint64, costQ uint8, mtdMiss bool) {
	block := tag*uint64(b.shadowSets) + uint64(shadowSet)
	anyHit := false
	for a := 0; a < numArms; a++ {
		outcome := banditConfirmReward
		if b.shadows[a].Probe(block, false) {
			anyHit = true
		} else {
			b.shadows[a].Fill(block, costQ, false)
			outcome = -float64(1+costQ) / 8
		}
		b.judged[a]++
		b.weights[a] += (outcome - b.weights[a]) / float64(b.judged[a])
	}
	if !mtdMiss {
		return
	}
	if anyHit {
		b.stats.GhostHits++
	} else {
		b.stats.Confirmed++
	}
}

// Victim implements cache.Policy: play the best arm's eviction rule.
func (b *Bandit) Victim(set cache.SetView) int {
	ways := set.Ways()
	for w := 0; w < ways; w++ {
		if !set.Line(w).Valid {
			return w
		}
	}
	b.rankBuf = set.Ranks(b.rankBuf)
	arm := b.pickArm()
	w := armVictim(arm, set, b.hits[set.Index*b.assoc:(set.Index+1)*b.assoc], b.rankBuf, &b.state)
	b.stats.Victims++
	b.arms[arm]++
	return w
}

// Touched implements cache.Policy: count the hit for the frequency arm
// and judge the arms on sampled sets — a shadow that already lost this
// block would have turned the hit into a miss.
func (b *Bandit) Touched(set cache.SetView, w int) {
	idx := set.Index*b.assoc + w
	if b.hits[idx] != ^uint32(0) {
		b.hits[idx]++
	}
	if s, ok := b.sampled(set.Index); ok {
		line := set.Line(w)
		b.observe(s, line.Tag, line.CostQ, false)
	}
}

// Filled implements cache.Policy: reset the way's hit counter and, on
// sampled sets, judge the arms at the would-have-hit moment — the main
// directory missed, and any shadow still holding the block proves its
// arm's schedule would have hit.
func (b *Bandit) Filled(set cache.SetView, w int) {
	b.hits[set.Index*b.assoc+w] = 0
	if s, ok := b.sampled(set.Index); ok {
		line := set.Line(w)
		b.observe(s, line.Tag, line.CostQ, true)
	}
}

// Stats returns the run's bandit accounting, value estimates included.
func (b *Bandit) Stats() Stats {
	st := b.stats
	st.ArmRecency = b.arms[armRecency]
	st.ArmProtect = b.arms[armProtect]
	st.ArmFrequency = b.arms[armFrequency]
	st.ArmCost = b.arms[armCost]
	st.ArmScatter = b.arms[armScatter]
	st.WeightRecency = b.weights[armRecency]
	st.WeightProtect = b.weights[armProtect]
	st.WeightFrequency = b.weights[armFrequency]
	st.WeightCost = b.weights[armCost]
	st.WeightScatter = b.weights[armScatter]
	return st
}
