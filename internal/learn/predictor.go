package learn

import (
	"mlpcache/internal/cache"
	"mlpcache/internal/simerr"
)

type predSet struct {
	// pred caches each way's model prediction at fill time (fixed-point
	// HitScale expected hits; Untrained when the signature was never
	// trained); hits counts the way's probe hits since fill.
	pred []uint8
	hits []uint8
}

// Predictor is the EHC-style learned policy: an offline-trained table
// (Model) predicts, per block signature, how many hits a Belady
// schedule extracts from one residency generation. Online, each fill
// caches the incoming block's prediction and the victim path evicts the
// line with the least remaining expected value — prediction minus hits
// already received — so lines that have consumed their expectation go
// first and lines still owed hits are protected. Untrained signatures
// score a neutral zero, which makes a fully-untrained model behave
// exactly like LRU (every score ties; ties break toward the LRU rank).
type Predictor struct {
	cache.Base
	model   *Model
	sets    []predSet
	rankBuf []int
	stats   Stats
}

// NewPredictor builds the online policy for a sets × assoc cache. The
// model must have been trained for the same geometry: signatures hash
// block addresses, and the set/tag split differs across geometries.
func NewPredictor(model *Model, sets, assoc int) (*Predictor, error) {
	if model == nil {
		return nil, simerr.New(simerr.ErrBadConfig, "learn: predictor needs a model (train one with mlptrain, or leave -model unset for the untrained default)")
	}
	if int(model.Sets) != sets || int(model.Assoc) != assoc {
		return nil, simerr.New(simerr.ErrBadConfig,
			"learn: model trained for %d sets × %d ways cannot drive a %d × %d cache",
			model.Sets, model.Assoc, sets, assoc)
	}
	p := &Predictor{model: model, sets: make([]predSet, sets)}
	pred := make([]uint8, sets*assoc)
	hits := make([]uint8, sets*assoc)
	for s := range p.sets {
		p.sets[s].pred = pred[s*assoc : (s+1)*assoc : (s+1)*assoc]
		p.sets[s].hits = hits[s*assoc : (s+1)*assoc : (s+1)*assoc]
	}
	return p, nil
}

// Name implements cache.Policy.
func (p *Predictor) Name() string { return "learned" }

// Model returns the table driving the predictor.
func (p *Predictor) Model() *Model { return p.model }

// Victim implements cache.Policy: evict the valid line with the lowest
// remaining expected value, ties toward the LRU rank.
func (p *Predictor) Victim(set cache.SetView) int {
	ways := set.Ways()
	for w := 0; w < ways; w++ {
		if !set.Line(w).Valid {
			return w
		}
	}
	p.rankBuf = set.Ranks(p.rankBuf)
	s := &p.sets[set.Index]
	best := -1
	bestScore, bestRank := 0, 0
	for w := 0; w < ways; w++ {
		// Remaining expected value: prediction minus hits already
		// received. An untrained signature scores a neutral zero — its
		// hits say nothing about an expectation that was never set — so
		// a fully-untrained model ties everywhere and decays to LRU.
		score := 0
		if s.pred[w] != Untrained {
			score = int(s.pred[w]) - HitScale*int(s.hits[w])
		}
		r := p.rankBuf[w]
		if best < 0 || score < bestScore || (score == bestScore && r < bestRank) {
			best, bestScore, bestRank = w, score, r
		}
	}
	p.stats.Victims++
	return best
}

// Touched implements cache.Policy: count the hit against the way's
// remaining expectation.
func (p *Predictor) Touched(set cache.SetView, w int) {
	s := &p.sets[set.Index]
	if s.hits[w] != 0xFF {
		s.hits[w]++
	}
}

// Filled implements cache.Policy: look the incoming block's signature
// up in the model and open a fresh generation for the way.
func (p *Predictor) Filled(set cache.SetView, w int) {
	s := &p.sets[set.Index]
	block := set.Line(w).Tag*uint64(p.model.Sets) + uint64(set.Index)
	e := p.model.Table[p.model.signature(block)]
	s.pred[w] = e
	s.hits[w] = 0
	if e == Untrained {
		p.stats.UntrainedFills++
	} else {
		p.stats.TrainedFills++
	}
}

// Stats returns the run's predictor accounting.
func (p *Predictor) Stats() Stats { return p.stats }
