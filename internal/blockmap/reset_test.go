package blockmap

import (
	"math/rand"
	"testing"
)

// TestResetMatchesFresh drives a reset table and a fresh one with the
// same operation stream and demands identical observable state — the
// arena's reuse contract. The reset table keeps its grown backing, so
// the stream also verifies that stale buckets never resurface.
func TestResetMatchesFresh(t *testing.T) {
	used := New[int](4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		used.Put(uint64(rng.Intn(4096)), i)
		if rng.Intn(3) == 0 {
			used.Delete(uint64(rng.Intn(4096)))
		}
	}
	used.Reset()
	if used.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", used.Len())
	}

	fresh := New[int](4)
	rng = rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		block := uint64(rng.Intn(512))
		switch rng.Intn(4) {
		case 0, 1:
			used.Put(block, i)
			fresh.Put(block, i)
		case 2:
			if got, want := used.Delete(block), fresh.Delete(block); got != want {
				t.Fatalf("op %d: Delete(%#x) = %v on reset table, %v on fresh", i, block, got, want)
			}
		case 3:
			gv, gok := used.Get(block)
			wv, wok := fresh.Get(block)
			if gv != wv || gok != wok {
				t.Fatalf("op %d: Get(%#x) = (%v, %v) on reset table, (%v, %v) on fresh", i, block, gv, gok, wv, wok)
			}
		}
		if used.Len() != fresh.Len() {
			t.Fatalf("op %d: Len = %d on reset table, %d on fresh", i, used.Len(), fresh.Len())
		}
	}
}
