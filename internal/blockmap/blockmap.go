// Package blockmap provides a compact open-addressed hash table keyed by
// 64-bit block numbers. It replaces the Go maps on the memory system's
// per-access path (in-flight misses, compulsory-miss tracking, MSHR block
// index), where the runtime map's hashing, bucket chasing, and write
// barriers dominated the miss-handling profile. The table hashes with a
// single Fibonacci multiply, probes linearly, and deletes with backward
// shifting, so steady-state operation allocates nothing and touches a
// handful of contiguous words per lookup — the software analogue of the
// paper's Section 5 argument that MLP-aware bookkeeping (the MSHR file
// of Algorithm 1 and the per-block cost state it feeds) must be
// near-free in hardware.
package blockmap

// minSlots is the smallest table allocated; small enough to stay cheap
// for toy configurations, large enough that a table sized for a few
// entries never rehashes during warm-up.
const minSlots = 16

// Table maps block numbers to values of type V. The zero Table is not
// ready for use; construct with New. Tables grow automatically to keep
// the load factor at or below one half, so fixed-population users (for
// example an MSHR-bounded in-flight set) never rehash after New and
// unbounded users (per-block footprint tracking) amortize growth the
// same way a Go map would — without per-operation overhead.
type Table[V any] struct {
	blocks []uint64
	vals   []V
	used   []bool
	n      int
	shift  uint // 64 - log2(len(blocks)); hash mixes into the top bits
}

// New returns a table pre-sized for the given expected population. The
// backing store holds at least four slots per expected entry (a 25% load
// factor), so a population that stays within the hint never rehashes.
func New[V any](expected int) *Table[V] {
	slots := minSlots
	for slots < 4*expected {
		slots <<= 1
	}
	return newWithSlots[V](slots)
}

func newWithSlots[V any](slots int) *Table[V] {
	shift := uint(64)
	for s := slots; s > 1; s >>= 1 {
		shift--
	}
	return &Table[V]{
		blocks: make([]uint64, slots),
		vals:   make([]V, slots),
		used:   make([]bool, slots),
		shift:  shift,
	}
}

// fibMul is 2^64 / φ, the classic Fibonacci-hashing multiplier: block
// numbers are sequential in the low bits, and the multiply spreads them
// across the table's index bits (taken from the top of the product).
const fibMul = 0x9E3779B97F4A7C15

func (t *Table[V]) home(block uint64) int {
	return int((block * fibMul) >> t.shift)
}

// Len returns the number of stored entries.
func (t *Table[V]) Len() int { return t.n }

// Get returns the value stored for block, if any.
func (t *Table[V]) Get(block uint64) (V, bool) {
	mask := len(t.blocks) - 1
	for i := t.home(block); ; i = (i + 1) & mask {
		if !t.used[i] {
			var zero V
			return zero, false
		}
		if t.blocks[i] == block {
			return t.vals[i], true
		}
	}
}

// Put stores v for block, replacing any existing value.
func (t *Table[V]) Put(block uint64, v V) {
	if 2*(t.n+1) > len(t.blocks) {
		t.grow()
	}
	mask := len(t.blocks) - 1
	for i := t.home(block); ; i = (i + 1) & mask {
		if !t.used[i] {
			t.blocks[i], t.vals[i], t.used[i] = block, v, true
			t.n++
			return
		}
		if t.blocks[i] == block {
			t.vals[i] = v
			return
		}
	}
}

// Delete removes block's entry, reporting whether one existed. Removal
// backward-shifts the following probe run, so the table never needs
// tombstones and lookups stay a pure linear probe.
func (t *Table[V]) Delete(block uint64) bool {
	mask := len(t.blocks) - 1
	i := t.home(block)
	for {
		if !t.used[i] {
			return false
		}
		if t.blocks[i] == block {
			break
		}
		i = (i + 1) & mask
	}
	t.n--
	// Backward shift: walk the probe run after i; any element whose home
	// slot does not lie in the cyclic interval (i, j] can legally move
	// into the hole, re-establishing the invariant that every entry is
	// reachable from its home by a gap-free probe.
	var zero V
	for {
		j := i
		for {
			j = (j + 1) & mask
			if !t.used[j] {
				t.blocks[i], t.vals[i], t.used[i] = 0, zero, false
				return true
			}
			h := t.home(t.blocks[j])
			inRun := false
			if i < j {
				inRun = i < h && h <= j
			} else {
				inRun = i < h || h <= j
			}
			if !inRun {
				break
			}
		}
		t.blocks[i], t.vals[i] = t.blocks[j], t.vals[j]
		i = j
	}
}

// Reset empties the table in place. The backing arrays keep their
// current size, so a reused table pays neither the initial allocation
// nor the regrowth it already amortized (sim.Arena pools tables across
// runs this way).
func (t *Table[V]) Reset() {
	if t.n == 0 {
		return // Put/Delete keep used[] exact, so an empty table is clean
	}
	clear(t.blocks)
	clear(t.vals)
	clear(t.used)
	t.n = 0
}

// Range calls f for every entry until f returns false. Iteration order
// is the table's physical slot order — deterministic for a given history
// but otherwise unspecified, like a hardware CAM scan.
func (t *Table[V]) Range(f func(block uint64, v V) bool) {
	for i := range t.blocks {
		if t.used[i] && !f(t.blocks[i], t.vals[i]) {
			return
		}
	}
}

func (t *Table[V]) grow() {
	next := newWithSlots[V](2 * len(t.blocks))
	for i := range t.blocks {
		if t.used[i] {
			next.Put(t.blocks[i], t.vals[i])
		}
	}
	*t = *next
}
