package blockmap

import (
	"math/rand"
	"testing"
)

// TestRandomizedAgainstMap drives a Table and a Go map with the same
// random operation stream and demands identical observable state
// throughout. Block numbers are drawn from a small universe so inserts,
// overwrites, deletes of absent keys, and probe-run collisions all occur
// constantly; the small table start forces several growths.
func TestRandomizedAgainstMap(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		tab := New[int](2)
		ref := make(map[uint64]int)
		// A universe of 256 keys over 200k ops keeps the table churning.
		for op := 0; op < 200_000; op++ {
			block := uint64(rng.Intn(256)) * 64 // block numbers share low zero bits, like real addresses
			switch rng.Intn(3) {
			case 0:
				v := rng.Int()
				tab.Put(block, v)
				ref[block] = v
			case 1:
				_, wantOK := ref[block]
				gotOK := tab.Delete(block)
				delete(ref, block)
				if gotOK != wantOK {
					t.Fatalf("seed %d op %d: Delete(%#x) = %v, want %v", seed, op, block, gotOK, wantOK)
				}
			default:
				got, gotOK := tab.Get(block)
				want, wantOK := ref[block]
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("seed %d op %d: Get(%#x) = %v,%v want %v,%v", seed, op, block, got, gotOK, want, wantOK)
				}
			}
			if tab.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len = %d, want %d", seed, op, tab.Len(), len(ref))
			}
		}
		// Full sweep: every surviving key agrees, Range visits each once.
		seen := make(map[uint64]int)
		tab.Range(func(block uint64, v int) bool {
			seen[block] = v
			return true
		})
		if len(seen) != len(ref) {
			t.Fatalf("seed %d: Range visited %d entries, want %d", seed, len(seen), len(ref))
		}
		for block, want := range ref {
			if got, ok := seen[block]; !ok || got != want {
				t.Fatalf("seed %d: Range saw %#x = %v,%v want %v", seed, block, got, ok, want)
			}
		}
	}
}

// TestZeroKey checks that block 0 — a legal block number — round-trips;
// the empty-slot marker must not be confused with a stored zero key.
func TestZeroKey(t *testing.T) {
	tab := New[string](4)
	tab.Put(0, "zero")
	if v, ok := tab.Get(0); !ok || v != "zero" {
		t.Fatalf("Get(0) = %q,%v want zero,true", v, ok)
	}
	if !tab.Delete(0) {
		t.Fatal("Delete(0) = false, want true")
	}
	if _, ok := tab.Get(0); ok {
		t.Fatal("Get(0) after delete reports present")
	}
}

// TestFixedPopulationNeverGrows verifies the New sizing contract: a
// population within the hint stays at the initial backing size, so
// latency-sensitive users (the MSHR index) see no mid-run rehash.
func TestFixedPopulationNeverGrows(t *testing.T) {
	const entries = 32
	tab := New[int](entries)
	slots := len(tab.blocks)
	rng := rand.New(rand.NewSource(9))
	live := map[uint64]bool{}
	for op := 0; op < 100_000; op++ {
		if len(live) < entries && (len(live) == 0 || rng.Intn(2) == 0) {
			b := rng.Uint64()
			tab.Put(b, op)
			live[b] = true
		} else {
			for b := range live {
				tab.Delete(b)
				delete(live, b)
				break
			}
		}
	}
	if len(tab.blocks) != slots {
		t.Fatalf("table grew from %d to %d slots despite bounded population", slots, len(tab.blocks))
	}
}

func BenchmarkPutGetDelete(b *testing.B) {
	tab := New[int](32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		block := uint64(i) & 1023
		tab.Put(block, i)
		if _, ok := tab.Get(block); !ok {
			b.Fatal("lost key")
		}
		if i&1 == 1 {
			tab.Delete(block - 1)
		}
	}
}
