package experiments

import (
	"mlpcache/internal/sim"
)

// Section 6.6's closing comparison: SBAR versus the full-overhead hybrids
// it approximates. The paper reports SBAR within 1% of the best CBS
// variant everywhere except art (CBS-local ahead) and ammp (CBS-global
// 20.3% vs SBAR 18.3%) — at 64x fewer ATD entries.

// CBSComparisonResult holds the three-way comparison.
type CBSComparisonResult struct {
	Rows []CBSComparisonRow
}

// CBSComparisonRow is one benchmark's IPC deltas vs LRU.
type CBSComparisonRow struct {
	Bench        string
	SBARPct      float64
	CBSGlobalPct float64
	CBSLocalPct  float64
}

// cbsBenches are the Section 6.6 focus cases plus a win and a loss
// representative (the full 14x3 sweep is expensive; the note in the
// rendering explains the selection).
var cbsBenches = []string{"art", "ammp", "mcf", "parser"}

// CBSComparison runs the three hybrids on the focus benchmarks.
func CBSComparison(r *Runner) CBSComparisonResult {
	var out CBSComparisonResult
	out.Rows = forBenches(r, cbsBenches, func(b string) CBSComparisonRow {
		base := r.Baseline(b)
		sbar := r.Run(b, sim.PolicySpec{Kind: sim.PolicySBAR})
		global := r.Run(b, sim.PolicySpec{Kind: sim.PolicyCBSGlobal})
		local := r.Run(b, sim.PolicySpec{Kind: sim.PolicyCBSLocal})
		return CBSComparisonRow{
			Bench:        b,
			SBARPct:      sbar.IPCDeltaPercent(base),
			CBSGlobalPct: global.IPCDeltaPercent(base),
			CBSLocalPct:  local.IPCDeltaPercent(base),
		}
	})
	return out
}

// table builds the comparison table.
func (f CBSComparisonResult) table() *table {
	t := newTable("Section 6.6: SBAR vs the full-overhead CBS hybrids (IPC delta vs LRU)",
		"bench", "SBAR", "CBS-global", "CBS-local")
	for _, r := range f.Rows {
		t.rowf("%s\t%s\t%s\t%s", r.Bench, pct(r.SBARPct), pct(r.CBSGlobalPct), pct(r.CBSLocalPct))
	}
	t.note("paper: SBAR within ~1%% of the best CBS variant except art (CBS-local ahead) and ammp (CBS-global ahead) — at 64x fewer ATD entries")
	t.note("benchmarks: the paper's two exceptions (art, ammp) plus a LIN-winner (mcf) and a LIN-loser (parser)")
	return t
}
