package experiments

import (
	"fmt"

	"mlpcache/internal/analytic"
)

// Figure8Result holds the analytical sampling curves of Figure 8:
// P(best policy selected) as a function of the number of leader sets,
// for several values of p (the fraction of sets favouring the best
// policy). This reproduction is exact — it is pure mathematics.
type Figure8Result struct {
	Ks     []int
	Ps     []float64
	Curves [][]float64 // Curves[i][j] = PBest(Ks[j], Ps[i])
}

// Figure8 evaluates equations 4-5 on the paper's axes.
func Figure8() Figure8Result {
	res := Figure8Result{
		Ks: []int{1, 2, 4, 8, 16, 32, 64},
		Ps: []float64{0.5, 0.6, 0.7, 0.8, 0.9},
	}
	for _, p := range res.Ps {
		res.Curves = append(res.Curves, analytic.Curve(res.Ks, p))
	}
	return res
}

// table builds the curves table.
func (f Figure8Result) table() *table {
	header := []string{"p \\ leader sets"}
	for _, k := range f.Ks {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	t := newTable("Figure 8: analytical P(best policy selected) vs number of leader sets", header...)
	for i, p := range f.Ps {
		cells := []string{fmt.Sprintf("p=%.1f", p)}
		for _, v := range f.Curves[i] {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		t.row(cells...)
	}
	for _, p := range []float64{0.74, 0.8, 0.9} {
		k := analytic.MinLeadersFor(p, 0.95, 129)
		t.note("smallest odd k with P(Best) >= 0.95 at p=%.2f: %d", p, k)
	}
	t.note("paper: measured p is between 0.74 and 0.99, so 16-32 leader sets suffice (>95%% probability)")
	return t
}
