package experiments

import (
	"fmt"

	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
	"mlpcache/internal/workload"
)

// Sensitivity studies in the spirit of the paper's Section 7 (the
// provided text cuts off inside it): how LIN's gains and losses, and
// SBAR's protection, respond to the machine parameters that shape MLP —
// memory latency, cache capacity, MSHR size, and window size. Each sweep
// runs a LIN-winner (mcf) and a LIN-loser (parser) so both sides of the
// mechanism stay visible.

// SensitivityPoint is one (parameter value × benchmark) measurement.
type SensitivityPoint struct {
	Param   string
	Value   string
	Bench   string
	LRUIPC  float64
	LINPct  float64 // LIN IPC delta vs LRU, percent
	SBARPct float64 // SBAR IPC delta vs LRU, percent
}

// SensitivityResult is one parameter sweep.
type SensitivityResult struct {
	Param  string
	Points []SensitivityPoint
}

// sensBenches are the representative benchmarks each sweep runs.
var sensBenches = []string{"mcf", "parser"}

// runSensPoint simulates one benchmark at one configuration under LRU,
// LIN(4) and SBAR.
func runSensPoint(instructions, seed uint64, param, value, bench string,
	mutate func(*sim.Config)) SensitivityPoint {

	w, ok := workload.ByName(bench)
	if !ok {
		panic(simerr.New(simerr.ErrUnknownBenchmark, "experiments: unknown benchmark %q", bench))
	}
	run := func(spec sim.PolicySpec) sim.Result {
		cfg := sim.DefaultConfig()
		cfg.MaxInstructions = instructions
		cfg.Policy = spec
		mutate(&cfg)
		return sim.MustRun(cfg, w.Build(seed))
	}
	lru := run(sim.PolicySpec{Kind: sim.PolicyLRU})
	lin := run(sim.PolicySpec{Kind: sim.PolicyLIN, Lambda: 4})
	sbar := run(sim.PolicySpec{Kind: sim.PolicySBAR})
	return SensitivityPoint{
		Param: param, Value: value, Bench: bench,
		LRUIPC:  lru.IPC,
		LINPct:  lin.IPCDeltaPercent(lru),
		SBARPct: sbar.IPCDeltaPercent(lru),
	}
}

// SensitivityMemLatency sweeps the DRAM access latency: longer memory
// raises the price of an isolated miss linearly, so LIN's wins and
// losses both scale with it.
func SensitivityMemLatency(r *Runner) SensitivityResult {
	res := SensitivityResult{Param: "memory latency"}
	for _, lat := range []uint64{200, 400, 800} {
		for _, b := range sensBenches {
			res.Points = append(res.Points, runSensPoint(
				r.Instructions, r.Seed, res.Param,
				fmt.Sprintf("%d cycles", lat), b,
				func(c *sim.Config) { c.DRAM.AccessCycles = lat }))
		}
	}
	return res
}

// SensitivityCacheSize sweeps the L2 capacity. A larger cache softens
// thrash (less for LIN to win) and dilutes pollution (less for LIN to
// lose); a smaller one sharpens both.
func SensitivityCacheSize(r *Runner) SensitivityResult {
	res := SensitivityResult{Param: "L2 size"}
	for _, kb := range []uint64{512, 1024, 2048} {
		for _, b := range sensBenches {
			res.Points = append(res.Points, runSensPoint(
				r.Instructions, r.Seed, res.Param,
				fmt.Sprintf("%dKB", kb), b,
				func(c *sim.Config) { c.L2.SizeBytes = kb * 1024 }))
		}
	}
	return res
}

// SensitivityMSHR sweeps the miss-file size, which caps achievable MLP:
// with few MSHRs even "parallel" misses serialize, compressing the cost
// non-uniformity the whole mechanism feeds on.
func SensitivityMSHR(r *Runner) SensitivityResult {
	res := SensitivityResult{Param: "MSHR entries"}
	for _, entries := range []int{8, 32, 64} {
		for _, b := range sensBenches {
			res.Points = append(res.Points, runSensPoint(
				r.Instructions, r.Seed, res.Param,
				fmt.Sprintf("%d", entries), b,
				func(c *sim.Config) { c.MSHR.Entries = entries }))
		}
	}
	return res
}

// SensitivityWindow sweeps the instruction window, the other MLP limiter:
// a small window cannot overlap misses, so everything drifts toward
// isolated cost.
func SensitivityWindow(r *Runner) SensitivityResult {
	res := SensitivityResult{Param: "window size"}
	for _, entries := range []int{32, 128, 256} {
		for _, b := range sensBenches {
			res.Points = append(res.Points, runSensPoint(
				r.Instructions, r.Seed, res.Param,
				fmt.Sprintf("%d", entries), b,
				func(c *sim.Config) { c.CPU.ROBEntries = entries }))
		}
	}
	return res
}

// table builds the sweep table.
func (s SensitivityResult) table() *table {
	t := newTable(fmt.Sprintf("Sensitivity: %s (IPC delta vs LRU at each point)", s.Param),
		s.Param, "bench", "LRU IPC", "LIN", "SBAR")
	for _, p := range s.Points {
		t.rowf("%s\t%s\t%.4f\t%s\t%s", p.Value, p.Bench, p.LRUIPC, pct(p.LINPct), pct(p.SBARPct))
	}
	t.note("mcf represents LIN's win side, parser its loss side; SBAR should track max(LIN, LRU) throughout")
	return t
}
