package experiments

import "io"

// Render implementations: every experiment result renders through its
// table, so text and CSV output stay in lockstep.

// Render writes the paper-style text table.
func (f Figure1Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Figure2Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Table1Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Table2Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Table3Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Figure3bResult) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Figure4Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Figure5Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Figure8Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Figure9Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Figure10Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f Figure11Result) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f OverheadResult) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (s SensitivityResult) Render(w io.Writer) { s.table().Render(w) }

// Render writes the paper-style text table.
func (f StabilityResult) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f CBSComparisonResult) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f OracleHeadroomResult) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f MulticoreResult) Render(w io.Writer) { f.table().Render(w) }

// Render writes the paper-style text table.
func (f LearnedHeadroomResult) Render(w io.Writer) { f.table().Render(w) }
