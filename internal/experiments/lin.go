package experiments

import (
	"mlpcache/internal/sim"
	"mlpcache/internal/workload"
)

// Figure4Result holds the λ-sweep of Figure 4: IPC improvement of LIN(λ)
// over the LRU baseline, for λ = 1..4.
type Figure4Result struct {
	Lambdas []int
	Rows    []Figure4Row
}

// Figure4Row is one benchmark's sweep.
type Figure4Row struct {
	Bench    string
	IPCDelta []float64 // percent, per lambda
}

// Figure4 reproduces Figure 4: "IPC variation with LIN(λ) as λ is varied
// from 1 to 4".
func Figure4(r *Runner) Figure4Result {
	res := Figure4Result{Lambdas: []int{1, 2, 3, 4}}
	res.Rows = forBenches(r, r.Names(), func(b string) Figure4Row {
		base := r.Baseline(b)
		row := Figure4Row{Bench: b}
		for _, l := range res.Lambdas {
			lin := r.Run(b, sim.PolicySpec{Kind: sim.PolicyLIN, Lambda: l})
			row.IPCDelta = append(row.IPCDelta, lin.IPCDeltaPercent(base))
		}
		return row
	})
	return res
}

// table builds the paper-style table.
func (f Figure4Result) table() *table {
	t := newTable("Figure 4: IPC improvement over LRU for LIN(λ)",
		"bench", "LIN(1)", "LIN(2)", "LIN(3)", "LIN(4)")
	for _, row := range f.Rows {
		cells := []string{row.Bench}
		for _, d := range row.IPCDelta {
			cells = append(cells, pct(d))
		}
		t.row(cells...)
	}
	t.note("paper: effect grows with λ; λ=4 helps art/mcf/vpr/ammp/galgel/sixtrack, hurts bzip2/parser/mgrid")
	return t
}

// Figure5Result compares the LIN(4) run against the LRU baseline per
// benchmark: the mlp-cost distribution shift and the ΔMISS/ΔIPC insets.
type Figure5Result struct {
	Rows []Figure5Row
}

// Figure5Row is one benchmark's comparison.
type Figure5Row struct {
	Bench        string
	MissDeltaPct float64
	IPCDeltaPct  float64
	// Paper values from the Figure 5 insets, for side-by-side reporting.
	PaperMissPct float64
	PaperIPCPct  float64
	// BasePct and LinPct are the 8-bin mlp-cost distributions (percent
	// of misses) under LRU and LIN.
	BasePct []float64
	LinPct  []float64
	BaseAvg float64
	LinAvg  float64
}

// DirectionsAgree reports whether measured ΔMISS and ΔIPC both match the
// paper's sign (within a ±2% neutrality band).
func (r Figure5Row) DirectionsAgree() bool {
	return sameSign(r.MissDeltaPct, r.PaperMissPct, 2) &&
		sameSign(r.IPCDeltaPct, r.PaperIPCPct, 2)
}

// Figure5 reproduces Figure 5: mlp-cost distribution under baseline vs
// LIN(λ=4) with the miss/IPC change insets.
func Figure5(r *Runner) Figure5Result {
	var out Figure5Result
	out.Rows = forBenches(r, r.Names(), func(b string) Figure5Row {
		spec, _ := workload.ByName(b)
		base := r.Baseline(b)
		lin := r.Run(b, sim.PolicySpec{Kind: sim.PolicyLIN, Lambda: 4})
		return Figure5Row{
			Bench:        b,
			MissDeltaPct: lin.MissDeltaPercent(base),
			IPCDeltaPct:  lin.IPCDeltaPercent(base),
			PaperMissPct: spec.PaperLINMissPct,
			PaperIPCPct:  spec.PaperLINIPCPct,
			BasePct:      base.CostHist.Percent(),
			LinPct:       lin.CostHist.Percent(),
			BaseAvg:      base.CostHist.Mean(),
			LinAvg:       lin.CostHist.Mean(),
		}
	})
	return out
}

// table builds the paper-style table.
func (f Figure5Result) table() *table {
	t := newTable("Figure 5: LIN(4) vs baseline — ΔMISS / ΔIPC (paper values in brackets)",
		"bench", "ΔMISS", "[paper]", "ΔIPC", "[paper]", "avg cost LRU→LIN", "shape")
	for _, r0 := range f.Rows {
		agree := "agree"
		if !r0.DirectionsAgree() {
			agree = "DISAGREE"
		}
		t.rowf("%s\t%s\t[%s]\t%s\t[%s]\t%.0f→%.0f\t%s",
			r0.Bench, pct(r0.MissDeltaPct), pct(r0.PaperMissPct),
			pct(r0.IPCDeltaPct), pct(r0.PaperIPCPct),
			r0.BaseAvg, r0.LinAvg, agree)
	}
	t.note("per-benchmark cost histograms available via Figure2 under each policy")
	return t
}
