package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
)

// TestRunnerCapacityEvicts checks the memo-table bound: with Capacity
// set, old entries are evicted LRU and re-running an evicted
// configuration still works (it just re-simulates).
func TestRunnerCapacityEvicts(t *testing.T) {
	r := NewRunner(20_000, 1)
	r.Benchmarks = []string{"mcf"}
	r.Capacity = 1
	lru := sim.PolicySpec{Kind: sim.PolicyLRU}
	fifo := sim.PolicySpec{Kind: sim.PolicyFIFO}

	a := r.Run("mcf", lru)
	r.Run("mcf", fifo)
	if n := len(r.CachedKeys()); n != 1 {
		t.Fatalf("capacity-1 memo table holds %d keys, want 1", n)
	}
	b := r.Run("mcf", lru) // evicted: re-simulates, deterministic
	if a.Cycles != b.Cycles || a.IPC != b.IPC {
		t.Fatal("re-run after eviction diverged from original result")
	}
}

// TestRunnerUnboundedDefault checks Capacity=0 keeps every key (the
// CLI's historical behavior).
func TestRunnerUnboundedDefault(t *testing.T) {
	r := NewRunner(20_000, 1)
	r.Benchmarks = []string{"mcf"}
	for _, k := range []sim.PolicyKind{sim.PolicyLRU, sim.PolicyFIFO, sim.PolicyRandom} {
		r.Run("mcf", sim.PolicySpec{Kind: k})
	}
	if n := len(r.CachedKeys()); n != 3 {
		t.Fatalf("unbounded memo table holds %d keys, want 3", n)
	}
}

// TestRunnerContextCancelled checks a cancelled runner context surfaces
// as a typed error from the experiment entry points instead of a
// rendered partial table.
func TestRunnerContextCancelled(t *testing.T) {
	r := NewRunner(5_000_000, 1)
	r.Benchmarks = []string{"mcf"}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Context = ctx

	var buf bytes.Buffer
	err := RunByID(r, "tab3", &buf)
	if !errors.Is(err, simerr.ErrCancelled) {
		t.Fatalf("RunByID under cancelled context = %v, want ErrCancelled", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("cancelled experiment still rendered %d bytes", buf.Len())
	}
	if err := r.Err(); !errors.Is(err, simerr.ErrCancelled) {
		t.Fatalf("runner.Err = %v, want ErrCancelled", err)
	}
	if n := len(r.CachedKeys()); n != 0 {
		t.Fatalf("cancelled runs were memoized: %d keys", n)
	}
}
