package experiments

import (
	"mlpcache/internal/cache"
	"mlpcache/internal/core"
	"mlpcache/internal/learn"
	"mlpcache/internal/oracle"
	"mlpcache/internal/sim"
)

// LearnedHeadroomResult evaluates the learned eviction policies
// (internal/learn) against the classical baselines and the offline
// oracles on identical footing: per benchmark, the LRU run's L2 demand
// stream is captured once and every policy replays that same stream
// untimed at the live geometry — LRU, LIN(4), SBAR, Random, the bandit,
// and the trained hit-count predictor — alongside the Belady and
// cost-weighted Belady replays from the oracle-headroom experiment.
// The predictor is trained on the very capture it replays (in-sample by
// design: the question is how much of the Section 2 headroom a table of
// per-signature expected hit counts can express, not how it
// generalizes).
type LearnedHeadroomResult struct {
	Sets, Assoc int
	Seed        uint64
	Rows        []LearnedHeadroomRow
}

// LearnedHeadroomRow is one benchmark's comparison. Every column scores
// the same captured stream: misses plus summed quantized cost for the
// learned policies, miss counts for the baselines and oracles.
type LearnedHeadroomRow struct {
	Bench    string
	Accesses uint64

	LRUMiss, LINMiss, SBARMiss, RandomMiss uint64
	BanditMiss, LearnedMiss                uint64
	OPTMiss, CostOPTMiss                   uint64

	LRUCost, BanditCost, LearnedCost, CostOPTCost uint64

	// TrainedSignatures counts model table entries training populated.
	TrainedSignatures int

	// RecoveredPct is the share of the LRU→Belady miss headroom the
	// trained predictor closes on this capture: 100 when it matches
	// Belady, 0 when it matches LRU, negative when it is worse than LRU.
	RecoveredPct float64
}

// recoveredPct computes the closed share of the lru→opt headroom.
func recoveredPct(lru, learned, opt uint64) float64 {
	if lru <= opt {
		return 0
	}
	return 100 * (float64(lru) - float64(learned)) / float64(lru-opt)
}

// LearnedHeadroom runs the learned-headroom experiment over the
// runner's benchmarks (fanned out on its worker pool).
func LearnedHeadroom(r *Runner) LearnedHeadroomResult {
	l2 := sim.DefaultConfig().L2
	sets, err := l2.SetCount()
	if err != nil {
		panic(err) // DefaultConfig is validated by construction
	}
	assoc := l2.Assoc
	seed := r.Seed
	out := LearnedHeadroomResult{Sets: sets, Assoc: assoc, Seed: seed}
	out.Rows = forBenches(r, r.Names(), func(b string) LearnedHeadroomRow {
		_, log := r.RunCaptured(b, sim.PolicySpec{Kind: sim.PolicyLRU})

		lru := oracle.ReplayOnline(log, sets, assoc, cache.NewLRU())
		lin := oracle.ReplayOnline(log, sets, assoc, core.NewLIN(4))
		rnd := oracle.ReplayOnline(log, sets, assoc, cache.NewRandom(seed+1))
		sbar := oracle.ReplayHybrid(log, sets, assoc, func(mtd *cache.Cache) core.Hybrid {
			return core.NewSBAR(mtd, core.SBARConfig{
				LeaderSets: 32,
				PselBits:   6,
				Lambda:     4,
				Selector:   core.NewSimpleStatic(sets, 32),
				Threads:    1,
			})
		})
		bandit := oracle.ReplayOnline(log, sets, assoc, learn.NewBandit(sets, assoc, seed+5))

		model, err := learn.Train(log.TrainingSamples(), learn.TrainConfig{Sets: sets, Assoc: assoc, Seed: seed + 7})
		if err != nil {
			panic(err) // live geometry is valid by construction
		}
		pred, err := learn.NewPredictor(model, sets, assoc)
		if err != nil {
			panic(err)
		}
		learned := oracle.ReplayOnline(log, sets, assoc, pred)

		cmp := oracle.Compare(log, sets, assoc)
		return LearnedHeadroomRow{
			Bench:    b,
			Accesses: log.Accesses(),

			LRUMiss:     lru.Misses,
			LINMiss:     lin.Misses,
			SBARMiss:    sbar.Misses,
			RandomMiss:  rnd.Misses,
			BanditMiss:  bandit.Misses,
			LearnedMiss: learned.Misses,
			OPTMiss:     cmp.OPT.Misses,
			CostOPTMiss: cmp.CostOPT.Misses,

			LRUCost:     lru.CostQSum,
			BanditCost:  bandit.CostQSum,
			LearnedCost: learned.CostQSum,
			CostOPTCost: cmp.CostOPT.CostQSum,

			TrainedSignatures: model.Trained(),
			RecoveredPct:      recoveredPct(lru.Misses, learned.Misses, cmp.OPT.Misses),
		}
	})
	return out
}

// table builds the per-benchmark comparison table.
func (f LearnedHeadroomResult) table() *table {
	t := newTable("Learned eviction vs baselines and oracles on captured LRU streams",
		"bench", "accesses",
		"miss lru", "miss lin", "miss sbar", "miss rand", "miss bandit", "miss learned", "miss opt", "miss copt",
		"cost bandit", "cost learned",
		"trained sigs", "recovered")
	for _, row := range f.Rows {
		t.rowf("%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s",
			row.Bench, row.Accesses,
			row.LRUMiss, row.LINMiss, row.SBARMiss, row.RandomMiss,
			row.BanditMiss, row.LearnedMiss, row.OPTMiss, row.CostOPTMiss,
			row.BanditCost, row.LearnedCost,
			row.TrainedSignatures, pct(row.RecoveredPct))
	}
	t.note("replay geometry %dx%d, seed %d; every column replays the same captured LRU demand stream; recovered = share of the lru→opt miss headroom the trained predictor closes (in-sample)",
		f.Sets, f.Assoc, f.Seed)
	return t
}
