package experiments

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"mlpcache/internal/metrics"
	"mlpcache/internal/sim"
)

// TestParallelRunnerMatchesSerial runs the same experiment serially and
// on a worker pool and requires identical results, identical memo
// tables, and intact per-run telemetry framing: every run.start boundary
// present exactly once, each fresh run's metrics document observed once.
func TestParallelRunnerMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	build := func(workers int) (*Runner, *[]metrics.Event, *[]string) {
		r := NewRunner(150_000, 42)
		r.Benchmarks = []string{"mcf", "parser", "ammp"}
		r.Workers = workers
		var (
			mu     sync.Mutex
			events []metrics.Event
			seen   []string
		)
		r.Trace = metrics.FuncTracer(func(ev metrics.Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		})
		r.OnResult = func(b string, spec sim.PolicySpec, res sim.Result) {
			mu.Lock()
			seen = append(seen, b+"|"+spec.String())
			mu.Unlock()
		}
		return r, &events, &seen
	}

	serial, _, serialSeen := build(1)
	parallel, parEvents, parSeen := build(4)
	want := Figure9(serial)
	got := Figure9(parallel)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel Figure9 diverged:\nserial   %+v\nparallel %+v", want, got)
	}
	if sk, pk := serial.CachedKeys(), parallel.CachedKeys(); !reflect.DeepEqual(sk, pk) {
		t.Fatalf("memo tables diverged:\nserial   %v\nparallel %v", sk, pk)
	}

	sort.Strings(*serialSeen)
	sort.Strings(*parSeen)
	if !reflect.DeepEqual(*serialSeen, *parSeen) {
		t.Fatalf("OnResult runs diverged:\nserial   %v\nparallel %v", *serialSeen, *parSeen)
	}

	// Framing: the event stream must decompose into one contiguous block
	// per fresh run, each opened by exactly one run.start.
	starts := map[string]int{}
	for _, ev := range *parEvents {
		if ev.Type == metrics.EventRunStart {
			starts[ev.Label+"|"+ev.Policy]++
		}
	}
	if len(starts) != len(*parSeen) {
		t.Fatalf("saw %d distinct run.start boundaries, want %d", len(starts), len(*parSeen))
	}
	for key, n := range starts {
		if n != 1 {
			t.Fatalf("run.start for %s emitted %d times", key, n)
		}
	}
}

// TestForBenchesOrder checks result ordering is input ordering at any
// worker count.
func TestForBenchesOrder(t *testing.T) {
	benches := []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7"}
	for _, workers := range []int{1, 3, 8} {
		r := &Runner{Workers: workers}
		out := forBenches(r, benches, func(b string) string { return b + "!" })
		for i, b := range benches {
			if out[i] != b+"!" {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, out[i], b+"!")
			}
		}
	}
}

// TestRunCapturedMemoizes checks that RunCaptured reuses both the
// result and the log, and that a plain Run first does not duplicate
// telemetry when the log is captured afterwards.
func TestRunCapturedMemoizes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(120_000, 42)
	r.Workers = 1
	var starts int
	r.Trace = metrics.FuncTracer(func(ev metrics.Event) {
		if ev.Type == metrics.EventRunStart {
			starts++
		}
	})
	spec := sim.PolicySpec{Kind: sim.PolicyLRU}

	res1 := r.Run("mcf", spec) // fresh: emits run.start
	res2, log := r.RunCaptured("mcf", spec)
	if starts != 1 {
		t.Fatalf("silent capture re-run emitted telemetry: %d run.start events", starts)
	}
	if res1.IPC != res2.IPC || res1.Mem.DemandMisses != res2.Mem.DemandMisses {
		t.Fatalf("captured re-run diverged from memoized result")
	}
	if log.LiveMisses != res1.Mem.DemandMisses {
		t.Fatalf("captured log %d misses, result %d", log.LiveMisses, res1.Mem.DemandMisses)
	}
	_, log2 := r.RunCaptured("mcf", spec)
	if log2 != log {
		t.Fatal("second RunCaptured did not reuse the memoized log")
	}
	if starts != 1 {
		t.Fatalf("memoized RunCaptured emitted telemetry: %d run.start events", starts)
	}
}
