package experiments

import (
	"fmt"
	"strings"

	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
	"mlpcache/internal/trace"
	"mlpcache/internal/workload"
)

// MulticoreMixes is the heterogeneous workload pairings the contention
// experiment runs: a cache-hostile stream against a cache-friendly one
// (mcf+mgrid), two miss-heavy competitors (mcf+art), and a mixed pairing
// (art+parser). Each mix shares the contended L2 between two cores.
var MulticoreMixes = [][]string{
	{"mcf", "art"},
	{"mcf", "mgrid"},
	{"art", "parser"},
}

// MulticoreRow is one (mix, policy) cell: per-core miss/cost slices plus
// the chip-wide aggregates.
type MulticoreRow struct {
	Mix    string
	Policy string
	// CoreMisses, CoreMPKI and CoreCost are per-core in mix order:
	// demand misses issued, misses per thousand own instructions, and
	// mean mlp-cost of the core's own misses.
	CoreMisses []uint64
	CoreMPKI   []float64
	CoreCost   []float64
	// Aggregates over the shared clock.
	AggMisses   uint64
	AggCost     float64
	AggIPC      float64
	CrossMerges uint64
}

// MulticoreResult tables the multi-core contention comparison.
type MulticoreResult struct {
	Rows []MulticoreRow
}

// multicorePolicies is the comparison set: the LRU baseline, fixed LIN,
// and SBAR with its per-thread partitioned selector.
var multicorePolicies = []sim.PolicySpec{
	{Kind: sim.PolicyLRU},
	{Kind: sim.PolicyLIN, Lambda: 4},
	{Kind: sim.PolicySBAR},
}

// MulticoreContention runs every mix under LRU, LIN and SBAR on two
// cores sharing the contended L2 and tables per-core plus aggregate
// misses and mlp-cost. Multi-core runs bypass the runner's memo table
// (the single-core Result cache cannot hold them) but honour its
// instruction budget, seed and cancellation context; core i seeds its
// workload with Seed+i, matching mlpsim -cores.
func MulticoreContention(r *Runner) MulticoreResult {
	var out MulticoreResult
	for _, mix := range MulticoreMixes {
		for _, spec := range multicorePolicies {
			res := r.runMulti(mix, spec)
			row := MulticoreRow{
				Mix:         strings.Join(mix, "+"),
				Policy:      spec.String(),
				AggMisses:   res.Mem.DemandMisses,
				AggCost:     res.AvgMLPCost(),
				AggIPC:      res.IPC(),
				CrossMerges: res.CrossCoreMerges,
			}
			for _, c := range res.Cores {
				row.CoreMisses = append(row.CoreMisses, c.Mem.DemandMisses)
				row.CoreMPKI = append(row.CoreMPKI, c.MPKI())
				row.CoreCost = append(row.CoreCost, c.AvgMLPCost())
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// runMulti executes one multi-core simulation on the runner's budget,
// routing failures through the runner's cancellation machinery.
func (r *Runner) runMulti(mix []string, spec sim.PolicySpec) sim.MultiResult {
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = r.Instructions
	cfg.Policy = spec
	srcs := buildMix(r, mix)
	res, err := sim.RunMultiContext(r.context(), cfg, srcs...)
	if err != nil {
		r.fail(err)
	}
	return res
}

// buildMix materializes one source per core; the mixes are compiled in,
// so an unknown name is a bug, not an input error.
func buildMix(r *Runner, mix []string) []trace.Source {
	srcs := make([]trace.Source, 0, len(mix))
	for i, b := range mix {
		w, ok := workload.ByName(b)
		if !ok {
			panic(simerr.New(simerr.ErrUnknownBenchmark, "experiments: unknown benchmark %q in mix", b))
		}
		srcs = append(srcs, w.Build(r.Seed+uint64(i)))
	}
	return srcs
}

// table builds the paper-style contention table.
func (f MulticoreResult) table() *table {
	t := newTable("Multi-core contention: 2 cores sharing the L2 — per-core and aggregate misses / mlp-cost",
		"mix", "policy", "core0 misses (cost)", "core1 misses (cost)", "aggregate")
	for _, row := range f.Rows {
		var cores []string
		for i := range row.CoreMisses {
			cores = append(cores, fmt.Sprintf("%d (%.1fc, MPKI %.1f)",
				row.CoreMisses[i], row.CoreCost[i], row.CoreMPKI[i]))
		}
		t.rowf("%s\t%s\t%s\t%d misses, %.1fc, IPC %.4f",
			row.Mix, row.Policy, strings.Join(cores, "\t"),
			row.AggMisses, row.AggCost, row.AggIPC)
	}
	t.note("per-core mlp-cost comes from each core's own MSHR clock (Algorithm 1 per thread); SBAR duels with one PSEL per thread")
	t.note("cross-core merges (misses joining another core's in-flight fetch) are counted once per joining access")
	return t
}
