package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// table is a small helper for paper-style text tables.
type table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) rowf(format string, args ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "\t"))
}

func (t *table) note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// WriteCSV writes the table as CSV: a comment row with the title, the
// header, then the data rows (notes are omitted).
func (t *table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.title}); err != nil {
		return err
	}
	if len(t.header) > 0 {
		if err := cw.Write(t.header); err != nil {
			return err
		}
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TableJSON is a table's machine-readable form, the payload of
// mlpexp -format json. Schema: "mlpcache.table/v1".
type TableJSON struct {
	Schema string     `json:"schema"`
	Title  string     `json:"title"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// TableSchema identifies the JSON table format.
const TableSchema = "mlpcache.table/v1"

// WriteJSON writes the table as one JSON object including the notes.
func (t *table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(TableJSON{
		Schema: TableSchema,
		Title:  t.title,
		Header: t.header,
		Rows:   t.rows,
		Notes:  t.notes,
	})
}

// Render writes the table to w.
func (t *table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.header, "\t"))
	}
	for _, r := range t.rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// sameSign reports whether two percentage deltas agree in direction,
// treating anything inside the dead band as neutral (matching either
// sign). It is the "shape holds" criterion EXPERIMENTS.md records.
func sameSign(measured, paper, deadBand float64) bool {
	if measured > -deadBand && measured < deadBand {
		return true
	}
	if paper > -deadBand && paper < deadBand {
		return true
	}
	return (measured > 0) == (paper > 0)
}
