package experiments

import (
	"fmt"
	"io"

	"mlpcache/internal/simerr"
)

// renderable is any experiment result that can print itself; every
// result also exposes its table for CSV export.
type renderable interface {
	Render(w io.Writer)
	table() *table
}

// AllIDs returns every experiment id in paper order.
func AllIDs() []string {
	return []string{
		"fig1", "fig2", "tab1", "tab2", "tab3", "fig3b",
		"fig4", "fig5", "fig8", "fig9", "fig10", "fig11", "ovh",
		"oracle-headroom", "learned-headroom",
	}
}

// SensitivityIDs returns the extension sweeps (the material of the
// paper's truncated Section 7) plus the multi-core contention study,
// runnable via mlpexp but not part of "all" since each costs many
// simulations.
func SensitivityIDs() []string {
	return []string{"sens-mem", "sens-cache", "sens-mshr", "sens-window", "stab", "cbs", "multicore-contention"}
}

// RunByID executes one experiment and renders it to w. A runner whose
// Context was cancelled mid-sweep returns the wrapped
// simerr.ErrCancelled instead of rendering a partial table.
func RunByID(r *Runner, id string, w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	res, err := resolve(r, id)
	if err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// resolve runs the experiment behind an id. A cancelled sweep unwinds
// the builder with a cancelAbort panic (see Runner.fail); it is caught
// here and handed back as the runner's recorded error.
func resolve(r *Runner, id string) (res renderable, err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if _, ok := p.(cancelAbort); !ok {
			panic(p)
		}
		res = nil
		if err = r.Err(); err == nil {
			err = simerr.New(simerr.ErrCancelled, "experiments: sweep cancelled")
		}
	}()
	switch id {
	case "fig1":
		res = Figure1()
	case "fig2":
		res = Figure2(r)
	case "tab1":
		res = Table1(r)
	case "tab2":
		res = Table2()
	case "tab3":
		res = Table3(r)
	case "fig3b":
		res = Figure3b()
	case "fig4":
		res = Figure4(r)
	case "fig5":
		res = Figure5(r)
	case "fig8":
		res = Figure8()
	case "fig9":
		res = Figure9(r)
	case "fig10":
		res = Figure10(r)
	case "fig11":
		res = Figure11(r)
	case "ovh":
		res = OverheadReport()
	case "oracle-headroom":
		res = OracleHeadroom(r)
	case "learned-headroom":
		res = LearnedHeadroom(r)
	case "sens-mem":
		res = SensitivityMemLatency(r)
	case "sens-cache":
		res = SensitivityCacheSize(r)
	case "sens-mshr":
		res = SensitivityMSHR(r)
	case "sens-window":
		res = SensitivityWindow(r)
	case "stab":
		res = Stability(r)
	case "cbs":
		res = CBSComparison(r)
	case "multicore-contention":
		res = MulticoreContention(r)
	default:
		return nil, fmt.Errorf("unknown experiment %q (known: %v plus %v)", id, AllIDs(), SensitivityIDs())
	}
	return res, nil
}

// RunByIDCSV executes one experiment and writes its data rows as CSV.
func RunByIDCSV(r *Runner, id string, w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	res, err := resolve(r, id)
	if err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	return res.table().WriteCSV(w)
}

// RunByIDJSON executes one experiment and writes its table as one JSON
// object (schema "mlpcache.table/v1").
func RunByIDJSON(r *Runner, id string, w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	res, err := resolve(r, id)
	if err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	return res.table().WriteJSON(w)
}
