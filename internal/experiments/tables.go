package experiments

import (
	"fmt"

	"mlpcache/internal/core"
	"mlpcache/internal/sim"
)

// Table2Result renders the live baseline machine configuration — the
// reproduction of the paper's Table 2, generated from the actual structs
// the simulator runs with so documentation cannot drift from code.
type Table2Result struct {
	Cfg sim.Config
}

// Table2 returns the baseline configuration report.
func Table2() Table2Result { return Table2Result{Cfg: sim.DefaultConfig()} }

// table builds the configuration table.
func (f Table2Result) table() *table {
	c := f.Cfg
	t := newTable("Table 2: baseline processor configuration (live simulator config)")
	t.rowf("core\t%d-wide fetch/issue/retire, %d-entry window, oldest-ready scheduling",
		c.CPU.FetchWidth, c.CPU.ROBEntries)
	t.rowf("latencies\tINT %d, MUL %d, FP %d, DIV %d cycles; %d-cycle min mispredict penalty",
		c.CPU.IntLat, c.CPU.MulLat, c.CPU.FPLat, c.CPU.DivLat, c.CPU.MispredictPenalty)
	t.rowf("L1 data\t%dKB, %dB lines, %d-way LRU, %d-cycle hit, %d mem ports",
		c.L1.SizeBytes/1024, c.L1.BlockBytes, c.L1.Assoc, c.L1Lat, c.CPU.MemPorts)
	t.rowf("L2 unified\t%dKB, %dB lines, %d-way, %d-cycle hit, %d-entry MSHR, %d-entry store buffer",
		c.L2.SizeBytes/1024, c.L2.BlockBytes, c.L2.Assoc, c.L2Lat,
		c.MSHR.Entries, c.CPU.StoreBufferEntries)
	t.rowf("memory\t%d DRAM banks, %d-cycle access; bank conflicts and queueing modeled",
		c.DRAM.Banks, c.DRAM.AccessCycles)
	t.rowf("bus\tsplit-transaction, %d-cycle block transfer; isolated miss = %d cycles",
		c.DRAM.BusCycles, c.DRAM.AccessCycles+c.DRAM.BusCycles)
	return t
}

// Figure3bResult is the cost-quantization table of Figure 3(b).
type Figure3bResult struct {
	Rows []Figure3bRow
}

// Figure3bRow maps one cost interval to its 3-bit code.
type Figure3bRow struct {
	Interval string
	CostQ    uint8
}

// Figure3b reproduces the quantization table from the live Quantize
// function.
func Figure3b() Figure3bResult {
	var out Figure3bResult
	for q := 0; q <= core.CostQMax; q++ {
		lo := q * core.QuantizeStep
		interval := fmt.Sprintf("%d to %d cycles", lo, lo+core.QuantizeStep-1)
		if q == core.CostQMax {
			interval = fmt.Sprintf("%d+ cycles", lo)
		}
		// Sanity: the live function must agree with the rendering.
		if core.Quantize(float64(lo)+1) != uint8(q) {
			panic("experiments: quantizer drifted from Figure 3b")
		}
		out.Rows = append(out.Rows, Figure3bRow{Interval: interval, CostQ: uint8(q)})
	}
	return out
}

// table builds the quantization table.
func (f Figure3bResult) table() *table {
	t := newTable("Figure 3(b): quantization of mlp-cost", "computed mlp-cost", "cost_q")
	for _, r := range f.Rows {
		t.rowf("%s\t%d", r.Interval, r.CostQ)
	}
	return t
}

// OverheadResult is the hardware storage accounting behind the paper's
// "1854 B, <0.2% of the 1 MB cache" claim.
type OverheadResult struct {
	Params   core.OverheadParams
	Overhead core.Overhead
	Fraction float64
}

// OverheadReport computes the storage model for the baseline machine.
func OverheadReport() OverheadResult {
	p := core.DefaultOverheadParams()
	return OverheadResult{
		Params:   p,
		Overhead: core.ComputeOverhead(p),
		Fraction: core.SBARFractionOfCache(p),
	}
}

// table builds the storage accounting.
func (f OverheadResult) table() *table {
	o := f.Overhead
	t := newTable("Hardware overhead (bits; 40-bit physical addresses assumed)",
		"component", "bits", "bytes")
	t.rowf("CCL (MSHR mlp_cost registers)\t%d\t%d", o.CCLBits, (o.CCLBits+7)/8)
	t.rowf("cost_q in main tag store (3b/line)\t%d\t%d", o.CostQBitsTotal, (o.CostQBitsTotal+7)/8)
	t.rowf("SBAR (leader-set ATD + PSEL)\t%d\t%d", o.SBARBits, o.SBARBytes())
	t.rowf("CBS-global (2 full ATDs + PSEL)\t%d\t%d", o.CBSGlobalBits, (o.CBSGlobalBits+7)/8)
	t.rowf("CBS-local (2 full ATDs + per-set PSEL)\t%d\t%d", o.CBSLocalBits, (o.CBSLocalBits+7)/8)
	t.note("paper reports SBAR at 1854 B (<0.2%% of the 1 MB cache); this model: %d B = %.3f%% of capacity",
		o.SBARBytes(), 100*f.Fraction)
	t.note("SBAR needs %dx fewer ATD entries than either CBS variant (1024/%d sets)",
		f.Params.Sets/f.Params.LeaderSets, f.Params.LeaderSets)
	return t
}
