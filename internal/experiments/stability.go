package experiments

import (
	"fmt"

	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
	"mlpcache/internal/workload"
)

// Seed-stability check: the workloads are synthetic, so a fair question
// is whether the reproduced effects are properties of the models or of a
// particular random seed. This experiment re-measures the Figure 5/9
// deltas across several seeds and reports mean and range; the signs must
// be stable for the reproduction to mean anything.

// StabilityResult aggregates multi-seed deltas.
type StabilityResult struct {
	Seeds []uint64
	Rows  []StabilityRow
}

// StabilityRow is one benchmark's cross-seed summary.
type StabilityRow struct {
	Bench                      string
	LINMean, LINMin, LINMax    float64 // LIN IPC delta %, across seeds
	SBARMean, SBARMin, SBARMax float64
	SignStable                 bool // every seed agrees with the mean's sign
}

// stabilityBenches cover a LIN-winner, a LIN-loser, and the phased case.
var stabilityBenches = []string{"mcf", "parser", "ammp"}

// Stability runs the three-policy comparison across three seeds.
func Stability(r *Runner) StabilityResult {
	res := StabilityResult{Seeds: []uint64{r.Seed, r.Seed + 101, r.Seed + 202}}
	for _, b := range stabilityBenches {
		w, ok := workload.ByName(b)
		if !ok {
			panic(simerr.New(simerr.ErrUnknownBenchmark, "experiments: unknown benchmark %q", b))
		}
		row := StabilityRow{Bench: b, SignStable: true}
		var linDeltas, sbarDeltas []float64
		for _, seed := range res.Seeds {
			run := func(spec sim.PolicySpec) sim.Result {
				cfg := sim.DefaultConfig()
				cfg.MaxInstructions = r.Instructions
				cfg.Policy = spec
				return sim.MustRun(cfg, w.Build(seed))
			}
			base := run(sim.PolicySpec{Kind: sim.PolicyLRU})
			lin := run(sim.PolicySpec{Kind: sim.PolicyLIN, Lambda: 4})
			sbar := run(sim.PolicySpec{Kind: sim.PolicySBAR})
			linDeltas = append(linDeltas, lin.IPCDeltaPercent(base))
			sbarDeltas = append(sbarDeltas, sbar.IPCDeltaPercent(base))
		}
		row.LINMean, row.LINMin, row.LINMax = summarize(linDeltas)
		row.SBARMean, row.SBARMin, row.SBARMax = summarize(sbarDeltas)
		for _, d := range linDeltas {
			// Treat near-zero deltas as sign-neutral.
			if (d > 1) != (row.LINMean > 1) && (d < -1) != (row.LINMean < -1) {
				row.SignStable = false
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func summarize(vals []float64) (mean, min, max float64) {
	min, max = vals[0], vals[0]
	for _, v := range vals {
		mean += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return mean / float64(len(vals)), min, max
}

// table builds the stability report.
func (f StabilityResult) table() *table {
	t := newTable(fmt.Sprintf("Seed stability: IPC delta vs LRU across %d seeds (mean [min, max])", len(f.Seeds)),
		"bench", "LIN", "SBAR", "sign")
	for _, r := range f.Rows {
		sign := "stable"
		if !r.SignStable {
			sign = "UNSTABLE"
		}
		t.rowf("%s\t%+.1f%% [%+.1f, %+.1f]\t%+.1f%% [%+.1f, %+.1f]\t%s",
			r.Bench, r.LINMean, r.LINMin, r.LINMax,
			r.SBARMean, r.SBARMin, r.SBARMax, sign)
	}
	t.note("a reproduction is only as good as its robustness to the seed; signs must hold everywhere")
	return t
}
