package experiments

import (
	"mlpcache/internal/cache"
)

// Figure 1 is the paper's motivating worked example: a loop touching
// parallel blocks P1..P4 (two burst intervals) and serial blocks S1..S3
// (three isolated intervals) against a fully-associative four-entry
// cache. Belady's OPT minimizes misses (4/iteration) yet stalls four
// times; a simple MLP-aware policy takes six misses but only two stalls.

// figure1P and figure1S are the block numbers for the P and S blocks.
var (
	figure1P = []uint64{0, 1, 2, 3}
	figure1S = []uint64{4, 5, 6}
)

// figure1Intervals is one loop iteration, grouped into the paper's
// intervals A→B, B→C, and the three isolated S accesses. Misses within
// one interval overlap in the instruction window and cost a single
// long-latency stall; misses in different intervals stall separately.
func figure1Intervals() [][]uint64 {
	return [][]uint64{
		{0, 1, 2, 3}, // A→B: P1 P2 P3 P4
		{3, 2, 1, 0}, // B→C: P4 P3 P2 P1
		{4},          // S1
		{5},          // S2
		{6},          // S3
	}
}

// figure1MLPAware is the example's MLP-aware policy: evict the
// least-recent P block; only if no P block is cached, evict the
// least-recent S block. (With a one-byte "block size" and a single set,
// the line tag is the block number, so the policy can classify lines.)
type figure1MLPAware struct{ cache.Base }

func (figure1MLPAware) Name() string { return "mlp-aware-example" }

func (figure1MLPAware) Victim(set cache.SetView) int {
	bestP, bestPRank := -1, 0
	bestAny, bestAnyRank := -1, 0
	for w := 0; w < set.Ways(); w++ {
		ln := set.Line(w)
		if !ln.Valid {
			return w
		}
		r := set.RecencyRank(w)
		if bestAny < 0 || r < bestAnyRank {
			bestAny, bestAnyRank = w, r
		}
		if ln.Tag <= figure1P[len(figure1P)-1] {
			if bestP < 0 || r < bestPRank {
				bestP, bestPRank = w, r
			}
		}
	}
	if bestP >= 0 {
		return bestP
	}
	return bestAny
}

// Figure1Result reports per-iteration steady-state misses and stalls for
// each policy, plus the paper's values.
type Figure1Result struct {
	Rows []Figure1Row
}

// Figure1Row is one policy's outcome.
type Figure1Row struct {
	Policy                   string
	MissesPerIter            float64
	StallsPerIter            float64
	PaperMisses, PaperStalls float64
}

// Figure1 reproduces the worked example exactly.
func Figure1() Figure1Result {
	const iters = 100
	const warmup = 10

	intervals := figure1Intervals()
	var stream []uint64
	var intervalOf []int // interval index (global) per access
	g := 0
	for it := 0; it < iters; it++ {
		for _, iv := range intervals {
			stream = append(stream, iv...)
			for range iv {
				intervalOf = append(intervalOf, g)
			}
			g++
		}
	}

	analyze := func(res cache.OfflineResult) (misses, stalls float64) {
		perIter := len(intervals)
		firstAccess := 0
		// Index of first access of the warmup-th iteration.
		for i, v := range intervalOf {
			if v == warmup*perIter {
				firstAccess = i
				break
			}
		}
		seen := map[int]bool{}
		var m, s float64
		for i := firstAccess; i < len(stream); i++ {
			if !res.Trace[i].Hit {
				m++
				if !seen[intervalOf[i]] {
					seen[intervalOf[i]] = true
					s++
				}
			}
		}
		n := float64(iters - warmup)
		return m / n, s / n
	}

	opt := cache.SimulateOPT(stream, 1, 4)
	lru := cache.SimulateOffline(stream, 1, 4, cache.NewLRU())
	mlp := cache.SimulateOffline(stream, 1, 4, figure1MLPAware{})

	var out Figure1Result
	for _, row := range []struct {
		name   string
		res    cache.OfflineResult
		pm, ps float64
	}{
		{"Belady OPT", opt, 4, 4},
		{"LRU", lru, 6, 4},
		{"MLP-aware", mlp, 6, 2},
	} {
		m, s := analyze(row.res)
		out.Rows = append(out.Rows, Figure1Row{
			Policy: row.name, MissesPerIter: m, StallsPerIter: s,
			PaperMisses: row.pm, PaperStalls: row.ps,
		})
	}
	return out
}

// table builds the paper-style table.
func (f Figure1Result) table() *table {
	t := newTable("Figure 1: P/S-block loop on a 4-entry fully-associative cache (steady state, per iteration)",
		"policy", "misses", "[paper]", "stalls", "[paper]")
	for _, r := range f.Rows {
		t.rowf("%s\t%.0f\t[%.0f]\t%.0f\t[%.0f]",
			r.Policy, r.MissesPerIter, r.PaperMisses, r.StallsPerIter, r.PaperStalls)
	}
	t.note("OPT minimizes misses but doubles the stalls of the MLP-aware policy")
	return t
}
