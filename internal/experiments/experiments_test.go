package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mlpcache/internal/sim"
)

func TestFigure1MatchesPaperExactly(t *testing.T) {
	res := Figure1()
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.MissesPerIter != r.PaperMisses {
			t.Errorf("%s: %v misses/iter, paper says %v", r.Policy, r.MissesPerIter, r.PaperMisses)
		}
		if r.StallsPerIter != r.PaperStalls {
			t.Errorf("%s: %v stalls/iter, paper says %v", r.Policy, r.StallsPerIter, r.PaperStalls)
		}
	}
}

func TestFigure3bTable(t *testing.T) {
	res := Figure3b()
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(res.Rows))
	}
	if res.Rows[0].Interval != "0 to 59 cycles" || res.Rows[7].Interval != "420+ cycles" {
		t.Fatalf("interval labels wrong: %+v", res.Rows)
	}
}

func TestFigure8Values(t *testing.T) {
	res := Figure8()
	// p=0.5 row is flat at 0.5; every row is non-decreasing over odd
	// points; and the k=32 column at p>=0.7 exceeds 0.95.
	for j := range res.Ks {
		if v := res.Curves[0][j]; v < 0.4999 || v > 0.5001 {
			t.Fatalf("p=0.5 curve not flat: %v", res.Curves[0])
		}
	}
	for i, p := range res.Ps {
		if p >= 0.7 && res.Curves[i][5] < 0.95 { // k=32
			t.Fatalf("p=%v k=32: %v < 0.95", p, res.Curves[i][5])
		}
	}
}

func TestOverheadReport(t *testing.T) {
	res := OverheadReport()
	if b := res.Overhead.SBARBytes(); b < 1836 || b > 1873 {
		t.Fatalf("SBAR bytes %d not within 1%% of 1854", b)
	}
	if res.Fraction >= 0.002 {
		t.Fatalf("fraction %v >= 0.2%%", res.Fraction)
	}
}

func TestTable2RendersLiveConfig(t *testing.T) {
	var buf bytes.Buffer
	Table2().Render(&buf)
	out := buf.String()
	for _, want := range []string{"128-entry window", "1024KB", "32-entry MSHR", "444"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(20_000, 1)
	r.Benchmarks = []string{"mcf"}
	a := r.Baseline("mcf")
	b := r.Baseline("mcf")
	if a.Cycles != b.Cycles {
		t.Fatal("memoized results differ")
	}
	if len(r.CachedKeys()) != 1 {
		t.Fatalf("cache holds %d keys, want 1", len(r.CachedKeys()))
	}
}

func TestRunByIDUnknown(t *testing.T) {
	r := NewRunner(1000, 1)
	if err := RunByID(r, "fig99", &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestAllIDsRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation suite in -short mode")
	}
	// A miniature pass over every experiment: tiny instruction budget,
	// two benchmarks. Verifies the full rendering path end to end.
	r := NewRunner(120_000, 1)
	r.Benchmarks = []string{"mcf", "parser"}
	for _, id := range AllIDs() {
		var buf bytes.Buffer
		if err := RunByID(r, id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", id)
		}
	}
}

func TestHeadlineShapesAtReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// The paper's two headline contrasts, at a reduced but meaningful
	// scale: LIN helps mcf and hurts parser; SBAR rescues parser.
	r := NewRunner(1_200_000, 42)

	mcfBase := r.Baseline("mcf")
	mcfLIN := r.Run("mcf", sim.PolicySpec{Kind: sim.PolicyLIN, Lambda: 4})
	if mcfLIN.IPC <= mcfBase.IPC {
		t.Errorf("mcf: LIN %.4f should beat LRU %.4f", mcfLIN.IPC, mcfBase.IPC)
	}

	parserBase := r.Baseline("parser")
	parserLIN := r.Run("parser", sim.PolicySpec{Kind: sim.PolicyLIN, Lambda: 4})
	parserSBAR := r.Run("parser", sim.PolicySpec{Kind: sim.PolicySBAR})
	if parserLIN.IPC >= parserBase.IPC {
		t.Errorf("parser: LIN %.4f should lose to LRU %.4f", parserLIN.IPC, parserBase.IPC)
	}
	if parserSBAR.IPC <= parserLIN.IPC {
		t.Errorf("parser: SBAR %.4f should rescue LIN's %.4f", parserSBAR.IPC, parserLIN.IPC)
	}
}

func TestSameSignHelper(t *testing.T) {
	cases := []struct {
		m, p, band float64
		want       bool
	}{
		{5, 3, 2, true},
		{-5, 3, 2, false},
		{1, -20, 2, true}, // inside dead band
		{-20, 1, 2, true}, // paper value inside dead band
		{-20, -3, 2, true},
	}
	for _, c := range cases {
		if got := sameSign(c.m, c.p, c.band); got != c.want {
			t.Errorf("sameSign(%v,%v,%v) = %v, want %v", c.m, c.p, c.band, got, c.want)
		}
	}
}

func TestSensitivityAndStabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(150_000, 7)
	for _, id := range SensitivityIDs() {
		var buf bytes.Buffer
		if err := RunByID(r, id, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", id)
		}
	}
}

func TestCSVRendering(t *testing.T) {
	r := NewRunner(1000, 1)
	var buf bytes.Buffer
	if err := RunByIDCSV(r, "fig8", &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Title comment + header + 5 p-rows.
	if len(lines) != 7 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "# Figure 8") && !strings.HasPrefix(lines[0], "\"# Figure 8") {
		t.Fatalf("missing title comment: %q", lines[0])
	}
	if !strings.Contains(lines[2], "0.500") {
		t.Fatalf("data row malformed: %q", lines[2])
	}
	if err := RunByIDCSV(r, "nope", &buf); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestTable3CompulsoryOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// The reproduced quantity for Table 3's compulsory column is the
	// ordering: the low group (art, mcf) must rank below the high group
	// (lucas, mgrid) even at reduced scale.
	r := NewRunner(1_000_000, 42)
	r.Benchmarks = []string{"art", "mcf", "lucas", "mgrid"}
	res := Table3(r)
	rank := map[string]int{}
	for i, name := range res.benchesByCompulsory() {
		rank[name] = i
	}
	for _, low := range []string{"art", "mcf"} {
		for _, high := range []string{"lucas", "mgrid"} {
			if rank[low] > rank[high] {
				t.Errorf("compulsory ordering violated: %s (%d) above %s (%d)",
					low, rank[low], high, rank[high])
			}
		}
	}
}
