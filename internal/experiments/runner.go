// Package experiments regenerates every table and figure of the paper's
// evaluation: the Figure 1 worked example, the Figure 2 mlp-cost
// distributions, the Table 1 delta statistics, the Table 3 benchmark
// summary, the LIN sweeps of Figures 4 and 5, the sampling analysis of
// Figure 8, the SBAR results of Figures 9 and 10, the ammp case study of
// Figure 11, the storage-overhead accounting, and the oracle-headroom
// comparison against offline Belady replays. Each experiment returns
// structured data and renders a paper-style text table.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mlpcache/internal/metrics"
	"mlpcache/internal/oracle"
	"mlpcache/internal/rescache"
	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
	"mlpcache/internal/workload"
)

// Runner executes benchmark×policy simulations with memoization, since
// the experiments share many configurations (every figure needs the LRU
// baseline, for instance). Per-benchmark work fans out over a worker
// pool (see Workers); the memo table is safe for concurrent use and
// duplicate in-flight configurations are coalesced into one simulation.
type Runner struct {
	// Instructions is the per-run instruction budget. The paper uses
	// 250M-instruction SimPoint slices; the synthetic workloads reach
	// steady state within a few million, which keeps the full suite
	// runnable in minutes. Figures report relative changes, which are
	// stable at this scale.
	Instructions uint64
	// Seed drives workload generation; a fixed seed makes every
	// experiment reproducible.
	Seed uint64
	// Benchmarks restricts the benchmark set (nil: all 14).
	Benchmarks []string

	// Workers caps how many simulations run concurrently when an
	// experiment fans out across benchmarks: 0 means GOMAXPROCS, 1
	// forces serial execution. Results are identical at any setting —
	// simulations are independent and memoized under a lock — and
	// telemetry framing is preserved (see below).
	Workers int

	// Capacity bounds the memo table: at most this many results stay
	// cached, evicted LRU (0: unbounded, the CLI default). Long-running
	// callers — the sweep service in particular — set it so sustained
	// traffic cannot grow the table without bound. Set before the first
	// Run; eviction never breaks singleflight dedup (internal/rescache).
	Capacity int

	// Context, when non-nil, cancels in-flight and future simulations:
	// each run polls it via sim.RunContext. The first cancellation is
	// recorded and reported by Err, and the experiment builder unwinds
	// immediately (RunByID and friends return the error instead of a
	// partial table). The mlpexp -timeout flag wires a deadline here.
	Context context.Context

	// Trace, when non-nil, is installed as every fresh simulation's
	// event tracer; a "run.start" boundary event (Label=benchmark,
	// Policy=spec) precedes each run's stream. When runs execute
	// concurrently each run's events are buffered and replayed as one
	// contiguous block behind its run.start, so the framing downstream
	// consumers split on survives parallelism. Memoized replays emit
	// nothing — their events were already streamed.
	Trace metrics.Tracer
	// SnapshotInterval, when non-zero and Trace is set, makes every
	// fresh simulation emit the snapshot.* gauge family through the
	// tracer every that many retired instructions (the mlpexp
	// -snapshot-interval flag; see sim.Config.SnapshotInterval). It
	// does not alter results, so memoization keys ignore it.
	SnapshotInterval uint64
	// OnResult, when non-nil, observes every fresh (non-memoized)
	// simulation's result; mlpexp uses it to append per-run metrics
	// documents to a JSONL file. Calls are serialized.
	OnResult func(bench string, spec sim.PolicySpec, res sim.Result)

	memoOnce sync.Once
	memo     *rescache.Cache[runEntry]
	errMu    sync.Mutex
	firstErr error
	// outMu serializes Trace/OnResult emission across worker goroutines.
	outMu sync.Mutex
	// arenaMu guards arenas, the free list of simulation arenas. An
	// arena is not safe for concurrent use, so each simulate call checks
	// one out exclusively and returns it when the run finishes; the list
	// therefore never grows past the worker-pool width, and every run
	// after the first warm-up draws its caches, MSHR files and blockmap
	// tables from recycled storage instead of the heap.
	arenaMu sync.Mutex
	arenas  []*sim.Arena
}

// runEntry is one memoized simulation: the result, plus the captured
// oracle access log when RunCaptured has recorded one.
type runEntry struct {
	res sim.Result
	log *oracle.Log
}

// NewRunner returns a Runner with the given per-run instruction budget.
func NewRunner(instructions, seed uint64) *Runner {
	return &Runner{Instructions: instructions, Seed: seed}
}

// table returns the memo cache, building it on first use with the
// configured Capacity.
func (r *Runner) table() *rescache.Cache[runEntry] {
	r.memoOnce.Do(func() {
		capacity := r.Capacity
		if capacity < 0 {
			capacity = 0
		}
		r.memo = rescache.New[runEntry](capacity)
	})
	return r.memo
}

// Validate checks that every benchmark the runner is restricted to
// exists in the workload registry and that the run parameters are sane,
// wrapping failures in simerr.ErrUnknownBenchmark / simerr.ErrBadConfig.
// RunByID and RunByIDCSV call it before running anything, so a typo'd
// -bench flag surfaces as one typed error instead of a panic mid-suite.
func (r *Runner) Validate() error {
	for _, b := range r.Benchmarks {
		if _, ok := workload.ByName(b); !ok {
			return simerr.New(simerr.ErrUnknownBenchmark,
				"experiments: unknown benchmark %q (known: %v)", b, workload.Names())
		}
	}
	if r.Instructions == 0 {
		return simerr.New(simerr.ErrBadConfig, "experiments: instruction budget must be positive")
	}
	if r.Workers < 0 {
		return simerr.New(simerr.ErrBadConfig, "experiments: workers must be >= 0, got %d", r.Workers)
	}
	if r.Capacity < 0 {
		return simerr.New(simerr.ErrBadConfig, "experiments: capacity must be >= 0, got %d", r.Capacity)
	}
	return nil
}

// Names returns the benchmark list this runner covers.
func (r *Runner) Names() []string {
	if len(r.Benchmarks) > 0 {
		return r.Benchmarks
	}
	return workload.Names()
}

// context resolves the runner's cancellation context.
func (r *Runner) context() context.Context {
	if r.Context != nil {
		return r.Context
	}
	return context.Background()
}

// Err reports the first cancellation (or other run failure) the runner
// observed; experiments render nothing useful after one, so RunByID and
// friends check it before emitting output.
func (r *Runner) Err() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.firstErr
}

// noteErr records the first failure.
func (r *Runner) noteErr(err error) {
	r.errMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
}

// workers resolves the effective pool size.
func (r *Runner) workers() int {
	if r.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if r.Workers < 1 {
		return 1
	}
	return r.Workers
}

// forBenches maps fn over the benchmarks on the runner's worker pool,
// preserving input order in the result slice. With one worker it
// degenerates to a plain loop. (A package function rather than a method
// because methods cannot take type parameters.)
func forBenches[T any](r *Runner, benches []string, fn func(bench string) T) []T {
	out := make([]T, len(benches))
	n := r.workers()
	if n > len(benches) {
		n = len(benches)
	}
	if n <= 1 {
		for i, b := range benches {
			out[i] = fn(b)
		}
		return out
	}
	sem := make(chan struct{}, n)
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			// A panic in a worker goroutine (cancelAbort, or a genuine
			// simulator bug) would kill the process before resolve's
			// recover could see it; capture the first one and re-throw
			// it from the caller's goroutine after the pool settles.
			defer func() {
				if p := recover(); p != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = p
					}
					panicMu.Unlock()
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = fn(b)
		}(i, b)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}

// Run simulates one benchmark under one policy, memoized.
func (r *Runner) Run(bench string, spec sim.PolicySpec) sim.Result {
	return r.run(bench, spec, 0, 0)
}

// RunSeries is Run with Figure 11 time-series sampling enabled.
func (r *Runner) RunSeries(bench string, spec sim.PolicySpec, interval uint64) sim.Result {
	return r.run(bench, spec, interval, 0)
}

// RunEpoch is Run with periodic leader reselection (rand-dynamic SBAR).
func (r *Runner) RunEpoch(bench string, spec sim.PolicySpec, epoch uint64) sim.Result {
	return r.run(bench, spec, 0, epoch)
}

func (r *Runner) key(bench string, spec sim.PolicySpec, interval, epoch uint64) string {
	return fmt.Sprintf("%s|%+v|%d|%d|%d|%d", bench, spec, r.Instructions, r.Seed, interval, epoch)
}

func (r *Runner) run(bench string, spec sim.PolicySpec, interval, epoch uint64) sim.Result {
	e, err := r.table().DoIf(r.context(), r.key(bench, spec, interval, epoch), nil,
		func(runEntry, bool) (runEntry, error) {
			res, err := r.simulate(bench, spec, interval, epoch, nil, false)
			return runEntry{res: res}, err
		})
	if err != nil {
		r.fail(err)
		return sim.Result{}
	}
	return e.res
}

// cancelAbort is the panic value fail throws on cancellation. Builders
// dereference result internals (histograms, series), so a cancelled run
// cannot hand back a zero Result and let the table loop continue — the
// builder unwinds instead, and resolve converts the abort back into the
// runner's recorded Err.
type cancelAbort struct{}

// fail routes a run error: cancellations are recorded for Err and abort
// the experiment builder via a cancelAbort panic that resolve recovers;
// anything else is the old MustRun contract, a simulator bug on
// compiled-in inputs, and panics into the run boundary for real.
func (r *Runner) fail(err error) {
	if errors.Is(err, simerr.ErrCancelled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		if !errors.Is(err, simerr.ErrCancelled) {
			err = simerr.Wrap(simerr.ErrCancelled, err, "experiments: sweep cancelled")
		}
		r.noteErr(err)
		panic(cancelAbort{})
	}
	panic(err)
}

// getArena checks an arena out of the free list, building one when the
// list is empty (cold start, or more workers than past peak).
func (r *Runner) getArena() *sim.Arena {
	r.arenaMu.Lock()
	defer r.arenaMu.Unlock()
	if n := len(r.arenas); n > 0 {
		a := r.arenas[n-1]
		r.arenas = r.arenas[:n-1]
		return a
	}
	return sim.NewArena()
}

// putArena returns an arena for the next run to reuse.
func (r *Runner) putArena(a *sim.Arena) {
	r.arenaMu.Lock()
	r.arenas = append(r.arenas, a)
	r.arenaMu.Unlock()
}

// ArenaStats sums recycling counters across the runner's arena pool;
// mlpexp reports them after a suite so the reuse rate is visible.
func (r *Runner) ArenaStats() sim.ArenaStats {
	r.arenaMu.Lock()
	defer r.arenaMu.Unlock()
	var total sim.ArenaStats
	for _, a := range r.arenas {
		s := a.Stats()
		total.CacheReuses += s.CacheReuses
		total.CacheBuilds += s.CacheBuilds
		total.MSHRReuses += s.MSHRReuses
		total.MSHRBuilds += s.MSHRBuilds
		total.CPUReuses += s.CPUReuses
		total.CPUBuilds += s.CPUBuilds
		total.TableReuses += s.TableReuses
		total.TableBuilds += s.TableBuilds
	}
	return total
}

// bufTracer collects one concurrent run's events for contiguous replay.
type bufTracer struct{ events []metrics.Event }

func (b *bufTracer) Emit(ev metrics.Event) { b.events = append(b.events, ev) }

// simulate executes one fresh simulation. silent suppresses Trace and
// OnResult — used when a memoized result is re-run only to capture its
// access stream, whose telemetry was already emitted the first time.
func (r *Runner) simulate(bench string, spec sim.PolicySpec, interval, epoch uint64,
	capture sim.AccessObserver, silent bool) (sim.Result, error) {

	w, ok := workload.ByName(bench)
	if !ok {
		// Validate catches external requests; reaching this is a bug.
		panic(simerr.New(simerr.ErrUnknownBenchmark, "experiments: unknown benchmark %q", bench))
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = r.Instructions
	cfg.Policy = spec
	cfg.SampleInterval = interval
	cfg.EpochInstructions = epoch
	cfg.Capture = capture

	// Recycle bulk simulator state across the suite's many runs. The
	// arena is held exclusively for the duration of this run, so the
	// worker pool never shares one concurrently.
	arena := r.getArena()
	defer r.putArena(arena)
	cfg.Arena = arena

	trace := r.Trace
	onResult := r.OnResult
	if silent {
		trace, onResult = nil, nil
	}
	if trace != nil {
		cfg.SnapshotInterval = r.SnapshotInterval
	}
	start := metrics.Event{Type: metrics.EventRunStart, Label: bench, Policy: spec.String()}

	if r.workers() > 1 {
		// Buffer events so concurrent runs' streams don't interleave;
		// replay them contiguously behind run.start under the output
		// lock, and serialize OnResult with them.
		var buf *bufTracer
		if trace != nil {
			buf = &bufTracer{}
			cfg.Trace = buf
		}
		res, err := sim.RunContext(r.context(), cfg, w.Build(r.Seed))
		if err != nil {
			return sim.Result{}, err
		}
		if trace != nil || onResult != nil {
			r.outMu.Lock()
			defer r.outMu.Unlock()
			if trace != nil {
				trace.Emit(start)
				for _, ev := range buf.events {
					trace.Emit(ev)
				}
			}
			if onResult != nil {
				onResult(bench, spec, res)
			}
		}
		return res, nil
	}

	if trace != nil {
		trace.Emit(start)
		cfg.Trace = trace
	}
	res, err := sim.RunContext(r.context(), cfg, w.Build(r.Seed))
	if err != nil {
		return sim.Result{}, err
	}
	if onResult != nil {
		onResult(bench, spec, res)
	}
	return res, nil
}

// RunCaptured is Run with an oracle capture sink attached: it returns
// the result plus the captured access log, both memoized. If the plain
// result is already cached but no log exists yet, the simulation re-runs
// silently (no Trace events, no OnResult call) purely to record the
// stream — the run is deterministic, so the result is identical and its
// telemetry must not be emitted twice.
func (r *Runner) RunCaptured(bench string, spec sim.PolicySpec) (sim.Result, *oracle.Log) {
	e, err := r.table().DoIf(r.context(), r.key(bench, spec, 0, 0),
		func(e runEntry) bool { return e.log != nil },
		func(prev runEntry, cached bool) (runEntry, error) {
			cap := oracle.NewCapture()
			res, err := r.simulate(bench, spec, 0, 0, cap, cached)
			if err != nil {
				return runEntry{}, err
			}
			return runEntry{res: res, log: cap.Log()}, nil
		})
	if err != nil {
		r.fail(err)
		return sim.Result{}, oracle.NewCapture().Log()
	}
	return e.res, e.log
}

// Baseline returns the benchmark's LRU result.
func (r *Runner) Baseline(bench string) sim.Result {
	return r.Run(bench, sim.PolicySpec{Kind: sim.PolicyLRU})
}

// CachedKeys lists memoized run keys (for tests).
func (r *Runner) CachedKeys() []string {
	keys := r.table().Keys()
	sort.Strings(keys)
	return keys
}
