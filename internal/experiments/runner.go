// Package experiments regenerates every table and figure of the paper's
// evaluation: the Figure 1 worked example, the Figure 2 mlp-cost
// distributions, the Table 1 delta statistics, the Table 3 benchmark
// summary, the LIN sweeps of Figures 4 and 5, the sampling analysis of
// Figure 8, the SBAR results of Figures 9 and 10, the ammp case study of
// Figure 11, and the storage-overhead accounting. Each experiment returns
// structured data and renders a paper-style text table.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"mlpcache/internal/metrics"
	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
	"mlpcache/internal/workload"
)

// Runner executes benchmark×policy simulations with memoization, since
// the experiments share many configurations (every figure needs the LRU
// baseline, for instance).
type Runner struct {
	// Instructions is the per-run instruction budget. The paper uses
	// 250M-instruction SimPoint slices; the synthetic workloads reach
	// steady state within a few million, which keeps the full suite
	// runnable in minutes. Figures report relative changes, which are
	// stable at this scale.
	Instructions uint64
	// Seed drives workload generation; a fixed seed makes every
	// experiment reproducible.
	Seed uint64
	// Benchmarks restricts the benchmark set (nil: all 14).
	Benchmarks []string

	// Trace, when non-nil, is installed as every fresh simulation's
	// event tracer; a "run.start" boundary event (Label=benchmark,
	// Policy=spec) precedes each run's stream. Memoized replays emit
	// nothing — their events were already streamed.
	Trace metrics.Tracer
	// OnResult, when non-nil, observes every fresh (non-memoized)
	// simulation's result; mlpexp uses it to append per-run metrics
	// documents to a JSONL file.
	OnResult func(bench string, spec sim.PolicySpec, res sim.Result)

	mu    sync.Mutex
	cache map[string]sim.Result
}

// NewRunner returns a Runner with the given per-run instruction budget.
func NewRunner(instructions, seed uint64) *Runner {
	return &Runner{
		Instructions: instructions,
		Seed:         seed,
		cache:        make(map[string]sim.Result),
	}
}

// Validate checks that every benchmark the runner is restricted to
// exists in the workload registry and that the run parameters are sane,
// wrapping failures in simerr.ErrUnknownBenchmark / simerr.ErrBadConfig.
// RunByID and RunByIDCSV call it before running anything, so a typo'd
// -bench flag surfaces as one typed error instead of a panic mid-suite.
func (r *Runner) Validate() error {
	for _, b := range r.Benchmarks {
		if _, ok := workload.ByName(b); !ok {
			return simerr.New(simerr.ErrUnknownBenchmark,
				"experiments: unknown benchmark %q (known: %v)", b, workload.Names())
		}
	}
	if r.Instructions == 0 {
		return simerr.New(simerr.ErrBadConfig, "experiments: instruction budget must be positive")
	}
	return nil
}

// Names returns the benchmark list this runner covers.
func (r *Runner) Names() []string {
	if len(r.Benchmarks) > 0 {
		return r.Benchmarks
	}
	return workload.Names()
}

// Run simulates one benchmark under one policy, memoized.
func (r *Runner) Run(bench string, spec sim.PolicySpec) sim.Result {
	return r.run(bench, spec, 0, 0)
}

// RunSeries is Run with Figure 11 time-series sampling enabled.
func (r *Runner) RunSeries(bench string, spec sim.PolicySpec, interval uint64) sim.Result {
	return r.run(bench, spec, interval, 0)
}

// RunEpoch is Run with periodic leader reselection (rand-dynamic SBAR).
func (r *Runner) RunEpoch(bench string, spec sim.PolicySpec, epoch uint64) sim.Result {
	return r.run(bench, spec, 0, epoch)
}

func (r *Runner) run(bench string, spec sim.PolicySpec, interval, epoch uint64) sim.Result {
	key := fmt.Sprintf("%s|%+v|%d|%d|%d|%d", bench, spec, r.Instructions, r.Seed, interval, epoch)
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res
	}
	r.mu.Unlock()

	w, ok := workload.ByName(bench)
	if !ok {
		// Validate catches external requests; reaching this is a bug.
		panic(simerr.New(simerr.ErrUnknownBenchmark, "experiments: unknown benchmark %q", bench))
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = r.Instructions
	cfg.Policy = spec
	cfg.SampleInterval = interval
	cfg.EpochInstructions = epoch
	if r.Trace != nil {
		r.Trace.Emit(metrics.Event{
			Type: metrics.EventRunStart, Label: bench, Policy: spec.String(),
		})
		cfg.Trace = r.Trace
	}
	res := sim.MustRun(cfg, w.Build(r.Seed))
	if r.OnResult != nil {
		r.OnResult(bench, spec, res)
	}

	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res
}

// Baseline returns the benchmark's LRU result.
func (r *Runner) Baseline(bench string) sim.Result {
	return r.Run(bench, sim.PolicySpec{Kind: sim.PolicyLRU})
}

// CachedKeys lists memoized run keys (for tests).
func (r *Runner) CachedKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.cache))
	for k := range r.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
