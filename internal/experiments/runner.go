// Package experiments regenerates every table and figure of the paper's
// evaluation: the Figure 1 worked example, the Figure 2 mlp-cost
// distributions, the Table 1 delta statistics, the Table 3 benchmark
// summary, the LIN sweeps of Figures 4 and 5, the sampling analysis of
// Figure 8, the SBAR results of Figures 9 and 10, the ammp case study of
// Figure 11, the storage-overhead accounting, and the oracle-headroom
// comparison against offline Belady replays. Each experiment returns
// structured data and renders a paper-style text table.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mlpcache/internal/metrics"
	"mlpcache/internal/oracle"
	"mlpcache/internal/sim"
	"mlpcache/internal/simerr"
	"mlpcache/internal/workload"
)

// Runner executes benchmark×policy simulations with memoization, since
// the experiments share many configurations (every figure needs the LRU
// baseline, for instance). Per-benchmark work fans out over a worker
// pool (see Workers); the memo table is safe for concurrent use and
// duplicate in-flight configurations are coalesced into one simulation.
type Runner struct {
	// Instructions is the per-run instruction budget. The paper uses
	// 250M-instruction SimPoint slices; the synthetic workloads reach
	// steady state within a few million, which keeps the full suite
	// runnable in minutes. Figures report relative changes, which are
	// stable at this scale.
	Instructions uint64
	// Seed drives workload generation; a fixed seed makes every
	// experiment reproducible.
	Seed uint64
	// Benchmarks restricts the benchmark set (nil: all 14).
	Benchmarks []string

	// Workers caps how many simulations run concurrently when an
	// experiment fans out across benchmarks: 0 means GOMAXPROCS, 1
	// forces serial execution. Results are identical at any setting —
	// simulations are independent and memoized under a lock — and
	// telemetry framing is preserved (see below).
	Workers int

	// Trace, when non-nil, is installed as every fresh simulation's
	// event tracer; a "run.start" boundary event (Label=benchmark,
	// Policy=spec) precedes each run's stream. When runs execute
	// concurrently each run's events are buffered and replayed as one
	// contiguous block behind its run.start, so the framing downstream
	// consumers split on survives parallelism. Memoized replays emit
	// nothing — their events were already streamed.
	Trace metrics.Tracer
	// SnapshotInterval, when non-zero and Trace is set, makes every
	// fresh simulation emit the snapshot.* gauge family through the
	// tracer every that many retired instructions (the mlpexp
	// -snapshot-interval flag; see sim.Config.SnapshotInterval). It
	// does not alter results, so memoization keys ignore it.
	SnapshotInterval uint64
	// OnResult, when non-nil, observes every fresh (non-memoized)
	// simulation's result; mlpexp uses it to append per-run metrics
	// documents to a JSONL file. Calls are serialized.
	OnResult func(bench string, spec sim.PolicySpec, res sim.Result)

	mu       sync.Mutex
	cache    map[string]sim.Result
	logs     map[string]*oracle.Log
	inflight map[string]chan struct{}
	// outMu serializes Trace/OnResult emission across worker goroutines.
	outMu sync.Mutex
}

// NewRunner returns a Runner with the given per-run instruction budget.
func NewRunner(instructions, seed uint64) *Runner {
	return &Runner{
		Instructions: instructions,
		Seed:         seed,
		cache:        make(map[string]sim.Result),
		logs:         make(map[string]*oracle.Log),
		inflight:     make(map[string]chan struct{}),
	}
}

// Validate checks that every benchmark the runner is restricted to
// exists in the workload registry and that the run parameters are sane,
// wrapping failures in simerr.ErrUnknownBenchmark / simerr.ErrBadConfig.
// RunByID and RunByIDCSV call it before running anything, so a typo'd
// -bench flag surfaces as one typed error instead of a panic mid-suite.
func (r *Runner) Validate() error {
	for _, b := range r.Benchmarks {
		if _, ok := workload.ByName(b); !ok {
			return simerr.New(simerr.ErrUnknownBenchmark,
				"experiments: unknown benchmark %q (known: %v)", b, workload.Names())
		}
	}
	if r.Instructions == 0 {
		return simerr.New(simerr.ErrBadConfig, "experiments: instruction budget must be positive")
	}
	if r.Workers < 0 {
		return simerr.New(simerr.ErrBadConfig, "experiments: workers must be >= 0, got %d", r.Workers)
	}
	return nil
}

// Names returns the benchmark list this runner covers.
func (r *Runner) Names() []string {
	if len(r.Benchmarks) > 0 {
		return r.Benchmarks
	}
	return workload.Names()
}

// workers resolves the effective pool size.
func (r *Runner) workers() int {
	if r.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if r.Workers < 1 {
		return 1
	}
	return r.Workers
}

// forBenches maps fn over the benchmarks on the runner's worker pool,
// preserving input order in the result slice. With one worker it
// degenerates to a plain loop. (A package function rather than a method
// because methods cannot take type parameters.)
func forBenches[T any](r *Runner, benches []string, fn func(bench string) T) []T {
	out := make([]T, len(benches))
	n := r.workers()
	if n > len(benches) {
		n = len(benches)
	}
	if n <= 1 {
		for i, b := range benches {
			out[i] = fn(b)
		}
		return out
	}
	sem := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = fn(b)
		}(i, b)
	}
	wg.Wait()
	return out
}

// Run simulates one benchmark under one policy, memoized.
func (r *Runner) Run(bench string, spec sim.PolicySpec) sim.Result {
	return r.run(bench, spec, 0, 0)
}

// RunSeries is Run with Figure 11 time-series sampling enabled.
func (r *Runner) RunSeries(bench string, spec sim.PolicySpec, interval uint64) sim.Result {
	return r.run(bench, spec, interval, 0)
}

// RunEpoch is Run with periodic leader reselection (rand-dynamic SBAR).
func (r *Runner) RunEpoch(bench string, spec sim.PolicySpec, epoch uint64) sim.Result {
	return r.run(bench, spec, 0, epoch)
}

func (r *Runner) key(bench string, spec sim.PolicySpec, interval, epoch uint64) string {
	return fmt.Sprintf("%s|%+v|%d|%d|%d|%d", bench, spec, r.Instructions, r.Seed, interval, epoch)
}

// claim resolves key against the memo table: a cached result returns
// (res, nil, false); an in-flight run returns its done channel to wait
// on; otherwise the caller becomes the owner and must call finish.
func (r *Runner) claim(key string) (res sim.Result, wait chan struct{}, owner bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if res, ok := r.cache[key]; ok {
		return res, nil, false
	}
	if ch, ok := r.inflight[key]; ok {
		return sim.Result{}, ch, false
	}
	if r.inflight == nil {
		r.inflight = make(map[string]chan struct{})
	}
	ch := make(chan struct{})
	r.inflight[key] = ch
	return sim.Result{}, ch, true
}

// finish publishes an owned run's result and releases waiters.
func (r *Runner) finish(key string, res sim.Result, ch chan struct{}, log *oracle.Log) {
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]sim.Result)
	}
	r.cache[key] = res
	if log != nil {
		if r.logs == nil {
			r.logs = make(map[string]*oracle.Log)
		}
		r.logs[key] = log
	}
	delete(r.inflight, key)
	r.mu.Unlock()
	close(ch)
}

func (r *Runner) run(bench string, spec sim.PolicySpec, interval, epoch uint64) sim.Result {
	key := r.key(bench, spec, interval, epoch)
	for {
		res, wait, owner := r.claim(key)
		if owner {
			res = r.simulate(bench, spec, interval, epoch, nil, false)
			r.finish(key, res, r.inflightChan(key), nil)
			return res
		}
		if wait == nil {
			return res
		}
		<-wait
	}
}

// inflightChan re-fetches the owner's done channel (claim registered it).
func (r *Runner) inflightChan(key string) chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inflight[key]
}

// bufTracer collects one concurrent run's events for contiguous replay.
type bufTracer struct{ events []metrics.Event }

func (b *bufTracer) Emit(ev metrics.Event) { b.events = append(b.events, ev) }

// simulate executes one fresh simulation. silent suppresses Trace and
// OnResult — used when a memoized result is re-run only to capture its
// access stream, whose telemetry was already emitted the first time.
func (r *Runner) simulate(bench string, spec sim.PolicySpec, interval, epoch uint64,
	capture sim.AccessObserver, silent bool) sim.Result {

	w, ok := workload.ByName(bench)
	if !ok {
		// Validate catches external requests; reaching this is a bug.
		panic(simerr.New(simerr.ErrUnknownBenchmark, "experiments: unknown benchmark %q", bench))
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = r.Instructions
	cfg.Policy = spec
	cfg.SampleInterval = interval
	cfg.EpochInstructions = epoch
	cfg.Capture = capture

	trace := r.Trace
	onResult := r.OnResult
	if silent {
		trace, onResult = nil, nil
	}
	if trace != nil {
		cfg.SnapshotInterval = r.SnapshotInterval
	}
	start := metrics.Event{Type: metrics.EventRunStart, Label: bench, Policy: spec.String()}

	if r.workers() > 1 {
		// Buffer events so concurrent runs' streams don't interleave;
		// replay them contiguously behind run.start under the output
		// lock, and serialize OnResult with them.
		var buf *bufTracer
		if trace != nil {
			buf = &bufTracer{}
			cfg.Trace = buf
		}
		res := sim.MustRun(cfg, w.Build(r.Seed))
		if trace != nil || onResult != nil {
			r.outMu.Lock()
			defer r.outMu.Unlock()
			if trace != nil {
				trace.Emit(start)
				for _, ev := range buf.events {
					trace.Emit(ev)
				}
			}
			if onResult != nil {
				onResult(bench, spec, res)
			}
		}
		return res
	}

	if trace != nil {
		trace.Emit(start)
		cfg.Trace = trace
	}
	res := sim.MustRun(cfg, w.Build(r.Seed))
	if onResult != nil {
		onResult(bench, spec, res)
	}
	return res
}

// RunCaptured is Run with an oracle capture sink attached: it returns
// the result plus the captured access log, both memoized. If the plain
// result is already cached but no log exists yet, the simulation re-runs
// silently (no Trace events, no OnResult call) purely to record the
// stream — the run is deterministic, so the result is identical and its
// telemetry must not be emitted twice.
func (r *Runner) RunCaptured(bench string, spec sim.PolicySpec) (sim.Result, *oracle.Log) {
	key := r.key(bench, spec, 0, 0)
	for {
		r.mu.Lock()
		if log, ok := r.logs[key]; ok {
			res := r.cache[key]
			r.mu.Unlock()
			return res, log
		}
		_, cached := r.cache[key]
		if ch, busy := r.inflight[key]; busy {
			r.mu.Unlock()
			<-ch
			continue
		}
		if r.inflight == nil {
			r.inflight = make(map[string]chan struct{})
		}
		ch := make(chan struct{})
		r.inflight[key] = ch
		r.mu.Unlock()

		cap := oracle.NewCapture()
		res := r.simulate(bench, spec, 0, 0, cap, cached)
		log := cap.Log()
		r.finish(key, res, ch, log)
		return res, log
	}
}

// Baseline returns the benchmark's LRU result.
func (r *Runner) Baseline(bench string) sim.Result {
	return r.Run(bench, sim.PolicySpec{Kind: sim.PolicyLRU})
}

// CachedKeys lists memoized run keys (for tests).
func (r *Runner) CachedKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.cache))
	for k := range r.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
