package experiments

import (
	"fmt"

	"mlpcache/internal/workload"
)

// Figure2Result is the per-benchmark mlp-cost distribution under the LRU
// baseline (Figure 2): eight 60-cycle bins, the last collecting 420+.
type Figure2Result struct {
	Rows []Figure2Row
}

// Figure2Row is one benchmark's distribution.
type Figure2Row struct {
	Bench   string
	Percent []float64
	Mean    float64
	Misses  uint64
	Spark   string
}

// Figure2 reproduces Figure 2.
func Figure2(r *Runner) Figure2Result {
	var out Figure2Result
	out.Rows = forBenches(r, r.Names(), func(b string) Figure2Row {
		base := r.Baseline(b)
		return Figure2Row{
			Bench:   b,
			Percent: base.CostHist.Percent(),
			Mean:    base.CostHist.Mean(),
			Misses:  base.CostHist.Total(),
			Spark:   base.CostHist.Sparkline(),
		}
	})
	return out
}

// table builds the paper-style table.
func (f Figure2Result) table() *table {
	t := newTable("Figure 2: distribution of mlp-cost under LRU (percent of misses per 60-cycle bin)",
		"bench", "0-59", "60-119", "120-179", "180-239", "240-299", "300-359", "360-419", "420+", "mean", "shape")
	for _, row := range f.Rows {
		cells := []string{row.Bench}
		for _, p := range row.Percent {
			cells = append(cells, fmt.Sprintf("%.0f%%", p))
		}
		cells = append(cells, fmt.Sprintf("%.0f", row.Mean), row.Spark)
		t.row(cells...)
	}
	t.note("an isolated miss costs 444 cycles on the baseline machine and lands in the 420+ bin")
	return t
}

// paperTable1 records the paper's Table 1 delta classes (percent of
// deltas <60, 60-119, ≥120) for side-by-side reporting. The paper's
// average-delta row survives only for the three benchmarks §5.2 quotes.
var paperTable1 = map[string][3]float64{
	"art": {86, 7, 7}, "mcf": {86, 7, 7}, "twolf": {52, 12, 36},
	"vpr": {50, 14, 36}, "facerec": {96, 0, 4}, "ammp": {82, 10, 8},
	"galgel": {71, 9, 20}, "equake": {78, 12, 10}, "bzip2": {43, 15, 42},
	"parser": {43, 5, 52}, "apsi": {85, 5, 10}, "sixtrack": {100, 0, 0},
	"lucas": {84, 6, 10}, "mgrid": {18, 16, 66},
}

// paperAvgDelta holds the average deltas §5.2 quotes explicitly.
var paperAvgDelta = map[string]float64{"bzip2": 126, "parser": 190, "mgrid": 187}

// Table1Result is the delta distribution of mlp-cost between successive
// misses to the same block, measured on the LRU baseline (Table 1).
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one benchmark's delta statistics.
type Table1Row struct {
	Bench                  string
	Lt60, Ge60Lt120, Ge120 float64 // percent
	Mean                   float64 // cycles
	Paper                  [3]float64
	PaperMean              float64 // 0 when the paper value did not survive
}

// HighDelta reports whether the benchmark falls in the paper's
// "unpredictable cost" class (majority of deltas at or above 60 cycles or
// a large mean), which is where LIN degrades performance.
func (r Table1Row) HighDelta() bool { return r.Lt60 < 50 || r.Mean >= 100 }

// Table1 reproduces Table 1.
func Table1(r *Runner) Table1Result {
	var out Table1Result
	out.Rows = forBenches(r, r.Names(), func(b string) Table1Row {
		base := r.Baseline(b)
		d := base.Delta
		return Table1Row{
			Bench: b,
			Lt60:  d.PercentLt60(), Ge60Lt120: d.PercentGe60Lt120(), Ge120: d.PercentGe120(),
			Mean:      d.Mean(),
			Paper:     paperTable1[b],
			PaperMean: paperAvgDelta[b],
		}
	})
	return out
}

// table builds the paper-style table.
func (f Table1Result) table() *table {
	t := newTable("Table 1: delta between successive mlp-costs of a block (measured [paper])",
		"bench", "delta<60", "60<=delta<120", "delta>=120", "avg delta")
	for _, row := range f.Rows {
		mean := fmt.Sprintf("%.0f", row.Mean)
		if row.PaperMean > 0 {
			mean += fmt.Sprintf(" [%.0f]", row.PaperMean)
		}
		t.rowf("%s\t%.0f%% [%.0f%%]\t%.0f%% [%.0f%%]\t%.0f%% [%.0f%%]\t%s",
			row.Bench, row.Lt60, row.Paper[0], row.Ge60Lt120, row.Paper[1],
			row.Ge120, row.Paper[2], mean)
	}
	t.note("high-delta benchmarks (bzip2, parser, mgrid) are where last-cost prediction fails and LIN loses")
	return t
}

// paperCompulsory is Table 3's compulsory-miss percentage column.
var paperCompulsory = map[string]float64{
	"art": 0.5, "mcf": 2.2, "twolf": 2.9, "vpr": 4.3, "ammp": 5.1,
	"galgel": 5.9, "equake": 14.2, "bzip2": 15.5, "facerec": 18.0,
	"parser": 20.3, "sixtrack": 20.6, "apsi": 22.8, "lucas": 41.6, "mgrid": 46.6,
}

// Table3Result summarizes each benchmark: class, miss volume, compulsory
// share (Table 3).
type Table3Result struct {
	Instructions uint64
	Rows         []Table3Row
}

// Table3Row is one benchmark's summary.
type Table3Row struct {
	Bench           string
	Class           string
	L2Misses        uint64
	MPKI            float64
	CompulsoryPct   float64
	PaperCompulsory float64
	IPC             float64
}

// Table3 reproduces Table 3 on the synthetic models. Compulsory
// percentages scale with run length (every reused block is compulsory
// exactly once), so the column to compare against the paper is the
// *ordering*, noted in the rendering.
func Table3(r *Runner) Table3Result {
	out := Table3Result{Instructions: r.Instructions}
	out.Rows = forBenches(r, r.Names(), func(b string) Table3Row {
		spec, _ := workload.ByName(b)
		base := r.Baseline(b)
		return Table3Row{
			Bench: b, Class: spec.Class,
			L2Misses:        base.Mem.DemandMisses,
			MPKI:            base.MPKI(),
			CompulsoryPct:   base.CompulsoryPercent(),
			PaperCompulsory: paperCompulsory[b],
			IPC:             base.IPC,
		}
	})
	return out
}

// table builds the paper-style table.
func (f Table3Result) table() *table {
	t := newTable(fmt.Sprintf("Table 3: benchmark summary (LRU baseline, %d instructions)", f.Instructions),
		"bench", "type", "L2 misses", "MPKI", "compulsory", "[paper]", "IPC")
	for _, row := range f.Rows {
		t.rowf("%s\t%s\t%d\t%.1f\t%.1f%%\t[%.1f%%]\t%.3f",
			row.Bench, row.Class, row.L2Misses, row.MPKI,
			row.CompulsoryPct, row.PaperCompulsory, row.IPC)
	}
	t.note("compulsory %% shrinks toward the paper's values as runs lengthen; the cross-benchmark ordering is the reproduced shape")
	return t
}

// benchesByCompulsory returns the benchmark names ordered by measured
// compulsory share (used by tests to check ordering against the paper).
func (f Table3Result) benchesByCompulsory() []string {
	rows := append([]Table3Row(nil), f.Rows...)
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].CompulsoryPct < rows[j-1].CompulsoryPct; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	names := make([]string, len(rows))
	for i, r := range rows {
		names[i] = r.Bench
	}
	return names
}
