package experiments

import (
	"mlpcache/internal/oracle"
	"mlpcache/internal/sim"
)

// OracleHeadroomResult measures how much room the online policies leave
// against offline oracles — the quantitative form of the paper's
// Section 2 argument that minimizing misses (Belady) and minimizing
// aggregate mlp-cost are different objectives. Per benchmark, the LRU
// run's L2 demand stream is captured and replayed under classic Belady,
// cost-weighted Belady, and the EHC predictor at the live L2 geometry;
// LIN(4) and SBAR supply the online MLP-aware comparison points.
type OracleHeadroomResult struct {
	Sets, Assoc int
	Rows        []OracleHeadroomRow
}

// OracleHeadroomRow is one benchmark's comparison. Miss and cost
// figures for lru/opt/costopt/ehc score the same captured stream; lin
// and sbar are those policies' own live runs (their streams differ —
// timing feedback changes the access interleaving).
type OracleHeadroomRow struct {
	Bench    string
	Accesses uint64

	LRUMiss, LINMiss, SBARMiss uint64
	EHCMiss, OPTMiss           uint64

	LRUCost, LINCost, SBARCost uint64
	EHCCost, OPTCost           uint64
	CostOPTCost                uint64
	CostOPTMiss                uint64

	// MissHeadroomPct is the share of LRU's misses Belady avoids;
	// CostHeadroomPct the share of LRU's summed quantized cost the
	// cost-weighted Belady avoids.
	MissHeadroomPct, CostHeadroomPct float64
}

// OracleHeadroom runs the oracle-headroom experiment over the runner's
// benchmarks (fanned out on its worker pool).
func OracleHeadroom(r *Runner) OracleHeadroomResult {
	l2 := sim.DefaultConfig().L2
	sets, err := l2.SetCount()
	if err != nil {
		panic(err) // DefaultConfig is validated by construction
	}
	out := OracleHeadroomResult{Sets: sets, Assoc: l2.Assoc}
	out.Rows = forBenches(r, r.Names(), func(b string) OracleHeadroomRow {
		lru, log := r.RunCaptured(b, sim.PolicySpec{Kind: sim.PolicyLRU})
		lin := r.Run(b, sim.PolicySpec{Kind: sim.PolicyLIN, Lambda: 4})
		sbar := r.Run(b, sim.PolicySpec{Kind: sim.PolicySBAR})
		cmp := oracle.Compare(log, sets, l2.Assoc)
		return OracleHeadroomRow{
			Bench:    b,
			Accesses: cmp.Accesses,

			LRUMiss:  lru.Mem.DemandMisses,
			LINMiss:  lin.Mem.DemandMisses,
			SBARMiss: sbar.Mem.DemandMisses,
			EHCMiss:  cmp.EHC.Misses,
			OPTMiss:  cmp.OPT.Misses,

			LRUCost:     lru.Mem.CostQSum,
			LINCost:     lin.Mem.CostQSum,
			SBARCost:    sbar.Mem.CostQSum,
			EHCCost:     cmp.EHC.CostQSum,
			OPTCost:     cmp.OPT.CostQSum,
			CostOPTCost: cmp.CostOPT.CostQSum,
			CostOPTMiss: cmp.CostOPT.Misses,

			MissHeadroomPct: cmp.MissHeadroomPct(),
			CostHeadroomPct: cmp.CostHeadroomPct(),
		}
	})
	return out
}

// table builds the paper-style table.
func (f OracleHeadroomResult) table() *table {
	t := newTable("Oracle headroom: online policies vs offline Belady replays",
		"bench", "accesses",
		"miss lru", "miss lin", "miss sbar", "miss ehc", "miss opt", "miss headroom",
		"cost lru", "cost lin", "cost sbar", "cost ehc", "cost copt", "cost headroom")
	for _, row := range f.Rows {
		t.rowf("%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%s",
			row.Bench, row.Accesses,
			row.LRUMiss, row.LINMiss, row.SBARMiss, row.EHCMiss, row.OPTMiss,
			pct(-row.MissHeadroomPct),
			row.LRUCost, row.LINCost, row.SBARCost, row.EHCCost, row.CostOPTCost,
			pct(-row.CostHeadroomPct))
	}
	t.note("replay geometry %dx%d; opt/copt/ehc replay the captured LRU stream; cost-weighted Belady's cost never exceeds Belady's by construction",
		f.Sets, f.Assoc)
	return t
}
