package experiments

import (
	"fmt"

	"mlpcache/internal/sim"
)

// Figure9Result compares LIN(4) and SBAR against the LRU baseline
// (Figure 9). SBAR must keep LIN's wins and erase its losses; on phased
// benchmarks (ammp) it can beat both fixed policies.
type Figure9Result struct {
	Rows []Figure9Row
}

// Figure9Row is one benchmark's comparison.
type Figure9Row struct {
	Bench        string
	LINDeltaPct  float64
	SBARDeltaPct float64
}

// Figure9 reproduces Figure 9.
func Figure9(r *Runner) Figure9Result {
	var out Figure9Result
	out.Rows = forBenches(r, r.Names(), func(b string) Figure9Row {
		base := r.Baseline(b)
		lin := r.Run(b, sim.PolicySpec{Kind: sim.PolicyLIN, Lambda: 4})
		sbar := r.Run(b, sim.PolicySpec{Kind: sim.PolicySBAR})
		return Figure9Row{
			Bench:        b,
			LINDeltaPct:  lin.IPCDeltaPercent(base),
			SBARDeltaPct: sbar.IPCDeltaPercent(base),
		}
	})
	return out
}

// table builds the paper-style table.
func (f Figure9Result) table() *table {
	t := newTable("Figure 9: IPC improvement over LRU — LIN vs SBAR", "bench", "LIN", "SBAR")
	for _, row := range f.Rows {
		t.rowf("%s\t%s\t%s", row.Bench, pct(row.LINDeltaPct), pct(row.SBARDeltaPct))
	}
	t.note("SBAR's job: keep LIN's gains, eliminate the bzip2/parser/mgrid degradations, beat both on phased ammp")
	return t
}

// Figure10Result sweeps SBAR's leader-set selection policy and count
// (Figure 10): simple-static vs rand-dynamic × {8, 16, 32} leader sets.
type Figure10Result struct {
	Configs []Figure10Config
	Rows    []Figure10Row
}

// Figure10Config labels one sweep point.
type Figure10Config struct {
	Label       string
	LeaderSets  int
	RandDynamic bool
}

// Figure10Row is one benchmark's sweep.
type Figure10Row struct {
	Bench    string
	DeltaPct []float64 // IPC improvement per config
}

// Figure10 reproduces Figure 10. Rand-dynamic reselects leaders every
// 1/10th of the run, matching the paper's 25M-of-250M cadence.
func Figure10(r *Runner) Figure10Result {
	res := Figure10Result{}
	for _, k := range []int{8, 16, 32} {
		res.Configs = append(res.Configs,
			Figure10Config{Label: fmt.Sprintf("static/%d", k), LeaderSets: k},
			Figure10Config{Label: fmt.Sprintf("rand/%d", k), LeaderSets: k, RandDynamic: true},
		)
	}
	epoch := r.Instructions / 10
	res.Rows = forBenches(r, r.Names(), func(b string) Figure10Row {
		base := r.Baseline(b)
		row := Figure10Row{Bench: b}
		for _, cfg := range res.Configs {
			spec := sim.PolicySpec{
				Kind:        sim.PolicySBAR,
				LeaderSets:  cfg.LeaderSets,
				RandDynamic: cfg.RandDynamic,
			}
			var out sim.Result
			if cfg.RandDynamic {
				out = r.RunEpoch(b, spec, epoch)
			} else {
				out = r.Run(b, spec)
			}
			row.DeltaPct = append(row.DeltaPct, out.IPCDeltaPercent(base))
		}
		return row
	})
	return res
}

// table builds the paper-style table.
func (f Figure10Result) table() *table {
	header := []string{"bench"}
	for _, c := range f.Configs {
		header = append(header, c.Label)
	}
	t := newTable("Figure 10: SBAR IPC improvement by leader-set policy and count", header...)
	for _, row := range f.Rows {
		cells := []string{row.Bench}
		for _, d := range row.DeltaPct {
			cells = append(cells, pct(d))
		}
		t.row(cells...)
	}
	t.note("paper: insensitive except ammp, where rand-dynamic helps at 8-16 leaders and the gap closes at 32")
	return t
}

// Figure11Result is the ammp case study (Figure 11): instruction-indexed
// time series of average cost_q per miss, misses per 1000 instructions,
// and IPC, for LRU, LIN and SBAR.
type Figure11Result struct {
	Bench    string
	Interval uint64
	Results  map[string]sim.Result // keyed lru/lin/sbar
}

// Figure11 reproduces Figure 11 on the ammp model.
func Figure11(r *Runner) Figure11Result {
	const bench = "ammp"
	interval := r.Instructions / 40
	if interval == 0 {
		interval = 1
	}
	out := Figure11Result{Bench: bench, Interval: interval, Results: map[string]sim.Result{}}
	out.Results["lru"] = r.RunSeries(bench, sim.PolicySpec{Kind: sim.PolicyLRU}, interval)
	out.Results["lin"] = r.RunSeries(bench, sim.PolicySpec{Kind: sim.PolicyLIN, Lambda: 4}, interval)
	out.Results["sbar"] = r.RunSeries(bench, sim.PolicySpec{Kind: sim.PolicySBAR}, interval)
	return out
}

// table builds the three time series side by side.
func (f Figure11Result) table() *table {
	t := newTable(fmt.Sprintf("Figure 11: %s over time (sampled every %d instructions)", f.Bench, f.Interval),
		"instr", "costq lru", "costq lin", "costq sbar",
		"mpki lru", "mpki lin", "mpki sbar",
		"ipc lru", "ipc lin", "ipc sbar")
	lru, lin, sbar := f.Results["lru"], f.Results["lin"], f.Results["sbar"]
	n := len(lru.Series.IPC.Points)
	if k := len(lin.Series.IPC.Points); k < n {
		n = k
	}
	if k := len(sbar.Series.IPC.Points); k < n {
		n = k
	}
	for i := 0; i < n; i++ {
		t.rowf("%d\t%.2f\t%.2f\t%.2f\t%.1f\t%.1f\t%.1f\t%.3f\t%.3f\t%.3f",
			lru.Series.IPC.Points[i].Instructions,
			lru.Series.AvgCostQ.Points[i].Value,
			lin.Series.AvgCostQ.Points[i].Value,
			sbar.Series.AvgCostQ.Points[i].Value,
			lru.Series.MPKI.Points[i].Value,
			lin.Series.MPKI.Points[i].Value,
			sbar.Series.MPKI.Points[i].Value,
			lru.Series.IPC.Points[i].Value,
			lin.Series.IPC.Points[i].Value,
			sbar.Series.IPC.Points[i].Value)
	}
	t.note("whole-run IPC: lru %.3f, lin %.3f, sbar %.3f — SBAR should track the better policy in each phase",
		lru.IPC, lin.IPC, sbar.IPC)
	return t
}
