// Acceptance tests for docs/ORACLE.md and the oracle-headroom
// experiment: the metric catalog in that document is checked in both
// directions against what oracle.Comparison.Observe actually registers,
// and the headroom table must satisfy the subsystem's defining
// invariants on every benchmark.
package mlpcache

import (
	"os"
	"strings"
	"testing"

	"mlpcache/internal/experiments"
	"mlpcache/internal/metrics"
)

// parseOracleCatalog reads docs/ORACLE.md's metric table (same row
// format as docs/OBSERVABILITY.md, so the same regex applies).
func parseOracleCatalog(t *testing.T) map[string]metrics.Kind {
	t.Helper()
	raw, err := os.ReadFile("docs/ORACLE.md")
	if err != nil {
		t.Fatalf("reading contract doc: %v", err)
	}
	kinds := map[string]metrics.Kind{
		"counter": metrics.KindCounter,
		"gauge":   metrics.KindGauge,
	}
	doc := map[string]metrics.Kind{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := catalogRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, second := m[1], strings.TrimSpace(m[2])
		k, ok := kinds[second]
		if !ok {
			continue // replay-table rows and prose tables
		}
		if _, dup := doc[name]; dup {
			t.Errorf("doc lists metric %q twice", name)
		}
		doc[name] = k
	}
	if len(doc) == 0 {
		t.Fatal("catalog parse found no metrics — table format changed?")
	}
	return doc
}

// TestOracleCatalogMatchesEmission checks docs/ORACLE.md against a live
// captured run in both directions: every documented oracle metric is
// registered, every registered metric is documented, kinds match.
func TestOracleCatalogMatchesEmission(t *testing.T) {
	doc := parseOracleCatalog(t)
	emitted := map[string]metrics.Kind{}
	for _, s := range oracleRegistry(t).Samples() {
		emitted[s.Name] = s.Kind
	}
	for name, kind := range doc {
		got, ok := emitted[name]
		if !ok {
			t.Errorf("documented metric %q never registered by an oracle run", name)
			continue
		}
		if got != kind {
			t.Errorf("metric %q: doc says %s, registry says %s", name, kind, got)
		}
	}
	for name := range emitted {
		if _, ok := doc[name]; !ok {
			t.Errorf("registered metric %q missing from docs/ORACLE.md", name)
		}
	}
}

// TestOracleHeadroomAcceptance runs the oracle-headroom experiment on
// four benchmarks and checks the row invariants the subsystem promises:
// Belady's miss count lower-bounds the captured LRU run's, and the
// cost-weighted Belady's summed cost never exceeds classic Belady's
// (nor the live LRU cost).
func TestOracleHeadroomAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := experiments.NewRunner(200_000, 42)
	r.Benchmarks = []string{"art", "mcf", "ammp", "parser"}
	res := experiments.OracleHeadroom(r)
	if len(res.Rows) < 4 {
		t.Fatalf("headroom table has %d rows, want >= 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Accesses == 0 {
			t.Errorf("%s: empty capture", row.Bench)
		}
		if row.OPTMiss > row.LRUMiss {
			t.Errorf("%s: Belady %d misses exceeds live LRU's %d",
				row.Bench, row.OPTMiss, row.LRUMiss)
		}
		if row.CostOPTCost > row.OPTCost {
			t.Errorf("%s: cost-weighted Belady cost %d exceeds Belady's %d",
				row.Bench, row.CostOPTCost, row.OPTCost)
		}
		if row.CostOPTCost > row.LRUCost {
			t.Errorf("%s: cost-weighted Belady cost %d exceeds live LRU's %d",
				row.Bench, row.CostOPTCost, row.LRUCost)
		}
		if row.MissHeadroomPct < 0 || row.CostHeadroomPct < 0 {
			t.Errorf("%s: negative headroom (miss %.1f%%, cost %.1f%%)",
				row.Bench, row.MissHeadroomPct, row.CostHeadroomPct)
		}
	}
}
