// Acceptance tests for docs/MULTICORE.md: the workload-mix,
// comparison-policy and rejected-feature tables in that document are
// parsed and checked against the code in both directions, and the
// contention experiment's output must satisfy the subsystem's defining
// invariants — so the multi-core contract cannot drift from what the
// simulator does.
package mlpcache

import (
	"errors"
	"os"
	"regexp"
	"strings"
	"testing"

	"mlpcache/internal/experiments"
	"mlpcache/internal/faultinject"
	"mlpcache/internal/oracle"
	"mlpcache/internal/prefetch"
	"mlpcache/internal/sim"
	"mlpcache/internal/workload"
)

func readMulticoreDoc(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile("docs/MULTICORE.md")
	if err != nil {
		t.Fatalf("reading contract doc: %v", err)
	}
	return string(raw)
}

// multicoreSection slices one "## " section out of docs/MULTICORE.md.
func multicoreSection(t *testing.T, heading string) string {
	t.Helper()
	doc := readMulticoreDoc(t)
	idx := strings.Index(doc, "## "+heading)
	if idx < 0 {
		t.Fatalf("docs/MULTICORE.md lost its %q section", heading)
	}
	section := doc[idx:]
	if end := strings.Index(section[1:], "\n## "); end >= 0 {
		section = section[:end+1]
	}
	return section
}

// backtickRow matches the backticked first column of one table row:
// mixes ("mcf+art"), policy labels ("sbar/32/static"), or feature
// names ("Prefetch").
var backtickRow = regexp.MustCompile("^\\| `([A-Za-z0-9+/]+)` \\|")

// firstColumns returns the backticked first-column cells of every
// table row in the section, in order.
func firstColumns(section string) []string {
	var out []string
	for _, line := range strings.Split(section, "\n") {
		if m := backtickRow.FindStringSubmatch(line); m != nil {
			out = append(out, m[1])
		}
	}
	return out
}

// docMixesAndPolicies parses the contention-experiment section: rows
// containing "+" are workload mixes, the rest are policy labels.
func docMixesAndPolicies(t *testing.T) (mixes, policies []string) {
	t.Helper()
	for _, name := range firstColumns(multicoreSection(t, "Contention experiment")) {
		if strings.Contains(name, "+") {
			mixes = append(mixes, name)
		} else {
			policies = append(policies, name)
		}
	}
	if len(mixes) == 0 || len(policies) == 0 {
		t.Fatalf("contention section parse found %d mixes, %d policies — table format changed?",
			len(mixes), len(policies))
	}
	return mixes, policies
}

// TestMulticoreMixTableMatchesExperiment pins the documented workload
// mixes to experiments.MulticoreMixes in both directions, in order.
func TestMulticoreMixTableMatchesExperiment(t *testing.T) {
	docMixes, _ := docMixesAndPolicies(t)

	var codeMixes []string
	for _, mix := range experiments.MulticoreMixes {
		codeMixes = append(codeMixes, strings.Join(mix, "+"))
		for _, b := range mix {
			if _, ok := workload.ByName(b); !ok {
				t.Errorf("mix benchmark %q is not a compiled-in workload", b)
			}
		}
	}

	if len(docMixes) != len(codeMixes) {
		t.Fatalf("doc lists %d mixes %v, experiments.MulticoreMixes has %d %v",
			len(docMixes), docMixes, len(codeMixes), codeMixes)
	}
	docSet := map[string]bool{}
	for _, m := range docMixes {
		docSet[m] = true
	}
	for _, m := range codeMixes {
		if !docSet[m] {
			t.Errorf("mix %q runs in the experiment but is missing from docs/MULTICORE.md", m)
		}
	}
	codeSet := map[string]bool{}
	for _, m := range codeMixes {
		codeSet[m] = true
	}
	for _, m := range docMixes {
		if !codeSet[m] {
			t.Errorf("documented mix %q is not in experiments.MulticoreMixes", m)
		}
	}
}

// TestMulticorePolicyTableMatchesLabels pins the documented policy
// labels to the comparison set's actual PolicySpec labels.
func TestMulticorePolicyTableMatchesLabels(t *testing.T) {
	_, docPolicies := docMixesAndPolicies(t)
	comparison := []sim.PolicySpec{
		{Kind: sim.PolicyLRU},
		{Kind: sim.PolicyLIN, Lambda: 4},
		{Kind: sim.PolicySBAR},
	}
	if len(docPolicies) != len(comparison) {
		t.Fatalf("doc lists %d policy labels %v, comparison set has %d",
			len(docPolicies), docPolicies, len(comparison))
	}
	for i, spec := range comparison {
		if got := spec.String(); got != docPolicies[i] {
			t.Errorf("policy %d: doc labels it %q, spec renders %q", i, docPolicies[i], got)
		}
	}
}

// rejectedFeatures maps each documented single-core-only feature to a
// mutation enabling it; RunMulti must refuse each with ErrBadConfig.
var rejectedFeatures = map[string]func(*sim.Config){
	"Prefetch": func(cfg *sim.Config) {
		pcfg := prefetch.DefaultConfig()
		cfg.Prefetch = &pcfg
	},
	"Capture":          func(cfg *sim.Config) { cfg.Capture = oracle.NewCapture() },
	"Faults":           func(cfg *sim.Config) { cfg.Faults = &faultinject.Plan{} },
	"SampleInterval":   func(cfg *sim.Config) { cfg.SampleInterval = 10_000 },
	"SnapshotInterval": func(cfg *sim.Config) { cfg.SnapshotInterval = 10_000 },
}

// TestMulticoreRejectedFeaturesMatchValidation checks the
// "Configuration surface" table in both directions: every documented
// rejected feature really is refused with ErrBadConfig, and every
// feature the validator refuses is documented.
func TestMulticoreRejectedFeaturesMatchValidation(t *testing.T) {
	documented := firstColumns(multicoreSection(t, "Configuration surface"))
	if len(documented) == 0 {
		t.Fatal("no rejected-feature rows parsed — table format changed?")
	}
	docSet := map[string]bool{}
	for _, name := range documented {
		docSet[name] = true
		if _, ok := rejectedFeatures[name]; !ok {
			t.Errorf("documented rejected feature %q unknown to this test — update rejectedFeatures and validateMulti together", name)
		}
	}
	w, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("unknown benchmark mcf")
	}
	for name, enable := range rejectedFeatures {
		if !docSet[name] {
			t.Errorf("rejected feature %q missing from docs/MULTICORE.md", name)
		}
		cfg := sim.DefaultConfig()
		cfg.MaxInstructions = 1000
		enable(&cfg)
		_, err := sim.RunMulti(cfg, w.Build(1))
		if err == nil {
			t.Errorf("feature %q: multicore run accepted a config the doc promises it rejects", name)
			continue
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("feature %q: rejected with %v, want ErrBadConfig", name, err)
		}
	}
}

// TestMulticoreCoresBound pins the documented cores limit to
// sim.MaxCores and checks the out-of-range rejection.
func TestMulticoreCoresBound(t *testing.T) {
	if sim.MaxCores != 64 {
		t.Fatalf("sim.MaxCores = %d; docs/MULTICORE.md promises 64", sim.MaxCores)
	}
	section := multicoreSection(t, "Configuration surface")
	if !strings.Contains(section, "`sim.MaxCores` = 64") {
		t.Error("configuration section lost the `sim.MaxCores` = 64 statement")
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 1000
	if _, err := sim.RunMulti(cfg); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero-source run rejected with %v, want ErrBadConfig", err)
	}
}

// TestMulticoreContractLanguage pins the load-bearing phrases: the
// doc must keep naming the interface cut, the equivalence guarantee
// and the cost-model semantics the tests enforce.
func TestMulticoreContractLanguage(t *testing.T) {
	for section, phrases := range map[string][]string{
		"Core-facing interface":    {"cpu.MemSystem", "bit-identical", "TestMulticoreSingleCoreEquivalence"},
		"Thread-tagged cost model": {"per-thread", "cross-core merge", "sharer"},
		"Leader-set partitioning":  {"partitioned", "one PSEL per thread", "tid"},
	} {
		// Collapse line wraps so phrases can span a reflowed line break.
		text := strings.Join(strings.Fields(multicoreSection(t, section)), " ")
		for _, phrase := range phrases {
			if !strings.Contains(strings.ToLower(text), strings.ToLower(phrase)) {
				t.Errorf("section %q lost the %q contract language", section, phrase)
			}
		}
	}
}

// TestMulticoreContentionAcceptance runs the contention experiment at
// a reduced budget and checks its defining row invariants: one row
// per (mix, policy) in order, per-core slices matching the mix width,
// per-core misses summing to the aggregate, and policy labels exactly
// matching the documented comparison set.
func TestMulticoreContentionAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	docMixes, docPolicies := docMixesAndPolicies(t)
	r := experiments.NewRunner(30_000, 42)
	res := experiments.MulticoreContention(r)
	if want := len(docMixes) * len(docPolicies); len(res.Rows) != want {
		t.Fatalf("experiment produced %d rows, want %d (mixes × policies)", len(res.Rows), want)
	}
	seenPolicies := map[string]bool{}
	for i, row := range res.Rows {
		mix, policy := docMixes[i/len(docPolicies)], docPolicies[i%len(docPolicies)]
		if row.Mix != mix || row.Policy != policy {
			t.Errorf("row %d is (%s, %s), want (%s, %s)", i, row.Mix, row.Policy, mix, policy)
		}
		seenPolicies[row.Policy] = true
		width := strings.Count(row.Mix, "+") + 1
		if len(row.CoreMisses) != width || len(row.CoreMPKI) != width || len(row.CoreCost) != width {
			t.Errorf("row %d: per-core slices sized %d/%d/%d, want %d",
				i, len(row.CoreMisses), len(row.CoreMPKI), len(row.CoreCost), width)
			continue
		}
		var sum uint64
		for _, m := range row.CoreMisses {
			sum += m
		}
		if sum != row.AggMisses {
			t.Errorf("row %d (%s, %s): per-core misses sum to %d, aggregate says %d",
				i, row.Mix, row.Policy, sum, row.AggMisses)
		}
		if row.AggMisses == 0 || row.AggIPC <= 0 {
			t.Errorf("row %d (%s, %s): degenerate aggregates (misses %d, IPC %f)",
				i, row.Mix, row.Policy, row.AggMisses, row.AggIPC)
		}
	}
	for _, p := range docPolicies {
		if !seenPolicies[p] {
			t.Errorf("documented policy %q never appeared in the experiment's rows", p)
		}
	}
}
