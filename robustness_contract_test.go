// Acceptance tests for docs/ROBUSTNESS.md: the sentinel-error table and
// the service fault-model section are parsed and checked against the
// code, so the hardening contract cannot drift from what is exported.
package mlpcache

import (
	"errors"
	"os"
	"regexp"
	"strings"
	"testing"

	"mlpcache/internal/service"
)

// sentinelRow matches one row of the §1 error-taxonomy table.
var sentinelRow = regexp.MustCompile("^\\| `(Err[A-Za-z]+)` \\|")

func readRobustnessDoc(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile("docs/ROBUSTNESS.md")
	if err != nil {
		t.Fatalf("reading contract doc: %v", err)
	}
	return string(raw)
}

// TestSentinelTableMatchesExports asserts the documented sentinel table
// is exactly the set of typed sentinels the root package re-exports,
// and that each is a distinct errors.Is identity.
func TestSentinelTableMatchesExports(t *testing.T) {
	exported := map[string]error{
		"ErrBadConfig":        ErrBadConfig,
		"ErrCorruptTrace":     ErrCorruptTrace,
		"ErrMSHRLeak":         ErrMSHRLeak,
		"ErrInvariant":        ErrInvariant,
		"ErrUnknownBenchmark": ErrUnknownBenchmark,
		"ErrInternal":         ErrInternal,
		"ErrCancelled":        ErrCancelled,
	}

	documented := map[string]bool{}
	for _, line := range strings.Split(readRobustnessDoc(t), "\n") {
		if m := sentinelRow.FindStringSubmatch(line); m != nil {
			if documented[m[1]] {
				t.Errorf("doc lists sentinel %q twice", m[1])
			}
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no sentinel rows parsed — table format changed?")
	}

	for name := range exported {
		if !documented[name] {
			t.Errorf("exported sentinel %q missing from docs/ROBUSTNESS.md §1", name)
		}
	}
	for name := range documented {
		if _, ok := exported[name]; !ok {
			t.Errorf("documented sentinel %q is not re-exported by the root package", name)
		}
	}
	for name, err := range exported {
		if err == nil {
			t.Fatalf("sentinel %q is nil", name)
		}
		for other, o := range exported {
			if name != other && errors.Is(err, o) {
				t.Errorf("sentinels %q and %q are not distinct", name, other)
			}
		}
	}
}

// TestServiceFaultModelDocumented pins the §6 service fault model: the
// section exists and names every admission/retry sentinel the service
// package exports, so a renamed or added service error must come with
// its doc update.
func TestServiceFaultModelDocumented(t *testing.T) {
	doc := readRobustnessDoc(t)
	idx := strings.Index(doc, "## 6. Service fault model")
	if idx < 0 {
		t.Fatal("docs/ROBUSTNESS.md lost its \"Service fault model\" section")
	}
	section := doc[idx:]
	if end := strings.Index(section[1:], "\n## "); end >= 0 {
		section = section[:end+1]
	}

	for name, err := range map[string]error{
		"ErrQueueFull": service.ErrQueueFull,
		"ErrClientCap": service.ErrClientCap,
		"ErrDraining":  service.ErrDraining,
		"ErrTransient": service.ErrTransient,
	} {
		if err == nil {
			t.Fatalf("service sentinel %q is nil", name)
		}
		if !strings.Contains(section, "`"+name+"`") {
			t.Errorf("service fault model section never mentions `%s`", name)
		}
	}
	for _, phrase := range []string{"terminal outcome", "drain", "retry budget", "singleflight"} {
		if !strings.Contains(strings.ToLower(section), phrase) {
			t.Errorf("service fault model section lost the %q contract language", phrase)
		}
	}
}
