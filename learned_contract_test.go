// Acceptance tests for docs/LEARNED.md and the learned-headroom
// experiment: the metric catalog in that document is checked in both
// directions against what a learned run actually registers, and the
// headroom table must satisfy the subsystem's acceptance properties —
// the bandit beats Random on every benchmark, the trained predictor
// recovers a substantial share of the LRU→Belady miss headroom, and
// training is a pure function of the capture and the seed.
package mlpcache

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"mlpcache/internal/experiments"
	"mlpcache/internal/learn"
	"mlpcache/internal/metrics"
	"mlpcache/internal/oracle"
	"mlpcache/internal/sim"
	"mlpcache/internal/workload"
)

// parseLearnedCatalog reads docs/LEARNED.md's metric table (same row
// format as docs/OBSERVABILITY.md, so the shared regex applies).
func parseLearnedCatalog(t *testing.T) map[string]metrics.Kind {
	t.Helper()
	raw, err := os.ReadFile("docs/LEARNED.md")
	if err != nil {
		t.Fatalf("reading contract doc: %v", err)
	}
	kinds := map[string]metrics.Kind{
		"counter": metrics.KindCounter,
		"gauge":   metrics.KindGauge,
	}
	doc := map[string]metrics.Kind{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := catalogRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, second := m[1], strings.TrimSpace(m[2])
		k, ok := kinds[second]
		if !ok {
			continue // prose tables (the arm-rule table has no kind column)
		}
		if _, dup := doc[name]; dup {
			t.Errorf("doc lists metric %q twice", name)
		}
		doc[name] = k
	}
	if len(doc) == 0 {
		t.Fatal("catalog parse found no metrics — table format changed?")
	}
	return doc
}

// TestLearnedCatalogMatchesEmission checks docs/LEARNED.md against a
// live bandit run in both directions: every documented learn.* metric
// is registered, every registered learn.* metric is documented, kinds
// match. (The run's ordinary families are covered by
// docs/OBSERVABILITY.md and its own contract test.)
func TestLearnedCatalogMatchesEmission(t *testing.T) {
	doc := parseLearnedCatalog(t)
	emitted := map[string]metrics.Kind{}
	for _, s := range learnRegistry(t).Samples() {
		if !strings.HasPrefix(s.Name, "learn.") {
			continue
		}
		emitted[s.Name] = s.Kind
	}
	for name, kind := range doc {
		got, ok := emitted[name]
		if !ok {
			t.Errorf("documented metric %q never registered by a learned run", name)
			continue
		}
		if got != kind {
			t.Errorf("metric %q: doc says %s, registry says %s", name, kind, got)
		}
	}
	for name := range emitted {
		if _, ok := doc[name]; !ok {
			t.Errorf("registered metric %q missing from docs/LEARNED.md", name)
		}
	}
}

// TestTrainingDeterministic runs the full capture → train pipeline and
// checks the model-file promise from docs/LEARNED.md: the same capture
// and seed produce a byte-identical model, and the seed actually salts
// the signatures.
func TestTrainingDeterministic(t *testing.T) {
	w, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("unknown benchmark mcf")
	}
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 200_000
	cap := oracle.NewCapture()
	cfg.Capture = cap
	sim.MustRun(cfg, w.Build(42))
	sets, err := cfg.L2.SetCount()
	if err != nil {
		t.Fatal(err)
	}
	tc := learn.TrainConfig{Sets: sets, Assoc: cfg.L2.Assoc, Seed: 7}
	a, err := learn.Train(cap.Log().TrainingSamples(), tc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := learn.Train(cap.Log().TrainingSamples(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Error("same capture and seed produced different model bytes")
	}
	if a.Trained() == 0 {
		t.Error("training populated no signatures")
	}
	tc.Seed = 8
	c, err := learn.Train(cap.Log().TrainingSamples(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Encode(), c.Encode()) {
		t.Error("different seeds produced byte-identical models")
	}
}

// TestLearnedHeadroomAcceptance runs the learned-headroom experiment at
// the full default budget on six benchmarks — including the ones where
// the bandit's margin over Random is thinnest — and checks the
// subsystem's acceptance properties: the bandit beats Random on every
// row, the predictor never beats Belady (the replay would be broken),
// and at least one benchmark recovers ≥ 25% of the miss headroom.
func TestLearnedHeadroomAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := experiments.NewRunner(3_000_000, 42)
	r.Benchmarks = []string{"art", "twolf", "ammp", "galgel", "bzip2", "parser"}
	res := experiments.LearnedHeadroom(r)
	if len(res.Rows) != len(r.Benchmarks) {
		t.Fatalf("headroom table has %d rows, want %d", len(res.Rows), len(r.Benchmarks))
	}
	best := 0.0
	for _, row := range res.Rows {
		if row.Accesses == 0 {
			t.Errorf("%s: empty capture", row.Bench)
		}
		if row.BanditMiss >= row.RandomMiss {
			t.Errorf("%s: bandit's %d misses do not beat Random's %d",
				row.Bench, row.BanditMiss, row.RandomMiss)
		}
		if row.OPTMiss > row.LRUMiss {
			t.Errorf("%s: Belady %d misses exceeds replayed LRU's %d",
				row.Bench, row.OPTMiss, row.LRUMiss)
		}
		if row.LearnedMiss < row.OPTMiss {
			t.Errorf("%s: predictor's %d misses beat Belady's %d — replay broken",
				row.Bench, row.LearnedMiss, row.OPTMiss)
		}
		if row.TrainedSignatures == 0 {
			t.Errorf("%s: training populated no signatures", row.Bench)
		}
		if row.RecoveredPct > best {
			best = row.RecoveredPct
		}
	}
	if best < 25 {
		t.Errorf("best miss-headroom recovery is %.1f%%, want >= 25%%", best)
	}
}
