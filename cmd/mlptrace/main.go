// Command mlptrace works with the repo's two binary stream formats:
// instruction traces (the trace package's on-disk format, decoupling
// workload generation from simulation) and mlpcache.events/v2 event
// traces (the compact binary telemetry mlpsim/mlpexp write under
// -trace-events-format v2).
//
// Instruction-trace modes: -gen writes a workload model's stream, -dump
// prints records, -stats summarizes a file. Event-trace modes take
// -events ev.bin plus an action: -decode (the default) streams the file
// back out as schema-identical mlpcache.events/v1 JSONL on stdout — the
// decoded document is this mode's report, pipe-friendly for every
// existing JSONL consumer — optionally restricted by -filter and
// -limit; -stats prints per-type counts and the cycle span instead.
// -cpuprofile/-memprofile write pprof profiles (see
// docs/OBSERVABILITY.md for schemas and the v2 record layout).
//
// Examples:
//
//	mlptrace -gen mcf -n 1000000 -o mcf.trace
//	mlptrace -dump mcf.trace -limit 20
//	mlptrace -stats mcf.trace
//	mlptrace -events ev.bin -decode
//	mlptrace -events ev.bin -decode -filter snapshot -limit 40
//	mlptrace -events ev.bin -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"mlpcache/internal/metrics"
	"mlpcache/internal/prof"
	"mlpcache/internal/trace"
	"mlpcache/internal/workload"
)

// stopProf finishes any pprof profiles; set in main before any exit path
// can run.
var stopProf = func() error { return nil }

// optPath is a flag that works both bare (`-stats`, selecting the
// events-mode action) and with a value (`-stats file.trace`, the
// instruction-trace mode). Bare use records only that the flag was set;
// the legacy positional file then arrives via flag.Arg(0).
type optPath struct {
	set  bool
	path string
}

func (o *optPath) String() string { return o.path }

func (o *optPath) Set(s string) error {
	o.set = true
	// Bool-flag syntax feeds the literal "true"/"false"; anything else
	// is a file path.
	if s != "true" && s != "false" {
		o.path = s
	}
	return nil
}

func (o *optPath) IsBoolFlag() bool { return true }

func main() {
	var stat optPath
	flag.Var(&stat, "stats", "summarize a file: an instruction trace (`-stats tr.trace`), or with -events the v2 event stream (bare `-stats`)")
	var (
		gen        = flag.String("gen", "", "benchmark model to generate (see mlpsim -list)")
		n          = flag.Int("n", 1_000_000, "instructions to generate")
		seed       = flag.Uint64("seed", 42, "workload seed")
		out        = flag.String("o", "", "output trace file (with -gen)")
		dump       = flag.String("dump", "", "trace file to print")
		limit      = flag.Int("limit", 50, "records to print: instructions with -dump (default 50), events with -events (default all)")
		events     = flag.String("events", "", "mlpcache.events/v2 binary event file to decode or summarize")
		decode     = flag.Bool("decode", false, "with -events: write the stream as mlpcache.events/v1 JSONL to stdout (the default action)")
		filter     = flag.String("filter", "", "with -events -decode: comma-separated event types to keep, e.g. miss,victim (empty: all; run.start always kept)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	// `mlptrace -stats tr.trace` parses as a bare -stats plus one
	// positional argument; stitch the legacy form back together.
	if stat.set && stat.path == "" && *events == "" && flag.NArg() > 0 {
		stat.path = flag.Arg(0)
	}

	var err error
	stopProf, err = prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	switch {
	case *events != "":
		if stat.set {
			err = eventsStats(*events)
		} else {
			_ = decode // -decode is the default action; the flag exists for explicitness
			err = eventsDecode(*events, *filter, eventLimit(*limit))
		}
		if err != nil {
			fatal(err)
		}
	case *gen != "":
		if err := generate(*gen, *out, *n, *seed); err != nil {
			fatal(err)
		}
	case *dump != "":
		if err := dumpTrace(*dump, *limit); err != nil {
			fatal(err)
		}
	case stat.set && stat.path != "":
		if err := statsTrace(stat.path); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		stopProf()
		os.Exit(2)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

// eventLimit resolves -limit for events mode: unless the user set the
// flag, decode the whole stream (the -dump default of 50 would silently
// truncate conversions).
func eventLimit(limit int) int {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "limit" {
			set = true
		}
	})
	if !set {
		return -1
	}
	return limit
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mlptrace: %v\n", err)
	stopProf()
	os.Exit(1)
}

func generate(bench, out string, n int, seed uint64) error {
	spec, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	if out == "" {
		out = bench + ".trace"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	src := trace.NewLimit(spec.Build(seed), n)
	written := 0
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(in); err != nil {
			return err
		}
		written++
	}
	if err := w.Flush(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions to %s (%d bytes, %.2f B/instr)\n",
		written, out, info.Size(), float64(info.Size())/float64(written))
	return nil
}

func openTrace(path string) (*trace.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

func dumpTrace(path string, limit int) error {
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < limit; i++ {
		in, ok := r.Next()
		if !ok {
			break
		}
		switch {
		case in.Kind.IsMem():
			fmt.Printf("%6d  %-6s addr=%#x dep=%d\n", i, in.Kind, in.Addr, in.Dep)
		case in.Kind == trace.Branch:
			fmt.Printf("%6d  branch mispredict=%v\n", i, in.Mispredict)
		default:
			fmt.Printf("%6d  %-6s dep=%d\n", i, in.Kind, in.Dep)
		}
	}
	return r.Err()
}

// eventsDecode streams an mlpcache.events/v2 file back out as
// mlpcache.events/v1 JSONL. The decoded document is the mode's report —
// it goes to stdout by design (via a buffered writer), so existing JSONL
// consumers can pipe straight from it. filter optionally restricts event
// types (run.start always passes); limit < 0 means the whole stream.
func eventsDecode(path, filter string, limit int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := metrics.NewEventsReader(f)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(os.Stdout)
	jt := metrics.NewJSONLTracer(w, rd.Header())
	var dst metrics.Tracer = jt
	if filter != "" {
		types, err := metrics.ParseEventFilter(filter)
		if err != nil {
			return err
		}
		dst = metrics.NewFilterTracer(jt, 0, types)
	}
	for limit != 0 {
		ev, ok := rd.Next()
		if !ok {
			break
		}
		dst.Emit(ev)
		if limit > 0 {
			limit--
		}
	}
	if err := rd.Err(); err != nil {
		return err
	}
	if err := jt.Flush(); err != nil {
		return err
	}
	return w.Flush()
}

// eventsStats summarizes an mlpcache.events/v2 file: header fields,
// per-type counts, run count, and the cycle span.
func eventsStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := metrics.NewEventsReader(f)
	if err != nil {
		return err
	}
	var (
		total, runs    uint64
		minCyc, maxCyc uint64
		haveCyc        bool
		counts         = map[metrics.EventType]uint64{}
	)
	for {
		ev, ok := rd.Next()
		if !ok {
			break
		}
		total++
		counts[ev.Type]++
		if ev.Type == metrics.EventRunStart {
			runs++
			continue
		}
		if !haveCyc || ev.Cycle < minCyc {
			minCyc = ev.Cycle
			haveCyc = true
		}
		if ev.Cycle > maxCyc {
			maxCyc = ev.Cycle
		}
	}
	if err := rd.Err(); err != nil {
		return err
	}
	hdr := rd.Header()
	fmt.Printf("schema            %s\n", hdr.Schema)
	if hdr.Bench != "" {
		fmt.Printf("bench             %s\n", hdr.Bench)
	}
	if hdr.Policy != "" {
		fmt.Printf("policy            %s\n", hdr.Policy)
	}
	fmt.Printf("seed              %d\n", hdr.Seed)
	fmt.Printf("events            %d\n", total)
	fmt.Printf("runs (run.start)  %d\n", runs)
	if haveCyc {
		fmt.Printf("cycle span        %d..%d\n", minCyc, maxCyc)
	}
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %-20s %d\n", t, counts[metrics.EventType(t)])
	}
	return nil
}

func statsTrace(path string) error {
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var total, mem, deps, branches, mispredicts int
	blocks := map[uint64]struct{}{}
	kinds := map[trace.Kind]int{}
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		total++
		kinds[in.Kind]++
		if in.Kind.IsMem() {
			mem++
			blocks[in.Addr/64] = struct{}{}
		}
		if in.Dep > 0 {
			deps++
		}
		if in.Kind == trace.Branch {
			branches++
			if in.Mispredict {
				mispredicts++
			}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("instructions      %d\n", total)
	fmt.Printf("memory ops        %d (%.1f%%)\n", mem, 100*float64(mem)/float64(total))
	fmt.Printf("distinct blocks   %d (%.1f KB footprint)\n", len(blocks), float64(len(blocks))*64/1024)
	fmt.Printf("with dependences  %d (%.1f%%)\n", deps, 100*float64(deps)/float64(total))
	fmt.Printf("branches          %d (%d mispredicted)\n", branches, mispredicts)
	for k := trace.Int; k <= trace.Branch; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  %-7s %d\n", k, kinds[k])
		}
	}
	return nil
}
