// Command mlptrace generates, inspects and summarizes binary instruction
// traces in the trace package's on-disk format, decoupling workload
// generation from simulation. -cpuprofile/-memprofile write pprof
// profiles (see docs/OBSERVABILITY.md).
//
// Examples:
//
//	mlptrace -gen mcf -n 1000000 -o mcf.trace
//	mlptrace -dump mcf.trace -limit 20
//	mlptrace -stats mcf.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"mlpcache/internal/prof"
	"mlpcache/internal/trace"
	"mlpcache/internal/workload"
)

// stopProf finishes any pprof profiles; set in main before any exit path
// can run.
var stopProf = func() error { return nil }

func main() {
	var (
		gen        = flag.String("gen", "", "benchmark model to generate (see mlpsim -list)")
		n          = flag.Int("n", 1_000_000, "instructions to generate")
		seed       = flag.Uint64("seed", 42, "workload seed")
		out        = flag.String("o", "", "output trace file (with -gen)")
		dump       = flag.String("dump", "", "trace file to print")
		limit      = flag.Int("limit", 50, "instructions to print (with -dump)")
		stat       = flag.String("stats", "", "trace file to summarize")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	var err error
	stopProf, err = prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	switch {
	case *gen != "":
		if err := generate(*gen, *out, *n, *seed); err != nil {
			fatal(err)
		}
	case *dump != "":
		if err := dumpTrace(*dump, *limit); err != nil {
			fatal(err)
		}
	case *stat != "":
		if err := statsTrace(*stat); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		stopProf()
		os.Exit(2)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mlptrace: %v\n", err)
	stopProf()
	os.Exit(1)
}

func generate(bench, out string, n int, seed uint64) error {
	spec, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	if out == "" {
		out = bench + ".trace"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	src := trace.NewLimit(spec.Build(seed), n)
	written := 0
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(in); err != nil {
			return err
		}
		written++
	}
	if err := w.Flush(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions to %s (%d bytes, %.2f B/instr)\n",
		written, out, info.Size(), float64(info.Size())/float64(written))
	return nil
}

func openTrace(path string) (*trace.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

func dumpTrace(path string, limit int) error {
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < limit; i++ {
		in, ok := r.Next()
		if !ok {
			break
		}
		switch {
		case in.Kind.IsMem():
			fmt.Printf("%6d  %-6s addr=%#x dep=%d\n", i, in.Kind, in.Addr, in.Dep)
		case in.Kind == trace.Branch:
			fmt.Printf("%6d  branch mispredict=%v\n", i, in.Mispredict)
		default:
			fmt.Printf("%6d  %-6s dep=%d\n", i, in.Kind, in.Dep)
		}
	}
	return r.Err()
}

func statsTrace(path string) error {
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var total, mem, deps, branches, mispredicts int
	blocks := map[uint64]struct{}{}
	kinds := map[trace.Kind]int{}
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		total++
		kinds[in.Kind]++
		if in.Kind.IsMem() {
			mem++
			blocks[in.Addr/64] = struct{}{}
		}
		if in.Dep > 0 {
			deps++
		}
		if in.Kind == trace.Branch {
			branches++
			if in.Mispredict {
				mispredicts++
			}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("instructions      %d\n", total)
	fmt.Printf("memory ops        %d (%.1f%%)\n", mem, 100*float64(mem)/float64(total))
	fmt.Printf("distinct blocks   %d (%.1f KB footprint)\n", len(blocks), float64(len(blocks))*64/1024)
	fmt.Printf("with dependences  %d (%.1f%%)\n", deps, 100*float64(deps)/float64(total))
	fmt.Printf("branches          %d (%d mispredicted)\n", branches, mispredicts)
	for k := trace.Int; k <= trace.Branch; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  %-7s %d\n", k, kinds[k])
		}
	}
	return nil
}
