// Command mlpserve runs the sweep service: a daemon that accepts
// simulation and experiment jobs over HTTP and answers with the same
// telemetry documents the batch CLIs write (mlpcache.metrics/v1 JSONL,
// mlpcache.events/v1|v2 traces, mlpcache.table/v1 experiment JSON).
//
// The daemon is built for rough weather: admission is bounded (-queue,
// -per-client) and rejects with 429 instead of queueing unboundedly,
// every job runs under a deadline (-default-deadline capped by
// -max-deadline) wired into the simulator's cooperative cancellation,
// transient failures retry with jittered exponential backoff under a
// retry budget, a panicking job is contained to a 500 for that job
// alone, and identical jobs share one simulation through a bounded LRU
// result cache. SIGINT/SIGTERM stops admission and drains in-flight
// jobs under -drain-timeout (exit 0); a second signal force-cancels and
// exits 1. GET /healthz, /readyz and /metrics expose liveness,
// readiness and the service.* counters documented in
// docs/OBSERVABILITY.md; docs/ROBUSTNESS.md documents the fault model.
//
// The -chaos-* flags arm the fault injectors from internal/faultinject
// for self-tests and load drills — never enable them for real sweeps.
//
// Examples:
//
//	mlpserve -addr 127.0.0.1:8321
//	curl -s -X POST -d '{"bench":"mcf","policy":"lin","instructions":1000000}' http://127.0.0.1:8321/v1/jobs
//	curl -s http://127.0.0.1:8321/metrics
//	mlpserve -addr 127.0.0.1:8321 -chaos-fail 200 -chaos-panic 20
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlpcache/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8321", "listen address")
		workers      = flag.Int("workers", 0, "simulation workers (0: GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 0, "bounded job-queue depth (0: default 64)")
		perClient    = flag.Int("per-client", 0, "max in-system jobs per client (0: default 16, <0: unlimited)")
		defaultN     = flag.Uint64("default-n", 0, "instructions when a job omits them (0: default 200000)")
		maxN         = flag.Uint64("max-n", 0, "largest per-job instruction budget (0: default 50000000)")
		defDeadline  = flag.Duration("default-deadline", 0, "per-job deadline when the job sets none (0: default 60s)")
		maxDeadline  = flag.Duration("max-deadline", 0, "hard cap on any job deadline (0: default 5m)")
		retries      = flag.Int("retries", 0, "max retry attempts per job on transient faults (0: default 3)")
		cacheCap     = flag.Int("cache", 0, "result-cache capacity in entries (0: default 512, <0: disabled)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs after the first signal")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "fault-injection seed")
		chaosFail    = flag.Int("chaos-fail", 0, "inject a transient job failure with this permille probability")
		chaosPanic   = flag.Int("chaos-panic", 0, "inject a worker panic with this permille probability")
		chaosJitter  = flag.Uint64("chaos-dram-jitter", 0, "max extra DRAM latency cycles injected per access (0: off)")
		chaosFlip    = flag.Int("chaos-flip-bits", 0, "flip this many bits in each streamed telemetry body (0: off)")
	)
	flag.Parse()

	s, err := service.New(service.Config{
		Workers:             *workers,
		QueueDepth:          *queueDepth,
		PerClientCap:        *perClient,
		DefaultInstructions: *defaultN,
		MaxInstructions:     *maxN,
		DefaultDeadline:     *defDeadline,
		MaxDeadline:         *maxDeadline,
		MaxRetries:          *retries,
		CacheCapacity:       *cacheCap,
		Chaos: service.Chaos{
			Seed:              *chaosSeed,
			FailPermille:      *chaosFail,
			PanicPermille:     *chaosPanic,
			DRAMJitterMax:     *chaosJitter,
			FlipTelemetryBits: *chaosFlip,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlpserve: %v\n", err)
		os.Exit(2)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlpserve: %v\n", err)
		os.Exit(1)
	}
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	os.Exit(service.Serve(s, l, sigs, *drainTimeout, os.Stderr))
}
